// Package tetriserve is a from-scratch Go reproduction of "TetriServe:
// Efficiently Serving Mixed DiT Workloads" (ASPLOS 2026): a deadline-aware
// round-based scheduler for Diffusion Transformer serving with step-level
// sequence parallelism, evaluated end to end on a calibrated discrete-event
// GPU-cluster simulator and exposed as an online HTTP serving daemon.
//
// This package is the public facade: it re-exports the pieces a downstream
// user composes, in dependency order:
//
//	model     — DiT descriptors (FLUX.1-dev, SD3-Medium): tokens, FLOPs, latents
//	simgpu    — cluster topologies (8xH100 NVLink, 4xA40 NVLink-pairs+PCIe)
//	costmodel — analytical step-latency estimator + offline-profiled lookup table
//	workload  — arrival processes, resolution mixes, SLO policies, prompt corpus
//	sched     — scheduler contract + baselines (xDiT fixed SP, RSSP, EDF, exact solver)
//	core      — the paper's contribution: TetriServe's round-based DP scheduler
//	engine    — execution engine: step blocks, latent handoff, VAE decode, HBM
//	sim       — discrete-event serving simulator
//	metrics   — SAR, latency CDFs, degree timelines, utilization
//	cache     — Nirvana-style approximate latent cache
//	server    — real-time serving driver + HTTP API
//
// The quickest way in:
//
//	mdl  := tetriserve.FLUX()
//	topo := tetriserve.H100x8()
//	prof := tetriserve.Profile(mdl, topo)
//	sched := tetriserve.NewScheduler(prof, topo, tetriserve.DefaultSchedulerConfig())
//	result, err := tetriserve.Simulate(tetriserve.SimConfig{
//		Model: mdl, Topo: topo, Scheduler: sched,
//		Requests: tetriserve.GenerateWorkload(tetriserve.WorkloadConfig{Model: mdl}),
//	})
//	fmt.Println(tetriserve.SAR(result))
//
// See examples/ for runnable programs and internal/experiments for the
// reproduction of every table and figure in the paper.
package tetriserve

import (
	"net/http"

	"tetriserve/internal/cache"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/metrics"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/server"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// Model and hardware descriptors.
type (
	// Model describes a DiT model (see internal/model).
	Model = model.Model
	// Resolution is an output image size.
	Resolution = model.Resolution
	// Topology is a GPU node description (see internal/simgpu).
	Topology = simgpu.Topology
	// GPUMask is a set of GPUs within a node.
	GPUMask = simgpu.Mask
)

// Cost model.
type (
	// CostEstimator predicts per-step latency analytically.
	CostEstimator = costmodel.Estimator
	// CostProfile is the offline-profiled lookup table schedulers consult.
	CostProfile = costmodel.Profile
)

// Workload.
type (
	// Request is one image-generation request.
	Request = workload.Request
	// RequestID identifies a request.
	RequestID = workload.RequestID
	// WorkloadConfig parameterizes trace generation.
	WorkloadConfig = workload.GeneratorConfig
	// SLOPolicy maps resolutions to deadlines.
	SLOPolicy = workload.SLOPolicy
	// Prompt is a synthetic text prompt.
	Prompt = workload.Prompt
)

// Scheduling.
type (
	// Scheduler is the policy contract shared by TetriServe and baselines.
	Scheduler = sched.Scheduler
	// Assignment directs the engine to run steps on a GPU group.
	Assignment = sched.Assignment
	// SchedulerConfig selects TetriServe's mechanisms.
	SchedulerConfig = core.Config
	// TetriServeScheduler is the paper's round-based DP scheduler.
	TetriServeScheduler = core.Scheduler
)

// Simulation and serving.
type (
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult aggregates a run's outcomes.
	SimResult = sim.Result
	// Outcome is the fate of one request.
	Outcome = sim.Outcome
	// Cache is the Nirvana-style approximate latent cache.
	Cache = cache.Cache
	// ServerConfig configures the real-time serving driver.
	ServerConfig = server.DriverConfig
	// Server is the real-time serving driver.
	Server = server.Driver
)

// Standard resolutions from the paper's evaluation.
var (
	Res256  = model.Res256
	Res512  = model.Res512
	Res1024 = model.Res1024
	Res2048 = model.Res2048
)

// FLUX returns the FLUX.1-dev model descriptor (Table 1 calibration).
func FLUX() *Model { return model.FLUX() }

// SD3 returns the Stable Diffusion 3 Medium descriptor.
func SD3() *Model { return model.SD3() }

// H100x8 returns the paper's 8xH100 NVLink testbed.
func H100x8() *Topology { return simgpu.H100x8() }

// A40x4 returns the paper's 4xA40 NVLink-pairs/PCIe testbed.
func A40x4() *Topology { return simgpu.A40x4() }

// Profile offline-profiles a model on a topology into the lookup table
// TetriServe schedules against (§4.2.1).
func Profile(m *Model, t *Topology) *CostProfile {
	return costmodel.BuildProfile(costmodel.NewEstimator(m, t), costmodel.ProfilerConfig{})
}

// DefaultSchedulerConfig returns the paper's default mechanism set: 5-step
// granularity rounds, placement preservation, elastic scale-up, selective
// batching, best-effort lane, eager admission.
func DefaultSchedulerConfig() SchedulerConfig { return core.DefaultConfig() }

// NewScheduler builds TetriServe's deadline-aware round-based scheduler.
func NewScheduler(prof *CostProfile, topo *Topology, cfg SchedulerConfig) *TetriServeScheduler {
	return core.NewScheduler(prof, topo, cfg)
}

// NewFixedSP returns the xDiT fixed-degree baseline.
func NewFixedSP(degree int) Scheduler { return sched.NewFixedSP(degree) }

// NewRSSP returns the Resolution-Specific SP baseline.
func NewRSSP(maxDegree int) Scheduler { return sched.NewRSSP(maxDegree) }

// GenerateWorkload materializes a request trace (Poisson arrivals, Uniform
// mix, paper SLOs by default).
func GenerateWorkload(cfg WorkloadConfig) []*Request { return workload.Generate(cfg) }

// UniformMix draws the four standard resolutions equally.
func UniformMix() workload.Mix { return workload.UniformMix() }

// SkewedMix biases toward larger resolutions (α per §6.1).
func SkewedMix(alpha float64) workload.Mix { return workload.SkewedMix(alpha) }

// NewSLOPolicy returns the paper's per-resolution deadlines at a scale.
func NewSLOPolicy(scale float64) SLOPolicy { return workload.NewSLOPolicy(scale) }

// Simulate runs a serving simulation to completion.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SAR computes the SLO attainment ratio of a result.
func SAR(res *SimResult) float64 { return metrics.SAR(res) }

// SARByResolution computes per-resolution SAR (the spider plots).
func SARByResolution(res *SimResult) map[Resolution]float64 {
	return metrics.SARByResolution(res)
}

// MeanLatency returns mean completed latency in seconds.
func MeanLatency(res *SimResult) float64 { return metrics.MeanLatency(res) }

// NewCache returns a Nirvana-style approximate latent cache with the
// paper's defaults (10k entries, k ∈ {5..25} of 50 steps).
func NewCache() *Cache { return cache.New(cache.DefaultConfig()) }

// NewServer builds the real-time serving driver (call Start, then Submit,
// or wrap with NewServerHandler for HTTP).
func NewServer(cfg ServerConfig) (*Server, error) { return server.NewDriver(cfg) }

// NewServerHandler wraps a driver with the HTTP API
// (POST /v1/images/generations, GET /v1/jobs/{id}, GET /v1/stats).
func NewServerHandler(d *Server) http.Handler {
	return server.NewAPI(d).Handler()
}
