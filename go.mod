module tetriserve

go 1.22
