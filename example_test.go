package tetriserve_test

import (
	"fmt"
	"time"

	tetriserve "tetriserve"
)

// ExampleSimulate shows the minimal serving simulation: profile a model on
// a cluster, build TetriServe, replay a deterministic trace, report SAR.
func ExampleSimulate() {
	mdl := tetriserve.FLUX()
	topo := tetriserve.H100x8()
	prof := tetriserve.Profile(mdl, topo)
	sch := tetriserve.NewScheduler(prof, topo, tetriserve.DefaultSchedulerConfig())

	res, err := tetriserve.Simulate(tetriserve.SimConfig{
		Model: mdl, Topo: topo, Scheduler: sch, Profile: prof,
		Requests: tetriserve.GenerateWorkload(tetriserve.WorkloadConfig{
			Model: mdl, NumRequests: 8, Seed: 42,
		}),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d requests\n", len(res.Outcomes))
	// Output: served 8 requests
}

// ExampleProfile shows the offline-profiled lookup table the scheduler
// consults: per-step latency falls with the sequence-parallel degree.
func ExampleProfile() {
	prof := tetriserve.Profile(tetriserve.FLUX(), tetriserve.H100x8())
	t1 := prof.StepTime(tetriserve.Res2048, 1)
	t8 := prof.StepTime(tetriserve.Res2048, 8)
	fmt.Printf("SP=8 is faster than SP=1: %v\n", t8 < t1)
	fmt.Printf("fastest degree for 2048px: %d\n", prof.BestLatencyDegree(tetriserve.Res2048))
	// Output:
	// SP=8 is faster than SP=1: true
	// fastest degree for 2048px: 8
}

// ExampleNewSLOPolicy shows the paper's per-resolution deadlines.
func ExampleNewSLOPolicy() {
	pol := tetriserve.NewSLOPolicy(1.0)
	fmt.Println(pol.Budget(tetriserve.Res256))
	fmt.Println(pol.Budget(tetriserve.Res2048))
	// Output:
	// 1.5s
	// 5s
}

// ExampleNewScheduler shows TetriServe's round length: the scheduler packs
// work into fixed rounds sized to hold StepGranularity reference steps.
func ExampleNewScheduler() {
	prof := tetriserve.Profile(tetriserve.FLUX(), tetriserve.H100x8())
	sch := tetriserve.NewScheduler(prof, tetriserve.H100x8(), tetriserve.DefaultSchedulerConfig())
	fmt.Printf("round-based: %v\n", sch.RoundDuration() > 0)
	fmt.Printf("round fits budget: %v\n", sch.RoundDuration() < time.Second)
	// Output:
	// round-based: true
	// round fits budget: true
}

// ExampleNewCache shows Nirvana-style approximate caching: a repeated
// prompt skips a prefix of its denoising steps.
func ExampleNewCache() {
	c := tetriserve.NewCache()
	p := tetriserve.Prompt{Text: "a koi pond in autumn", Theme: 7, Mods: []int{1, 2, 3}}
	c.Insert(p, tetriserve.Res512)
	fmt.Printf("steps skipped on rehit: %d of 50\n", c.Lookup(p, tetriserve.Res512, 50))
	// Output: steps skipped on rehit: 25 of 50
}
