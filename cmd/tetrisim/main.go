// Command tetrisim runs the paper's experiments against the simulated
// cluster and prints the reproduced tables.
//
// Usage:
//
//	tetrisim list                 # show available experiments
//	tetrisim run fig7 table5 ...  # run specific experiments
//	tetrisim run all              # run everything (Table 6 takes minutes)
//	tetrisim profile              # dump the offline-profiled cost tables
//	tetrisim timeline [sched]     # serve a trace and draw the GPU timeline
//	tetrisim export [sched]       # serve a trace, emit a JSONL event log
//
// Flags:
//
//	-seed N        trace seed (default 1)
//	-n N           requests per simulation (default 300)
//	-rate R        arrival rate req/min (default 12)
//	-quick         reduced sizes/timeouts (what the bench suite uses)
//	-workers N     simulation cells run concurrently (default GOMAXPROCS; 1 = sequential)
//	-markdown      emit GitHub-flavored markdown tables
//	-metrics       attach the telemetry plane (timeline/export) and dump
//	               Prometheus text to stderr at exit
//	-fail-gpus S   comma-separated GPU ids to fail-stop (timeline/export)
//	-fail-at D     virtual time of the fail-stop (default 30s)
//	-recover-at D  virtual time the GPUs return (0 = never)
//	-cache-interval N  max step-cache cadence the planner may assign
//	               (timeline/export, tetriserve scheduler; 1 = caching off)
//	-quality-budget F  fraction of each request's steps the planner may
//	               approximate via the step cache (timeline/export; 0..1)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/experiments"
	"tetriserve/internal/gantt"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/tablefmt"
	"tetriserve/internal/telemetry"
	"tetriserve/internal/trace"
	"tetriserve/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "trace generation seed")
	n := flag.Int("n", 0, "requests per simulation (0 = default)")
	rate := flag.Float64("rate", 0, "arrival rate in req/min (0 = default)")
	quick := flag.Bool("quick", false, "reduced sizes and timeouts")
	workers := flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS, 1 = sequential)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	failGPUs := flag.String("fail-gpus", "", "comma-separated GPU ids to fail-stop during timeline/export runs")
	failAt := flag.Duration("fail-at", 30*time.Second, "virtual time at which -fail-gpus fail")
	recoverAt := flag.Duration("recover-at", 0, "virtual time at which failed GPUs recover (0 = never)")
	metricsDump := flag.Bool("metrics", false, "attach the telemetry plane during timeline/export and dump /metrics text to stderr at exit")
	cacheInterval := flag.Int("cache-interval", 1, "max step-cache interval the planner may assign (timeline/export; 1 = caching off, max 8)")
	qualityBudget := flag.Float64("quality-budget", 0, "fraction of each request's steps the planner may approximate via the step cache (timeline/export; 0..1)")
	flag.Parse()

	faults, err := simgpu.ParseFaults(*failGPUs, *failAt, *recoverAt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrisim:", err)
		os.Exit(2)
	}
	knobs, err := parseCacheKnobs(*cacheInterval, *qualityBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrisim:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	ctx := experiments.Context{
		Seed:        *seed,
		NumRequests: *n,
		Rate:        *rate,
		Quick:       *quick,
		Workers:     *workers,
	}

	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n         %s\n", e.ID, e.Title, e.Summary)
		}
	case "profile":
		dumpProfiles()
	case "timeline", "export":
		schedName := "tetriserve"
		if len(args) > 1 {
			schedName = args[1]
		}
		if err := runTimelineOrExport(args[0], schedName, ctx, faults, *metricsDump, knobs); err != nil {
			fmt.Fprintln(os.Stderr, "tetrisim:", err)
			os.Exit(1)
		}
	case "run":
		ids := args[1:]
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "tetrisim: run requires experiment ids or 'all'")
			os.Exit(2)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		}
		for _, id := range ids {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tetrisim:", err)
				os.Exit(1)
			}
			start := time.Now()
			tables := e.Run(ctx)
			fmt.Printf("## %s\n\n", e.Title)
			for _, t := range tables {
				printTable(t, *markdown)
				fmt.Println()
			}
			fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	default:
		usage()
		os.Exit(2)
	}
}

func printTable(t *tablefmt.Table, markdown bool) {
	if markdown {
		fmt.Print(t.Markdown())
	} else {
		fmt.Print(t.String())
	}
}

func dumpProfiles() {
	for _, pair := range []struct {
		mdl  *model.Model
		topo *simgpu.Topology
	}{
		{model.FLUX(), simgpu.H100x8()},
		{model.SD3(), simgpu.A40x4()},
	} {
		est := costmodel.NewEstimator(pair.mdl, pair.topo)
		prof := costmodel.BuildProfile(est, costmodel.ProfilerConfig{})
		t := tablefmt.New(
			fmt.Sprintf("Offline profile: %s on %s (per-step ms, batch 1)", pair.mdl.Name, pair.topo.Name),
			"Resolution", "SP degree", "step (ms)", "GPU-s/step", "CV")
		for _, res := range prof.Resolutions() {
			for _, k := range prof.Degrees() {
				e, _ := prof.Lookup(res, k, 1)
				t.AddRow(res.String(), fmt.Sprint(k),
					fmt.Sprintf("%.2f", float64(e.Mean.Microseconds())/1000),
					fmt.Sprintf("%.4f", prof.GPUSeconds(res, k)),
					fmt.Sprintf("%.2f%%", 100*e.CV))
			}
		}
		fmt.Println(t.String())
	}
}

// runTimelineOrExport serves a short mixed trace with the named scheduler
// and either renders the GPU-occupancy chart (the CLI counterpart of
// Figure 1) or emits the structured JSONL event log. Injected faults let
// the recovery rescheduling be watched on the timeline.
func runTimelineOrExport(mode, schedName string, ctx experiments.Context, faults []simgpu.Fault, metricsDump bool, knobs cacheKnobs) error {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	var sc sched.Scheduler
	switch schedName {
	case "tetriserve":
		cfg := core.DefaultConfig()
		cfg.MaxCacheInterval = knobs.interval
		sc = core.NewScheduler(prof, topo, cfg)
	case "sp1", "sp2", "sp4", "sp8":
		k, _ := strconv.Atoi(strings.TrimPrefix(schedName, "sp"))
		sc = sched.NewFixedSP(k)
	case "rssp":
		sc = sched.NewRSSP(topo.N)
	case "edf":
		sc = sched.NewEDF()
	default:
		return fmt.Errorf("unknown scheduler %q (tetriserve|sp1|sp2|sp4|sp8|rssp|edf)", schedName)
	}
	n := ctx.NumRequests
	if n <= 0 || n > 60 {
		n = 24
	}
	rate := ctx.Rate
	if rate <= 0 {
		rate = 12
	}
	seed := ctx.Seed
	if seed == 0 {
		seed = 1
	}
	reqs := workload.Generate(workload.GeneratorConfig{
		Model:       mdl,
		Arrivals:    workload.PoissonArrivals{PerMinute: rate},
		SLO:         workload.NewSLOPolicy(1.2),
		NumRequests: n,
		Seed:        seed,
	})
	if knobs.budgetFrac > 0 {
		for _, r := range reqs {
			r.QualityBudget = int(knobs.budgetFrac * float64(r.Steps))
		}
	}
	simCfg := sim.Config{
		Model: mdl, Topo: topo, Scheduler: sc, Requests: reqs, Profile: prof,
		Faults: faults,
	}
	if len(faults) > 0 {
		// Without timeout semantics a fault that strands requests on a
		// shrunken cluster would deadlock the event loop.
		simCfg.DropLateFactor = 4.0
	}
	var plane *telemetry.Plane
	if metricsDump {
		plane = telemetry.NewPlane()
		plane.SetClusterSize(topo.N)
		simCfg.Hooks = plane.Hooks()
	}
	res, err := sim.Run(simCfg)
	if err != nil {
		return err
	}
	if plane != nil {
		plane.BindGPUBusy(func() float64 { return res.GPUBusySeconds })
		if err := plane.Registry.WriteProm(os.Stderr); err != nil {
			return err
		}
	}
	if mode == "export" {
		return trace.Write(os.Stdout, trace.FromResult(res))
	}
	fmt.Printf("%s over %d requests (SAR %.2f):\n\n", sc.Name(), n, simSAR(res))
	fmt.Print(gantt.Render(res, gantt.Config{Width: 100}))
	return nil
}

func simSAR(res *sim.Result) float64 {
	met := 0
	for _, o := range res.Outcomes {
		if o.Met {
			met++
		}
	}
	if len(res.Outcomes) == 0 {
		return 0
	}
	return float64(met) / float64(len(res.Outcomes))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tetrisim list
  tetrisim [-seed N] [-n N] [-rate R] [-quick] [-markdown] run <id>... | run all
  tetrisim profile
  tetrisim [-seed N] [-n N] [-rate R] [-metrics] [-cache-interval N] [-quality-budget F] [-fail-gpus 1,3 [-fail-at 30s] [-recover-at 90s]] timeline [tetriserve|sp1|sp2|sp4|sp8|rssp|edf]`)
}
