package main

import (
	"errors"
	"testing"
)

func TestParseCacheKnobs(t *testing.T) {
	for _, tc := range []struct {
		interval int
		budget   float64
		wantErr  error
	}{
		{1, 0, nil},
		{4, 0.5, nil},
		{8, 1, nil},
		{0, 0, ErrBadCacheInterval},
		{-2, 0.5, ErrBadCacheInterval},
		{9, 0.5, ErrBadCacheInterval},
		{4, -0.1, ErrBadQualityBudget},
		{4, 1.5, ErrBadQualityBudget},
	} {
		got, err := parseCacheKnobs(tc.interval, tc.budget)
		if tc.wantErr == nil {
			if err != nil {
				t.Fatalf("parseCacheKnobs(%d, %v): unexpected error %v", tc.interval, tc.budget, err)
			}
			if got.interval != tc.interval || got.budgetFrac != tc.budget {
				t.Fatalf("parseCacheKnobs(%d, %v) = %+v", tc.interval, tc.budget, got)
			}
			continue
		}
		if !errors.Is(err, tc.wantErr) {
			t.Fatalf("parseCacheKnobs(%d, %v) error %v, want errors.Is %v", tc.interval, tc.budget, err, tc.wantErr)
		}
	}
}
