// Command tetrictl is the client for the tetriserve daemon.
//
//	tetrictl submit -prompt "a koi pond in autumn" -size 1024
//	tetrictl status 3
//	tetrictl stats
//	tetrictl load -n 40 -rate 12 -mix uniform   # generate load and report SAR
//	tetrictl tail                               # follow the live trace stream
//	tetrictl top                                # one-shot telemetry dashboard
//	tetrictl top -shards                        # fleet dashboard (router + every shard)
//	tetrictl trace t-12                         # one request's span timeline
//	tetrictl fleet                              # fleet health: router, shards, rebalancer
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

func main() {
	base := flag.String("server", "http://127.0.0.1:8900", "tetriserve base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cli := &client{base: *base, http: &http.Client{Timeout: 30 * time.Second}}
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(cli, args[1:])
	case "status":
		err = cmdStatus(cli, args[1:])
	case "stats":
		err = cmdStats(cli)
	case "load":
		err = cmdLoad(cli, args[1:])
	case "tail":
		err = cmdTail(cli, args[1:])
	case "top":
		err = cmdTop(cli, args[1:])
	case "trace":
		err = cmdTrace(cli, args[1:])
	case "fleet":
		err = cmdFleet(cli, args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) postJSON(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func (c *client) getJSON(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

type jobView struct {
	ID        int     `json:"id"`
	State     string  `json:"state"`
	LatencyNS int64   `json:"latency_ns"`
	SLONS     int64   `json:"slo_ns"`
	MetSLO    bool    `json:"met_slo"`
	AvgDegree float64 `json:"avg_degree"`
	Skipped   int     `json:"skipped_steps"`
}

func cmdSubmit(c *client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	prompt := fs.String("prompt", "a lighthouse on a cliff, oil painting", "prompt text")
	size := fs.Int("size", 1024, "square output size in pixels")
	slo := fs.Int64("slo-ms", 0, "deadline in ms (0 = per-resolution default)")
	wait := fs.Bool("wait", false, "poll until completion")
	_ = fs.Parse(args)

	var job jobView
	err := c.postJSON("/v1/images/generations", map[string]any{
		"prompt": *prompt, "width": *size, "height": *size, "slo_ms": *slo,
	}, &job)
	if err != nil {
		return err
	}
	fmt.Printf("job %d accepted (%s)\n", job.ID, job.State)
	if !*wait {
		return nil
	}
	for {
		time.Sleep(200 * time.Millisecond)
		if err := c.getJSON(fmt.Sprintf("/v1/jobs/%d", job.ID), &job); err != nil {
			return err
		}
		if job.State == "completed" {
			fmt.Printf("job %d done: latency=%s met_slo=%v avg_degree=%.2f skipped=%d\n",
				job.ID, time.Duration(job.LatencyNS), job.MetSLO, job.AvgDegree, job.Skipped)
			return nil
		}
	}
}

func cmdStatus(c *client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tetrictl status <job-id>")
	}
	var job map[string]any
	if err := c.getJSON("/v1/jobs/"+args[0], &job); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(job)
}

func cmdStats(c *client) error {
	var st map[string]any
	if err := c.getJSON("/v1/stats", &st); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

func cmdLoad(c *client, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	n := fs.Int("n", 40, "number of requests")
	rate := fs.Float64("rate", 12, "arrival rate, req/min (in server virtual time; scaled by -speedup on the server)")
	mixName := fs.String("mix", "uniform", "uniform | skewed")
	speedup := fs.Float64("speedup", 20, "server speedup, to pace wall-clock arrivals")
	seed := fs.Uint64("seed", 1, "trace seed")
	_ = fs.Parse(args)

	var mix workload.Mix
	switch *mixName {
	case "uniform":
		mix = workload.UniformMix()
	case "skewed":
		mix = workload.SkewedMix(1.0)
	default:
		return fmt.Errorf("unknown mix %q", *mixName)
	}
	rng := stats.NewRNG(*seed)
	sampler := workload.NewPromptSampler()
	arr := workload.PoissonArrivals{PerMinute: *rate}

	ids := make([]int, 0, *n)
	for i := 0; i < *n; i++ {
		gap := arr.NextGap(rng)
		time.Sleep(time.Duration(float64(gap) / *speedup))
		res := mix.Sample(rng)
		p := sampler.Sample(rng)
		var job jobView
		err := c.postJSON("/v1/images/generations", map[string]any{
			"prompt": p.Text, "width": res.W, "height": res.H,
		}, &job)
		if err != nil {
			return err
		}
		ids = append(ids, job.ID)
		fmt.Printf("submitted job %d (%s)\n", job.ID, res)
	}
	// Wait for completion and summarize.
	met, done := 0, 0
	for _, id := range ids {
		for {
			var job jobView
			if err := c.getJSON(fmt.Sprintf("/v1/jobs/%d", id), &job); err != nil {
				return err
			}
			if job.State == "completed" {
				done++
				if job.MetSLO {
					met++
				}
				break
			}
			time.Sleep(150 * time.Millisecond)
		}
	}
	fmt.Printf("completed %d/%d, SLO attainment %.2f\n", done, *n, float64(met)/float64(done))
	return nil
}

// cmdTail follows /v1/trace?follow=1 and prints each event as one JSON line.
// The stream is unbounded; a dedicated client without a request timeout is
// used so the follow can run until interrupted (or -for elapses).
func cmdTail(c *client, args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	dur := fs.Duration("for", 0, "stop after this long (0 = until interrupted)")
	_ = fs.Parse(args)

	req, err := http.NewRequest("GET", c.base+"/v1/trace?follow=1", nil)
	if err != nil {
		return err
	}
	if *dur > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *dur)
		defer cancel()
		req = req.WithContext(ctx)
	}
	follower := &http.Client{} // no timeout: the stream is long-lived
	resp, err := follower.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	if err := sc.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// cmdTop renders a one-shot text dashboard from /metrics and /v1/rounds.
func cmdTop(c *client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	nRounds := fs.Int("rounds", 5, "number of recent rounds to show")
	shards := fs.Bool("shards", false, "fleet mode: -server points at a router; merge every shard's stats into one table")
	_ = fs.Parse(args)
	if *shards {
		return topShards(c)
	}

	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	m := map[string]float64{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		sp := bytes.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(string(line[sp+1:]), "%g", &v); err == nil {
			m[string(line[:sp])] = v
		}
	}
	sum := func(prefix string) float64 {
		total := 0.0
		for k, v := range m {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				total += v
			}
		}
		return total
	}
	completed := m["tetriserve_completed_total"]
	met := m["tetriserve_slo_met_total"]
	sar := 0.0
	if completed > 0 {
		sar = met / completed
	}
	fmt.Printf("requests   %6.0f   completed %6.0f   dropped %4.0f   SLO %.2f\n",
		m["tetriserve_requests_total"], completed, sum("tetriserve_dropped_total"), sar)
	fmt.Printf("queue      %6.0f   running   %6.0f   gpus %2.0f (failed %.0f)   busy %.1fs\n",
		m["tetriserve_queue_depth"], m["tetriserve_running_requests"],
		m["tetriserve_gpus"], m["tetriserve_failed_gpus"],
		m["tetriserve_gpu_busy_seconds_total"])
	fmt.Printf("plans      %6.0f   rejected  %6.0f   rounds %5.0f   trace-drops %.0f\n",
		m["tetriserve_plan_calls_total"], m["tetriserve_plan_rejected_total"],
		m["tetriserve_round_ticks_total"], m["tetriserve_trace_dropped_events_total"])

	var rounds []struct {
		Seq           uint64  `json:"seq"`
		AtUS          int64   `json:"at_us"`
		PlanLatencyUS float64 `json:"plan_latency_us"`
		Pending       int     `json:"pending"`
		Running       int     `json:"running"`
		FreeGPUs      int     `json:"free_gpus"`
		Rejected      string  `json:"rejected,omitempty"`
		Decisions     []struct {
			Request         int    `json:"request"`
			Resolution      string `json:"resolution"`
			Degree          int    `json:"degree"`
			Steps           int    `json:"steps"`
			DeadlineSlackUS int64  `json:"deadline_slack_us"`
			Survives        bool   `json:"survives"`
		} `json:"decisions"`
	}
	if err := c.getJSON(fmt.Sprintf("/v1/rounds?n=%d", *nRounds), &rounds); err != nil {
		return err
	}
	if len(rounds) > 0 {
		fmt.Println("\nrecent rounds:")
	}
	for _, r := range rounds {
		fmt.Printf("  #%d t=%s plan=%.0fµs pending=%d running=%d free=%d",
			r.Seq, time.Duration(r.AtUS)*time.Microsecond, r.PlanLatencyUS,
			r.Pending, r.Running, r.FreeGPUs)
		if r.Rejected != "" {
			fmt.Printf(" REJECTED(%s)", r.Rejected)
		}
		fmt.Println()
		for _, d := range r.Decisions {
			verdict := "late"
			if d.Survives {
				verdict = "ok"
			}
			fmt.Printf("    req %d %s sp=%d steps=%d slack=%s %s\n",
				d.Request, d.Resolution, d.Degree, d.Steps,
				time.Duration(d.DeadlineSlackUS)*time.Microsecond, verdict)
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tetrictl [-server URL] submit [-prompt P] [-size 256|512|1024|2048] [-slo-ms N] [-wait]
  tetrictl [-server URL] status <job-id>
  tetrictl [-server URL] stats
  tetrictl [-server URL] load [-n N] [-rate R] [-mix uniform|skewed] [-speedup S] [-seed N]
  tetrictl [-server URL] tail [-for D]
  tetrictl [-server URL] top [-rounds N] [-shards]
  tetrictl [-server URL] trace <trace-id | request-id>
  tetrictl [-server URL] fleet [-history N]`)
	_ = model.StandardResolutions // documented sizes come from the model package
}
