// Command tetrictl is the client for the tetriserve daemon.
//
//	tetrictl submit -prompt "a koi pond in autumn" -size 1024
//	tetrictl status 3
//	tetrictl stats
//	tetrictl load -n 40 -rate 12 -mix uniform   # generate load and report SAR
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

func main() {
	base := flag.String("server", "http://127.0.0.1:8900", "tetriserve base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cli := &client{base: *base, http: &http.Client{Timeout: 30 * time.Second}}
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(cli, args[1:])
	case "status":
		err = cmdStatus(cli, args[1:])
	case "stats":
		err = cmdStats(cli)
	case "load":
		err = cmdLoad(cli, args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) postJSON(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func (c *client) getJSON(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

type jobView struct {
	ID        int     `json:"id"`
	State     string  `json:"state"`
	LatencyNS int64   `json:"latency_ns"`
	SLONS     int64   `json:"slo_ns"`
	MetSLO    bool    `json:"met_slo"`
	AvgDegree float64 `json:"avg_degree"`
	Skipped   int     `json:"skipped_steps"`
}

func cmdSubmit(c *client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	prompt := fs.String("prompt", "a lighthouse on a cliff, oil painting", "prompt text")
	size := fs.Int("size", 1024, "square output size in pixels")
	slo := fs.Int64("slo-ms", 0, "deadline in ms (0 = per-resolution default)")
	wait := fs.Bool("wait", false, "poll until completion")
	_ = fs.Parse(args)

	var job jobView
	err := c.postJSON("/v1/images/generations", map[string]any{
		"prompt": *prompt, "width": *size, "height": *size, "slo_ms": *slo,
	}, &job)
	if err != nil {
		return err
	}
	fmt.Printf("job %d accepted (%s)\n", job.ID, job.State)
	if !*wait {
		return nil
	}
	for {
		time.Sleep(200 * time.Millisecond)
		if err := c.getJSON(fmt.Sprintf("/v1/jobs/%d", job.ID), &job); err != nil {
			return err
		}
		if job.State == "completed" {
			fmt.Printf("job %d done: latency=%s met_slo=%v avg_degree=%.2f skipped=%d\n",
				job.ID, time.Duration(job.LatencyNS), job.MetSLO, job.AvgDegree, job.Skipped)
			return nil
		}
	}
}

func cmdStatus(c *client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tetrictl status <job-id>")
	}
	var job map[string]any
	if err := c.getJSON("/v1/jobs/"+args[0], &job); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(job)
}

func cmdStats(c *client) error {
	var st map[string]any
	if err := c.getJSON("/v1/stats", &st); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

func cmdLoad(c *client, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	n := fs.Int("n", 40, "number of requests")
	rate := fs.Float64("rate", 12, "arrival rate, req/min (in server virtual time; scaled by -speedup on the server)")
	mixName := fs.String("mix", "uniform", "uniform | skewed")
	speedup := fs.Float64("speedup", 20, "server speedup, to pace wall-clock arrivals")
	seed := fs.Uint64("seed", 1, "trace seed")
	_ = fs.Parse(args)

	var mix workload.Mix
	switch *mixName {
	case "uniform":
		mix = workload.UniformMix()
	case "skewed":
		mix = workload.SkewedMix(1.0)
	default:
		return fmt.Errorf("unknown mix %q", *mixName)
	}
	rng := stats.NewRNG(*seed)
	sampler := workload.NewPromptSampler()
	arr := workload.PoissonArrivals{PerMinute: *rate}

	ids := make([]int, 0, *n)
	for i := 0; i < *n; i++ {
		gap := arr.NextGap(rng)
		time.Sleep(time.Duration(float64(gap) / *speedup))
		res := mix.Sample(rng)
		p := sampler.Sample(rng)
		var job jobView
		err := c.postJSON("/v1/images/generations", map[string]any{
			"prompt": p.Text, "width": res.W, "height": res.H,
		}, &job)
		if err != nil {
			return err
		}
		ids = append(ids, job.ID)
		fmt.Printf("submitted job %d (%s)\n", job.ID, res)
	}
	// Wait for completion and summarize.
	met, done := 0, 0
	for _, id := range ids {
		for {
			var job jobView
			if err := c.getJSON(fmt.Sprintf("/v1/jobs/%d", id), &job); err != nil {
				return err
			}
			if job.State == "completed" {
				done++
				if job.MetSLO {
					met++
				}
				break
			}
			time.Sleep(150 * time.Millisecond)
		}
	}
	fmt.Printf("completed %d/%d, SLO attainment %.2f\n", done, *n, float64(met)/float64(done))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tetrictl [-server URL] submit [-prompt P] [-size 256|512|1024|2048] [-slo-ms N] [-wait]
  tetrictl [-server URL] status <job-id>
  tetrictl [-server URL] stats
  tetrictl [-server URL] load [-n N] [-rate R] [-mix uniform|skewed] [-speedup S] [-seed N]`)
	_ = model.StandardResolutions // documented sizes come from the model package
}
