package main

// Fleet-facing subcommands: `trace` renders a request's span timeline,
// `fleet` the router's fleet-wide health document, and `top -shards` the
// merged per-shard dashboard. All three work against either a router
// (-server points at the router) or, for `trace`, a single shard — the
// endpoint shape is identical.

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"tetriserve/internal/lifecycle"
	"tetriserve/internal/tablefmt"
)

func cmdTrace(c *client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tetrictl trace <trace-id | request-id>")
	}
	var tl lifecycle.Timeline
	if err := c.getJSON("/v1/requests/"+args[0], &tl); err != nil {
		return err
	}
	verdict := "in flight"
	switch {
	case tl.Dropped:
		verdict = fmt.Sprintf("DROPPED (%s)", tl.Cause)
	case tl.Done && tl.Met:
		verdict = "met SLO"
	case tl.Done:
		verdict = "MISSED SLO"
	}
	fmt.Printf("trace %s  request %d  class %s", tl.TraceID, tl.ID, tl.Class)
	if tl.Tenant != "" {
		fmt.Printf("  tenant %s", tl.Tenant)
	}
	if tl.Shard != "" {
		fmt.Printf("  shard %s", tl.Shard)
	}
	fmt.Printf("\narrival %s  deadline %s  slo %s  %s\n",
		us(tl.ArrivalUS), us(tl.DeadlineUS), us(tl.SLOUS), verdict)
	if tl.ElidedSteps > 0 {
		fmt.Printf("steps elided via cache: %d\n", tl.ElidedSteps)
	}

	fmt.Println("\ntimeline:")
	for _, s := range tl.Spans {
		fmt.Printf("  %12s  %-9s", us(s.StartUS), s.Kind)
		if d := s.Duration(); d > 0 {
			fmt.Printf("  %10s", d)
		} else {
			fmt.Printf("  %10s", "·")
		}
		switch s.Kind {
		case lifecycle.SpanCompute:
			fmt.Printf("  steps=%d sp=%d gpus=%v", s.Steps, s.Degree, s.GPUs)
			if s.Batched {
				fmt.Print(" batched")
			}
			if s.ElidedSteps > 0 {
				fmt.Printf(" elided=%d", s.ElidedSteps)
			}
		}
		if s.Cause != "" {
			fmt.Printf("  cause=%s", s.Cause)
		}
		fmt.Println()
	}

	phases := tl.PhaseSeconds()
	if len(phases) > 0 {
		fmt.Println("\nphase decomposition:")
		kinds := make([]string, 0, len(phases))
		total := 0.0
		for k, v := range phases {
			kinds = append(kinds, string(k))
			total += v
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			v := phases[lifecycle.SpanKind(k)]
			fmt.Printf("  %-9s %10.3fms  %5.1f%%\n", k, v*1e3, 100*v/total)
		}
	}
	return nil
}

// fleetDoc mirrors the router's GET /v1/fleet response (decoded loosely so
// the CLI tolerates additions).
type fleetDoc struct {
	Router struct {
		Decisions       int     `json:"decisions"`
		Routed          int     `json:"routed"`
		Infeasible      int     `json:"infeasible"`
		Shed            int     `json:"shed"`
		EarlyRejectRate float64 `json:"early_reject_rate"`
	} `json:"router"`
	ProbeCacheHitRate float64 `json:"probe_cache_hit_rate"`
	Shards            []struct {
		Name       string  `json:"name"`
		Reachable  bool    `json:"reachable"`
		Error      string  `json:"error"`
		QueueDepth int     `json:"queue_depth"`
		Attainment float64 `json:"attainment"`
		Stats      struct {
			Completed int     `json:"completed"`
			MetSLO    int     `json:"met_slo"`
			Running   int     `json:"running"`
			Dropped   int     `json:"dropped"`
			GPUBusyS  float64 `json:"gpu_busy_seconds"`
			Resizes   int     `json:"resizes"`
			Capacity  []int   `json:"capacity_gpus"`
		} `json:"stats"`
	} `json:"shards"`
	Rebalancer *struct {
		Moves     int   `json:"moves"`
		GPUCounts []int `json:"gpu_counts"`
		History   []struct {
			AtUnixMS int64  `json:"at_unix_ms"`
			From     string `json:"from"`
			To       string `json:"to"`
			FromGPUs int    `json:"from_gpus"`
			ToGPUs   int    `json:"to_gpus"`
		} `json:"history"`
	} `json:"rebalancer"`
}

func cmdFleet(c *client, args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	nHist := fs.Int("history", 5, "rebalance history entries to show")
	_ = fs.Parse(args)

	var doc fleetDoc
	if err := c.getJSON("/v1/fleet", &doc); err != nil {
		return err
	}
	fmt.Printf("router: %d decisions  %d routed  %d infeasible  %d shed  early-reject %.2f  probe-cache hit %.2f\n",
		doc.Router.Decisions, doc.Router.Routed, doc.Router.Infeasible, doc.Router.Shed,
		doc.Router.EarlyRejectRate, doc.ProbeCacheHitRate)

	tb := tablefmt.New("shards", "shard", "up", "queue", "running", "completed", "dropped", "SLO", "busy s", "gpus")
	for _, s := range doc.Shards {
		up := "yes"
		if !s.Reachable {
			up = "NO"
		}
		tb.AddRow(s.Name, up,
			fmt.Sprint(s.QueueDepth), fmt.Sprint(s.Stats.Running),
			fmt.Sprint(s.Stats.Completed), fmt.Sprint(s.Stats.Dropped),
			fmt.Sprintf("%.2f", s.Attainment), fmt.Sprintf("%.1f", s.Stats.GPUBusyS),
			fmt.Sprint(len(s.Stats.Capacity)))
	}
	fmt.Print(tb.String())

	if rb := doc.Rebalancer; rb != nil {
		fmt.Printf("\nrebalancer: %d moves, gpu counts %v\n", rb.Moves, rb.GPUCounts)
		hist := rb.History
		if len(hist) > *nHist {
			hist = hist[len(hist)-*nHist:]
		}
		for _, h := range hist {
			fmt.Printf("  %s  %s → %s  (%d → %d GPUs)\n",
				time.UnixMilli(h.AtUnixMS).Format(time.TimeOnly), h.From, h.To, h.FromGPUs, h.ToGPUs)
		}
	}
	return nil
}

// topShards renders the `top -shards` mode: the router's admission stats
// merged with every shard's /v1/stats into one table.
func topShards(c *client) error {
	var doc fleetDoc
	if err := c.getJSON("/v1/fleet", &doc); err != nil {
		return err
	}
	fmt.Printf("router     %6d decisions   routed %6d   rejected %4d   probe-cache hit %.2f\n",
		doc.Router.Decisions, doc.Router.Routed,
		doc.Router.Infeasible+doc.Router.Shed, doc.ProbeCacheHitRate)

	tb := tablefmt.New("", "shard", "queue", "running", "completed", "met", "dropped", "SLO", "busy s", "resizes")
	totals := struct{ q, run, done, met, drop int }{}
	for _, s := range doc.Shards {
		if !s.Reachable {
			tb.AddRow(s.Name, "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		tb.AddRow(s.Name,
			fmt.Sprint(s.QueueDepth), fmt.Sprint(s.Stats.Running),
			fmt.Sprint(s.Stats.Completed), fmt.Sprint(s.Stats.MetSLO),
			fmt.Sprint(s.Stats.Dropped), fmt.Sprintf("%.2f", s.Attainment),
			fmt.Sprintf("%.1f", s.Stats.GPUBusyS), fmt.Sprint(s.Stats.Resizes))
		totals.q += s.QueueDepth
		totals.run += s.Stats.Running
		totals.done += s.Stats.Completed
		totals.met += s.Stats.MetSLO
		totals.drop += s.Stats.Dropped
	}
	fleetSLO := 0.0
	if totals.done > 0 {
		fleetSLO = float64(totals.met) / float64(totals.done)
	}
	tb.AddRow("fleet",
		fmt.Sprint(totals.q), fmt.Sprint(totals.run), fmt.Sprint(totals.done),
		fmt.Sprint(totals.met), fmt.Sprint(totals.drop), fmt.Sprintf("%.2f", fleetSLO), "", "")
	out := tb.String()
	// Drop the blank title line the empty-titled table renders with.
	fmt.Print(strings.TrimPrefix(out, "\n"))
	return nil
}

func us(v int64) string { return fmt.Sprint(time.Duration(v) * time.Microsecond) }
