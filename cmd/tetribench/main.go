// Command tetribench runs the control-plane micro-benchmarks (planner
// latency, cost-model evaluation, profile lookup, end-to-end simulation)
// outside `go test` and writes a JSON snapshot so the performance trajectory
// is tracked across changes:
//
//	go run ./cmd/tetribench -o BENCH_planner.json
//
// The snapshot is a list of {bench, ns_op, allocs_op} records, one per
// benchmark. Compare snapshots across commits to catch control-plane
// regressions; `make bench-snapshot` wraps this.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/control"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/telemetry"
	"tetriserve/internal/workload"
)

type record struct {
	Bench    string  `json:"bench"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

var (
	benchTopo = simgpu.H100x8()
	benchMdl  = model.FLUX()
	benchProf = costmodel.BuildProfile(
		costmodel.NewEstimator(benchMdl, benchTopo), costmodel.ProfilerConfig{})
)

// planLatency mirrors BenchmarkPlanLatency: one TetriServe round decision at
// the given queue depth — the paper's <10 ms control-plane claim.
func planLatency(depth int) func(*testing.B) {
	return func(b *testing.B) {
		s := core.NewScheduler(benchProf, benchTopo, core.DefaultConfig())
		ctx := benchCtx(depth)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Plan(ctx)
		}
	}
}

// benchCtx builds the fixed planning snapshot planLatency-style benches use.
func benchCtx(depth int) *sched.PlanContext {
	resList := model.StandardResolutions()
	pending := make([]*sched.RequestState, depth)
	for i := range pending {
		pending[i] = &sched.RequestState{
			Req: &workload.Request{
				ID:    workload.RequestID(i),
				Res:   resList[i%len(resList)],
				Steps: 50,
				SLO:   5 * time.Second,
			},
			Remaining: 50,
		}
	}
	return &sched.PlanContext{
		Free:    benchTopo.AllMask(),
		Pending: pending,
		Profile: benchProf,
		Topo:    benchTopo,
	}
}

// planLatencyCached mirrors BenchmarkPlanLatencyCached: the round decision
// with the step-cache dimension enabled (MaxCacheInterval 4) on a queue
// where half the requests need a cache-assisted rescue. The delta against
// PlanLatency at the same depth prices the schedulable per-step cost knob.
func planLatencyCached(depth int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.MaxCacheInterval = 4
		s := core.NewScheduler(benchProf, benchTopo, cfg)
		ctx := benchCtxCached(depth)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Plan(ctx)
		}
	}
}

// benchCtxCached is benchCtx with every other request reshaped so no plain
// option survives but a cache-assisted tail still clears the deadline: 20 of
// 200 steps computed, a quality budget of half the steps, and an SLO placed
// between the best cached projection (plus ample rescue margin) and the
// plain-service lower bound.
func benchCtxCached(depth int) *sched.PlanContext {
	const steps, remaining, budget, maxInterval = 200, 180, 100, 4
	ctx := benchCtx(depth)
	for i, st := range ctx.Pending {
		if i%2 == 0 {
			continue
		}
		tmin, _ := benchProf.MinStepTime(st.Req.Res)
		done := steps - remaining
		start := done
		if start < sched.CacheProtectedSteps {
			start = sched.CacheProtectedSteps
		}
		a := sched.ApproxSteps(steps-sched.CacheProtectedSteps-start, maxInterval)
		if a > budget {
			a = budget
		}
		gamma := benchProf.CachedStepRelCost()
		bound := time.Duration(remaining-a)*tmin +
			time.Duration(float64(a)*gamma*float64(tmin))
		st.Req.Steps = steps
		st.Req.SLO = bound + 300*time.Millisecond
		st.Req.QualityBudget = budget
		st.Remaining = remaining
	}
	return ctx
}

// warmStartPlan isolates the incremental planner's three regimes at one
// queue depth. "cold" disables warm start entirely — the honest full-solve
// number (and the denominator of the warm-start speedup). "steady" perturbs
// the last pending request every iteration, so the exact-replay layer
// misses but the DP resumes from a near-complete checkpoint. "churn"
// perturbs a rotating request, so on average half the DP table is reusable.
func warmStartPlan(mode string, depth int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := core.DefaultConfig()
		if mode == "cold" {
			cfg.WarmStart = false
		}
		s := core.NewScheduler(benchProf, benchTopo, cfg)
		ctx := benchCtx(depth)
		s.Plan(ctx)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			switch mode {
			case "steady":
				st := ctx.Pending[depth-1]
				st.Remaining = 2 + (st.Remaining+1)%49
			case "churn":
				st := ctx.Pending[i%depth]
				st.Remaining = 2 + (st.Remaining+1)%49
			}
			s.Plan(ctx)
		}
	}
}

// simEvents measures simulator event throughput over a pre-generated trace:
// unlike simulation(), workload generation is hoisted out of the loop, so
// the number is the event path itself (arena-allocated queue, pooled runs,
// preallocated accumulators) rather than trace construction.
func simEvents(n int) func(*testing.B) {
	return func(b *testing.B) {
		reqs := workload.Generate(workload.GeneratorConfig{
			Model:       benchMdl,
			NumRequests: n,
			Seed:        1,
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(sim.Config{
				Model: benchMdl, Topo: benchTopo,
				Scheduler: core.NewScheduler(benchProf, benchTopo, core.DefaultConfig()),
				Requests:  reqs, Profile: benchProf,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// controlRoundTick measures the shared control loop's event-dispatch path —
// plan + engine dispatch + finish/requeue bookkeeping — at a steady queue
// depth. Requests carry effectively infinite step budgets and SLOs so the
// pending population never shrinks: every iteration dispatches one loop
// event (a τ boundary or a block completion) and the cost amortizes to the
// per-round overhead both the simulator and the online driver pay.
func controlRoundTick(depth int) func(*testing.B) {
	return func(b *testing.B) {
		clk := clock.NewVirtual()
		l, err := control.New(control.Config{
			Model:     benchMdl,
			Topo:      benchTopo,
			Scheduler: core.NewScheduler(benchProf, benchTopo, core.DefaultConfig()),
			Profile:   benchProf,
			Engine:    engine.DefaultConfig(),
			Perpetual: true,
			Preallocate: control.Prealloc{
				Requests: depth, Runs: 1 << 16, Rounds: 1 << 16,
			},
		}, clk)
		if err != nil {
			b.Fatal(err)
		}
		resList := model.StandardResolutions()
		for i := 0; i < depth; i++ {
			l.Arrive(&workload.Request{
				ID:    workload.RequestID(i),
				Res:   resList[i%len(resList)],
				Steps: 1 << 20,
				SLO:   1000 * time.Hour,
			})
		}
		l.Begin()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := l.PopEvent()
			clk.Advance(ev.At)
			if err := l.Dispatch(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// hookOverhead is controlRoundTick with the full telemetry plane attached:
// the delta against the bare numbers is the per-event price of live
// observability. A warm-up long enough to wrap the 512-round ring puts the
// decision log in steady state (recycled storage) before measurement starts.
func hookOverhead(depth int) func(*testing.B) {
	return func(b *testing.B) {
		clk := clock.NewVirtual()
		plane := telemetry.NewPlane()
		plane.SetClusterSize(benchTopo.N)
		l, err := control.New(control.Config{
			Model:     benchMdl,
			Topo:      benchTopo,
			Scheduler: core.NewScheduler(benchProf, benchTopo, core.DefaultConfig()),
			Profile:   benchProf,
			Engine:    engine.DefaultConfig(),
			Perpetual: true,
			Hooks:     plane.Hooks(),
		}, clk)
		if err != nil {
			b.Fatal(err)
		}
		resList := model.StandardResolutions()
		for i := 0; i < depth; i++ {
			l.Arrive(&workload.Request{
				ID:    workload.RequestID(i),
				Res:   resList[i%len(resList)],
				Steps: 1 << 20,
				SLO:   1000 * time.Hour,
			})
		}
		l.Begin()
		for i := 0; i < 2048; i++ {
			ev := l.PopEvent()
			clk.Advance(ev.At)
			if err := l.Dispatch(ev); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := l.PopEvent()
			clk.Advance(ev.At)
			if err := l.Dispatch(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func stepTimeEstimate(b *testing.B) {
	est := costmodel.NewEstimator(benchMdl, benchTopo)
	group := simgpu.CanonicalGroup(0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est.StepTime(model.Res1024, group, 1)
	}
}

func profileLookup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchProf.StepTime(model.Res2048, 8)
	}
}

// simulation runs one full 150-request trace per iteration.
func simulation(mk func() sched.Scheduler) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reqs := workload.Generate(workload.GeneratorConfig{
				Model:       benchMdl,
				NumRequests: 150,
				Seed:        uint64(i + 1),
			})
			if _, err := sim.Run(sim.Config{
				Model: benchMdl, Topo: benchTopo, Scheduler: mk(),
				Requests: reqs, Profile: benchProf,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// shardedSim measures the router-over-shards harness on a pre-generated
// trace: admission probes, per-shard control loops on the arena event path,
// and (optionally) the elastic rebalancer's probe/decide/resize rounds.
func shardedSim(nShards, gpus int, elastic bool) func(*testing.B) {
	return func(b *testing.B) {
		reqs := workload.Generate(workload.GeneratorConfig{
			Model:       benchMdl,
			NumRequests: 150,
			Seed:        1,
		})
		mkShards := func() []sim.ShardSpec {
			specs := make([]sim.ShardSpec, nShards)
			for i := range specs {
				topo := simgpu.H100x8()
				prof := costmodel.BuildProfile(costmodel.NewEstimator(benchMdl, topo), costmodel.ProfilerConfig{})
				specs[i] = sim.ShardSpec{
					Name:      fmt.Sprintf("shard%d", i),
					Topo:      topo,
					Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
					Profile:   prof,
					Capacity:  simgpu.MaskRange(0, gpus),
				}
			}
			return specs
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := sim.ShardedConfig{
				Model:    benchMdl,
				Shards:   mkShards(),
				Requests: reqs,
			}
			if elastic {
				cfg.Rebalance = &sim.RebalanceConfig{}
			}
			if _, err := sim.RunSharded(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func main() {
	out := flag.String("o", "BENCH_planner.json", "output snapshot path")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"PlanLatency/queue=4", planLatency(4)},
		{"PlanLatency/queue=16", planLatency(16)},
		{"PlanLatency/queue=64", planLatency(64)},
		{"PlanLatency/queue=256", planLatency(256)},
		{"PlanLatency/queue=1024", planLatency(1024)},
		{"PlanLatency/queue=4096", planLatency(4096)},
		{"PlanLatencyCached/queue=256", planLatencyCached(256)},
		{"PlanLatencyCached/queue=4096", planLatencyCached(4096)},
		{"WarmStartPlan/cold/queue=4096", warmStartPlan("cold", 4096)},
		{"WarmStartPlan/steady/queue=4096", warmStartPlan("steady", 4096)},
		{"WarmStartPlan/churn/queue=4096", warmStartPlan("churn", 4096)},
		{"SimEvents/reqs=150", simEvents(150)},
		{"ControlRoundTick/queue=16", controlRoundTick(16)},
		{"ControlRoundTick/queue=64", controlRoundTick(64)},
		{"ControlRoundTick/queue=256", controlRoundTick(256)},
		{"HookOverhead/queue=64", hookOverhead(64)},
		{"HookOverhead/queue=256", hookOverhead(256)},
		{"StepTimeEstimate", stepTimeEstimate},
		{"ProfileLookup", profileLookup},
		{"Simulation/TetriServe", simulation(func() sched.Scheduler {
			return core.NewScheduler(benchProf, benchTopo, core.DefaultConfig())
		})},
		{"Simulation/xDiT-SP8", simulation(func() sched.Scheduler {
			return sched.NewFixedSP(8)
		})},
		{"ShardedSim/4x2", shardedSim(4, 2, false)},
		{"ShardedSim/4x2-elastic", shardedSim(4, 2, true)},
	}

	var records []record
	for _, bench := range benches {
		res := testing.Benchmark(bench.fn)
		rec := record{
			Bench:    bench.name,
			NsOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsOp: res.AllocsPerOp(),
		}
		records = append(records, rec)
		fmt.Printf("%-24s %12.0f ns/op %8d allocs/op (n=%d)\n",
			rec.Bench, rec.NsOp, rec.AllocsOp, res.N)
	}

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetribench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tetribench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(records))
}
