package main

import (
	"errors"
	"testing"
)

func TestParseShards(t *testing.T) {
	t.Run("names and defaults", func(t *testing.T) {
		shards, err := parseShards("a=http://h1:8901, http://h2:8902 ,,")
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != 2 {
			t.Fatalf("got %d shards, want 2", len(shards))
		}
		if shards[0].Name() != "a" || shards[1].Name() != "http://h2:8902" {
			t.Fatalf("names = %q, %q", shards[0].Name(), shards[1].Name())
		}
	})
	t.Run("url with scheme is not a pair", func(t *testing.T) {
		// "http://..." contains '=' never, but a path-bearing LHS must not be
		// split as name=url.
		shards, err := parseShards("http://h1:8901/base=path")
		if err != nil {
			t.Fatal(err)
		}
		if shards[0].Name() != "http://h1:8901/base=path" {
			t.Fatalf("name = %q", shards[0].Name())
		}
	})
	for _, tc := range []struct {
		name, list string
		want       error
	}{
		{"empty", "", ErrNoShards},
		{"only separators", " , ,", ErrNoShards},
		{"duplicate explicit names", "a=http://h1,a=http://h2", ErrDuplicateShard},
		{"duplicate defaulted names", "http://h1,http://h1", ErrDuplicateShard},
		{"explicit name collides with url default", "h1:8901=http://h2,h1:8901", ErrDuplicateShard},
		{"empty url after name", "a=", ErrEmptyShardURL},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseShards(tc.list); !errors.Is(err, tc.want) {
				t.Fatalf("parseShards(%q) = %v, want %v", tc.list, err, tc.want)
			}
		})
	}
}

func TestParseWeights(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		w, err := parseWeights(" a=2, b = 0.5 ,")
		if err != nil {
			t.Fatal(err)
		}
		if w["a"] != 2 || w["b"] != 0.5 {
			t.Fatalf("weights = %v", w)
		}
	})
	t.Run("empty flag means no weights", func(t *testing.T) {
		w, err := parseWeights("  ")
		if err != nil || w != nil {
			t.Fatalf("got %v, %v; want nil, nil", w, err)
		}
	})
	for _, tc := range []struct {
		name, list string
		want       error
	}{
		{"missing equals", "a", ErrMalformedPair},
		{"empty tenant", "=2", ErrMalformedPair},
		{"only separators", ", ,", ErrMalformedPair},
		{"zero weight", "a=0", ErrBadWeight},
		{"negative weight", "a=-1", ErrBadWeight},
		{"non-numeric weight", "a=heavy", ErrBadWeight},
		{"duplicate tenant", "a=1,a=2", ErrDuplicateTenant},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseWeights(tc.list); !errors.Is(err, tc.want) {
				t.Fatalf("parseWeights(%q) = %v, want %v", tc.list, err, tc.want)
			}
		})
	}
}

func TestParseRebalanceGPUs(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		init, max, err := parseRebalanceGPUs("2:8, 0:4", 2)
		if err != nil {
			t.Fatal(err)
		}
		if init[0] != 2 || init[1] != 0 || max[0] != 8 || max[1] != 4 {
			t.Fatalf("init=%v max=%v", init, max)
		}
	})
	for _, tc := range []struct {
		name, list string
		n          int
		want       error
	}{
		{"count mismatch", "2:8", 2, ErrShardCount},
		{"empty with shards", "", 1, ErrShardCount},
		{"missing colon", "8,8", 2, ErrMalformedPair},
		{"init above max", "9:8", 1, ErrBadGPUCount},
		{"negative init", "-1:8", 1, ErrBadGPUCount},
		{"zero max", "0:0", 1, ErrBadGPUCount},
		{"non-numeric", "two:8", 1, ErrBadGPUCount},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := parseRebalanceGPUs(tc.list, tc.n); !errors.Is(err, tc.want) {
				t.Fatalf("parseRebalanceGPUs(%q, %d) = %v, want %v", tc.list, tc.n, err, tc.want)
			}
		})
	}
}

func TestParseCacheKnobs(t *testing.T) {
	for _, tc := range []struct {
		interval int
		budget   float64
		wantErr  error
	}{
		{1, 0, nil},
		{4, 0.5, nil},
		{8, 1, nil},
		{0, 0, ErrBadCacheInterval},
		{9, 0.25, ErrBadCacheInterval},
		{2, -0.01, ErrBadQualityBudget},
		{2, 1.01, ErrBadQualityBudget},
	} {
		got, err := parseCacheKnobs(tc.interval, tc.budget)
		if tc.wantErr == nil {
			if err != nil {
				t.Fatalf("parseCacheKnobs(%d, %v): unexpected error %v", tc.interval, tc.budget, err)
			}
			if got.interval != tc.interval || got.budgetFrac != tc.budget {
				t.Fatalf("parseCacheKnobs(%d, %v) = %+v", tc.interval, tc.budget, got)
			}
			continue
		}
		if !errors.Is(err, tc.wantErr) {
			t.Fatalf("parseCacheKnobs(%d, %v) error %v, want errors.Is %v", tc.interval, tc.budget, err, tc.wantErr)
		}
	}
}
