package main

import (
	"errors"
	"fmt"

	"tetriserve/internal/core"
)

// Step-cache flag error kinds, matching the -shards parser convention:
// distinguishable with errors.Is so tests assert on cause, not message.
var (
	ErrBadCacheInterval = errors.New("cache interval out of range")
	ErrBadQualityBudget = errors.New("quality budget out of range")
)

// cacheKnobs carries the validated step-cache flags for shard mode.
type cacheKnobs struct {
	// interval is the planner's MaxCacheInterval (1 = caching off).
	interval int
	// budgetFrac is the fraction of each submitted job's steps the planner
	// may approximate (0 = no budget, caching cannot engage).
	budgetFrac float64
}

// parseCacheKnobs validates -cache-interval and -quality-budget. The
// interval must lie in [1, core.MaxCacheIntervalCap] — the planner would
// silently clamp anything else, and a silently reinterpreted flag is a
// misconfiguration hidden from the operator. The budget is a fraction of
// each job's steps, so it must lie in [0, 1].
func parseCacheKnobs(interval int, budgetFrac float64) (cacheKnobs, error) {
	if interval < 1 || interval > core.MaxCacheIntervalCap {
		return cacheKnobs{}, fmt.Errorf("tetriserve: -cache-interval %d: %w (want 1..%d)",
			interval, ErrBadCacheInterval, core.MaxCacheIntervalCap)
	}
	if budgetFrac < 0 || budgetFrac > 1 {
		return cacheKnobs{}, fmt.Errorf("tetriserve: -quality-budget %v: %w (want 0..1)",
			budgetFrac, ErrBadQualityBudget)
	}
	return cacheKnobs{interval: interval, budgetFrac: budgetFrac}, nil
}
