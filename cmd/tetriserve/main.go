// Command tetriserve is the online serving daemon: it exposes the HTTP API
// over the simulated GPU cluster, running TetriServe's round-based
// scheduler (or a baseline, for comparison) in real time with a
// configurable speed-up.
//
//	tetriserve -addr :8900 -model flux -topo h100 -speedup 20
//	tetriserve -scheduler sp4          # serve with a fixed xDiT baseline
//	tetriserve -cache                  # enable Nirvana-style caching
//
// In -mode router the daemon serves no GPUs itself: it fronts a static list
// of shard daemons with deadline-aware admission and routing:
//
//	tetriserve -mode shard -addr :8901 &
//	tetriserve -mode shard -addr :8902 &
//	tetriserve -mode router -addr :8900 -shards http://localhost:8901,http://localhost:8902
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"tetriserve/internal/cache"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/router"
	"tetriserve/internal/sched"
	"tetriserve/internal/server"
	"tetriserve/internal/simgpu"
)

func main() {
	addr := flag.String("addr", ":8900", "listen address")
	mode := flag.String("mode", "shard", "mode: shard (serve GPUs) | router (front shard daemons)")
	mdlName := flag.String("model", "flux", "model: flux | sd3")
	topoName := flag.String("topo", "h100", "topology: h100 | a40")
	speedup := flag.Float64("speedup", 20, "simulated seconds per wall second")
	schedName := flag.String("scheduler", "tetriserve", "tetriserve | sp1 | sp2 | sp4 | sp8 | rssp | edf")
	granularity := flag.Int("granularity", 5, "TetriServe step granularity per round")
	useCache := flag.Bool("cache", false, "enable Nirvana-style approximate latent cache")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	shardList := flag.String("shards", "", "router mode: comma-separated shard base URLs (name=url or url)")
	tenantWeights := flag.String("tenant-weights", "", "router mode: comma-separated tenant=weight pairs")
	flag.Parse()

	switch *mode {
	case "shard":
		runShard(*addr, *mdlName, *topoName, *speedup, *schedName, *granularity, *useCache, *pprofOn)
	case "router":
		runRouter(*addr, *shardList, *tenantWeights)
	default:
		log.Fatalf("tetriserve: unknown -mode %q (want shard or router)", *mode)
	}
}

func runShard(addr, mdlName, topoName string, speedup float64, schedName string, granularity int, useCache, pprofOn bool) {
	mdl, err := model.ByName(mdlName)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := simgpu.ByName(topoName)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := buildScheduler(schedName, granularity, mdl, topo)
	if err != nil {
		log.Fatal(err)
	}

	cfg := server.DriverConfig{Model: mdl, Topo: topo, Scheduler: sc, Speedup: speedup}
	if useCache {
		cfg.Cache = cache.New(cache.DefaultConfig())
	}
	driver, err := server.NewDriver(cfg)
	if err != nil {
		log.Fatal(err)
	}
	driver.Start()
	defer driver.Stop()

	api := server.NewAPI(driver)
	api.Pprof = pprofOn
	log.Printf("tetriserve: %s on %s, scheduler=%s, speedup=%.0fx, listening on %s",
		mdl.Name, topo.Name, sc.Name(), speedup, addr)
	serve(addr, api.Handler())
}

func runRouter(addr, shardList, tenantWeights string) {
	shards, err := parseShards(shardList)
	if err != nil {
		log.Fatal(err)
	}
	weights, err := parseWeights(tenantWeights)
	if err != nil {
		log.Fatal(err)
	}
	api, err := server.NewRouterAPI(router.Config{TenantWeights: weights}, shards)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Name()
	}
	log.Printf("tetriserve: router over %d shards (%s), listening on %s",
		len(shards), strings.Join(names, ", "), addr)
	serve(addr, api.Handler())
}

func serve(addr string, h http.Handler) {
	srv := &http.Server{Addr: addr, Handler: h}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		_ = srv.Close()
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// parseShards resolves the -shards flag: "url" or "name=url", comma-separated.
func parseShards(list string) ([]server.RouterShard, error) {
	var shards []server.RouterShard
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, url := "", item
		if k := strings.Index(item, "="); k >= 0 && !strings.Contains(item[:k], "/") {
			name, url = item[:k], item[k+1:]
		}
		shards = append(shards, server.NewRemoteShard(name, url))
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("tetriserve: -mode router needs -shards url[,url...]")
	}
	return shards, nil
}

// parseWeights resolves the -tenant-weights flag: "tenant=weight" pairs.
func parseWeights(list string) (map[string]float64, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	weights := map[string]float64{}
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		k := strings.Index(item, "=")
		if k < 0 {
			return nil, fmt.Errorf("tetriserve: invalid tenant weight %q (want tenant=weight)", item)
		}
		w, err := strconv.ParseFloat(item[k+1:], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tetriserve: invalid tenant weight %q", item)
		}
		weights[item[:k]] = w
	}
	return weights, nil
}

// buildScheduler resolves the -scheduler flag.
func buildScheduler(name string, granularity int, mdl *model.Model, topo *simgpu.Topology) (sched.Scheduler, error) {
	switch {
	case name == "tetriserve":
		prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
		cfg := core.DefaultConfig()
		cfg.StepGranularity = granularity
		return core.NewScheduler(prof, topo, cfg), nil
	case strings.HasPrefix(name, "sp"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "sp"))
		if err != nil || k <= 0 || k > topo.N {
			return nil, fmt.Errorf("tetriserve: invalid fixed degree %q for %d GPUs", name, topo.N)
		}
		return sched.NewFixedSP(k), nil
	case name == "rssp":
		return sched.NewRSSP(topo.N), nil
	case name == "edf":
		return sched.NewEDF(), nil
	}
	return nil, fmt.Errorf("tetriserve: unknown scheduler %q", name)
}
