// Command tetriserve is the online serving daemon: it exposes the HTTP API
// over the simulated GPU cluster, running TetriServe's round-based
// scheduler (or a baseline, for comparison) in real time with a
// configurable speed-up.
//
//	tetriserve -addr :8900 -model flux -topo h100 -speedup 20
//	tetriserve -scheduler sp4          # serve with a fixed xDiT baseline
//	tetriserve -cache                  # enable Nirvana-style caching
//
// In -mode router the daemon serves no GPUs itself: it fronts a static list
// of shard daemons with deadline-aware admission and routing:
//
//	tetriserve -mode shard -addr :8901 &
//	tetriserve -mode shard -addr :8902 &
//	tetriserve -mode router -addr :8900 -shards http://localhost:8901,http://localhost:8902
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tetriserve/internal/cache"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/rebalance"
	"tetriserve/internal/router"
	"tetriserve/internal/sched"
	"tetriserve/internal/server"
	"tetriserve/internal/simgpu"
)

func main() {
	addr := flag.String("addr", ":8900", "listen address")
	mode := flag.String("mode", "shard", "mode: shard (serve GPUs) | router (front shard daemons)")
	mdlName := flag.String("model", "flux", "model: flux | sd3")
	topoName := flag.String("topo", "h100", "topology: h100 | a40")
	speedup := flag.Float64("speedup", 20, "simulated seconds per wall second")
	schedName := flag.String("scheduler", "tetriserve", "tetriserve | sp1 | sp2 | sp4 | sp8 | rssp | edf")
	granularity := flag.Int("granularity", 5, "TetriServe step granularity per round")
	useCache := flag.Bool("cache", false, "enable Nirvana-style approximate latent cache")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	cacheInterval := flag.Int("cache-interval", 1, "shard mode: max step-cache interval the planner may assign (1 = caching off, max 8)")
	qualityBudget := flag.Float64("quality-budget", 0, "shard mode: fraction of each job's steps the planner may approximate via the step cache (0..1)")
	shardList := flag.String("shards", "", "router mode: comma-separated shard base URLs (name=url or url)")
	tenantWeights := flag.String("tenant-weights", "", "router mode: comma-separated tenant=weight pairs")
	probeTTL := flag.Duration("probe-ttl", 0, "router mode: cache shard feasibility probes for this long (0 = off)")
	rebalanceOn := flag.Bool("rebalance", false, "router mode: enable elastic GPU rebalancing across shards")
	rebalanceGPUs := flag.String("rebalance-gpus", "", "router mode: per-shard init:max GPU counts, e.g. 2:8,2:8 (required with -rebalance)")
	rebalanceEvery := flag.Duration("rebalance-interval", 10*time.Second, "router mode: elastic decision cadence")
	rebalanceGap := flag.Float64("rebalance-gap", 2.0, "router mode: min per-GPU queue-drain gap (seconds) before moving a GPU")
	rebalanceMin := flag.Int("rebalance-min-gpus", 1, "router mode: floor below which a shard never donates")
	flag.Parse()

	switch *mode {
	case "shard":
		knobs, err := parseCacheKnobs(*cacheInterval, *qualityBudget)
		if err != nil {
			log.Fatal(err)
		}
		runShard(*addr, *mdlName, *topoName, *speedup, *schedName, *granularity, *useCache, *pprofOn, knobs)
	case "router":
		runRouter(routerOptions{
			addr:           *addr,
			shardList:      *shardList,
			tenantWeights:  *tenantWeights,
			probeTTL:       *probeTTL,
			rebalance:      *rebalanceOn,
			rebalanceGPUs:  *rebalanceGPUs,
			rebalanceEvery: *rebalanceEvery,
			rebalanceGap:   *rebalanceGap,
			rebalanceMin:   *rebalanceMin,
		})
	default:
		log.Fatalf("tetriserve: unknown -mode %q (want shard or router)", *mode)
	}
}

func runShard(addr, mdlName, topoName string, speedup float64, schedName string, granularity int, useCache, pprofOn bool, knobs cacheKnobs) {
	mdl, err := model.ByName(mdlName)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := simgpu.ByName(topoName)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := buildScheduler(schedName, granularity, knobs.interval, mdl, topo)
	if err != nil {
		log.Fatal(err)
	}

	cfg := server.DriverConfig{
		Model: mdl, Topo: topo, Scheduler: sc, Speedup: speedup,
		QualityBudgetFrac: knobs.budgetFrac,
	}
	if useCache {
		cfg.Cache = cache.New(cache.DefaultConfig())
	}
	driver, err := server.NewDriver(cfg)
	if err != nil {
		log.Fatal(err)
	}
	driver.Start()
	defer driver.Stop()

	api := server.NewAPI(driver)
	api.Pprof = pprofOn
	log.Printf("tetriserve: %s on %s, scheduler=%s, speedup=%.0fx, listening on %s",
		mdl.Name, topo.Name, sc.Name(), speedup, addr)
	serve(addr, api.Handler())
}

// routerOptions carries the parsed -mode router flags.
type routerOptions struct {
	addr           string
	shardList      string
	tenantWeights  string
	probeTTL       time.Duration
	rebalance      bool
	rebalanceGPUs  string
	rebalanceEvery time.Duration
	rebalanceGap   float64
	rebalanceMin   int
}

func runRouter(opt routerOptions) {
	shards, err := parseShards(opt.shardList)
	if err != nil {
		log.Fatal(err)
	}
	weights, err := parseWeights(opt.tenantWeights)
	if err != nil {
		log.Fatal(err)
	}
	api, err := server.NewRouterAPI(router.Config{
		TenantWeights: weights,
		ProbeTTL:      opt.probeTTL,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}
	if opt.rebalance {
		init, max, err := parseRebalanceGPUs(opt.rebalanceGPUs, len(shards))
		if err != nil {
			log.Fatal(err)
		}
		resizable := make([]server.ResizableShard, len(shards))
		for i, s := range shards {
			rs, ok := s.(server.ResizableShard)
			if !ok {
				log.Fatalf("tetriserve: shard %s does not support resizing", s.Name())
			}
			resizable[i] = rs
		}
		reb, err := server.NewLiveRebalancer(server.LiveRebalancerConfig{
			Shards:      resizable,
			InitialGPUs: init,
			MaxGPUs:     max,
			Policy: rebalance.New(rebalance.Config{
				MinGPUs:         opt.rebalanceMin,
				DrainGapSeconds: opt.rebalanceGap,
			}),
			Interval: opt.rebalanceEvery,
			Router:   api.Router(),
			Logf:     log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		reb.Start()
		defer reb.Stop()
		api.AttachRebalancer(reb)
		log.Printf("tetriserve: elastic rebalancing every %s (gap %.1fs, min %d GPUs)",
			opt.rebalanceEvery, opt.rebalanceGap, opt.rebalanceMin)
	}
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Name()
	}
	log.Printf("tetriserve: router over %d shards (%s), listening on %s",
		len(shards), strings.Join(names, ", "), opt.addr)
	serve(opt.addr, api.Handler())
}

func serve(addr string, h http.Handler) {
	srv := &http.Server{Addr: addr, Handler: h}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		_ = srv.Close()
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// Flag-parse error kinds, distinguishable with errors.Is so tests (and any
// future config loader) can assert on the cause rather than message text.
var (
	ErrNoShards        = errors.New("no shards configured")
	ErrDuplicateShard  = errors.New("duplicate shard name")
	ErrEmptyShardURL   = errors.New("empty shard URL")
	ErrMalformedPair   = errors.New("malformed pair")
	ErrBadWeight       = errors.New("weight must be a positive number")
	ErrDuplicateTenant = errors.New("duplicate tenant")
	ErrBadGPUCount     = errors.New("invalid GPU count")
	ErrShardCount      = errors.New("wrong number of shard entries")
)

// parseShards resolves the -shards flag: "url" or "name=url", comma-separated.
// Duplicate shard names (explicit or URL-defaulted) are rejected: the router
// keys stats and routing decisions by name, so two shards sharing one would
// silently merge in every ledger.
func parseShards(list string) ([]server.RouterShard, error) {
	var shards []server.RouterShard
	seen := map[string]bool{}
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, url := "", item
		if k := strings.Index(item, "="); k >= 0 && !strings.Contains(item[:k], "/") {
			name, url = item[:k], item[k+1:]
		}
		if strings.TrimSpace(url) == "" {
			return nil, fmt.Errorf("tetriserve: -shards entry %q: %w", item, ErrEmptyShardURL)
		}
		s := server.NewRemoteShard(name, url)
		if seen[s.Name()] {
			return nil, fmt.Errorf("tetriserve: -shards: %w: %q", ErrDuplicateShard, s.Name())
		}
		seen[s.Name()] = true
		shards = append(shards, s)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("tetriserve: -mode router needs -shards url[,url...]: %w", ErrNoShards)
	}
	return shards, nil
}

// parseWeights resolves the -tenant-weights flag: "tenant=weight" pairs.
// Malformed pairs, empty tenant names, non-positive or non-numeric weights,
// and duplicate tenants are all rejected — a silently-last-wins duplicate
// would make fair shares depend on flag order.
func parseWeights(list string) (map[string]float64, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	weights := map[string]float64{}
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		k := strings.Index(item, "=")
		if k < 0 {
			return nil, fmt.Errorf("tetriserve: -tenant-weights entry %q (want tenant=weight): %w", item, ErrMalformedPair)
		}
		tenant := strings.TrimSpace(item[:k])
		if tenant == "" {
			return nil, fmt.Errorf("tetriserve: -tenant-weights entry %q: %w", item, ErrMalformedPair)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(item[k+1:]), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tetriserve: -tenant-weights entry %q: %w", item, ErrBadWeight)
		}
		if _, ok := weights[tenant]; ok {
			return nil, fmt.Errorf("tetriserve: -tenant-weights: %w: %q", ErrDuplicateTenant, tenant)
		}
		weights[tenant] = w
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("tetriserve: -tenant-weights %q holds no pairs: %w", list, ErrMalformedPair)
	}
	return weights, nil
}

// parseRebalanceGPUs resolves the -rebalance-gpus flag: per-shard "init:max"
// GPU counts, parallel to -shards.
func parseRebalanceGPUs(list string, nShards int) (init, max []int, err error) {
	items := []string{}
	for _, item := range strings.Split(list, ",") {
		if item = strings.TrimSpace(item); item != "" {
			items = append(items, item)
		}
	}
	if len(items) != nShards {
		return nil, nil, fmt.Errorf("tetriserve: -rebalance-gpus has %d entries for %d shards: %w",
			len(items), nShards, ErrShardCount)
	}
	for _, item := range items {
		k := strings.Index(item, ":")
		if k < 0 {
			return nil, nil, fmt.Errorf("tetriserve: -rebalance-gpus entry %q (want init:max): %w", item, ErrMalformedPair)
		}
		i, err1 := strconv.Atoi(strings.TrimSpace(item[:k]))
		m, err2 := strconv.Atoi(strings.TrimSpace(item[k+1:]))
		if err1 != nil || err2 != nil || i < 0 || m <= 0 || i > m {
			return nil, nil, fmt.Errorf("tetriserve: -rebalance-gpus entry %q: %w", item, ErrBadGPUCount)
		}
		init = append(init, i)
		max = append(max, m)
	}
	return init, max, nil
}

// buildScheduler resolves the -scheduler flag.
func buildScheduler(name string, granularity, cacheInterval int, mdl *model.Model, topo *simgpu.Topology) (sched.Scheduler, error) {
	switch {
	case name == "tetriserve":
		prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
		cfg := core.DefaultConfig()
		cfg.StepGranularity = granularity
		cfg.MaxCacheInterval = cacheInterval
		return core.NewScheduler(prof, topo, cfg), nil
	case strings.HasPrefix(name, "sp"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "sp"))
		if err != nil || k <= 0 || k > topo.N {
			return nil, fmt.Errorf("tetriserve: invalid fixed degree %q for %d GPUs", name, topo.N)
		}
		return sched.NewFixedSP(k), nil
	case name == "rssp":
		return sched.NewRSSP(topo.N), nil
	case name == "edf":
		return sched.NewEDF(), nil
	}
	return nil, fmt.Errorf("tetriserve: unknown scheduler %q", name)
}
