// Command tetriserve is the online serving daemon: it exposes the HTTP API
// over the simulated GPU cluster, running TetriServe's round-based
// scheduler (or a baseline, for comparison) in real time with a
// configurable speed-up.
//
//	tetriserve -addr :8900 -model flux -topo h100 -speedup 20
//	tetriserve -scheduler sp4          # serve with a fixed xDiT baseline
//	tetriserve -cache                  # enable Nirvana-style caching
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"tetriserve/internal/cache"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/server"
	"tetriserve/internal/simgpu"
)

func main() {
	addr := flag.String("addr", ":8900", "listen address")
	mdlName := flag.String("model", "flux", "model: flux | sd3")
	topoName := flag.String("topo", "h100", "topology: h100 | a40")
	speedup := flag.Float64("speedup", 20, "simulated seconds per wall second")
	schedName := flag.String("scheduler", "tetriserve", "tetriserve | sp1 | sp2 | sp4 | sp8 | rssp | edf")
	granularity := flag.Int("granularity", 5, "TetriServe step granularity per round")
	useCache := flag.Bool("cache", false, "enable Nirvana-style approximate latent cache")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	mdl, err := model.ByName(*mdlName)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := simgpu.ByName(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := buildScheduler(*schedName, *granularity, mdl, topo)
	if err != nil {
		log.Fatal(err)
	}

	cfg := server.DriverConfig{Model: mdl, Topo: topo, Scheduler: sc, Speedup: *speedup}
	if *useCache {
		cfg.Cache = cache.New(cache.DefaultConfig())
	}
	driver, err := server.NewDriver(cfg)
	if err != nil {
		log.Fatal(err)
	}
	driver.Start()
	defer driver.Stop()

	api := server.NewAPI(driver)
	api.Pprof = *pprofOn
	srv := &http.Server{Addr: *addr, Handler: api.Handler()}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		_ = srv.Close()
	}()

	log.Printf("tetriserve: %s on %s, scheduler=%s, speedup=%.0fx, listening on %s",
		mdl.Name, topo.Name, sc.Name(), *speedup, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// buildScheduler resolves the -scheduler flag.
func buildScheduler(name string, granularity int, mdl *model.Model, topo *simgpu.Topology) (sched.Scheduler, error) {
	switch {
	case name == "tetriserve":
		prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
		cfg := core.DefaultConfig()
		cfg.StepGranularity = granularity
		return core.NewScheduler(prof, topo, cfg), nil
	case strings.HasPrefix(name, "sp"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "sp"))
		if err != nil || k <= 0 || k > topo.N {
			return nil, fmt.Errorf("tetriserve: invalid fixed degree %q for %d GPUs", name, topo.N)
		}
		return sched.NewFixedSP(k), nil
	case name == "rssp":
		return sched.NewRSSP(topo.N), nil
	case name == "edf":
		return sched.NewEDF(), nil
	}
	return nil, fmt.Errorf("tetriserve: unknown scheduler %q", name)
}
