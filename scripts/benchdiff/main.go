// Command benchdiff compares two tetribench JSON snapshots and exits
// non-zero when the candidate regresses against the baseline: more than
// +20% ns/op on any benchmark, or any increase at all in allocs/op (the
// hot paths are pinned at zero and must stay there).
//
// Usage:
//
//	go run ./scripts/benchdiff [-ns-tolerance 0.20] [-min-ns-delta 2000] baseline.json candidate.json
//
// A ns/op regression must exceed the fractional tolerance AND the absolute
// floor to fail: nanosecond-scale benchmarks swing past 20% from scheduler
// jitter alone, and the floor keeps them from flapping without loosening
// the gate on the microsecond-scale paths that matter.
//
// Benchmarks present in only one file are reported but never fail the
// gate, so adding a benchmark does not require lock-step snapshot updates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Bench    string  `json:"bench"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

func load(path string) (map[string]record, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var recs []record
	if err := json.Unmarshal(raw, &recs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]record, len(recs))
	order := make([]string, 0, len(recs))
	for _, r := range recs {
		if _, dup := m[r.Bench]; !dup {
			order = append(order, r.Bench)
		}
		m[r.Bench] = r
	}
	return m, order, nil
}

func main() {
	tol := flag.Float64("ns-tolerance", 0.20, "allowed fractional ns/op growth before failing")
	minNs := flag.Float64("min-ns-delta", 2000, "absolute ns/op growth a regression must also exceed")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-ns-tolerance f] baseline.json candidate.json")
		os.Exit(2)
	}
	base, order, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, candOrder, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	failed := 0
	for _, name := range order {
		b := base[name]
		c, ok := cand[name]
		if !ok {
			fmt.Printf("  %-40s baseline-only (skipped)\n", name)
			continue
		}
		delta := 0.0
		if b.NsOp > 0 {
			delta = (c.NsOp - b.NsOp) / b.NsOp
		}
		status := "ok"
		switch {
		case c.AllocsOp > b.AllocsOp:
			status = fmt.Sprintf("FAIL allocs/op %d -> %d", b.AllocsOp, c.AllocsOp)
			failed++
		case delta > *tol && c.NsOp-b.NsOp > *minNs:
			status = fmt.Sprintf("FAIL ns/op +%.1f%% (limit +%.0f%%)", delta*100, *tol*100)
			failed++
		}
		fmt.Printf("  %-40s %12.0f -> %12.0f ns/op (%+6.1f%%)  %3d -> %3d allocs/op  %s\n",
			name, b.NsOp, c.NsOp, delta*100, b.AllocsOp, c.AllocsOp, status)
	}
	for _, name := range candOrder {
		if _, ok := base[name]; !ok {
			fmt.Printf("  %-40s new benchmark (not gated)\n", name)
		}
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d regression(s) vs %s\n", failed, flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions vs %s\n", flag.Arg(0))
}
