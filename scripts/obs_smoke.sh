#!/usr/bin/env bash
# Observability smoke test: boot the daemon, drive a little load, and prove
# the whole telemetry plane answers — /metrics scrapes as Prometheus text,
# /v1/rounds explains recent decisions, the follow stream delivers live
# events, and tetrictl's tail/top front-ends work against a real server.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:8933}"
BASE="http://$ADDR"
SHARD_A_ADDR="${SHARD_A_ADDR:-127.0.0.1:8934}"
SHARD_B_ADDR="${SHARD_B_ADDR:-127.0.0.1:8935}"
ROUTER_ADDR="${ROUTER_ADDR:-127.0.0.1:8936}"
ROUTER_BASE="http://$ROUTER_ADDR"
TMP="$(mktemp -d)"
trap 'kill "$SERVE_PID" "$SHARD_A_PID" "$SHARD_B_PID" "$ROUTER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== building =="
go build -o "$TMP/tetriserve" ./cmd/tetriserve
go build -o "$TMP/tetrictl" ./cmd/tetrictl

echo "== starting tetriserve on $ADDR =="
"$TMP/tetriserve" -addr "$ADDR" -speedup 50 -pprof &
SERVE_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "$BASE/v1/stats" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "server died during startup" >&2
    exit 1
  fi
  sleep 0.2
done
curl -fsS "$BASE/v1/stats" >/dev/null

echo "== tailing the live trace while load runs =="
"$TMP/tetrictl" -server "$BASE" tail -for 25s >"$TMP/tail.jsonl" &
TAIL_PID=$!

echo "== submitting load =="
for i in 1 2 3; do
  curl -fsS -X POST "$BASE/v1/images/generations" \
    -H 'Content-Type: application/json' \
    -d '{"prompt":"obs smoke '"$i"'","width":512,"height":512}' >/dev/null
done

# Wait until everything submitted has finalized.
for i in $(seq 1 100); do
  done_count=$(curl -fsS "$BASE/v1/stats" | sed -n 's/.*"completed":\([0-9]*\).*/\1/p')
  [ "${done_count:-0}" -ge 3 ] && break
  sleep 0.3
done
[ "${done_count:-0}" -ge 3 ] || { echo "jobs never completed" >&2; exit 1; }

echo "== scraping /metrics =="
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
grep -q '^# TYPE tetriserve_requests_total counter$' "$TMP/metrics.txt"
grep -q '^tetriserve_requests_total 3$' "$TMP/metrics.txt"
grep -q '^tetriserve_completed_total 3$' "$TMP/metrics.txt"
grep -q '^# TYPE tetriserve_e2e_latency_seconds histogram$' "$TMP/metrics.txt"
grep -q 'tetriserve_e2e_latency_seconds_bucket{resolution="512x512",le="+Inf"} 3' "$TMP/metrics.txt"
echo "   $(grep -c '^tetriserve' "$TMP/metrics.txt") tetriserve samples"

echo "== /v1/rounds =="
curl -fsS "$BASE/v1/rounds?n=5" >"$TMP/rounds.json"
grep -q '"degree"' "$TMP/rounds.json"
grep -q '"deadline_slack_us"' "$TMP/rounds.json"

echo "== pprof (flag-gated) =="
curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null

echo "== tetrictl top =="
"$TMP/tetrictl" -server "$BASE" top

echo "== live trace tail =="
wait "$TAIL_PID" || true
head -10 "$TMP/tail.jsonl"
lines=$(wc -l <"$TMP/tail.jsonl")
# 3 jobs → at least arrival+complete each, plus block events.
[ "$lines" -ge 6 ] || { echo "follow stream delivered only $lines events" >&2; exit 1; }
grep -q '"kind":"arrival"' "$TMP/tail.jsonl"
grep -q '"kind":"complete"' "$TMP/tail.jsonl"

# --- fleet section: router + 2 shards, one traced request end-to-end -------

echo "== starting 2 shards + router =="
"$TMP/tetriserve" -addr "$SHARD_A_ADDR" -speedup 50 &
SHARD_A_PID=$!
"$TMP/tetriserve" -addr "$SHARD_B_ADDR" -speedup 50 &
SHARD_B_PID=$!
for addr in "$SHARD_A_ADDR" "$SHARD_B_ADDR"; do
  for i in $(seq 1 50); do
    curl -fsS "http://$addr/v1/stats" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "http://$addr/v1/stats" >/dev/null
done
"$TMP/tetriserve" -mode router -addr "$ROUTER_ADDR" \
  -shards "a=http://$SHARD_A_ADDR,b=http://$SHARD_B_ADDR" &
ROUTER_PID=$!
for i in $(seq 1 50); do
  curl -fsS "$ROUTER_BASE/v1/router/stats" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$ROUTER_BASE/v1/router/stats" >/dev/null

echo "== routed traced request =="
curl -fsS -X POST "$ROUTER_BASE/v1/generate" \
  -H 'Content-Type: application/json' \
  -d '{"prompt":"fleet smoke","width":512,"height":512,"slo_ms":30000,"tenant":"smoke"}' \
  >"$TMP/routed.json"
trace=$(sed -n 's/.*"trace_id":"\([^"]*\)".*/\1/p' "$TMP/routed.json")
[ -n "$trace" ] || { echo "routed job carries no trace_id: $(cat "$TMP/routed.json")" >&2; exit 1; }
echo "   trace $trace"

# Wait for the timeline to finalize, then assert its shape.
for i in $(seq 1 100); do
  curl -fsS "$ROUTER_BASE/v1/requests/$trace" >"$TMP/timeline.json" 2>/dev/null || true
  grep -q '"done":true' "$TMP/timeline.json" 2>/dev/null && break
  sleep 0.3
done
grep -q '"done":true' "$TMP/timeline.json" || { echo "timeline never finalized" >&2; exit 1; }
spans=$(grep -o '"kind":' "$TMP/timeline.json" | wc -l)
[ "$spans" -ge 4 ] || { echo "timeline has only $spans spans, want >=4" >&2; exit 1; }
grep -q '"kind":"admission"' "$TMP/timeline.json"
grep -q '"kind":"compute"' "$TMP/timeline.json"
grep -q '"kind":"finish"' "$TMP/timeline.json"
grep -q '"tenant":"smoke"' "$TMP/timeline.json"
echo "   timeline finalized with $spans spans"

echo "== /v1/fleet aggregates both shards =="
curl -fsS "$ROUTER_BASE/v1/fleet" >"$TMP/fleet.json"
grep -q '"name":"a"' "$TMP/fleet.json"
grep -q '"name":"b"' "$TMP/fleet.json"
grep -q '"routed":1' "$TMP/fleet.json"
reachable=$(grep -o '"reachable":true' "$TMP/fleet.json" | wc -l)
[ "$reachable" -eq 2 ] || { echo "fleet reports $reachable reachable shards, want 2" >&2; exit 1; }

echo "== tetrictl trace / fleet / top -shards =="
"$TMP/tetrictl" -server "$ROUTER_BASE" trace "$trace"
"$TMP/tetrictl" -server "$ROUTER_BASE" fleet
"$TMP/tetrictl" -server "$ROUTER_BASE" top -shards

echo "== shard metrics carry the lifecycle histograms =="
curl -fsS "http://$SHARD_A_ADDR/metrics" >"$TMP/shard_metrics.txt"
curl -fsS "http://$SHARD_B_ADDR/metrics" >>"$TMP/shard_metrics.txt"
grep -q '^# TYPE tetriserve_phase_seconds histogram$' "$TMP/shard_metrics.txt"
grep -q '^# TYPE tetriserve_round_duration_seconds histogram$' "$TMP/shard_metrics.txt"
grep -q 'tetriserve_slo_attainment{tenant="smoke"}' "$TMP/shard_metrics.txt"

echo "obs-smoke OK ($lines live events, fleet trace $trace: $spans spans)"
