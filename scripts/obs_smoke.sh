#!/usr/bin/env bash
# Observability smoke test: boot the daemon, drive a little load, and prove
# the whole telemetry plane answers — /metrics scrapes as Prometheus text,
# /v1/rounds explains recent decisions, the follow stream delivers live
# events, and tetrictl's tail/top front-ends work against a real server.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:8933}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== building =="
go build -o "$TMP/tetriserve" ./cmd/tetriserve
go build -o "$TMP/tetrictl" ./cmd/tetrictl

echo "== starting tetriserve on $ADDR =="
"$TMP/tetriserve" -addr "$ADDR" -speedup 50 -pprof &
SERVE_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "$BASE/v1/stats" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "server died during startup" >&2
    exit 1
  fi
  sleep 0.2
done
curl -fsS "$BASE/v1/stats" >/dev/null

echo "== tailing the live trace while load runs =="
"$TMP/tetrictl" -server "$BASE" tail -for 25s >"$TMP/tail.jsonl" &
TAIL_PID=$!

echo "== submitting load =="
for i in 1 2 3; do
  curl -fsS -X POST "$BASE/v1/images/generations" \
    -H 'Content-Type: application/json' \
    -d '{"prompt":"obs smoke '"$i"'","width":512,"height":512}' >/dev/null
done

# Wait until everything submitted has finalized.
for i in $(seq 1 100); do
  done_count=$(curl -fsS "$BASE/v1/stats" | sed -n 's/.*"completed":\([0-9]*\).*/\1/p')
  [ "${done_count:-0}" -ge 3 ] && break
  sleep 0.3
done
[ "${done_count:-0}" -ge 3 ] || { echo "jobs never completed" >&2; exit 1; }

echo "== scraping /metrics =="
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
grep -q '^# TYPE tetriserve_requests_total counter$' "$TMP/metrics.txt"
grep -q '^tetriserve_requests_total 3$' "$TMP/metrics.txt"
grep -q '^tetriserve_completed_total 3$' "$TMP/metrics.txt"
grep -q '^# TYPE tetriserve_e2e_latency_seconds histogram$' "$TMP/metrics.txt"
grep -q 'tetriserve_e2e_latency_seconds_bucket{resolution="512x512",le="+Inf"} 3' "$TMP/metrics.txt"
echo "   $(grep -c '^tetriserve' "$TMP/metrics.txt") tetriserve samples"

echo "== /v1/rounds =="
curl -fsS "$BASE/v1/rounds?n=5" >"$TMP/rounds.json"
grep -q '"degree"' "$TMP/rounds.json"
grep -q '"deadline_slack_us"' "$TMP/rounds.json"

echo "== pprof (flag-gated) =="
curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null

echo "== tetrictl top =="
"$TMP/tetrictl" -server "$BASE" top

echo "== live trace tail =="
wait "$TAIL_PID" || true
head -10 "$TMP/tail.jsonl"
lines=$(wc -l <"$TMP/tail.jsonl")
# 3 jobs → at least arrival+complete each, plus block events.
[ "$lines" -ge 6 ] || { echo "follow stream delivered only $lines events" >&2; exit 1; }
grep -q '"kind":"arrival"' "$TMP/tail.jsonl"
grep -q '"kind":"complete"' "$TMP/tail.jsonl"

echo "obs-smoke OK ($lines live events)"
