package tetriserve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	tetriserve "tetriserve"
)

// TestFacadeEndToEnd drives the whole public API: profile, schedule,
// simulate, measure — the quickstart path a downstream user takes.
func TestFacadeEndToEnd(t *testing.T) {
	mdl := tetriserve.FLUX()
	topo := tetriserve.H100x8()
	prof := tetriserve.Profile(mdl, topo)
	sch := tetriserve.NewScheduler(prof, topo, tetriserve.DefaultSchedulerConfig())

	res, err := tetriserve.Simulate(tetriserve.SimConfig{
		Model: mdl, Topo: topo, Scheduler: sch, Profile: prof,
		Requests: tetriserve.GenerateWorkload(tetriserve.WorkloadConfig{
			Model: mdl, Mix: tetriserve.UniformMix(),
			SLO: tetriserve.NewSLOPolicy(1.2), NumRequests: 80, Seed: 5,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sar := tetriserve.SAR(res); sar < 0.5 {
		t.Fatalf("facade SAR = %.2f, implausibly low", sar)
	}
	by := tetriserve.SARByResolution(res)
	if len(by) != 4 {
		t.Fatalf("per-resolution SAR missing entries: %v", by)
	}
	if tetriserve.MeanLatency(res) <= 0 {
		t.Fatal("no latency recorded")
	}
}

// TestFacadeBeatsBaselines pins the repository's headline through the
// public API alone.
func TestFacadeBeatsBaselines(t *testing.T) {
	mdl := tetriserve.FLUX()
	topo := tetriserve.H100x8()
	prof := tetriserve.Profile(mdl, topo)

	run := func(s tetriserve.Scheduler) float64 {
		res, err := tetriserve.Simulate(tetriserve.SimConfig{
			Model: mdl, Topo: topo, Scheduler: s, Profile: prof,
			Requests: tetriserve.GenerateWorkload(tetriserve.WorkloadConfig{
				Model: mdl, SLO: tetriserve.NewSLOPolicy(1.3), NumRequests: 200, Seed: 9,
			}),
			DropLateFactor: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tetriserve.SAR(res)
	}

	tetri := run(tetriserve.NewScheduler(prof, topo, tetriserve.DefaultSchedulerConfig()))
	for _, k := range []int{1, 2, 4, 8} {
		if b := run(tetriserve.NewFixedSP(k)); tetri < b {
			t.Errorf("TetriServe %.2f below xDiT SP=%d %.2f", tetri, k, b)
		}
	}
	if b := run(tetriserve.NewRSSP(8)); tetri < b {
		t.Errorf("TetriServe %.2f below RSSP %.2f", tetri, b)
	}
}

// TestFacadeServer spins the live HTTP surface through the facade.
func TestFacadeServer(t *testing.T) {
	mdl := tetriserve.FLUX()
	topo := tetriserve.H100x8()
	prof := tetriserve.Profile(mdl, topo)
	srv, err := tetriserve.NewServer(tetriserve.ServerConfig{
		Model: mdl, Topo: topo,
		Scheduler: tetriserve.NewScheduler(prof, topo, tetriserve.DefaultSchedulerConfig()),
		Speedup:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(tetriserve.NewServerHandler(srv))
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"prompt": "a floating island village, vivid colors",
		"width":  512, "height": 512,
	})
	resp, err := http.Post(ts.URL+"/v1/images/generations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not complete")
		}
		st, ok := srv.JobStatus(tetriserve.RequestID(job.ID))
		if ok && st.State == "completed" {
			if !st.MetSLO {
				t.Log("job missed SLO on a loaded test machine (acceptable)")
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFacadeCacheIntegration exercises the cache through the facade types.
func TestFacadeCacheIntegration(t *testing.T) {
	c := tetriserve.NewCache()
	p := tetriserve.Prompt{Text: "x", Theme: 3, Mods: []int{1, 2, 3}}
	c.Insert(p, tetriserve.Res512)
	if skip := c.Lookup(p, tetriserve.Res512, 50); skip != 25 {
		t.Fatalf("cache skip = %d, want 25", skip)
	}
}

// TestStandardResolutionAliases checks the re-exported constants.
func TestStandardResolutionAliases(t *testing.T) {
	if tetriserve.Res256.W != 256 || tetriserve.Res2048.H != 2048 {
		t.Fatal("resolution aliases wrong")
	}
	if tetriserve.SD3().Name != "SD3-Medium" || tetriserve.A40x4().N != 4 {
		t.Fatal("model/topology aliases wrong")
	}
	if tetriserve.SkewedMix(1.0).Name() == tetriserve.UniformMix().Name() {
		t.Fatal("mix constructors wrong")
	}
}
