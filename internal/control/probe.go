package control

import (
	"fmt"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/sched"
)

// Feasibility is the read-only deadline projection the admission router
// consults before placing a request on a loop: given the loop's current
// backlog and health, when would a hypothetical request of this shape
// plausibly start and finish, and can it still win its SLO?
//
// The projection is a fluid-model bound, deliberately built from the same
// quantities the scheduler itself reasons with (the offline profile's
// T(res,k) table, Algorithm 1's T_min survival bound) and nothing else:
//
//   - queue wait: the backlog's cheapest-possible GPU·seconds (each tracked
//     request costed at its GPU-hour-optimal degree, min_k k·T(res,k))
//     spread over the healthy devices;
//   - boundary wait: one τ when a round-based loop cannot admit eagerly
//     (eager admission off or no free GPUs), zero otherwise — mirroring the
//     loop's own arrival-path planning condition;
//   - service: remaining steps at the fastest profiled per-step time
//     (T_i^min, the same optimistic bound DefinitelyLate uses), plus the
//     per-block dispatch overhead.
//
// VAE decode is excluded, like the round explainer's survival verdict — the
// decode queue is execution-side state the control plane does not project.
// The probe is therefore optimistic: Winnable == false is a sound
// early-reject signal ("cannot win even under best-case packing"), while
// Winnable == true is a forecast, not a guarantee.
type Feasibility struct {
	// Now is the loop clock at probe time; Deadline is Now + the probed SLO.
	Now      time.Duration
	Deadline time.Duration
	// ProjectedStart/ProjectedFinish bound the hypothetical request's
	// execution window under the fluid model.
	ProjectedStart  time.Duration
	ProjectedFinish time.Duration
	// Winnable reports ProjectedFinish ≤ Deadline.
	Winnable bool
	// Slack is Deadline − ProjectedFinish (negative when not winnable: how
	// late the request would land at best).
	Slack time.Duration
	// QueueGPUSeconds is the tracked backlog's cheapest-possible GPU·seconds;
	// ServiceGPUSeconds is the probed request's own cheapest cost (the
	// router's fair-share ledger currency).
	QueueGPUSeconds   float64
	ServiceGPUSeconds float64
	// Pending/Running count tracked requests; HealthyGPUs/FreeGPUs describe
	// capacity at probe time.
	Pending     int
	Running     int
	HealthyGPUs int
	FreeGPUs    int
	// MinStepTime and MinStepDegree are the profile's fastest per-step
	// latency for the probed resolution and the degree achieving it.
	MinStepTime   time.Duration
	MinStepDegree int
	// MaxCacheInterval is the shard scheduler's step-cache ceiling (1 when
	// the scheduler does not expose or enable the cache dimension). When it
	// exceeds 1, CachedFinish projects the best cache-assisted completion —
	// every approximable step (outside the protected first/last
	// sched.CacheProtectedSteps) served at the discounted cost — and
	// CachedWinnable reports CachedFinish ≤ Deadline. With caching off both
	// mirror ProjectedFinish/Winnable exactly, so consumers that read the
	// cached projection behave bit-identically on cache-oblivious shards.
	MaxCacheInterval int
	CachedFinish     time.Duration
	CachedWinnable   bool
}

// ProbeFeasibility projects deadline feasibility for a hypothetical request
// (res, steps, slo) against the loop's current state without mutating any of
// it: no tracker insert, no scheduler invocation, no engine transition — the
// warm-start planner's caches, the decode queue, and the pending order are
// all untouched, so probing is invisible to subsequent plans (the property
// the router's no-mutation test pins down).
//
// steps ≤ 0 defaults to the model's step count. Unknown resolutions return
// an error: feasibility of an uncalibrated shape is undefined, and the
// router maps this to a client error rather than a 429.
//
// Like every other Loop method, ProbeFeasibility must run on the goroutine
// that owns the loop (the driver exposes it via a channel round-trip).
func (l *Loop) ProbeFeasibility(res model.Resolution, steps int, slo time.Duration) (Feasibility, error) {
	if !l.cfg.Profile.Has(res) {
		return Feasibility{}, fmt.Errorf("control: %v not in profile", res)
	}
	if steps <= 0 {
		steps = l.cfg.Model.DefaultSteps
	}
	now := l.clk.Now()
	f := Feasibility{
		Now:         now,
		Deadline:    now + slo,
		HealthyGPUs: l.eng.HealthyGPUs(),
		FreeGPUs:    l.eng.Free().Count(),
		Running:     len(l.running),
	}
	// Degrees the shard cannot form (profile calibrated on the full node,
	// capacity elastically shrunk below it) must not leak into the bound, or
	// a 2-GPU shard would promise 8-way step times it can never run.
	f.MinStepTime, f.MinStepDegree = l.minStepTimeWithin(res, f.HealthyGPUs)
	f.ServiceGPUSeconds = float64(steps) * l.minGPUSecondsWithin(res, f.HealthyGPUs)
	f.MaxCacheInterval = l.maxCacheInterval()
	if f.HealthyGPUs <= 0 {
		// A fully failed pool can never win; pin the projection at the
		// deadline horizon so Slack reports "late by the whole budget".
		f.ProjectedStart = f.Deadline
		f.ProjectedFinish = f.Deadline + slo
		f.Slack = f.Deadline - f.ProjectedFinish
		f.CachedFinish = f.ProjectedFinish
		return f, nil
	}

	// Backlog: every tracked, unfinished request costed at its cheapest
	// profiled degree. The pending list may hold stale entries for requests
	// that finished out of a block (same filter snapshotPending applies);
	// running requests are counted by their remaining steps only.
	var backlog float64
	for _, st := range l.pending {
		if st.Running || st.Remaining <= 0 || l.done[st.Req.ID] {
			continue
		}
		f.Pending++
		backlog += float64(st.Remaining) * l.minGPUSecondsWithin(st.Req.Res, f.HealthyGPUs)
	}
	for _, st := range l.running {
		if st.Remaining <= 0 {
			continue
		}
		backlog += float64(st.Remaining) * l.minGPUSecondsWithin(st.Req.Res, f.HealthyGPUs)
	}
	f.QueueGPUSeconds = backlog
	queueWait := time.Duration(backlog / float64(f.HealthyGPUs) * float64(time.Second))

	// Boundary wait mirrors the arrival path's planning condition: a
	// non-round-based loop plans on every arrival, and an eager round-based
	// loop plans immediately whenever a GPU is free; otherwise the request
	// waits out the current round.
	var boundary time.Duration
	if l.roundBased && !(l.eager && l.eng.Free() != 0) {
		boundary = l.tau
	}

	f.ProjectedStart = now + boundary + queueWait
	f.ProjectedFinish = f.ProjectedStart + time.Duration(steps)*f.MinStepTime + l.dispatchDelay()
	f.Winnable = f.ProjectedFinish <= f.Deadline
	f.Slack = f.Deadline - f.ProjectedFinish

	// Cache-assisted projection: the same fluid bound with every approximable
	// step (outside the protected first/last N, ignoring any per-request
	// budget — the probed request is hypothetical and has none yet) served at
	// the γ-discounted cost. With caching off this collapses to the plain
	// projection exactly (a = 0 path is not taken; the fields are copied).
	f.CachedFinish = f.ProjectedFinish
	f.CachedWinnable = f.Winnable
	if f.MaxCacheInterval > 1 {
		a := sched.ApproxSteps(steps-2*sched.CacheProtectedSteps, f.MaxCacheInterval)
		if a > 0 {
			gamma := l.cfg.Profile.CachedStepRelCost()
			service := time.Duration(steps-a)*f.MinStepTime +
				time.Duration(float64(a)*gamma*float64(f.MinStepTime))
			f.CachedFinish = f.ProjectedStart + service + l.dispatchDelay()
			f.CachedWinnable = f.CachedFinish <= f.Deadline
		}
	}
	return f, nil
}

// maxCacheInterval reports the scheduler's step-cache ceiling via an optional
// interface assertion (core.Scheduler exposes MaxCacheInterval; baselines do
// not and probe as cache-oblivious).
func (l *Loop) maxCacheInterval() int {
	if s, ok := l.cfg.Scheduler.(interface{ MaxCacheInterval() int }); ok {
		if c := s.MaxCacheInterval(); c > 1 {
			return c
		}
	}
	return 1
}

// minGPUSecondsWithin is the cheapest profiled per-step GPU·seconds for res
// over degrees the shard can actually form (k ≤ maxK) — min_k k·T(res,k),
// the §4.2.1 GPU-hour floor a perfectly packed schedule approaches. When no
// profiled degree fits (maxK below the smallest calibrated degree) the
// smallest degree is used so the projection stays finite and deterministic.
func (l *Loop) minGPUSecondsWithin(res model.Resolution, maxK int) float64 {
	best, found := 0.0, false
	for i, k := range l.cfg.Profile.Degrees() {
		if k > maxK && i > 0 {
			break // degrees are sorted ascending; keep i==0 as the fallback
		}
		if g := l.cfg.Profile.GPUSeconds(res, k); !found || g < best {
			best = g
			found = true
		}
	}
	return best
}

// minStepTimeWithin is Profile.MinStepTime restricted to degrees ≤ maxK,
// with the same smallest-degree fallback as minGPUSecondsWithin.
func (l *Loop) minStepTimeWithin(res model.Resolution, maxK int) (time.Duration, int) {
	var bestT time.Duration
	bestK, found := 0, false
	for i, k := range l.cfg.Profile.Degrees() {
		if k > maxK && i > 0 {
			break
		}
		if t := l.cfg.Profile.StepTime(res, k); !found || t < bestT {
			bestT, bestK = t, k
			found = true
		}
	}
	return bestT, bestK
}
