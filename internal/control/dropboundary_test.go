package control

import (
	"testing"
	"time"

	"tetriserve/internal/clock"
)

// driveToEmpty drains the event queue until every request is finalized.
func driveToEmpty(t *testing.T, l *Loop, clk *clock.Virtual) {
	t.Helper()
	for guard := 0; l.Unfinished() > 0; guard++ {
		if guard > 100_000 {
			t.Fatal("loop did not converge")
		}
		ev := l.NextEvent()
		if ev == nil {
			t.Fatalf("deadlock: %d unfinished, no events", l.Unfinished())
		}
		clk.Advance(ev.At)
		if err := l.Dispatch(l.PopEvent()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDropBoundaryExactTick pins the off-by-one at the drop boundary: a
// request whose drop limit falls exactly ON a round tick is still in budget
// at that tick (pastDrop is strictly ">") and expires only at the NEXT tick.
// An inconsistent boundary (">=" at either site) drops it one full round
// early.
func TestDropBoundaryExactTick(t *testing.T) {
	const tau = time.Second

	run := func(slo time.Duration, factor float64) (droppedAt time.Duration, cause DropCause) {
		clk := clock.NewVirtual()
		cfg := testConfig(idleSched{tau: tau})
		cfg.DropLateFactor = factor
		droppedAt = -1
		cfg.Hooks.Dropped = func(now time.Duration, o Outcome) {
			droppedAt, cause = now, o.Cause
		}
		l, err := New(cfg, clk)
		if err != nil {
			t.Fatal(err)
		}
		r := req(1, 0, slo)
		l.ScheduleArrival(r)
		l.Begin()
		driveToEmpty(t, l, clk)
		return droppedAt, cause
	}

	// Limit = 500ms × 2.0 = exactly the 1 s tick: in budget at 1 s, expired
	// at 2 s.
	at, cause := run(500*time.Millisecond, 2.0)
	if at != 2*tau {
		t.Fatalf("limit-on-tick request dropped at %v, want %v (the tick AFTER the limit)", at, 2*tau)
	}
	if cause != DropExpired {
		t.Fatalf("cause = %v, want DropExpired", cause)
	}

	// Limit = 499ms × 2.0 = 998 ms, strictly before the tick: expired at 1 s.
	if at, _ := run(499*time.Millisecond, 2.0); at != tau {
		t.Fatalf("limit-before-tick request dropped at %v, want %v", at, tau)
	}
}

// TestDropLimitAccessorMatchesLoop pins DropLimit as the single boundary
// authority shared by expiry (pastDrop) and delivery (finish).
func TestDropLimitAccessorMatchesLoop(t *testing.T) {
	clk := clock.NewVirtual()
	cfg := testConfig(idleSched{tau: time.Second})
	cfg.DropLateFactor = 4.0
	l, err := New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	r := req(7, 250*time.Millisecond, 2*time.Second)
	if got, want := l.DropLimit(r), 250*time.Millisecond+8*time.Second; got != want {
		t.Fatalf("DropLimit = %v, want %v", got, want)
	}
}
