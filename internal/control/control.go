// Package control is the clock-agnostic, round-based serving control plane —
// the single implementation of the scheduling loop the paper describes
// (deadline-aware allocation → knapsack packing → placement-preserving
// dispatch). It owns all request state (pending/running trackers), the τ
// round grid, plan → dispatch, fault requeue, drop/timeout expiry, and
// finish/drop bookkeeping.
//
// The loop is parameterized over clock.Clock and driven through an explicit
// event queue, so the exact same code runs in two worlds:
//
//   - internal/sim advances a clock.Virtual to each event and drains the
//     queue to completion (discrete-event simulation);
//   - internal/server sleeps on a clock.Real between events and feeds
//     arrivals and fault commands in from channels (live serving).
//
// Adapters observe per-request lifecycle transitions through Hooks (the
// driver mirrors them into its HTTP-visible job records); everything else —
// outcomes, run records, plan latencies, health counters — accumulates in
// the shared Result, which is why the simulator's trace export and the
// driver's /v1/stats agree by construction.
package control

import (
	"fmt"
	"slices"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/eventq"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// StepTrimmer is the hook cache-based acceleration (Nirvana, §6.2) plugs
// into: it may shrink a request's step count on arrival and observes
// completions to update its state. The simulator passes it through from its
// config; the driver wraps the approximate latent cache in one.
type StepTrimmer interface {
	// OnArrival returns how many initial steps to skip for the prompt.
	OnArrival(p workload.Prompt, res model.Resolution, steps int, now time.Duration) int
	// OnComplete records a served request for future reuse.
	OnComplete(p workload.Prompt, res model.Resolution, now time.Duration)
}

// RequeueCause explains why a running request went back to the pending
// queue: a GPU fault aborted its block, or an elastic capacity change
// preempted it with a planned handoff. Ordinary end-of-block requeues fire
// no hook (the request stays logically running between rounds).
type RequeueCause string

// Requeue causes.
const (
	RequeueFault  RequeueCause = "fault"
	RequeueResize RequeueCause = "resize"
)

// Hooks are optional per-transition callbacks for adapter-side bookkeeping
// (the driver's job-state mirror) and for observers such as the
// internal/invariant oracle. Every field may be nil. Hooks run on the loop's
// goroutine, synchronously with the transition they describe. Use Then to
// fan a transition out to several observers.
type Hooks struct {
	// Arriving fires before admission bookkeeping (before the trimmer and
	// the tracker insert) — the driver's on-demand profile extension point.
	Arriving func(now time.Duration, r *workload.Request)
	// Admitted fires once the request is tracked and pending.
	Admitted func(now time.Duration, r *workload.Request)
	// Started fires when a request joins a dispatched block.
	Started func(now time.Duration, id workload.RequestID)
	// Requeued fires when a fault or a capacity resize interrupts a
	// request's block and the survivor returns to the pending queue (not on
	// ordinary end-of-block requeues, which keep the request logically
	// running from the caller's view). cause says which interruption it was.
	Requeued func(now time.Duration, id workload.RequestID, cause RequeueCause)
	// StepsElided fires when a retired block (completed, aborted or
	// preempted) credited approximated steps against a request's quality
	// budget — the per-request record of where step caching spent quality.
	// approx is the number of steps the block's cache interval approximated
	// for this request. Only fires when approx > 0.
	StepsElided func(now time.Duration, id workload.RequestID, approx int)
	// Finished fires for completed requests, Dropped for expired ones
	// (timeout policy or no-requeue fault ablation).
	Finished func(now time.Duration, o Outcome)
	Dropped  func(now time.Duration, o Outcome)
	// PlanRejected / StartFailed fire when the loop degrades loudly.
	PlanRejected func(now time.Duration, err error)
	StartFailed  func(now time.Duration, err error)

	// PlanComputed fires after every scheduler invocation — before
	// validation, so rejected plans report solve latency too. Exactly one of
	// Planned or PlanRejected follows, synchronously; ctx aliases
	// scheduler-owned scratch storage and must only be read during the
	// callback. latency is the wall-clock solve time.
	PlanComputed func(now, latency time.Duration, ctx *sched.PlanContext)
	// RoundTick fires at every effective τ boundary (after overrun
	// deferral), with the grid-anchored tick time and the clock reading.
	RoundTick func(at, now time.Duration)

	// Planned fires after a plan passes validation and before dispatch.
	// ctx and plan alias scheduler-owned scratch storage: observers must
	// read synchronously and never retain either value past the callback.
	Planned func(now time.Duration, ctx *sched.PlanContext, plan []sched.Assignment)
	// RunStarted fires when the engine accepts a block; RunFinished fires
	// when the block retires at its end time. The *engine.Run is the loop's
	// live record — observers must not mutate it.
	RunStarted  func(now time.Duration, run *engine.Run)
	RunFinished func(now time.Duration, run *engine.Run)
	// RunAborted fires when a GPU fault kills an in-flight block, before the
	// surviving members are requeued or dropped. stepsDone credits the steps
	// each member completed before the fault.
	RunAborted func(now time.Duration, run *engine.Run, stepsDone map[workload.RequestID]int)
	// RunPreempted fires when a capacity resize preempts an in-flight block
	// (planned handoff: steps credited, latent retained on surviving
	// members), before the members are requeued.
	RunPreempted func(now time.Duration, run *engine.Run, stepsDone map[workload.RequestID]int)
	// Resized fires on every effective capacity change, with the GPU sets
	// the shard gave up and gained. A no-op resize (same mask) does not fire.
	Resized func(now time.Duration, removed, added simgpu.Mask)
	// GPUFailed and GPURecovered observe effective fault-plane transitions:
	// the mask holds only GPUs that actually changed state (re-failing a
	// dead GPU or recovering a healthy one does not fire).
	GPUFailed    func(now time.Duration, mask simgpu.Mask)
	GPURecovered func(now time.Duration, mask simgpu.Mask)
}

// Then returns hooks that invoke h's callback first and next's second for
// every transition, so several observers (the driver's job mirror, the
// invariant oracle) can watch one loop without knowing about each other.
func (h Hooks) Then(next Hooks) Hooks {
	return Hooks{
		Arriving:     chain2(h.Arriving, next.Arriving),
		Admitted:     chain2(h.Admitted, next.Admitted),
		Started:      chain2(h.Started, next.Started),
		Requeued:     chain3(h.Requeued, next.Requeued),
		StepsElided:  chain3(h.StepsElided, next.StepsElided),
		Finished:     chain2(h.Finished, next.Finished),
		Dropped:      chain2(h.Dropped, next.Dropped),
		PlanRejected: chain2(h.PlanRejected, next.PlanRejected),
		StartFailed:  chain2(h.StartFailed, next.StartFailed),
		PlanComputed: chain3(h.PlanComputed, next.PlanComputed),
		RoundTick:    chain2(h.RoundTick, next.RoundTick),
		Planned:      chain3(h.Planned, next.Planned),
		RunStarted:   chain2(h.RunStarted, next.RunStarted),
		RunFinished:  chain2(h.RunFinished, next.RunFinished),
		RunAborted:   chain3(h.RunAborted, next.RunAborted),
		RunPreempted: chain3(h.RunPreempted, next.RunPreempted),
		Resized:      chain3(h.Resized, next.Resized),
		GPUFailed:    chain2(h.GPUFailed, next.GPUFailed),
		GPURecovered: chain2(h.GPURecovered, next.GPURecovered),
	}
}

func chain2[A, B any](a, b func(A, B)) func(A, B) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(x A, y B) { a(x, y); b(x, y) }
}

func chain3[A, B, C any](a, b func(A, B, C)) func(A, B, C) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(x A, y B, z C) { a(x, y, z); b(x, y, z) }
}

// Config describes one control loop.
type Config struct {
	Model     *model.Model
	Topo      *simgpu.Topology
	Scheduler sched.Scheduler
	// Profile is the offline-profiled cost table (required; adapters build
	// a default over the standard resolutions when their caller omits one).
	Profile *costmodel.Profile
	// Engine tunes execution physics.
	Engine engine.Config
	// Trimmer optionally shortens requests via caching.
	Trimmer StepTrimmer
	// DropLateFactor > 0 expires a request once now exceeds
	// arrival + SLO×factor without completion — both the queued-job expiry
	// checked at every planning boundary and the timeout semantics for
	// results delivered too late (the paper's Figure 9 "dropped/timeout"
	// population). 0 disables dropping.
	DropLateFactor float64
	// NoRequeueOnFault drops a fault's surviving victims instead of
	// requeueing them — the recovery ablation the failure sweep compares
	// against.
	NoRequeueOnFault bool
	// Perpetual keeps round ticks firing when no requests are outstanding
	// (the live driver); off, the grid stops once every scheduled request
	// is finalized (the simulator's termination condition).
	Perpetual bool
	// Strict panics on invalid plans and engine start rejections instead of
	// only counting them — the simulator's oracle behavior for experiments,
	// where a scheduler bug must abort the run, not skew the numbers. The
	// driver leaves it off: a serving loop counts the failure in Result and
	// retries at the next event.
	Strict bool
	// Preallocate sizes the result accumulators up front so steady-state
	// operation (and the 0-allocs/op benchmark guards) never pays append
	// growth. Zero fields fall back to on-demand growth.
	Preallocate Prealloc
	// Hooks receive lifecycle callbacks.
	Hooks Hooks
}

// Prealloc hints expected volumes for result accumulators; see
// Config.Preallocate.
type Prealloc struct {
	// Requests is the expected number of admitted requests (sizes Outcomes
	// and the tracker maps).
	Requests int
	// Runs is the expected number of executed blocks (sizes Runs and the
	// run-record request arena).
	Runs int
	// Rounds is the expected number of planning rounds (sizes PlanLatencies).
	Rounds int
}

// Event kinds on the loop's queue. Arrivals and faults appear only when the
// adapter pre-schedules them (the simulator); the driver injects those
// directly via Arrive/Fail/Recover.
const (
	evArrival = iota
	evRunDone
	evRoundTick
	evGPUFail
	evGPURecover
	evResize
)

// Loop is the shared round-based control plane. It is not safe for
// concurrent use: exactly one goroutine (the simulator's event loop or the
// driver's serving goroutine) owns it.
type Loop struct {
	cfg Config
	clk clock.Clock
	q   eventq.Queue
	eng *engine.Engine

	states map[workload.RequestID]*sched.RequestState
	// pending preserves arrival order among unfinished, non-running
	// requests.
	pending  []*sched.RequestState
	inflight map[engine.RunID]*engine.Run
	// runEv maps in-flight runs to their completion events so GPU faults
	// can cancel the completions of blocks they abort.
	runEv map[engine.RunID]eventq.Handle
	done  map[workload.RequestID]bool
	res   *Result
	// left counts admitted-or-scheduled requests not yet finalized.
	left int
	// roundBased caches the scheduler mode.
	roundBased bool
	// eager additionally plans on arrivals for round-based schedulers.
	eager     bool
	tau       time.Duration
	schedOver time.Duration
	// resizeStaged/resizeMask hold a pending capacity change for round-based
	// schedulers: ApplyResize stages it (last writer wins) and the next
	// effective round tick applies it before planning, so every plan within
	// a round sees one consistent capacity.
	resizeStaged bool
	resizeMask   simgpu.Mask

	// Reused per-plan scratch (the control-plane analogue of the planner's
	// planScratch): snapshot buffers, the PlanContext handed to the
	// scheduler, and the plan validator all live across rounds so a planning
	// boundary allocates nothing in steady state.
	ctx      sched.PlanContext
	pendSnap []*sched.RequestState
	runSnap  []*sched.RequestState
	// running tracks states with Running set, maintained at the three flip
	// sites so snapshotRunning never walks the full (mostly finished)
	// request tracker.
	running []*sched.RequestState
	checker sched.PlanChecker
	// recArena backs RunRecord.Requests for all records in res.Runs, grown
	// in place instead of one clone per record.
	recArena []workload.RequestID
}

// New validates the configuration and builds a ready-to-run loop.
func New(cfg Config, clk clock.Clock) (*Loop, error) {
	if cfg.Model == nil || cfg.Topo == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("control: Model, Topo and Scheduler are required")
	}
	if cfg.Profile == nil {
		return nil, fmt.Errorf("control: Profile is required")
	}
	if clk == nil {
		return nil, fmt.Errorf("control: clock is required")
	}
	pre := cfg.Preallocate
	l := &Loop{
		cfg:      cfg,
		clk:      clk,
		eng:      engine.New(cfg.Model, cfg.Topo, cfg.Profile, cfg.Engine),
		states:   make(map[workload.RequestID]*sched.RequestState, max(pre.Requests, 0)),
		inflight: make(map[engine.RunID]*engine.Run),
		runEv:    make(map[engine.RunID]eventq.Handle),
		done:     make(map[workload.RequestID]bool, max(pre.Requests, 0)),
		res: &Result{
			SchedulerName: cfg.Scheduler.Name(),
			NGPU:          cfg.Topo.N,
		},
		roundBased: cfg.Scheduler.RoundDuration() > 0,
		tau:        cfg.Scheduler.RoundDuration(),
	}
	if pre.Requests > 0 {
		l.res.Outcomes = make([]Outcome, 0, pre.Requests)
	}
	if pre.Runs > 0 {
		l.res.Runs = make([]RunRecord, 0, pre.Runs)
		l.recArena = make([]workload.RequestID, 0, 2*pre.Runs)
	}
	if pre.Rounds > 0 {
		l.res.PlanLatencies = make([]time.Duration, 0, pre.Rounds)
	}
	if o, ok := cfg.Scheduler.(interface{ Overhead() time.Duration }); ok {
		l.schedOver = o.Overhead()
	}
	if e, ok := cfg.Scheduler.(interface{ EagerAdmission() bool }); ok {
		l.eager = e.EagerAdmission()
	}
	return l, nil
}

// Engine exposes the loop-owned execution engine for adapter telemetry
// (busy seconds, failed mask, memory accounting). Read it only from the
// goroutine driving the loop.
func (l *Loop) Engine() *engine.Engine { return l.eng }

// Result exposes the loop-owned accumulator. Use Finalize or SnapshotResult
// for a consistent view with engine telemetry filled in.
func (l *Loop) Result() *Result { return l.res }

// Unfinished reports how many scheduled or admitted requests have not been
// finalized — the simulator's termination condition.
func (l *Loop) Unfinished() int { return l.left }

// StateCount reports tracked (non-finalized) request states; it must drain
// to zero with Unfinished, or the tracker leaks.
func (l *Loop) StateCount() int { return len(l.states) }

// ScheduleArrival enqueues a trace request to arrive at its Arrival time
// (simulator pre-scheduling).
func (l *Loop) ScheduleArrival(r *workload.Request) {
	l.left++
	l.q.Push(r.Arrival, evArrival, r)
}

// ScheduleFault enqueues a fail-stop fault (and its optional recovery).
func (l *Loop) ScheduleFault(f simgpu.Fault) {
	l.q.Push(f.FailAt, evGPUFail, simgpu.MaskOf(f.GPU))
	if f.RecoverAt > 0 {
		l.q.Push(f.RecoverAt, evGPURecover, simgpu.MaskOf(f.GPU))
	}
}

// ScheduleResize enqueues a planned capacity change (simulator
// pre-scheduling). Like ApplyResize, it stages the new mask when dispatched;
// round-based schedulers apply it at the next effective round tick.
func (l *Loop) ScheduleResize(r simgpu.Resize) {
	l.q.Push(r.At, evResize, r.NewMask)
}

// Begin anchors the τ grid: round-based schedulers get their first tick at
// the current clock reading. Call it after pre-scheduling arrivals/faults so
// same-instant arrivals are admitted before the tick plans them.
func (l *Loop) Begin() {
	if l.roundBased {
		l.q.Push(l.clk.Now(), evRoundTick, nil)
	}
}

// NextEvent peeks the earliest pending event without removing it, or nil.
func (l *Loop) NextEvent() *eventq.Event { return l.q.Peek() }

// PopEvent removes and returns the earliest pending event, or nil.
func (l *Loop) PopEvent() *eventq.Event { return l.q.Pop() }

// Dispatch handles one popped event. The caller is responsible for clock
// discipline: the simulator advances its virtual clock to ev.At first; the
// driver dispatches events whose time has passed on the real clock.
func (l *Loop) Dispatch(ev *eventq.Event) error {
	if ev == nil {
		return nil
	}
	now := l.clk.Now()
	var err error
	switch ev.Kind {
	case evArrival:
		l.admit(now, ev.Payload.(*workload.Request))
	case evRunDone:
		err = l.onRunDone(now, ev.Payload.(*engine.Run))
	case evRoundTick:
		l.onRoundTick(ev.At, now)
	case evGPUFail:
		l.onGPUFail(now, ev.Payload.(simgpu.Mask))
	case evGPURecover:
		l.onGPURecover(now, ev.Payload.(simgpu.Mask))
	case evResize:
		l.stageResize(now, ev.Payload.(simgpu.Mask))
	}
	// The event has been consumed; hand its storage back to the queue so the
	// next Push reuses it instead of allocating.
	l.q.Recycle(ev)
	return err
}

// Arrive admits a request right now (driver path: arrivals come from a
// channel, not the pre-scheduled queue). The request's Arrival is stamped
// from the clock.
func (l *Loop) Arrive(r *workload.Request) {
	l.left++
	l.admit(l.clk.Now(), r)
}

// Fail injects a fail-stop fault for the masked GPUs right now.
func (l *Loop) Fail(mask simgpu.Mask) { l.onGPUFail(l.clk.Now(), mask) }

// Recover returns previously failed GPUs to the pool right now.
func (l *Loop) Recover(mask simgpu.Mask) { l.onGPURecover(l.clk.Now(), mask) }

// ApplyResize requests that the shard's owned GPU set become newMask. For
// round-based schedulers the change takes effect at the next effective round
// tick (after overrun deferral, before planning) so mid-round state never
// sees a capacity flip; staging is last-writer-wins. Event-driven schedulers
// have no round structure, so the resize applies immediately and replans.
func (l *Loop) ApplyResize(newMask simgpu.Mask) {
	l.stageResize(l.clk.Now(), newMask)
}

// stageResize is the shared entry for ApplyResize and pre-scheduled evResize
// events.
func (l *Loop) stageResize(now time.Duration, newMask simgpu.Mask) {
	if !l.roundBased {
		l.applyResize(now, newMask)
		l.plan(now)
		return
	}
	l.resizeStaged = true
	l.resizeMask = newMask
}

// Finalize fills engine telemetry and the makespan into the result and
// returns it (shared storage, not a copy).
func (l *Loop) Finalize() *Result {
	l.fillTelemetry()
	return l.res
}

// SnapshotResult returns a deep copy of the result with telemetry filled —
// the driver's point-in-time view for trace export and Gantt rendering.
func (l *Loop) SnapshotResult() *Result {
	l.fillTelemetry()
	return l.res.Clone()
}

func (l *Loop) fillTelemetry() {
	l.res.Makespan = l.clk.Now()
	l.res.GPUBusySeconds = l.eng.GPUBusySeconds()
	l.res.Remaps = l.eng.Remaps()
	l.res.Warmups = l.eng.Warmups()
	l.res.RunsAborted = l.eng.RunsAborted()
	l.res.RunsPreempted = l.eng.RunsPreempted()
	l.res.Resizes = l.eng.Resizes()
}

// admit runs the arrival path: trim, track, queue, and (for event-driven or
// eager round-based schedulers) plan immediately.
func (l *Loop) admit(now time.Duration, r *workload.Request) {
	if l.cfg.Hooks.Arriving != nil {
		l.cfg.Hooks.Arriving(now, r)
	}
	r.Arrival = now
	steps := r.Steps
	if l.cfg.Trimmer != nil {
		skip := l.cfg.Trimmer.OnArrival(r.Prompt, r.Res, steps, now)
		if skip < 0 {
			skip = 0
		}
		if skip >= steps {
			skip = steps - 1 // at least one step always runs
		}
		r.SkippedSteps = skip
		steps -= skip
	}
	st := &sched.RequestState{
		Req:       r,
		Remaining: steps,
	}
	l.states[r.ID] = st
	l.pending = append(l.pending, st)
	if l.cfg.Hooks.Admitted != nil {
		l.cfg.Hooks.Admitted(now, r)
	}
	if !l.roundBased || (l.eager && l.eng.Free() != 0) {
		l.plan(now)
	}
}

func (l *Loop) onRunDone(now time.Duration, run *engine.Run) error {
	if err := l.eng.Finish(run); err != nil {
		return err
	}
	if l.cfg.Hooks.RunFinished != nil {
		l.cfg.Hooks.RunFinished(now, run)
	}
	delete(l.inflight, run.ID)
	delete(l.runEv, run.ID)
	l.res.Runs = append(l.res.Runs, RunRecord{
		Start:         run.Start,
		End:           run.End,
		Degree:        run.Degree,
		Steps:         run.Asg.Steps,
		Requests:      l.captureIDs(run.Asg.Requests),
		Res:           run.Res,
		Group:         run.Asg.Group,
		BestEffort:    run.Asg.BestEffort,
		Batched:       run.Batched,
		CacheInterval: run.Asg.CacheInterval,
	})

	// Iterate members in assignment order, not map order, so decode-queue
	// ordering (and therefore completion times) is deterministic.
	for _, id := range run.Asg.Requests {
		steps, ok := run.Steps[id]
		if !ok {
			continue
		}
		st := l.states[id]
		l.clearRunning(st)
		st.Started = true
		st.Remaining -= steps
		if approx := sched.ApproxSteps(steps, run.Asg.CacheInterval); approx > 0 {
			st.QualityUsed += approx
			if l.cfg.Hooks.StepsElided != nil {
				l.cfg.Hooks.StepsElided(now, id, approx)
			}
		}
		st.LastGroup = run.Asg.Group
		st.StepsByDegree.Add(run.Degree, steps)
		if st.Remaining <= 0 {
			l.finish(now, st)
		} else if l.cfg.DropLateFactor > 0 && l.pastDrop(now, st) {
			l.drop(now, st, DropExpired)
		} else {
			l.pending = append(l.pending, st)
		}
	}
	// Observers were notified and the record copied; the run struct can be
	// recycled for a future Start.
	l.eng.Release(run)
	if !l.roundBased {
		l.plan(now)
	}
	return nil
}

// captureIDs copies a run's member list into the loop's record arena,
// returning a full-capacity-clipped slice that stays valid for the life of
// the result (arena growth re-points the arena, not issued slices).
func (l *Loop) captureIDs(ids []workload.RequestID) []workload.RequestID {
	n := len(l.recArena)
	l.recArena = append(l.recArena, ids...)
	return l.recArena[n:len(l.recArena):len(l.recArena)]
}

// onRoundTick fires a τ boundary. at is the tick's scheduled time (the grid
// anchor rescheduling derives from, so late wake-ups on the real clock never
// accumulate drift); now is the clock reading.
func (l *Loop) onRoundTick(at, now time.Duration) {
	// If a round-aligned block is still running (noise overrun), defer the
	// tick until it ends so every round starts from a clean boundary.
	latest := time.Duration(-1)
	for _, run := range l.inflight {
		if run.Asg.RoundAligned && run.End > latest {
			latest = run.End
		}
	}
	if latest > now {
		l.q.Push(latest+time.Microsecond, evRoundTick, nil)
		return
	}
	// A staged capacity change lands exactly here: the boundary is clean
	// (no round-aligned overrun), the plan below sees the new capacity, and
	// every plan before the next tick sees the same one.
	if l.resizeStaged {
		l.resizeStaged = false
		l.applyResize(now, l.resizeMask)
	}
	l.res.RoundTicks++
	if l.cfg.Hooks.RoundTick != nil {
		l.cfg.Hooks.RoundTick(at, now)
	}
	l.plan(now)
	if l.cfg.Perpetual || l.left > 0 {
		l.q.Push(l.nextTick(at), evRoundTick, nil)
	}
}

// nextTick returns the grid point the next round tick should fire at —
// normally at+τ. When the loop is completely idle (nothing pending, nothing
// in flight) every tick before the next queued event is a no-op, so the
// pre-scheduled-event world (the simulator) can fast-forward along the grid
// to the first boundary that will observe the event. Skipped boundaries are
// still counted in RoundTicks, keeping Result bookkeeping identical to
// dispatching them one by one. The fast-forward is disabled when a RoundTick
// hook is attached (observers see every boundary at its own dispatch) and in
// Perpetual mode (the driver's arrivals are not pre-scheduled, so the queue
// cannot bound the idle gap).
func (l *Loop) nextTick(at time.Duration) time.Duration {
	next := at + l.tau
	if l.cfg.Perpetual || l.cfg.Hooks.RoundTick != nil ||
		len(l.pending) != 0 || len(l.inflight) != 0 || l.tau <= 0 {
		return next
	}
	nev := l.q.Peek()
	if nev == nil || nev.At <= next {
		return next
	}
	// First grid point at or past the next event; the k-1 boundaries before
	// it would each have ticked, planned nothing, and rescheduled.
	k := (nev.At - at + l.tau - 1) / l.tau
	l.res.RoundTicks += int(k - 1)
	return at + time.Duration(k)*l.tau
}

// plan applies the drop policy, then invokes the scheduler and starts the
// returned assignments.
func (l *Loop) plan(now time.Duration) {
	l.expire(now)
	// The context and its snapshot slices are loop-owned scratch, rebuilt in
	// place every round; hook observers already contract to read them only
	// synchronously.
	l.ctx = sched.PlanContext{
		Now:      now,
		Free:     l.eng.Free(),
		Capacity: l.eng.Capacity(),
		Pending:  l.snapshotPending(),
		Running:  l.snapshotRunning(),
		Profile:  l.cfg.Profile,
		Topo:     l.cfg.Topo,
	}
	ctx := &l.ctx
	if len(ctx.Pending) == 0 {
		return
	}
	start := time.Now()
	plan := l.cfg.Scheduler.Plan(ctx)
	solve := time.Since(start)
	l.res.PlanLatencies = append(l.res.PlanLatencies, solve)
	l.res.PlanCalls++
	if l.cfg.Hooks.PlanComputed != nil {
		l.cfg.Hooks.PlanComputed(now, solve, ctx)
	}
	if err := l.checker.Validate(ctx, plan); err != nil {
		// A scheduler bug must not corrupt serving state: count it, skip
		// this plan, and retry at the next event. Strict mode (simulator)
		// additionally aborts the run — experiment numbers from a buggy
		// scheduler are worse than no numbers.
		l.res.PlanRejected++
		if l.cfg.Hooks.PlanRejected != nil {
			l.cfg.Hooks.PlanRejected(now, err)
		}
		if l.cfg.Strict {
			panic(fmt.Sprintf("control: scheduler %q produced invalid plan: %v", l.cfg.Scheduler.Name(), err))
		}
		return
	}
	if l.cfg.Hooks.Planned != nil {
		l.cfg.Hooks.Planned(now, ctx, plan)
	}
	for _, asg := range plan {
		run, err := l.eng.Start(now, asg, l.states, l.dispatchDelay())
		if err != nil {
			l.res.StartFailed++
			if l.cfg.Hooks.StartFailed != nil {
				l.cfg.Hooks.StartFailed(now, err)
			}
			if l.cfg.Strict {
				panic(fmt.Sprintf("control: engine rejected validated assignment: %v", err))
			}
			continue
		}
		if l.cfg.Hooks.RunStarted != nil {
			l.cfg.Hooks.RunStarted(now, run)
		}
		for _, id := range asg.Requests {
			l.setRunning(l.states[id])
			l.removePending(id)
			if l.cfg.Hooks.Started != nil {
				l.cfg.Hooks.Started(now, id)
			}
		}
		l.inflight[run.ID] = run
		l.runEv[run.ID] = l.q.Push(run.End, evRunDone, run)
	}
}

// expire applies the timeout policy at planning boundaries: a request still
// pending past DropLateFactor × SLO is abandoned — its client is gone, and
// keeping it would let the queue grow without bound under overload.
func (l *Loop) expire(now time.Duration) {
	if l.cfg.DropLateFactor <= 0 {
		return
	}
	kept := l.pending[:0]
	for _, st := range l.pending {
		if !st.Running && l.pastDrop(now, st) {
			l.drop(now, st, DropExpired)
		} else {
			kept = append(kept, st)
		}
	}
	for i := len(kept); i < len(l.pending); i++ {
		l.pending[i] = nil
	}
	l.pending = kept
}

// onGPUFail injects a fail-stop fault: the engine aborts intersecting
// blocks, credits completed steps, and this layer requeues the surviving
// members so the next plan re-packs them on the remaining GPUs — paying
// latent re-transfer and group re-warm-up per the §5 cost model. With
// NoRequeueOnFault the victims are dropped instead (the ablation).
func (l *Loop) onGPUFail(now time.Duration, mask simgpu.Mask) {
	prevFailed := l.eng.FailedGPUs()
	failures := l.eng.FailGPUs(now, mask)
	if newly := l.eng.FailedGPUs().Without(prevFailed); newly != 0 && l.cfg.Hooks.GPUFailed != nil {
		l.cfg.Hooks.GPUFailed(now, newly)
	}
	// The engine surfaces aborts in map order; sort for a deterministic
	// requeue (and therefore pending) order.
	slices.SortFunc(failures, func(a, b *engine.RunFailure) int {
		if a.Run.ID < b.Run.ID {
			return -1
		}
		if a.Run.ID > b.Run.ID {
			return 1
		}
		return 0
	})
	for _, f := range failures {
		if l.cfg.Hooks.RunAborted != nil {
			l.cfg.Hooks.RunAborted(now, f.Run, f.StepsDone)
		}
		if h, ok := l.runEv[f.Run.ID]; ok {
			l.q.Cancel(h)
			delete(l.runEv, f.Run.ID)
		}
		delete(l.inflight, f.Run.ID)
		l.res.Runs = append(l.res.Runs, RunRecord{
			Start:         f.Run.Start,
			End:           now,
			Degree:        f.Run.Degree,
			Steps:         f.Run.Asg.Steps,
			Requests:      l.captureIDs(f.Run.Asg.Requests),
			Res:           f.Run.Res,
			Group:         f.Run.Asg.Group,
			BestEffort:    f.Run.Asg.BestEffort,
			Batched:       f.Run.Batched,
			CacheInterval: f.Run.Asg.CacheInterval,
			Aborted:       true,
		})
		for _, id := range f.Run.Asg.Requests {
			done, ok := f.StepsDone[id]
			if !ok {
				continue
			}
			st := l.states[id]
			l.clearRunning(st)
			if done > 0 {
				st.Started = true
				st.Remaining -= done
				// Credit the completed prefix's approximated steps with the
				// same ApproxSteps convention the planner budgeted with, so a
				// fault can never leak quality budget (ApproxSteps is monotone
				// in the step count: credit ≤ the full block's debit).
				if approx := sched.ApproxSteps(done, f.Run.Asg.CacheInterval); approx > 0 {
					st.QualityUsed += approx
					if l.cfg.Hooks.StepsElided != nil {
						l.cfg.Hooks.StepsElided(now, id, approx)
					}
				}
				st.StepsByDegree.Add(f.Run.Degree, done)
			}
			switch {
			case st.Remaining <= 0:
				// Every step finished before the fault; only the decode
				// remained, and the VAE runs outside the SP group.
				l.finish(now, st)
			case l.cfg.NoRequeueOnFault:
				l.drop(now, st, DropFault)
			case l.cfg.DropLateFactor > 0 && l.pastDrop(now, st):
				l.drop(now, st, DropExpired)
			default:
				l.pending = append(l.pending, st)
				if l.cfg.Hooks.Requeued != nil {
					l.cfg.Hooks.Requeued(now, id, RequeueFault)
				}
			}
		}
		l.eng.Release(f.Run)
	}
	// Placement preservation must not steer survivors back onto dead GPUs.
	for _, st := range l.states {
		st.LastGroup = st.LastGroup.Without(mask)
	}
	if !l.roundBased {
		l.plan(now)
	}
}

// applyResize performs an effective capacity change. It mirrors onGPUFail's
// bookkeeping with the planned-handoff semantics the resize path guarantees:
// preempted members keep every completed step, their latents survive on the
// retained group members, and they are ALWAYS requeued (NoRequeueOnFault is a
// fault-recovery ablation and does not apply — no machine died) unless the
// drop policy has already expired them.
func (l *Loop) applyResize(now time.Duration, newMask simgpu.Mask) {
	newMask &= l.cfg.Topo.AllMask()
	prev := l.eng.Capacity()
	removed := prev.Without(newMask)
	added := newMask.Without(prev)
	if removed == 0 && added == 0 {
		return
	}
	preemptions := l.eng.Resize(now, newMask)
	l.res.Resizes++
	if l.cfg.Hooks.Resized != nil {
		l.cfg.Hooks.Resized(now, removed, added)
	}
	// The engine surfaces preemptions in map order; sort for a deterministic
	// requeue (and therefore pending) order.
	slices.SortFunc(preemptions, func(a, b *engine.RunPreemption) int {
		if a.Run.ID < b.Run.ID {
			return -1
		}
		if a.Run.ID > b.Run.ID {
			return 1
		}
		return 0
	})
	for _, p := range preemptions {
		if l.cfg.Hooks.RunPreempted != nil {
			l.cfg.Hooks.RunPreempted(now, p.Run, p.StepsDone)
		}
		if h, ok := l.runEv[p.Run.ID]; ok {
			l.q.Cancel(h)
			delete(l.runEv, p.Run.ID)
		}
		delete(l.inflight, p.Run.ID)
		l.res.Runs = append(l.res.Runs, RunRecord{
			Start:         p.Run.Start,
			End:           now,
			Degree:        p.Run.Degree,
			Steps:         p.Run.Asg.Steps,
			Requests:      l.captureIDs(p.Run.Asg.Requests),
			Res:           p.Run.Res,
			Group:         p.Run.Asg.Group,
			BestEffort:    p.Run.Asg.BestEffort,
			Batched:       p.Run.Batched,
			CacheInterval: p.Run.Asg.CacheInterval,
			Aborted:       true,
			Preempted:     true,
		})
		for _, id := range p.Run.Asg.Requests {
			done, ok := p.StepsDone[id]
			if !ok {
				continue
			}
			st := l.states[id]
			l.clearRunning(st)
			if done > 0 {
				st.Started = true
				st.Remaining -= done
				// Same prefix-credit convention as the fault path.
				if approx := sched.ApproxSteps(done, p.Run.Asg.CacheInterval); approx > 0 {
					st.QualityUsed += approx
					if l.cfg.Hooks.StepsElided != nil {
						l.cfg.Hooks.StepsElided(now, id, approx)
					}
				}
				st.StepsByDegree.Add(p.Run.Degree, done)
			}
			switch {
			case st.Remaining <= 0:
				l.finish(now, st)
			case l.cfg.DropLateFactor > 0 && l.pastDrop(now, st):
				l.drop(now, st, DropExpired)
			default:
				l.pending = append(l.pending, st)
				if l.cfg.Hooks.Requeued != nil {
					l.cfg.Hooks.Requeued(now, id, RequeueResize)
				}
			}
		}
		l.eng.Release(p.Run)
	}
	// Placement preservation must not steer requests toward GPUs the shard
	// no longer owns.
	if removed != 0 {
		for _, st := range l.states {
			st.LastGroup = st.LastGroup.Without(removed)
		}
	}
}

// onGPURecover returns failed GPUs to the pool; round-based schedulers see
// the capacity at the next tick, event-driven ones replan immediately.
func (l *Loop) onGPURecover(now time.Duration, mask simgpu.Mask) {
	recovered := l.eng.RecoverGPUs(mask)
	if recovered == 0 {
		return
	}
	if l.cfg.Hooks.GPURecovered != nil {
		l.cfg.Hooks.GPURecovered(now, recovered)
	}
	if !l.roundBased {
		l.plan(now)
	}
}

// dispatchDelay is the control-plane latency charged per block.
// Round-based scheduling pays its decision loop (already budgeted in the
// scheduler's window); event-driven baselines dispatch directly.
func (l *Loop) dispatchDelay() time.Duration {
	if l.roundBased {
		return l.schedOver
	}
	return 0
}

func (l *Loop) snapshotPending() []*sched.RequestState {
	out := l.pendSnap[:0]
	for _, st := range l.pending {
		if !st.Running && st.Remaining > 0 && !l.done[st.Req.ID] {
			out = append(out, st)
		}
	}
	// Arrival order is part of the FIFO baselines' semantics; re-queued
	// requests must not jump ahead of earlier arrivals.
	slices.SortStableFunc(out, func(a, b *sched.RequestState) int {
		if a.Req.Arrival != b.Req.Arrival {
			if a.Req.Arrival < b.Req.Arrival {
				return -1
			}
			return 1
		}
		if a.Req.ID != b.Req.ID {
			if a.Req.ID < b.Req.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	l.pendSnap = out
	return out
}

// setRunning / clearRunning keep l.running in sync with st.Running. All
// Running flips must go through them.
func (l *Loop) setRunning(st *sched.RequestState) {
	if !st.Running {
		st.Running = true
		l.running = append(l.running, st)
	}
}

func (l *Loop) clearRunning(st *sched.RequestState) {
	if !st.Running {
		return
	}
	st.Running = false
	for i, r := range l.running {
		if r == st {
			last := len(l.running) - 1
			l.running[i] = l.running[last]
			l.running[last] = nil
			l.running = l.running[:last]
			return
		}
	}
}

func (l *Loop) snapshotRunning() []*sched.RequestState {
	out := append(l.runSnap[:0], l.running...)
	// l.running is insertion/removal order; sort so scheduler inputs are
	// reproducible (same total order the old map walk produced).
	slices.SortFunc(out, func(a, b *sched.RequestState) int {
		if a.Req.ID < b.Req.ID {
			return -1
		}
		if a.Req.ID > b.Req.ID {
			return 1
		}
		return 0
	})
	l.runSnap = out
	return out
}

func (l *Loop) removePending(id workload.RequestID) {
	for i, st := range l.pending {
		if st.Req.ID == id {
			l.pending = append(l.pending[:i], l.pending[i+1:]...)
			return
		}
	}
}

// dropLimit is the absolute instant past which a request is abandoned under
// the timeout policy: arrival + DropLateFactor × SLO. Every drop comparison
// (queued expiry, post-fault requeue, late-delivery timeout) must go through
// DropLimit/pastDrop so sim and driver share one boundary convention: a
// request exactly AT the limit is still in budget; strictly past it is out.
func (l *Loop) dropLimit(r *workload.Request) time.Duration {
	return r.Arrival + time.Duration(float64(r.SLO)*l.cfg.DropLateFactor)
}

// DropLimit exposes the timeout boundary for observers (tests, the router's
// feasibility probe). Zero-valued when dropping is disabled semantics still
// hold: callers must gate on DropLateFactor > 0 themselves, as the loop does.
func (l *Loop) DropLimit(r *workload.Request) time.Duration { return l.dropLimit(r) }

func (l *Loop) pastDrop(now time.Duration, st *sched.RequestState) bool {
	return now > l.dropLimit(st.Req)
}

func (l *Loop) finish(now time.Duration, st *sched.RequestState) {
	r := st.Req
	completion := l.eng.Decode(now, r.Res)
	l.eng.ReleaseLatent(r.ID)
	// Timeout semantics: a result delivered past DropLateFactor × SLO has
	// been abandoned by the client and counts as dropped (Figure 9's
	// "dropped/timeout" population). Shares dropLimit with pastDrop so a
	// completion exactly at the boundary is delivered, never dropped —
	// identical in sim and driver by construction.
	if l.cfg.DropLateFactor > 0 && completion > l.dropLimit(r) {
		l.finalize(now, Outcome{
			ID:           r.ID,
			Res:          r.Res,
			Arrival:      r.Arrival,
			Deadline:     r.Deadline(),
			Dropped:      true,
			Cause:        DropTimeout,
			Steps:        r.Steps - r.SkippedSteps,
			Skipped:      r.SkippedSteps,
			Approximated: st.QualityUsed,
		})
		return
	}
	out := Outcome{
		ID:           r.ID,
		Res:          r.Res,
		Arrival:      r.Arrival,
		Deadline:     r.Deadline(),
		Completion:   completion,
		Met:          completion <= r.Deadline(),
		Latency:      completion - r.Arrival,
		AvgDegree:    st.AvgDegree(),
		Steps:        r.Steps - r.SkippedSteps,
		Skipped:      r.SkippedSteps,
		Approximated: st.QualityUsed,
	}
	l.res.Outcomes = append(l.res.Outcomes, out)
	l.done[r.ID] = true
	l.left--
	delete(l.states, r.ID)
	if l.cfg.Hooks.Finished != nil {
		l.cfg.Hooks.Finished(now, out)
	}
	if l.cfg.Trimmer != nil {
		l.cfg.Trimmer.OnComplete(r.Prompt, r.Res, completion)
	}
}

func (l *Loop) drop(now time.Duration, st *sched.RequestState, cause DropCause) {
	r := st.Req
	l.eng.ReleaseLatent(r.ID)
	l.finalize(now, Outcome{
		ID:           r.ID,
		Res:          r.Res,
		Arrival:      r.Arrival,
		Deadline:     r.Deadline(),
		Dropped:      true,
		Cause:        cause,
		Steps:        r.Steps - r.SkippedSteps,
		Skipped:      r.SkippedSteps,
		Approximated: st.QualityUsed,
	})
}

// finalize retires a dropped request (completions go through finish, which
// also feeds the trimmer).
func (l *Loop) finalize(now time.Duration, out Outcome) {
	l.res.Outcomes = append(l.res.Outcomes, out)
	l.done[out.ID] = true
	l.left--
	delete(l.states, out.ID)
	if l.cfg.Hooks.Dropped != nil {
		l.cfg.Hooks.Dropped(now, out)
	}
}
