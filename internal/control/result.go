package control

import (
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// DropCause classifies why a request was abandoned — the label on the
// telemetry plane's drops-by-cause counter.
type DropCause string

// Drop causes.
const (
	// DropExpired: still queued (or requeued) past DropLateFactor × SLO.
	DropExpired DropCause = "expired"
	// DropTimeout: all steps finished but the decode delivered past the
	// abandon point (Figure 9's "dropped/timeout" population).
	DropTimeout DropCause = "timeout"
	// DropFault: a GPU fault killed the block and NoRequeueOnFault dropped
	// the survivor instead of requeueing it.
	DropFault DropCause = "fault"
)

// Outcome is the fate of one request.
type Outcome struct {
	ID         workload.RequestID
	Res        model.Resolution
	Arrival    time.Duration
	Deadline   time.Duration
	Completion time.Duration // 0 when dropped
	Dropped    bool
	// Cause is set only when Dropped.
	Cause     DropCause
	Met       bool
	Latency   time.Duration
	AvgDegree float64
	Steps     int
	Skipped   int
	// Approximated counts steps served from the step cache (approximated
	// rather than fully computed) across the request's lifetime — always
	// ≤ the request's QualityBudget, 0 when caching never engaged.
	Approximated int
}

// RunRecord logs one executed block for timeline metrics.
type RunRecord struct {
	Start, End time.Duration
	Degree     int
	Steps      int
	Requests   []workload.RequestID
	Res        model.Resolution
	Group      simgpu.Mask
	BestEffort bool
	Batched    bool
	// CacheInterval > 1 marks a cache-assisted block (every interval-th step
	// computed, the rest approximated).
	CacheInterval int
	// Aborted marks a block killed mid-flight by a GPU fault; End is the
	// fault time, not the planned completion.
	Aborted bool
	// Preempted marks an Aborted block whose abort was a planned capacity
	// resize (cooperative handoff), not a fault.
	Preempted bool
}

// GPUs returns the device ids the block occupied.
func (r RunRecord) GPUs() []simgpu.GPUID { return r.Group.IDs() }

// Result aggregates a run of the control loop. The simulator returns it
// directly; the online driver exposes point-in-time snapshots of it, so the
// same structure feeds metrics, Gantt rendering, and trace export in both
// worlds.
type Result struct {
	SchedulerName  string
	NGPU           int
	Outcomes       []Outcome
	Runs           []RunRecord
	Makespan       time.Duration
	GPUBusySeconds float64
	PlanLatencies  []time.Duration
	PlanCalls      int
	Remaps         int
	Warmups        int
	// RunsAborted counts blocks killed by injected GPU faults.
	RunsAborted int
	// RunsPreempted counts blocks preempted by capacity resizes; Resizes
	// counts effective capacity changes applied.
	RunsPreempted int
	Resizes       int
	// Health counters: a serving loop must degrade loudly, not silently.
	// PlanRejected counts plans the validator refused; StartFailed counts
	// assignments the engine would not start; RoundTicks counts fired round
	// boundaries (0 for event-driven schedulers).
	PlanRejected int
	StartFailed  int
	RoundTicks   int
}

// Clone returns a deep copy safe to hand across goroutines (the online
// driver snapshots the loop-owned result this way).
func (r *Result) Clone() *Result {
	c := *r
	c.Outcomes = append([]Outcome(nil), r.Outcomes...)
	c.Runs = make([]RunRecord, len(r.Runs))
	for i, rec := range r.Runs {
		rec.Requests = append([]workload.RequestID(nil), rec.Requests...)
		c.Runs[i] = rec
	}
	c.PlanLatencies = append([]time.Duration(nil), r.PlanLatencies...)
	return &c
}
