package control

import (
	"testing"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/engine"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// drainQueue runs the loop's event queue to completion under the virtual
// clock.
func drainQueue(t *testing.T, l *Loop, clk *clock.Virtual) {
	t.Helper()
	for l.Unfinished() > 0 {
		ev := l.PopEvent()
		if ev == nil {
			t.Fatal("deadlock: queue empty with requests unfinished")
		}
		clk.Advance(ev.At)
		if err := l.Dispatch(ev); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStagedResizeAppliesAtRoundTick: on a round-based loop, ApplyResize
// between ticks stages the change; capacity flips exactly at the next round
// boundary, and a later stage overwrites an earlier one (last writer wins).
func TestStagedResizeAppliesAtRoundTick(t *testing.T) {
	clk := clock.NewVirtual()
	cfg := testConfig(idleSched{tau: time.Second})
	cfg.Perpetual = true
	l, err := New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	l.Begin()

	// Consume the t=0 tick so the next boundary is at 1s.
	if err := l.Dispatch(l.PopEvent()); err != nil {
		t.Fatal(err)
	}

	all := l.Engine().Capacity()
	clk.Advance(400 * time.Millisecond)
	l.ApplyResize(simgpu.MaskRange(0, 2))
	l.ApplyResize(simgpu.MaskRange(0, 4)) // supersedes the first stage
	if l.Engine().Capacity() != all {
		t.Fatal("staged resize applied before the round tick")
	}

	ev := l.PopEvent()
	if ev == nil || ev.At != time.Second {
		t.Fatalf("next event = %+v, want the 1s tick", ev)
	}
	clk.Advance(ev.At)
	if err := l.Dispatch(ev); err != nil {
		t.Fatal(err)
	}
	if got := l.Engine().Capacity(); got != simgpu.MaskRange(0, 4) {
		t.Fatalf("capacity after tick = %v, want %v (last staged mask)", got, simgpu.MaskRange(0, 4))
	}
	if l.Engine().Resizes() != 1 {
		t.Fatalf("Resizes = %d, want 1 (stages coalesce)", l.Engine().Resizes())
	}
}

// TestApplyResizeEventDrivenPreemptsAndRequeues: on an event-driven loop the
// resize applies immediately; an in-flight block losing a GPU is preempted
// with credit, its request requeued and replanned on the remaining devices,
// and the request still completes.
func TestApplyResizeEventDrivenPreemptsAndRequeues(t *testing.T) {
	clk := clock.NewVirtual()
	cfg := testConfig(sched.NewFixedSP(2))
	var group simgpu.Mask
	var requeued []workload.RequestID
	cfg.Hooks.RunStarted = func(now time.Duration, run *engine.Run) {
		if group == 0 {
			group = run.Asg.Group
		}
	}
	var requeueCauses []RequeueCause
	cfg.Hooks.Requeued = func(now time.Duration, id workload.RequestID, cause RequeueCause) {
		requeued = append(requeued, id)
		requeueCauses = append(requeueCauses, cause)
	}
	l, err := New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	l.ScheduleArrival(req(0, 0, time.Minute))
	l.Begin()

	// Dispatch the arrival: the event-driven policy plans and starts a block.
	ev := l.PopEvent()
	clk.Advance(ev.At)
	if err := l.Dispatch(ev); err != nil {
		t.Fatal(err)
	}
	if group == 0 {
		t.Fatal("no block started on arrival")
	}

	// Donate one of the block's GPUs mid-flight.
	clk.Advance(10 * time.Millisecond)
	newMask := l.Engine().Capacity().Without(group.Highest())
	l.ApplyResize(newMask)
	if l.Engine().Capacity() != newMask {
		t.Fatal("event-driven resize not applied immediately")
	}
	if l.Engine().RunsPreempted() != 1 {
		t.Fatalf("RunsPreempted = %d, want 1", l.Engine().RunsPreempted())
	}
	if len(requeued) != 1 || requeued[0] != 0 {
		t.Fatalf("requeued = %v, want [0]", requeued)
	}
	if len(requeueCauses) != 1 || requeueCauses[0] != RequeueResize {
		t.Fatalf("requeue causes = %v, want [resize]", requeueCauses)
	}

	drainQueue(t, l, clk)
	res := l.Finalize()
	if len(res.Outcomes) != 1 || res.Outcomes[0].Dropped {
		t.Fatalf("outcomes = %+v, want one completed", res.Outcomes)
	}
	if res.Resizes != 1 || res.RunsPreempted != 1 {
		t.Fatalf("Resizes=%d RunsPreempted=%d, want 1, 1", res.Resizes, res.RunsPreempted)
	}
	if res.RunsAborted != 0 {
		t.Fatalf("RunsAborted = %d: a planned resize must not count as a fault", res.RunsAborted)
	}
	var preempted int
	for _, rec := range res.Runs {
		if rec.Preempted {
			if !rec.Aborted {
				t.Fatal("preempted run record not marked aborted")
			}
			preempted++
		}
	}
	if preempted != 1 {
		t.Fatalf("preempted run records = %d, want 1", preempted)
	}
}

// TestScheduleResizeDispatchesLikeAnyEvent: a pre-scheduled resize lands
// through the event queue at its At time — the simulator's path.
func TestScheduleResizeDispatchesLikeAnyEvent(t *testing.T) {
	clk := clock.NewVirtual()
	cfg := testConfig(sched.NewFixedSP(1))
	l, err := New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	l.ScheduleArrival(req(0, 0, time.Minute))
	l.ScheduleResize(simgpu.Resize{At: 5 * time.Millisecond, NewMask: simgpu.MaskRange(0, 4)})
	l.Begin()
	drainQueue(t, l, clk)
	res := l.Finalize()
	if res.Resizes != 1 {
		t.Fatalf("Resizes = %d, want 1", res.Resizes)
	}
	if got := l.Engine().Capacity(); got != simgpu.MaskRange(0, 4) {
		t.Fatalf("capacity = %v, want %v", got, simgpu.MaskRange(0, 4))
	}
	if len(res.Outcomes) != 1 || res.Outcomes[0].Dropped {
		t.Fatalf("outcomes = %+v, want one completed", res.Outcomes)
	}
}
