package control

import (
	"math/rand"
	"testing"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

func newProbeLoop(t *testing.T) (*Loop, *clock.Virtual, *core.Scheduler) {
	t.Helper()
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	sc := core.NewScheduler(prof, topo, core.DefaultConfig())
	clk := clock.NewVirtual()
	cfg := testConfig(sc)
	cfg.Profile = prof
	l, err := New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	return l, clk, sc
}

func TestProbeIdleLoop(t *testing.T) {
	l, _, _ := newProbeLoop(t)

	f, err := l.ProbeFeasibility(model.Res512, 0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Winnable {
		t.Fatalf("idle 8×H100 pool must win a 30s SLO at 512²: %+v", f)
	}
	if f.Pending != 0 || f.Running != 0 || f.QueueGPUSeconds != 0 {
		t.Fatalf("idle loop reported backlog: %+v", f)
	}
	if f.HealthyGPUs != 8 || f.FreeGPUs != 8 {
		t.Fatalf("capacity wrong: %+v", f)
	}
	if f.Slack <= 0 || f.Slack != f.Deadline-f.ProjectedFinish {
		t.Fatalf("slack inconsistent: %+v", f)
	}
	if f.ServiceGPUSeconds <= 0 || f.MinStepTime <= 0 || f.MinStepDegree <= 0 {
		t.Fatalf("cost fields unset: %+v", f)
	}

	// An SLO shorter than best-case service time can never be won.
	tight := time.Duration(model.FLUX().DefaultSteps) * f.MinStepTime / 2
	f2, err := l.ProbeFeasibility(model.Res512, 0, tight)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Winnable {
		t.Fatalf("sub-service SLO %v reported winnable: %+v", tight, f2)
	}
	if f2.Slack >= 0 {
		t.Fatalf("losing probe must carry negative slack: %+v", f2)
	}
}

func TestProbeUnknownResolutionErrors(t *testing.T) {
	l, _, _ := newProbeLoop(t)
	if _, err := l.ProbeFeasibility(model.Resolution{W: 48, H: 48}, 0, time.Second); err == nil {
		t.Fatal("want error for unprofiled resolution")
	}
}

func TestProbeStepsDefault(t *testing.T) {
	l, _, _ := newProbeLoop(t)
	def, err := l.ProbeFeasibility(model.Res512, 0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := l.ProbeFeasibility(model.Res512, model.FLUX().DefaultSteps, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if def.ProjectedFinish != explicit.ProjectedFinish {
		t.Fatalf("steps<=0 must default to the model's count: %v vs %v",
			def.ProjectedFinish, explicit.ProjectedFinish)
	}
}

func TestProbeBacklogDelaysProjection(t *testing.T) {
	l, _, _ := newProbeLoop(t)
	idle, _ := l.ProbeFeasibility(model.Res512, 0, 30*time.Second)

	for i := 0; i < 6; i++ {
		l.Arrive(&workload.Request{
			ID: workload.RequestID(100 + i), Res: model.Res1024,
			Steps: 50, SLO: 30 * time.Second,
		})
	}
	loaded, _ := l.ProbeFeasibility(model.Res512, 0, 30*time.Second)
	if loaded.QueueGPUSeconds <= idle.QueueGPUSeconds {
		t.Fatalf("backlog not reflected: %f ≤ %f", loaded.QueueGPUSeconds, idle.QueueGPUSeconds)
	}
	if loaded.ProjectedFinish <= idle.ProjectedFinish {
		t.Fatalf("projection must move out under load: %v ≤ %v",
			loaded.ProjectedFinish, idle.ProjectedFinish)
	}
}

func TestProbeFullyFailedPoolNeverWins(t *testing.T) {
	l, _, _ := newProbeLoop(t)
	l.Begin()
	l.Fail(simgpu.Mask(1<<8 - 1))
	f, err := l.ProbeFeasibility(model.Res512, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if f.Winnable || f.HealthyGPUs != 0 {
		t.Fatalf("dead pool reported winnable: %+v", f)
	}
	if f.Slack >= 0 {
		t.Fatalf("dead pool must report lateness: %+v", f)
	}
}

// drain drives a loop to completion, optionally probing before every event
// dispatch. It returns the finalized result.
func drain(t *testing.T, l *Loop, clk *clock.Virtual, probe func()) *Result {
	t.Helper()
	for guard := 0; l.Unfinished() > 0; guard++ {
		if guard > 2_000_000 {
			t.Fatal("drain did not converge")
		}
		ev := l.NextEvent()
		if ev == nil {
			t.Fatalf("deadlock: %d unfinished, no events", l.Unfinished())
		}
		if probe != nil {
			probe()
		}
		clk.Advance(ev.At)
		if err := l.Dispatch(l.PopEvent()); err != nil {
			t.Fatal(err)
		}
	}
	return l.Finalize()
}

// TestProbeNeverMutatesLoopState is the router-facing no-mutation property:
// two identical loops replay the same trace, one interleaving feasibility
// probes of randomized shapes before every event; every outcome, run record
// count, plan-call count, and the warm-start planner's cache fingerprint must
// be bit-identical. Pre-fix probes that planned speculatively (or touched the
// decode queue) diverge here.
func TestProbeNeverMutatesLoopState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []model.Resolution{model.Res256, model.Res512, model.Res1024}

	trace := workload.Generate(workload.GeneratorConfig{
		Model: model.FLUX(), Seed: 3, NumRequests: 40,
		Arrivals: workload.NewBurstyArrivals(30),
	})

	build := func() (*Loop, *clock.Virtual, *core.Scheduler) {
		l, clk, sc := newProbeLoop(t)
		for _, r := range trace {
			cp := *r
			l.ScheduleArrival(&cp)
		}
		l.Begin()
		return l, clk, sc
	}

	quiet, qclk, qsc := build()
	probed, pclk, psc := build()

	res1 := drain(t, quiet, qclk, nil)
	res2 := drain(t, probed, pclk, func() {
		res := shapes[rng.Intn(len(shapes))]
		slo := time.Duration(rng.Intn(20_000)) * time.Millisecond
		if _, err := probed.ProbeFeasibility(res, 0, slo); err != nil {
			t.Fatal(err)
		}
	})

	if len(res1.Outcomes) != len(res2.Outcomes) {
		t.Fatalf("outcome counts diverged: %d vs %d", len(res1.Outcomes), len(res2.Outcomes))
	}
	for i := range res1.Outcomes {
		if res1.Outcomes[i] != res2.Outcomes[i] {
			t.Fatalf("outcome %d diverged:\n  quiet:  %+v\n  probed: %+v",
				i, res1.Outcomes[i], res2.Outcomes[i])
		}
	}
	if res1.PlanCalls != res2.PlanCalls || len(res1.Runs) != len(res2.Runs) ||
		res1.Makespan != res2.Makespan || res1.GPUBusySeconds != res2.GPUBusySeconds {
		t.Fatalf("aggregate state diverged:\n  quiet:  plans=%d runs=%d makespan=%v busy=%f\n  probed: plans=%d runs=%d makespan=%v busy=%f",
			res1.PlanCalls, len(res1.Runs), res1.Makespan, res1.GPUBusySeconds,
			res2.PlanCalls, len(res2.Runs), res2.Makespan, res2.GPUBusySeconds)
	}
	if qsc.Warm() != psc.Warm() {
		t.Fatalf("warm-start cache fingerprint diverged: %+v vs %+v", qsc.Warm(), psc.Warm())
	}
}

// TestProbeAgreesWithSingleShotOutcome checks calibration: for randomized
// single-shot submissions on an idle pool, the probe's Winnable verdict must
// agree with the served outcome's Met bit on at least 95% of trials. The
// probe is an optimistic bound (decode excluded), so the residual band is
// one-sided: a Winnable=false verdict must never see the request win.
func TestProbeAgreesWithSingleShotOutcome(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []model.Resolution{model.Res256, model.Res512, model.Res1024}

	const trials = 200
	agree := 0
	for i := 0; i < trials; i++ {
		res := shapes[rng.Intn(len(shapes))]
		// SLOs spanning hopeless to comfortable; the decision threshold for a
		// single request sits somewhere inside this range.
		slo := time.Duration(200+rng.Intn(20_000)) * time.Millisecond

		l, clk, _ := newProbeLoop(t)
		f, err := l.ProbeFeasibility(res, 0, slo)
		if err != nil {
			t.Fatal(err)
		}
		r := &workload.Request{
			ID: 1, Res: res, Steps: model.FLUX().DefaultSteps, Arrival: 0, SLO: slo,
		}
		l.ScheduleArrival(r)
		l.Begin()
		out := drain(t, l, clk, nil)
		if len(out.Outcomes) != 1 {
			t.Fatalf("trial %d: %d outcomes", i, len(out.Outcomes))
		}
		met := out.Outcomes[0].Met
		if f.Winnable == met {
			agree++
		} else if !f.Winnable && met {
			// Optimism is allowed; pessimism (reject a winnable request) would
			// make the router turn away servable traffic.
			t.Fatalf("trial %d (%v, slo %v): probe said unwinnable but request met its SLO",
				i, res, slo)
		}
	}
	if ratio := float64(agree) / trials; ratio < 0.95 {
		t.Fatalf("probe agreement %.1f%% < 95%%", 100*ratio)
	}
}
