package control

import (
	"strings"
	"testing"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// idleSched is a round-based policy that never schedules anything —
// isolating the loop's own bookkeeping (ticks, expiry) from planning.
type idleSched struct{ tau time.Duration }

func (s idleSched) Name() string                               { return "idle" }
func (s idleSched) RoundDuration() time.Duration               { return s.tau }
func (s idleSched) Plan(*sched.PlanContext) []sched.Assignment { return nil }

// brokenSched emits a plan referencing a request that does not exist, which
// the validator must refuse.
type brokenSched struct{}

func (brokenSched) Name() string                 { return "broken" }
func (brokenSched) RoundDuration() time.Duration { return time.Second }
func (brokenSched) Plan(*sched.PlanContext) []sched.Assignment {
	return []sched.Assignment{{
		Requests: []workload.RequestID{9999},
		Group:    simgpu.MaskOf(0),
		Steps:    1,
	}}
}

func testConfig(s sched.Scheduler) Config {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	return Config{
		Model:     mdl,
		Topo:      topo,
		Scheduler: s,
		Profile:   costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{}),
		Engine:    engine.DefaultConfig(),
	}
}

func req(id int, arrival, slo time.Duration) *workload.Request {
	return &workload.Request{
		ID:      workload.RequestID(id),
		Res:     model.Res256,
		Steps:   50,
		Arrival: arrival,
		SLO:     slo,
	}
}

// TestDriveStylesAgreeOnDropBoundary pins the unified DropLateFactor
// semantics across the two adapter drive styles: whether a request is
// pre-scheduled on the event queue and drained to completion (the
// simulator) or injected via Arrive mid-run (the driver), it must expire at
// the exact same round boundary.
func TestDriveStylesAgreeOnDropBoundary(t *testing.T) {
	const (
		arrival = 100 * time.Millisecond
		slo     = 300 * time.Millisecond
		factor  = 1.0
	)
	// Expiry limit is 400ms; with τ = 1s the first planning boundary past
	// it is the tick at exactly 1s.
	want := time.Second

	run := func(perpetual bool, drive func(l *Loop, clk *clock.Virtual)) time.Duration {
		clk := clock.NewVirtual()
		cfg := testConfig(idleSched{tau: time.Second})
		cfg.DropLateFactor = factor
		cfg.Perpetual = perpetual
		var droppedAt time.Duration = -1
		cfg.Hooks.Dropped = func(now time.Duration, o Outcome) { droppedAt = now }
		l, err := New(cfg, clk)
		if err != nil {
			t.Fatal(err)
		}
		drive(l, clk)
		if l.Unfinished() != 0 || l.StateCount() != 0 {
			t.Fatalf("request not finalized: unfinished=%d states=%d", l.Unfinished(), l.StateCount())
		}
		return droppedAt
	}

	// Simulator style: pre-schedule the arrival, drain the queue.
	simAt := run(false, func(l *Loop, clk *clock.Virtual) {
		l.ScheduleArrival(req(0, arrival, slo))
		l.Begin()
		for l.Unfinished() > 0 {
			ev := l.PopEvent()
			if ev == nil {
				t.Fatal("deadlock: queue empty with requests unfinished")
			}
			clk.Advance(ev.At)
			if err := l.Dispatch(ev); err != nil {
				t.Fatal(err)
			}
		}
	})

	// Driver style: only ticks live on the queue; the arrival is injected
	// by the adapter when the clock passes its submission instant.
	drvAt := run(true, func(l *Loop, clk *clock.Virtual) {
		l.Begin()
		arrived := false
		for l.Unfinished() > 0 || !arrived {
			next := l.NextEvent()
			if next == nil {
				t.Fatal("tick queue drained unexpectedly")
			}
			if !arrived && arrival <= next.At {
				clk.Advance(arrival)
				l.Arrive(req(0, 0, slo))
				arrived = true
				continue
			}
			ev := l.PopEvent()
			clk.Advance(ev.At)
			if err := l.Dispatch(ev); err != nil {
				t.Fatal(err)
			}
		}
	})

	if simAt != want || drvAt != want {
		t.Fatalf("drop boundaries diverged: simulator style %v, driver style %v, want %v", simAt, drvAt, want)
	}
}

// TestLenientModeCountsPlanRejections: without Strict, an invalid plan is
// counted and skipped — the serving loop must keep going. The request left
// unscheduled then expires through the normal drop policy.
func TestLenientModeCountsPlanRejections(t *testing.T) {
	clk := clock.NewVirtual()
	cfg := testConfig(brokenSched{})
	cfg.DropLateFactor = 1.0
	rejections := 0
	cfg.Hooks.PlanRejected = func(time.Duration, error) { rejections++ }
	l, err := New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	l.ScheduleArrival(req(0, 0, 500*time.Millisecond))
	l.Begin()
	for l.Unfinished() > 0 {
		ev := l.PopEvent()
		if ev == nil {
			t.Fatal("deadlock")
		}
		clk.Advance(ev.At)
		if err := l.Dispatch(ev); err != nil {
			t.Fatal(err)
		}
	}
	res := l.Finalize()
	if res.PlanRejected == 0 || rejections != res.PlanRejected {
		t.Fatalf("PlanRejected = %d (hook saw %d), want > 0 and equal", res.PlanRejected, rejections)
	}
	if len(res.Outcomes) != 1 || !res.Outcomes[0].Dropped {
		t.Fatalf("request should have expired after rejected plans: %+v", res.Outcomes)
	}
}

// TestStrictModeAborts: the simulator's oracle behavior — a scheduler bug
// panics instead of skewing experiment numbers.
func TestStrictModeAborts(t *testing.T) {
	clk := clock.NewVirtual()
	cfg := testConfig(brokenSched{})
	cfg.Strict = true
	l, err := New(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	l.ScheduleArrival(req(0, 0, time.Second))
	l.Begin()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict loop accepted an invalid plan")
		}
		if !strings.Contains(r.(string), "invalid plan") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	for l.Unfinished() > 0 {
		ev := l.PopEvent()
		clk.Advance(ev.At)
		_ = l.Dispatch(ev)
	}
}

// TestPerpetualTicks: a live serving loop keeps its τ grid alive with no
// requests outstanding; the simulator's grid stops once the trace drains.
func TestPerpetualTicks(t *testing.T) {
	for _, tc := range []struct {
		name      string
		perpetual bool
		wantNext  bool
	}{
		{"perpetual", true, true},
		{"draining", false, false},
	} {
		clk := clock.NewVirtual()
		cfg := testConfig(idleSched{tau: time.Second})
		cfg.Perpetual = tc.perpetual
		l, err := New(cfg, clk)
		if err != nil {
			t.Fatal(err)
		}
		l.Begin()
		ev := l.PopEvent()
		clk.Advance(ev.At)
		if err := l.Dispatch(ev); err != nil {
			t.Fatal(err)
		}
		if got := l.NextEvent() != nil; got != tc.wantNext {
			t.Fatalf("%s: next tick scheduled = %v, want %v", tc.name, got, tc.wantNext)
		}
		if l.Result().RoundTicks != 1 {
			t.Fatalf("%s: RoundTicks = %d, want 1", tc.name, l.Result().RoundTicks)
		}
	}
}

// TestControlRoundTickZeroAlloc is the loop-side allocation guard: with
// result accumulators preallocated and the queue in steady state, one event
// dispatch — plan, engine start/finish, tracker bookkeeping, event recycling
// — must not allocate at all. This pins the arena/pooling work across
// eventq, engine, core and this package; any regression shows up as a
// fractional allocs-per-run here long before it is visible in benchmarks.
func TestControlRoundTickZeroAlloc(t *testing.T) {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	clk := clock.NewVirtual()
	l, err := New(Config{
		Model:       mdl,
		Topo:        topo,
		Scheduler:   core.NewScheduler(prof, topo, core.DefaultConfig()),
		Profile:     prof,
		Engine:      engine.DefaultConfig(),
		Perpetual:   true,
		Preallocate: Prealloc{Requests: 64, Runs: 1 << 15, Rounds: 1 << 15},
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	resList := model.StandardResolutions()
	for i := 0; i < 64; i++ {
		l.Arrive(&workload.Request{
			ID:    workload.RequestID(i),
			Res:   resList[i%len(resList)],
			Steps: 1 << 20,
			SLO:   1000 * time.Hour,
		})
	}
	l.Begin()
	step := func() {
		ev := l.PopEvent()
		clk.Advance(ev.At)
		if err := l.Dispatch(ev); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2048; i++ {
		step() // reach scratch high-water marks before measuring
	}
	if avg := testing.AllocsPerRun(2000, step); avg != 0 {
		t.Fatalf("event dispatch allocates %.2f times per event, want 0", avg)
	}
}
