package invariant

import (
	"strings"
	"testing"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

func testProfile(t *testing.T, topo *simgpu.Topology) *costmodel.Profile {
	t.Helper()
	return costmodel.BuildProfile(costmodel.NewEstimator(model.FLUX(), topo), costmodel.ProfilerConfig{})
}

func pendingState(id workload.RequestID, res model.Resolution, remaining int, slo time.Duration) *sched.RequestState {
	return &sched.RequestState{
		Req:       &workload.Request{ID: id, Res: res, Steps: remaining, SLO: slo},
		Remaining: remaining,
	}
}

func planCtx(t *testing.T, topo *simgpu.Topology, free simgpu.Mask, pending ...*sched.RequestState) *sched.PlanContext {
	t.Helper()
	return &sched.PlanContext{
		Free:    free,
		Pending: pending,
		Profile: testProfile(t, topo),
		Topo:    topo,
	}
}

func rules(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Rule
	}
	return out
}

func wantRule(t *testing.T, vs []Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("expected a %q violation, got %v", rule, rules(vs))
}

func TestCheckPlanCleanPlan(t *testing.T) {
	topo := simgpu.H100x8()
	ctx := planCtx(t, topo, topo.AllMask(),
		pendingState(1, model.Res1024, 50, 3*time.Second),
		pendingState(2, model.Res512, 50, 2*time.Second),
	)
	plan := []sched.Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1, 2, 3), Steps: 20},
		{Requests: []workload.RequestID{2}, Group: simgpu.MaskOf(4, 5), Steps: 30},
	}
	if vs := CheckPlan(ctx, plan, 100*time.Millisecond); len(vs) != 0 {
		t.Fatalf("clean plan reported violations: %v", vs)
	}
}

func TestCheckPlanCapacityAndLegality(t *testing.T) {
	topo := simgpu.H100x8()
	st := pendingState(1, model.Res1024, 50, 3*time.Second)
	st2 := pendingState(2, model.Res1024, 50, 3*time.Second)

	// GPUs 0..3 busy: a plan touching them violates free-mask discipline.
	ctx := planCtx(t, topo, simgpu.MaskOf(4, 5, 6, 7), st, st2)
	vs := CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(2, 3), Steps: 10},
	}, 0)
	wantRule(t, vs, RuleCapacity)

	// Two assignments double-booking the same GPU.
	ctx = planCtx(t, topo, topo.AllMask(), st, st2)
	vs = CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1), Steps: 10},
		{Requests: []workload.RequestID{2}, Group: simgpu.MaskOf(1, 2), Steps: 10},
	}, 0)
	wantRule(t, vs, RuleCapacity)

	// Non-power-of-two group is topologically illegal.
	vs = CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1, 2), Steps: 10},
	}, 0)
	wantRule(t, vs, RuleLegality)
}

func TestCheckPlanMembership(t *testing.T) {
	topo := simgpu.H100x8()
	st := pendingState(1, model.Res1024, 8, 3*time.Second)
	ctx := planCtx(t, topo, topo.AllMask(), st)

	// Unknown request.
	vs := CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{99}, Group: simgpu.MaskOf(0), Steps: 1},
	}, 0)
	wantRule(t, vs, RuleMembership)

	// Claimed twice.
	vs = CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0), Steps: 1},
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(1), Steps: 1},
	}, 0)
	wantRule(t, vs, RuleMembership)

	// More steps than remain on a single-request block.
	vs = CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0), Steps: 9},
	}, 0)
	wantRule(t, vs, RuleMembership)
}

func TestCheckPlanBatchRules(t *testing.T) {
	topo := simgpu.H100x8()
	tau := 100 * time.Millisecond

	// Mixed resolutions in one batch.
	a := pendingState(1, model.Res1024, 50, time.Hour)
	b := pendingState(2, model.Res512, 50, time.Hour)
	ctx := planCtx(t, topo, topo.AllMask(), a, b)
	vs := CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{1, 2}, Group: simgpu.MaskOf(0, 1, 2, 3), Steps: 10},
	}, tau)
	wantRule(t, vs, RuleBatch)

	// Survival: the victim has so many steps left after this block that even
	// the fastest degree cannot finish by its deadline.
	host := pendingState(3, model.Res1024, 50, time.Hour)
	victim := pendingState(4, model.Res1024, 50, 200*time.Millisecond)
	ctx = planCtx(t, topo, topo.AllMask(), host, victim)
	vs = CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{3, 4}, Group: simgpu.MaskOf(0, 1, 2, 3), Steps: 2},
	}, tau)
	wantRule(t, vs, RuleSurvival)

	// The same merge flagged best-effort is exempt: it carries already-late
	// requests by design.
	vs = CheckPlan(ctx, []sched.Assignment{
		{Requests: []workload.RequestID{3, 4}, Group: simgpu.MaskOf(0, 1, 2, 3), Steps: 2, BestEffort: true},
	}, tau)
	if len(vs) != 0 {
		t.Fatalf("best-effort batch should be exempt from survival, got %v", vs)
	}
}

// fakeRun fabricates an engine.Run the way the engine would build it, with
// zero-noise physics so the cost-model check demands exact agreement.
func fakeRun(id engine.RunID, est *costmodel.Estimator, asg sched.Assignment, res model.Resolution,
	start time.Duration, steps map[workload.RequestID]int) *engine.Run {
	maxSteps := 0
	for _, n := range steps {
		if n > maxSteps {
			maxSteps = n
		}
	}
	st := est.StepTime(res, asg.Group, len(asg.Requests))
	return &engine.Run{
		ID: id, Asg: asg, Res: res,
		Start: start, End: start + time.Duration(maxSteps)*st,
		StepTime: st, Steps: steps,
	}
}

// newTestOracle builds a non-strict oracle with exact (noise-free) physics.
func newTestOracle(t *testing.T, topo *simgpu.Topology) (*Oracle, *costmodel.Estimator) {
	t.Helper()
	m := model.FLUX()
	prof := testProfile(t, topo)
	prof.Noise = 0
	o := New(Config{Model: m, Topo: topo, Profile: prof, Tau: 100 * time.Millisecond})
	return o, costmodel.NewEstimator(m, topo)
}

func TestOracleDetectsDoubleBooking(t *testing.T) {
	topo := simgpu.H100x8()
	o, est := newTestOracle(t, topo)
	h := o.Hooks()

	r1 := &workload.Request{ID: 1, Res: model.Res1024, Steps: 10, SLO: time.Hour}
	r2 := &workload.Request{ID: 2, Res: model.Res1024, Steps: 10, SLO: time.Hour}
	h.Admitted(0, r1)
	h.Admitted(0, r2)

	g := simgpu.MaskOf(0, 1)
	h.RunStarted(0, fakeRun(1, est,
		sched.Assignment{Requests: []workload.RequestID{1}, Group: g, Steps: 10},
		model.Res1024, 0, map[workload.RequestID]int{1: 10}))
	if len(o.Violations()) != 0 {
		t.Fatalf("first start should be clean: %v", o.Violations())
	}
	// Second block lands on the same GPUs while the first is in flight.
	h.RunStarted(0, fakeRun(2, est,
		sched.Assignment{Requests: []workload.RequestID{2}, Group: g, Steps: 10},
		model.Res1024, 0, map[workload.RequestID]int{2: 10}))
	wantRule(t, o.Violations(), RuleCapacity)
}

func TestOracleDetectsWrongProjection(t *testing.T) {
	topo := simgpu.H100x8()
	o, est := newTestOracle(t, topo)
	h := o.Hooks()

	r := &workload.Request{ID: 1, Res: model.Res1024, Steps: 10, SLO: time.Hour}
	h.Admitted(0, r)
	run := fakeRun(1, est,
		sched.Assignment{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1), Steps: 10},
		model.Res1024, 0, map[workload.RequestID]int{1: 10})
	run.End += time.Millisecond // engine lied about the finish time
	h.RunStarted(0, run)
	wantRule(t, o.Violations(), RuleCostModel)
}

func TestOracleVerifyResultFlagsLeaks(t *testing.T) {
	topo := simgpu.H100x8()
	o, _ := newTestOracle(t, topo)
	h := o.Hooks()
	h.Admitted(0, &workload.Request{ID: 1, Res: model.Res1024, Steps: 10, SLO: time.Hour})

	// Request admitted but never finalized: the end-of-run audit must fail.
	err := o.VerifyResult(&control.Result{})
	if err == nil {
		t.Fatal("VerifyResult passed with an unfinalized request")
	}
	if !strings.Contains(err.Error(), RuleConservation) {
		t.Fatalf("expected a conservation violation, got: %v", err)
	}
}

func TestOracleCleanLifecycle(t *testing.T) {
	topo := simgpu.H100x8()
	o, est := newTestOracle(t, topo)
	h := o.Hooks()

	r := &workload.Request{ID: 1, Res: model.Res1024, Steps: 10, SLO: time.Hour}
	h.Admitted(0, r)
	run := fakeRun(1, est,
		sched.Assignment{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1), Steps: 10},
		model.Res1024, 0, map[workload.RequestID]int{1: 10})
	h.RunStarted(0, run)
	h.RunFinished(run.End, run)
	out := control.Outcome{ID: 1, Completion: run.End, Deadline: r.Deadline(), Met: true}
	h.Finished(run.End, out)

	res := control.Result{Outcomes: []control.Outcome{out}, Makespan: run.End}
	if err := o.VerifyResult(&res); err != nil {
		t.Fatalf("clean lifecycle failed the audit: %v", err)
	}
}
