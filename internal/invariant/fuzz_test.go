package invariant_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/invariant"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

// The fuzz harness: seeded generators turn primitive fuzz inputs into
// workload/topology/fault instances, run them through the planner (and the
// whole control loop) with the oracle enabled, and fail on any invariant
// violation or nondeterminism. Failing inputs land in testdata/fuzz/ as
// corpus entries that plain `go test ./...` replays forever after.

var (
	profMu    sync.Mutex
	profCache = map[int]*costmodel.Profile{}
)

// fuzzProfile returns the cached FLUX profile for an n-GPU H100 node
// (profiles are deterministic, so sharing them keeps iterations cheap).
func fuzzProfile(n int) (*costmodel.Profile, *simgpu.Topology) {
	topo := simgpu.H100xN(n)
	profMu.Lock()
	defer profMu.Unlock()
	p, ok := profCache[n]
	if !ok {
		p = costmodel.BuildProfile(costmodel.NewEstimator(model.FLUX(), topo), costmodel.ProfilerConfig{})
		profCache[n] = p
	}
	return p, topo
}

// frozenWall pins the planner's latency diagnostic off the wall clock.
func frozenWall() time.Time { return time.Unix(0, 0) }

// randGroup returns a random legal (power-of-two, aligned) group within the
// n-GPU node, or 0.
func randGroup(rng *stats.RNG, n int) simgpu.Mask {
	size := 1 << rng.Intn(4)
	if size > n {
		return 0
	}
	base := rng.Intn(n/size) * size
	return simgpu.MaskRange(simgpu.GPUID(base), size)
}

// fuzzPlanContext builds a randomized planning snapshot: a random free mask,
// pending requests with random resolutions, budgets, progress, and prior
// placements.
func fuzzPlanContext(rng *stats.RNG, prof *costmodel.Profile, topo *simgpu.Topology, nReq int) *sched.PlanContext {
	resList := model.StandardResolutions()
	now := time.Duration(rng.Intn(120_000)) * time.Millisecond
	free := simgpu.Mask(rng.Uint64()) & topo.AllMask()
	pending := make([]*sched.RequestState, 0, nReq)
	for i := 0; i < nReq; i++ {
		steps := 1 + rng.Intn(50)
		arrival := now - time.Duration(rng.Intn(5000))*time.Millisecond
		if arrival < 0 {
			arrival = 0
		}
		st := &sched.RequestState{
			Req: &workload.Request{
				ID:      workload.RequestID(i + 1),
				Res:     resList[rng.Intn(len(resList))],
				Steps:   steps,
				Arrival: arrival,
				SLO:     time.Duration(200+rng.Intn(6000)) * time.Millisecond,
			},
			Remaining: 1 + rng.Intn(steps),
			LastGroup: randGroup(rng, topo.N),
		}
		pending = append(pending, st)
	}
	return &sched.PlanContext{Now: now, Free: free, Pending: pending, Profile: prof, Topo: topo}
}

// clonePlan deep-copies a plan out of the scheduler's scratch so two plans
// from two scheduler instances can be compared after both have run.
func clonePlan(plan []sched.Assignment) []sched.Assignment {
	out := make([]sched.Assignment, len(plan))
	for i, a := range plan {
		a.Requests = append([]workload.RequestID(nil), a.Requests...)
		out[i] = a
	}
	return out
}

// FuzzPlanRound feeds randomized planning snapshots to Algorithm 1 with
// every mechanism-flag combination and checks that each produced plan passes
// the full invariant battery and that planning is deterministic.
func FuzzPlanRound(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(6), uint8(0))
	f.Add(uint64(42), uint8(4), uint8(3), uint8(0b1111))
	f.Add(uint64(7), uint8(2), uint8(12), uint8(0b0101))
	f.Add(uint64(1234), uint8(1), uint8(1), uint8(0b1010))
	f.Fuzz(func(t *testing.T, seed uint64, nGPUSel, nReqSel, flags uint8) {
		n := 1 << (int(nGPUSel) % 4) // 1, 2, 4, 8 GPUs
		nReq := 1 + int(nReqSel)%16
		prof, topo := fuzzProfile(n)

		cfg := core.DefaultConfig()
		cfg.PlacementPreservation = flags&1 != 0
		cfg.ElasticScaleUp = flags&2 != 0
		cfg.SelectiveBatching = flags&4 != 0
		cfg.BestEffortLane = flags&8 != 0
		cfg.WallClock = frozenWall

		newCtx := func() *sched.PlanContext {
			return fuzzPlanContext(stats.NewRNG(seed), prof, topo, nReq)
		}
		ctx := newCtx()
		s := core.NewScheduler(prof, topo, cfg)
		plan := s.Plan(ctx)

		if err := sched.ValidatePlan(ctx, plan); err != nil {
			t.Fatalf("plan failed baseline validation: %v", err)
		}
		if vs := invariant.CheckPlan(ctx, plan, s.RoundDuration()); len(vs) != 0 {
			t.Fatalf("plan violated invariants: %v", vs)
		}

		// Determinism: a fresh scheduler over an identical snapshot must
		// produce the identical plan.
		got := clonePlan(plan)
		again := clonePlan(core.NewScheduler(prof, topo, cfg).Plan(newCtx()))
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("planning is nondeterministic:\n first: %+v\nsecond: %+v", got, again)
		}
	})
}

// warmColdEquivalence drives a warm-start scheduler and a cold one through
// the same evolving sequence of planning snapshots and demands byte-identical
// plans every round. The evolution mixes the three regimes the incremental
// planner distinguishes: perturbed rounds (partial DP-prefix reuse, Layer B),
// repeated identical snapshots (exact replay, Layer A), and churn heavy
// enough to force cold solves.
func warmColdEquivalence(t *testing.T, seed uint64, nGPUSel, nReqSel, flags uint8) {
	n := 1 << (int(nGPUSel) % 4) // 1, 2, 4, 8 GPUs
	nReq := 1 + int(nReqSel)%16
	prof, topo := fuzzProfile(n)
	resList := model.StandardResolutions()

	mk := func(warmStart bool) *core.Scheduler {
		cfg := core.DefaultConfig()
		cfg.PlacementPreservation = flags&1 != 0
		cfg.ElasticScaleUp = flags&2 != 0
		cfg.SelectiveBatching = flags&4 != 0
		cfg.BestEffortLane = flags&8 != 0
		cfg.WarmStart = warmStart
		cfg.WallClock = frozenWall
		return core.NewScheduler(prof, topo, cfg)
	}
	warm, cold := mk(true), mk(false)

	ctx := fuzzPlanContext(stats.NewRNG(seed), prof, topo, nReq)
	rng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	tau := warm.RoundDuration()
	nextID := len(ctx.Pending) + 1
	for round := 0; round < 12; round++ {
		wp := clonePlan(warm.Plan(ctx))
		cp := clonePlan(cold.Plan(ctx))
		if !reflect.DeepEqual(wp, cp) {
			t.Fatalf("round %d: warm and cold plans diverge:\n warm: %+v\n cold: %+v", round, wp, cp)
		}
		if err := sched.ValidatePlan(ctx, wp); err != nil {
			t.Fatalf("round %d: plan failed validation: %v", round, err)
		}
		// Evolve the snapshot for the next round.
		if rng.Intn(4) == 0 {
			continue // unchanged snapshot: Layer-A replay vs cold re-solve
		}
		ctx.Now += tau
		for _, st := range ctx.Pending {
			switch rng.Intn(3) {
			case 0:
				st.Remaining -= rng.Intn(5)
				if st.Remaining < 1 {
					st.Remaining = 1
				}
			case 1:
				st.LastGroup = randGroup(rng, topo.N)
			}
		}
		if rng.Intn(3) == 0 {
			ctx.Free = simgpu.Mask(rng.Uint64()) & topo.AllMask()
		}
		if rng.Intn(4) == 0 {
			steps := 1 + rng.Intn(50)
			ctx.Pending = append(ctx.Pending, &sched.RequestState{
				Req: &workload.Request{
					ID:      workload.RequestID(nextID),
					Res:     resList[rng.Intn(len(resList))],
					Steps:   steps,
					Arrival: ctx.Now,
					SLO:     time.Duration(200+rng.Intn(6000)) * time.Millisecond,
				},
				Remaining: steps,
			})
			nextID++
		}
	}
}

// FuzzWarmStart is the incremental planner's equivalence fuzzer: whatever
// snapshot sequence the input derives, warm-start planning must be
// bit-identical to cold planning (DESIGN.md §12's determinism argument,
// enforced). Shares the FuzzPlanRound input shape so corpus entries transfer.
func FuzzWarmStart(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(6), uint8(0))
	f.Add(uint64(42), uint8(4), uint8(3), uint8(0b1111))
	f.Add(uint64(7), uint8(2), uint8(12), uint8(0b0101))
	f.Add(uint64(99), uint8(3), uint8(15), uint8(0b1101))
	f.Fuzz(warmColdEquivalence)
}

// TestWarmColdEquivalence pins a deterministic battery of the same check so
// the property is exercised by plain `go test` runs beyond corpus replay.
func TestWarmColdEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		warmColdEquivalence(t, seed, uint8(seed), uint8(3*seed), uint8(seed>>1))
	}
}

// TestSeedCorpusCommitted pins the replay contract: the committed corpus
// under testdata/fuzz/ must exist and be non-empty for every target, because
// native Go fuzzing replays exactly those files as subtests of a plain
// `go test ./...` — deleting the corpus would silently drop regressions.
func TestSeedCorpusCommitted(t *testing.T) {
	for _, target := range []string{"FuzzPlanRound", "FuzzControlLoop", "FuzzElasticControlLoop", "FuzzWarmStart", "FuzzCacheAwarePlan"} {
		entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", target))
		if err != nil {
			t.Fatalf("%s corpus missing: %v", target, err)
		}
		if len(entries) == 0 {
			t.Fatalf("%s corpus is empty", target)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join("testdata", "fuzz", target, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(data), "go test fuzz v1\n") {
				t.Fatalf("%s/%s is not a go-fuzz corpus entry", target, e.Name())
			}
		}
	}
}

// fuzzSimConfig derives a full simulation instance — trace, scheduler,
// faults — from fuzz primitives. Both runs of the same input must build
// identical configs.
func fuzzSimConfig(seed uint64, nReqSel, schedPick, faultPick, rateSel uint8) sim.Config {
	prof, topo := fuzzProfile(8)
	mdl := model.FLUX()
	nReq := 1 + int(nReqSel)%24
	rate := 6 + float64(rateSel%8)*8

	var sc sched.Scheduler
	switch schedPick % 5 {
	case 0:
		cfg := core.DefaultConfig()
		cfg.WallClock = frozenWall
		sc = core.NewScheduler(prof, topo, cfg)
	case 1:
		sc = sched.NewFixedSP(2)
	case 2:
		sc = sched.NewFixedSP(8)
	case 3:
		sc = sched.NewRSSP(8)
	default:
		sc = sched.NewEDF()
	}

	var faults []simgpu.Fault
	switch faultPick % 3 {
	case 1:
		faults = []simgpu.Fault{{GPU: simgpu.GPUID(faultPick % 8), FailAt: 10 * time.Second}}
	case 2:
		faults = []simgpu.Fault{
			{GPU: simgpu.GPUID(faultPick % 8), FailAt: 8 * time.Second, RecoverAt: 25 * time.Second},
			{GPU: simgpu.GPUID((faultPick + 3) % 8), FailAt: 15 * time.Second},
		}
	}

	return sim.Config{
		Model:     mdl,
		Topo:      topo,
		Scheduler: sc,
		Requests: workload.Generate(workload.GeneratorConfig{
			Model:       mdl,
			Mix:         workload.UniformMix(),
			Arrivals:    workload.PoissonArrivals{PerMinute: rate},
			SLO:         workload.NewSLOPolicy(1.2),
			NumRequests: nReq,
			Seed:        seed,
		}),
		Profile:         prof,
		DropLateFactor:  4.0,
		Faults:          faults,
		CheckInvariants: true,
	}
}

// FuzzControlLoop runs seeded workload/fault instances through the full
// control loop with the oracle attached (strict mode: any invariant breach
// panics and the fuzzer records the input), then re-runs the same input and
// demands identical outcomes — end-to-end determinism of the whole stack.
func FuzzControlLoop(f *testing.F) {
	f.Add(uint64(3), uint8(10), uint8(0), uint8(0), uint8(2))
	f.Add(uint64(11), uint8(20), uint8(0), uint8(2), uint8(4))
	f.Add(uint64(5), uint8(8), uint8(3), uint8(0), uint8(1))
	f.Add(uint64(9), uint8(16), uint8(4), uint8(0), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, nReqSel, schedPick, faultPick, rateSel uint8) {
		run := func() *sim.Result {
			res, err := sim.Run(fuzzSimConfig(seed, nReqSel, schedPick, faultPick, rateSel))
			if err != nil {
				// Rigid fixed-degree policies can wedge when a fault shrinks
				// the cluster below their degree; the loop reports it rather
				// than spinning. That is a scheduler limitation by design,
				// not an invariant breach.
				if strings.Contains(err.Error(), "deadlock") {
					t.Skip("scheduler cannot make progress on the shrunken cluster")
				}
				t.Fatalf("sim failed: %v", err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
			t.Fatalf("control loop is nondeterministic:\n first: %+v\nsecond: %+v", a.Outcomes, b.Outcomes)
		}
		if a.Remaps != b.Remaps || a.RunsAborted != b.RunsAborted || a.Makespan != b.Makespan {
			t.Fatalf("control loop telemetry diverged: %+v vs %+v", a, b)
		}
	})
}

// fuzzResizes derives a planned capacity-change schedule from a fuzz
// primitive. Masks stay non-empty and inside the 8-GPU topology; shapes cover
// a lone shrink, shrink-then-restore, and a donate-from-the-top slice so the
// surviving mask is not always a prefix.
func fuzzResizes(resizePick uint8, topo *simgpu.Topology) []simgpu.Resize {
	all := topo.AllMask()
	keep := 1 + int(resizePick)%all.Count()
	switch resizePick % 4 {
	case 0:
		return nil
	case 1:
		return []simgpu.Resize{{At: 9 * time.Second, NewMask: simgpu.MaskRange(0, keep)}}
	case 2:
		return []simgpu.Resize{
			{At: 7 * time.Second, NewMask: simgpu.MaskRange(0, keep)},
			{At: 22 * time.Second, NewMask: all},
		}
	default:
		low := all
		for low.Count() > keep {
			low = low.Without(low.Highest())
		}
		return []simgpu.Resize{
			{At: 5 * time.Second, NewMask: all.Without(low)},
			{At: 18 * time.Second, NewMask: all},
		}
	}
}

// fuzzCacheSimConfig derives a simulation instance with the step-cache
// dimension enabled: always the TetriServe scheduler (the only policy with
// the cache knob), MaxCacheInterval from cacheSel, and per-request quality
// budgets varied deterministically from budgetSel (including 0 — caching
// forbidden — so the mix always exercises the legacy path too). Both runs of
// the same input must build identical configs.
func fuzzCacheSimConfig(seed uint64, nReqSel, faultPick, rateSel, cacheSel, budgetSel uint8) sim.Config {
	prof, topo := fuzzProfile(8)
	mdl := model.FLUX()
	nReq := 1 + int(nReqSel)%24
	rate := 6 + float64(rateSel%8)*8

	cfg := core.DefaultConfig()
	cfg.WallClock = frozenWall
	cfg.MaxCacheInterval = 2 + int(cacheSel)%7 // 2..8

	var faults []simgpu.Fault
	switch faultPick % 3 {
	case 1:
		faults = []simgpu.Fault{{GPU: simgpu.GPUID(faultPick % 8), FailAt: 10 * time.Second}}
	case 2:
		faults = []simgpu.Fault{
			{GPU: simgpu.GPUID(faultPick % 8), FailAt: 8 * time.Second, RecoverAt: 25 * time.Second},
			{GPU: simgpu.GPUID((faultPick + 3) % 8), FailAt: 15 * time.Second},
		}
	}

	reqs := workload.Generate(workload.GeneratorConfig{
		Model:       mdl,
		Mix:         workload.UniformMix(),
		Arrivals:    workload.PoissonArrivals{PerMinute: rate},
		SLO:         workload.NewSLOPolicy(1.2),
		NumRequests: nReq,
		Seed:        seed,
	})
	for i, r := range reqs {
		// Budgets 0..Steps/2, spread across the trace so every run mixes
		// cache-forbidden, tight, and generous requests.
		r.QualityBudget = (int(budgetSel) + i*5) % (r.Steps/2 + 1)
	}

	return sim.Config{
		Model:           mdl,
		Topo:            topo,
		Scheduler:       core.NewScheduler(prof, topo, cfg),
		Requests:        reqs,
		Profile:         prof,
		DropLateFactor:  4.0,
		Faults:          faults,
		CheckInvariants: true,
	}
}

// FuzzCacheAwarePlan interleaves the step-cache knobs (MaxCacheInterval,
// per-request quality budgets) with faults and planned capacity resizes under
// the strict oracle: every plan's cached blocks must respect the quality
// budget and protection zone (RuleQuality), the quality ledger must conserve
// through aborts and preemptions, the whole run must replay bit-identically,
// and no finalized request may exceed its budget.
func FuzzCacheAwarePlan(f *testing.F) {
	f.Add(uint64(3), uint8(10), uint8(0), uint8(2), uint8(2), uint8(4), uint8(0))
	f.Add(uint64(11), uint8(20), uint8(2), uint8(4), uint8(0), uint8(9), uint8(2))
	f.Add(uint64(5), uint8(8), uint8(1), uint8(1), uint8(6), uint8(0), uint8(3))
	f.Add(uint64(9), uint8(16), uint8(2), uint8(6), uint8(3), uint8(25), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, nReqSel, faultPick, rateSel, cacheSel, budgetSel, resizePick uint8) {
		run := func() *sim.Result {
			cfg := fuzzCacheSimConfig(seed, nReqSel, faultPick, rateSel, cacheSel, budgetSel)
			cfg.Resizes = fuzzResizes(resizePick, cfg.Topo)
			res, err := sim.Run(cfg)
			if err != nil {
				if strings.Contains(err.Error(), "deadlock") {
					t.Skip("scheduler cannot make progress on the shrunken cluster")
				}
				t.Fatalf("sim failed: %v", err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
			t.Fatalf("cache-aware loop is nondeterministic:\n first: %+v\nsecond: %+v", a.Outcomes, b.Outcomes)
		}
		if a.Resizes != b.Resizes || a.RunsPreempted != b.RunsPreempted ||
			a.RunsAborted != b.RunsAborted || a.Makespan != b.Makespan {
			t.Fatalf("cache-aware loop telemetry diverged: %+v vs %+v", a, b)
		}
		// Budget conservation, double-checked outside the oracle: the budget
		// each request was admitted with bounds its finalized approximation.
		budget := map[workload.RequestID]int{}
		for _, r := range fuzzCacheSimConfig(seed, nReqSel, faultPick, rateSel, cacheSel, budgetSel).Requests {
			budget[r.ID] = r.QualityBudget
		}
		for _, out := range a.Outcomes {
			if out.Approximated > budget[out.ID] {
				t.Fatalf("request %d approximated %d steps over its budget %d", out.ID, out.Approximated, budget[out.ID])
			}
		}
	})
}

// FuzzElasticControlLoop is FuzzControlLoop with planned capacity changes
// interleaved into the fault schedule: whatever resize/fault interleaving the
// input derives, the oracle must hold through every capacity transition and
// the whole run must replay bit-identically.
func FuzzElasticControlLoop(f *testing.F) {
	f.Add(uint64(3), uint8(10), uint8(0), uint8(0), uint8(2), uint8(1))
	f.Add(uint64(11), uint8(20), uint8(0), uint8(2), uint8(4), uint8(2))
	f.Add(uint64(5), uint8(8), uint8(1), uint8(1), uint8(1), uint8(3))
	f.Add(uint64(9), uint8(16), uint8(4), uint8(2), uint8(6), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, nReqSel, schedPick, faultPick, rateSel, resizePick uint8) {
		run := func() *sim.Result {
			cfg := fuzzSimConfig(seed, nReqSel, schedPick, faultPick, rateSel)
			cfg.Resizes = fuzzResizes(resizePick, cfg.Topo)
			res, err := sim.Run(cfg)
			if err != nil {
				// Shrinking the cluster below a rigid policy's degree wedges
				// it just like a fault does; the loop reports the deadlock
				// rather than spinning.
				if strings.Contains(err.Error(), "deadlock") {
					t.Skip("scheduler cannot make progress on the shrunken cluster")
				}
				t.Fatalf("sim failed: %v", err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
			t.Fatalf("elastic control loop is nondeterministic:\n first: %+v\nsecond: %+v", a.Outcomes, b.Outcomes)
		}
		if a.Resizes != b.Resizes || a.RunsPreempted != b.RunsPreempted ||
			a.RunsAborted != b.RunsAborted || a.Makespan != b.Makespan {
			t.Fatalf("elastic control loop telemetry diverged: %+v vs %+v", a, b)
		}
	})
}
