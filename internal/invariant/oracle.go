package invariant

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// Config describes the world the oracle audits. It deliberately mirrors the
// subset of control.Config the checks need; Attach derives it automatically.
type Config struct {
	Model   *model.Model
	Topo    *simgpu.Topology
	Profile *costmodel.Profile
	// Engine supplies the jitter amplitude for the cost-model envelope.
	Engine engine.Config
	// Tau is the scheduler's round duration (0 for event-driven policies;
	// disables the round-boundary survival test).
	Tau time.Duration
	// Strict panics on the first violation (the simulator's behavior: a
	// broken invariant must abort the run, not skew the tables). Off, the
	// oracle records violations for later inspection (the serving driver).
	Strict bool
}

// reqState is the oracle's independent ledger entry for one live request.
type reqState struct {
	res       model.Resolution
	arrival   time.Duration
	deadline  time.Duration
	remaining int
	running   bool
	// qualityUsed/qualityBudget is the oracle's double-entry of the step-cache
	// quality ledger: approximated steps credited with the same ApproxSteps
	// convention the control loop uses, checked against the request's budget
	// at every credit and against Outcome.Approximated at retirement.
	qualityUsed   int
	qualityBudget int
}

// Oracle audits a control.Loop through its lifecycle hooks. All transition
// methods run on the loop's goroutine; only Violations may be called from
// other goroutines.
type Oracle struct {
	cfg   Config
	est   *costmodel.Estimator
	noise float64

	// capacity is the oracle's independent ledger of the GPU set the shard
	// owns; Resized transitions mutate it. busy/failed are tracked within it.
	capacity simgpu.Mask
	busy     simgpu.Mask
	failed   simgpu.Mask
	reqs     map[workload.RequestID]*reqState
	// latents mirrors the engine's latent ledger: where each request's
	// latent last materialized. Presence of an entry (even an empty mask
	// after a fault) means the next placement is a reconfiguration.
	latents  map[workload.RequestID]simgpu.Mask
	inflight map[engine.RunID]*engine.Run

	admitted   int
	finalized  int
	migrations int
	plans      int
	preempted  int
	resizes    int

	mu         sync.Mutex
	violations []Violation
}

// New builds an oracle over the given world.
func New(cfg Config) *Oracle {
	noise := cfg.Engine.Noise
	if noise == 0 && cfg.Profile != nil {
		noise = cfg.Profile.Noise
	}
	capacity := cfg.Engine.Capacity & cfg.Topo.AllMask()
	if capacity == 0 {
		capacity = cfg.Topo.AllMask()
	}
	return &Oracle{
		cfg:      cfg,
		est:      costmodel.NewEstimator(cfg.Model, cfg.Topo),
		noise:    noise,
		capacity: capacity,
		reqs:     make(map[workload.RequestID]*reqState),
		latents:  make(map[workload.RequestID]simgpu.Mask),
		inflight: make(map[engine.RunID]*engine.Run),
	}
}

// Attach builds an oracle for the control configuration and chains its
// observers after any hooks already installed. Call before control.New.
func Attach(cfg *control.Config) *Oracle {
	o := New(Config{
		Model:   cfg.Model,
		Topo:    cfg.Topo,
		Profile: cfg.Profile,
		Engine:  cfg.Engine,
		Tau:     cfg.Scheduler.RoundDuration(),
		Strict:  cfg.Strict,
	})
	cfg.Hooks = cfg.Hooks.Then(o.Hooks())
	return o
}

// Hooks returns the oracle's observer callbacks for control.Config.
func (o *Oracle) Hooks() control.Hooks {
	return control.Hooks{
		Admitted:     o.onAdmitted,
		Planned:      o.onPlanned,
		RunStarted:   o.onRunStarted,
		RunFinished:  o.onRunFinished,
		RunAborted:   o.onRunAborted,
		RunPreempted: o.onRunPreempted,
		Resized:      o.onResized,
		GPUFailed:    o.onGPUFailed,
		GPURecovered: o.onGPURecovered,
		Finished:     o.onFinished,
		Dropped:      o.onDropped,
	}
}

// Violations returns a copy of the recorded violations (empty when the run
// respected every invariant). Safe to call from any goroutine.
func (o *Oracle) Violations() []Violation {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Violation(nil), o.violations...)
}

// Migrations returns how many explicit placement migrations the oracle has
// observed (for comparison against the engine's remap counter).
func (o *Oracle) Migrations() int { return o.migrations }

// Plans returns how many validated plans the oracle has audited.
func (o *Oracle) Plans() int { return o.plans }

func (o *Oracle) report(at time.Duration, rule, format string, args ...any) {
	v := Violation{At: at, Rule: rule, Detail: fmt.Sprintf(format, args...)}
	o.mu.Lock()
	o.violations = append(o.violations, v)
	o.mu.Unlock()
	if o.cfg.Strict {
		panic("invariant: " + v.Error())
	}
}

func (o *Oracle) onAdmitted(now time.Duration, r *workload.Request) {
	if _, dup := o.reqs[r.ID]; dup {
		o.report(now, RuleConservation, "request %d admitted twice", r.ID)
	}
	remaining := r.Steps - r.SkippedSteps
	if remaining < 1 {
		o.report(now, RuleConservation, "request %d admitted with %d effective steps", r.ID, remaining)
	}
	o.reqs[r.ID] = &reqState{
		res:           r.Res,
		arrival:       r.Arrival,
		deadline:      r.Deadline(),
		remaining:     remaining,
		qualityBudget: r.QualityBudget,
	}
	o.admitted++
}

func (o *Oracle) onPlanned(now time.Duration, ctx *sched.PlanContext, plan []sched.Assignment) {
	o.plans++
	// Double-entry free mask: the engine's idle view must equal the owned
	// capacity minus the oracle's independently tracked busy and failed sets
	// (re-derived across resizes by onResized).
	if expect := o.capacity.Without(o.busy).Without(o.failed); ctx.Free != expect {
		o.report(now, RuleConservation, "planner saw free=%v but ledger says %v (capacity=%v busy=%v failed=%v)",
			ctx.Free, expect, o.capacity, o.busy, o.failed)
	}
	if ctx.Capacity != 0 && ctx.Capacity != o.capacity {
		o.report(now, RuleConservation, "planner saw capacity=%v but ledger says %v", ctx.Capacity, o.capacity)
	}
	// The pending snapshot must agree with the ledger request by request.
	for _, st := range ctx.Pending {
		rec, ok := o.reqs[st.Req.ID]
		switch {
		case !ok:
			o.report(now, RuleConservation, "pending request %d unknown to the ledger", st.Req.ID)
		case rec.running:
			o.report(now, RuleConservation, "request %d is pending and running at once", st.Req.ID)
		case rec.remaining != st.Remaining:
			o.report(now, RuleConservation, "request %d: tracker says %d steps remain, ledger says %d",
				st.Req.ID, st.Remaining, rec.remaining)
		}
	}
	for _, v := range CheckPlan(ctx, plan, o.cfg.Tau) {
		o.report(v.At, v.Rule, "%s", v.Detail)
	}
}

func (o *Oracle) onRunStarted(now time.Duration, run *engine.Run) {
	g := run.Asg.Group
	if err := o.cfg.Topo.ValidGroup(g); err != nil {
		o.report(now, RuleLegality, "started block on illegal group: %v", err)
	}
	if g.Overlaps(o.busy) {
		o.report(now, RuleCapacity, "block %d double-books GPUs %v (busy=%v)", run.ID, g&o.busy, o.busy)
	}
	if g.Overlaps(o.failed) {
		o.report(now, RuleCapacity, "block %d dispatched onto failed GPUs %v", run.ID, g&o.failed)
	}
	if g.Without(o.capacity) != 0 {
		o.report(now, RuleCapacity, "block %d dispatched onto GPUs %v outside owned capacity %v",
			run.ID, g.Without(o.capacity), o.capacity)
	}
	if run.Start != now {
		o.report(now, RuleCostModel, "block %d starts at %s, not now", run.ID, run.Start)
	}

	// Projected finish must be exactly what the cost model implies.
	maxSteps := 0
	for id, n := range run.Steps {
		rec, ok := o.reqs[id]
		if !ok {
			o.report(now, RuleMembership, "block %d runs unknown request %d", run.ID, id)
			continue
		}
		if rec.running {
			o.report(now, RuleMembership, "request %d started while already running", id)
		}
		want := run.Asg.Steps
		if want > rec.remaining {
			want = rec.remaining
		}
		if n != want {
			o.report(now, RuleMembership, "request %d granted %d steps, expected min(%d assigned, %d remaining)",
				id, n, run.Asg.Steps, rec.remaining)
		}
		rec.running = true
		if n > maxSteps {
			maxSteps = n
		}
		// Placement preservation: resuming anywhere but the latent's home is
		// an explicit migration the engine must charge as a remap.
		if prev, started := o.latents[id]; started && prev != g {
			o.migrations++
		}
	}
	if want := run.Start + run.Overhead + time.Duration(maxSteps)*run.StepTime; run.End != want {
		o.report(now, RuleCostModel, "block %d projects finish %s, cost model implies %s", run.ID, run.End, want)
	}
	nominal := o.est.StepTime(run.Res, g, len(run.Asg.Requests))
	// Cache-assisted blocks realize the γ-discounted step time (the engine
	// discounts after jitter, so the envelope transfers to the discounted
	// nominal exactly).
	if c := run.Asg.CacheInterval; c > 1 {
		gamma := costmodel.DefaultCachedStepRelCost
		if o.cfg.Profile != nil {
			gamma = o.cfg.Profile.CachedStepRelCost()
		}
		nominal = time.Duration(float64(nominal) * costmodel.CacheDiscount(gamma, c))
	}
	if !o.withinJitter(run.StepTime, nominal) {
		o.report(now, RuleCostModel,
			"block %d realized step time %s outside the jitter envelope of nominal %s (noise=%.4f)",
			run.ID, run.StepTime, nominal, o.noise)
	}

	o.busy = o.busy.Union(g)
	o.inflight[run.ID] = run
}

// withinJitter bounds the realized step time by what costmodel.Jitter can
// produce: exact when noise is zero, otherwise at least half the nominal
// (the hard clamp) and at most nominal x (1 + 16 sigma) — sixteen standard
// deviations, unreachable by an honest draw.
func (o *Oracle) withinJitter(realized, nominal time.Duration) bool {
	if o.noise <= 0 {
		return realized == nominal
	}
	lo := nominal/2 - time.Nanosecond
	hi := time.Duration(float64(nominal)*(1+16*o.noise)) + time.Nanosecond
	return realized >= lo && realized <= hi
}

func (o *Oracle) onRunFinished(now time.Duration, run *engine.Run) {
	if _, ok := o.inflight[run.ID]; !ok {
		o.report(now, RuleConservation, "block %d finished but was never started", run.ID)
		return
	}
	if now < run.End {
		o.report(now, RuleCostModel, "block %d finished at %s before its projected end %s", run.ID, now, run.End)
	}
	delete(o.inflight, run.ID)
	o.busy = o.busy.Without(run.Asg.Group)
	for id, n := range run.Steps {
		rec, ok := o.reqs[id]
		if !ok {
			continue // already reported at start
		}
		rec.running = false
		rec.remaining -= n
		if rec.remaining < 0 {
			o.report(now, RuleConservation, "request %d overshot its step budget by %d", id, -rec.remaining)
		}
		o.creditQuality(now, id, rec, n, run.Asg.CacheInterval)
		o.latents[id] = run.Asg.Group
	}
}

// creditQuality charges a (possibly partial) cache-assisted block's
// approximated steps to the oracle's quality ledger — the same ApproxSteps
// prefix convention the control loop credits with — and trips RuleQuality if
// the request ever exceeds its budget.
func (o *Oracle) creditQuality(now time.Duration, id workload.RequestID, rec *reqState, steps, interval int) {
	apx := sched.ApproxSteps(steps, interval)
	if apx == 0 {
		return
	}
	rec.qualityUsed += apx
	if rec.qualityUsed > rec.qualityBudget {
		o.report(now, RuleQuality, "request %d approximated %d steps, exceeding its quality budget %d",
			id, rec.qualityUsed, rec.qualityBudget)
	}
}

func (o *Oracle) onRunAborted(now time.Duration, run *engine.Run, stepsDone map[workload.RequestID]int) {
	if _, ok := o.inflight[run.ID]; !ok {
		o.report(now, RuleConservation, "block %d aborted but was never started", run.ID)
		return
	}
	if !run.Asg.Group.Overlaps(o.failed) {
		o.report(now, RuleConservation, "block %d aborted without touching a failed GPU (group=%v failed=%v)",
			run.ID, run.Asg.Group, o.failed)
	}
	delete(o.inflight, run.ID)
	o.busy = o.busy.Without(run.Asg.Group)
	for id, n := range run.Steps {
		rec, ok := o.reqs[id]
		if !ok {
			continue
		}
		rec.running = false
		done := stepsDone[id]
		if done < 0 || done > n {
			o.report(now, RuleConservation, "request %d credited %d steps of a %d-step block", id, done, n)
		}
		rec.remaining -= done
		if rec.remaining < 0 {
			o.report(now, RuleConservation, "request %d overshot its step budget by %d", id, -rec.remaining)
		}
		o.creditQuality(now, id, rec, done, run.Asg.CacheInterval)
		// Mirror the engine's latent rule: the shard survives on the group's
		// live members, and the entry is kept so the next placement is a paid
		// reconfiguration.
		if _, exists := o.latents[id]; exists || done > 0 {
			o.latents[id] = run.Asg.Group.Without(o.failed)
		}
	}
}

// onResized re-derives the capacity ledger across a planned capacity change.
// It fires before the RunPreempted stream for the same resize, so busy GPUs
// in the removed set are legal here — each such block must then be preempted
// before the next plan, or the free-mask re-derivation in onPlanned trips.
func (o *Oracle) onResized(now time.Duration, removed, added simgpu.Mask) {
	o.resizes++
	if removed == 0 && added == 0 {
		o.report(now, RuleConservation, "no-op resize observed (hook contract: effective changes only)")
	}
	if removed.Overlaps(added) {
		o.report(now, RuleConservation, "resize removes and adds GPUs %v at once", removed&added)
	}
	if removed.Without(o.capacity) != 0 {
		o.report(now, RuleConservation, "resize removed GPUs %v the shard never owned (capacity=%v)",
			removed.Without(o.capacity), o.capacity)
	}
	if added.Overlaps(o.capacity) {
		o.report(now, RuleConservation, "resize added GPUs %v the shard already owns", added&o.capacity)
	}
	o.capacity = o.capacity.Without(removed).Union(added)
	// Parked latents lose their departed shards (members of about-to-be-
	// preempted blocks are overwritten again by onRunPreempted, matching the
	// engine's sweep).
	for id, m := range o.latents {
		if m.Overlaps(removed) {
			o.latents[id] = m.Without(removed)
		}
	}
}

// onRunPreempted mirrors onRunAborted for planned resizes: the block must
// actually have lost GPUs to the resize (its group no longer fits the owned
// capacity), steps are credited, and the latent survives on the retained,
// healthy members — no work may be lost on a cooperative handoff.
func (o *Oracle) onRunPreempted(now time.Duration, run *engine.Run, stepsDone map[workload.RequestID]int) {
	if _, ok := o.inflight[run.ID]; !ok {
		o.report(now, RuleConservation, "block %d preempted but was never started", run.ID)
		return
	}
	if run.Asg.Group.Without(o.capacity) == 0 {
		o.report(now, RuleConservation, "block %d preempted without losing a GPU (group=%v capacity=%v)",
			run.ID, run.Asg.Group, o.capacity)
	}
	delete(o.inflight, run.ID)
	o.busy = o.busy.Without(run.Asg.Group)
	o.preempted++
	for id, n := range run.Steps {
		rec, ok := o.reqs[id]
		if !ok {
			continue
		}
		rec.running = false
		done := stepsDone[id]
		if done < 0 || done > n {
			o.report(now, RuleConservation, "request %d credited %d steps of a %d-step block", id, done, n)
		}
		rec.remaining -= done
		if rec.remaining < 0 {
			o.report(now, RuleConservation, "request %d overshot its step budget by %d", id, -rec.remaining)
		}
		o.creditQuality(now, id, rec, done, run.Asg.CacheInterval)
		// Engine latent rule for resizes: survive on the group's retained
		// (still-owned), healthy members; entry kept so the next placement is
		// a paid reconfiguration.
		if _, exists := o.latents[id]; exists || done > 0 {
			o.latents[id] = (run.Asg.Group & o.capacity).Without(o.failed)
		}
	}
}

func (o *Oracle) onGPUFailed(now time.Duration, mask simgpu.Mask) {
	if mask.Overlaps(o.failed) {
		o.report(now, RuleConservation, "GPUs %v reported failed twice", mask&o.failed)
	}
	o.failed = o.failed.Union(mask)
	// Parked latents lose their dead shards (members of soon-to-be-aborted
	// blocks are overwritten again by onRunAborted, matching the engine).
	for id, m := range o.latents {
		if m.Overlaps(mask) {
			o.latents[id] = m.Without(mask)
		}
	}
}

func (o *Oracle) onGPURecovered(now time.Duration, mask simgpu.Mask) {
	if mask.Without(o.failed) != 0 {
		o.report(now, RuleConservation, "GPUs %v recovered without having failed", mask.Without(o.failed))
	}
	o.failed = o.failed.Without(mask)
}

func (o *Oracle) onFinished(now time.Duration, out control.Outcome) {
	rec, ok := o.reqs[out.ID]
	if !ok {
		o.report(now, RuleConservation, "request %d finished but is not in the ledger", out.ID)
		return
	}
	if rec.remaining != 0 {
		o.report(now, RuleConservation, "request %d finished with %d steps outstanding", out.ID, rec.remaining)
	}
	if out.Completion < rec.arrival {
		o.report(now, RuleOutcome, "request %d completed at %s before its arrival %s", out.ID, out.Completion, rec.arrival)
	}
	if out.Met != (out.Completion <= out.Deadline) {
		o.report(now, RuleOutcome, "request %d SLO verdict %v contradicts completion %s vs deadline %s",
			out.ID, out.Met, out.Completion, out.Deadline)
	}
	if out.Approximated != rec.qualityUsed {
		o.report(now, RuleQuality, "request %d retired with %d approximated steps but the ledger credited %d",
			out.ID, out.Approximated, rec.qualityUsed)
	}
	o.retire(out.ID)
}

func (o *Oracle) onDropped(now time.Duration, out control.Outcome) {
	rec, ok := o.reqs[out.ID]
	if !ok {
		o.report(now, RuleConservation, "request %d dropped but is not in the ledger", out.ID)
		return
	}
	if !out.Dropped {
		o.report(now, RuleOutcome, "request %d retired through the drop path without Dropped set", out.ID)
	}
	if out.Approximated != rec.qualityUsed {
		o.report(now, RuleQuality, "request %d dropped with %d approximated steps but the ledger credited %d",
			out.ID, out.Approximated, rec.qualityUsed)
	}
	o.retire(out.ID)
}

func (o *Oracle) retire(id workload.RequestID) {
	delete(o.reqs, id)
	delete(o.latents, id)
	o.finalized++
}

// VerifyResult runs the end-of-run audits that only make sense once the
// loop has drained: every admitted request finalized exactly once, all GPUs
// idle again, and the engine's remap counter equal to the migrations the
// oracle observed (placement preservation is "preserved unless explicitly
// migrated" — no silent moves, no phantom charges). It returns an error
// summarizing all violations, including any recorded earlier.
func (o *Oracle) VerifyResult(res *control.Result) error {
	at := res.Makespan
	if o.busy != 0 {
		o.report(at, RuleConservation, "run drained with GPUs %v still marked busy", o.busy)
	}
	if len(o.inflight) != 0 {
		o.report(at, RuleConservation, "run drained with %d blocks still in flight", len(o.inflight))
	}
	if len(o.reqs) != 0 {
		o.report(at, RuleConservation, "%d admitted requests were never finalized", len(o.reqs))
	}
	if o.finalized != o.admitted {
		o.report(at, RuleConservation, "admitted %d requests but finalized %d", o.admitted, o.finalized)
	}
	if len(res.Outcomes) != o.finalized {
		o.report(at, RuleConservation, "result holds %d outcomes for %d finalizations", len(res.Outcomes), o.finalized)
	}
	if res.Remaps != o.migrations {
		o.report(at, RulePlacement, "engine charged %d remaps but the oracle observed %d migrations",
			res.Remaps, o.migrations)
	}
	if res.RunsPreempted != o.preempted {
		o.report(at, RuleConservation, "engine counted %d preemptions but the oracle observed %d",
			res.RunsPreempted, o.preempted)
	}
	if res.Resizes != o.resizes {
		o.report(at, RuleConservation, "engine counted %d resizes but the oracle observed %d",
			res.Resizes, o.resizes)
	}
	return o.Err()
}

// Err returns an error summarizing every recorded violation, or nil.
func (o *Oracle) Err() error {
	vs := o.Violations()
	if len(vs) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d invariant violation(s):", len(vs))
	for i, v := range vs {
		if i == 8 {
			fmt.Fprintf(&sb, "\n  ... and %d more", len(vs)-i)
			break
		}
		sb.WriteString("\n  " + v.Error())
	}
	return fmt.Errorf("%s", sb.String())
}
