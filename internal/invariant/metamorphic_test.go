package invariant_test

import (
	"reflect"
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/model"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// metamorphicConfig builds one plane of the cache-knob metamorphic triple:
// the same trace, profile, topology, and faults every time, varying only the
// scheduler's MaxCacheInterval and whether requests carry quality budgets.
func metamorphicConfig(seed uint64, maxInterval int, budgets bool) sim.Config {
	prof, topo := fuzzProfile(8)
	mdl := model.FLUX()

	cfg := core.DefaultConfig()
	cfg.WallClock = frozenWall
	if maxInterval > 0 {
		cfg.MaxCacheInterval = maxInterval
	}

	reqs := workload.Generate(workload.GeneratorConfig{
		Model:       mdl,
		Mix:         workload.UniformMix(),
		Arrivals:    workload.PoissonArrivals{PerMinute: 30},
		NumRequests: 16,
		SLO:         workload.NewSLOPolicy(1.2),
		Seed:        seed,
	})
	if budgets {
		for i, r := range reqs {
			r.QualityBudget = (3 + i*5) % (r.Steps/2 + 1)
		}
	}

	return sim.Config{
		Model:     mdl,
		Topo:      topo,
		Scheduler: core.NewScheduler(prof, topo, cfg),
		Requests:  reqs,
		Profile:   prof,
		Faults: []simgpu.Fault{
			{GPU: 2, FailAt: 8 * time.Second, RecoverAt: 20 * time.Second},
		},
		DropLateFactor:  4.0,
		CheckInvariants: true,
	}
}

// TestCacheKnobsOffBitIdentical is the metamorphic regression tier for the
// step-cache dimension: with the cache dimension disabled along either axis
// — interval capped at 1 (budgets present but unspendable) or budgets all
// zero (intervals allowed but unaffordable) — the planner, engine, and
// control loop must behave bit-identically to the pre-cache baseline.
// Every cache code path is gated on MaxCacheInterval > 1 AND a positive
// budget, so all three planes must agree outcome-for-outcome and
// run-for-run, and none may emit a cache-assisted block.
func TestCacheKnobsOffBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		baseline, err := sim.Run(metamorphicConfig(seed, 0, false))
		if err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}
		planes := []struct {
			name        string
			maxInterval int
			budgets     bool
		}{
			{"interval-1 with budgets", 1, true},
			{"interval-4 with zero budgets", 4, false},
		}
		for _, pl := range planes {
			got, err := sim.Run(metamorphicConfig(seed, pl.maxInterval, pl.budgets))
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, pl.name, err)
			}
			if !reflect.DeepEqual(got.Outcomes, baseline.Outcomes) {
				t.Fatalf("seed %d %s: outcomes diverge from cache-oblivious baseline", seed, pl.name)
			}
			if !reflect.DeepEqual(got.Runs, baseline.Runs) {
				t.Fatalf("seed %d %s: run records diverge from cache-oblivious baseline", seed, pl.name)
			}
			if got.GPUBusySeconds != baseline.GPUBusySeconds {
				t.Fatalf("seed %d %s: GPU busy %v != baseline %v",
					seed, pl.name, got.GPUBusySeconds, baseline.GPUBusySeconds)
			}
		}
		for _, r := range baseline.Runs {
			if r.CacheInterval > 1 {
				t.Fatalf("seed %d: cache-assisted block in the cache-off baseline", seed)
			}
		}
		for _, o := range baseline.Outcomes {
			if o.Approximated != 0 {
				t.Fatalf("seed %d: request %d approximated %d steps with caching off", seed, o.ID, o.Approximated)
			}
		}
	}
}
