// Package invariant is the schedule-invariant oracle: an observer that
// validates every plan and every execution transition the control plane
// produces against the properties the paper argues for (§4–§5, Appendix B),
// independently of the scheduler under test.
//
// The oracle is double-entry bookkeeping. internal/engine already tracks
// free masks, latent placement, and remaining steps; the oracle re-derives
// all of that state from nothing but the control.Hooks transition stream and
// cross-checks the two ledgers at every step. A scheduler or engine bug that
// corrupts one ledger therefore surfaces as a divergence instead of skewing
// experiment numbers silently.
//
// Invariants checked (DESIGN.md §10 maps each to its paper section):
//
//   - capacity: every plan's groups are pairwise disjoint, within the node,
//     and sum to at most N GPUs; no device is double-booked across in-flight
//     blocks.
//   - legality: every group is a valid sequence-parallel group for the
//     topology (non-empty, power-of-two size, inside the node).
//   - idle-only dispatch: plans draw only from GPUs that are neither busy
//     nor failed — elastic scale-up and work-conserving admission included.
//   - membership: assignments reference only known, pending, not-yet-running
//     requests, each at most once, with positive step counts that do not
//     exceed a lone request's remaining steps.
//   - SLO-safe batching: a continuous-batching merge never violates any
//     member's survival test at the next round boundary (§5).
//   - cost-model consistency: a block's projected finish time equals
//     start + overhead + steps x realized step time, and the realized step
//     time stays within the jitter envelope of the profiled nominal (§5).
//   - placement accounting: a request resumes on its previous GPU set unless
//     the planner explicitly migrated it; every migration is paid for —
//     observed migrations must equal the engine's remap counter exactly.
//   - conservation: admitted requests are finalized exactly once, remaining
//     step counts never go negative, and all GPUs drain back to idle.
package invariant

import (
	"fmt"
	"time"

	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// Violation is one observed breach of a scheduling invariant.
type Violation struct {
	// At is the control-plane time of the offending transition.
	At time.Duration
	// Rule names the invariant ("capacity", "batch-survival", ...).
	Rule string
	// Detail is a human-readable description with the offending values.
	Detail string
}

// Error renders the violation as an error string.
func (v Violation) Error() string {
	return fmt.Sprintf("invariant[%s] at %s: %s", v.Rule, v.At, v.Detail)
}

// Rule names, exported so tests can assert which invariant tripped.
const (
	RuleCapacity     = "capacity"   // free-mask discipline, disjointness, N bound
	RuleLegality     = "legality"   // topology-legal groups
	RuleMembership   = "membership" // request membership and step counts
	RuleBatch        = "batch"      // resolution-homogeneous batches
	RuleSurvival     = "batch-survival"
	RuleCostModel    = "cost-model"   // projected finish vs profile
	RulePlacement    = "placement"    // migration accounting
	RuleConservation = "conservation" // request/GPU bookkeeping drains
	RuleOutcome      = "outcome"      // outcome self-consistency
	RuleQuality      = "quality"      // step-cache budget and protection zone
)

// CheckPlan validates one plan against the snapshot it was produced from:
// GPU capacity and free-mask discipline, group legality, membership, batch
// homogeneity, and — for round-based schedulers (tau > 0) — the §5 batching
// survival test for every member of every merged block. It subsumes
// sched.ValidatePlan and returns every violation found (nil when clean), so
// fuzz harnesses can report all breaches of a generated plan at once.
func CheckPlan(ctx *sched.PlanContext, plan []sched.Assignment, tau time.Duration) []Violation {
	var vs []Violation
	add := func(rule, format string, args ...any) {
		vs = append(vs, Violation{At: ctx.Now, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	pending := make(map[workload.RequestID]*sched.RequestState, len(ctx.Pending))
	for _, st := range ctx.Pending {
		pending[st.Req.ID] = st
	}
	if ctx.Free&^ctx.Topo.AllMask() != 0 {
		add(RuleCapacity, "free mask %v exceeds the %d-GPU node", ctx.Free, ctx.Topo.N)
	}

	used := simgpu.Mask(0)
	claimed := make(map[workload.RequestID]int)
	tNext := ctx.Now + tau
	for i := range plan {
		a := &plan[i]
		if err := a.Validate(ctx.Topo); err != nil {
			add(RuleLegality, "assignment %d: %v", i, err)
			continue
		}
		if a.Group&^ctx.Free != 0 {
			add(RuleCapacity, "assignment %d group %v uses non-idle GPUs %v (free=%v)",
				i, a.Group, a.Group.Without(ctx.Free), ctx.Free)
		}
		if used.Overlaps(a.Group) {
			add(RuleCapacity, "assignment %d group %v double-books GPUs %v already granted this plan",
				i, a.Group, a.Group&used)
		}
		used |= a.Group

		// Step-cache legality (§4.2 cache dimension): cache-assisted blocks
		// serve one request (approximated steps cannot be shared across batch
		// members), stay within the request's quality budget under the same
		// ApproxSteps accounting the control loop credits with, and never
		// touch the protected first/last CacheProtectedSteps steps.
		if a.CacheInterval > 1 {
			if len(a.Requests) != 1 {
				add(RuleQuality, "assignment %d caches at interval %d with %d batched requests",
					i, a.CacheInterval, len(a.Requests))
			} else if st, ok := pending[a.Requests[0]]; ok {
				apx := sched.ApproxSteps(a.Steps, a.CacheInterval)
				if st.QualityUsed+apx > st.Req.QualityBudget {
					add(RuleQuality, "request %d cached block approximates %d steps with %d/%d budget used",
						a.Requests[0], apx, st.QualityUsed, st.Req.QualityBudget)
				}
				total := st.Req.Steps - st.Req.SkippedSteps
				done := total - st.Remaining
				if done < sched.CacheProtectedSteps || done+a.Steps > total-sched.CacheProtectedSteps {
					add(RuleQuality, "request %d cached block [%d,%d) enters the protected zone (total %d, protect %d)",
						a.Requests[0], done, done+a.Steps, total, sched.CacheProtectedSteps)
				}
			}
		}

		var first *sched.RequestState
		for _, id := range a.Requests {
			st, ok := pending[id]
			if !ok {
				add(RuleMembership, "assignment %d references unknown or running request %d", i, id)
				continue
			}
			if prev, dup := claimed[id]; dup {
				add(RuleMembership, "request %d claimed by assignments %d and %d", id, prev, i)
			}
			claimed[id] = i
			if len(a.Requests) == 1 && a.Steps > st.Remaining {
				add(RuleMembership, "request %d assigned %d steps with only %d remaining", id, a.Steps, st.Remaining)
			}
			if first == nil {
				first = st
			} else if first.Req.Res != st.Req.Res {
				add(RuleBatch, "assignment %d batches resolutions %v and %v", i, first.Req.Res, st.Req.Res)
			}
			// SLO-safe continuous batching (§5): joining a batch must keep
			// every member not-definitely-late at the next round boundary.
			// Best-effort blocks carry already-late requests and are exempt;
			// event-driven schedulers (tau == 0) never batch through this
			// mechanism, so the test is skipped for them.
			if len(a.Requests) > 1 && !a.BestEffort && tau > 0 {
				steps := a.Steps
				if steps > st.Remaining {
					steps = st.Remaining
				}
				after := st.Remaining - steps
				tmin, _ := ctx.Profile.MinStepTime(st.Req.Res)
				if tNext+time.Duration(after)*tmin > st.Deadline() {
					add(RuleSurvival,
						"request %d joins a %d-wide batch but misses survival: next round %s + %d steps x %s > deadline %s",
						id, len(a.Requests), tNext, after, tmin, st.Deadline())
				}
			}
		}
	}
	if used.Count() > ctx.Topo.N {
		add(RuleCapacity, "plan grants %d GPUs on a %d-GPU node", used.Count(), ctx.Topo.N)
	}
	return vs
}
