// Package core implements the paper's contribution: TetriServe's
// deadline-aware round-based scheduler (§4).
//
// Every round of duration τ the scheduler:
//
//  1. splits pending requests into active ones and definitely-late ones
//     (the latter go to a ≤1-GPU best-effort lane, §4.2.2);
//  2. computes, per active request, the minimal-GPU-hour mix of
//     sequence-parallel degrees that still meets its deadline (§4.2.1);
//  3. packs requests into the round with the group-knapsack dynamic
//     program of Algorithm 1, maximizing the number of requests that
//     survive (are not definitely late at the next round boundary);
//  4. maps the chosen degrees onto concrete GPU groups with placement
//     preservation, merges small same-resolution SP=1 selections through
//     selective continuous batching, and grants leftover GPUs via
//     work-conserving elastic scale-up (§4.2.3, §5).
package core

import (
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
)

// Config selects TetriServe's mechanisms; zero value = paper defaults via
// NewScheduler.
type Config struct {
	// StepGranularity is how many reference steps one round holds (§6.4,
	// Figure 15). The reference step is the fastest step of the most
	// expensive profiled resolution, so the largest requests advance at
	// least StepGranularity steps per round. Default 5.
	StepGranularity int
	// MaxRound caps τ so coarse granularities on slow hardware do not
	// starve short-SLO requests of admission. Default 1 s.
	MaxRound time.Duration
	// SchedOverhead is the control-plane cost charged at the start of each
	// round (DP + dispatch); it shrinks the usable round window and is what
	// makes 1-step granularity lose under load. Default 8 ms.
	SchedOverhead time.Duration
	// PlacementPreservation keeps requests on their previous GPU sets
	// across rounds (ablated in Table 5). Default on.
	PlacementPreservation bool
	// ElasticScaleUp grants idle GPUs to placed requests that benefit
	// (ablated in Table 5). Default on.
	ElasticScaleUp bool
	// SelectiveBatching merges small same-resolution SP=1 selections when
	// no member's deadline is compromised (§5). Default on.
	SelectiveBatching bool
	// MaxBatch bounds the continuous-batching width. Default 4.
	MaxBatch int
	// BestEffortLane runs already-late requests on leftover single GPUs
	// (§4.2.2). Default on.
	BestEffortLane bool
	// BestEffortGPUs caps the lane's total GPUs per round so lingering
	// late requests cannot starve on-time ones ("without impacting other
	// requests"). Elastic scale-up may still grow them when GPUs idle.
	// Default 2.
	BestEffortGPUs int
	// EagerAdmission additionally invokes the planner when a request
	// arrives and GPUs are idle, instead of waiting for the next round
	// boundary; rounds re-anchor to the new block. This is the
	// work-conserving counterpart of elastic scale-up for admission and
	// matters most for near-deadline large requests on an idle cluster.
	// Default on.
	EagerAdmission bool
	// QuantizationAwareMix makes the §4.2.1 allocator cost degrees by
	// their *effective* per-step time under round execution (window/q
	// instead of T(k)), steering the mix away from degrees whose steps
	// tile the round poorly. Default on; off reproduces a naive
	// profile-time allocator for the extensions ablation.
	QuantizationAwareMix bool
	// BatchTokenCap limits batching to resolutions at or below this token
	// count — batching only pays for requests that underutilize a GPU.
	// Default 1024 tokens (≤ 512×512).
	BatchTokenCap int
	// WarmStart enables the incremental planning layer: an exact-replay
	// cache keyed by a fingerprint of the pending/running sets (Layer A)
	// and a prefix-resumable DP that re-solves only the candidates that
	// changed since the previous round (Layer B). Both layers are
	// bit-identical to a cold solve — see DESIGN.md §12 — so the knob only
	// trades memory for control-plane latency. Default on.
	WarmStart bool
	// WarmStartMinReuse is the minimum number of matching prefix candidates
	// required before the DP resumes from a checkpoint; below it the solve
	// runs cold (a tiny reusable prefix is not worth the bookkeeping).
	// Default 0 (any reusable prefix is taken).
	WarmStartMinReuse int
	// DeadlineBucket, when positive, rounds each request's deadline budget
	// DOWN to a multiple of the bucket before the §4.2.1 mix solve. The
	// quantized budget is used both as the memo key and as the solve input,
	// so planning stays self-consistent and strictly conservative (a
	// request is never given more slack than it has) while near-identical
	// deadlines collapse onto one memo entry — the candidate-pruning lever
	// for 10k-deep queues. Default 0 (exact budgets, paper behavior).
	DeadlineBucket time.Duration
	// MaxCacheInterval caps the step-cache cadence the planner may assign:
	// at interval c, one step in c runs fully and the rest reuse cached
	// features at the profile's discounted cost. The planner spends a
	// request's quality budget (Request.QualityBudget) only to flip an
	// otherwise-infeasible deadline, never inside the first/last
	// sched.CacheProtectedSteps steps. Default 1 (caching off — planning is
	// bit-identical to the cache-oblivious scheduler).
	MaxCacheInterval int
	// Workers, when > 1, parallelizes candidate construction (the
	// per-request mix solves) and wide DP row updates across goroutines.
	// The merge order is fixed, so plans are bit-identical to the
	// sequential solve. Default 0 (sequential).
	Workers int
	// Seed feeds the random placement used when preservation is off.
	Seed uint64
	// WallClock supplies the time source for the plan-latency diagnostic
	// (Table 6). Defaults to time.Now; deterministic harnesses inject a
	// fake clock so a Plan call never reads the wall.
	WallClock func() time.Time
}

// DefaultConfig returns the paper's default mechanism set.
func DefaultConfig() Config {
	return Config{
		StepGranularity:       5,
		MaxRound:              time.Second,
		SchedOverhead:         8 * time.Millisecond,
		PlacementPreservation: true,
		ElasticScaleUp:        true,
		SelectiveBatching:     true,
		MaxBatch:              4,
		BestEffortLane:        true,
		BestEffortGPUs:        2,
		EagerAdmission:        true,
		QuantizationAwareMix:  true,
		BatchTokenCap:         1024,
		WarmStart:             true,
		MaxCacheInterval:      1,
		Seed:                  7,
	}
}

// MaxCacheIntervalCap bounds the cache cadence: beyond one full step in
// eight, approximation error compounds past what any quality budget should
// license (and the DP fingerprint packs the interval in 4 bits). Config
// values above the cap are clamped; flag parsers should reject them loudly.
const MaxCacheIntervalCap = 8

func (c *Config) normalize() {
	if c.StepGranularity <= 0 {
		c.StepGranularity = 5
	}
	if c.MaxRound <= 0 {
		c.MaxRound = time.Second
	}
	if c.SchedOverhead < 0 {
		c.SchedOverhead = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.BestEffortGPUs <= 0 {
		c.BestEffortGPUs = 2
	}
	if c.BatchTokenCap <= 0 {
		c.BatchTokenCap = 1024
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.WarmStartMinReuse < 0 {
		c.WarmStartMinReuse = 0
	}
	if c.MaxCacheInterval < 1 {
		c.MaxCacheInterval = 1
	}
	if c.MaxCacheInterval > MaxCacheIntervalCap {
		c.MaxCacheInterval = MaxCacheIntervalCap
	}
	if c.DeadlineBucket < 0 {
		c.DeadlineBucket = 0
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.WallClock == nil {
		c.WallClock = time.Now
	}
}

// Scheduler is TetriServe's round-based scheduler. It implements
// sched.Scheduler and is driven at fixed round boundaries.
//
// A Scheduler is NOT safe for concurrent use: Plan reuses per-round scratch
// buffers (see scratch.go), and the returned plan aliases them, remaining
// valid only until the next Plan call. Drive each Scheduler from a single
// goroutine — the simulator, the live server loop, and the parallel
// experiment harness (one scheduler per cell) all do.
type Scheduler struct {
	cfg  Config
	prof *costmodel.Profile
	topo *simgpu.Topology
	tau  time.Duration
	rng  *stats.RNG

	// scratch holds the zero-alloc hot-path buffers reused across rounds.
	scratch planScratch

	// Diagnostics exported for experiments.
	roundsPlanned     int
	placementFailures int
	lastPlanLatency   time.Duration

	// Warm-start diagnostics (see warmstart.go).
	warmHits    int
	warmRows    int
	coldRows    int
	prunedCands int
}

// WarmStats summarizes the incremental-planning layer's effectiveness.
type WarmStats struct {
	// ReplayHits counts Plan calls answered entirely from the Layer-A
	// exact-replay cache (no solve at all).
	ReplayHits int
	// ResumedRows counts DP candidate rows reused from a previous round's
	// checkpoint table (Layer B).
	ResumedRows int
	// ColdRows counts DP candidate rows computed from scratch.
	ColdRows int
	// PrunedCandidates counts option-less candidates excluded from the DP
	// (their contribution is a uniform value shift — see prune.go).
	PrunedCandidates int
}

// NewScheduler builds a TetriServe scheduler for the profiled cluster.
func NewScheduler(prof *costmodel.Profile, topo *simgpu.Topology, cfg Config) *Scheduler {
	cfg.normalize()
	s := &Scheduler{
		cfg:  cfg,
		prof: prof,
		topo: topo,
		rng:  stats.NewRNG(cfg.Seed),
	}
	s.tau = s.computeRound()
	return s
}

// computeRound derives τ: StepGranularity × the fastest per-step time of the
// most expensive profiled resolution, plus the control-plane overhead so the
// usable window holds exactly StepGranularity reference steps, capped at
// MaxRound. Rounds sized this way let every resolution complete an integral
// number of steps near the boundary, minimizing idle bubbles (§4.2.2 "Round
// Duration").
func (s *Scheduler) computeRound() time.Duration {
	var refRes model.Resolution
	refTokens := -1
	for _, res := range s.prof.Resolutions() {
		if t := res.Pixels(); t > refTokens {
			refTokens = t
			refRes = res
		}
	}
	ref, _ := s.prof.MinStepTime(refRes)
	tau := time.Duration(s.cfg.StepGranularity)*ref + s.cfg.SchedOverhead
	if tau > s.cfg.MaxRound {
		tau = s.cfg.MaxRound
	}
	if tau < ref+s.cfg.SchedOverhead {
		tau = ref + s.cfg.SchedOverhead
	}
	return tau
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "TetriServe" }

// RoundDuration implements sched.Scheduler: the fixed round length τ.
func (s *Scheduler) RoundDuration() time.Duration { return s.tau }

// Overhead reports the per-round control-plane budget; the simulator
// charges it as dispatch delay so blocks occupy τ end to end.
func (s *Scheduler) Overhead() time.Duration { return s.cfg.SchedOverhead }

// EagerAdmission reports whether the driver should also invoke Plan on
// request arrival (in addition to round boundaries).
func (s *Scheduler) EagerAdmission() bool { return s.cfg.EagerAdmission }

// MaxCacheInterval reports the configured step-cache cap (1 = caching off).
// The control loop's feasibility probe asserts for this method to project
// cache-assisted service times without depending on the concrete type.
func (s *Scheduler) MaxCacheInterval() int { return s.cfg.MaxCacheInterval }

// Rounds returns how many rounds have been planned (diagnostics).
func (s *Scheduler) Rounds() int { return s.roundsPlanned }

// PlacementFailures counts DP selections that could not be mapped onto
// aligned free groups (diagnostics; should stay near zero).
func (s *Scheduler) PlacementFailures() int { return s.placementFailures }

// LastPlanLatency reports wall-clock time of the most recent Plan call —
// the control-plane latency Table 6 compares against exhaustive search.
func (s *Scheduler) LastPlanLatency() time.Duration { return s.lastPlanLatency }

// Warm returns the incremental-planning diagnostics.
func (s *Scheduler) Warm() WarmStats {
	return WarmStats{
		ReplayHits:       s.warmHits,
		ResumedRows:      s.warmRows,
		ColdRows:         s.coldRows,
		PrunedCandidates: s.prunedCands,
	}
}

// window returns the usable execution window within a round.
func (s *Scheduler) window() time.Duration { return s.tau - s.cfg.SchedOverhead }

// Plan implements sched.Scheduler for one round (Algorithm 1 plus the
// §4.2.3 placement/elastic extensions). The returned plan (including its
// Requests slices) aliases the scheduler's reusable scratch and is valid
// only until the next Plan call; callers that retain assignments across
// rounds must copy them (the engine does).
func (s *Scheduler) Plan(ctx *sched.PlanContext) []sched.Assignment {
	started := s.cfg.WallClock()
	defer func() {
		s.lastPlanLatency = s.cfg.WallClock().Sub(started)
		s.roundsPlanned++
	}()

	// Layer A: if the planning inputs are bit-identical to the previous
	// round's, the previous plan is still the answer — return it without
	// touching any scratch (the cached plan aliases it).
	if plan, ok := s.tryReplay(ctx); ok {
		return plan
	}

	tNext := ctx.Now + s.tau
	s.beginPlan(ctx.Profile)
	sc := &s.scratch

	// Partition pending requests into active and definitely-late.
	for _, st := range ctx.Pending {
		if s.definitelyLate(ctx.Profile, st, ctx.Now) {
			sc.late = append(sc.late, st)
		} else {
			sc.active = append(sc.active, st)
		}
	}

	// Stage 1: deadline-aware minimal-GPU-hour allocation per request.
	// All plan-time lookups go through ctx.Profile so a live server may
	// extend the table (on-demand profiling) without rebuilding schedulers.
	// Candidates live in the scratch arena; the arena is sized up front so
	// the pointers taken here stay valid.
	if s.cfg.Workers > 1 && len(sc.active) >= parallelMinActive {
		s.buildCandidatesParallel(ctx.Profile, ctx.Now, tNext)
	} else {
		arena := sc.grabCandidates(len(sc.active))
		for i, st := range sc.active {
			c := &arena[i]
			if s.buildCandidate(ctx.Profile, ctx.Now, tNext, st, c) {
				sc.cands = append(sc.cands, c)
			}
		}
	}

	// Stage 2: group-knapsack DP over the free capacity, after excluding
	// candidates that cannot affect the packing (prune.go).
	capGPUs := ctx.Free.Count()
	chosen := s.packDP(s.pruneCandidates(sc.cands), capGPUs)

	// Stage 3: placement, batching, elastic scale-up, best-effort lane.
	failBefore := s.placementFailures
	plan := s.assemble(ctx, chosen, sc.cands, sc.late)

	// Record the fingerprint + plan for the Layer-A replay cache.
	s.snapshotReplay(ctx, plan, s.placementFailures-failBefore)
	return plan
}

var _ sched.Scheduler = (*Scheduler)(nil)
