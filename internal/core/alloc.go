package core

import (
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
)

// option is one DP choice for a request this round: run q steps at the
// given degree, or (represented separately) run nothing.
type option struct {
	// degree is the sequence-parallel degree A_i^m (also the knapsack
	// width w_i).
	degree int
	// planSteps is s_i^m — how many of the request's remaining steps the
	// minimal-GPU-hour plan assigns to this degree.
	planSteps int
	// stepTime is the profiled T_i(A_i^m).
	stepTime time.Duration
	// q is how many steps fit in this round's window (q_i^m, clipped).
	q int
	// survive is sv_i(m): not definitely late at the next round start if
	// this option runs.
	survive bool
	// cacheInterval > 1 marks a step-cache-assisted option: stepTime and q
	// are computed at the discounted T(res, k, cacheInterval) and running it
	// spends sched.ApproxSteps(q, cacheInterval) of the request's quality
	// budget. 0 for plain options.
	cacheInterval int
}

// candidate is a request together with its per-round options. Candidates
// live in the scheduler's scratch arena and are recycled every round.
type candidate struct {
	st *sched.RequestState
	// options holds runnable options (q > 0), lowest degree first —
	// matching Figure 6's shape of spending cheap degrees early. It aliases
	// optbuf (a minimal-GPU-hour mix has at most two degrees, each of which
	// may add one cache-assisted variant), so building options allocates
	// nothing.
	options []option
	optbuf  [4]option
	// surviveNone is sv_i(none).
	surviveNone bool
	// tmin is the fastest profiled step time for the resolution.
	tmin time.Duration
	// selected marks candidates the DP chose and placement mapped, so the
	// work-conserving admission pass can skip them without a lookup table.
	selected bool
}

// buildCandidate runs the §4.2.1 deadline-aware GPU allocation for one
// request into the supplied scratch slot: find the minimal-GPU-hour mix of
// degrees meeting the deadline, then derive this round's options from the
// mix. Returns false when the request has no remaining steps.
func (s *Scheduler) buildCandidate(prof *costmodel.Profile, now, tNext time.Duration, st *sched.RequestState, c *candidate) bool {
	if st.Remaining <= 0 {
		return false
	}
	s.ensureMemo(prof) // no-op (and write-free) when the profile is unchanged
	res := st.Req.Res
	budget := st.Deadline() - now
	tmin := s.minStep(prof, res)

	mix := s.minGPUHourMix(prof, res, st.Remaining, budget)
	*c = candidate{st: st, tmin: tmin}
	c.options = c.optbuf[:0]
	c.surviveNone = tNext+time.Duration(st.Remaining)*tmin <= st.Deadline()

	window := s.window()
	for _, entry := range mix {
		q := int(window / entry.stepTime)
		if q <= 0 {
			continue // Algorithm 1 line 6 discards zero-progress options.
		}
		if q > entry.planSteps {
			q = entry.planSteps
		}
		remainingAfter := st.Remaining - q
		survive := tNext+time.Duration(remainingAfter)*tmin <= st.Deadline()
		c.options = append(c.options, option{
			degree:    entry.degree,
			planSteps: entry.planSteps,
			stepTime:  entry.stepTime,
			q:         q,
			survive:   survive,
		})
	}
	s.addCachedOptions(prof, tNext, st, c)
	return true
}

// addCachedOptions extends a candidate with the step-cache dimension when NO
// base option survives at plain tmin — the deadline is infeasible at
// interval 1 at every degree. Two regimes, both gated on MaxCacheInterval > 1
// so default planning stays bit-identical:
//
//   - The request is still inside the protected prefix (fewer than
//     CacheProtectedSteps effective steps computed): no cached block may run
//     yet, but if the best cache-assisted tail after this round's plain block
//     still meets the deadline, the base options are marked surviving — the
//     DP keeps the request prioritized through the prefix instead of starving
//     it before a rescue becomes legal.
//   - The prefix is done: each base option gains a variant at the cheapest
//     cache interval (the least quality spent per step) whose post-block
//     best-case projection clears the deadline. Base options stay
//     non-surviving so the DP realizes the rescue (runs the cached block) —
//     deferring at the same survival value would spend rounds without
//     spending budget and convert nothing.
//
// Caching is strictly a rescue: a request with a surviving plain option never
// trades deadline headroom for GPU savings, since a cache-assisted
// "survivor" projected at best case has no slack against queueing.
func (s *Scheduler) addCachedOptions(prof *costmodel.Profile, tNext time.Duration, st *sched.RequestState, c *candidate) {
	maxC := s.cfg.MaxCacheInterval
	if maxC <= 1 {
		return
	}
	for oi := range c.options {
		if c.options[oi].survive {
			return
		}
	}
	budgetLeft := st.Req.QualityBudget - st.QualityUsed
	if budgetLeft <= 0 {
		return
	}
	total := st.Req.Steps - st.Req.SkippedSteps
	done := total - st.Remaining
	// The protection zone forbids approximating the first/last N effective
	// steps; maxQ is the largest cached block startable at `done`.
	maxQ := st.Remaining - sched.CacheProtectedSteps
	if done < sched.CacheProtectedSteps {
		for oi := range c.options {
			o := &c.options[oi]
			if s.cacheFeasibleAt(prof, st, tNext, st.Remaining-o.q, done+o.q, budgetLeft) {
				o.survive = true
			}
		}
		return
	}
	if maxQ <= 0 {
		return
	}
	window := s.window()
	base := len(c.options)
	for oi := 0; oi < base; oi++ {
		o := &c.options[oi]
		for ci := 2; ci <= maxC; ci++ {
			tc := time.Duration(float64(o.stepTime) * prof.CacheDiscount(ci))
			q := int(window / tc)
			if q > maxQ {
				q = maxQ
			}
			// Spend no more quality than the budget allows: shrink the block
			// until its approximated-step count fits.
			for q > 0 && sched.ApproxSteps(q, ci) > budgetLeft {
				q--
			}
			if q <= 0 {
				continue
			}
			if !s.cacheFeasibleAt(prof, st, tNext, st.Remaining-q, done+q,
				budgetLeft-sched.ApproxSteps(q, ci)) {
				continue
			}
			c.options = append(c.options, option{
				degree:        o.degree,
				planSteps:     o.planSteps,
				stepTime:      tc,
				q:             q,
				survive:       true,
				cacheInterval: ci,
			})
			break
		}
	}
}

// cacheFeasibleAt reports whether `remaining` steps, resuming at tStart with
// `done` effective steps already computed and budgetLeft quality to spend,
// can still meet st's deadline in the best cache-assisted case: every
// approximable step (outside the protected first/last CacheProtectedSteps,
// capped by the budget) runs at γ·tmin, the rest at plain tmin, with
// cacheRescueMargin of slack absorbing round quantization and jitter. This
// single projection backs the definitely-late relief, the protected-prefix
// survival flip, and the per-option rescue gate, so a request is kept alive
// for the cache dimension exactly when a rescue can still be realized.
func (s *Scheduler) cacheFeasibleAt(prof *costmodel.Profile, st *sched.RequestState, tStart time.Duration, remaining, done, budgetLeft int) bool {
	// a is the best-case approximated-step count ahead; 0 (no approximable
	// span or no budget left) degrades the projection to plain service —
	// still feasible when the remainder is small enough.
	a := 0
	if s.cfg.MaxCacheInterval > 1 && budgetLeft > 0 {
		total := st.Req.Steps - st.Req.SkippedSteps
		start := done
		if start < sched.CacheProtectedSteps {
			start = sched.CacheProtectedSteps
		}
		if span := total - sched.CacheProtectedSteps - start; span > 0 {
			a = sched.ApproxSteps(span, s.cfg.MaxCacheInterval)
			if a > budgetLeft {
				a = budgetLeft
			}
		}
	}
	tmin := s.minStep(prof, st.Req.Res)
	gamma := prof.CachedStepRelCost()
	minRemaining := time.Duration(remaining-a)*tmin + time.Duration(float64(a)*gamma*float64(tmin))
	return tStart+minRemaining+s.cacheRescueMargin() <= st.Deadline()
}

// cacheRescueMargin is the deadline slack a cache-assisted rescue must
// clear beyond its best-case projection: a quarter round, absorbing round
// quantization and step-time jitter so rescues are planned only when they
// are likely to convert, not when they would land on the deadline edge.
// The margin must stay below the full-budget discount benefit
// (budget·(1−γ)·tmin) or no rescue can ever fire: a request only enters the
// rescue path once plain service is already infeasible, so the discount has
// to cover both the shortfall and the margin.
func (s *Scheduler) cacheRescueMargin() time.Duration { return s.tau / 4 }

// mixEntry is one (degree, steps) element of an allocation plan.
type mixEntry struct {
	degree    int
	planSteps int
	stepTime  time.Duration
}

// mixBudget maps a raw deadline budget to the one the solver sees. With
// DeadlineBucket set it floors the budget to a bucket multiple — strictly
// conservative (never more slack than the request has) and shared between
// the memo key and the solve input so the two cannot disagree.
func (s *Scheduler) mixBudget(budget time.Duration) time.Duration {
	b := s.cfg.DeadlineBucket
	if b <= 0 {
		return budget
	}
	q := budget / b
	if budget < 0 && budget%b != 0 {
		q-- // floor, not truncate: negative budgets round away from zero
	}
	return q * b
}

// minGPUHourMix returns the §4.2.1 minimal-GPU-hour allocation, memoized per
// (resolution, remaining steps, budget) within the current plan. The memo is
// exact for the (possibly bucket-quantized) budget — see mixKey — so a hit
// returns the byte-identical plan the solver would recompute; callers must
// treat the returned slice as read-only.
func (s *Scheduler) minGPUHourMix(prof *costmodel.Profile, res model.Resolution, steps int, budget time.Duration) []mixEntry {
	s.ensureMemo(prof)
	sc := &s.scratch
	key := mixKey{res: res, steps: steps, budget: s.mixBudget(budget)}
	if mix, ok := sc.mixMemo[key]; ok {
		return mix
	}
	out, n := solveMix(key.steps, key.budget, s.degCfgs(prof, key.res))
	var mix []mixEntry
	if n == 1 {
		mix = sc.putMix1(out[0])
	} else {
		mix = sc.putMix2(out[0], out[1])
	}
	sc.mixMemo[key] = mix
	return mix
}

// buildDegCfgs computes the per-degree effective costs for one resolution —
// a pure function of (profile, resolution, window, quantization flag), all
// fixed within a memo epoch, so degCfgs caches its result per resolution.
func (s *Scheduler) buildDegCfgs(prof *costmodel.Profile, res model.Resolution) []degCfg {
	degrees := prof.Degrees()
	window := s.window()
	cfgs := make([]degCfg, 0, len(degrees))
	for _, k := range degrees {
		t := prof.StepTime(res, k)
		q := int(window / t)
		if q <= 0 {
			continue // degree cannot complete a step within a round
		}
		eff := t
		if s.cfg.QuantizationAwareMix {
			// Round quantization: q steps occupy the whole window, so the
			// *effective* per-step time (and GPU-hour cost) a degree pays
			// under round-based execution is window/q, not T(k). Planning
			// with effective times steers the mix away from degrees whose
			// steps tile the round poorly.
			eff = window / time.Duration(q)
		}
		cfgs = append(cfgs, degCfg{k: k, t: eff, g: float64(k) * eff.Seconds()})
	}
	if len(cfgs) == 0 {
		// Window shorter than every step time can only happen with a
		// pathological granularity; fall back to raw profile times.
		for _, k := range degrees {
			t := prof.StepTime(res, k)
			cfgs = append(cfgs, degCfg{k: k, t: t, g: float64(k) * t.Seconds()})
		}
	}
	return cfgs
}

// solveMix solves §4.2.1's per-request optimization over the profiled
// lookup table: split the remaining steps across at most two degrees so
// that total time fits the budget while total GPU-seconds are minimized.
// Two degrees suffice because GPU-seconds g(k)=k·T(k) and latency T(k) move
// in opposite directions along the profiled frontier, so the optimum is a
// split between two frontier points (the shape Figure 6 depicts). When even
// the fastest degree misses the budget, the fastest single-degree plan is
// returned so the request still makes best progress.
//
// The result is returned by value (≤ 2 entries plus a count) and cfgs is
// read-only, so the function is pure: parallel candidate construction
// (parallel.go) calls it from several goroutines against the shared cache.
func solveMix(steps int, budget time.Duration, cfgs []degCfg) ([2]mixEntry, int) {
	// The winning plan is tracked as indices into cfgs (single ≥ 0, or the
	// slow/fast pair with x steps at slow) and materialized once at the end,
	// so losing plans cost no allocation.
	bestCost := -1.0
	bestSingle, bestSlow, bestFast, bestX := -1, -1, -1, 0
	consider := func(cost float64, single, slow, fast, x int) {
		if bestCost < 0 || cost < bestCost-1e-12 {
			bestCost = cost
			bestSingle, bestSlow, bestFast, bestX = single, slow, fast, x
		}
	}

	// Single-degree plans.
	for i, c := range cfgs {
		if time.Duration(steps)*c.t <= budget {
			consider(float64(steps)*c.g, i, -1, -1, 0)
		}
	}
	// Two-degree plans: x steps at a slower/cheaper degree, the rest at a
	// faster one, with x maximized subject to the deadline.
	for si, slow := range cfgs {
		for fi, fast := range cfgs {
			if fast.t >= slow.t || slow.g >= fast.g {
				continue // need fast strictly faster and slow strictly cheaper
			}
			if time.Duration(steps)*fast.t > budget {
				continue // even all-fast misses; no feasible split
			}
			slack := budget - time.Duration(steps)*fast.t
			x := int(slack / (slow.t - fast.t))
			if x <= 0 {
				continue
			}
			if x >= steps {
				continue // degenerates to the all-slow single plan
			}
			consider(float64(x)*slow.g+float64(steps-x)*fast.g, -1, si, fi, x)
		}
	}

	switch {
	case bestSingle >= 0:
		c := cfgs[bestSingle]
		return [2]mixEntry{{degree: c.k, planSteps: steps, stepTime: c.t}}, 1
	case bestSlow >= 0:
		slow, fast := cfgs[bestSlow], cfgs[bestFast]
		mix := [2]mixEntry{
			{degree: slow.k, planSteps: bestX, stepTime: slow.t},
			{degree: fast.k, planSteps: steps - bestX, stepTime: fast.t},
		}
		// Lowest degree first: spend cheap parallelism early, scale up
		// closer to the deadline (Figure 6).
		if mix[0].degree > mix[1].degree {
			mix[0], mix[1] = mix[1], mix[0]
		}
		return mix, 2
	}

	// Infeasible even at maximum parallelism: run everything at the
	// latency-optimal degree (the caller's definitely-late filter normally
	// prevents reaching here, but mid-round drift can).
	fastest := 0
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].t < cfgs[fastest].t {
			fastest = i
		}
	}
	c := cfgs[fastest]
	return [2]mixEntry{{degree: c.k, planSteps: steps, stepTime: c.t}}, 1
}
