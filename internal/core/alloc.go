package core

import (
	"sort"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
)

// option is one DP choice for a request this round: run q steps at the
// given degree, or (represented separately) run nothing.
type option struct {
	// degree is the sequence-parallel degree A_i^m (also the knapsack
	// width w_i).
	degree int
	// planSteps is s_i^m — how many of the request's remaining steps the
	// minimal-GPU-hour plan assigns to this degree.
	planSteps int
	// stepTime is the profiled T_i(A_i^m).
	stepTime time.Duration
	// q is how many steps fit in this round's window (q_i^m, clipped).
	q int
	// survive is sv_i(m): not definitely late at the next round start if
	// this option runs.
	survive bool
}

// candidate is a request together with its per-round options.
type candidate struct {
	st *sched.RequestState
	// options holds runnable options (q > 0), lowest degree first —
	// matching Figure 6's shape of spending cheap degrees early.
	options []option
	// surviveNone is sv_i(none).
	surviveNone bool
	// tmin is the fastest profiled step time for the resolution.
	tmin time.Duration
}

// buildCandidate runs the §4.2.1 deadline-aware GPU allocation for one
// request: find the minimal-GPU-hour mix of degrees meeting the deadline,
// then derive this round's options from the mix. Returns nil when the
// request has no remaining steps.
func (s *Scheduler) buildCandidate(prof *costmodel.Profile, now, tNext time.Duration, st *sched.RequestState) *candidate {
	if st.Remaining <= 0 {
		return nil
	}
	res := st.Req.Res
	budget := st.Deadline() - now
	tmin, _ := prof.MinStepTime(res)

	mix := s.minGPUHourMix(prof, res, st.Remaining, budget)
	c := &candidate{st: st, tmin: tmin}
	c.surviveNone = tNext+time.Duration(st.Remaining)*tmin <= st.Deadline()

	window := s.window()
	for _, entry := range mix {
		q := int(window / entry.stepTime)
		if q <= 0 {
			continue // Algorithm 1 line 6 discards zero-progress options.
		}
		if q > entry.planSteps {
			q = entry.planSteps
		}
		remainingAfter := st.Remaining - q
		survive := tNext+time.Duration(remainingAfter)*tmin <= st.Deadline()
		c.options = append(c.options, option{
			degree:    entry.degree,
			planSteps: entry.planSteps,
			stepTime:  entry.stepTime,
			q:         q,
			survive:   survive,
		})
	}
	return c
}

// mixEntry is one (degree, steps) element of an allocation plan.
type mixEntry struct {
	degree    int
	planSteps int
	stepTime  time.Duration
}

// minGPUHourMix solves §4.2.1's per-request optimization over the profiled
// lookup table: split the remaining steps across at most two degrees so
// that total time fits the budget while total GPU-seconds are minimized.
// Two degrees suffice because GPU-seconds g(k)=k·T(k) and latency T(k) move
// in opposite directions along the profiled frontier, so the optimum is a
// split between two frontier points (the shape Figure 6 depicts). When even
// the fastest degree misses the budget, the fastest single-degree plan is
// returned so the request still makes best progress.
func (s *Scheduler) minGPUHourMix(prof *costmodel.Profile, res model.Resolution, steps int, budget time.Duration) []mixEntry {
	degrees := prof.Degrees()
	window := s.window()
	type cfg struct {
		k int
		t time.Duration
		g float64 // GPU-seconds per step
	}
	cfgs := make([]cfg, 0, len(degrees))
	for _, k := range degrees {
		t := prof.StepTime(res, k)
		q := int(window / t)
		if q <= 0 {
			continue // degree cannot complete a step within a round
		}
		eff := t
		if s.cfg.QuantizationAwareMix {
			// Round quantization: q steps occupy the whole window, so the
			// *effective* per-step time (and GPU-hour cost) a degree pays
			// under round-based execution is window/q, not T(k). Planning
			// with effective times steers the mix away from degrees whose
			// steps tile the round poorly.
			eff = window / time.Duration(q)
		}
		cfgs = append(cfgs, cfg{k: k, t: eff, g: float64(k) * eff.Seconds()})
	}
	if len(cfgs) == 0 {
		// Window shorter than every step time can only happen with a
		// pathological granularity; fall back to raw profile times.
		for _, k := range degrees {
			t := prof.StepTime(res, k)
			cfgs = append(cfgs, cfg{k: k, t: t, g: float64(k) * t.Seconds()})
		}
	}

	bestCost := -1.0
	var best []mixEntry
	consider := func(cost float64, mix []mixEntry) {
		if bestCost < 0 || cost < bestCost-1e-12 {
			bestCost = cost
			best = mix
		}
	}

	// Single-degree plans.
	for _, c := range cfgs {
		if time.Duration(steps)*c.t <= budget {
			consider(float64(steps)*c.g, []mixEntry{{degree: c.k, planSteps: steps, stepTime: c.t}})
		}
	}
	// Two-degree plans: x steps at a slower/cheaper degree, the rest at a
	// faster one, with x maximized subject to the deadline.
	for _, slow := range cfgs {
		for _, fast := range cfgs {
			if fast.t >= slow.t || slow.g >= fast.g {
				continue // need fast strictly faster and slow strictly cheaper
			}
			if time.Duration(steps)*fast.t > budget {
				continue // even all-fast misses; no feasible split
			}
			slack := budget - time.Duration(steps)*fast.t
			x := int(slack / (slow.t - fast.t))
			if x <= 0 {
				continue
			}
			if x >= steps {
				continue // degenerates to the all-slow single plan
			}
			cost := float64(x)*slow.g + float64(steps-x)*fast.g
			consider(cost, []mixEntry{
				{degree: slow.k, planSteps: x, stepTime: slow.t},
				{degree: fast.k, planSteps: steps - x, stepTime: fast.t},
			})
		}
	}

	if best != nil {
		// Lowest degree first: spend cheap parallelism early, scale up
		// closer to the deadline (Figure 6).
		sort.Slice(best, func(i, j int) bool { return best[i].degree < best[j].degree })
		return best
	}

	// Infeasible even at maximum parallelism: run everything at the
	// latency-optimal degree (the caller's definitely-late filter normally
	// prevents reaching here, but mid-round drift can).
	fastest := cfgs[0]
	for _, c := range cfgs[1:] {
		if c.t < fastest.t {
			fastest = c
		}
	}
	return []mixEntry{{degree: fastest.k, planSteps: steps, stepTime: fastest.t}}
}
