package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tetriserve/internal/sched"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

// This file pins Algorithm 1 against Appendix B on a class of instances
// where both provably solve the same problem, so equality is exact rather
// than tolerance-based.
//
// Construction: every request has one step, arrives at 0, and every step
// time and every deadline lies in [10ms, 20ms). A second dispatch wave can
// start no earlier than 10ms and finish no earlier than 20ms — past every
// deadline — so a request is met iff it starts at time 0 on a degree k with
// T(k) ≤ deadline, and all met requests overlap just before t=10ms, bounding
// their total width by N. Both solvers therefore face the identical
// max-cardinality knapsack: pick requests and feasible degrees with total
// width ≤ N. The DP's survivor count must equal the exhaustive optimum.

// knapsackReq is one request of a generated instance.
type knapsackReq struct {
	deadline time.Duration
	stepTime map[int]time.Duration // degree → step time, all in [10ms, 20ms)
}

type knapsackInstance struct {
	n       int
	degrees []int
	reqs    []knapsackReq
}

func (ki knapsackInstance) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "N=%d degrees=%v", ki.n, ki.degrees)
	for i, r := range ki.reqs {
		fmt.Fprintf(&sb, "\n  req%d deadline=%s stepTime=%v", i, r.deadline, r.stepTime)
	}
	return sb.String()
}

func randKnapsackInstance(rng *stats.RNG) knapsackInstance {
	n := 1 + rng.Intn(4) // N ≤ 4
	var degrees []int
	for k := 1; k <= n; k *= 2 {
		degrees = append(degrees, k)
	}
	r := 1 + rng.Intn(3) // R ≤ 3
	reqs := make([]knapsackReq, r)
	ms := func() time.Duration { return time.Duration(10+rng.Intn(10)) * time.Millisecond }
	for i := range reqs {
		st := make(map[int]time.Duration, len(degrees))
		for _, k := range degrees {
			st[k] = ms()
		}
		reqs[i] = knapsackReq{deadline: ms(), stepTime: st}
	}
	return knapsackInstance{n: n, degrees: degrees, reqs: reqs}
}

// exhaustiveMet runs the Appendix B solver on a frozen clock (deterministic,
// cannot time out) and returns the optimal met count.
func exhaustiveMet(ki knapsackInstance) int {
	reqs := make([]sched.ExhaustiveRequest, len(ki.reqs))
	for i, r := range ki.reqs {
		reqs[i] = sched.ExhaustiveRequest{
			Arrival:  0,
			Deadline: r.deadline,
			Steps:    1,
			StepTime: r.stepTime,
		}
	}
	inst := sched.ExhaustiveInstance{N: ki.n, Degrees: ki.degrees, Requests: reqs}
	frozen := func() time.Time { return time.Unix(0, 0) }
	return sched.SolveExhaustiveClock(inst, time.Nanosecond, frozen).Met
}

// dpMet builds the per-request options the way Algorithm 1 sees them — one
// option per feasible degree, each surviving — and returns how many requests
// the group-knapsack DP keeps alive.
func dpMet(ki knapsackInstance) int {
	s := &Scheduler{} // packDP only touches the scratch arena
	cands := make([]*candidate, len(ki.reqs))
	for i, r := range ki.reqs {
		c := &candidate{
			st: &sched.RequestState{
				Req:       &workload.Request{ID: workload.RequestID(i), Steps: 1, SLO: r.deadline},
				Remaining: 1,
			},
		}
		for _, k := range ki.degrees {
			if r.stepTime[k] <= r.deadline {
				c.options = append(c.options, option{
					degree:    k,
					planSteps: 1,
					stepTime:  r.stepTime[k],
					q:         1,
					survive:   true,
				})
			}
		}
		cands[i] = c
	}
	met := 0
	for _, sel := range s.packDP(cands, ki.n) {
		if sel.optIdx >= 0 && sel.cand.options[sel.optIdx].survive {
			met++
		}
	}
	return met
}

// shrink minimizes a counterexample: drop whole requests, then individual
// degrees, as long as the disagreement persists.
func shrink(ki knapsackInstance) knapsackInstance {
	disagrees := func(k knapsackInstance) bool {
		return len(k.reqs) > 0 && dpMet(k) != exhaustiveMet(k)
	}
	for changed := true; changed; {
		changed = false
		for i := range ki.reqs {
			cand := ki
			cand.reqs = append(append([]knapsackReq(nil), ki.reqs[:i]...), ki.reqs[i+1:]...)
			if disagrees(cand) {
				ki = cand
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		for i, r := range ki.reqs {
			for _, k := range ki.degrees {
				if _, ok := r.stepTime[k]; !ok {
					continue
				}
				cand := ki
				cand.reqs = append([]knapsackReq(nil), ki.reqs...)
				st := make(map[int]time.Duration, len(r.stepTime))
				for d, t := range r.stepTime {
					if d != k {
						st[d] = t
					}
				}
				cand.reqs[i] = knapsackReq{deadline: r.deadline, stepTime: st}
				if disagrees(cand) {
					ki = cand
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
	}
	return ki
}

// TestDPMatchesExhaustiveOptimum is the Appendix B property test: on 1200
// random small instances the group-knapsack DP's survival count equals the
// exhaustive solver's optimum exactly.
func TestDPMatchesExhaustiveOptimum(t *testing.T) {
	rng := stats.NewRNG(20260805)
	const instances = 1200
	for i := 0; i < instances; i++ {
		ki := randKnapsackInstance(rng)
		dp, ex := dpMet(ki), exhaustiveMet(ki)
		if dp != ex {
			min := shrink(ki)
			t.Fatalf("instance %d: DP met %d, exhaustive met %d\nshrunk counterexample (DP %d vs exhaustive %d):\n%s",
				i, dp, ex, dpMet(min), exhaustiveMet(min), min)
		}
	}
}
