package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/sched"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

// This file pins Algorithm 1 against Appendix B on a class of instances
// where both provably solve the same problem, so equality is exact rather
// than tolerance-based.
//
// Construction: every request has one step, arrives at 0, and every step
// time and every deadline lies in [10ms, 20ms). A second dispatch wave can
// start no earlier than 10ms and finish no earlier than 20ms — past every
// deadline — so a request is met iff it starts at time 0 on a degree k with
// T(k) ≤ deadline, and all met requests overlap just before t=10ms, bounding
// their total width by N. Both solvers therefore face the identical
// max-cardinality knapsack: pick requests and feasible degrees with total
// width ≤ N. The DP's survivor count must equal the exhaustive optimum.

// knapsackReq is one request of a generated instance.
type knapsackReq struct {
	deadline time.Duration
	stepTime map[int]time.Duration // degree → step time, all in [10ms, 20ms)
}

type knapsackInstance struct {
	n       int
	degrees []int
	reqs    []knapsackReq
}

func (ki knapsackInstance) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "N=%d degrees=%v", ki.n, ki.degrees)
	for i, r := range ki.reqs {
		fmt.Fprintf(&sb, "\n  req%d deadline=%s stepTime=%v", i, r.deadline, r.stepTime)
	}
	return sb.String()
}

func randKnapsackInstance(rng *stats.RNG) knapsackInstance {
	n := 1 + rng.Intn(4) // N ≤ 4
	var degrees []int
	for k := 1; k <= n; k *= 2 {
		degrees = append(degrees, k)
	}
	r := 1 + rng.Intn(3) // R ≤ 3
	reqs := make([]knapsackReq, r)
	ms := func() time.Duration { return time.Duration(10+rng.Intn(10)) * time.Millisecond }
	for i := range reqs {
		st := make(map[int]time.Duration, len(degrees))
		for _, k := range degrees {
			st[k] = ms()
		}
		reqs[i] = knapsackReq{deadline: ms(), stepTime: st}
	}
	return knapsackInstance{n: n, degrees: degrees, reqs: reqs}
}

// exhaustiveMet runs the Appendix B solver on a frozen clock (deterministic,
// cannot time out) and returns the optimal met count.
func exhaustiveMet(ki knapsackInstance) int {
	reqs := make([]sched.ExhaustiveRequest, len(ki.reqs))
	for i, r := range ki.reqs {
		reqs[i] = sched.ExhaustiveRequest{
			Arrival:  0,
			Deadline: r.deadline,
			Steps:    1,
			StepTime: r.stepTime,
		}
	}
	inst := sched.ExhaustiveInstance{N: ki.n, Degrees: ki.degrees, Requests: reqs}
	frozen := func() time.Time { return time.Unix(0, 0) }
	return sched.SolveExhaustiveClock(inst, time.Nanosecond, frozen).Met
}

// dpMet builds the per-request options the way Algorithm 1 sees them — one
// option per feasible degree, each surviving — and returns how many requests
// the group-knapsack DP keeps alive.
func dpMet(ki knapsackInstance) int {
	s := &Scheduler{} // packDP only touches the scratch arena
	cands := make([]*candidate, len(ki.reqs))
	for i, r := range ki.reqs {
		c := &candidate{
			st: &sched.RequestState{
				Req:       &workload.Request{ID: workload.RequestID(i), Steps: 1, SLO: r.deadline},
				Remaining: 1,
			},
		}
		for _, k := range ki.degrees {
			if r.stepTime[k] <= r.deadline {
				c.options = append(c.options, option{
					degree:    k,
					planSteps: 1,
					stepTime:  r.stepTime[k],
					q:         1,
					survive:   true,
				})
			}
		}
		cands[i] = c
	}
	met := 0
	for _, sel := range s.packDP(cands, ki.n) {
		if sel.optIdx >= 0 && sel.cand.options[sel.optIdx].survive {
			met++
		}
	}
	return met
}

// shrink minimizes a counterexample: drop whole requests, then individual
// degrees, as long as the disagreement persists.
func shrink(ki knapsackInstance) knapsackInstance {
	disagrees := func(k knapsackInstance) bool {
		return len(k.reqs) > 0 && dpMet(k) != exhaustiveMet(k)
	}
	for changed := true; changed; {
		changed = false
		for i := range ki.reqs {
			cand := ki
			cand.reqs = append(append([]knapsackReq(nil), ki.reqs[:i]...), ki.reqs[i+1:]...)
			if disagrees(cand) {
				ki = cand
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		for i, r := range ki.reqs {
			for _, k := range ki.degrees {
				if _, ok := r.stepTime[k]; !ok {
					continue
				}
				cand := ki
				cand.reqs = append([]knapsackReq(nil), ki.reqs...)
				st := make(map[int]time.Duration, len(r.stepTime))
				for d, t := range r.stepTime {
					if d != k {
						st[d] = t
					}
				}
				cand.reqs[i] = knapsackReq{deadline: r.deadline, stepTime: st}
				if disagrees(cand) {
					ki = cand
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
	}
	return ki
}

// TestDPMatchesExhaustiveOptimum is the Appendix B property test: on 1200
// random small instances the group-knapsack DP's survival count equals the
// exhaustive solver's optimum exactly.
func TestDPMatchesExhaustiveOptimum(t *testing.T) {
	rng := stats.NewRNG(20260805)
	const instances = 1200
	for i := 0; i < instances; i++ {
		ki := randKnapsackInstance(rng)
		dp, ex := dpMet(ki), exhaustiveMet(ki)
		if dp != ex {
			min := shrink(ki)
			t.Fatalf("instance %d: DP met %d, exhaustive met %d\nshrunk counterexample (DP %d vs exhaustive %d):\n%s",
				i, dp, ex, dpMet(min), exhaustiveMet(min), min)
		}
	}
}

// randCachedTimes draws a per-request, per-degree cache-discounted step
// time inside [10ms, plain]. Staying within the [10ms, 20ms) band keeps the
// construction's two-wave argument intact (the exhaustive solver still
// cannot fit a second dispatch wave before any deadline), so the instance
// remains a pure max-cardinality knapsack even with cached variants.
func randCachedTimes(rng *stats.RNG, ki knapsackInstance) []map[int]time.Duration {
	tc := make([]map[int]time.Duration, len(ki.reqs))
	for i, r := range ki.reqs {
		tc[i] = make(map[int]time.Duration, len(r.stepTime))
		for k, t := range r.stepTime {
			lo := 10 * time.Millisecond
			tc[i][k] = lo + time.Duration(rng.Intn(int(t-lo)+1))
		}
	}
	return tc
}

// dpMetCached mirrors dpMet but augments each degree with a step-cache
// variant at the drawn discounted time — the shape addCachedOptions
// produces. The DP treats cached options as ordinary knapsack choices (same
// width, different step time), so optimality must be unaffected.
func dpMetCached(ki knapsackInstance, cached []map[int]time.Duration, interval int) int {
	s := &Scheduler{}
	cands := make([]*candidate, len(ki.reqs))
	for i, r := range ki.reqs {
		c := &candidate{
			st: &sched.RequestState{
				Req:       &workload.Request{ID: workload.RequestID(i), Steps: 1, SLO: r.deadline},
				Remaining: 1,
			},
		}
		for _, k := range ki.degrees {
			if r.stepTime[k] <= r.deadline {
				c.options = append(c.options, option{
					degree:    k,
					planSteps: 1,
					stepTime:  r.stepTime[k],
					q:         1,
					survive:   true,
				})
			}
			// The cached variant is never slower; it is feasible whenever
			// the plain option is (and possibly when it is not).
			if tc := cached[i][k]; tc <= r.deadline {
				c.options = append(c.options, option{
					degree:        k,
					planSteps:     1,
					stepTime:      tc,
					q:             1,
					survive:       true,
					cacheInterval: interval,
				})
			}
		}
		cands[i] = c
	}
	met := 0
	for _, sel := range s.packDP(cands, ki.n) {
		if sel.optIdx >= 0 && sel.cand.options[sel.optIdx].survive {
			met++
		}
	}
	return met
}

// exhaustiveMetCached feeds the Appendix B solver the per-degree best
// variant — the optimum over option sets that carry a cached variant per
// degree, since widths are equal and survival at a degree only needs its
// cheapest variant.
func exhaustiveMetCached(ki knapsackInstance, cached []map[int]time.Duration) int {
	scaled := ki
	scaled.reqs = make([]knapsackReq, len(ki.reqs))
	for i, r := range ki.reqs {
		st := make(map[int]time.Duration, len(r.stepTime))
		for k, t := range r.stepTime {
			st[k] = t
			if tc := cached[i][k]; tc < t {
				st[k] = tc
			}
		}
		scaled.reqs[i] = knapsackReq{deadline: r.deadline, stepTime: st}
	}
	return exhaustiveMet(scaled)
}

// TestDPMatchesExhaustiveOptimumWithCachedOptions extends the Appendix B
// property to the cache dimension: augmenting every request's option set
// with a same-degree discounted variant (exactly what addCachedOptions
// emits) must leave the group-knapsack DP optimal — equal to the exhaustive
// optimum over the per-degree cheapest variants.
func TestDPMatchesExhaustiveOptimumWithCachedOptions(t *testing.T) {
	rng := stats.NewRNG(20260808)
	const instances = 1200
	for i := 0; i < instances; i++ {
		ki := randKnapsackInstance(rng)
		cached := randCachedTimes(rng, ki)
		interval := 2 + rng.Intn(7) // 2..8
		dp, ex := dpMetCached(ki, cached, interval), exhaustiveMetCached(ki, cached)
		if dp != ex {
			t.Fatalf("instance %d (interval %d): DP with cached options met %d, exhaustive met %d\ncached=%v\n%s",
				i, interval, dp, ex, cached, ki)
		}
	}
}

// TestCacheEstimatorProperties pins the T(res, k, cacheInterval) estimator's
// contract: interval 1 is exactly the legacy T(res, k), the discount never
// exceeds 1, and both the discount and the amortized step time are
// non-increasing in the interval.
func TestCacheEstimatorProperties(t *testing.T) {
	for _, gamma := range []float64{0.05, 0.3, 0.5, 0.9, 1.0} {
		if d := costmodel.CacheDiscount(gamma, 1); d != 1 {
			t.Fatalf("CacheDiscount(%v, 1) = %v, want exactly 1", gamma, d)
		}
		if d := costmodel.CacheDiscount(gamma, 0); d != 1 {
			t.Fatalf("CacheDiscount(%v, 0) = %v, want exactly 1", gamma, d)
		}
		prev := 1.0
		for c := 2; c <= 16; c++ {
			d := costmodel.CacheDiscount(gamma, c)
			if d > 1 {
				t.Fatalf("CacheDiscount(%v, %d) = %v > 1", gamma, c, d)
			}
			if d > prev {
				t.Fatalf("CacheDiscount(%v, %d) = %v increased from %v", gamma, c, d, prev)
			}
			prev = d
		}
	}
	for _, res := range testProf.Resolutions() {
		for _, k := range testProf.Degrees() {
			base := testProf.StepTime(res, k)
			if got := testProf.StepTimeCached(res, k, 1); got != base {
				t.Fatalf("StepTimeCached(%v, %d, 1) = %v, want legacy %v exactly", res, k, got, base)
			}
			prev := base
			for c := 2; c <= 8; c++ {
				tc := testProf.StepTimeCached(res, k, c)
				if tc > prev {
					t.Fatalf("StepTimeCached(%v, %d, %d) = %v increased from %v", res, k, c, tc, prev)
				}
				prev = tc
			}
		}
	}
}
