package core

// Candidate pruning for the group-knapsack DP. Only transformations that
// provably leave the packing bit-identical are applied: the DP's strict-">"
// tie-breaks mean even a value-equivalent rewrite can flip a back-pointer,
// so anything heuristic lives in explicit Config knobs (DeadlineBucket)
// rather than here.

// pruneCandidates filters the DP input down to candidates that can affect
// the packing. A candidate with no runnable options admits only the "none"
// choice, whose value (0 or survivalWeight, a per-candidate constant) is
// added to every reachable column of its row uniformly; a uniform shift of
// one row changes no later comparison outcome, no argmax column, and no
// back-pointer of any other candidate, so excluding the candidate leaves
// every surviving selection bit-identical. Option-less candidates are never
// placed and the work-conserving admission pass skips them too (it requires
// options), so they need no selection entry at all.
func (s *Scheduler) pruneCandidates(cands []*candidate) []*candidate {
	sc := &s.scratch
	out := sc.dpCands[:0]
	for _, c := range cands {
		if len(c.options) > 0 {
			out = append(out, c)
		}
	}
	s.prunedCands += len(cands) - len(out)
	sc.dpCands = out
	return out
}
