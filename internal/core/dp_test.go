package core

import (
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
)

// mkCandidate builds a synthetic candidate with explicit options.
func mkCandidate(id int, surviveNone bool, opts ...option) *candidate {
	st := mkState(id, model.Res512, 50, 0, 10*time.Second)
	return &candidate{st: st, options: opts, surviveNone: surviveNone, tmin: 20 * time.Millisecond}
}

func opt(degree, q int, survive bool) option {
	return option{degree: degree, planSteps: 50, stepTime: 25 * time.Millisecond, q: q, survive: survive}
}

// bruteForceBest enumerates every option combination and returns the best
// achievable DP value under the capacity.
func bruteForceBest(cands []*candidate, capacity int) int64 {
	best := int64(-1)
	var rec func(i int, width int, value int64)
	rec = func(i, width int, value int64) {
		if width > capacity {
			return
		}
		if i == len(cands) {
			if value > best {
				best = value
			}
			return
		}
		rec(i+1, width, value+noneValue(cands[i]))
		for _, o := range cands[i].options {
			rec(i+1, width+o.degree, value+optionValue(o))
		}
	}
	rec(0, 0, 0)
	return best
}

// dpValue computes the value of the DP's selection.
func dpValue(sels []selection) int64 {
	v := int64(0)
	for _, s := range sels {
		if s.optIdx < 0 {
			v += noneValue(s.cand)
		} else {
			v += optionValue(s.cand.options[s.optIdx])
		}
	}
	return v
}

func dpWidth(sels []selection) int {
	w := 0
	for _, s := range sels {
		if s.optIdx >= 0 {
			w += s.cand.options[s.optIdx].degree
		}
	}
	return w
}

func TestDPEmptyInput(t *testing.T) {
	s := newTestScheduler(t)
	if sels := s.packDP(nil, 8); len(sels) != 0 {
		t.Fatal("empty candidate list should yield empty selection")
	}
}

func TestDPRespectsCapacity(t *testing.T) {
	s := newTestScheduler(t)
	cands := []*candidate{
		mkCandidate(1, false, opt(8, 5, true)),
		mkCandidate(2, false, opt(8, 5, true)),
	}
	sels := s.packDP(cands, 8)
	if w := dpWidth(sels); w > 8 {
		t.Fatalf("DP exceeded capacity: width %d", w)
	}
	// Exactly one of the two width-8 options can run.
	ran := 0
	for _, sel := range sels {
		if sel.optIdx >= 0 {
			ran++
		}
	}
	if ran != 1 {
		t.Fatalf("ran %d of two exclusive requests, want 1", ran)
	}
}

func TestDPMaximizesSurvivors(t *testing.T) {
	s := newTestScheduler(t)
	// One request with a wide surviving option vs two with narrow ones:
	// the DP must pick the two.
	cands := []*candidate{
		mkCandidate(1, false, opt(8, 5, true)),
		mkCandidate(2, false, opt(4, 5, true)),
		mkCandidate(3, false, opt(4, 5, true)),
	}
	sels := s.packDP(cands, 8)
	survivors := 0
	for _, sel := range sels {
		if sel.optIdx >= 0 && sel.cand.options[sel.optIdx].survive {
			survivors++
		} else if sel.optIdx < 0 && sel.cand.surviveNone {
			survivors++
		}
	}
	if survivors != 2 {
		t.Fatalf("DP found %d survivors, want 2 (the two width-4 requests)", survivors)
	}
}

func TestDPPrefersRunningOnTies(t *testing.T) {
	s := newTestScheduler(t)
	// Request survives either way; with free capacity the DP should still
	// run it (work conservation).
	cands := []*candidate{mkCandidate(1, true, opt(2, 5, true))}
	sels := s.packDP(cands, 8)
	if sels[0].optIdx < 0 {
		t.Fatal("DP should prefer progress when survival is unaffected")
	}
}

func TestDPPicksCheapestAmongEqualSurvival(t *testing.T) {
	s := newTestScheduler(t)
	// Both options survive; the reconstruction picks the smallest
	// capacity achieving the max value, i.e. the 2-GPU option.
	cands := []*candidate{mkCandidate(1, false, opt(2, 5, true), opt(8, 5, true))}
	sels := s.packDP(cands, 8)
	if sels[0].optIdx != 0 {
		t.Fatalf("DP should prefer the narrower surviving option, picked %d", sels[0].optIdx)
	}
}

// TestDPMatchesBruteForce cross-checks the knapsack against exhaustive
// enumeration on randomized small instances.
func TestDPMatchesBruteForce(t *testing.T) {
	s := newTestScheduler(t)
	rng := stats.NewRNG(99)
	degrees := []int{1, 2, 4, 8}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		cands := make([]*candidate, 0, n)
		for i := 0; i < n; i++ {
			nOpts := rng.Intn(3)
			var opts []option
			seen := map[int]bool{}
			for j := 0; j <= nOpts; j++ {
				d := degrees[rng.Intn(len(degrees))]
				if seen[d] {
					continue
				}
				seen[d] = true
				opts = append(opts, opt(d, 1+rng.Intn(5), rng.Float64() < 0.6))
			}
			cands = append(cands, mkCandidate(i, rng.Float64() < 0.3, opts...))
		}
		capacity := rng.Intn(9)
		sels := s.packDP(cands, capacity)
		if got, want := dpValue(sels), bruteForceBest(cands, capacity); got != want {
			t.Fatalf("trial %d: DP value %d != brute force %d (capacity %d)", trial, got, want, capacity)
		}
		if dpWidth(sels) > capacity {
			t.Fatalf("trial %d: width %d exceeds capacity %d", trial, dpWidth(sels), capacity)
		}
		if len(sels) != len(cands) {
			t.Fatalf("trial %d: selection for %d of %d candidates", trial, len(sels), len(cands))
		}
	}
}

func TestDPNegativeCapacity(t *testing.T) {
	s := newTestScheduler(t)
	cands := []*candidate{mkCandidate(1, true, opt(1, 5, true))}
	sels := s.packDP(cands, -3)
	if sels[0].optIdx != -1 {
		t.Fatal("with no capacity everything must be 'none'")
	}
}

func TestDPZeroCapacity(t *testing.T) {
	s := newTestScheduler(t)
	cands := []*candidate{
		mkCandidate(1, true, opt(1, 5, true)),
		mkCandidate(2, false, opt(1, 5, true), opt(2, 5, true)),
	}
	sels := s.packDP(cands, 0)
	if len(sels) != len(cands) {
		t.Fatalf("got %d selections, want %d", len(sels), len(cands))
	}
	for _, sel := range sels {
		if sel.optIdx != -1 {
			t.Fatal("zero capacity must select 'none' for every candidate")
		}
	}
}

func TestDPAllOptionsWiderThanCapacity(t *testing.T) {
	s := newTestScheduler(t)
	cands := []*candidate{
		mkCandidate(1, false, opt(4, 5, true), opt(8, 5, true)),
		mkCandidate(2, true, opt(4, 5, true)),
	}
	sels := s.packDP(cands, 2)
	for _, sel := range sels {
		if sel.optIdx != -1 {
			t.Fatalf("no option fits in 2 GPUs; candidate %d still ran option %d",
				sel.cand.st.Req.ID, sel.optIdx)
		}
	}
}

// TestDPManyOptionsBackPointer is the int8→int16 regression test: with more
// than 127 options per candidate, the old int8 back-pointer rows silently
// overflowed and reconstructed garbage. Option index 150 is the unique
// surviving choice and must be selected intact.
func TestDPManyOptionsBackPointer(t *testing.T) {
	s := newTestScheduler(t)
	opts := make([]option, 151)
	for i := range opts {
		opts[i] = opt(1, 5, false)
	}
	opts[150] = opt(1, 5, true) // only the 151st option survives
	cands := []*candidate{mkCandidate(1, false, opts...)}
	sels := s.packDP(cands, 8)
	if sels[0].optIdx != 150 {
		t.Fatalf("optIdx = %d, want 150 (back-pointer must hold indices > 127)", sels[0].optIdx)
	}
}

func TestDPSelectionOrderStable(t *testing.T) {
	s := newTestScheduler(t)
	cands := []*candidate{
		mkCandidate(1, false, opt(1, 5, true)),
		mkCandidate(2, false, opt(1, 5, true)),
		mkCandidate(3, false, opt(1, 5, true)),
	}
	sels := s.packDP(cands, 8)
	for i, sel := range sels {
		if sel.cand != cands[i] {
			t.Fatal("selections not in input order")
		}
	}
}
