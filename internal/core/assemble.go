package core

import (
	"sort"
	"time"

	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// placed is an in-progress assignment before final emission.
type placed struct {
	cand     *candidate
	degree   int
	steps    int
	stepTime time.Duration
	group    simgpu.Mask
	// members is non-nil once continuous batching merged several requests.
	members []*candidate
	// bestEffort marks the ≤1-GPU lane for already-late requests.
	bestEffort bool
	// aligned reports the block fits the round window (the tick waits for
	// aligned blocks only).
	aligned bool
}

// assemble turns DP selections into concrete assignments: placement
// (preservation-aware), selective continuous batching, work-conserving
// admission of unselected requests, the best-effort lane for late requests,
// and elastic scale-up across all of them.
func (s *Scheduler) assemble(ctx *sched.PlanContext, sels []selection, cands []*candidate, late []*sched.RequestState) []sched.Assignment {
	free := ctx.Free

	// --- Placement (big groups first to limit fragmentation). ---
	ordered := make([]selection, 0, len(sels))
	for _, sel := range sels {
		if sel.optIdx >= 0 {
			ordered = append(ordered, sel)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].cand.options[ordered[i].optIdx].degree >
			ordered[j].cand.options[ordered[j].optIdx].degree
	})

	var placedList []*placed
	selected := make(map[workload.RequestID]bool)
	for _, sel := range ordered {
		opt := sel.cand.options[sel.optIdx]
		p := s.place(ctx, free, sel.cand, opt.degree)
		if p == nil {
			s.placementFailures++
			continue
		}
		free = free.Without(p.group)
		placedList = append(placedList, p)
		selected[sel.cand.st.Req.ID] = true
	}

	// --- Selective continuous batching (§5). ---
	if s.cfg.SelectiveBatching {
		free = s.batchSmall(ctx, placedList, free)
	}

	// --- Work-conserving admission of DP-skipped requests. ---
	unplaced := make([]*candidate, 0)
	for _, c := range cands {
		if !selected[c.st.Req.ID] && len(c.options) > 0 {
			unplaced = append(unplaced, c)
		}
	}
	sort.SliceStable(unplaced, func(i, j int) bool {
		return unplaced[i].st.Deadline() < unplaced[j].st.Deadline()
	})
	for _, c := range unplaced {
		if free == 0 {
			break
		}
		opt := c.options[0]
		p := s.place(ctx, free, c, opt.degree)
		if p == nil {
			continue
		}
		free = free.Without(p.group)
		placedList = append(placedList, p)
	}

	// --- Best-effort lane for definitely-late requests (§4.2.2): at most
	// one GPU each, from leftovers only, scaled up later if GPUs idle. ---
	if s.cfg.BestEffortLane {
		sort.SliceStable(late, func(i, j int) bool { return late[i].Deadline() < late[j].Deadline() })
		window := s.window()
		// Budget the lane: already-running late blocks (multi-round SP=1
		// blocks from earlier rounds) count against the cap so stragglers
		// cannot starve on-time requests of capacity.
		budget := s.cfg.BestEffortGPUs
		for _, st := range ctx.Running {
			if st.DefinitelyLate(ctx.Now, ctx.Profile) {
				budget--
			}
		}
		for _, st := range late {
			if budget <= 0 || free.Count() == 0 {
				break
			}
			budget--
			g := sched.AlignedGroup(ctx.Topo, free, 1, st.LastGroup)
			if g == 0 {
				break
			}
			t := ctx.Profile.StepTime(st.Req.Res, 1)
			q := int(window / t)
			aligned := true
			if q < 1 {
				// A single step exceeds the round: run it as a
				// multi-round block the tick does not wait for.
				q = 1
				aligned = false
			}
			if q > st.Remaining {
				q = st.Remaining
			}
			free = free.Without(g)
			placedList = append(placedList, &placed{
				cand:       &candidate{st: st},
				degree:     1,
				steps:      q,
				stepTime:   t,
				group:      g,
				bestEffort: true,
				aligned:    aligned,
			})
		}
	}

	// --- Elastic scale-up over everything placed (§4.2.3). ---
	if s.cfg.ElasticScaleUp {
		free = s.scaleUp(ctx, placedList, free)
	}

	// --- Emit. ---
	var plan []sched.Assignment
	for _, p := range placedList {
		if p == nil || p.group == 0 {
			continue // absorbed into a batch
		}
		ids := []workload.RequestID{p.cand.st.Req.ID}
		for _, m := range p.members {
			ids = append(ids, m.st.Req.ID)
		}
		plan = append(plan, sched.Assignment{
			Requests:     ids,
			Group:        p.group,
			Steps:        p.steps,
			RoundAligned: p.aligned,
			BestEffort:   p.bestEffort,
		})
	}
	return plan
}

// place maps a (candidate, degree) onto a concrete free group, degrading to
// smaller degrees when alignment fails. Returns nil if not even one GPU is
// available.
func (s *Scheduler) place(ctx *sched.PlanContext, free simgpu.Mask, c *candidate, degree int) *placed {
	window := s.window()
	for k := degree; k >= 1; k /= 2 {
		t := ctx.Profile.StepTime(c.st.Req.Res, k)
		q := int(window / t)
		if q <= 0 {
			continue
		}
		if q > c.st.Remaining {
			q = c.st.Remaining
		}
		var g simgpu.Mask
		if s.cfg.PlacementPreservation {
			g = sched.AlignedGroup(ctx.Topo, free, k, c.st.LastGroup)
		} else {
			g = sched.RandomGroup(free, k, s.rng)
		}
		if g == 0 {
			continue
		}
		return &placed{cand: c, degree: k, steps: q, stepTime: t, group: g, aligned: true}
	}
	return nil
}

// batchSmall merges width-1 placements of the same small resolution into
// continuous batches when every member's survival is preserved, freeing the
// donors' GPUs. Returns the updated free mask.
func (s *Scheduler) batchSmall(ctx *sched.PlanContext, placedList []*placed, free simgpu.Mask) simgpu.Mask {
	tNext := ctx.Now + s.tau
	byRes := map[string][]*placed{}
	for _, p := range placedList {
		if p.degree != 1 || len(p.members) > 0 || p.bestEffort {
			continue
		}
		// Latent tokens = pixels/16² for both models; batching only pays
		// for small resolutions that underutilize a GPU.
		tokens := p.cand.st.Req.Res.Pixels() / 256
		if ctx.Profile.Has(p.cand.st.Req.Res) && tokens <= s.cfg.BatchTokenCap {
			key := p.cand.st.Req.Res.String()
			byRes[key] = append(byRes[key], p)
		}
	}
	keys := make([]string, 0, len(byRes))
	for k := range byRes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		group := byRes[key]
		if len(group) < 2 {
			continue
		}
		sort.SliceStable(group, func(i, j int) bool {
			return group[i].cand.st.Deadline() < group[j].cand.st.Deadline()
		})
		host := group[0]
		for _, donor := range group[1:] {
			bs := 1 + len(host.members) + 1
			if bs > s.cfg.MaxBatch {
				break
			}
			tb := ctx.Profile.StepTimeBatch(host.cand.st.Req.Res, 1, profiledBatch(bs))
			qb := int(s.window() / tb)
			if qb <= 0 {
				break
			}
			// Joint step count: every member advances up to `steps` this
			// round (clipped to its own remaining by the engine).
			steps := qb
			members := append([]*candidate{host.cand}, host.members...)
			members = append(members, donor.cand)
			ok := true
			for _, m := range members {
				st := steps
				if st > m.st.Remaining {
					st = m.st.Remaining
				}
				after := m.st.Remaining - st
				if tNext+time.Duration(after)*m.tmin > m.st.Deadline() {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if steps > host.cand.st.Remaining {
				steps = host.cand.st.Remaining
			}
			if steps <= 0 {
				continue
			}
			host.members = append(host.members, donor.cand)
			host.steps = steps
			host.stepTime = tb
			free = free.Union(donor.group)
			donor.group = 0 // mark absorbed; emission skips group 0
		}
	}
	return free
}

// scaleUp grants leftover GPUs to placed requests whose per-step time
// improves at double the degree, prioritizing active (non-late) requests,
// then the largest per-round gain — §4.2.3's work-conserving elastic
// scale-up, which the paper applies to best-effort requests too.
func (s *Scheduler) scaleUp(ctx *sched.PlanContext, placedList []*placed, free simgpu.Mask) simgpu.Mask {
	window := s.window()
	for {
		var best *placed
		var bestGroup simgpu.Mask
		bestGain := time.Duration(0)
		bestExtraSteps := -1
		bestActive := false
		better := func(active bool, extra int, gain time.Duration) bool {
			if best == nil {
				return true
			}
			if active != bestActive {
				return active
			}
			if extra != bestExtraSteps {
				return extra > bestExtraSteps
			}
			return gain > bestGain
		}
		for _, p := range placedList {
			if p == nil || p.group == 0 || len(p.members) > 0 {
				continue
			}
			k2 := p.degree * 2
			if k2 > ctx.Topo.N {
				continue
			}
			t2 := ctx.Profile.StepTime(p.cand.st.Req.Res, k2)
			if t2 >= p.stepTime {
				continue // no benefit from extra parallelism (T(k') < T(k))
			}
			// Prefer growing in place via the free buddy; otherwise move to
			// any aligned group assembled from free GPUs plus its own.
			var g simgpu.Mask
			if buddy := sched.BuddyOf(ctx.Topo, p.group); buddy != 0 && buddy&^free == 0 {
				g = p.group.Union(buddy)
			} else {
				g = sched.AlignedGroup(ctx.Topo, free.Union(p.group), k2, p.group)
			}
			if g == 0 {
				continue
			}
			q2 := int(window / t2)
			if q2 <= 0 {
				q2 = 1 // still a multi-round improvement for huge steps
			}
			if q2 > p.cand.st.Remaining {
				q2 = p.cand.st.Remaining
			}
			extraSteps := q2 - p.steps
			if extraSteps < 0 {
				continue
			}
			gain := time.Duration(p.steps)*(p.stepTime-t2) + time.Duration(extraSteps)*t2
			if better(!p.bestEffort, extraSteps, gain) {
				best = p
				bestGroup = g
				bestGain = gain
				bestExtraSteps = extraSteps
				bestActive = !p.bestEffort
			}
		}
		if best == nil {
			return free
		}
		k2 := best.degree * 2
		free = free.Union(best.group).Without(bestGroup)
		best.group = bestGroup
		best.degree = k2
		best.stepTime = ctx.Profile.StepTime(best.cand.st.Req.Res, k2)
		q := int(window / best.stepTime)
		if q <= 0 {
			q = 1
		}
		if q > best.cand.st.Remaining {
			q = best.cand.st.Remaining
		}
		best.steps = q
		best.aligned = time.Duration(best.steps)*best.stepTime <= window
	}
}

// profiledBatch rounds a batch size up to the next profiled power of two
// (the lookup table is built for bs ∈ {1,2,4,8}); the estimate is
// conservative for in-between sizes.
func profiledBatch(bs int) int {
	b := 1
	for b < bs {
		b *= 2
	}
	if b > 8 {
		b = 8
	}
	return b
}
