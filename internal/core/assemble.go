package core

import (
	"cmp"
	"slices"
	"time"

	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// placed is an in-progress assignment before final emission. Instances live
// in the scheduler's scratch arena (planScratch.placed) and are recycled
// every round; pointers to them are only valid within one Plan call.
type placed struct {
	cand     *candidate
	degree   int
	steps    int
	stepTime time.Duration
	group    simgpu.Mask
	// members is non-nil once continuous batching merged several requests.
	// It aliases planScratch.memberArena.
	members []*candidate
	// bestEffort marks the ≤1-GPU lane for already-late requests.
	bestEffort bool
	// aligned reports the block fits the round window (the tick waits for
	// aligned blocks only).
	aligned bool
	// cacheInterval > 1 marks a step-cache-assisted block: stepTime and
	// steps were derived at the discounted cost and the block stays
	// single-request (no batching, no elastic scale-up — the cadence and
	// quality ledger are per-request).
	cacheInterval int
}

// assemble turns DP selections into concrete assignments: placement
// (preservation-aware), selective continuous batching, work-conserving
// admission of unselected requests, the best-effort lane for late requests,
// and elastic scale-up across all of them. The returned plan lives in the
// scheduler's scratch and is valid until the next Plan call.
func (s *Scheduler) assemble(ctx *sched.PlanContext, sels []selection, cands []*candidate, late []*sched.RequestState) []sched.Assignment {
	sc := &s.scratch
	free := ctx.Free

	// The placement arena must never reallocate once pointers are taken:
	// each candidate is placed at most once (DP pass or work-conserving
	// admission, never both) and the best-effort lane adds at most one
	// block per late request.
	if need := len(cands) + len(late); cap(sc.placed) < need {
		sc.placed = make([]placed, 0, need)
	}
	sc.placed = sc.placed[:0]
	sc.placedPtr = sc.placedPtr[:0]

	// --- Placement (big groups first to limit fragmentation). ---
	ordered := sc.ordered[:0]
	for _, sel := range sels {
		if sel.optIdx >= 0 {
			ordered = append(ordered, sel)
		}
	}
	slices.SortStableFunc(ordered, func(a, b selection) int {
		return b.cand.options[b.optIdx].degree - a.cand.options[a.optIdx].degree
	})
	sc.ordered = ordered

	for _, sel := range ordered {
		opt := sel.cand.options[sel.optIdx]
		p := s.place(ctx, free, sel.cand, opt.degree, opt.cacheInterval)
		if p == nil {
			s.placementFailures++
			continue
		}
		free = free.Without(p.group)
		sc.placedPtr = append(sc.placedPtr, p)
		sel.cand.selected = true
	}

	// --- Selective continuous batching (§5). ---
	if s.cfg.SelectiveBatching {
		free = s.batchSmall(ctx, sc.placedPtr, free)
	}

	// --- Work-conserving admission of DP-skipped requests. ---
	unplaced := sc.unplaced[:0]
	for _, c := range cands {
		if !c.selected && len(c.options) > 0 {
			unplaced = append(unplaced, c)
		}
	}
	sc.unplaced = unplaced
	slices.SortStableFunc(unplaced, func(a, b *candidate) int {
		return cmp.Compare(a.st.Deadline(), b.st.Deadline())
	})
	for _, c := range unplaced {
		if free == 0 {
			break
		}
		opt := c.options[0]
		p := s.place(ctx, free, c, opt.degree, opt.cacheInterval)
		if p == nil {
			continue
		}
		free = free.Without(p.group)
		sc.placedPtr = append(sc.placedPtr, p)
	}

	// --- Best-effort lane for definitely-late requests (§4.2.2): at most
	// one GPU each, from leftovers only, scaled up later if GPUs idle. ---
	if s.cfg.BestEffortLane {
		slices.SortStableFunc(late, func(a, b *sched.RequestState) int {
			return cmp.Compare(a.Deadline(), b.Deadline())
		})
		window := s.window()
		// Budget the lane: already-running late blocks (multi-round SP=1
		// blocks from earlier rounds) count against the cap so stragglers
		// cannot starve on-time requests of capacity.
		budget := s.cfg.BestEffortGPUs
		for _, st := range ctx.Running {
			if s.definitelyLate(ctx.Profile, st, ctx.Now) {
				budget--
			}
		}
		if cap(sc.lateArena) < len(late) {
			sc.lateArena = make([]candidate, 0, len(late))
		}
		sc.lateArena = sc.lateArena[:0]
		for _, st := range late {
			if budget <= 0 || free.Count() == 0 {
				break
			}
			budget--
			g := sched.AlignedGroup(ctx.Topo, free, 1, st.LastGroup)
			if g == 0 {
				break
			}
			t := ctx.Profile.StepTime(st.Req.Res, 1)
			q := int(window / t)
			aligned := true
			if q < 1 {
				// A single step exceeds the round: run it as a
				// multi-round block the tick does not wait for.
				q = 1
				aligned = false
			}
			if q > st.Remaining {
				q = st.Remaining
			}
			free = free.Without(g)
			sc.lateArena = append(sc.lateArena, candidate{st: st})
			sc.placed = append(sc.placed, placed{
				cand:       &sc.lateArena[len(sc.lateArena)-1],
				degree:     1,
				steps:      q,
				stepTime:   t,
				group:      g,
				bestEffort: true,
				aligned:    aligned,
			})
			sc.placedPtr = append(sc.placedPtr, &sc.placed[len(sc.placed)-1])
		}
	}

	// --- Elastic scale-up over everything placed (§4.2.3). ---
	if s.cfg.ElasticScaleUp {
		free = s.scaleUp(ctx, sc.placedPtr, free)
	}

	// --- Emit. The plan and the Requests slices it references alias the
	// scheduler's scratch (see sched.Scheduler's Plan contract); retainers
	// such as the engine copy what they keep. ---
	total := 0
	for _, p := range sc.placedPtr {
		if p.group != 0 {
			total += 1 + len(p.members)
		}
	}
	if cap(sc.ids) < total {
		sc.ids = make([]workload.RequestID, 0, total)
	}
	sc.ids = sc.ids[:0]
	plan := sc.plan[:0]
	for _, p := range sc.placedPtr {
		if p.group == 0 {
			continue // absorbed into a batch
		}
		start := len(sc.ids)
		sc.ids = append(sc.ids, p.cand.st.Req.ID)
		for _, m := range p.members {
			sc.ids = append(sc.ids, m.st.Req.ID)
		}
		plan = append(plan, sched.Assignment{
			Requests:      sc.ids[start:len(sc.ids):len(sc.ids)],
			Group:         p.group,
			Steps:         p.steps,
			RoundAligned:  p.aligned,
			BestEffort:    p.bestEffort,
			CacheInterval: p.cacheInterval,
		})
	}
	sc.plan = plan
	return plan
}

// place maps a (candidate, degree) onto a concrete free group, degrading to
// smaller degrees when alignment fails. The block is taken from the scratch
// placement arena; returns nil if not even one GPU is available. A cache
// interval > 1 prices steps at the discounted cost and re-clips the block to
// the quality budget and protection zone at whatever degree placement lands
// on.
func (s *Scheduler) place(ctx *sched.PlanContext, free simgpu.Mask, c *candidate, degree, interval int) *placed {
	window := s.window()
	for k := degree; k >= 1; k /= 2 {
		t := ctx.Profile.StepTime(c.st.Req.Res, k)
		if interval > 1 {
			t = ctx.Profile.StepTimeCached(c.st.Req.Res, k, interval)
		}
		q := int(window / t)
		if q <= 0 {
			continue
		}
		if q > c.st.Remaining {
			q = c.st.Remaining
		}
		if interval > 1 {
			q = clipCachedSteps(c.st, q, interval)
			if q <= 0 {
				continue
			}
		}
		var g simgpu.Mask
		if s.cfg.PlacementPreservation {
			g = sched.AlignedGroup(ctx.Topo, free, k, c.st.LastGroup)
		} else {
			g = sched.RandomGroup(free, k, s.rng)
		}
		if g == 0 {
			continue
		}
		sc := &s.scratch
		sc.placed = append(sc.placed, placed{
			cand: c, degree: k, steps: q, stepTime: t, group: g, aligned: true,
			cacheInterval: interval,
		})
		return &sc.placed[len(sc.placed)-1]
	}
	return nil
}

// clipCachedSteps shrinks a cached block so it stays outside the protected
// first/last steps and within the request's remaining quality budget.
// Returns 0 when no cached block is currently legal.
func clipCachedSteps(st *sched.RequestState, q, interval int) int {
	total := st.Req.Steps - st.Req.SkippedSteps
	done := total - st.Remaining
	if done < sched.CacheProtectedSteps {
		return 0
	}
	if maxQ := st.Remaining - sched.CacheProtectedSteps; q > maxQ {
		q = maxQ
	}
	budgetLeft := st.Req.QualityBudget - st.QualityUsed
	for q > 0 && sched.ApproxSteps(q, interval) > budgetLeft {
		q--
	}
	return q
}

// batchSmall merges width-1 placements of the same small resolution into
// continuous batches when every member's survival is preserved, freeing the
// donors' GPUs. Returns the updated free mask.
func (s *Scheduler) batchSmall(ctx *sched.PlanContext, placedList []*placed, free simgpu.Mask) simgpu.Mask {
	tNext := ctx.Now + s.tau
	sc := &s.scratch
	batchable := sc.batchable[:0]
	for _, p := range placedList {
		if p.degree != 1 || len(p.members) > 0 || p.bestEffort || p.cacheInterval > 1 {
			continue
		}
		// Latent tokens = pixels/16² for both models; batching only pays
		// for small resolutions that underutilize a GPU.
		tokens := p.cand.st.Req.Res.Pixels() / 256
		if ctx.Profile.Has(p.cand.st.Req.Res) && tokens <= s.cfg.BatchTokenCap {
			batchable = append(batchable, p)
		}
	}
	sc.batchable = batchable
	// Group by resolution, earliest deadline first within a group. Groups
	// are independent — merges happen within one resolution and only ever
	// release GPUs into free — so visiting them in pixel order rather than
	// the lexicographic string order of the map-based version changes no
	// observable outcome.
	slices.SortStableFunc(batchable, func(a, b *placed) int {
		ra, rb := a.cand.st.Req.Res, b.cand.st.Req.Res
		if ra != rb {
			if c := cmp.Compare(ra.Pixels(), rb.Pixels()); c != 0 {
				return c
			}
			return cmp.Compare(ra.W, rb.W)
		}
		return cmp.Compare(a.cand.st.Deadline(), b.cand.st.Deadline())
	})
	if cap(sc.memberArena) < len(batchable) {
		sc.memberArena = make([]*candidate, 0, len(batchable))
	}
	sc.memberArena = sc.memberArena[:0]
	for gi := 0; gi < len(batchable); {
		gj := gi + 1
		for gj < len(batchable) && batchable[gj].cand.st.Req.Res == batchable[gi].cand.st.Req.Res {
			gj++
		}
		group := batchable[gi:gj]
		gi = gj
		if len(group) < 2 {
			continue
		}
		host := group[0]
		start := len(sc.memberArena)
		for _, donor := range group[1:] {
			bs := 1 + len(host.members) + 1
			if bs > s.cfg.MaxBatch {
				break
			}
			tb := ctx.Profile.StepTimeBatch(host.cand.st.Req.Res, 1, profiledBatch(bs))
			qb := int(s.window() / tb)
			if qb <= 0 {
				break
			}
			// Joint step count: every member advances up to `steps` this
			// round (clipped to its own remaining by the engine). The block
			// executes min(qb, host remaining) steps, so survival must be
			// tested at that clipped count — a donor with more remaining
			// than the host makes less progress than qb would suggest.
			steps := qb
			if steps > host.cand.st.Remaining {
				steps = host.cand.st.Remaining
			}
			if steps <= 0 {
				continue
			}
			ok := survivesBatch(tNext, host.cand, steps) && survivesBatch(tNext, donor.cand, steps)
			for _, m := range host.members {
				if !ok {
					break
				}
				ok = survivesBatch(tNext, m, steps)
			}
			if !ok {
				continue
			}
			sc.memberArena = append(sc.memberArena, donor.cand)
			host.members = sc.memberArena[start:len(sc.memberArena):len(sc.memberArena)]
			host.steps = steps
			host.stepTime = tb
			free = free.Union(donor.group)
			donor.group = 0 // mark absorbed; emission skips group 0
		}
	}
	return free
}

// survivesBatch reports whether running `steps` joint steps this round keeps
// member m on time at the next round boundary.
func survivesBatch(tNext time.Duration, m *candidate, steps int) bool {
	st := steps
	if st > m.st.Remaining {
		st = m.st.Remaining
	}
	after := m.st.Remaining - st
	return tNext+time.Duration(after)*m.tmin <= m.st.Deadline()
}

// scaleUp grants leftover GPUs to placed requests whose per-step time
// improves at double the degree, prioritizing active (non-late) requests,
// then the largest per-round gain — §4.2.3's work-conserving elastic
// scale-up, which the paper applies to best-effort requests too.
func (s *Scheduler) scaleUp(ctx *sched.PlanContext, placedList []*placed, free simgpu.Mask) simgpu.Mask {
	window := s.window()
	for {
		var best *placed
		var bestGroup simgpu.Mask
		bestGain := time.Duration(0)
		bestExtraSteps := -1
		bestActive := false
		better := func(active bool, extra int, gain time.Duration) bool {
			if best == nil {
				return true
			}
			if active != bestActive {
				return active
			}
			if extra != bestExtraSteps {
				return extra > bestExtraSteps
			}
			return gain > bestGain
		}
		for _, p := range placedList {
			if p == nil || p.group == 0 || len(p.members) > 0 || p.cacheInterval > 1 {
				// Cached blocks are excluded: growing one re-prices its steps
				// at a new degree mid-ledger, and its quality spend was
				// clipped for the emitted (degree, steps) pair.
				continue
			}
			k2 := p.degree * 2
			if k2 > ctx.Topo.N {
				continue
			}
			t2 := ctx.Profile.StepTime(p.cand.st.Req.Res, k2)
			if t2 >= p.stepTime {
				continue // no benefit from extra parallelism (T(k') < T(k))
			}
			// Prefer growing in place via the free buddy; otherwise move to
			// any aligned group assembled from free GPUs plus its own.
			var g simgpu.Mask
			if buddy := sched.BuddyOf(ctx.Topo, p.group); buddy != 0 && buddy&^free == 0 {
				g = p.group.Union(buddy)
			} else {
				g = sched.AlignedGroup(ctx.Topo, free.Union(p.group), k2, p.group)
			}
			if g == 0 {
				continue
			}
			q2 := int(window / t2)
			if q2 <= 0 {
				q2 = 1 // still a multi-round improvement for huge steps
			}
			if q2 > p.cand.st.Remaining {
				q2 = p.cand.st.Remaining
			}
			extraSteps := q2 - p.steps
			if extraSteps < 0 {
				continue
			}
			gain := time.Duration(p.steps)*(p.stepTime-t2) + time.Duration(extraSteps)*t2
			if better(!p.bestEffort, extraSteps, gain) {
				best = p
				bestGroup = g
				bestGain = gain
				bestExtraSteps = extraSteps
				bestActive = !p.bestEffort
			}
		}
		if best == nil {
			return free
		}
		k2 := best.degree * 2
		free = free.Union(best.group).Without(bestGroup)
		best.group = bestGroup
		best.degree = k2
		best.stepTime = ctx.Profile.StepTime(best.cand.st.Req.Res, k2)
		q := int(window / best.stepTime)
		if q <= 0 {
			q = 1
		}
		if q > best.cand.st.Remaining {
			q = best.cand.st.Remaining
		}
		best.steps = q
		best.aligned = time.Duration(best.steps)*best.stepTime <= window
	}
}

// profiledBatch rounds a batch size up to the next profiled power of two
// (the lookup table is built for bs ∈ {1,2,4,8}); the estimate is
// conservative for in-between sizes.
func profiledBatch(bs int) int {
	b := 1
	for b < bs {
		b *= 2
	}
	if b > 8 {
		b = 8
	}
	return b
}
