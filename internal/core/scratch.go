package core

// This file holds the scheduler's reusable per-round scratch state. Plan is
// the control-plane hot path (the <10 ms claim of Appendix B); re-allocating
// candidates, DP rows and placement buffers every round made the Go
// allocator, not the algorithm, the dominant cost at deep queues. All
// buffers below are owned by one Scheduler and reused across Plan calls,
// which is safe because Plan is never invoked concurrently on one scheduler
// (both the simulator and the live server drive a scheduler from a single
// goroutine; the parallel experiment harness constructs one scheduler per
// worker).

import (
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/workload"
)

// mixKey identifies one deadline-aware allocation subproblem. By default the
// budget is the exact remaining time to deadline: quantizing the key alone
// would let two requests with different deadlines share a (possibly wrong)
// plan and change round decisions, so the memo trades hit rate for
// bit-for-bit reproducibility. Config.DeadlineBucket quantizes the budget
// *before* it reaches the solver — the rounded-down value is both the key
// and the solve input, so the plan stays self-consistent (and conservative)
// while near-identical deadlines collapse onto one entry. Requests of the
// same resolution arriving together (the common burst shape, and the planner
// benchmark's queue) collapse onto a handful of keys either way.
type mixKey struct {
	res    model.Resolution
	steps  int
	budget time.Duration
}

// planScratch is the arena reused across Plan calls.
type planScratch struct {
	// Stage 0: request partition.
	active []*sched.RequestState
	late   []*sched.RequestState

	// Stage 1: candidate construction.
	candArena []candidate
	cands     []*candidate

	// minGPUHourMix working set, memo and result slab. The memo serves one
	// Plan call: deadline budgets shift every round, so cross-round keys
	// almost never repeat, and clearing per plan (clear() keeps the map's
	// buckets) bounds both the map and the slab the memoized slices alias.
	mixMemo     map[mixKey][]mixEntry
	mixArena    []mixEntry
	memoProf    *costmodel.Profile
	memoVersion uint64
	// tminCache memoizes Profile.MinStepTime per resolution — the lookup is
	// a degree-loop of map probes and the planner needs it twice per pending
	// request per round (late partition + candidate survival bounds). Tied
	// to the memo epoch: reset only when the profile identity/version moves.
	tminCache map[model.Resolution]time.Duration
	// cfgCache memoizes buildDegCfgs per resolution on the same epoch: the
	// table depends only on (profile, resolution, window, quantization
	// flag), and rebuilding it was most of every solveMix call.
	cfgCache map[model.Resolution][]degCfg

	// Stage 2: DP state. rows is the full (R+1)×cols value table — row i is
	// the optimum over the first i candidates, kept (rather than the usual
	// rolling pair) so a later round can resume from the deepest row whose
	// candidate prefix is unchanged. choice is the flattened back-pointer
	// table, len(cands)×cols. prof fingerprints each DP row's transition
	// (see dpProfile); prevProf is last round's sequence, the warm-start
	// comparison baseline.
	rows     []int64
	choice   []int16
	sels     []selection
	dpCands  []*candidate
	prof     []uint64
	prevProf []uint64
	dpCols   int
	dpValid  int // candidate rows of `rows` that match prevProf

	// Layer-A replay cache (see warmstart.go).
	replay replayState

	// Workers>1 parallel candidate construction (see parallel.go).
	par parScratch

	// Stage 3: assembly. placed is the arena all *placed pointers index
	// into; memberArena backs the per-host continuous-batching member
	// slices; ids backs the emitted Assignment.Requests slices.
	ordered     []selection
	placed      []placed
	placedPtr   []*placed
	lateArena   []candidate
	unplaced    []*candidate
	batchable   []*placed
	memberArena []*candidate
	ids         []workload.RequestID
	plan        []sched.Assignment
}

// degCfg is one profiled degree's effective cost inside minGPUHourMix.
type degCfg struct {
	k int
	t time.Duration
	g float64 // GPU-seconds per step
}

// beginPlan resets the per-round buffers and memo for a fresh solve.
func (s *Scheduler) beginPlan(prof *costmodel.Profile) {
	sc := &s.scratch
	sc.active = sc.active[:0]
	sc.late = sc.late[:0]
	sc.cands = sc.cands[:0]
	s.ensureMemo(prof)
	clear(sc.mixMemo)
	sc.mixArena = sc.mixArena[:0]
}

// ensureMemo (re)initializes the allocation memo when it does not exist yet
// or the profile identity or version changed (on-demand profiling extends
// tables in place and bumps Version).
func (s *Scheduler) ensureMemo(prof *costmodel.Profile) {
	sc := &s.scratch
	if sc.mixMemo == nil || sc.memoProf != prof || sc.memoVersion != prof.Version() {
		sc.mixMemo = make(map[mixKey][]mixEntry)
		sc.tminCache = make(map[model.Resolution]time.Duration)
		sc.cfgCache = make(map[model.Resolution][]degCfg)
		sc.memoProf = prof
		sc.memoVersion = prof.Version()
	}
}

// minStep is the cached Profile.MinStepTime (value identical by
// construction, so planning decisions cannot shift). The parallel candidate
// pass reads the cache concurrently; that is safe because Plan's sequential
// partition stage has already interned every pending resolution.
func (s *Scheduler) minStep(prof *costmodel.Profile, res model.Resolution) time.Duration {
	sc := &s.scratch
	if t, ok := sc.tminCache[res]; ok {
		return t
	}
	t, _ := prof.MinStepTime(res)
	sc.tminCache[res] = t
	return t
}

// degCfgs is the cached buildDegCfgs. The parallel candidate pass reads the
// cache concurrently; that is safe because pass 1 (sequential) interns every
// active resolution before any worker starts.
func (s *Scheduler) degCfgs(prof *costmodel.Profile, res model.Resolution) []degCfg {
	sc := &s.scratch
	if c, ok := sc.cfgCache[res]; ok {
		return c
	}
	c := s.buildDegCfgs(prof, res)
	sc.cfgCache[res] = c
	return c
}

// definitelyLate mirrors sched.RequestState.DefinitelyLate through the
// tmin cache. With step caching enabled, a request is only definitely late
// if it misses its deadline even after spending its whole remaining quality
// budget at the maximum cache interval — the cache dimension turns some
// would-be drops back into packable candidates.
func (s *Scheduler) definitelyLate(prof *costmodel.Profile, st *sched.RequestState, now time.Duration) bool {
	tmin := s.minStep(prof, st.Req.Res)
	if now+time.Duration(st.Remaining)*tmin <= st.Deadline() {
		return false
	}
	// Same projection (and margin) as the rescue gate in addCachedOptions: a
	// request is only kept alive for the cache dimension when a rescue could
	// actually be planned for it — relief without a plannable rescue would
	// let doomed requests linger in the active set and displace on-time work.
	total := st.Req.Steps - st.Req.SkippedSteps
	done := total - st.Remaining
	budgetLeft := st.Req.QualityBudget - st.QualityUsed
	return !s.cacheFeasibleAt(prof, st, now, st.Remaining, done, budgetLeft)
}

// putMix1 / putMix2 materialize a mix into the per-plan slab, returning a
// clipped sub-slice so later appends cannot overwrite it. The slab may grow
// (re-point) mid-plan; previously returned slices keep aliasing the old
// backing array, which stays valid for the rest of the plan.
func (sc *planScratch) putMix1(a mixEntry) []mixEntry {
	start := len(sc.mixArena)
	sc.mixArena = append(sc.mixArena, a)
	return sc.mixArena[start:len(sc.mixArena):len(sc.mixArena)]
}

func (sc *planScratch) putMix2(a, b mixEntry) []mixEntry {
	start := len(sc.mixArena)
	sc.mixArena = append(sc.mixArena, a, b)
	return sc.mixArena[start:len(sc.mixArena):len(sc.mixArena)]
}

// grabCandidates returns n zeroed candidate slots with stable addresses.
func (sc *planScratch) grabCandidates(n int) []candidate {
	if cap(sc.candArena) < n {
		sc.candArena = make([]candidate, n)
	}
	sc.candArena = sc.candArena[:n]
	return sc.candArena
}
