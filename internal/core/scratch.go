package core

// This file holds the scheduler's reusable per-round scratch state. Plan is
// the control-plane hot path (the <10 ms claim of Appendix B); re-allocating
// candidates, DP rows and placement buffers every round made the Go
// allocator, not the algorithm, the dominant cost at deep queues. All
// buffers below are owned by one Scheduler and reused across Plan calls,
// which is safe because Plan is never invoked concurrently on one scheduler
// (both the simulator and the live server drive a scheduler from a single
// goroutine; the parallel experiment harness constructs one scheduler per
// worker).

import (
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/workload"
)

// mixKey identifies one deadline-aware allocation subproblem. The budget is
// the exact remaining time to deadline: quantizing it would let two requests
// with different deadlines share a (possibly wrong) plan and change round
// decisions, so the memo trades hit rate for bit-for-bit reproducibility.
// Requests of the same resolution arriving together (the common burst shape,
// and the planner benchmark's queue) still collapse onto a handful of keys.
type mixKey struct {
	res    model.Resolution
	steps  int
	budget time.Duration
}

// mixMemoLimit bounds the memo so long-running servers with ever-shifting
// deadlines cannot grow it without bound; on overflow the memo resets, which
// only costs recomputation.
const mixMemoLimit = 8192

// planScratch is the arena reused across Plan calls.
type planScratch struct {
	// Stage 0: request partition.
	active []*sched.RequestState
	late   []*sched.RequestState

	// Stage 1: candidate construction.
	candArena []candidate
	cands     []*candidate

	// minGPUHourMix working set and memo. The memo lives across rounds
	// within a "plan epoch": it is cleared whenever the profile identity or
	// version changes (on-demand profiling extends tables in place).
	cfgs        []degCfg
	mixMemo     map[mixKey][]mixEntry
	memoProf    *costmodel.Profile
	memoVersion uint64

	// Stage 2: DP rows. choice is the flattened back-pointer table,
	// len(cands)×(capacity+1), reused between rounds.
	dp     []int64
	next   []int64
	choice []int16
	sels   []selection

	// Stage 3: assembly. placed is the arena all *placed pointers index
	// into; memberArena backs the per-host continuous-batching member
	// slices; ids backs the emitted Assignment.Requests slices.
	ordered     []selection
	placed      []placed
	placedPtr   []*placed
	lateArena   []candidate
	unplaced    []*candidate
	batchable   []*placed
	memberArena []*candidate
	ids         []workload.RequestID
	plan        []sched.Assignment
}

// degCfg is one profiled degree's effective cost inside minGPUHourMix.
type degCfg struct {
	k int
	t time.Duration
	g float64 // GPU-seconds per step
}

// beginPlan resets the per-round buffers and rolls the memo epoch if the
// profile changed since the last round.
func (s *Scheduler) beginPlan(prof *costmodel.Profile) {
	sc := &s.scratch
	sc.active = sc.active[:0]
	sc.late = sc.late[:0]
	sc.cands = sc.cands[:0]
	s.ensureMemo(prof)
}

// ensureMemo (re)initializes the allocation memo when it does not exist yet,
// the profile identity or version changed, or the memo outgrew its bound.
func (s *Scheduler) ensureMemo(prof *costmodel.Profile) {
	sc := &s.scratch
	if sc.mixMemo == nil || sc.memoProf != prof || sc.memoVersion != prof.Version() || len(sc.mixMemo) > mixMemoLimit {
		sc.mixMemo = make(map[mixKey][]mixEntry)
		sc.memoProf = prof
		sc.memoVersion = prof.Version()
	}
}

// grabCandidates returns n zeroed candidate slots with stable addresses.
func (sc *planScratch) grabCandidates(n int) []candidate {
	if cap(sc.candArena) < n {
		sc.candArena = make([]candidate, n)
	}
	sc.candArena = sc.candArena[:n]
	return sc.candArena
}

// int64Row returns a zero-length int64 buffer with at least n capacity.
func int64Row(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}
