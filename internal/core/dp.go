package core

// This file implements Algorithm 1's group-knapsack dynamic program: per
// request choose at most one option (one of its planned GPU allocations, or
// none), total width ≤ the free GPU capacity, maximizing the number of
// requests that survive to the next round.
//
// Values are encoded as survivors·survivalWeight + progress so that, among
// packings with equal survivor counts, the DP prefers making progress on
// more requests (the work-conserving tie-break; leftover capacity is later
// recycled by elastic scale-up regardless).
//
// The value rows and the back-pointer table live in the scheduler's scratch
// and are reused across rounds; at queue depth 256 this removes ~500 row
// allocations per plan.

const survivalWeight = 1 << 20

// maxOptions bounds a candidate's option count so the int16 back-pointers
// below cannot overflow. A minimal-GPU-hour mix yields at most two options,
// so this is purely defensive.
const maxOptions = 1<<15 - 1

// selection records the DP's decision for one candidate.
type selection struct {
	cand *candidate
	// optIdx indexes cand.options; -1 means "none".
	optIdx int
}

// packDP runs the dynamic program over capacity GPUs and reconstructs the
// chosen options via back-pointers. Runtime O(R·N·|O|), space O(R·N) —
// the tractability claim of §4.2.2. The returned slice is scratch owned by
// the scheduler and is valid until the next Plan call.
func (s *Scheduler) packDP(cands []*candidate, capacity int) []selection {
	if capacity < 0 {
		capacity = 0
	}
	const minusInf = -1 << 40
	sc := &s.scratch
	cols := capacity + 1
	dp := int64Row(sc.dp, cols)
	next := int64Row(sc.next, cols)
	for c := range dp {
		dp[c] = minusInf
	}
	dp[0] = 0
	// choice[i*cols+c] = option index picked for candidate i when the first
	// i+1 candidates consume exactly c GPUs (-1 = none, -2 = unreachable).
	if need := len(cands) * cols; cap(sc.choice) < need {
		sc.choice = make([]int16, need)
	}
	choice := sc.choice[:len(cands)*cols]

	for i, cand := range cands {
		if len(cand.options) > maxOptions {
			panic("core: candidate option count overflows DP back-pointers")
		}
		ch := choice[i*cols : (i+1)*cols]
		for c := 0; c <= capacity; c++ {
			// Option "none": width 0.
			v := dp[c]
			ch[c] = -2
			if v > minusInf {
				next[c] = v + noneValue(cand)
				ch[c] = -1
			} else {
				next[c] = minusInf
			}
			for oi, opt := range cand.options {
				w := opt.degree
				if w > c {
					continue
				}
				if dp[c-w] <= minusInf {
					continue
				}
				nv := dp[c-w] + optionValue(opt)
				if nv > next[c] {
					next[c] = nv
					ch[c] = int16(oi)
				}
			}
		}
		dp, next = next, dp
	}
	sc.dp, sc.next = dp, next

	// Pick the best value at the smallest capacity achieving it.
	bestC, bestV := 0, int64(minusInf)
	for c := 0; c <= capacity; c++ {
		if dp[c] > bestV {
			bestV = dp[c]
			bestC = c
		}
	}

	// Reconstruct.
	sels := sc.sels[:0]
	c := bestC
	for i := len(cands) - 1; i >= 0; i-- {
		oi := choice[i*cols+c]
		if oi == -2 {
			// Unreachable cells cannot appear on the optimal path.
			panic("core: DP reconstruction hit unreachable state")
		}
		if oi >= 0 {
			sels = append(sels, selection{cand: cands[i], optIdx: int(oi)})
			c -= cands[i].options[oi].degree
		} else {
			sels = append(sels, selection{cand: cands[i], optIdx: -1})
		}
	}
	// Restore input order (purely cosmetic but deterministic).
	for l, r := 0, len(sels)-1; l < r; l, r = l+1, r-1 {
		sels[l], sels[r] = sels[r], sels[l]
	}
	sc.sels = sels
	return sels
}

func noneValue(c *candidate) int64 {
	if c.surviveNone {
		return survivalWeight
	}
	return 0
}

func optionValue(o option) int64 {
	v := int64(1) // progress tie-break
	if o.survive {
		v += survivalWeight
	}
	return v
}
