package core

// This file implements Algorithm 1's group-knapsack dynamic program: per
// request choose at most one option (one of its planned GPU allocations, or
// none), total width ≤ the free GPU capacity, maximizing the number of
// requests that survive to the next round.
//
// Values are encoded as survivors·survivalWeight + progress so that, among
// packings with equal survivor counts, the DP prefers making progress on
// more requests (the work-conserving tie-break; leftover capacity is later
// recycled by elastic scale-up regardless).
//
// Warm start (Config.WarmStart): the full (R+1)×cols value table is kept —
// row i is the optimum over the first i candidates — instead of the usual
// rolling pair of rows. Row i+1 depends only on row i and candidate i's
// *transition profile* (surviveNone plus each option's width and survival
// bit, packed into a uint64 by dpProfile). Row 0 depends only on cols. So
// if the first p candidates of this round have the same profiles as last
// round's at the same column count, rows 0..p and back-pointer rows 0..p-1
// are — by induction — exactly what this solve would recompute, and the DP
// resumes at row p. Between consecutive rounds only requests that ran (or
// arrived, finished, crossed a survival boundary) change their profile, so
// p is typically within a few rows of R and the per-round cost drops from
// O(R·N·|O|) to O(Δ·N·|O|). The resumed solve is bit-identical to a cold
// one; FuzzWarmStart and TestWarmColdEquivalence enforce this.

import "sync"

const survivalWeight = 1 << 20

// maxOptions bounds a candidate's option count so the int16 back-pointers
// below cannot overflow. A minimal-GPU-hour mix yields at most two options,
// so this is purely defensive.
const maxOptions = 1<<15 - 1

// dpParallelMinCols gates strata-parallel row updates: splitting a row
// across goroutines only pays when the capacity axis is wide. Real
// topologies top out at a handful of columns (≤ 9 on an 8-GPU node), so the
// parallel path is exercised by tests that lower this, and by synthetic
// wide-capacity instances.
var dpParallelMinCols = 64

// selection records the DP's decision for one candidate.
type selection struct {
	cand *candidate
	// optIdx indexes cand.options; -1 means "none".
	optIdx int
}

// dpProfile packs everything the DP transition reads from a candidate:
// bit 0 = surviveNone, bits 1-3 = option count (≤ 4: two mix degrees, each
// with at most one cache-assisted variant), then one 15-bit field per option
// (degree<<5 | cacheInterval<<1 | survive; degree ≤ 64 fits 7 bits, interval
// ≤ MaxCacheIntervalCap fits 4). Two candidates with equal profiles induce
// identical row transitions and identical back-pointer rows.
func dpProfile(c *candidate) uint64 {
	p := uint64(len(c.options)) << 1
	if c.surviveNone {
		p |= 1
	}
	for oi, o := range c.options {
		f := uint64(o.degree)<<5 | uint64(o.cacheInterval)<<1
		if o.survive {
			f |= 1
		}
		p |= f << (4 + 15*oi)
	}
	return p
}

// packDP runs the dynamic program over capacity GPUs and reconstructs the
// chosen options via back-pointers. Runtime O(R·N·|O|) cold, O(Δ·N·|O|)
// warm, space O(R·N) — the tractability claim of §4.2.2. The returned slice
// is scratch owned by the scheduler and is valid until the next Plan call.
func (s *Scheduler) packDP(cands []*candidate, capacity int) []selection {
	if capacity < 0 {
		capacity = 0
	}
	const minusInf = -1 << 40
	sc := &s.scratch
	cols := capacity + 1
	R := len(cands)

	// Fingerprint this round's candidate sequence.
	prof := sc.prof[:0]
	for _, cand := range cands {
		if len(cand.options) > maxOptions {
			panic("core: candidate option count overflows DP back-pointers")
		}
		prof = append(prof, dpProfile(cand))
	}
	sc.prof = prof

	// Size the value and back-pointer tables. Growing either re-points the
	// backing array and discards the previous checkpoint, so resume is only
	// attempted when both fit in place.
	grown := false
	if need := (R + 1) * cols; cap(sc.rows) < need {
		sc.rows = make([]int64, need)
		grown = true
	}
	rows := sc.rows[:(R+1)*cols]
	if need := R * cols; cap(sc.choice) < need {
		sc.choice = make([]int16, need)
		grown = true
	}
	choice := sc.choice[:R*cols]

	// Longest candidate prefix whose checkpointed rows are still valid.
	lcp := 0
	if s.cfg.WarmStart && !grown && cols == sc.dpCols {
		max := sc.dpValid
		if max > R {
			max = R
		}
		if max > len(sc.prevProf) {
			max = len(sc.prevProf)
		}
		for lcp < max && prof[lcp] == sc.prevProf[lcp] {
			lcp++
		}
		if lcp < s.cfg.WarmStartMinReuse {
			lcp = 0
		}
	}
	s.warmRows += lcp
	s.coldRows += R - lcp

	if lcp == 0 {
		for c := 0; c < cols; c++ {
			rows[c] = minusInf
		}
		rows[0] = 0
	}

	workers := s.cfg.Workers
	for i := lcp; i < R; i++ {
		cand := cands[i]
		dp := rows[i*cols : (i+1)*cols]
		next := rows[(i+1)*cols : (i+2)*cols]
		ch := choice[i*cols : (i+1)*cols]
		if workers > 1 && cols >= dpParallelMinCols {
			dpRowParallel(cand, dp, next, ch, workers)
		} else {
			dpRow(cand, dp, next, ch, 0, cols)
		}
	}
	sc.dpCols = cols
	sc.dpValid = R
	sc.prof, sc.prevProf = sc.prevProf[:0], sc.prof

	// Pick the best value at the smallest capacity achieving it.
	final := rows[R*cols : (R+1)*cols]
	bestC, bestV := 0, int64(minusInf)
	for c := 0; c <= capacity; c++ {
		if final[c] > bestV {
			bestV = final[c]
			bestC = c
		}
	}

	// Reconstruct.
	sels := sc.sels[:0]
	c := bestC
	for i := R - 1; i >= 0; i-- {
		oi := choice[i*cols+c]
		if oi == -2 {
			// Unreachable cells cannot appear on the optimal path.
			panic("core: DP reconstruction hit unreachable state")
		}
		if oi >= 0 {
			sels = append(sels, selection{cand: cands[i], optIdx: int(oi)})
			c -= cands[i].options[oi].degree
		} else {
			sels = append(sels, selection{cand: cands[i], optIdx: -1})
		}
	}
	// Restore input order (purely cosmetic but deterministic).
	for l, r := 0, len(sels)-1; l < r; l, r = l+1, r-1 {
		sels[l], sels[r] = sels[r], sels[l]
	}
	sc.sels = sels
	return sels
}

// dpRow computes next[lo:hi] and ch[lo:hi] from dp — one candidate's
// transition over a column range. Each column depends only on the previous
// row, so disjoint ranges of one row can run concurrently (dpRowParallel)
// and produce bytes identical to the sequential sweep.
func dpRow(cand *candidate, dp, next []int64, ch []int16, lo, hi int) {
	const minusInf = -1 << 40
	for c := lo; c < hi; c++ {
		// Option "none": width 0.
		v := dp[c]
		ch[c] = -2
		if v > minusInf {
			next[c] = v + noneValue(cand)
			ch[c] = -1
		} else {
			next[c] = minusInf
		}
		for oi, opt := range cand.options {
			w := opt.degree
			if w > c {
				continue
			}
			if dp[c-w] <= minusInf {
				continue
			}
			nv := dp[c-w] + optionValue(opt)
			if nv > next[c] {
				next[c] = nv
				ch[c] = int16(oi)
			}
		}
	}
}

// dpRowParallel splits one row update into contiguous column strata, one per
// worker. Workers write disjoint segments of next/ch and only read the
// (frozen) previous row, so the merge is trivially deterministic.
func dpRowParallel(cand *candidate, dp, next []int64, ch []int16, workers int) {
	cols := len(dp)
	if workers > cols {
		workers = cols
	}
	var wg sync.WaitGroup
	chunk := (cols + workers - 1) / workers
	for lo := 0; lo < cols; lo += chunk {
		hi := lo + chunk
		if hi > cols {
			hi = cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dpRow(cand, dp, next, ch, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func noneValue(c *candidate) int64 {
	if c.surviveNone {
		return survivalWeight
	}
	return 0
}

func optionValue(o option) int64 {
	v := int64(1) // progress tie-break
	if o.survive {
		v += survivalWeight
	}
	return v
}
