package core

// This file implements Algorithm 1's group-knapsack dynamic program: per
// request choose at most one option (one of its planned GPU allocations, or
// none), total width ≤ the free GPU capacity, maximizing the number of
// requests that survive to the next round.
//
// Values are encoded as survivors·survivalWeight + progress so that, among
// packings with equal survivor counts, the DP prefers making progress on
// more requests (the work-conserving tie-break; leftover capacity is later
// recycled by elastic scale-up regardless).

const survivalWeight = 1 << 20

// selection records the DP's decision for one candidate.
type selection struct {
	cand *candidate
	// optIdx indexes cand.options; -1 means "none".
	optIdx int
}

// packDP runs the dynamic program over capacity GPUs and reconstructs the
// chosen options via back-pointers. Runtime O(R·N·|O|), space O(R·N) —
// the tractability claim of §4.2.2.
func (s *Scheduler) packDP(cands []*candidate, capacity int) []selection {
	if capacity < 0 {
		capacity = 0
	}
	const minusInf = -1 << 40
	dp := make([]int64, capacity+1)
	for c := range dp {
		dp[c] = minusInf
	}
	dp[0] = 0
	// choice[i][c] = option index picked for candidate i when the first
	// i+1 candidates consume exactly c GPUs (-1 = none, -2 = unreachable).
	choice := make([][]int8, len(cands))

	for i, cand := range cands {
		next := make([]int64, capacity+1)
		ch := make([]int8, capacity+1)
		for c := 0; c <= capacity; c++ {
			// Option "none": width 0.
			v := dp[c]
			ch[c] = -2
			if v > minusInf {
				nv := v + noneValue(cand)
				next[c] = nv
				ch[c] = -1
			} else {
				next[c] = minusInf
			}
			for oi, opt := range cand.options {
				w := opt.degree
				if w > c {
					continue
				}
				if dp[c-w] <= minusInf {
					continue
				}
				nv := dp[c-w] + optionValue(opt)
				if nv > next[c] {
					next[c] = nv
					ch[c] = int8(oi)
				}
			}
		}
		dp = next
		choice[i] = ch
	}

	// Pick the best value at the smallest capacity achieving it.
	bestC, bestV := 0, int64(minusInf)
	for c := 0; c <= capacity; c++ {
		if dp[c] > bestV {
			bestV = dp[c]
			bestC = c
		}
	}

	// Reconstruct.
	sels := make([]selection, 0, len(cands))
	c := bestC
	for i := len(cands) - 1; i >= 0; i-- {
		oi := choice[i][c]
		if oi == -2 {
			// Unreachable cells cannot appear on the optimal path.
			panic("core: DP reconstruction hit unreachable state")
		}
		if oi >= 0 {
			sels = append(sels, selection{cand: cands[i], optIdx: int(oi)})
			c -= cands[i].options[oi].degree
		} else {
			sels = append(sels, selection{cand: cands[i], optIdx: -1})
		}
	}
	// Restore input order (purely cosmetic but deterministic).
	for l, r := 0, len(sels)-1; l < r; l, r = l+1, r-1 {
		sels[l], sels[r] = sels[r], sels[l]
	}
	return sels
}

func noneValue(c *candidate) int64 {
	if c.surviveNone {
		return survivalWeight
	}
	return 0
}

func optionValue(o option) int64 {
	v := int64(1) // progress tie-break
	if o.survive {
		v += survivalWeight
	}
	return v
}
