package core

import (
	"reflect"
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

func testClonePlan(plan []sched.Assignment) []sched.Assignment {
	out := make([]sched.Assignment, len(plan))
	for i, a := range plan {
		a.Requests = append([]workload.RequestID(nil), a.Requests...)
		out[i] = a
	}
	return out
}

// randCtx builds a randomized planning snapshot on the 8-GPU test topology.
func randCtx(rng *stats.RNG, n int) *sched.PlanContext {
	resList := model.StandardResolutions()
	now := time.Duration(rng.Intn(100000)) * time.Millisecond
	pending := make([]*sched.RequestState, 0, n)
	for i := 0; i < n; i++ {
		arrival := now - time.Duration(rng.Intn(4000))*time.Millisecond
		if arrival < 0 {
			arrival = 0
		}
		st := mkState(i+1, resList[rng.Intn(len(resList))], 1+rng.Intn(50),
			arrival, time.Duration(500+rng.Intn(8000))*time.Millisecond)
		if rng.Intn(4) == 0 {
			st.LastGroup = simgpu.CanonicalGroup(rng.Intn(4), 2)
		}
		pending = append(pending, st)
	}
	free := testTopo.AllMask()
	for g := 0; g < 8; g++ {
		if rng.Intn(4) == 0 {
			free = free.Without(simgpu.MaskOf(simgpu.GPUID(g)))
		}
	}
	return mkCtx(now, free, pending...)
}

// TestParallelPlanEquivalence: Workers>1 planning (parallel mix solves and
// strata-parallel DP rows) must be bit-identical to the sequential solve.
// The gate thresholds are lowered so the parallel paths run on instances
// small enough for a unit test.
func TestParallelPlanEquivalence(t *testing.T) {
	oldActive, oldCols := parallelMinActive, dpParallelMinCols
	parallelMinActive, dpParallelMinCols = 1, 2
	defer func() { parallelMinActive, dpParallelMinCols = oldActive, oldCols }()

	rng := stats.NewRNG(17)
	for trial := 0; trial < 60; trial++ {
		ctx := randCtx(rng, 1+rng.Intn(24))
		seq := newTestScheduler(t)
		par := newTestScheduler(t, func(c *Config) { c.Workers = 4 })
		sp := testClonePlan(seq.Plan(ctx))
		pp := testClonePlan(par.Plan(ctx))
		if !reflect.DeepEqual(sp, pp) {
			t.Fatalf("trial %d: parallel plan diverges from sequential:\n seq: %+v\n par: %+v", trial, sp, pp)
		}
	}
}

// TestWarmReplayHit: an identical snapshot must be answered from the Layer-A
// cache — same plan, one replay hit — and any input perturbation must miss.
func TestWarmReplayHit(t *testing.T) {
	s := newTestScheduler(t)
	st := mkState(1, model.Res1024, 50, 0, 5*time.Second)
	ctx := mkCtx(0, testTopo.AllMask(), st)

	first := testClonePlan(s.Plan(ctx))
	second := s.Plan(ctx)
	if s.Warm().ReplayHits != 1 {
		t.Fatalf("ReplayHits = %d, want 1", s.Warm().ReplayHits)
	}
	if !reflect.DeepEqual(first, testClonePlan(second)) {
		t.Fatalf("replayed plan differs:\n first: %+v\nsecond: %+v", first, second)
	}

	st.Remaining--
	s.Plan(ctx)
	if s.Warm().ReplayHits != 1 {
		t.Fatal("perturbed snapshot must not hit the replay cache")
	}
}

// TestWarmReplayGatedOnPreservation: with random placement the cache must
// stay cold — a skipped solve would skip RNG draws and desynchronize every
// later round from a cold-planned run.
func TestWarmReplayGatedOnPreservation(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.PlacementPreservation = false })
	ctx := mkCtx(0, testTopo.AllMask(), mkState(1, model.Res1024, 50, 0, 5*time.Second))
	s.Plan(ctx)
	s.Plan(ctx)
	if s.Warm().ReplayHits != 0 {
		t.Fatalf("ReplayHits = %d with preservation off, want 0", s.Warm().ReplayHits)
	}
}

// TestWarmStartResumesDPRows: across rounds where only part of the pending
// set changes, the DP must reuse checkpointed rows.
func TestWarmStartResumesDPRows(t *testing.T) {
	s := newTestScheduler(t)
	var pending []*sched.RequestState
	for i := 0; i < 16; i++ {
		pending = append(pending, mkState(i+1, model.Res512, 50, 0, 30*time.Second))
	}
	ctx := mkCtx(0, testTopo.AllMask(), pending...)
	s.Plan(ctx)
	base := s.Warm().ResumedRows

	// Shrink only the LAST request's remaining steps: the candidate prefix
	// before it is unchanged, so its rows must be resumed, not recomputed.
	pending[len(pending)-1].Remaining = 10
	s.Plan(ctx)
	if got := s.Warm().ResumedRows - base; got == 0 {
		t.Fatal("DP resumed no rows across a single-request change")
	}
}

// TestWarmStartDisabledSolvesCold: with the knob off, no replay hits and no
// resumed rows, ever.
func TestWarmStartDisabledSolvesCold(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.WarmStart = false })
	ctx := mkCtx(0, testTopo.AllMask(), mkState(1, model.Res1024, 50, 0, 5*time.Second))
	s.Plan(ctx)
	s.Plan(ctx)
	w := s.Warm()
	if w.ReplayHits != 0 || w.ResumedRows != 0 {
		t.Fatalf("WarmStart=false must solve cold, got %+v", w)
	}
}

// TestMixBudgetFloors: DeadlineBucket rounds budgets down (toward -∞, not
// toward zero) so quantized planning is strictly conservative.
func TestMixBudgetFloors(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.DeadlineBucket = 100 * time.Millisecond })
	cases := []struct{ in, want time.Duration }{
		{250 * time.Millisecond, 200 * time.Millisecond},
		{200 * time.Millisecond, 200 * time.Millisecond},
		{99 * time.Millisecond, 0},
		{-1 * time.Millisecond, -100 * time.Millisecond},
		{-100 * time.Millisecond, -100 * time.Millisecond},
		{-150 * time.Millisecond, -200 * time.Millisecond},
	}
	for _, c := range cases {
		if got := s.mixBudget(c.in); got != c.want {
			t.Fatalf("mixBudget(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if s0 := newTestScheduler(t); s0.mixBudget(123456) != 123456 {
		t.Fatal("DeadlineBucket=0 must pass budgets through exactly")
	}
}

// TestDeadlineBucketPlansStayValid: bucketed budgets change which mixes are
// chosen but never the plan's structural validity.
func TestDeadlineBucketPlansStayValid(t *testing.T) {
	rng := stats.NewRNG(23)
	for trial := 0; trial < 40; trial++ {
		ctx := randCtx(rng, 1+rng.Intn(12))
		s := newTestScheduler(t, func(c *Config) { c.DeadlineBucket = 250 * time.Millisecond })
		if err := sched.ValidatePlan(ctx, s.Plan(ctx)); err != nil {
			t.Fatalf("trial %d: bucketed plan invalid: %v", trial, err)
		}
	}
}

// TestZeroOptionPruning: option-less candidates are excluded from the DP
// without changing the emitted plan.
func TestZeroOptionPruning(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 40; trial++ {
		ctx := randCtx(rng, 1+rng.Intn(12))
		s := newTestScheduler(t)
		plan := testClonePlan(s.Plan(ctx))
		if s.Warm().PrunedCandidates > 0 {
			// Re-plan the identical snapshot cold and compare: pruning must
			// be invisible in the output.
			cold := newTestScheduler(t, func(c *Config) { c.WarmStart = false })
			if !reflect.DeepEqual(plan, testClonePlan(cold.Plan(ctx))) {
				t.Fatalf("trial %d: pruning changed the plan", trial)
			}
		}
	}
}

// TestPlanZeroAllocSteadyState is the planner-side allocation guard: once
// scratch reaches its high-water mark, Plan must not allocate — neither on
// the Layer-A replay path nor on a full cold re-solve.
func TestPlanZeroAllocSteadyState(t *testing.T) {
	resList := model.StandardResolutions()
	mkPending := func() []*sched.RequestState {
		var pending []*sched.RequestState
		for i := 0; i < 64; i++ {
			pending = append(pending, mkState(i+1, resList[i%len(resList)], 50, 0, 5*time.Second))
		}
		return pending
	}

	t.Run("replay", func(t *testing.T) {
		s := newTestScheduler(t)
		ctx := mkCtx(0, testTopo.AllMask(), mkPending()...)
		s.Plan(ctx) // warm the scratch + cache
		if avg := testing.AllocsPerRun(100, func() { s.Plan(ctx) }); avg != 0 {
			t.Fatalf("replayed Plan allocates %.1f times per call, want 0", avg)
		}
	})

	t.Run("cold", func(t *testing.T) {
		s := newTestScheduler(t, func(c *Config) { c.WarmStart = false })
		ctx := mkCtx(0, testTopo.AllMask(), mkPending()...)
		s.Plan(ctx)
		s.Plan(ctx)
		if avg := testing.AllocsPerRun(100, func() { s.Plan(ctx) }); avg != 0 {
			t.Fatalf("cold Plan allocates %.1f times per call, want 0", avg)
		}
	})

	// Step-cache dimension: every other request is reshaped so no plain
	// option survives but a cache-assisted tail clears the deadline, and
	// warm start is off so every call rebuilds candidates through the full
	// rescue path (per-option cache intervals, budget clipping,
	// cacheFeasibleAt). Cached variants must alias the candidate's fixed
	// option buffer — the knob may not reintroduce allocation.
	t.Run("cached", func(t *testing.T) {
		s := newTestScheduler(t, func(c *Config) {
			c.WarmStart = false
			c.MaxCacheInterval = 4
		})
		pending := mkPending()
		for i, st := range pending {
			if i%2 == 0 {
				continue
			}
			reshapeRescue(st, 4)
		}
		ctx := mkCtx(0, testTopo.AllMask(), pending...)
		s.Plan(ctx)
		s.Plan(ctx)
		rescued := false
		for _, a := range s.Plan(ctx) {
			if a.CacheInterval > 1 {
				rescued = true
				break
			}
		}
		if !rescued {
			t.Fatal("no cache-assisted assignment planned; the guard is not exercising the rescue path")
		}
		if avg := testing.AllocsPerRun(100, func() { s.Plan(ctx) }); avg != 0 {
			t.Fatalf("cache-enabled Plan allocates %.1f times per call, want 0", avg)
		}
	})
}

// reshapeRescue makes st deadline-infeasible at interval 1 but rescuable at
// maxInterval within a budget of half its steps: 20 of 200 steps computed,
// the SLO placed between the best cached projection (plus ample rescue
// margin) and the plain-service lower bound.
func reshapeRescue(st *sched.RequestState, maxInterval int) {
	const steps, remaining, budget = 200, 180, 100
	tmin, _ := testProf.MinStepTime(st.Req.Res)
	done := steps - remaining
	start := done
	if start < sched.CacheProtectedSteps {
		start = sched.CacheProtectedSteps
	}
	a := sched.ApproxSteps(steps-sched.CacheProtectedSteps-start, maxInterval)
	if a > budget {
		a = budget
	}
	gamma := testProf.CachedStepRelCost()
	bound := time.Duration(remaining-a)*tmin +
		time.Duration(float64(a)*gamma*float64(tmin))
	st.Req.Steps = steps
	st.Req.SLO = bound + 300*time.Millisecond
	st.Req.QualityBudget = budget
	st.Remaining = remaining
}
