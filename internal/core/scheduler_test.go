package core

import (
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

func mkCtx(now time.Duration, free simgpu.Mask, pending ...*sched.RequestState) *sched.PlanContext {
	return &sched.PlanContext{
		Now:     now,
		Free:    free,
		Pending: pending,
		Profile: testProf,
		Topo:    testTopo,
	}
}

func TestRoundDurationHoldsGranularitySteps(t *testing.T) {
	s := newTestScheduler(t)
	ref, _ := testProf.MinStepTime(model.Res2048)
	want := 5*ref + s.cfg.SchedOverhead
	if s.RoundDuration() != want {
		t.Fatalf("τ = %v, want %v (5 reference steps + overhead)", s.RoundDuration(), want)
	}
	// The usable window fits exactly 5 reference steps.
	if q := int(s.window() / ref); q != 5 {
		t.Fatalf("window holds %d reference steps, want 5", q)
	}
}

func TestRoundDurationCapped(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) {
		c.StepGranularity = 100
		c.MaxRound = 700 * time.Millisecond
	})
	if s.RoundDuration() != 700*time.Millisecond {
		t.Fatalf("τ = %v, want the 700ms cap", s.RoundDuration())
	}
}

func TestRoundDurationAtLeastOneRefStep(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.StepGranularity = 1 })
	ref, _ := testProf.MinStepTime(model.Res2048)
	if s.window() < ref {
		t.Fatalf("window %v cannot hold one reference step %v", s.window(), ref)
	}
}

func TestPlanValidAgainstOracle(t *testing.T) {
	s := newTestScheduler(t)
	ctx := mkCtx(0, testTopo.AllMask(),
		mkState(1, model.Res256, 50, 0, 1500*time.Millisecond),
		mkState(2, model.Res1024, 50, 0, 3*time.Second),
		mkState(3, model.Res2048, 50, 0, 5*time.Second),
	)
	plan := s.Plan(ctx)
	if err := sched.ValidatePlan(ctx, plan); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if len(plan) == 0 {
		t.Fatal("plan should schedule something on an idle cluster")
	}
}

// TestPlanRandomizedAlwaysValid fuzzes Plan against ValidatePlan.
func TestPlanRandomizedAlwaysValid(t *testing.T) {
	rng := stats.NewRNG(4)
	resList := model.StandardResolutions()
	for trial := 0; trial < 200; trial++ {
		s := newTestScheduler(t, func(c *Config) { c.Seed = uint64(trial + 1) })
		now := time.Duration(rng.Intn(100000)) * time.Millisecond
		var pending []*sched.RequestState
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			res := resList[rng.Intn(len(resList))]
			remaining := 1 + rng.Intn(50)
			slo := time.Duration(500+rng.Intn(8000)) * time.Millisecond
			arrival := now - time.Duration(rng.Intn(4000))*time.Millisecond
			if arrival < 0 {
				arrival = 0
			}
			st := mkState(i, res, remaining, arrival, slo)
			if rng.Intn(4) == 0 {
				st.LastGroup = simgpu.CanonicalGroup(rng.Intn(4), 2)
			}
			pending = append(pending, st)
		}
		// Random busy subset.
		free := testTopo.AllMask()
		for g := 0; g < 8; g++ {
			if rng.Intn(4) == 0 {
				free = free.Without(simgpu.MaskOf(simgpu.GPUID(g)))
			}
		}
		ctx := mkCtx(now, free, pending...)
		plan := s.Plan(ctx)
		if err := sched.ValidatePlan(ctx, plan); err != nil {
			t.Fatalf("trial %d: %v (plan %+v)", trial, err, plan)
		}
	}
}

func TestPlacementPreservationReusesGroup(t *testing.T) {
	s := newTestScheduler(t)
	st := mkState(1, model.Res1024, 30, 0, 3*time.Second)
	st.LastGroup = simgpu.MaskOf(4, 5, 6, 7)
	ctx := mkCtx(0, testTopo.AllMask(), st)
	plan := s.Plan(ctx)
	if len(plan) == 0 {
		t.Fatal("no plan")
	}
	if !plan[0].Group.Overlaps(st.LastGroup) {
		t.Fatalf("placement ignored previous group: got %v, prev %v", plan[0].Group, st.LastGroup)
	}
}

func TestElasticScaleUpFillsIdleCluster(t *testing.T) {
	s := newTestScheduler(t)
	// A single 1024px request with slack would plan at a low degree; with
	// the whole cluster idle, elastic scale-up should grant more GPUs.
	st := mkState(1, model.Res1024, 50, 0, 3*time.Second)
	ctx := mkCtx(0, testTopo.AllMask(), st)
	plan := s.Plan(ctx)
	if len(plan) != 1 {
		t.Fatalf("plan size %d", len(plan))
	}
	if plan[0].Group.Count() != 8 {
		t.Fatalf("elastic scale-up should grow the lone request to 8 GPUs, got %d", plan[0].Group.Count())
	}
}

func TestElasticScaleUpDisabled(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.ElasticScaleUp = false })
	st := mkState(1, model.Res1024, 50, 0, 30*time.Second) // loose deadline
	ctx := mkCtx(0, testTopo.AllMask(), st)
	plan := s.Plan(ctx)
	if len(plan) != 1 {
		t.Fatalf("plan size %d", len(plan))
	}
	if plan[0].Group.Count() > 2 {
		t.Fatalf("without elastic scale-up a relaxed request should stay small, got %d GPUs",
			plan[0].Group.Count())
	}
}

func TestElasticNeverScalesPastBenefit(t *testing.T) {
	s := newTestScheduler(t)
	// 256px per-step time is comm-bound past SP=4; scale-up must stop at
	// the latency-optimal degree.
	st := mkState(1, model.Res256, 50, 0, 1500*time.Millisecond)
	ctx := mkCtx(0, testTopo.AllMask(), st)
	plan := s.Plan(ctx)
	if len(plan) != 1 {
		t.Fatalf("plan size %d", len(plan))
	}
	bestK := testProf.BestLatencyDegree(model.Res256)
	if got := plan[0].Group.Count(); got > bestK {
		t.Fatalf("scaled 256px to %d GPUs although T(k) stops improving at %d", got, bestK)
	}
}

func TestSelectiveBatchingMergesSmall(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.ElasticScaleUp = false })
	// Five 256px requests with slack: batching should merge some of them
	// onto shared GPUs.
	var pending []*sched.RequestState
	for i := 0; i < 5; i++ {
		pending = append(pending, mkState(i, model.Res256, 50, 0, 4*time.Second))
	}
	ctx := mkCtx(0, testTopo.AllMask(), pending...)
	plan := s.Plan(ctx)
	if err := sched.ValidatePlan(ctx, plan); err != nil {
		t.Fatal(err)
	}
	batched := false
	for _, a := range plan {
		if len(a.Requests) > 1 {
			batched = true
			if a.Group.Count() != 1 {
				t.Fatalf("batches run at SP=1, got %v", a.Group)
			}
		}
	}
	if !batched {
		t.Fatal("no batch formed among five slack 256px requests")
	}
}

func TestSelectiveBatchingRespectsSLO(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.ElasticScaleUp = false })
	// Requests so tight that batching (which slows per-request progress)
	// would compromise deadlines must stay unbatched.
	var pending []*sched.RequestState
	for i := 0; i < 3; i++ {
		pending = append(pending, mkState(i, model.Res256, 50, 0, 1000*time.Millisecond))
	}
	ctx := mkCtx(0, testTopo.AllMask(), pending...)
	plan := s.Plan(ctx)
	for _, a := range plan {
		if len(a.Requests) > 1 {
			// Verify every member still survives per the planner's own
			// bound; recompute it here.
			tb := testProf.StepTimeBatch(model.Res256, 1, profiledBatch(len(a.Requests)))
			q := int(s.window() / tb)
			for _, id := range a.Requests {
				var st *sched.RequestState
				for _, p := range pending {
					if p.Req.ID == id {
						st = p
					}
				}
				rem := st.Remaining - q
				if rem < 0 {
					rem = 0
				}
				tmin, _ := testProf.MinStepTime(model.Res256)
				if s.RoundDuration()+time.Duration(rem)*tmin > st.Deadline() {
					t.Fatal("batching compromised a member's deadline")
				}
			}
		}
	}
}

func TestBatchingDisabledByConfig(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) {
		c.SelectiveBatching = false
		c.ElasticScaleUp = false
	})
	var pending []*sched.RequestState
	for i := 0; i < 5; i++ {
		pending = append(pending, mkState(i, model.Res256, 50, 0, 4*time.Second))
	}
	ctx := mkCtx(0, testTopo.AllMask(), pending...)
	for _, a := range s.Plan(ctx) {
		if len(a.Requests) > 1 {
			t.Fatal("batching disabled but a batch formed")
		}
	}
}

func TestBestEffortLaneServesLateRequests(t *testing.T) {
	s := newTestScheduler(t)
	// Deadline already passed.
	late := mkState(1, model.Res512, 50, 0, time.Millisecond)
	ctx := mkCtx(time.Second, testTopo.AllMask(), late)
	plan := s.Plan(ctx)
	if len(plan) == 0 {
		t.Fatal("late request should still get best-effort service")
	}
	if !plan[0].BestEffort {
		t.Fatal("late request's assignment should be flagged best-effort")
	}
}

func TestBestEffortLaneCapped(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) {
		c.BestEffortGPUs = 2
		c.ElasticScaleUp = false
	})
	var late []*sched.RequestState
	for i := 0; i < 6; i++ {
		late = append(late, mkState(i, model.Res512, 50, 0, time.Millisecond))
	}
	ctx := mkCtx(time.Second, testTopo.AllMask(), late...)
	plan := s.Plan(ctx)
	used := 0
	for _, a := range plan {
		if a.BestEffort {
			used += a.Group.Count()
		}
	}
	if used > 2 {
		t.Fatalf("best-effort lane used %d GPUs, cap is 2", used)
	}
}

func TestBestEffortLaneDisabled(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.BestEffortLane = false })
	late := mkState(1, model.Res512, 50, 0, time.Millisecond)
	ctx := mkCtx(time.Second, testTopo.AllMask(), late)
	if plan := s.Plan(ctx); len(plan) != 0 {
		t.Fatal("late request served although the lane is disabled")
	}
}

func TestLateMultiRoundBlockNotAligned(t *testing.T) {
	s := newTestScheduler(t)
	// 2048px at SP=1 cannot finish a step within a round; the lane must
	// mark the block as spanning rounds.
	late := mkState(1, model.Res2048, 50, 0, time.Millisecond)
	ctx := mkCtx(time.Second, testTopo.AllMask(), late)
	plan := s.Plan(ctx)
	var lane *sched.Assignment
	for i := range plan {
		if plan[i].BestEffort && plan[i].Group.Count() == 1 {
			lane = &plan[i]
		}
	}
	// Elastic scale-up may have grown it; disable to pin the behavior.
	if lane == nil {
		s2 := newTestScheduler(t, func(c *Config) { c.ElasticScaleUp = false })
		plan = s2.Plan(ctx)
		for i := range plan {
			if plan[i].BestEffort {
				lane = &plan[i]
			}
		}
	}
	if lane == nil {
		t.Fatal("no best-effort assignment")
	}
	if lane.Group.Count() == 1 && lane.RoundAligned {
		t.Fatal("single-GPU 2048px block cannot be round-aligned")
	}
}

func TestPlacementOffUsesArbitraryGroups(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.PlacementPreservation = false })
	st := mkState(1, model.Res1024, 50, 0, 3*time.Second)
	st.LastGroup = simgpu.MaskOf(0, 1, 2, 3)
	seenDifferent := false
	for i := 0; i < 20; i++ {
		ctx := mkCtx(0, testTopo.AllMask(), st.Clone())
		plan := s.Plan(ctx)
		if len(plan) == 0 {
			t.Fatal("no plan")
		}
		if plan[0].Group != st.LastGroup {
			seenDifferent = true
		}
	}
	if !seenDifferent {
		t.Fatal("random placement never deviated from the previous group in 20 tries")
	}
}

func TestPlanLatencyIsMilliseconds(t *testing.T) {
	s := newTestScheduler(t)
	var pending []*sched.RequestState
	resList := model.StandardResolutions()
	for i := 0; i < 64; i++ {
		pending = append(pending, mkState(i, resList[i%4], 50, 0, 5*time.Second))
	}
	ctx := mkCtx(0, testTopo.AllMask(), pending...)
	s.Plan(ctx)
	if got := s.LastPlanLatency(); got > 10*time.Millisecond {
		t.Fatalf("plan latency %v exceeds the paper's 10ms claim for a 64-deep queue", got)
	}
}

func TestSchedulerInterfaceMetadata(t *testing.T) {
	s := newTestScheduler(t)
	if s.Name() != "TetriServe" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.RoundDuration() <= 0 {
		t.Fatal("TetriServe must be round-based")
	}
	if s.Overhead() != s.cfg.SchedOverhead {
		t.Fatal("Overhead accessor wrong")
	}
	if !s.EagerAdmission() {
		t.Fatal("eager admission should default on")
	}
	if s.Rounds() == 0 {
		// Plan once to bump the counter.
		s.Plan(mkCtx(0, testTopo.AllMask(), mkState(1, model.Res256, 5, 0, time.Second)))
		if s.Rounds() != 1 {
			t.Fatal("round counter not incremented")
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	s := NewScheduler(testProf, testTopo, Config{})
	if s.cfg.StepGranularity != 5 || s.cfg.MaxBatch != 4 || s.cfg.BestEffortGPUs != 2 {
		t.Fatalf("zero config not normalized: %+v", s.cfg)
	}
	_ = workload.RequestID(0)
}

// TestPlacementFailureCounter: a fragmented free set that cannot host any
// aligned group for the DP's choices increments the diagnostic counter
// rather than producing an invalid plan.
func TestPlacementFailureCounter(t *testing.T) {
	s := newTestScheduler(t, func(c *Config) { c.ElasticScaleUp = false })
	// Only odd GPUs free: width-2+ placements must fail; width-1 succeeds.
	free := simgpu.MaskOf(1, 3, 5, 7)
	st := mkState(1, model.Res2048, 50, 0, 5*time.Second) // needs SP=8
	plan := s.Plan(mkCtx(0, free, st))
	if err := sched.ValidatePlan(mkCtx(0, free, st), plan); err != nil {
		t.Fatal(err)
	}
	for _, a := range plan {
		if a.Group&^free != 0 {
			t.Fatal("plan used busy GPUs")
		}
	}
}

// TestPlanEmptyPendingReturnsNothing guards the no-work fast path.
func TestPlanEmptyPendingReturnsNothing(t *testing.T) {
	s := newTestScheduler(t)
	if plan := s.Plan(mkCtx(0, testTopo.AllMask())); len(plan) != 0 {
		t.Fatalf("plan from empty queue: %+v", plan)
	}
}
