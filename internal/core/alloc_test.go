package core

import (
	"testing"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

var (
	testTopo = simgpu.H100x8()
	testProf = costmodel.BuildProfile(
		costmodel.NewEstimator(model.FLUX(), testTopo), costmodel.ProfilerConfig{})
)

func newTestScheduler(t *testing.T, mutate ...func(*Config)) *Scheduler {
	t.Helper()
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	return NewScheduler(testProf, testTopo, cfg)
}

func mkState(id int, res model.Resolution, remaining int, arrival, slo time.Duration) *sched.RequestState {
	return &sched.RequestState{
		Req: &workload.Request{
			ID:      workload.RequestID(id),
			Res:     res,
			Steps:   remaining,
			Arrival: arrival,
			SLO:     slo,
		},
		Remaining: remaining,
	}
}

// buildCand wraps the scratch-slot buildCandidate API in the old
// allocate-and-return shape for test convenience.
func buildCand(s *Scheduler, now, tNext time.Duration, st *sched.RequestState) *candidate {
	c := new(candidate)
	if !s.buildCandidate(testProf, now, tNext, st, c) {
		return nil
	}
	return c
}

// mixTotalTime sums the plan's execution time at the per-degree effective
// (round-quantized) step times the scheduler plans with.
func mixTotalTime(s *Scheduler, mix []mixEntry) time.Duration {
	total := time.Duration(0)
	for _, e := range mix {
		total += time.Duration(e.planSteps) * e.stepTime
	}
	return total
}

func mixSteps(mix []mixEntry) int {
	n := 0
	for _, e := range mix {
		n += e.planSteps
	}
	return n
}

func mixGPUSeconds(mix []mixEntry) float64 {
	g := 0.0
	for _, e := range mix {
		g += float64(e.degree) * float64(e.planSteps) * e.stepTime.Seconds()
	}
	return g
}

func TestMixCoversAllSteps(t *testing.T) {
	s := newTestScheduler(t)
	for _, res := range model.StandardResolutions() {
		for _, budget := range []time.Duration{2 * time.Second, 5 * time.Second, 20 * time.Second} {
			mix := s.minGPUHourMix(testProf, res, 50, budget)
			if mixSteps(mix) != 50 {
				t.Fatalf("%v budget %v: mix covers %d steps, want 50", res, budget, mixSteps(mix))
			}
			if len(mix) > 2 {
				t.Fatalf("mix uses %d degrees; the optimum needs at most two", len(mix))
			}
		}
	}
}

func TestMixMeetsBudgetWhenFeasible(t *testing.T) {
	s := newTestScheduler(t)
	// 1024px, 50 steps: feasible within 3s only at degree ≥ 4 (or a mix).
	mix := s.minGPUHourMix(testProf, model.Res1024, 50, 3*time.Second)
	if got := mixTotalTime(s, mix); got > 3*time.Second {
		t.Fatalf("mix misses the budget: %v > 3s (mix %+v)", got, mix)
	}
}

func TestMixIsGPUHourMinimal(t *testing.T) {
	s := newTestScheduler(t)
	// Brute-force over all (x steps at kA, rest at kB) splits and compare.
	res := model.Res1024
	steps := 50
	budget := 3 * time.Second
	mix := s.minGPUHourMix(testProf, res, steps, budget)
	got := mixGPUSeconds(mix)

	window := s.window()
	eff := map[int]time.Duration{}
	for _, k := range testProf.Degrees() {
		t0 := testProf.StepTime(res, k)
		q := int(window / t0)
		if q > 0 {
			eff[k] = window / time.Duration(q)
		}
	}
	best := -1.0
	for kA, tA := range eff {
		for kB, tB := range eff {
			for x := 0; x <= steps; x++ {
				total := time.Duration(x)*tA + time.Duration(steps-x)*tB
				if total > budget {
					continue
				}
				cost := float64(x)*float64(kA)*tA.Seconds() + float64(steps-x)*float64(kB)*tB.Seconds()
				if best < 0 || cost < best {
					best = cost
				}
			}
		}
	}
	if best < 0 {
		t.Fatal("brute force found no feasible plan but the scheduler did")
	}
	if got > best*1.0001 {
		t.Fatalf("mix GPU-seconds %.4f exceeds brute-force optimum %.4f", got, best)
	}
}

func TestMixPrefersCheapDegreesWithSlack(t *testing.T) {
	s := newTestScheduler(t)
	// With a huge budget, 256px should run entirely at SP=1 (cheapest).
	mix := s.minGPUHourMix(testProf, model.Res256, 50, time.Minute)
	if len(mix) != 1 || mix[0].degree != 1 {
		t.Fatalf("with slack the mix should be all-SP1: %+v", mix)
	}
}

func TestMixScalesUpUnderPressure(t *testing.T) {
	s := newTestScheduler(t)
	loose := s.minGPUHourMix(testProf, model.Res1024, 50, 30*time.Second)
	tight := s.minGPUHourMix(testProf, model.Res1024, 50, 2*time.Second)
	maxDeg := func(m []mixEntry) int {
		d := 0
		for _, e := range m {
			if e.degree > d {
				d = e.degree
			}
		}
		return d
	}
	if maxDeg(tight) <= maxDeg(loose) {
		t.Fatalf("tighter budgets need higher degrees: tight %+v vs loose %+v", tight, loose)
	}
}

func TestMixLowDegreeFirst(t *testing.T) {
	s := newTestScheduler(t)
	mix := s.minGPUHourMix(testProf, model.Res1024, 50, 2800*time.Millisecond)
	for i := 1; i < len(mix); i++ {
		if mix[i].degree <= mix[i-1].degree {
			t.Fatalf("mix should be ordered low degree first (Figure 6): %+v", mix)
		}
	}
}

func TestMixInfeasibleFallsBackToFastest(t *testing.T) {
	s := newTestScheduler(t)
	mix := s.minGPUHourMix(testProf, model.Res2048, 50, time.Millisecond)
	if len(mix) != 1 {
		t.Fatalf("fallback should be single degree: %+v", mix)
	}
	// Fastest usable degree for 2048px is 8.
	if mix[0].degree != 8 {
		t.Fatalf("fallback degree = %d, want 8", mix[0].degree)
	}
}

func TestBuildCandidateQuantities(t *testing.T) {
	s := newTestScheduler(t)
	st := mkState(1, model.Res1024, 50, 0, 3*time.Second)
	c := buildCand(s, 0, s.RoundDuration(), st)
	if c == nil || len(c.options) == 0 {
		t.Fatal("active feasible request should yield options")
	}
	for _, o := range c.options {
		if o.q <= 0 {
			t.Fatalf("Algorithm 1 discards q=0 options, got %+v", o)
		}
		if o.q > o.planSteps {
			t.Fatalf("q exceeds planned steps: %+v", o)
		}
		wantQ := int(s.window() / o.stepTime)
		if wantQ > o.planSteps {
			wantQ = o.planSteps
		}
		if o.q != wantQ {
			t.Fatalf("q = %d, want %d", o.q, wantQ)
		}
	}
}

func TestBuildCandidateSurvival(t *testing.T) {
	s := newTestScheduler(t)
	// Plenty of slack: surviving without running must be possible.
	slack := mkState(1, model.Res256, 50, 0, 30*time.Second)
	c := buildCand(s, 0, s.RoundDuration(), slack)
	if !c.surviveNone {
		t.Fatal("request with huge slack should survive a skipped round")
	}
	// 2048px at its 5s SLO: skipping the first round is fatal.
	urgent := mkState(2, model.Res2048, 50, 0, 5*time.Second)
	cu := buildCand(s, 0, s.RoundDuration(), urgent)
	if cu.surviveNone {
		t.Fatal("2048px@1.0x cannot afford to skip the first round")
	}
	ran := false
	for _, o := range cu.options {
		if o.survive {
			ran = true
		}
	}
	if !ran {
		t.Fatal("some option should keep the urgent request alive")
	}
}

func TestBuildCandidateNilForFinished(t *testing.T) {
	s := newTestScheduler(t)
	st := mkState(1, model.Res256, 0, 0, time.Second)
	if c := buildCand(s, 0, s.RoundDuration(), st); c != nil {
		t.Fatal("finished request should yield no candidate")
	}
}
