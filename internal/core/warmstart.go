package core

// Layer A of the incremental planner: exact-replay caching. Plan is a pure
// function of (pending set, running set, now, free mask, profile contents,
// topology) plus the scheduler's fixed configuration — except for the random
// placement drawn when placement preservation is off, which is why the cache
// is gated on Config.PlacementPreservation (skipping a solve must not skip
// RNG draws, or a replayed round would desynchronize every later one).
//
// After each cold solve the scheduler snapshots a fingerprint of those
// inputs alongside the emitted plan. If the next Plan call presents a
// bit-identical fingerprint, the previous plan is returned untouched: the
// plan aliases the scheduler's scratch, and nothing between two Plan calls
// mutates scratch, so the cached slice is still exactly what a fresh solve
// would produce. This is the O(R) fast path for re-plans against an
// unchanged world — repeated eager-admission invocations within one round,
// steady-state idle rounds, and the planner benchmark's fixed context.

import (
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// reqKey fingerprints one request's planner-visible state: every field of
// RequestState (and its Request) that any planning stage reads. Remaining
// drives the mix and survival tests, lastGroup drives placement
// preservation, arrival+slo fix the deadline, and the quality ledger
// (budget minus used, plus total steps for the protection zone) drives the
// cache dimension.
type reqKey struct {
	id            workload.RequestID
	res           model.Resolution
	remaining     int
	lastGroup     simgpu.Mask
	arrival       time.Duration
	slo           time.Duration
	steps         int
	qualityBudget int
	qualityUsed   int
}

func makeReqKey(st *sched.RequestState) reqKey {
	return reqKey{
		id:            st.Req.ID,
		res:           st.Req.Res,
		remaining:     st.Remaining,
		lastGroup:     st.LastGroup,
		arrival:       st.Req.Arrival,
		slo:           st.Req.SLO,
		steps:         st.Req.Steps - st.Req.SkippedSteps,
		qualityBudget: st.Req.QualityBudget,
		qualityUsed:   st.QualityUsed,
	}
}

// replayState is the Layer-A cache: the previous round's input fingerprint
// and the plan it produced.
type replayState struct {
	valid bool
	now   time.Duration
	free  simgpu.Mask
	// capacity covers elastic resizes: a capacity change that happens to
	// leave the free mask bit-identical (e.g. donating a GPU that was failed)
	// must still invalidate the cached plan.
	capacity simgpu.Mask
	prof     *costmodel.Profile
	profVer  uint64
	topo     *simgpu.Topology
	pending  []reqKey
	running  []reqKey
	plan     []sched.Assignment
	// failures is how many placement failures the cached solve recorded, so
	// a replay keeps the diagnostic counters identical to a re-solve.
	failures int
}

// tryReplay returns the cached plan when the context fingerprint matches the
// previous solve exactly.
func (s *Scheduler) tryReplay(ctx *sched.PlanContext) ([]sched.Assignment, bool) {
	if !s.cfg.WarmStart || !s.cfg.PlacementPreservation {
		return nil, false
	}
	r := &s.scratch.replay
	if !r.valid ||
		r.now != ctx.Now ||
		r.free != ctx.Free ||
		r.capacity != ctx.Capacity ||
		r.prof != ctx.Profile ||
		r.profVer != ctx.Profile.Version() ||
		r.topo != ctx.Topo ||
		!keysMatch(r.pending, ctx.Pending) ||
		!keysMatch(r.running, ctx.Running) {
		return nil, false
	}
	s.warmHits++
	s.placementFailures += r.failures
	return r.plan, true
}

// snapshotReplay records the solve just completed for the next tryReplay.
func (s *Scheduler) snapshotReplay(ctx *sched.PlanContext, plan []sched.Assignment, failures int) {
	if !s.cfg.WarmStart || !s.cfg.PlacementPreservation {
		return
	}
	r := &s.scratch.replay
	r.valid = true
	r.now = ctx.Now
	r.free = ctx.Free
	r.capacity = ctx.Capacity
	r.prof = ctx.Profile
	r.profVer = ctx.Profile.Version()
	r.topo = ctx.Topo
	r.pending = fillKeys(r.pending, ctx.Pending)
	r.running = fillKeys(r.running, ctx.Running)
	r.plan = plan
	r.failures = failures
}

func fillKeys(dst []reqKey, sts []*sched.RequestState) []reqKey {
	dst = dst[:0]
	for _, st := range sts {
		dst = append(dst, makeReqKey(st))
	}
	return dst
}

func keysMatch(keys []reqKey, sts []*sched.RequestState) bool {
	if len(keys) != len(sts) {
		return false
	}
	for i, st := range sts {
		if keys[i] != makeReqKey(st) {
			return false
		}
	}
	return true
}
