package core

// Parallel candidate construction for Config.Workers > 1. The per-request
// §4.2.1 mix solves dominate candidate building at deep queues and are pure
// functions of (profile, resolution, steps, budget, config), so they
// parallelize without changing a single output bit — provided the shared
// memo and result slab are only touched from one goroutine. The three-pass
// structure guarantees that:
//
//  1. sequentially collect the unique memo-missing mix keys, in first-seen
//     order;
//  2. solve them in parallel with per-worker scratch, results landing in a
//     preassigned slot per key; then merge into the memo sequentially in
//     pass-1 order, so the slab layout is deterministic;
//  3. build candidates in parallel into disjoint arena slots — every mix
//     lookup now hits the read-only memo — and append the survivors to the
//     candidate list sequentially, preserving input order.
//
// Pass 2/3 goroutines read the profile table concurrently, which the
// costmodel package documents as safe (reads never mutate).

import (
	"sync"
	"time"

	"tetriserve/internal/costmodel"
)

// parallelMinActive gates the parallel path: below this many active
// requests, goroutine fan-out costs more than the solves. Tests lower it to
// exercise the path on small instances.
var parallelMinActive = 64

// mixJob is one memoized-solve work item: a key plus its result slot.
type mixJob struct {
	key mixKey
	out [2]mixEntry
	n   int
}

// parScratch holds the reusable buffers of the parallel build path.
type parScratch struct {
	jobs []mixJob
	seen map[mixKey]struct{}
	ok   []bool
}

// buildCandidatesParallel is the Workers>1 equivalent of the sequential
// candidate loop in Plan, bit-identical in its effect on scratch.cands.
func (s *Scheduler) buildCandidatesParallel(prof *costmodel.Profile, now, tNext time.Duration) {
	sc := &s.scratch
	p := &sc.par
	active := sc.active
	workers := s.cfg.Workers

	// Pass 1: unique memo misses, first-seen order.
	if p.seen == nil {
		p.seen = make(map[mixKey]struct{})
	}
	clear(p.seen)
	p.jobs = p.jobs[:0]
	for _, st := range active {
		if st.Remaining <= 0 {
			continue
		}
		key := mixKey{res: st.Req.Res, steps: st.Remaining, budget: s.mixBudget(st.Deadline() - now)}
		s.degCfgs(prof, key.res) // intern now: pass 2/3 reads are then hit-only
		if _, hit := sc.mixMemo[key]; hit {
			continue
		}
		if _, queued := p.seen[key]; queued {
			continue
		}
		p.seen[key] = struct{}{}
		p.jobs = append(p.jobs, mixJob{key: key})
	}

	// Pass 2: parallel solves, deterministic merge.
	if len(p.jobs) > 0 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(p.jobs); i += workers {
					j := &p.jobs[i]
					j.out, j.n = solveMix(j.key.steps, j.key.budget, sc.cfgCache[j.key.res])
				}
			}(w)
		}
		wg.Wait()
		for i := range p.jobs {
			j := &p.jobs[i]
			if j.n == 1 {
				sc.mixMemo[j.key] = sc.putMix1(j.out[0])
			} else {
				sc.mixMemo[j.key] = sc.putMix2(j.out[0], j.out[1])
			}
		}
	}

	// Pass 3: parallel candidate builds into disjoint arena slots. Every
	// key buildCandidate derives was enumerated in pass 1 (the derivations
	// are identical), so the memo is hit-only and therefore read-only here.
	arena := sc.grabCandidates(len(active))
	if cap(p.ok) < len(active) {
		p.ok = make([]bool, len(active))
	}
	ok := p.ok[:len(active)]
	p.ok = ok
	var wg sync.WaitGroup
	chunk := (len(active) + workers - 1) / workers
	for lo := 0; lo < len(active); lo += chunk {
		hi := lo + chunk
		if hi > len(active) {
			hi = len(active)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				ok[i] = s.buildCandidate(prof, now, tNext, active[i], &arena[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	for i := range active {
		if ok[i] {
			sc.cands = append(sc.cands, &arena[i])
		}
	}
}
