package simgpu

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Fault is a scheduled fail-stop event on one GPU: the device becomes
// unusable at FailAt and, if RecoverAt > FailAt, returns to service at
// RecoverAt (after a driver restart / cordon-uncordon cycle). RecoverAt = 0
// means the GPU never comes back within the run.
//
// The fault model is deliberately fail-stop: a failed GPU stops executing
// and communicating instantly, which is how NCCL-level failures manifest to
// a serving system (the collective hangs or errors and the process group is
// torn down). Partial or Byzantine failures are out of scope.
type Fault struct {
	GPU       GPUID
	FailAt    time.Duration
	RecoverAt time.Duration
}

// Validate checks the fault against a topology.
func (f Fault) Validate(t *Topology) error {
	if int(f.GPU) < 0 || int(f.GPU) >= t.N {
		return fmt.Errorf("simgpu: fault GPU %d outside node of %d GPUs", f.GPU, t.N)
	}
	if f.FailAt < 0 {
		return fmt.Errorf("simgpu: fault on GPU %d has negative FailAt %s", f.GPU, f.FailAt)
	}
	if f.RecoverAt != 0 && f.RecoverAt <= f.FailAt {
		return fmt.Errorf("simgpu: fault on GPU %d recovers at %s before failing at %s",
			f.GPU, f.RecoverAt, f.FailAt)
	}
	return nil
}

// ParseGPUList parses a comma-separated GPU id list ("1,3") into ids.
// The empty string parses to nil.
func ParseGPUList(s string) ([]GPUID, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]GPUID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("simgpu: invalid GPU id %q", p)
		}
		ids = append(ids, GPUID(n))
	}
	return ids, nil
}

// ParseFaults builds a fail-stop schedule from a CLI-style GPU list: every
// listed GPU fails at failAt and recovers at recoverAt (0 = never).
func ParseFaults(gpus string, failAt, recoverAt time.Duration) ([]Fault, error) {
	ids, err := ParseGPUList(gpus)
	if err != nil {
		return nil, err
	}
	faults := make([]Fault, 0, len(ids))
	for _, id := range ids {
		faults = append(faults, Fault{GPU: id, FailAt: failAt, RecoverAt: recoverAt})
	}
	return faults, nil
}

// Invalidate cools every warm group that contains a failed GPU: the group's
// NCCL communicator is torn down by the fault, so the next collective over
// any surviving reshuffle of those devices pays warm-up again (§5). It
// returns the number of groups invalidated.
func (r *GroupRegistry) Invalidate(failed Mask) int {
	n := 0
	for m, ok := range r.warm {
		if ok && m.Overlaps(failed) {
			delete(r.warm, m)
			n++
		}
	}
	return n
}
