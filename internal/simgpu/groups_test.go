package simgpu

import (
	"testing"
	"testing/quick"
)

func TestSingleGPUAlwaysWarm(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	if !r.IsWarm(MaskOf(3)) {
		t.Fatal("single-GPU group should always be warm")
	}
	if r.EnsureWarm(MaskOf(3)) != 0 {
		t.Fatal("warming a single-GPU group should be free")
	}
}

func TestWarmupPaidOnce(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	g := MaskOf(0, 1)
	if r.IsWarm(g) {
		t.Fatal("fresh group should be cold")
	}
	first := r.EnsureWarm(g)
	if first != r.WarmupCost {
		t.Fatalf("first warmup cost %v, want %v", first, r.WarmupCost)
	}
	if second := r.EnsureWarm(g); second != 0 {
		t.Fatalf("second warmup cost %v, want 0", second)
	}
	if !r.IsWarm(g) {
		t.Fatal("group should be warm after EnsureWarm")
	}
}

func TestWarmKeyOrderInsensitive(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	r.EnsureWarm(MaskOf(2, 5))
	if !r.IsWarm(MaskOf(5, 2)) {
		t.Fatal("warm state should not depend on id order")
	}
}

func TestPrewarmCanonical(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	n := r.PrewarmCanonical()
	// 8 GPUs: four size-2 groups, two size-4 groups, one size-8 group.
	if n != 7 {
		t.Fatalf("prewarmed %d groups, want 7", n)
	}
	for slot := 0; slot < 4; slot++ {
		if !r.IsWarm(CanonicalGroup(slot, 2)) {
			t.Errorf("canonical 2-group %d cold after prewarm", slot)
		}
	}
	if !r.IsWarm(MaskRange(0, 8)) {
		t.Error("full group cold after prewarm")
	}
	// Non-canonical group stays cold.
	if r.IsWarm(MaskOf(1, 2)) {
		t.Error("non-canonical group should remain cold")
	}
	// Idempotent.
	if r.PrewarmCanonical() != 0 {
		t.Error("second prewarm should warm nothing")
	}
}

func TestPrewarmA40(t *testing.T) {
	r := NewGroupRegistry(A40x4())
	// 4 GPUs: two size-2 groups + one size-4 group.
	if n := r.PrewarmCanonical(); n != 3 {
		t.Fatalf("prewarmed %d, want 3", n)
	}
}

func TestWarmMemoryAccounting(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	r.EnsureWarm(MaskOf(0, 1))
	r.EnsureWarm(MaskOf(0, 1, 2, 3))
	if got := r.WarmMemoryBytes(0); got != 2*r.BufferBytesPerGPU {
		t.Fatalf("GPU0 pinned bytes = %v, want 2 buffers", got)
	}
	if got := r.WarmMemoryBytes(2); got != r.BufferBytesPerGPU {
		t.Fatalf("GPU2 pinned bytes = %v, want 1 buffer", got)
	}
	if got := r.WarmMemoryBytes(7); got != 0 {
		t.Fatalf("GPU7 pinned bytes = %v, want 0", got)
	}
}

func TestWarmGroupsDeterministic(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	r.EnsureWarm(MaskOf(4, 5))
	r.EnsureWarm(MaskOf(0, 1))
	gs := r.WarmGroups()
	if len(gs) != 2 {
		t.Fatalf("WarmGroups len = %d", len(gs))
	}
	if gs[0] != MaskOf(0, 1) {
		t.Fatalf("WarmGroups not sorted: %v", gs)
	}
}

// TestMaskKeyRoundTrip: GroupKey and ParseGPUList invert each other.
func TestMaskKeyRoundTrip(t *testing.T) {
	check := func(raw uint16) bool {
		m := Mask(raw)
		if m == 0 {
			return true
		}
		ids, err := ParseGPUList(GroupKey(m))
		if err != nil {
			return false
		}
		return MaskOf(ids...) == m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWarmCount(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	if r.WarmCount() != 0 {
		t.Fatal("fresh registry should have zero warm groups")
	}
	r.EnsureWarm(MaskOf(0, 1))
	r.EnsureWarm(MaskOf(0, 1)) // duplicate
	if r.WarmCount() != 1 {
		t.Fatalf("WarmCount = %d, want 1", r.WarmCount())
	}
}
