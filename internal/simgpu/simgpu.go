// Package simgpu models the GPU cluster substrate the paper runs on: the
// devices themselves (sustained throughput, kernel-efficiency curve, HBM),
// the interconnect topology (H100 nodes with all-to-all NVLink 4.0 versus
// A40 nodes with NVLink pairs bridged by PCIe 4.0), and the NCCL-style
// process-group registry with first-use warm-up cost (§5 "Communication
// Process Groups Warmup").
//
// Nothing in this package executes work; it answers the questions the cost
// model and engine ask: "what bandwidth and latency does a collective over
// this GPU set see?", "is this group warm?", "how much HBM is left?".
package simgpu

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// GPUID identifies a device within a node, 0-based.
type GPUID int

// Mask is a bitset of GPUs within a node (≤ 64 devices).
type Mask uint64

// MaskOf builds a mask from explicit ids.
func MaskOf(ids ...GPUID) Mask {
	var m Mask
	for _, id := range ids {
		m |= 1 << uint(id)
	}
	return m
}

// MaskRange returns a mask covering [lo, lo+n).
func MaskRange(lo GPUID, n int) Mask {
	var m Mask
	for i := 0; i < n; i++ {
		m |= 1 << uint(int(lo)+i)
	}
	return m
}

// Count returns the number of GPUs in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Has reports whether the mask contains id.
func (m Mask) Has(id GPUID) bool { return m&(1<<uint(id)) != 0 }

// IDs returns the GPUs in ascending order.
func (m Mask) IDs() []GPUID {
	ids := make([]GPUID, 0, m.Count())
	for v := uint64(m); v != 0; {
		b := bits.TrailingZeros64(v)
		ids = append(ids, GPUID(b))
		v &^= 1 << uint(b)
	}
	return ids
}

// Overlaps reports whether the two masks share any GPU.
func (m Mask) Overlaps(o Mask) bool { return m&o != 0 }

// Union returns the combined mask.
func (m Mask) Union(o Mask) Mask { return m | o }

// Without returns m minus o.
func (m Mask) Without(o Mask) Mask { return m &^ o }

// String renders the mask as "{0,1,4}".
func (m Mask) String() string {
	parts := make([]string, 0, m.Count())
	for _, id := range m.IDs() {
		parts = append(parts, fmt.Sprint(int(id)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Hardware describes one device generation.
type Hardware struct {
	// Name is the marketing name ("H100-80GB", "A40-48GB").
	Name string
	// PeakFLOPS is the dense tensor-core peak at serving precision.
	PeakFLOPS float64
	// MFUMax is the best model-FLOPs-utilization large kernels reach.
	MFUMax float64
	// MFUHalfTokens is the per-GPU token count at which utilization reaches
	// half of MFUMax — the "reduced per-GPU kernel efficiency when
	// workloads are split" effect from §2.2.
	MFUHalfTokens float64
	// HBMBytes is device memory.
	HBMBytes float64
	// KernelLaunch is the fixed non-overlapped per-step launch overhead.
	KernelLaunch time.Duration
}

// Efficiency returns the achieved fraction of PeakFLOPS when a kernel
// processes tokensPerGPU tokens: MFUMax · t/(t + half). Saturating in the
// token count reproduces Figure 3's resolution-dependent scaling.
func (h Hardware) Efficiency(tokensPerGPU float64) float64 {
	if tokensPerGPU <= 0 {
		return 0
	}
	return h.MFUMax * tokensPerGPU / (tokensPerGPU + h.MFUHalfTokens)
}

// SustainedFLOPS returns achievable FLOP/s at the given per-GPU tokens.
func (h Hardware) SustainedFLOPS(tokensPerGPU float64) float64 {
	return h.PeakFLOPS * h.Efficiency(tokensPerGPU)
}

// Link characterizes the interconnect a collective runs over.
type Link struct {
	// Bandwidth is per-GPU effective collective bandwidth (bytes/s).
	Bandwidth float64
	// Latency is the fixed cost per collective per participating hop.
	Latency time.Duration
	// Kind names the bottleneck medium for reporting ("nvlink", "pcie").
	Kind string
}

// Topology is a single node: devices plus wiring.
type Topology struct {
	// Name identifies the testbed ("8xH100-NVLink", "4xA40-PCIe").
	Name string
	// N is the GPU count.
	N int
	// HW is the device generation.
	HW Hardware
	// NVLink is the link used when a group stays inside one NVLink island.
	NVLink Link
	// PCIe is the link used when a group spans islands.
	PCIe Link
	// islands lists maximal fully-NVLinked GPU sets.
	islands []Mask
}

// H100x8 returns the paper's first testbed: 8×H100-80GB with NVLink 4.0
// (900 GB/s) joining all devices.
func H100x8() *Topology {
	return &Topology{
		Name: "8xH100-NVLink",
		N:    8,
		HW: Hardware{
			Name:          "H100-80GB",
			PeakFLOPS:     989e12, // BF16 dense
			MFUMax:        0.81,
			MFUHalfTokens: 160,
			HBMBytes:      80e9,
			KernelLaunch:  1200 * time.Microsecond,
		},
		NVLink:  Link{Bandwidth: 900e9, Latency: 5 * time.Microsecond, Kind: "nvlink"},
		PCIe:    Link{Bandwidth: 50e9, Latency: 12 * time.Microsecond, Kind: "pcie"},
		islands: []Mask{MaskRange(0, 8)},
	}
}

// H100xN returns an H100 node with n GPUs (n a power of two ≤ 8), used by
// the Figure 1 toy scenario and the Appendix-B 4-GPU budget.
func H100xN(n int) *Topology {
	if n <= 0 || n > 8 || n&(n-1) != 0 {
		panic(fmt.Sprintf("simgpu: invalid H100 node size %d", n))
	}
	t := H100x8()
	t.Name = fmt.Sprintf("%dxH100-NVLink", n)
	t.N = n
	t.islands = []Mask{MaskRange(0, n)}
	return t
}

// A40x4 returns the second testbed: 4×A40-48GB, NVLink only within pairs
// {0,1} and {2,3}; groups spanning pairs traverse PCIe 4.0.
func A40x4() *Topology {
	return &Topology{
		Name: "4xA40-PCIe",
		N:    4,
		HW: Hardware{
			Name:          "A40-48GB",
			PeakFLOPS:     150e12, // BF16 dense
			MFUMax:        0.72,
			MFUHalfTokens: 130,
			HBMBytes:      48e9,
			KernelLaunch:  1500 * time.Microsecond,
		},
		NVLink:  Link{Bandwidth: 112.5e9, Latency: 8 * time.Microsecond, Kind: "nvlink"},
		PCIe:    Link{Bandwidth: 20e9, Latency: 25 * time.Microsecond, Kind: "pcie"},
		islands: []Mask{MaskOf(0, 1), MaskOf(2, 3)},
	}
}

// ByName resolves a topology by name.
func ByName(name string) (*Topology, error) {
	switch name {
	case "8xH100-NVLink", "h100", "H100":
		return H100x8(), nil
	case "4xA40-PCIe", "a40", "A40":
		return A40x4(), nil
	}
	return nil, fmt.Errorf("simgpu: unknown topology %q", name)
}

// AllMask returns the mask covering every GPU in the node.
func (t *Topology) AllMask() Mask { return MaskRange(0, t.N) }

// GroupLink returns the link a collective over the group observes: NVLink if
// the group fits in one island, PCIe otherwise. Single-GPU groups need no
// interconnect and get an infinite-bandwidth zero-latency link.
func (t *Topology) GroupLink(group Mask) Link {
	if group.Count() <= 1 {
		return Link{Bandwidth: 1e30, Latency: 0, Kind: "local"}
	}
	for _, isl := range t.islands {
		if group&^isl == 0 {
			return t.NVLink
		}
	}
	return t.PCIe
}

// Islands returns a copy of the NVLink island masks.
func (t *Topology) Islands() []Mask {
	out := make([]Mask, len(t.islands))
	copy(out, t.islands)
	return out
}

// ValidGroup reports whether the mask is a usable sequence-parallel group:
// non-empty, within the node, and power-of-two sized (the paper restricts
// k ∈ {1, 2, 4, …, N}).
func (t *Topology) ValidGroup(group Mask) error {
	n := group.Count()
	if n == 0 {
		return fmt.Errorf("simgpu: empty group")
	}
	if group&^t.AllMask() != 0 {
		return fmt.Errorf("simgpu: group %v outside node of %d GPUs", group, t.N)
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("simgpu: group size %d is not a power of two", n)
	}
	return nil
}

// Degrees lists the allowed sequence-parallel degrees on this node:
// powers of two up to N.
func (t *Topology) Degrees() []int {
	var ds []int
	for k := 1; k <= t.N; k *= 2 {
		ds = append(ds, k)
	}
	return ds
}

// CanonicalGroup returns the buddy-aligned group of size k starting at the
// aligned slot containing GPU lo. k must be a power of two dividing N's
// alignment; e.g. on 8 GPUs, size-4 groups are {0..3} and {4..7}.
func CanonicalGroup(slot, k int) Mask {
	return MaskRange(GPUID(slot*k), k)
}

// GroupKey canonically identifies a GPU set for the warm registry.
func GroupKey(group Mask) string {
	ids := group.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(int(id))
	}
	return strings.Join(parts, ",")
}
