package simgpu

import (
	"testing"
	"time"
)

func TestParseGPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []GPUID
		err  bool
	}{
		{"", nil, false},
		{"  ", nil, false},
		{"3", []GPUID{3}, false},
		{"1,3", []GPUID{1, 3}, false},
		{" 0 , 7 ", []GPUID{0, 7}, false},
		{"1,x", nil, true},
		{"-1", nil, true},
		{"1,,2", nil, true},
	}
	for _, c := range cases {
		got, err := ParseGPUList(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseGPUList(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseGPUList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseGPUList(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestParseFaults(t *testing.T) {
	faults, err := ParseFaults("1,5", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatalf("got %d faults, want 2", len(faults))
	}
	for i, want := range []GPUID{1, 5} {
		f := faults[i]
		if f.GPU != want || f.FailAt != 30*time.Second || f.RecoverAt != time.Minute {
			t.Fatalf("fault %d = %+v", i, f)
		}
	}
	if _, err := ParseFaults("nope", 0, 0); err == nil {
		t.Fatal("bad GPU list accepted")
	}
	if empty, err := ParseFaults("", time.Second, 0); err != nil || len(empty) != 0 {
		t.Fatalf("empty list: %v, %v", empty, err)
	}
}

func TestFaultValidate(t *testing.T) {
	topo := H100x8()
	if err := (Fault{GPU: 3, FailAt: time.Second}).Validate(topo); err != nil {
		t.Fatal(err)
	}
	if err := (Fault{GPU: 3, FailAt: time.Second, RecoverAt: 2 * time.Second}).Validate(topo); err != nil {
		t.Fatal(err)
	}
	if err := (Fault{GPU: 8, FailAt: time.Second}).Validate(topo); err == nil {
		t.Fatal("GPU outside topology accepted")
	}
	if err := (Fault{GPU: 0, FailAt: -time.Second}).Validate(topo); err == nil {
		t.Fatal("negative FailAt accepted")
	}
	if err := (Fault{GPU: 0, FailAt: 2 * time.Second, RecoverAt: time.Second}).Validate(topo); err == nil {
		t.Fatal("recovery before failure accepted")
	}
}

// TestInvalidateCoolsOverlappingGroups: a fail-stop tears down every NCCL
// communicator containing the dead GPU; disjoint groups stay warm.
func TestInvalidateCoolsOverlappingGroups(t *testing.T) {
	r := NewGroupRegistry(H100x8())
	r.PrewarmCanonical()
	before := r.WarmCount()

	// Canonical groups containing GPU 1: {0,1}, {0,1,2,3}, {0..7}.
	n := r.Invalidate(MaskOf(1))
	if n != 3 {
		t.Fatalf("invalidated %d groups, want 3", n)
	}
	if r.WarmCount() != before-3 {
		t.Fatalf("warm count %d, want %d", r.WarmCount(), before-3)
	}
	if r.IsWarm(MaskOf(0, 1)) {
		t.Fatal("group {0,1} still warm after GPU 1 failed")
	}
	if !r.IsWarm(MaskOf(4, 5)) || !r.IsWarm(MaskOf(4, 5, 6, 7)) {
		t.Fatal("disjoint groups should stay warm")
	}
	// Invalidating again without re-warming is a no-op.
	if got := r.Invalidate(MaskOf(1)); got != 0 {
		t.Fatalf("second invalidate removed %d groups", got)
	}
	// Re-warming after recovery pays the cost again.
	if r.EnsureWarm(MaskOf(0, 1)) == 0 {
		t.Fatal("invalidated group re-warmed for free")
	}
}
