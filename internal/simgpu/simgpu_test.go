package simgpu

import (
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 2, 5)
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if !m.Has(2) || m.Has(1) {
		t.Fatal("Has wrong")
	}
	ids := m.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 2 || ids[2] != 5 {
		t.Fatalf("IDs = %v", ids)
	}
	if m.String() != "{0,2,5}" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMaskRange(t *testing.T) {
	m := MaskRange(2, 3)
	if m != MaskOf(2, 3, 4) {
		t.Fatalf("MaskRange(2,3) = %v", m)
	}
}

func TestMaskSetAlgebra(t *testing.T) {
	a, b := MaskOf(0, 1), MaskOf(1, 2)
	if !a.Overlaps(b) {
		t.Fatal("should overlap")
	}
	if a.Union(b) != MaskOf(0, 1, 2) {
		t.Fatal("union wrong")
	}
	if a.Without(b) != MaskOf(0) {
		t.Fatal("without wrong")
	}
	if a.Overlaps(MaskOf(5)) {
		t.Fatal("disjoint masks reported overlapping")
	}
}

// TestMaskRoundTrip: IDs() → MaskOf() is the identity.
func TestMaskRoundTrip(t *testing.T) {
	check := func(raw uint64) bool {
		m := Mask(raw)
		return MaskOf(m.IDs()...) == m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMaskCountMatchesIDs property.
func TestMaskCountMatchesIDs(t *testing.T) {
	check := func(raw uint64) bool {
		m := Mask(raw)
		return m.Count() == len(m.IDs())
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencySaturates(t *testing.T) {
	hw := H100x8().HW
	if hw.Efficiency(0) != 0 {
		t.Fatal("zero tokens should have zero efficiency")
	}
	small := hw.Efficiency(64)
	big := hw.Efficiency(16384)
	if small >= big {
		t.Fatal("efficiency should grow with per-GPU tokens")
	}
	if big >= hw.MFUMax {
		t.Fatal("efficiency must stay below MFUMax")
	}
	if big < hw.MFUMax*0.95 {
		t.Fatalf("large kernels should approach MFUMax: got %v of %v", big, hw.MFUMax)
	}
}

func TestSustainedFLOPSBounded(t *testing.T) {
	hw := A40x4().HW
	if hw.SustainedFLOPS(1e9) > hw.PeakFLOPS {
		t.Fatal("sustained exceeds peak")
	}
}

func TestH100Topology(t *testing.T) {
	topo := H100x8()
	if topo.N != 8 {
		t.Fatalf("N = %d", topo.N)
	}
	// Any group on the H100 node stays on NVLink.
	for _, g := range []Mask{MaskOf(0, 7), MaskOf(1, 3, 5, 7), topo.AllMask()} {
		if link := topo.GroupLink(g); link.Kind != "nvlink" {
			t.Errorf("group %v got %s, want nvlink", g, link.Kind)
		}
	}
	if got := topo.Degrees(); len(got) != 4 || got[3] != 8 {
		t.Fatalf("Degrees = %v", got)
	}
}

func TestA40PCIeCrossing(t *testing.T) {
	topo := A40x4()
	// Pairs {0,1} and {2,3} are NVLink islands.
	if link := topo.GroupLink(MaskOf(0, 1)); link.Kind != "nvlink" {
		t.Errorf("pair {0,1} got %s", link.Kind)
	}
	if link := topo.GroupLink(MaskOf(2, 3)); link.Kind != "nvlink" {
		t.Errorf("pair {2,3} got %s", link.Kind)
	}
	// Crossing pairs hits PCIe, with lower bandwidth.
	cross := topo.GroupLink(MaskOf(1, 2))
	if cross.Kind != "pcie" {
		t.Errorf("cross-pair group got %s, want pcie", cross.Kind)
	}
	if cross.Bandwidth >= topo.NVLink.Bandwidth {
		t.Error("PCIe bandwidth should be below NVLink")
	}
	if link := topo.GroupLink(topo.AllMask()); link.Kind != "pcie" {
		t.Errorf("full node on A40 got %s, want pcie", link.Kind)
	}
}

func TestSingleGPUNeedsNoInterconnect(t *testing.T) {
	topo := A40x4()
	link := topo.GroupLink(MaskOf(3))
	if link.Latency != 0 || link.Kind != "local" {
		t.Errorf("single-GPU link = %+v", link)
	}
}

func TestValidGroup(t *testing.T) {
	topo := H100x8()
	if err := topo.ValidGroup(MaskOf(0, 1, 2, 3)); err != nil {
		t.Errorf("aligned 4-group rejected: %v", err)
	}
	if err := topo.ValidGroup(MaskOf(1, 3, 5)); err == nil {
		t.Error("size-3 group should be rejected (not a power of two)")
	}
	if err := topo.ValidGroup(0); err == nil {
		t.Error("empty group should be rejected")
	}
	if err := topo.ValidGroup(MaskOf(8)); err == nil {
		t.Error("out-of-node GPU should be rejected")
	}
	// Unaligned power-of-two groups are structurally valid (placement
	// policy decides whether to use them).
	if err := topo.ValidGroup(MaskOf(1, 2)); err != nil {
		t.Errorf("unaligned pair rejected: %v", err)
	}
}

func TestCanonicalGroup(t *testing.T) {
	if CanonicalGroup(1, 4) != MaskOf(4, 5, 6, 7) {
		t.Fatalf("CanonicalGroup(1,4) = %v", CanonicalGroup(1, 4))
	}
	if CanonicalGroup(0, 1) != MaskOf(0) {
		t.Fatalf("CanonicalGroup(0,1) = %v", CanonicalGroup(0, 1))
	}
}

func TestGroupKeyCanonical(t *testing.T) {
	if GroupKey(MaskOf(3, 1, 2)) != "1,2,3" {
		t.Fatalf("GroupKey = %q", GroupKey(MaskOf(3, 1, 2)))
	}
}

func TestByName(t *testing.T) {
	if topo, err := ByName("h100"); err != nil || topo.N != 8 {
		t.Errorf("ByName(h100) = %v, %v", topo, err)
	}
	if topo, err := ByName("a40"); err != nil || topo.N != 4 {
		t.Errorf("ByName(a40) = %v, %v", topo, err)
	}
	if _, err := ByName("tpu"); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestIslandsCopied(t *testing.T) {
	topo := A40x4()
	isl := topo.Islands()
	isl[0] = MaskOf(7)
	if topo.GroupLink(MaskOf(0, 1)).Kind != "nvlink" {
		t.Fatal("mutating Islands() copy affected the topology")
	}
}
