package simgpu

import (
	"slices"
	"time"
)

// GroupRegistry mirrors NCCL process-group lifecycle from §5: creating a
// group is free, but the first collective on a group initializes channels
// and allocates persistent device buffers, costing warm-up latency and HBM
// on every member. TetriServe pre-warms a compact set of common groups and
// defers the rest to on-demand warm-up.
type GroupRegistry struct {
	topo *Topology
	// warm is keyed by the group mask itself — a bitset is already a
	// canonical identity, so the hot dispatch path (EnsureWarm on every
	// block start) stays free of string building.
	warm map[Mask]bool
	// WarmupCost is the one-time latency of the first collective on a
	// cold group.
	WarmupCost time.Duration
	// BufferBytesPerGPU is persistent HBM consumed on each member once a
	// group is warm.
	BufferBytesPerGPU float64
}

// NewGroupRegistry returns a registry with the default NCCL-like costs.
func NewGroupRegistry(topo *Topology) *GroupRegistry {
	return &GroupRegistry{
		topo:              topo,
		warm:              make(map[Mask]bool),
		WarmupCost:        120 * time.Millisecond,
		BufferBytesPerGPU: 512e6,
	}
}

// IsWarm reports whether group has completed its first collective.
// Single-GPU groups need no channels and are always warm.
func (r *GroupRegistry) IsWarm(group Mask) bool {
	if group.Count() <= 1 {
		return true
	}
	return r.warm[group]
}

// EnsureWarm marks group warm, returning the latency penalty incurred if it
// was cold (0 if already warm).
func (r *GroupRegistry) EnsureWarm(group Mask) time.Duration {
	if r.IsWarm(group) {
		return 0
	}
	r.warm[group] = true
	return r.WarmupCost
}

// WarmCount returns how many multi-GPU groups are warm.
func (r *GroupRegistry) WarmCount() int { return len(r.warm) }

// WarmMemoryBytes returns persistent buffer bytes pinned on gpu by all warm
// groups containing it.
func (r *GroupRegistry) WarmMemoryBytes(gpu GPUID) float64 {
	total := 0.0
	for m, ok := range r.warm {
		if !ok {
			continue
		}
		if m.Has(gpu) {
			total += r.BufferBytesPerGPU
		}
	}
	return total
}

// PrewarmCanonical warms the buddy-aligned groups for every degree — the
// "compact set of commonly used, overlapping groups" strategy from §5. It
// returns the number of groups warmed.
func (r *GroupRegistry) PrewarmCanonical() int {
	n := 0
	for _, k := range r.topo.Degrees() {
		if k == 1 {
			continue
		}
		for slot := 0; slot*k < r.topo.N; slot++ {
			if r.EnsureWarm(CanonicalGroup(slot, k)) > 0 {
				n++
			}
		}
	}
	return n
}

// WarmGroups returns the warm multi-GPU groups in deterministic order.
func (r *GroupRegistry) WarmGroups() []Mask {
	out := make([]Mask, 0, len(r.warm))
	for m, ok := range r.warm {
		if ok {
			out = append(out, m)
		}
	}
	slices.Sort(out)
	return out
}
