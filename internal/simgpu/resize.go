package simgpu

import (
	"fmt"
	"math/bits"
	"time"
)

// Lowest returns the mask of m's lowest-id set GPU (0 when m is empty) —
// the slot an elastic shard grows into when it keeps its capacity a
// contiguous, buddy-alignable prefix.
func (m Mask) Lowest() Mask { return m & -m }

// Highest returns the mask of m's highest-id set GPU (0 when m is empty) —
// the slot an elastic shard donates first, preserving prefix contiguity.
func (m Mask) Highest() Mask {
	if m == 0 {
		return 0
	}
	return Mask(1) << (63 - bits.LeadingZeros64(uint64(m)))
}

// Resize is a planned capacity change: at At, the shard's usable GPU set
// becomes exactly NewMask. Unlike a Fault, a resize is cooperative — the
// departing GPUs are healthy, so in-flight work on them is preempted with
// full step credit and latents are handed off (§5 re-transfer on the next
// placement) rather than lost. NewMask may both shrink and grow the shard in
// one event (a GPU swap).
type Resize struct {
	At      time.Duration
	NewMask Mask
}

// Validate checks the resize against a topology. An empty NewMask is legal
// only as a transient state for a donor shard that is about to receive
// capacity back; the control loop simply idles until capacity returns.
func (r Resize) Validate(t *Topology) error {
	if r.At < 0 {
		return fmt.Errorf("simgpu: resize has negative At %s", r.At)
	}
	if r.NewMask&^t.AllMask() != 0 {
		return fmt.Errorf("simgpu: resize mask %v outside node of %d GPUs", r.NewMask, t.N)
	}
	return nil
}
