package engine

import (
	"testing"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

var (
	testMdl  = model.FLUX()
	testTopo = simgpu.H100x8()
	testProf = costmodel.BuildProfile(
		costmodel.NewEstimator(testMdl, testTopo), costmodel.ProfilerConfig{})
)

func newEngine(t *testing.T, mutate ...func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	return New(testMdl, testTopo, testProf, cfg)
}

func mkStates(res model.Resolution, remaining int, ids ...int) map[workload.RequestID]*sched.RequestState {
	out := map[workload.RequestID]*sched.RequestState{}
	for _, id := range ids {
		out[workload.RequestID(id)] = &sched.RequestState{
			Req: &workload.Request{
				ID:    workload.RequestID(id),
				Res:   res,
				Steps: remaining,
				SLO:   5 * time.Second,
			},
			Remaining: remaining,
		}
	}
	return out
}

func asg(group simgpu.Mask, steps int, ids ...int) sched.Assignment {
	reqs := make([]workload.RequestID, len(ids))
	for i, id := range ids {
		reqs[i] = workload.RequestID(id)
	}
	return sched.Assignment{Requests: reqs, Group: group, Steps: steps}
}

func TestStartMarksGPUsBusy(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res1024, 50, 1)
	run, err := e.Start(0, asg(simgpu.MaskOf(0, 1), 5, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Free().Overlaps(simgpu.MaskOf(0, 1)) {
		t.Fatal("started GPUs still marked free")
	}
	if e.Running() != 1 {
		t.Fatal("run not tracked")
	}
	if err := e.Finish(run); err != nil {
		t.Fatal(err)
	}
	if e.Free() != testTopo.AllMask() {
		t.Fatal("GPUs not freed after Finish")
	}
	if e.Running() != 0 {
		t.Fatal("run still tracked after Finish")
	}
}

func TestStartRejectsBusyGroup(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res1024, 50, 1, 2)
	if _, err := e.Start(0, asg(simgpu.MaskOf(0, 1), 5, 1), states, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Start(0, asg(simgpu.MaskOf(1, 2)|simgpu.MaskOf(0), 5, 2), states, 0); err == nil {
		t.Fatal("overlapping group accepted")
	}
}

func TestStartRejectsUnknownRequest(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Start(0, asg(simgpu.MaskOf(0), 5, 99), mkStates(model.Res256, 10, 1), 0); err == nil {
		t.Fatal("unknown request accepted")
	}
}

func TestStartRejectsMixedBatch(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res256, 10, 1)
	for id, st := range mkStates(model.Res512, 10, 2) {
		states[id] = st
	}
	if _, err := e.Start(0, asg(simgpu.MaskOf(0), 5, 1, 2), states, 0); err == nil {
		t.Fatal("mixed-resolution batch accepted")
	}
}

func TestStartRejectsExhaustedRequest(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res256, 0, 1)
	if _, err := e.Start(0, asg(simgpu.MaskOf(0), 1, 1), states, 0); err == nil {
		t.Fatal("request with no remaining steps accepted")
	}
}

func TestRunDurationTracksProfile(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res1024, 50, 1)
	group := simgpu.MaskOf(0, 1, 2, 3)
	run, err := e.Start(0, asg(group, 10, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * testProf.StepTime(model.Res1024, 4)
	got := run.End - run.Start
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	// Profile carries tiny sampling noise; 1% tolerance.
	if float64(diff) > 0.01*float64(want) {
		t.Fatalf("block duration %v, want ≈%v", got, want)
	}
}

func TestStepsClippedToRemaining(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res256, 3, 1, 2)
	states[2].Remaining = 10
	run, err := e.Start(0, asg(simgpu.MaskOf(0), 8, 1, 2), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Steps[1] != 3 || run.Steps[2] != 8 {
		t.Fatalf("steps = %v, want member 1 clipped to 3", run.Steps)
	}
}

func TestReconfigurationCharged(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res1024, 50, 1)
	g1 := simgpu.MaskOf(0, 1)
	run1, err := e.Start(0, asg(g1, 5, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run1.Overhead != 0 {
		t.Fatalf("first placement should cost nothing, got %v", run1.Overhead)
	}
	e.Finish(run1)

	// Same group again: no reconfiguration.
	run2, _ := e.Start(run1.End, asg(g1, 5, 1), states, 0)
	if run2.Overhead != 0 {
		t.Fatalf("same-group continuation should cost nothing, got %v", run2.Overhead)
	}
	e.Finish(run2)

	// Different group: latent transfer + remap stall.
	run3, _ := e.Start(run2.End, asg(simgpu.MaskOf(4, 5), 5, 1), states, 0)
	if run3.Overhead < e.cfg.RemapStall {
		t.Fatalf("remap overhead %v should include the %v stall", run3.Overhead, e.cfg.RemapStall)
	}
	e.Finish(run3)
	if e.Remaps() != 1 || e.LatentTransfers() != 1 {
		t.Fatalf("remaps=%d transfers=%d, want 1/1", e.Remaps(), e.LatentTransfers())
	}
}

func TestWarmupChargedOnceForColdGroups(t *testing.T) {
	e := newEngine(t, func(c *Config) {
		c.Noise = 0
		c.PrewarmCanonical = false
	})
	states := mkStates(model.Res1024, 50, 1)
	g := simgpu.MaskOf(0, 1)
	run1, _ := e.Start(0, asg(g, 5, 1), states, 0)
	if run1.Overhead == 0 {
		t.Fatal("cold group should pay warm-up")
	}
	e.Finish(run1)
	run2, _ := e.Start(run1.End, asg(g, 5, 1), states, 0)
	if run2.Overhead != 0 {
		t.Fatalf("warm group charged again: %v", run2.Overhead)
	}
	e.Finish(run2)
	if e.Warmups() != 1 {
		t.Fatalf("warmups = %d, want 1", e.Warmups())
	}
}

func TestPrewarmAvoidsCanonicalWarmups(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res1024, 50, 1)
	run, _ := e.Start(0, asg(simgpu.MaskOf(0, 1, 2, 3), 5, 1), states, 0)
	if run.Overhead != 0 {
		t.Fatalf("prewarmed canonical group paid %v", run.Overhead)
	}
}

func TestMisalignedGroupSlowerOnA40(t *testing.T) {
	topo := simgpu.A40x4()
	mdl := model.SD3()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	cfg := DefaultConfig()
	cfg.Noise = 0
	eng := New(mdl, topo, prof, cfg)
	states := mkStates(model.Res1024, 50, 1, 2)

	aligned, err := eng.Start(0, asg(simgpu.MaskOf(0, 1), 5, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := eng.Start(0, asg(simgpu.MaskOf(2)|simgpu.MaskOf(3), 5, 2), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = cross
	eng.Finish(aligned)
	eng.Finish(cross)

	// Now compare NVLink pair {0,1} vs PCIe-crossing pair {1,2}.
	eng2 := New(mdl, topo, prof, cfg)
	nv, err := eng2.Start(0, asg(simgpu.MaskOf(0, 1), 5, 1), mkStates(model.Res1024, 50, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Finish(nv)
	pc, err := eng2.Start(nv.End, asg(simgpu.MaskOf(1, 2), 5, 2), mkStates(model.Res1024, 50, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Finish(pc)
	if pc.StepTime <= nv.StepTime {
		t.Fatalf("PCIe-crossing pair step %v should exceed NVLink pair %v", pc.StepTime, nv.StepTime)
	}
}

func TestFinishTwiceErrors(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res256, 10, 1)
	run, _ := e.Start(0, asg(simgpu.MaskOf(0), 5, 1), states, 0)
	if err := e.Finish(run); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(run); err == nil {
		t.Fatal("double Finish accepted")
	}
}

func TestGPUBusyAccounting(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res1024, 50, 1)
	run, _ := e.Start(0, asg(simgpu.MaskOf(0, 1, 2, 3), 10, 1), states, 0)
	e.Finish(run)
	want := 4 * (run.End - run.Start).Seconds()
	if got := e.GPUBusySeconds(); got != want {
		t.Fatalf("GPUBusySeconds = %v, want %v", got, want)
	}
}

func TestSequentialDecodeQueues(t *testing.T) {
	e := newEngine(t)
	d1 := e.Decode(0, model.Res2048)
	d2 := e.Decode(0, model.Res2048)
	if d2 <= d1 {
		t.Fatal("sequential decode should serialize concurrent requests")
	}
	// Third decode arriving after the queue drained starts fresh.
	d3 := e.Decode(d2+time.Second, model.Res256)
	if d3 <= d2+time.Second {
		t.Fatal("decode after idle should start immediately")
	}
}

func TestConcurrentDecodeWhenDisabled(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.SequentialDecode = false })
	d1 := e.Decode(0, model.Res2048)
	d2 := e.Decode(0, model.Res2048)
	if d1 != d2 {
		t.Fatal("concurrent decode should not serialize")
	}
}

func TestLatentLifecycle(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res512, 10, 1)
	run, _ := e.Start(0, asg(simgpu.MaskOf(2), 5, 1), states, 0)
	e.Finish(run)
	if e.LatentLocation(1) != simgpu.MaskOf(2) {
		t.Fatalf("latent location = %v", e.LatentLocation(1))
	}
	e.ReleaseLatent(1)
	if e.LatentLocation(1) != 0 {
		t.Fatal("latent not released")
	}
}

func TestMemoryUsageIncludesComponents(t *testing.T) {
	e := newEngine(t)
	base := e.MemoryUsage(0)
	if base < testMdl.WeightBytes {
		t.Fatal("memory must include resident weights")
	}
	states := mkStates(model.Res2048, 50, 1)
	run, _ := e.Start(0, asg(simgpu.MaskOf(0, 1), 5, 1), states, 0)
	withRun := e.MemoryUsage(0)
	if withRun <= base {
		t.Fatal("running block should add activation memory")
	}
	if e.MemoryUsage(7) != base {
		t.Fatal("uninvolved GPU charged for the run")
	}
	e.Finish(run)
}

func TestMemoryHeadroomPositiveInSteadyState(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res2048, 50, 1)
	run, _ := e.Start(0, asg(testTopo.AllMask(), 5, 1), states, 0)
	if head := e.MemoryHeadroom(model.Res2048); head <= 0 {
		t.Fatalf("sequential decoding should leave positive HBM headroom, got %.1f GB", head/1e9)
	}
	e.Finish(run)
}

func TestJitterWithinBounds(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res1024, 1000, 1)
	nominal := testProf.StepTime(model.Res1024, 2)
	for i := 0; i < 50; i++ {
		run, err := e.Start(0, asg(simgpu.MaskOf(0, 1), 5, 1), states, 0)
		if err != nil {
			t.Fatal(err)
		}
		rel := float64(run.StepTime-nominal) / float64(nominal)
		if rel < -0.05 || rel > 0.05 {
			t.Fatalf("realized step time deviates %.2f%% from profile", 100*rel)
		}
		e.Finish(run)
	}
}

// TestConcurrentDecodeOOMRisk quantifies the §5 motivation for sequential
// decoding: each 2048px decode pins gigabytes of activations, so only a
// bounded number of concurrent decodes fit in the HBM headroom — sequential
// execution caps the exposure at one regardless of queue depth.
func TestConcurrentDecodeOOMRisk(t *testing.T) {
	e := newEngine(t)
	seqHead := e.MemoryHeadroom(model.Res2048)
	if seqHead <= 0 {
		t.Fatalf("sequential decoding should keep positive headroom, got %.1f GB", seqHead/1e9)
	}
	act := testMdl.DecodeActivationBytes(model.Res2048)
	if act < 1e9 {
		t.Fatalf("2048px decode activation %.1f GB too small to motivate sequential decode", act/1e9)
	}
	// A burst of this many concurrent decodes would exhaust the headroom;
	// it must be a finite, plausible burst size (not astronomically large).
	oomBurst := int(seqHead/act) + 1
	if oomBurst > 64 {
		t.Fatalf("OOM would need %d concurrent decodes; the memory model is too loose", oomBurst)
	}
}

// TestDispatchDelayShiftsBlock checks the control-plane latency is charged
// before compute starts (within per-step jitter).
func TestDispatchDelayShiftsBlock(t *testing.T) {
	e := newEngine(t)
	states := mkStates(model.Res256, 10, 1)
	withDelay, err := e.Start(0, asg(simgpu.MaskOf(0), 5, 1), states, 8*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e.Finish(withDelay)
	without, _ := e.Start(withDelay.End, asg(simgpu.MaskOf(0), 5, 1), states, 0)
	e.Finish(without)
	diff := (withDelay.End - withDelay.Start) - (without.End - without.Start) - 8*time.Millisecond
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("dispatch delay off by %v", diff)
	}
}
