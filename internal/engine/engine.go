// Package engine is the execution engine (§3): a simulated pool of GPU
// workers that executes step blocks produced by a scheduler. It owns the
// physics the scheduler cannot see directly:
//
//   - actual step latency on the *concrete* GPU group (misaligned groups on
//     the A40 node cross PCIe and run slower than the profile promised);
//   - per-step execution noise (Table 1's sub-percent CVs);
//   - parallel-reconfiguration overhead when a request's group changes
//     between rounds: latent transfer (§5, Table 4), NCCL group warm-up,
//     and a remap stall — the costs placement preservation avoids;
//   - sequential per-request VAE decoding (§5), which bounds decoder
//     activation memory and appends a small tail latency;
//   - HBM accounting for weights, warm communicator buffers, step
//     activations, and decoder activations.
package engine

import (
	"fmt"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

// Config tunes engine physics.
type Config struct {
	// Noise is the relative per-step jitter; defaults to the profile's.
	Noise float64
	// RemapStall is the fixed control/state-transfer stall paid when a
	// request resumes on a different GPU set than it last ran on.
	RemapStall time.Duration
	// Seed drives the jitter stream.
	Seed uint64
	// PrewarmCanonical warms buddy-aligned groups at startup (§5).
	PrewarmCanonical bool
	// SequentialDecode serializes VAE decoding per request (§5). Turning
	// it off lets decodes overlap — faster tail but unbounded decoder
	// memory (the OOM risk the paper designs against).
	SequentialDecode bool
	// Capacity restricts the engine to a subset of the topology's GPUs —
	// the elastic-shard case where a shard owns k of the node's N slots and
	// may later donate or receive slots via Resize. Zero means the full
	// topology.
	Capacity simgpu.Mask
}

// DefaultConfig returns the paper-faithful engine configuration.
func DefaultConfig() Config {
	return Config{
		RemapStall:       25 * time.Millisecond,
		Seed:             11,
		PrewarmCanonical: true,
		SequentialDecode: true,
	}
}

// RunID identifies an in-flight step block.
type RunID int

// Run is one executing step block.
type Run struct {
	ID    RunID
	Asg   sched.Assignment
	Start time.Duration
	End   time.Duration
	// Overhead is the non-productive prefix (dispatch + reconfiguration).
	Overhead time.Duration
	// StepTime is the realized per-step latency on the concrete group.
	StepTime time.Duration
	// Steps maps each member to the step count it actually executes
	// (members of a batch may exit early).
	Steps map[workload.RequestID]int
	// Degree is the group size.
	Degree int
	// Batched reports len(Asg.Requests) > 1.
	Batched bool
	// Res is the (shared) resolution of the block's members.
	Res model.Resolution
	// reqbuf is the run-owned backing array for Asg.Requests, retained across
	// pool recycles so steady-state Starts allocate nothing.
	reqbuf []workload.RequestID
}

// Engine executes step blocks on the simulated cluster.
type Engine struct {
	topo   *simgpu.Topology
	mdl    *model.Model
	est    *costmodel.Estimator
	groups *simgpu.GroupRegistry
	rng    *stats.RNG
	cfg    Config
	// gamma is the profile's cache-approximated step cost (γ): blocks
	// dispatched with CacheInterval > 1 realize the same discounted per-step
	// time the planner priced.
	gamma float64

	// capacity is the GPU set this engine may use right now; Resize mutates
	// it at round boundaries. free ⊆ capacity and failed∩capacity are the
	// live/healthy accounting within it.
	capacity simgpu.Mask
	free     simgpu.Mask
	failed   simgpu.Mask
	runs     map[RunID]*Run
	nextRun  RunID
	// pool is the Run free list fed by Release; Start drains it so the
	// steady-state dispatch path performs no per-run allocation.
	pool []*Run

	// latents tracks where each request's latent currently lives.
	latents map[workload.RequestID]simgpu.Mask
	// decodeTail is when the sequential decoder frees up.
	decodeTail time.Duration

	// Telemetry.
	gpuBusySeconds  float64
	latentTransfers int
	remaps          int
	warmups         int
	runsAborted     int
	runsPreempted   int
	resizes         int
	decodePeakBytes float64
	stepPeakBytes   float64
}

// New builds an engine over the topology for one model.
func New(mdl *model.Model, topo *simgpu.Topology, prof *costmodel.Profile, cfg Config) *Engine {
	if cfg.Noise == 0 && prof != nil {
		cfg.Noise = prof.Noise
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	capacity := cfg.Capacity & topo.AllMask()
	if capacity == 0 {
		capacity = topo.AllMask()
	}
	gamma := costmodel.DefaultCachedStepRelCost
	if prof != nil {
		gamma = prof.CachedStepRelCost()
	}
	e := &Engine{
		topo:     topo,
		mdl:      mdl,
		est:      costmodel.NewEstimator(mdl, topo),
		groups:   simgpu.NewGroupRegistry(topo),
		rng:      stats.NewRNG(cfg.Seed),
		cfg:      cfg,
		gamma:    gamma,
		capacity: capacity,
		free:     capacity,
		runs:     make(map[RunID]*Run),
		latents:  make(map[workload.RequestID]simgpu.Mask),
	}
	if cfg.PrewarmCanonical {
		e.groups.PrewarmCanonical()
	}
	return e
}

// Free returns the idle GPU mask.
func (e *Engine) Free() simgpu.Mask { return e.free }

// Capacity returns the GPU set the engine currently owns (free ∪ busy ∪
// failed-within-capacity). Resize mutates it.
func (e *Engine) Capacity() simgpu.Mask { return e.capacity }

// HealthyGPUs counts owned, non-failed GPUs — the denominator for any
// fluid-model load estimate over this shard.
func (e *Engine) HealthyGPUs() int { return e.capacity.Without(e.failed).Count() }

// Running returns the number of in-flight blocks.
func (e *Engine) Running() int { return len(e.runs) }

// GPUBusySeconds returns accumulated GPU·seconds of executed blocks.
func (e *Engine) GPUBusySeconds() float64 { return e.gpuBusySeconds }

// LatentTransfers returns how many cross-group latent handoffs occurred.
func (e *Engine) LatentTransfers() int { return e.latentTransfers }

// Remaps returns how many blocks resumed on a different GPU set.
func (e *Engine) Remaps() int { return e.remaps }

// Warmups returns how many cold-group warmups were paid at run start.
func (e *Engine) Warmups() int { return e.warmups }

// Start begins executing an assignment at time now. states supplies the
// request tracker entries for the members; dispatchDelay is the scheduler's
// control-plane latency charged before compute begins.
func (e *Engine) Start(now time.Duration, asg sched.Assignment, states map[workload.RequestID]*sched.RequestState, dispatchDelay time.Duration) (*Run, error) {
	if asg.Group&^e.free != 0 {
		return nil, fmt.Errorf("engine: group %v not free (free=%v)", asg.Group, e.free)
	}
	if err := e.topo.ValidGroup(asg.Group); err != nil {
		return nil, err
	}
	// The run outlives this call, but sched.Scheduler only guarantees the
	// plan's Requests storage until the next Plan; copy what we retain.
	// Recycled runs donate their request buffer and steps map so the copy
	// costs no allocation in steady state.
	run := e.obtainRun()
	run.reqbuf = append(run.reqbuf[:0], asg.Requests...)
	asg.Requests = run.reqbuf
	var res model.Resolution
	steps := run.Steps
	overhead := dispatchDelay
	maxReconf := time.Duration(0)
	for i, id := range asg.Requests {
		st, ok := states[id]
		if !ok {
			e.Release(run)
			return nil, fmt.Errorf("engine: unknown request %d", id)
		}
		if i == 0 {
			res = st.Req.Res
		} else if st.Req.Res != res {
			e.Release(run)
			return nil, fmt.Errorf("engine: batch mixes resolutions")
		}
		n := asg.Steps
		if n > st.Remaining {
			n = st.Remaining
		}
		if n <= 0 {
			e.Release(run)
			return nil, fmt.Errorf("engine: request %d has no remaining steps", id)
		}
		steps[id] = n
		// Reconfiguration: moving a latent to a new group costs a
		// transfer plus a remap stall (first placement costs nothing).
		if prev, started := e.latents[id]; started && prev != asg.Group {
			reconf := e.est.LatentTransferTime(st.Req.Res, 1) + e.cfg.RemapStall
			if reconf > maxReconf {
				maxReconf = reconf
			}
			e.latentTransfers++
			e.remaps++
		}
	}
	overhead += maxReconf
	if w := e.groups.EnsureWarm(asg.Group); w > 0 {
		overhead += w
		e.warmups++
	}

	bs := len(asg.Requests)
	nominal := e.est.StepTime(res, asg.Group, bs)
	// One jitter draw scales the whole block; per-step noise averages out
	// as 1/√q, which the single draw approximates conservatively.
	realized := costmodel.Jitter(nominal, e.cfg.Noise, e.rng)
	if c := asg.CacheInterval; c > 1 {
		// Step caching elides compute on the approximated steps: the whole
		// block's realized per-step time shrinks by the same discount the
		// planner priced, so fault/resize credit (elapsed ÷ StepTime) stays
		// consistent with the cache-aware schedule. Interval ≤ 1 takes no
		// branch, keeping cache-oblivious runs bit-identical.
		realized = time.Duration(float64(realized) * costmodel.CacheDiscount(e.gamma, c))
	}
	maxSteps := 0
	for _, n := range steps {
		if n > maxSteps {
			maxSteps = n
		}
	}
	dur := overhead + time.Duration(maxSteps)*realized

	run.ID = e.nextRun
	run.Asg = asg
	run.Start = now
	run.End = now + dur
	run.Overhead = overhead
	run.StepTime = realized
	run.Degree = asg.Group.Count()
	run.Batched = bs > 1
	run.Res = res
	e.nextRun++
	e.runs[run.ID] = run
	e.free = e.free.Without(asg.Group)
	if act := e.mdl.StepActivationBytes(res, bs); act > e.stepPeakBytes {
		e.stepPeakBytes = act
	}
	return run, nil
}

// obtainRun returns a zeroed Run from the free list (or a fresh one),
// keeping its reusable steps map and request buffer.
func (e *Engine) obtainRun() *Run {
	if n := len(e.pool); n > 0 {
		run := e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		return run
	}
	return &Run{Steps: make(map[workload.RequestID]int, 4)}
}

// Release hands a retired run back to the engine for reuse by a later Start.
// Call it only after the run has been finished (or aborted) and every
// observer is done reading it: the struct, its Steps map and its Requests
// storage are recycled in place. Releasing is optional — callers that retain
// runs simply never call it.
func (e *Engine) Release(run *Run) {
	if run == nil {
		return
	}
	if _, live := e.runs[run.ID]; live && e.runs[run.ID] == run {
		return // still in flight; refuse to recycle under an active block
	}
	clear(run.Steps)
	steps, buf := run.Steps, run.reqbuf[:0]
	*run = Run{Steps: steps, reqbuf: buf}
	e.pool = append(e.pool, run)
}

// Finish retires a run at its end time, freeing its GPUs and updating
// latent placement. It must be called exactly once per run.
func (e *Engine) Finish(run *Run) error {
	if _, ok := e.runs[run.ID]; !ok {
		return fmt.Errorf("engine: run %d not in flight", run.ID)
	}
	delete(e.runs, run.ID)
	e.free = e.free.Union(run.Asg.Group)
	e.gpuBusySeconds += float64(run.Degree) * (run.End - run.Start).Seconds()
	for id := range run.Steps {
		e.latents[id] = run.Asg.Group
	}
	return nil
}

// Decode schedules the VAE decode of a finished request and returns its
// completion time. With SequentialDecode the decoder is a single-slot
// queue (bounding activation memory); otherwise decodes overlap freely.
func (e *Engine) Decode(now time.Duration, res model.Resolution) time.Duration {
	d := e.est.DecodeTime(res)
	if act := e.mdl.DecodeActivationBytes(res); act > e.decodePeakBytes {
		e.decodePeakBytes = act
	}
	if !e.cfg.SequentialDecode {
		return now + d
	}
	start := now
	if e.decodeTail > start {
		start = e.decodeTail
	}
	e.decodeTail = start + d
	return e.decodeTail
}

// ReleaseLatent forgets a request's latent (after decode/drop).
func (e *Engine) ReleaseLatent(id workload.RequestID) {
	delete(e.latents, id)
}

// LatentLocation reports where a request's latent lives (0 if none).
func (e *Engine) LatentLocation(id workload.RequestID) simgpu.Mask {
	return e.latents[id]
}

// MemoryUsage estimates current HBM use on one GPU: resident weights, warm
// communicator buffers, live step activations (sharded across the group),
// and one decoder activation when the sequential decoder may run here.
func (e *Engine) MemoryUsage(gpu simgpu.GPUID) float64 {
	total := e.mdl.WeightBytes + e.groups.WarmMemoryBytes(gpu)
	for _, run := range e.runs {
		if !run.Asg.Group.Has(gpu) {
			continue
		}
		bs := len(run.Asg.Requests)
		total += e.mdl.StepActivationBytes(run.Res, bs) / float64(run.Degree)
	}
	return total
}

// MemoryHeadroom returns the minimum free HBM across GPUs given current
// load plus the worst-case decoder activation; negative values indicate the
// out-of-memory risk §5's sequential decoding exists to avoid.
func (e *Engine) MemoryHeadroom(worstDecode model.Resolution) float64 {
	head := e.topo.HW.HBMBytes
	for g := 0; g < e.topo.N; g++ {
		free := e.topo.HW.HBMBytes - e.MemoryUsage(simgpu.GPUID(g))
		if free < head {
			head = free
		}
	}
	return head - e.mdl.DecodeActivationBytes(worstDecode)
}
