package engine

import (
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
)

// TestFailGPUsAbortsIntersectingRun: a fault that hits one member of an
// in-flight block kills the whole block (the collective hangs), credits the
// steps completed so far, frees the surviving GPUs, and keeps the latent on
// the live shard only.
func TestFailGPUsAbortsIntersectingRun(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res1024, 50, 1)
	group := simgpu.MaskOf(0, 1)
	run, err := e.Start(0, asg(group, 10, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Fail GPU 1 after ~3.5 steps of progress.
	at := run.Start + run.Overhead + run.StepTime*7/2
	failures := e.FailGPUs(at, simgpu.MaskOf(1))
	if len(failures) != 1 {
		t.Fatalf("got %d failures, want 1", len(failures))
	}
	f := failures[0]
	if f.Run.ID != run.ID || f.At != at {
		t.Fatalf("failure = %+v", f)
	}
	if f.Failed != simgpu.MaskOf(1) {
		t.Fatalf("failed mask = %v, want just GPU 1", f.Failed)
	}
	if got := f.StepsDone[1]; got != 3 {
		t.Fatalf("partial credit = %d steps, want 3 (work past the last whole step is lost)", got)
	}
	if f.Error() == "" {
		t.Fatal("RunFailure must describe itself as an error")
	}

	if e.Running() != 0 {
		t.Fatal("aborted run still tracked")
	}
	if e.RunsAborted() != 1 {
		t.Fatalf("RunsAborted = %d", e.RunsAborted())
	}
	if e.FailedGPUs() != simgpu.MaskOf(1) {
		t.Fatalf("FailedGPUs = %v", e.FailedGPUs())
	}
	// Survivor freed, dead GPU out of the pool.
	if !e.Free().Has(0) {
		t.Fatal("surviving GPU 0 not freed")
	}
	if e.Free().Has(1) {
		t.Fatal("failed GPU 1 still free")
	}
	// The latent survives only on the live member; resuming anywhere is a
	// reconfiguration, not a free first placement.
	if loc := e.LatentLocation(1); loc != simgpu.MaskOf(0) {
		t.Fatalf("latent location = %v, want {0}", loc)
	}
	// The engine already retired the run; a late Finish must error so the
	// caller's forgotten completion event cannot double-free GPUs.
	if err := e.Finish(run); err == nil {
		t.Fatal("Finish after abort accepted")
	}
}

func TestFailGPUsIgnoresAlreadyFailed(t *testing.T) {
	e := newEngine(t)
	if got := e.FailGPUs(0, simgpu.MaskOf(2)); len(got) != 0 {
		t.Fatalf("idle fault produced %d failures", len(got))
	}
	if got := e.FailGPUs(time.Second, simgpu.MaskOf(2)); got != nil {
		t.Fatal("re-failing a dead GPU should be a no-op")
	}
	if e.FailedGPUs() != simgpu.MaskOf(2) {
		t.Fatalf("FailedGPUs = %v", e.FailedGPUs())
	}
}

func TestFailGPUsSparesDisjointRuns(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res512, 20, 1, 2)
	r1, err := e.Start(0, asg(simgpu.MaskOf(0, 1), 5, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Start(0, asg(simgpu.MaskOf(4, 5), 5, 2), states, 0); err != nil {
		t.Fatal(err)
	}
	failures := e.FailGPUs(time.Millisecond, simgpu.MaskOf(4))
	if len(failures) != 1 || failures[0].Run.Asg.Group != simgpu.MaskOf(4, 5) {
		t.Fatalf("wrong run aborted: %+v", failures)
	}
	if e.Running() != 1 {
		t.Fatal("disjoint run should keep running")
	}
	if err := e.Finish(r1); err != nil {
		t.Fatal(err)
	}
}

// TestFailGPUsShrinksParkedLatents: latents of requests between blocks lose
// their dead shards too.
func TestFailGPUsShrinksParkedLatents(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res512, 20, 1)
	run, err := e.Start(0, asg(simgpu.MaskOf(2, 3), 5, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(run); err != nil {
		t.Fatal(err)
	}
	if e.FailGPUs(run.End, simgpu.MaskOf(3)) != nil {
		t.Fatal("no run should be in flight")
	}
	if loc := e.LatentLocation(1); loc != simgpu.MaskOf(2) {
		t.Fatalf("parked latent = %v, want {2}", loc)
	}
}

func TestRecoverGPUsRestoresPool(t *testing.T) {
	e := newEngine(t)
	e.FailGPUs(0, simgpu.MaskOf(1, 5))
	// Recovering a healthy GPU is a no-op; only the dead ones transition.
	if got := e.RecoverGPUs(simgpu.MaskOf(0, 1)); got != simgpu.MaskOf(1) {
		t.Fatalf("recovered = %v, want {1}", got)
	}
	if e.FailedGPUs() != simgpu.MaskOf(5) {
		t.Fatalf("FailedGPUs = %v", e.FailedGPUs())
	}
	if !e.Free().Has(1) {
		t.Fatal("recovered GPU not returned to the free pool")
	}
	if got := e.RecoverGPUs(simgpu.MaskOf(0)); got != 0 {
		t.Fatalf("healthy-only recover = %v, want 0", got)
	}
}

// TestFaultInvalidatesWarmGroups: after a fault+recovery cycle the rebuilt
// process group is cold and the first block on it pays warm-up again (§5).
func TestFaultInvalidatesWarmGroups(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	g := simgpu.MaskOf(0, 1)
	states := mkStates(model.Res1024, 50, 1)
	run, err := e.Start(0, asg(g, 5, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Overhead != 0 {
		t.Fatalf("prewarmed canonical group paid %v", run.Overhead)
	}
	if err := e.Finish(run); err != nil {
		t.Fatal(err)
	}
	e.FailGPUs(run.End, simgpu.MaskOf(1))
	e.RecoverGPUs(simgpu.MaskOf(1))
	// A fresh request (no latent to move) on the same group: any overhead is
	// pure re-warm-up of the torn-down communicator.
	fresh := mkStates(model.Res1024, 50, 2)
	run2, err := e.Start(run.End, asg(g, 5, 2), fresh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Overhead == 0 {
		t.Fatal("rebuilt group should pay warm-up after the fault tore it down")
	}
}
