package engine

import (
	"fmt"
	"time"

	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// RunPreemption is the abort record for a planned capacity change, the
// cooperative sibling of RunFailure: the block stopped because its GPUs were
// donated to another shard, not because they died. Completed steps are
// credited and the latent survives on the group's retained members — the
// next placement pays the §5 re-transfer, but no work is lost.
type RunPreemption struct {
	// Run is the preempted block (already retired from the engine).
	Run *Run
	// Departed is the subset of the run's group the shard gave up.
	Departed simgpu.Mask
	// At is the resize time; the block stops making progress here.
	At time.Duration
	// StepsDone maps each member to the denoising steps it fully completed
	// before the preemption.
	StepsDone map[workload.RequestID]int
}

// Error implements error, mirroring RunFailure so a preemption can never be
// silently swallowed as a nil.
func (p *RunPreemption) Error() string {
	return fmt.Sprintf("engine: run %d preempted at %s: GPUs %v resized out from group %v",
		p.Run.ID, p.At, p.Departed, p.Run.Asg.Group)
}

// RunsPreempted returns how many in-flight blocks capacity resizes have
// preempted.
func (e *Engine) RunsPreempted() int { return e.runsPreempted }

// Resizes returns how many effective capacity changes have been applied.
func (e *Engine) Resizes() int { return e.resizes }

// Resize changes the engine's owned GPU set to newMask at time now,
// returning a RunPreemption per in-flight block that lost GPUs. Resize is the
// planned, cooperative counterpart of FailGPUs:
//
//   - departing GPUs are healthy, so every completed step is credited and the
//     latent is retained on the group's surviving members (kept even when the
//     whole group departs, so the next placement is a reconfiguration — the
//     §5 re-transfer — not a free first placement);
//   - only warm groups that overlap the departing set are invalidated; the
//     rest of the shard's NCCL state is untouched;
//   - arriving GPUs join the free pool immediately (cold: their warm groups,
//     if any, belong to their previous owner) unless currently failed.
//
// Callers own the event bookkeeping exactly as for FailGPUs: a preempted
// run's completion event must be cancelled.
func (e *Engine) Resize(now time.Duration, newMask simgpu.Mask) []*RunPreemption {
	newMask &= e.topo.AllMask()
	departing := e.capacity.Without(newMask)
	arriving := newMask.Without(e.capacity)
	if departing == 0 && arriving == 0 {
		return nil
	}
	e.resizes++
	e.capacity = newMask
	e.free = e.free.Without(departing).Union(arriving.Without(e.failed))
	if departing != 0 {
		e.groups.Invalidate(departing)
	}

	var preemptions []*RunPreemption
	for _, run := range e.runs {
		if !run.Asg.Group.Overlaps(departing) {
			continue
		}
		done := e.stepsCompletedBy(run, now)
		stepsDone := make(map[workload.RequestID]int, len(run.Steps))
		for id, n := range run.Steps {
			d := done
			if d > n {
				d = n
			}
			stepsDone[id] = d
			// Presence-based "has started" test, matching the fault path: the
			// transfer onto this group was paid at block start, so the latent
			// lives on the retained, healthy members even if the previous
			// latent mask was wholly lost.
			if _, started := e.latents[id]; d > 0 || started {
				e.latents[id] = run.Asg.Group.Without(departing).Without(e.failed)
			}
		}
		delete(e.runs, run.ID)
		e.free = e.free.Union(run.Asg.Group.Without(departing).Without(e.failed))
		e.gpuBusySeconds += float64(run.Degree) * (now - run.Start).Seconds()
		e.runsPreempted++
		preemptions = append(preemptions, &RunPreemption{
			Run:       run,
			Departed:  run.Asg.Group & departing,
			At:        now,
			StepsDone: stepsDone,
		})
	}

	// Parked latents lose their departed shards too — the devices now belong
	// to another shard; entries are kept so resumption pays reconfiguration.
	if departing != 0 {
		for id, m := range e.latents {
			if m.Overlaps(departing) {
				e.latents[id] = m.Without(departing)
			}
		}
	}
	return preemptions
}
