package engine

import (
	"fmt"
	"time"

	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// RunFailure is the typed abort record the engine surfaces when a GPU fault
// kills an in-flight step block. It carries the steps each member had
// completed at the instant of failure so callers can credit partial
// progress and requeue the survivors. RunFailure implements error so the
// fault path can never be silently swallowed as a nil.
type RunFailure struct {
	// Run is the aborted block (already retired from the engine).
	Run *Run
	// Failed is the subset of the run's group that died.
	Failed simgpu.Mask
	// At is the fault time; the block stops making progress here.
	At time.Duration
	// StepsDone maps each member to the denoising steps it fully completed
	// before the fault (work after the last completed step is lost).
	StepsDone map[workload.RequestID]int
}

// Error implements error.
func (f *RunFailure) Error() string {
	return fmt.Sprintf("engine: run %d aborted at %s: GPUs %v failed under group %v",
		f.Run.ID, f.At, f.Failed, f.Run.Asg.Group)
}

// Failed returns the currently failed GPU mask.
func (e *Engine) FailedGPUs() simgpu.Mask { return e.failed }

// RunsAborted returns how many in-flight blocks GPU faults have killed.
func (e *Engine) RunsAborted() int { return e.runsAborted }

// FailGPUs marks the GPUs in mask as fail-stopped at time now. Every
// in-flight run whose group intersects the newly failed set is aborted and
// returned as a RunFailure: its surviving GPUs are freed, members are
// credited with the steps completed before the fault, and the latent copies
// that lived on dead GPUs are dropped (the surviving shard mask is kept so
// resuming on any group pays the §5 latent re-transfer and remap costs).
// Warm process groups containing a dead GPU are invalidated, so rebuilt
// groups pay NCCL warm-up again.
//
// Callers own the event bookkeeping: an aborted run's completion event must
// be cancelled, since the engine has already retired it and a later Finish
// would error.
func (e *Engine) FailGPUs(now time.Duration, mask simgpu.Mask) []*RunFailure {
	newly := (mask & e.topo.AllMask()).Without(e.failed)
	if newly == 0 {
		return nil
	}
	e.failed = e.failed.Union(newly)
	e.free = e.free.Without(newly)
	e.groups.Invalidate(newly)

	var failures []*RunFailure
	for _, run := range e.runs {
		if !run.Asg.Group.Overlaps(newly) {
			continue
		}
		done := e.stepsCompletedBy(run, now)
		stepsDone := make(map[workload.RequestID]int, len(run.Steps))
		for id, n := range run.Steps {
			d := done
			if d > n {
				d = n
			}
			stepsDone[id] = d
			// The latent survives only on the group's live members; the
			// entry is kept (even when empty) so the next placement is a
			// reconfiguration, not a free first placement. Presence of the
			// entry — not a non-empty mask — is the "has started" test: the
			// transfer onto this group was already paid at block start, so
			// even a request whose previous latent was wholly lost now has
			// its state on the group's survivors.
			if _, started := e.latents[id]; d > 0 || started {
				e.latents[id] = run.Asg.Group.Without(e.failed)
			}
		}
		delete(e.runs, run.ID)
		e.free = e.free.Union(run.Asg.Group.Without(e.failed))
		e.gpuBusySeconds += float64(run.Degree) * (now - run.Start).Seconds()
		e.runsAborted++
		failures = append(failures, &RunFailure{
			Run:       run,
			Failed:    run.Asg.Group & newly,
			At:        now,
			StepsDone: stepsDone,
		})
	}

	// Latents of parked requests (between blocks) lose their dead shards too.
	for id, m := range e.latents {
		if m.Overlaps(newly) {
			e.latents[id] = m.Without(newly)
		}
	}
	return failures
}

// RecoverGPUs returns previously failed GPUs to service and reports which
// ones actually transitioned. Recovered devices come back cold: their warm
// groups were invalidated at fault time, so first collectives re-pay warm-up.
// A recovered GPU the shard no longer owns (resized away while failed) is
// healthy again but not free — it rejoins the pool only via a future Resize.
func (e *Engine) RecoverGPUs(mask simgpu.Mask) simgpu.Mask {
	recovered := mask & e.failed
	if recovered == 0 {
		return 0
	}
	e.failed = e.failed.Without(recovered)
	e.free = e.free.Union(recovered & e.capacity)
	return recovered
}

// stepsCompletedBy returns how many whole steps of a run had finished by t.
func (e *Engine) stepsCompletedBy(run *Run, t time.Duration) int {
	elapsed := t - run.Start - run.Overhead
	if elapsed <= 0 || run.StepTime <= 0 {
		return 0
	}
	return int(elapsed / run.StepTime)
}
