package engine

import (
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
)

// TestResizePreemptsWithFullCredit: shrinking capacity out from under an
// in-flight block preempts it cooperatively — completed steps credited, the
// latent retained on the surviving members, survivors freed — unlike a fault,
// which marks devices dead.
func TestResizePreemptsWithFullCredit(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res1024, 50, 1)
	group := simgpu.MaskOf(0, 1)
	run, err := e.Start(0, asg(group, 10, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Donate GPU 1 after ~3.5 steps of progress.
	at := run.Start + run.Overhead + run.StepTime*7/2
	newCap := e.Capacity().Without(simgpu.MaskOf(1))
	preempted := e.Resize(at, newCap)
	if len(preempted) != 1 {
		t.Fatalf("got %d preemptions, want 1", len(preempted))
	}
	p := preempted[0]
	if p.Run.ID != run.ID || p.At != at {
		t.Fatalf("preemption = %+v", p)
	}
	if p.Departed != simgpu.MaskOf(1) {
		t.Fatalf("departed = %v, want {1}", p.Departed)
	}
	if got := p.StepsDone[1]; got != 3 {
		t.Fatalf("credit = %d steps, want 3", got)
	}
	if p.Error() == "" {
		t.Fatal("RunPreemption must describe itself as an error")
	}

	if e.Running() != 0 {
		t.Fatal("preempted run still tracked")
	}
	if e.RunsPreempted() != 1 || e.RunsAborted() != 0 {
		t.Fatalf("preempted=%d aborted=%d, want 1, 0", e.RunsPreempted(), e.RunsAborted())
	}
	if e.Resizes() != 1 {
		t.Fatalf("Resizes = %d", e.Resizes())
	}
	// Departing GPUs are healthy — no fault bookkeeping.
	if e.FailedGPUs() != 0 {
		t.Fatalf("FailedGPUs = %v after a planned resize", e.FailedGPUs())
	}
	if e.Capacity() != newCap {
		t.Fatalf("Capacity = %v, want %v", e.Capacity(), newCap)
	}
	if e.HealthyGPUs() != newCap.Count() {
		t.Fatalf("HealthyGPUs = %d, want %d", e.HealthyGPUs(), newCap.Count())
	}
	// Survivor freed; the donated GPU is out of the pool entirely.
	if !e.Free().Has(0) {
		t.Fatal("surviving GPU 0 not freed")
	}
	if e.Free().Has(1) {
		t.Fatal("donated GPU 1 still in the free pool")
	}
	// Latent handoff: retained on the surviving member, so resumption is a
	// reconfiguration, not a restart.
	if loc := e.LatentLocation(1); loc != simgpu.MaskOf(0) {
		t.Fatalf("latent location = %v, want {0}", loc)
	}
	if err := e.Finish(run); err == nil {
		t.Fatal("Finish after preemption accepted")
	}
}

func TestResizeNoOpAndGrow(t *testing.T) {
	e := newEngine(t)
	all := e.Capacity()
	if got := e.Resize(0, all); got != nil {
		t.Fatal("same-mask resize should be a no-op")
	}
	if e.Resizes() != 0 {
		t.Fatalf("no-op counted: Resizes = %d", e.Resizes())
	}

	// Shrink to half, then grow back: arriving GPUs join the free pool.
	half := simgpu.MaskRange(0, all.Count()/2)
	e.Resize(0, half)
	if e.Free() != half {
		t.Fatalf("free = %v, want %v", e.Free(), half)
	}
	e.Resize(time.Second, all)
	if e.Free() != all {
		t.Fatalf("free after grow = %v, want %v", e.Free(), all)
	}
	if e.Resizes() != 2 {
		t.Fatalf("Resizes = %d, want 2", e.Resizes())
	}
}

// TestResizeGrowSkipsFailedGPUs: a GPU that is failed while outside the shard
// does not join the free pool when the shard grows over it.
func TestResizeGrowSkipsFailedGPUs(t *testing.T) {
	e := newEngine(t)
	all := e.Capacity()
	half := simgpu.MaskRange(0, all.Count()/2)
	e.Resize(0, half)
	dead := all.Highest()
	e.FailGPUs(0, dead)
	e.Resize(time.Second, all)
	if e.Free().Overlaps(dead) {
		t.Fatal("failed GPU entered the free pool via resize")
	}
	if e.HealthyGPUs() != all.Count()-1 {
		t.Fatalf("HealthyGPUs = %d, want %d", e.HealthyGPUs(), all.Count()-1)
	}
	// Recovery while owned returns it to service.
	e.RecoverGPUs(dead)
	if !e.Free().Overlaps(dead) {
		t.Fatal("recovered GPU not freed")
	}
}

// TestResizeShrinksParkedLatents: latents of requests between blocks lose
// their donated shards but keep their entry (resumption pays the §5
// re-transfer).
func TestResizeShrinksParkedLatents(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	states := mkStates(model.Res512, 20, 1)
	run, err := e.Start(0, asg(simgpu.MaskOf(2, 3), 5, 1), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(run); err != nil {
		t.Fatal(err)
	}
	if got := e.Resize(run.End, e.Capacity().Without(simgpu.MaskOf(3))); got != nil {
		t.Fatal("no run should be in flight")
	}
	if loc := e.LatentLocation(1); loc != simgpu.MaskOf(2) {
		t.Fatalf("parked latent = %v, want {2}", loc)
	}
}

// TestResizeInvalidatesDepartingWarmGroups: donating a warm group's member
// tears down its communicator; disjoint warm groups stay warm.
func TestResizeInvalidatesDepartingWarmGroups(t *testing.T) {
	e := newEngine(t, func(c *Config) { c.Noise = 0 })
	warm := func(g simgpu.Mask, id int) time.Duration {
		t.Helper()
		states := mkStates(model.Res1024, 50, id)
		run, err := e.Start(0, asg(g, 5, id), states, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Finish(run); err != nil {
			t.Fatal(err)
		}
		return run.End
	}
	end1 := warm(simgpu.MaskOf(0, 1), 1)
	end2 := warm(simgpu.MaskOf(2, 3), 2)
	end := max(end1, end2)

	// Donate GPU 1, then take it back: {0,1} must re-warm, {2,3} must not.
	e.Resize(end, e.Capacity().Without(simgpu.MaskOf(1)))
	e.Resize(end, e.Capacity().Union(simgpu.MaskOf(1)))
	states := mkStates(model.Res1024, 50, 3)
	run3, err := e.Start(end, asg(simgpu.MaskOf(0, 1), 5, 3), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run3.Overhead == 0 {
		t.Fatal("group overlapping the donated GPU should pay warm-up again")
	}
	fresh := mkStates(model.Res1024, 50, 4)
	run4, err := e.Start(end, asg(simgpu.MaskOf(2, 3), 5, 4), fresh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run4.Overhead != 0 {
		t.Fatalf("disjoint warm group re-paid %v after unrelated resize", run4.Overhead)
	}
}
