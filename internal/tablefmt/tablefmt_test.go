package tablefmt

import (
	"strings"
	"testing"
)

func TestBasicRendering(t *testing.T) {
	tb := New("Title", "A", "Column B")
	tb.AddRow("1", "2")
	tb.AddRow("longer", "x")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "Column B") {
		t.Fatal("header missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), out)
	}
	// Columns align: "longer" forces column A to width 6.
	if !strings.HasPrefix(lines[2], "A     ") {
		t.Fatalf("header not padded to widest cell: %q", lines[2])
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := New("My Table", "x", "y")
	tb.AddRow("1", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "### My Table") {
		t.Fatal("markdown title missing")
	}
	if !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("markdown row missing:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Fatalf("markdown separator missing:\n%s", md)
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("", "name", "sar")
	tb.AddRowf("%s", "TetriServe", "%.2f", 0.919)
	if tb.Rows[0][0] != "TetriServe" || tb.Rows[0][1] != "0.92" {
		t.Fatalf("AddRowf produced %v", tb.Rows[0])
	}
}

func TestAddRowfPanicsOnOddArgs(t *testing.T) {
	tb := New("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("odd argument count should panic")
		}
	}()
	tb.AddRowf("%s")
}

func TestAddRowfPanicsOnNonStringFormat(t *testing.T) {
	tb := New("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("non-string format should panic")
		}
	}()
	tb.AddRowf(42, "x")
}

func TestNotes(t *testing.T) {
	tb := New("T", "a")
	tb.AddNote("shape holds at %.0f%%", 32.0)
	out := tb.String()
	if !strings.Contains(out, "note: shape holds at 32%") {
		t.Fatalf("note missing:\n%s", out)
	}
}

func TestUntitledTable(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") || strings.Contains(out, "===") {
		t.Fatalf("untitled table should skip title block:\n%s", out)
	}
}

func TestRowWiderThanHeaders(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("1", "extra", "cells")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{
		Name:   "cdf",
		XLabel: "latency",
		YLabel: "P",
		Points: [][2]float64{{1, 0.5}, {2, 1}},
	}
	out := s.String()
	if !strings.Contains(out, "latency") || !strings.Contains(out, "0.5") {
		t.Fatalf("series rendering missing data:\n%s", out)
	}
}
