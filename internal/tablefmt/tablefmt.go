// Package tablefmt renders the experiment harness's output: aligned ASCII
// tables (one per paper table/figure) and simple labelled series. Keeping
// rendering in one place means every bench and the CLI print identically.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is an in-memory table with a title, column headers, and string rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// New returns an empty table with the given title and headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are preserved as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from printf-style (format, value) pairs given
// as alternating arguments, e.g. AddRowf("%s", name, "%.2f", sar).
func (t *Table) AddRowf(pairs ...any) {
	if len(pairs)%2 != 0 {
		panic("tablefmt: AddRowf needs format/value pairs")
	}
	row := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		format, ok := pairs[i].(string)
		if !ok {
			panic("tablefmt: AddRowf format must be a string")
		}
		row = append(row, fmt.Sprintf(format, pairs[i+1]))
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	t.render(&sb, false)
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	t.render(&sb, true)
	return sb.String()
}

func (t *Table) render(sb *strings.Builder, markdown bool) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if markdown {
			fmt.Fprintf(sb, "### %s\n\n", t.Title)
		} else {
			fmt.Fprintf(sb, "%s\n", t.Title)
			fmt.Fprintf(sb, "%s\n", strings.Repeat("=", len(t.Title)))
		}
	}
	sep := "  "
	if markdown {
		sep = " | "
	}
	writeRow := func(cells []string) {
		if markdown {
			sb.WriteString("|")
		}
		for i := 0; i < len(widths); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if markdown {
				fmt.Fprintf(sb, " %-*s |", widths[i], cell)
			} else {
				if i > 0 {
					sb.WriteString(sep)
				}
				fmt.Fprintf(sb, "%-*s", widths[i], cell)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	if markdown {
		sb.WriteString("|")
		for _, w := range widths {
			sb.WriteString(strings.Repeat("-", w+2))
			sb.WriteString("|")
		}
		sb.WriteString("\n")
	} else {
		total := 0
		for _, w := range widths {
			total += w
		}
		total += len(sep) * (len(widths) - 1)
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteString("\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(sb, "note: %s\n", n)
	}
}

// Series is a labelled sequence of (x, y) points, used for CDFs and
// time-series plots (Figs 9–11) where a table of sampled points stands in
// for the paper's line charts.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points [][2]float64
}

// String renders the series as a two-column table.
func (s *Series) String() string {
	t := New(s.Name, s.XLabel, s.YLabel)
	for _, p := range s.Points {
		t.AddRowf("%.4g", p[0], "%.4g", p[1])
	}
	return t.String()
}
