package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	if q.Peek() != nil || q.Pop() != nil {
		t.Fatal("empty queue should peek/pop nil")
	}
}

func TestOrderingByTime(t *testing.T) {
	var q Queue
	q.Push(3*time.Second, 0, "c")
	q.Push(1*time.Second, 0, "a")
	q.Push(2*time.Second, 0, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Payload.(string))
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("pop order %v, want [a b c]", got)
	}
}

func TestStableTiebreak(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		q.Push(time.Second, 0, i)
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop().Payload.(int); got != i {
			t.Fatalf("simultaneous events popped out of insertion order: got %d at position %d", got, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(time.Second, 7, nil)
	ev := q.Peek()
	if ev == nil || ev.Kind != 7 {
		t.Fatal("peek returned wrong event")
	}
	if q.Len() != 1 {
		t.Fatal("peek removed the event")
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	h1 := q.Push(1*time.Second, 0, "a")
	q.Push(2*time.Second, 0, "b")
	if !h1.Valid() {
		t.Fatal("fresh handle should be valid")
	}
	if !q.Cancel(h1) {
		t.Fatal("cancel of pending event should succeed")
	}
	if h1.Valid() {
		t.Fatal("handle should be invalid after cancel")
	}
	if q.Cancel(h1) {
		t.Fatal("double cancel should be a no-op returning false")
	}
	if got := q.Pop().Payload.(string); got != "b" {
		t.Fatalf("cancelled event leaked: got %q", got)
	}
}

func TestCancelAfterPop(t *testing.T) {
	var q Queue
	h := q.Push(time.Second, 0, nil)
	q.Pop()
	if q.Cancel(h) {
		t.Fatal("cancel after pop should return false")
	}
}

func TestCancelMiddleKeepsHeapValid(t *testing.T) {
	var q Queue
	var handles []Handle
	for i := 0; i < 50; i++ {
		handles = append(handles, q.Push(time.Duration(i)*time.Millisecond, 0, i))
	}
	// Remove every third event.
	for i := 0; i < 50; i += 3 {
		q.Cancel(handles[i])
	}
	last := time.Duration(-1)
	for q.Len() > 0 {
		ev := q.Pop()
		if ev.At < last {
			t.Fatalf("heap order violated after cancels: %v after %v", ev.At, last)
		}
		last = ev.At
		if ev.Payload.(int)%3 == 0 {
			t.Fatalf("cancelled event %d survived", ev.Payload)
		}
	}
}

// TestMatchesReferenceSort pushes random events and verifies pop order
// equals a stable sort by (time, insertion order).
func TestMatchesReferenceSort(t *testing.T) {
	check := func(times []uint16) bool {
		if len(times) > 512 {
			times = times[:512]
		}
		var q Queue
		type ref struct {
			at  time.Duration
			seq int
		}
		var want []ref
		for i, raw := range times {
			at := time.Duration(raw) * time.Millisecond
			q.Push(at, 0, i)
			want = append(want, ref{at, i})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		for _, w := range want {
			ev := q.Pop()
			if ev == nil || ev.At != w.at || ev.Payload.(int) != w.seq {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q Queue
	last := time.Duration(-1)
	pushed, popped := 0, 0
	for i := 0; i < 10000; i++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			// Time must not go backwards relative to last pop to mimic
			// simulator usage.
			at := last + time.Duration(rng.Intn(1000))*time.Microsecond
			if at < 0 {
				at = 0
			}
			q.Push(at, 0, nil)
			pushed++
		} else {
			ev := q.Pop()
			if ev.At < last {
				t.Fatalf("event time went backwards: %v after %v", ev.At, last)
			}
			last = ev.At
			popped++
		}
	}
	if popped+q.Len() != pushed {
		t.Fatalf("event conservation violated: pushed %d, popped %d, left %d", pushed, popped, q.Len())
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(rng.Intn(1_000_000)), 0, nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
