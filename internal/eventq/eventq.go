// Package eventq provides the priority queue at the heart of the
// discrete-event simulator: events ordered by firing time, with a stable
// sequence-number tiebreak so that simultaneous events fire in the order
// they were scheduled. Events can be cancelled in O(log n) via the handle
// returned at push time.
//
// Event structs are pooled: Push draws from a free list refilled by Recycle,
// so a steady-state simulation allocates no per-event memory. Handles carry
// a generation stamp, making a stale handle to a recycled event a harmless
// no-op rather than a cancellation of whatever event reused the slot.
package eventq

import (
	"time"
)

// Event is a scheduled callback. Payload interpretation is up to the caller.
type Event struct {
	At      time.Duration // firing time
	Kind    int           // caller-defined discriminator
	Payload any

	seq   uint64 // insertion order, breaks ties deterministically
	index int    // heap index, -1 once popped or cancelled
	gen   uint32 // incremented on recycle; invalidates old handles
}

// Handle identifies a scheduled event for cancellation. A handle taken
// before the event was popped or recycled stays safe to use: once the
// event's generation moves on, Cancel and Valid treat it as spent.
type Handle struct {
	ev  *Event
	gen uint32
}

// Queue is a min-heap of events keyed by (At, seq). The zero value is ready
// to use. Queue is not safe for concurrent use; the simulator owns it.
type Queue struct {
	h   eventHeap
	seq uint64
	// pool is the free list of recycled events (see Recycle).
	pool []*Event
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules an event and returns a cancellation handle.
func (q *Queue) Push(at time.Duration, kind int, payload any) Handle {
	var ev *Event
	if n := len(q.pool); n > 0 {
		ev = q.pool[n-1]
		q.pool[n-1] = nil
		q.pool = q.pool[:n-1]
		ev.At, ev.Kind, ev.Payload = at, kind, payload
	} else {
		ev = &Event{At: at, Kind: kind, Payload: payload}
	}
	ev.seq = q.seq
	q.seq++
	ev.index = len(q.h)
	q.h = append(q.h, ev)
	q.h.up(ev.index)
	return Handle{ev: ev, gen: ev.gen}
}

// Peek returns the earliest pending event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the earliest pending event, or nil if empty.
// Ownership transfers to the caller; hand the event back with Recycle once
// it has been dispatched to keep the hot path allocation-free.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h.remove(0)
}

// Recycle returns a popped (or cancelled) event to the pool for reuse by a
// later Push. The caller must not touch the event afterwards; outstanding
// handles to it are invalidated. Recycling nil or an event still on the heap
// is a no-op.
func (q *Queue) Recycle(ev *Event) {
	if ev == nil || ev.index >= 0 {
		return
	}
	ev.gen++
	ev.Payload = nil
	q.pool = append(q.pool, ev)
}

// Cancel removes the event behind h if it is still pending. It reports
// whether anything was removed. Cancelling twice, or cancelling a handle
// whose event has been recycled into a new one, is a harmless no-op. The
// removed event is recycled automatically.
func (q *Queue) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	q.h.remove(h.ev.index)
	q.Recycle(h.ev)
	return true
}

// Valid reports whether the handle still refers to a pending event.
func (h Handle) Valid() bool { return h.ev != nil && h.ev.index >= 0 && h.ev.gen == h.gen }

// eventHeap is a hand-rolled binary min-heap over (At, seq). The key is a
// total order (seq is unique), so the pop sequence is fully determined by
// the push sequence — swapping container/heap's interface dispatch for the
// concrete sift loops below cannot reorder a single event.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h eventHeap) up(j int) {
	for j > 0 {
		parent := (j - 1) / 2
		if !h.less(j, parent) {
			break
		}
		h.swap(j, parent)
		j = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// remove detaches and returns the event at heap index i, restoring the heap
// property (the same swap-with-last scheme heap.Remove uses).
func (h *eventHeap) remove(i int) *Event {
	old := *h
	n := len(old) - 1
	if n != i {
		old.swap(i, n)
	}
	ev := old[n]
	old[n] = nil
	ev.index = -1
	*h = old[:n]
	if n != i {
		(*h).down(i)
		(*h).up(i)
	}
	return ev
}
