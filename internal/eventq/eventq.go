// Package eventq provides the priority queue at the heart of the
// discrete-event simulator: events ordered by firing time, with a stable
// sequence-number tiebreak so that simultaneous events fire in the order
// they were scheduled. Events can be cancelled in O(log n) via the handle
// returned at push time.
package eventq

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Payload interpretation is up to the caller.
type Event struct {
	At      time.Duration // firing time
	Kind    int           // caller-defined discriminator
	Payload any

	seq   uint64 // insertion order, breaks ties deterministically
	index int    // heap index, -1 once popped or cancelled
}

// Handle identifies a scheduled event for cancellation.
type Handle struct{ ev *Event }

// Queue is a min-heap of events keyed by (At, seq). The zero value is ready
// to use. Queue is not safe for concurrent use; the simulator owns it.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules an event and returns a cancellation handle.
func (q *Queue) Push(at time.Duration, kind int, payload any) Handle {
	ev := &Event{At: at, Kind: kind, Payload: payload, seq: q.seq}
	q.seq++
	heap.Push(&q.h, ev)
	return Handle{ev: ev}
}

// Peek returns the earliest pending event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the earliest pending event, or nil if empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	ev := heap.Pop(&q.h).(*Event)
	return ev
}

// Cancel removes the event behind h if it is still pending. It reports
// whether anything was removed. Cancelling twice is a harmless no-op.
func (q *Queue) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.index < 0 {
		return false
	}
	heap.Remove(&q.h, h.ev.index)
	return true
}

// Valid reports whether the handle still refers to a pending event.
func (h Handle) Valid() bool { return h.ev != nil && h.ev.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
