package telemetry

import (
	"sync"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/workload"
)

// Decision explains one request's placement in one planning round: the
// chosen SP degree, the deadline slack at decision time, and the §5
// survival verdict (whether the remaining steps finish by the deadline at
// the chosen degree's profiled step time, decode excluded).
type Decision struct {
	Request    workload.RequestID
	Res        model.Resolution
	Degree     int
	Steps      int
	Group      uint64 // GPU bitmask
	BestEffort bool
	Batched    bool
	// DeadlineSlack is deadline − now at decision time (negative = already
	// late). ProjectedFinish is now + remaining × T(res, degree); Survives
	// reports ProjectedFinish ≤ deadline (false when the degree is not in
	// the profile, which also leaves ProjectedFinish zero).
	DeadlineSlack   time.Duration
	ProjectedFinish time.Duration
	Survives        bool
}

// RoundRecord is one planning round's decision record: queue state going
// in, solve latency, and either per-request decisions or the rejection
// reason.
type RoundRecord struct {
	// Seq increments per plan call; the ring keeps the last cap records.
	Seq uint64
	// At is the loop clock at the plan call.
	At time.Duration
	// PlanLatency is the scheduler's solve time (wall clock).
	PlanLatency time.Duration
	// Pending/Running/FreeGPUs snapshot the planning context.
	Pending  int
	Running  int
	FreeGPUs int
	// Rejected holds the validator's reason when the plan was refused
	// (Decisions is empty then).
	Rejected  string
	Decisions []Decision
}

// clone deep-copies the record (Decisions storage is ring-owned).
func (r RoundRecord) clone() RoundRecord {
	r.Decisions = append([]Decision(nil), r.Decisions...)
	return r
}

// RoundLog is a bounded ring of per-round decision records, written by the
// control-loop goroutine through hooks and read concurrently by the
// GET /v1/rounds handler. Record storage is reused once the ring wraps, so
// steady-state capture allocates nothing.
//
// The write protocol relies on control.Hooks ordering: PlanComputed stages
// a record, then exactly one of Planned or PlanRejected commits it, all
// synchronously on the loop goroutine.
type RoundLog struct {
	mu   sync.Mutex
	ring []RoundRecord
	n    uint64 // total committed

	// cur is the staged record (loop goroutine only, outside mu).
	cur RoundRecord
	// scratch maps pending request ids for O(1) decision lookup; cleared
	// (not reallocated) every round.
	scratch map[workload.RequestID]*sched.RequestState
}

// NewRoundLog builds a ring holding the last cap rounds (default 512).
func NewRoundLog(cap int) *RoundLog {
	if cap <= 0 {
		cap = 512
	}
	return &RoundLog{
		ring:    make([]RoundRecord, 0, cap),
		scratch: map[workload.RequestID]*sched.RequestState{},
	}
}

// OnPlanComputed stages a new record; the control loop fires it on every
// scheduler invocation, before validation.
func (l *RoundLog) OnPlanComputed(now, latency time.Duration, ctx *sched.PlanContext) {
	l.cur.At = now
	l.cur.PlanLatency = latency
	l.cur.Pending = len(ctx.Pending)
	l.cur.Running = len(ctx.Running)
	l.cur.FreeGPUs = ctx.Free.Count()
	l.cur.Rejected = ""
	l.cur.Decisions = l.cur.Decisions[:0]
}

// OnPlanned fills per-request decisions from a validated plan and commits
// the staged record. ctx and plan alias scheduler scratch storage and are
// only read synchronously.
func (l *RoundLog) OnPlanned(now time.Duration, ctx *sched.PlanContext, plan []sched.Assignment) {
	clear(l.scratch)
	for _, st := range ctx.Pending {
		l.scratch[st.Req.ID] = st
	}
	for i := range plan {
		a := &plan[i]
		degree := a.Group.Count()
		batched := len(a.Requests) > 1
		for _, id := range a.Requests {
			st, ok := l.scratch[id]
			if !ok {
				continue
			}
			d := Decision{
				Request:       id,
				Res:           st.Req.Res,
				Degree:        degree,
				Steps:         a.Steps,
				Group:         uint64(a.Group),
				BestEffort:    a.BestEffort,
				Batched:       batched,
				DeadlineSlack: st.Deadline() - now,
			}
			if e, ok := ctx.Profile.Lookup(st.Req.Res, degree, 1); ok {
				d.ProjectedFinish = now + time.Duration(st.Remaining)*e.Mean
				d.Survives = d.ProjectedFinish <= st.Deadline()
			}
			l.cur.Decisions = append(l.cur.Decisions, d)
		}
	}
	l.commit()
}

// OnPlanRejected commits the staged record with the validator's reason.
func (l *RoundLog) OnPlanRejected(now time.Duration, err error) {
	l.cur.Rejected = err.Error()
	l.cur.Decisions = l.cur.Decisions[:0]
	l.commit()
}

func (l *RoundLog) commit() {
	l.mu.Lock()
	var reuse []Decision
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, l.cur)
	} else {
		i := int(l.n % uint64(cap(l.ring)))
		reuse = l.ring[i].Decisions // recycle the evicted record's storage
		l.ring[i] = l.cur
	}
	l.ring[int(l.n%uint64(cap(l.ring)))].Seq = l.n
	l.n++
	l.mu.Unlock()
	l.cur = RoundRecord{Decisions: reuse[:0]}
}

// Len returns how many rounds have been committed in total.
func (l *RoundLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.n)
}

// Snapshot returns deep copies of the last n records, oldest first. n ≤ 0
// or n larger than the retained window returns everything retained.
func (l *RoundLog) Snapshot(n int) []RoundRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	have := len(l.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]RoundRecord, 0, n)
	for k := int(l.n) - n; k < int(l.n); k++ {
		out = append(out, l.ring[k%cap(l.ring)].clone())
	}
	return out
}
