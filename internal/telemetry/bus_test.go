package telemetry

import (
	"sync"
	"testing"

	"tetriserve/internal/trace"
)

func TestBusIdleAndActive(t *testing.T) {
	b := NewBus(nil, nil)
	if b.Active() {
		t.Fatal("fresh bus should be inactive")
	}
	b.Publish(trace.Event{Kind: trace.KindArrival}) // no subscribers: no-op
	ch, cancel := b.Subscribe(4)
	if !b.Active() || b.Subscribers() != 1 {
		t.Fatalf("active=%v subs=%d after subscribe", b.Active(), b.Subscribers())
	}
	b.Publish(trace.Event{AtUS: 7, Kind: trace.KindArrival})
	if ev := <-ch; ev.AtUS != 7 {
		t.Fatalf("received %+v", ev)
	}
	cancel()
	cancel() // idempotent
	if b.Active() || b.Subscribers() != 0 {
		t.Fatal("bus should be inactive after cancel")
	}
}

func TestBusSlowSubscriberDropsCounted(t *testing.T) {
	r := NewRegistry()
	dropped := r.Counter("dropped_total", "help")
	gauge := r.Gauge("subs", "help")
	b := NewBus(dropped, gauge)
	_, cancel := b.Subscribe(2)
	defer cancel()
	if gauge.Value() != 1 {
		t.Fatalf("subscriber gauge = %v", gauge.Value())
	}
	// Nobody reads: buffer (2) fills, the rest drop without blocking.
	for i := 0; i < 10; i++ {
		b.Publish(trace.Event{AtUS: int64(i)})
	}
	if got := dropped.Value(); got != 8 {
		t.Fatalf("dropped = %v, want 8", got)
	}
}

// TestBusDropCounterCountsOnlyRealDrops: successful deliveries must never
// bump the dropped counter — it moves only when a subscriber's buffer is
// actually full (regression guard for the drop-accounting path).
func TestBusDropCounterCountsOnlyRealDrops(t *testing.T) {
	r := NewRegistry()
	dropped := r.Counter("dropped_total", "help")
	b := NewBus(dropped, nil)

	// Fast subscriber with room for everything: zero drops.
	fast, cancelFast := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish(trace.Event{AtUS: int64(i)})
	}
	if got := dropped.Value(); got != 0 {
		t.Fatalf("dropped = %v after 10 buffered deliveries, want 0", got)
	}
	for i := 0; i < 10; i++ {
		<-fast
	}

	// Mixed fleet: the slow subscriber (buffer 3, never read) drops 7 of 10,
	// the fast one keeps up. Only the slow subscriber's losses are counted.
	_, cancelSlow := b.Subscribe(3)
	defer cancelSlow()
	for i := 0; i < 10; i++ {
		b.Publish(trace.Event{AtUS: int64(i)})
		<-fast // drain so the fast subscriber never fills
	}
	if got := dropped.Value(); got != 7 {
		t.Fatalf("dropped = %v, want 7 (slow subscriber only)", got)
	}

	// A cancelled subscriber's full buffer must stop counting against us.
	cancelFast()
	before := dropped.Value()
	b.Publish(trace.Event{AtUS: 99})
	if got := dropped.Value(); got != before+1 {
		t.Fatalf("dropped moved by %v, want exactly 1 (the remaining slow subscriber)", got-before)
	}
}

func TestBusFanOut(t *testing.T) {
	b := NewBus(nil, nil)
	a, cancelA := b.Subscribe(8)
	c, cancelC := b.Subscribe(8)
	defer cancelA()
	defer cancelC()
	b.Publish(trace.Event{AtUS: 1})
	if (<-a).AtUS != 1 || (<-c).AtUS != 1 {
		t.Fatal("both subscribers should receive the event")
	}
	cancelC()
	b.Publish(trace.Event{AtUS: 2})
	if (<-a).AtUS != 2 {
		t.Fatal("remaining subscriber should keep receiving")
	}
	select {
	case ev := <-c:
		t.Fatalf("cancelled subscriber received %+v", ev)
	default:
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus(nil, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				b.Publish(trace.Event{AtUS: int64(j)})
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ch, cancel := b.Subscribe(16)
				select {
				case <-ch:
				case <-stop:
				default:
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	close(stop)
	if b.Subscribers() != 0 {
		t.Fatalf("leaked subscribers: %d", b.Subscribers())
	}
}
