package telemetry

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

var roundsProf = costmodel.BuildProfile(
	costmodel.NewEstimator(model.FLUX(), simgpu.H100x8()), costmodel.ProfilerConfig{})

// fakeRound pushes one synthetic PlanComputed→Planned pair through the log.
func fakeRound(l *RoundLog, now time.Duration, ids ...workload.RequestID) {
	var pending []*sched.RequestState
	var reqs []workload.RequestID
	for _, id := range ids {
		pending = append(pending, &sched.RequestState{
			Req: &workload.Request{
				ID: id, Res: model.Res512, Steps: 50,
				SLO: 2 * time.Second, Arrival: now - time.Second,
			},
			Remaining: 50,
		})
		reqs = append(reqs, id)
	}
	ctx := &sched.PlanContext{
		Now:     now,
		Free:    simgpu.MaskOf(0) | simgpu.MaskOf(1),
		Pending: pending,
		Profile: roundsProf,
	}
	l.OnPlanComputed(now, 42*time.Microsecond, ctx)
	var plan []sched.Assignment
	if len(reqs) > 0 {
		plan = []sched.Assignment{{
			Requests: reqs,
			Group:    simgpu.MaskOf(0) | simgpu.MaskOf(1),
			Steps:    10,
		}}
	}
	l.OnPlanned(now, ctx, plan)
}

func TestRoundLogDecisions(t *testing.T) {
	l := NewRoundLog(8)
	fakeRound(l, time.Second, 1, 2)
	recs := l.Snapshot(0)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	rec := recs[0]
	if rec.Seq != 0 || rec.At != time.Second || rec.PlanLatency != 42*time.Microsecond {
		t.Fatalf("header = %+v", rec)
	}
	if rec.Pending != 2 || rec.FreeGPUs != 2 {
		t.Fatalf("context snapshot = %+v", rec)
	}
	if len(rec.Decisions) != 2 {
		t.Fatalf("decisions = %+v", rec.Decisions)
	}
	for _, d := range rec.Decisions {
		if d.Degree != 2 || d.Steps != 10 || !d.Batched {
			t.Fatalf("decision = %+v", d)
		}
		// Arrival now−1s, SLO 2s → deadline slack 1s at decision time.
		if d.DeadlineSlack != time.Second {
			t.Fatalf("slack = %v, want 1s", d.DeadlineSlack)
		}
		// 50 remaining steps at the profiled 512²@2 step time: the survival
		// verdict must be derived (projection non-zero).
		if d.ProjectedFinish == 0 {
			t.Fatalf("projection missing: %+v", d)
		}
		e, ok := roundsProf.Lookup(model.Res512, 2, 1)
		if !ok {
			t.Fatal("profile lookup failed")
		}
		wantFinish := time.Second + 50*e.Mean
		if d.ProjectedFinish != wantFinish {
			t.Fatalf("projected = %v, want %v", d.ProjectedFinish, wantFinish)
		}
		if d.Survives != (wantFinish <= 2*time.Second) {
			t.Fatalf("survives = %v for finish %v", d.Survives, wantFinish)
		}
	}
}

func TestRoundLogRejected(t *testing.T) {
	l := NewRoundLog(8)
	ctx := &sched.PlanContext{Now: time.Second, Profile: roundsProf}
	l.OnPlanComputed(time.Second, time.Microsecond, ctx)
	l.OnPlanRejected(time.Second, errors.New("overlapping groups"))
	recs := l.Snapshot(0)
	if len(recs) != 1 || recs[0].Rejected != "overlapping groups" || len(recs[0].Decisions) != 0 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestRoundLogRingWrap(t *testing.T) {
	l := NewRoundLog(4)
	for i := 0; i < 10; i++ {
		fakeRound(l, time.Duration(i+1)*time.Second, workload.RequestID(i))
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d", l.Len())
	}
	recs := l.Snapshot(0)
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(6 + i); rec.Seq != want {
			t.Fatalf("record %d Seq = %d, want %d", i, rec.Seq, want)
		}
		if len(rec.Decisions) != 1 || rec.Decisions[0].Request != workload.RequestID(rec.Seq) {
			t.Fatalf("record %d decisions = %+v", i, rec.Decisions)
		}
	}
	last := l.Snapshot(2)
	if len(last) != 2 || last[0].Seq != 8 || last[1].Seq != 9 {
		t.Fatalf("Snapshot(2) = %+v", last)
	}
	// Snapshots are deep copies: mutating one must not corrupt the ring.
	last[0].Decisions[0].Degree = 99
	if l.Snapshot(2)[0].Decisions[0].Degree == 99 {
		t.Fatal("snapshot aliases ring storage")
	}
}

func TestRoundLogConcurrentSnapshot(t *testing.T) {
	l := NewRoundLog(16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			fakeRound(l, time.Duration(i)*time.Millisecond, workload.RequestID(i))
		}
	}()
	for {
		select {
		case <-done:
			if got := l.Len(); got != 500 {
				t.Fatalf("Len = %d", got)
			}
			return
		default:
			for _, rec := range l.Snapshot(8) {
				for _, d := range rec.Decisions {
					if d.Degree != 2 {
						panic(fmt.Sprintf("torn record: %+v", d))
					}
				}
			}
		}
	}
}
