package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	// Re-registration returns the same series.
	r.Counter("c_total", "help").Inc()
	if got := c.Value(); got != 4.5 {
		t.Fatalf("re-registered counter = %v, want 4.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	snap := r.Snapshot()
	// Cumulative: ≤1 holds {0.5, 1}, ≤2 adds 1.5, ≤4 adds 3, +Inf adds 100.
	for key, want := range map[string]float64{
		`h_seconds_bucket{le="1"}`:    2,
		`h_seconds_bucket{le="2"}`:    3,
		`h_seconds_bucket{le="4"}`:    4,
		`h_seconds_bucket{le="+Inf"}`: 5,
		`h_seconds_count`:             5,
		`h_seconds_sum`:               106,
	} {
		if snap[key] != want {
			t.Fatalf("%s = %v, want %v (snapshot %v)", key, snap[key], want, snap)
		}
	}
}

func TestVecChildrenAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("labeled_total", `back\slash and "quote"`, "cause")
	v.With(`a"b`).Add(2)
	v.With("plain").Inc()
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`# HELP labeled_total back\\slash and "quote"`,
		"# TYPE labeled_total counter",
		`labeled_total{cause="a\"b"} 2`,
		`labeled_total{cause="plain"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	val := 1.25
	r.CounterFunc("pulled_total", "help", func() float64 { return val })
	if got := r.Snapshot()["pulled_total"]; got != 1.25 {
		t.Fatalf("pulled = %v", got)
	}
	val = 9
	if got := r.Snapshot()["pulled_total"]; got != 9 {
		t.Fatalf("pulled after update = %v", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestWritePromSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "z").Inc()
	r.Gauge("aaa", "a").Set(1)
	r.Histogram("mmm_seconds", "m", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	ia, im, iz := strings.Index(text, "# HELP aaa"), strings.Index(text, "# HELP mmm"), strings.Index(text, "# HELP zzz")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("families not sorted: aaa@%d mmm@%d zzz@%d\n%s", ia, im, iz, text)
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "help")
	h := r.Histogram("conc_seconds", "help", []float64{0.5, 1})
	v := r.CounterVec("conc_labeled_total", "help", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j%3) / 2)
				v.With(string(rune('a' + i%2))).Inc()
				if j%100 == 0 {
					var b strings.Builder
					_ = r.WriteProm(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	snap := r.Snapshot()
	if snap[`conc_labeled_total{k="a"}`]+snap[`conc_labeled_total{k="b"}`] != 8000 {
		t.Fatalf("labeled sum = %v", snap)
	}
}
