package telemetry

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tetriserve/internal/router"
)

func routedDecision(shard string) router.Decision {
	return router.Decision{
		Accepted: true, Reason: router.ReasonRouted,
		Shard: 0, ShardName: shard, Tenant: "t",
		Probes: []router.ProbeResult{{Shard: shard}},
	}
}

func TestRouterPlaneCounters(t *testing.T) {
	p := NewRouterPlane(nil)

	p.Observe(routedDecision("a"))
	p.Observe(routedDecision("a"))
	p.Observe(routedDecision("b"))
	p.Observe(router.Decision{Reason: router.ReasonInfeasible, Tenant: "t"})
	p.Observe(router.Decision{Reason: router.ReasonShed, Tenant: "burst"})
	p.Observe(router.Decision{Reason: router.ReasonUnknown})

	if got := p.byReason[router.ReasonRouted].Value(); got != 3 {
		t.Fatalf("routed = %v, want 3", got)
	}
	if got := p.byReason[router.ReasonInfeasible].Value(); got != 1 {
		t.Fatalf("infeasible = %v, want 1", got)
	}
	if got := p.routedShard.With("a").Value(); got != 2 {
		t.Fatalf("shard a routed = %v, want 2", got)
	}
	if got := p.shedTenant.With("burst").Value(); got != 1 {
		t.Fatalf("tenant burst shed = %v, want 1", got)
	}
	if p.Log.Len() != 6 {
		t.Fatalf("log recorded %d decisions, want 6", p.Log.Len())
	}
}

func TestRouterPlaneExposition(t *testing.T) {
	p := NewRouterPlane(nil)
	p.Observe(routedDecision("a"))

	var buf strings.Builder
	if err := p.Registry.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`tetriserve_router_decisions_total{reason="routed"} 1`,
		`tetriserve_router_routed_total{shard="a"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRouterLogRingEviction(t *testing.T) {
	l := NewRouterLog(4)
	for i := 0; i < 10; i++ {
		l.Add(router.Decision{At: time.Duration(i) * time.Second})
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10 (total recorded)", l.Len())
	}
	snap := l.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("retained %d, want 4", len(snap))
	}
	for i, d := range snap {
		if want := time.Duration(6+i) * time.Second; d.At != want {
			t.Fatalf("snap[%d].At = %v, want %v (oldest first)", i, d.At, want)
		}
	}
	if snap2 := l.Snapshot(2); len(snap2) != 2 || snap2[0].At != 8*time.Second {
		t.Fatalf("Snapshot(2) = %+v", snap2)
	}
}

// TestRouterLogSnapshotBeyondCapacity: asking for more decisions than the
// ring can hold (?explain=K with K > capacity) returns exactly the retained
// window, oldest first, at every fill level — empty, partial, wrapped, and
// wrapped multiple times.
func TestRouterLogSnapshotBeyondCapacity(t *testing.T) {
	const capacity = 4
	l := NewRouterLog(capacity)
	if snap := l.Snapshot(100); len(snap) != 0 {
		t.Fatalf("empty log Snapshot(100) = %d entries", len(snap))
	}
	check := func(total int) {
		t.Helper()
		want := total
		if want > capacity {
			want = capacity
		}
		snap := l.Snapshot(total + 1000) // far beyond capacity
		if len(snap) != want {
			t.Fatalf("after %d adds, Snapshot(big) = %d entries, want %d", total, len(snap), want)
		}
		for i, d := range snap {
			if wantAt := time.Duration(total-want+i) * time.Second; d.At != wantAt {
				t.Fatalf("after %d adds, snap[%d].At = %v, want %v", total, i, d.At, wantAt)
			}
		}
	}
	for i := 0; i < 3*capacity; i++ {
		l.Add(router.Decision{At: time.Duration(i) * time.Second})
		check(i + 1)
	}
}

func TestRouterLogSnapshotCopiesProbes(t *testing.T) {
	l := NewRouterLog(2)
	d := router.Decision{Probes: []router.ProbeResult{{Shard: "a"}}}
	l.Add(d)
	snap := l.Snapshot(1)
	snap[0].Probes[0].Shard = "mutated"
	if l.Snapshot(1)[0].Probes[0].Shard != "a" {
		t.Fatal("Snapshot must deep-copy Probes")
	}
}

func TestRouterPlaneConcurrentObserve(t *testing.T) {
	p := NewRouterPlane(nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				p.Observe(routedDecision(fmt.Sprintf("s%d", g%2)))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := p.byReason[router.ReasonRouted].Value(); got != 400 {
		t.Fatalf("routed = %v, want 400", got)
	}
}
