package telemetry

import (
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/engine"
	"tetriserve/internal/lifecycle"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/trace"
	"tetriserve/internal/workload"
)

// Default histogram bucket layouts (seconds). End-to-end latency spans the
// paper's SLO range (1.5 s–5 s budgets, DropLateFactor multiples above);
// plan latency targets the sub-10 ms control-plane claim.
var (
	LatencyBuckets     = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
	PlanLatencyBuckets = []float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 0.1}
	// RoundDurationBuckets covers the τ grid (50–250 ms typical) plus the
	// overrun-deferral tail where a noisy block pushes the boundary out.
	RoundDurationBuckets = []float64{0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// PhaseBuckets resolve the per-phase latency decomposition: plan-wait
	// and queue phases live in the tens-of-milliseconds-to-seconds range,
	// compute segments up to the largest resolutions' multi-second blocks.
	PhaseBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8, 16}
)

// Plane bundles the three telemetry pillars — metrics registry, round
// explainer, trace bus — behind a single Hooks() attachment point. One
// plane observes one control loop (the hook path is single-goroutine);
// scrapes and subscriptions are safe from any goroutine.
type Plane struct {
	Registry *Registry
	Rounds   *RoundLog
	Bus      *Bus

	requests, completed, sloMet *Counter
	dropped                     map[control.DropCause]*Counter
	requeued                    map[control.RequeueCause]*Counter
	requeuedVec                 *CounterVec
	stepsElided                 *Counter
	planCalls, planRejected     *Counter
	startFailed, roundTicks     *Counter
	runsBatched, runsSolo       *Counter
	runsAborted                 *Counter
	queueDepth, runningReqs     *Gauge
	failedGPUs, totalGPUs       *Gauge
	planLatency                 *Histogram
	roundDuration               *Histogram
	lastTick                    time.Duration
	tickSeen                    bool
	e2e                         *HistogramVec
	e2eByRes                    map[model.Resolution]*Histogram
	phaseSeconds                *HistogramVec
	attainment                  *GaugeVec
	attainByTenant              map[string]*sloWindow

	// phase mirrors the driver's job-state machine (queued → running →
	// terminal) so the queue gauges agree with /v1/stats by construction.
	phase map[workload.RequestID]uint8
}

const (
	phaseQueued uint8 = iota + 1
	phaseRunning
)

// NewPlane builds a plane with the full metric catalogue registered.
func NewPlane() *Plane {
	reg := NewRegistry()
	droppedVec := reg.CounterVec("tetriserve_dropped_total",
		"Requests dropped, by cause (expired queue wait, late delivery timeout, GPU fault ablation).", "cause")
	p := &Plane{
		Registry: reg,
		Rounds:   NewRoundLog(0),
		requests: reg.Counter("tetriserve_requests_total",
			"Requests admitted to the control loop."),
		completed: reg.Counter("tetriserve_completed_total",
			"Requests that completed (decode delivered)."),
		sloMet: reg.Counter("tetriserve_slo_met_total",
			"Completed requests that met their SLO deadline."),
		dropped: map[control.DropCause]*Counter{
			control.DropExpired: droppedVec.With(string(control.DropExpired)),
			control.DropTimeout: droppedVec.With(string(control.DropTimeout)),
			control.DropFault:   droppedVec.With(string(control.DropFault)),
		},
		stepsElided: reg.Counter("tetriserve_steps_elided_total",
			"Denoising steps approximated via step caching across retired blocks."),
		planCalls: reg.Counter("tetriserve_plan_calls_total",
			"Scheduler invocations."),
		planRejected: reg.Counter("tetriserve_plan_rejected_total",
			"Plans refused by the validator."),
		startFailed: reg.Counter("tetriserve_start_failed_total",
			"Validated assignments the engine refused to start."),
		roundTicks: reg.Counter("tetriserve_round_ticks_total",
			"Fired τ round boundaries (0 for event-driven schedulers)."),
		runsAborted: reg.Counter("tetriserve_runs_aborted_total",
			"Step blocks killed mid-flight by GPU faults."),
		queueDepth: reg.Gauge("tetriserve_queue_depth",
			"Admitted requests waiting for GPUs."),
		runningReqs: reg.Gauge("tetriserve_running_requests",
			"Requests currently executing in a step block."),
		failedGPUs: reg.Gauge("tetriserve_failed_gpus",
			"GPUs currently out of service."),
		totalGPUs: reg.Gauge("tetriserve_gpus",
			"GPUs in the cluster topology."),
		planLatency: reg.Histogram("tetriserve_plan_latency_seconds",
			"Scheduler solve latency per plan call.", PlanLatencyBuckets),
		roundDuration: reg.Histogram("tetriserve_round_duration_seconds",
			"Effective τ round length (grid gap between consecutive fired boundaries, overrun deferral included).", RoundDurationBuckets),
		e2e: reg.HistogramVec("tetriserve_e2e_latency_seconds",
			"End-to-end latency of completed requests, by resolution.", LatencyBuckets, "resolution"),
		e2eByRes: map[model.Resolution]*Histogram{},
		phaseSeconds: reg.HistogramVec("tetriserve_phase_seconds",
			"Per-request phase latency decomposition (plan-wait, queue, compute), by resolution class.", PhaseBuckets, "phase", "class"),
		attainment: reg.GaugeVec("tetriserve_slo_attainment",
			"SLO attainment over finalized requests, by tenant.", "tenant"),
		attainByTenant: map[string]*sloWindow{},
		phase:          map[workload.RequestID]uint8{},
	}
	requeuedVec := reg.CounterVec("tetriserve_requeued_total",
		"Requests returned to the queue after a fault or resize interrupted their block, by cause.", "cause")
	p.requeuedVec = requeuedVec
	p.requeued = map[control.RequeueCause]*Counter{
		control.RequeueFault:  requeuedVec.With(string(control.RequeueFault)),
		control.RequeueResize: requeuedVec.With(string(control.RequeueResize)),
	}
	runsVec := reg.CounterVec("tetriserve_runs_total",
		"Executed step blocks, split by selective batching.", "batched")
	p.runsBatched = runsVec.With("true")
	p.runsSolo = runsVec.With("false")
	p.Bus = NewBus(
		reg.Counter("tetriserve_trace_dropped_events_total",
			"Trace events dropped because a follow subscriber's buffer was full."),
		reg.Gauge("tetriserve_trace_subscribers",
			"Live /v1/trace?follow=1 subscribers."),
	)
	return p
}

// BindGPUBusy registers tetriserve_gpu_busy_seconds_total as a pull-time
// counter reading the adapter's authoritative engine accumulator, so the
// scrape agrees exactly with /v1/stats instead of re-deriving GPU·seconds
// hook-side. fn must be safe from any goroutine.
func (p *Plane) BindGPUBusy(fn func() float64) {
	p.Registry.CounterFunc("tetriserve_gpu_busy_seconds_total",
		"Accumulated GPU·seconds of executed step blocks.", fn)
}

// SetClusterSize records the topology size for utilization math.
func (p *Plane) SetClusterSize(n int) { p.totalGPUs.Set(float64(n)) }

// Hooks returns the control-loop observer callbacks. Attach with
// Hooks.Then; all callbacks run on the loop goroutine.
func (p *Plane) Hooks() control.Hooks {
	return control.Hooks{
		Admitted:     p.onAdmitted,
		Started:      p.onStarted,
		Requeued:     p.onRequeued,
		StepsElided:  func(_ time.Duration, _ workload.RequestID, approx int) { p.stepsElided.Add(float64(approx)) },
		Finished:     p.onFinished,
		Dropped:      p.onDropped,
		PlanComputed: p.onPlanComputed,
		Planned:      p.onPlanned,
		PlanRejected: p.onPlanRejected,
		StartFailed:  func(time.Duration, error) { p.startFailed.Inc() },
		RoundTick:    p.onRoundTick,
		RunStarted:   p.onRunStarted,
		RunFinished:  p.onRunFinished,
		RunAborted:   p.onRunAborted,
		GPUFailed:    func(_ time.Duration, m simgpu.Mask) { p.failedGPUs.Add(float64(m.Count())) },
		GPURecovered: func(_ time.Duration, m simgpu.Mask) { p.failedGPUs.Add(-float64(m.Count())) },
	}
}

func (p *Plane) onAdmitted(now time.Duration, r *workload.Request) {
	p.requests.Inc()
	p.phase[r.ID] = phaseQueued
	p.queueDepth.Inc()
	if p.Bus.Active() {
		p.Bus.Publish(trace.Event{
			AtUS:       r.Arrival.Microseconds(),
			Kind:       trace.KindArrival,
			Requests:   []int{int(r.ID)},
			Resolution: r.Res.String(),
		})
	}
}

func (p *Plane) onStarted(now time.Duration, id workload.RequestID) {
	if p.phase[id] == phaseQueued {
		p.phase[id] = phaseRunning
		p.queueDepth.Dec()
		p.runningReqs.Inc()
	}
}

func (p *Plane) onRequeued(now time.Duration, id workload.RequestID, cause control.RequeueCause) {
	c, ok := p.requeued[cause]
	if !ok {
		// Future causes still count under their own label.
		c = p.requeuedVec.With(string(cause))
		p.requeued[cause] = c
	}
	c.Inc()
	if p.phase[id] == phaseRunning {
		p.phase[id] = phaseQueued
		p.runningReqs.Dec()
		p.queueDepth.Inc()
	}
}

// onRoundTick counts the boundary and observes the effective round length —
// the gap between consecutive fired grid points, which exceeds τ exactly
// when overrun deferral pushed the boundary out.
func (p *Plane) onRoundTick(at, now time.Duration) {
	p.roundTicks.Inc()
	if p.tickSeen {
		p.roundDuration.Observe((at - p.lastTick).Seconds())
	}
	p.lastTick = at
	p.tickSeen = true
}

// retire clears a request's queue-position gauge at finalization.
func (p *Plane) retire(id workload.RequestID) {
	switch p.phase[id] {
	case phaseQueued:
		p.queueDepth.Dec()
	case phaseRunning:
		p.runningReqs.Dec()
	}
	delete(p.phase, id)
}

func (p *Plane) onFinished(now time.Duration, o control.Outcome) {
	p.retire(o.ID)
	p.completed.Inc()
	if o.Met {
		p.sloMet.Inc()
	}
	h, ok := p.e2eByRes[o.Res]
	if !ok {
		h = p.e2e.With(o.Res.String())
		p.e2eByRes[o.Res] = h
	}
	h.Observe(o.Latency.Seconds())
	if p.Bus.Active() {
		p.Bus.Publish(trace.Event{
			AtUS:       o.Completion.Microseconds(),
			Kind:       trace.KindComplete,
			Requests:   []int{int(o.ID)},
			Resolution: o.Res.String(),
			Met:        o.Met,
			LatencyUS:  o.Latency.Microseconds(),
		})
	}
}

func (p *Plane) onDropped(now time.Duration, o control.Outcome) {
	p.retire(o.ID)
	c, ok := p.dropped[o.Cause]
	if !ok {
		// Future causes still count (under their own label) rather than
		// vanishing.
		c = p.Registry.CounterVec("tetriserve_dropped_total", "", "cause").With(string(o.Cause))
		p.dropped[o.Cause] = c
	}
	c.Inc()
	if p.Bus.Active() {
		p.Bus.Publish(trace.Event{
			AtUS:       o.Deadline.Microseconds(),
			Kind:       trace.KindDrop,
			Requests:   []int{int(o.ID)},
			Resolution: o.Res.String(),
		})
	}
}

func (p *Plane) onPlanComputed(now, latency time.Duration, ctx *sched.PlanContext) {
	p.planCalls.Inc()
	p.planLatency.Observe(latency.Seconds())
	p.Rounds.OnPlanComputed(now, latency, ctx)
}

func (p *Plane) onPlanned(now time.Duration, ctx *sched.PlanContext, plan []sched.Assignment) {
	p.Rounds.OnPlanned(now, ctx, plan)
}

func (p *Plane) onPlanRejected(now time.Duration, err error) {
	p.planRejected.Inc()
	p.Rounds.OnPlanRejected(now, err)
}

func (p *Plane) onRunStarted(now time.Duration, run *engine.Run) {
	if p.Bus.Active() {
		p.Bus.Publish(runEvent(trace.KindBlockStart, run.Start, run))
	}
}

func (p *Plane) onRunFinished(now time.Duration, run *engine.Run) {
	if run.Batched {
		p.runsBatched.Inc()
	} else {
		p.runsSolo.Inc()
	}
	if p.Bus.Active() {
		p.Bus.Publish(runEvent(trace.KindBlockEnd, run.End, run))
	}
}

func (p *Plane) onRunAborted(now time.Duration, run *engine.Run, _ map[workload.RequestID]int) {
	p.runsAborted.Inc()
	// An aborted block still counts as an executed block in the run log
	// (matching control.Result.Runs, which records it with End = fault
	// time), so the batched-share denominator stays consistent.
	if run.Batched {
		p.runsBatched.Inc()
	} else {
		p.runsSolo.Inc()
	}
	if p.Bus.Active() {
		p.Bus.Publish(runEvent(trace.KindBlockEnd, now, run))
	}
}

// sloWindow accumulates one tenant's attainment behind its exported gauge.
type sloWindow struct {
	met, done int
	g         *Gauge
}

// ObserveTimeline feeds one finalized lifecycle timeline into the phase
// histograms and the per-tenant attainment gauges — wire it as the
// lifecycle.Recorder's OnFinalized callback. Runs on the loop goroutine.
func (p *Plane) ObserveTimeline(tl *lifecycle.Timeline) {
	for kind, secs := range tl.PhaseSeconds() {
		switch kind {
		case lifecycle.SpanPlanWait, lifecycle.SpanQueue, lifecycle.SpanCompute:
			p.phaseSeconds.With(string(kind), tl.Class).Observe(secs)
		}
	}
	w, ok := p.attainByTenant[tl.Tenant]
	if !ok {
		tenant := tl.Tenant
		if tenant == "" {
			tenant = "default"
		}
		w = &sloWindow{g: p.attainment.With(tenant)}
		p.attainByTenant[tl.Tenant] = w
	}
	w.done++
	if tl.Met {
		w.met++
	}
	w.g.Set(float64(w.met) / float64(w.done))
}

// runEvent materializes a block event in the exact shape trace.FromResult
// produces from the final Result, so the live feed is consistent with the
// post-hoc snapshot. Only called while a subscriber is attached.
func runEvent(kind trace.Kind, at time.Duration, run *engine.Run) trace.Event {
	ids := make([]int, len(run.Asg.Requests))
	for i, id := range run.Asg.Requests {
		ids[i] = int(id)
	}
	gpus := make([]int, 0, run.Degree)
	for _, g := range run.Asg.Group.IDs() {
		gpus = append(gpus, int(g))
	}
	return trace.Event{
		AtUS:       at.Microseconds(),
		Kind:       kind,
		Requests:   ids,
		Resolution: run.Res.String(),
		Degree:     run.Degree,
		GPUs:       gpus,
		Steps:      run.Asg.Steps,
		BestEffort: run.Asg.BestEffort,
		Batched:    run.Batched,
	}
}
