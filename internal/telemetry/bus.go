package telemetry

import (
	"sync"
	"sync/atomic"

	"tetriserve/internal/trace"
)

// Bus fans trace events out to live subscribers (the /v1/trace?follow=1
// feed) without ever blocking the publisher. Each subscriber owns a
// buffered channel; when it is full the event is dropped for that
// subscriber and counted — a slow tail never stalls the control loop.
//
// Publish is wait-free against subscriptions: the subscriber list is
// copy-on-write behind an atomic pointer, so the hook path pays one atomic
// load (and nothing else when nobody is tailing).
type Bus struct {
	mu      sync.Mutex
	subs    atomic.Pointer[[]*subscriber]
	dropped *Counter // may be nil (standalone use)
	gauge   *Gauge   // current subscriber count; may be nil
}

type subscriber struct {
	ch      chan trace.Event
	dropped atomic.Uint64
}

// NewBus builds a bus. dropped counts events lost to slow subscribers and
// subs tracks the live subscriber count; either may be nil.
func NewBus(dropped *Counter, subs *Gauge) *Bus {
	return &Bus{dropped: dropped, gauge: subs}
}

// Active reports whether anyone is subscribed — publishers check it before
// materializing an event, so the hook path allocates nothing when idle.
func (b *Bus) Active() bool {
	s := b.subs.Load()
	return s != nil && len(*s) > 0
}

// Publish delivers ev to every subscriber whose buffer has room and drops
// it (counted) for the rest. Never blocks.
func (b *Bus) Publish(ev trace.Event) {
	s := b.subs.Load()
	if s == nil {
		return
	}
	for _, sub := range *s {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			if b.dropped != nil {
				b.dropped.Inc()
			}
		}
	}
}

// Subscribe registers a new subscriber with the given buffer size and
// returns its event channel plus a cancel function. The channel is never
// closed (a cancelled subscriber simply stops receiving); readers should
// select against their own done signal. Cancel is idempotent.
func (b *Bus) Subscribe(buf int) (<-chan trace.Event, func()) {
	if buf <= 0 {
		buf = 256
	}
	sub := &subscriber{ch: make(chan trace.Event, buf)}
	b.mu.Lock()
	old := b.subs.Load()
	var next []*subscriber
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, sub)
	b.subs.Store(&next)
	b.mu.Unlock()
	if b.gauge != nil {
		b.gauge.Inc()
	}
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			cur := b.subs.Load()
			if cur != nil {
				next := make([]*subscriber, 0, len(*cur))
				for _, s := range *cur {
					if s != sub {
						next = append(next, s)
					}
				}
				b.subs.Store(&next)
			}
			b.mu.Unlock()
			if b.gauge != nil {
				b.gauge.Dec()
			}
		})
	}
	return sub.ch, cancel
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	s := b.subs.Load()
	if s == nil {
		return 0
	}
	return len(*s)
}
