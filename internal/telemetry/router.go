package telemetry

import (
	"sync"

	"tetriserve/internal/router"
)

// RouterPlane is the routing tier's telemetry: a metrics registry slice
// (decisions by outcome, routed traffic by shard, shed traffic by tenant)
// plus a bounded ring of full routing decisions — the "why did this request
// land on shard 2 / get a 429?" explainer, the router-level sibling of the
// round-decision log.
//
// Attach by passing Observe as router.Config.Observer. Observe runs
// synchronously on whatever goroutine routes (HTTP handlers online, the
// harness goroutine in simulation); all state is mutex-guarded.
type RouterPlane struct {
	Registry *Registry
	Log      *RouterLog

	decisions   *CounterVec
	byReason    map[router.Reason]*Counter
	routedShard *CounterVec
	shedTenant  *CounterVec
	probeCache  *CounterVec
	cacheHit    *Counter
	cacheMiss   *Counter

	mu          sync.Mutex
	shardCells  map[string]*Counter
	tenantCells map[string]*Counter
}

// NewRouterPlane builds a router telemetry plane. Pass a shared Registry to
// co-expose router and shard metrics on one scrape, or nil for a fresh one.
func NewRouterPlane(reg *Registry) *RouterPlane {
	if reg == nil {
		reg = NewRegistry()
	}
	p := &RouterPlane{
		Registry: reg,
		Log:      NewRouterLog(0),
		decisions: reg.CounterVec("tetriserve_router_decisions_total",
			"Routing decisions, by outcome (routed, infeasible, shed, unknown_resolution).", "reason"),
		routedShard: reg.CounterVec("tetriserve_router_routed_total",
			"Requests routed, by destination shard.", "shard"),
		shedTenant: reg.CounterVec("tetriserve_router_shed_total",
			"Requests shed under weighted-fair admission, by tenant.", "tenant"),
		probeCache: reg.CounterVec("tetriserve_router_probe_cache_total",
			"Per-shard feasibility probe lookups, by cache result (hit, miss).", "result"),
		byReason:    map[router.Reason]*Counter{},
		shardCells:  map[string]*Counter{},
		tenantCells: map[string]*Counter{},
	}
	for _, reason := range []router.Reason{
		router.ReasonRouted, router.ReasonInfeasible, router.ReasonShed, router.ReasonUnknown,
	} {
		p.byReason[reason] = p.decisions.With(string(reason))
	}
	p.cacheHit = p.probeCache.With("hit")
	p.cacheMiss = p.probeCache.With("miss")
	return p
}

// Observe records one routing decision; wire it as router.Config.Observer.
func (p *RouterPlane) Observe(dec router.Decision) {
	p.mu.Lock()
	c, ok := p.byReason[dec.Reason]
	if !ok {
		c = p.decisions.With(string(dec.Reason))
		p.byReason[dec.Reason] = c
	}
	c.Inc()
	for _, pr := range dec.Probes {
		if pr.Cached {
			p.cacheHit.Inc()
		} else {
			p.cacheMiss.Inc()
		}
	}
	switch dec.Reason {
	case router.ReasonRouted:
		sc, ok := p.shardCells[dec.ShardName]
		if !ok {
			sc = p.routedShard.With(dec.ShardName)
			p.shardCells[dec.ShardName] = sc
		}
		sc.Inc()
	case router.ReasonShed:
		tc, ok := p.tenantCells[dec.Tenant]
		if !ok {
			tc = p.shedTenant.With(dec.Tenant)
			p.tenantCells[dec.Tenant] = tc
		}
		tc.Inc()
	}
	p.mu.Unlock()
	p.Log.Add(dec)
}

// RouterLog is a bounded ring of routing decisions, written at decision time
// and read concurrently by GET /v1/router/stats?explain=1.
type RouterLog struct {
	mu   sync.Mutex
	ring []router.Decision
	n    uint64
}

// NewRouterLog builds a ring holding the last cap decisions (default 256).
func NewRouterLog(cap int) *RouterLog {
	if cap <= 0 {
		cap = 256
	}
	return &RouterLog{ring: make([]router.Decision, 0, cap)}
}

// Add appends a decision, evicting the oldest once the ring is full.
func (l *RouterLog) Add(dec router.Decision) {
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, dec)
	} else {
		l.ring[int(l.n)%cap(l.ring)] = dec
	}
	l.n++
	l.mu.Unlock()
}

// Len returns how many decisions have been recorded in total.
func (l *RouterLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.n)
}

// Snapshot returns copies of the last n decisions, oldest first. n ≤ 0 or
// larger than the retained window returns everything retained. Probes
// slices are copied so callers can hold them freely.
func (l *RouterLog) Snapshot(n int) []router.Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	have := len(l.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]router.Decision, 0, n)
	for k := int(l.n) - n; k < int(l.n); k++ {
		d := l.ring[k%cap(l.ring)]
		d.Probes = append([]router.ProbeResult(nil), d.Probes...)
		out = append(out, d)
	}
	return out
}
