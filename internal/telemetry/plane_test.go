package telemetry

import (
	"encoding/json"
	"sort"
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/model"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/trace"
	"tetriserve/internal/workload"
)

// runPlaneSim runs a simulation with the plane attached and a live trace
// subscription, returning the plane, the result and the drained live feed.
func runPlaneSim(t *testing.T, n int, sloScale float64, mutate ...func(*sim.Config)) (*Plane, *sim.Result, []trace.Event) {
	t.Helper()
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	p := NewPlane()
	p.SetClusterSize(topo.N)
	// Big enough that nothing drops while the single-threaded sim publishes
	// with nobody draining.
	ch, cancel := p.Bus.Subscribe(1 << 16)
	defer cancel()
	cfg := sim.Config{
		Model: mdl,
		Topo:  topo,
		Scheduler: core.NewScheduler(roundsProf, topo,
			core.DefaultConfig()),
		Requests: workload.Generate(workload.GeneratorConfig{
			Model:       mdl,
			Mix:         workload.UniformMix(),
			Arrivals:    workload.PoissonArrivals{PerMinute: 40},
			SLO:         workload.NewSLOPolicy(sloScale),
			NumRequests: n,
			Seed:        7,
		}),
		Profile:         roundsProf,
		DropLateFactor:  1.5,
		Hooks:           p.Hooks(),
		CheckInvariants: true,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.BindGPUBusy(func() float64 { return res.GPUBusySeconds })
	var live []trace.Event
	for {
		select {
		case ev := <-ch:
			live = append(live, ev)
			continue
		default:
		}
		break
	}
	return p, res, live
}

func TestPlaneCountersMatchResult(t *testing.T) {
	p, res, _ := runPlaneSim(t, 60, 0.9)
	completed, met, dropped := 0, 0, 0
	for _, o := range res.Outcomes {
		if o.Dropped {
			dropped++
			continue
		}
		completed++
		if o.Met {
			met++
		}
	}
	batched := 0
	for _, r := range res.Runs {
		if r.Batched {
			batched++
		}
	}
	snap := p.Registry.Snapshot()
	for key, want := range map[string]float64{
		"tetriserve_requests_total":              float64(len(res.Outcomes)),
		"tetriserve_completed_total":             float64(completed),
		"tetriserve_slo_met_total":               float64(met),
		"tetriserve_plan_calls_total":            float64(res.PlanCalls),
		"tetriserve_round_ticks_total":           float64(res.RoundTicks),
		"tetriserve_plan_latency_seconds_count":  float64(res.PlanCalls),
		`tetriserve_runs_total{batched="true"}`:  float64(batched),
		`tetriserve_runs_total{batched="false"}`: float64(len(res.Runs) - batched),
		"tetriserve_runs_aborted_total":          float64(res.RunsAborted),
		"tetriserve_queue_depth":                 0,
		"tetriserve_running_requests":            0,
		"tetriserve_failed_gpus":                 0,
		"tetriserve_gpus":                        8,
		"tetriserve_gpu_busy_seconds_total":      res.GPUBusySeconds,
	} {
		if got := snap[key]; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	droppedSum := 0.0
	e2eCount := 0.0
	for key, v := range snap {
		if len(key) > len("tetriserve_dropped_total") && key[:len("tetriserve_dropped_total")] == "tetriserve_dropped_total" {
			droppedSum += v
		}
		if matchHistCount(key, "tetriserve_e2e_latency_seconds") {
			e2eCount += v
		}
	}
	if droppedSum != float64(dropped) {
		t.Errorf("dropped-by-cause sum = %v, want %v", droppedSum, dropped)
	}
	if e2eCount != float64(completed) {
		t.Errorf("e2e histogram count = %v, want %v", e2eCount, completed)
	}
}

// matchHistCount reports whether key is family's _count series (any labels).
func matchHistCount(key, family string) bool {
	pre := family + "_count"
	if len(key) < len(pre) || key[:len(pre)] != pre {
		return false
	}
	return len(key) == len(pre) || key[len(pre)] == '{'
}

func TestPlaneLiveTraceMatchesSnapshot(t *testing.T) {
	_, res, live := runPlaneSim(t, 40, 0.8)
	want := trace.FromResult(res)
	if len(live) != len(want) {
		t.Fatalf("live feed has %d events, snapshot %d", len(live), len(want))
	}
	// The live stream is hook-ordered (completions surface when the loop
	// processes them, with future decode timestamps), the snapshot is
	// timestamp-ordered; compare as multisets of serialized events.
	if got, wantKeys := eventKeys(live), eventKeys(want); !equalStrings(got, wantKeys) {
		for i := range got {
			if got[i] != wantKeys[i] {
				t.Fatalf("event multiset diverges at %d:\nlive: %s\nsnap: %s", i, got[i], wantKeys[i])
			}
		}
	}
	// The feed must also be analyzable on its own once time-ordered.
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].AtUS != live[j].AtUS {
			return live[i].AtUS < live[j].AtUS
		}
		return kindRankForTest(live[i].Kind) < kindRankForTest(live[j].Kind)
	})
	sum, err := trace.Analyze(live)
	if err != nil {
		t.Fatalf("live feed unanalyzable: %v", err)
	}
	if sum.Requests != len(res.Outcomes) {
		t.Fatalf("analyzer requests = %d, want %d", sum.Requests, len(res.Outcomes))
	}
}

func kindRankForTest(k trace.Kind) int {
	switch k {
	case trace.KindArrival:
		return 0
	case trace.KindBlockEnd:
		return 1
	case trace.KindComplete, trace.KindDrop:
		return 2
	default:
		return 3
	}
}

func eventKeys(evs []trace.Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			panic(err)
		}
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlaneDropCausesAndFaults(t *testing.T) {
	p, res, _ := runPlaneSim(t, 50, 0.25, func(cfg *sim.Config) {
		cfg.DropLateFactor = 1.0 // tight: force expiry/timeout drops
		cfg.Faults = []simgpu.Fault{{GPU: 0, FailAt: 20 * time.Second, RecoverAt: 60 * time.Second}}
	})
	dropped := 0
	for _, o := range res.Outcomes {
		if o.Dropped {
			dropped++
			if o.Cause == "" {
				t.Fatalf("outcome %d dropped without cause", o.ID)
			}
		}
	}
	if dropped == 0 {
		t.Fatal("workload did not provoke any drops; tighten the SLO")
	}
	snap := p.Registry.Snapshot()
	sum := snap[`tetriserve_dropped_total{cause="expired"}`] +
		snap[`tetriserve_dropped_total{cause="timeout"}`] +
		snap[`tetriserve_dropped_total{cause="fault"}`]
	if sum != float64(dropped) {
		t.Fatalf("cause-labeled drops = %v, want %v (snapshot %v)", sum, dropped, snap)
	}
	if res.RunsAborted > 0 && snap["tetriserve_runs_aborted_total"] != float64(res.RunsAborted) {
		t.Fatalf("runs aborted = %v, want %d", snap["tetriserve_runs_aborted_total"], res.RunsAborted)
	}
	// Fault plane returned to service: the failed-GPU gauge must be back
	// to zero after the recovery.
	if snap["tetriserve_failed_gpus"] != 0 {
		t.Fatalf("failed gpus = %v after recovery", snap["tetriserve_failed_gpus"])
	}
	if p.Rounds.Len() == 0 {
		t.Fatal("no rounds recorded")
	}
	degreeSeen := false
	for _, rec := range p.Rounds.Snapshot(0) {
		for _, d := range rec.Decisions {
			if d.Degree < 1 {
				t.Fatalf("decision without degree: %+v", d)
			}
			degreeSeen = true
		}
	}
	if !degreeSeen {
		t.Fatal("no decisions recorded across all rounds")
	}
}
