// Package telemetry is the live observability plane: a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms) exposed in
// Prometheus text format, a bounded round-decision explainer, and a
// non-blocking trace-event fan-out bus. All three are driven entirely by
// control.Hooks — the same per-transition stream the invariant oracle
// consumes — so the simulator and the online driver share one telemetry
// implementation, attached via Hooks.Then composition.
//
// Design constraints, in order:
//
//   - the hook path must never block or panic: a slow scrape or a stalled
//     trace subscriber drops data (counted), it never stalls the control
//     loop;
//   - the hook path must be allocation-light: counters and histograms are
//     atomics, the round ring reuses record storage, and trace events are
//     only materialized while a subscriber is attached;
//   - scrape output must be deterministic: families and children are
//     emitted in sorted order so tests can diff exposition text.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families in the exposition output.
type Kind uint8

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; metric
// updates are lock-free atomics so the control loop's hook path never
// contends with scrapes.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       Kind
	labelKeys  []string
	buckets    []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*metric
}

// metric is one time series: a float64 cell, a pull-time function, or a
// histogram state.
type metric struct {
	labelVals []string
	bits      atomic.Uint64 // float64 bits
	fn        func() float64
	hist      *histState
}

func (m *metric) value() float64 {
	if m.fn != nil {
		return m.fn()
	}
	return math.Float64frombits(m.bits.Load())
}

type histState struct {
	bounds  []float64       // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns (creating if needed) the named family, enforcing that
// re-registrations agree on kind and label keys — a mismatch is a
// programming error, not a runtime condition.
func (r *Registry) family(name, help string, kind Kind, buckets []float64, labelKeys ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelKeys) != len(labelKeys) {
			panic(fmt.Sprintf("telemetry: %q re-registered as %v(%v), was %v(%v)",
				name, kind, labelKeys, f.kind, f.labelKeys))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   append([]float64(nil), buckets...),
		children:  map[string]*metric{},
	}
	r.families[name] = f
	return f
}

func (f *family) child(labelVals []string) *metric {
	if len(labelVals) != len(f.labelKeys) {
		panic(fmt.Sprintf("telemetry: %q expects %d label values, got %d",
			f.name, len(f.labelKeys), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m = &metric{labelVals: append([]string(nil), labelVals...)}
	if f.kind == KindHistogram {
		m.hist = &histState{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = m
	return m
}

// Counter is a monotonically increasing series.
type Counter struct{ m *metric }

// Inc adds one.
func (c *Counter) Inc() { addFloat(&c.m.bits, 1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.m.bits, v)
}

// Value reads the current count.
func (c *Counter) Value() float64 { return c.m.value() }

// Gauge is a series that can go up and down.
type Gauge struct{ m *metric }

// Set stores v.
func (g *Gauge) Set(v float64) { g.m.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.m.bits, v) }

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current level.
func (g *Gauge) Value() float64 { return g.m.value() }

// Histogram is a fixed-bucket distribution. Observe is a few atomic adds —
// no allocation, no locks — so it is safe on the control loop's hot path.
type Histogram struct{ h *histState }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	s := h.h
	idx := len(s.bounds) // +Inf overflow bucket
	for i, b := range s.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	s.counts[idx].Add(1)
	s.count.Add(1)
	addFloat(&s.sumBits, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.h.sumBits.Load()) }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVec) With(labelVals ...string) *Counter {
	return &Counter{m: v.f.child(labelVals)}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return &Gauge{m: v.f.child(labelVals)}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return &Histogram{h: v.f.child(labelVals).hist}
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{m: r.family(name, help, KindCounter, nil).child(nil)}
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, nil, labelKeys...)}
}

// CounterFunc registers a counter whose value is pulled from fn at scrape
// time — for authoritative values owned elsewhere (the engine's GPU-busy
// accumulator), where re-deriving them hook-side would risk drift. fn must
// be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, KindCounter, nil).child(nil).fn = fn
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{m: r.family(name, help, KindGauge, nil).child(nil)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, nil, labelKeys...)}
}

// GaugeFunc registers a gauge pulled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, KindGauge, nil).child(nil).fn = fn
}

// Histogram registers (or returns) an unlabeled fixed-bucket histogram.
// Buckets are ascending upper bounds; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{h: r.family(name, help, KindHistogram, buckets).child(nil).hist}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, buckets, labelKeys...)}
}

// WriteProm renders every family in Prometheus text exposition format
// (version 0.0.4), families and children in sorted order.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.sortedChildren() {
			if f.kind == KindHistogram {
				writeHistogram(&b, f, m)
				continue
			}
			b.WriteString(f.name)
			writeLabels(&b, f.labelKeys, m.labelVals, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(m.value()))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) sortedChildren() []*metric {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*metric, 0, len(f.children))
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	return out
}

func writeHistogram(b *strings.Builder, f *family, m *metric) {
	h := m.hist
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labelKeys, m.labelVals, "le", bound)
		fmt.Fprintf(b, " %d\n", cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(f.name)
	b.WriteString("_bucket")
	writeLabels(b, f.labelKeys, m.labelVals, "le", math.Inf(1))
	fmt.Fprintf(b, " %d\n", cum)
	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labelKeys, m.labelVals, "", 0)
	b.WriteByte(' ')
	b.WriteString(formatValue(math.Float64frombits(h.sumBits.Load())))
	b.WriteByte('\n')
	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labelKeys, m.labelVals, "", 0)
	fmt.Fprintf(b, " %d\n", h.count.Load())
}

// writeLabels renders {k="v",...}; when leKey is non-empty a trailing
// le="<bound>" pair is appended (histogram buckets).
func writeLabels(b *strings.Builder, keys, vals []string, leKey string, le float64) {
	if len(keys) == 0 && leKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatBound(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Snapshot flattens every series into a name{labels} → value map — the
// test-facing view. Histograms contribute cumulative _bucket entries plus
// _sum and _count.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	var b strings.Builder
	for _, f := range fams {
		for _, m := range f.sortedChildren() {
			if f.kind == KindHistogram {
				h := m.hist
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					b.Reset()
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, f.labelKeys, m.labelVals, "le", bound)
					out[b.String()] = float64(cum)
				}
				b.Reset()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, f.labelKeys, m.labelVals, "le", math.Inf(1))
				out[b.String()] = float64(cum + h.counts[len(h.bounds)].Load())
				b.Reset()
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, f.labelKeys, m.labelVals, "", 0)
				out[b.String()] = math.Float64frombits(h.sumBits.Load())
				b.Reset()
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, f.labelKeys, m.labelVals, "", 0)
				out[b.String()] = float64(h.count.Load())
				continue
			}
			b.Reset()
			b.WriteString(f.name)
			writeLabels(&b, f.labelKeys, m.labelVals, "", 0)
			out[b.String()] = m.value()
		}
	}
	return out
}

// Handler returns an http.Handler serving the exposition text — the
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A failed scrape write means the client went away; nothing to do.
		_ = r.WriteProm(w)
	})
}
