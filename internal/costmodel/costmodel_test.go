package costmodel

import (
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
)

func fluxEst() *Estimator {
	return NewEstimator(model.FLUX(), simgpu.H100x8())
}

func sd3Est() *Estimator {
	return NewEstimator(model.SD3(), simgpu.A40x4())
}

func TestComputeTimeScalesDown(t *testing.T) {
	e := fluxEst()
	prev := time.Duration(0)
	for _, k := range []int{8, 4, 2, 1} {
		ct := e.ComputeTime(model.Res2048, k, 1)
		if ct <= prev {
			t.Fatalf("compute time should grow as degree shrinks: k=%d got %v after %v", k, ct, prev)
		}
		prev = ct
	}
}

func TestComputeTimeSublinearSpeedup(t *testing.T) {
	e := fluxEst()
	// Splitting small kernels loses per-GPU efficiency, so compute speedup
	// is below k.
	t1 := e.ComputeTime(model.Res256, 1, 1)
	t8 := e.ComputeTime(model.Res256, 8, 1)
	speedup := float64(t1) / float64(t8)
	if speedup >= 8 {
		t.Fatalf("compute speedup %v should be sublinear for 256px", speedup)
	}
}

func TestCommTimeZeroForSingleGPU(t *testing.T) {
	e := fluxEst()
	if e.CommTime(model.Res2048, simgpu.MaskOf(3), 1) != 0 {
		t.Fatal("single-GPU group should not communicate")
	}
}

func TestCommGrowsWithDegree(t *testing.T) {
	e := fluxEst()
	c2 := e.CommTimeDegree(model.Res512, 2, 1)
	c8 := e.CommTimeDegree(model.Res512, 8, 1)
	if c8 <= c2 {
		t.Fatalf("comm time should grow with degree: k=2 %v, k=8 %v", c2, c8)
	}
}

// TestFigure2Shape: the calibrated comm fractions reproduce the paper's
// qualitative claims — small inputs exceed 30% comm at SP=8 (BS=4), the
// largest stays under 10%, and the fraction decreases with resolution.
func TestFigure2Shape(t *testing.T) {
	e := fluxEst()
	if frac := e.CommFraction(model.Res256, 8, 4); frac < 0.30 {
		t.Errorf("256px comm fraction at SP=8 = %.2f, want > 0.30", frac)
	}
	if frac := e.CommFraction(model.Res2048, 8, 4); frac > 0.10 {
		t.Errorf("2048px comm fraction at SP=8 = %.2f, want < 0.10", frac)
	}
	prev := 1.0
	for _, res := range model.StandardResolutions() {
		frac := e.CommFraction(res, 8, 4)
		if frac >= prev {
			t.Errorf("comm fraction should fall with resolution; %v has %.3f ≥ %.3f", res, frac, prev)
		}
		prev = frac
	}
}

// TestFigure3Shape: scaling efficiency is sublinear everywhere, near-linear
// for 2048px, poor for 256px.
func TestFigure3Shape(t *testing.T) {
	e := fluxEst()
	for _, res := range model.StandardResolutions() {
		for _, k := range []int{2, 4, 8} {
			eff := e.ScalingEfficiency(res, k, 1)
			if eff >= 1.0 {
				t.Errorf("%v at SP=%d: efficiency %.2f should be sublinear", res, k, eff)
			}
			if eff <= 0 {
				t.Errorf("%v at SP=%d: nonpositive efficiency", res, k)
			}
		}
	}
	if eff := e.ScalingEfficiency(model.Res2048, 8, 1); eff < 0.75 {
		t.Errorf("2048px SP=8 efficiency %.2f, want ≥ 0.75 (near-linear)", eff)
	}
	if eff := e.ScalingEfficiency(model.Res256, 8, 1); eff > 0.5 {
		t.Errorf("256px SP=8 efficiency %.2f, want ≤ 0.5 (poor scaling)", eff)
	}
}

// TestSLOFeasibilityShape pins the calibration the whole evaluation relies
// on: which degrees can meet the paper's base SLOs when a request runs
// alone (§6.1 targets 1.5/2/3/5 s).
func TestSLOFeasibilityShape(t *testing.T) {
	e := fluxEst()
	steps := 50
	total := func(res model.Resolution, k int) time.Duration {
		return time.Duration(steps) * e.StepTimeDegree(res, k, 1)
	}
	if total(model.Res256, 1) > 1500*time.Millisecond {
		t.Error("256px must fit its 1.5s SLO at SP=1")
	}
	if total(model.Res1024, 1) < 3*time.Second {
		t.Error("1024px at SP=1 should miss its 3s SLO (forcing parallelism)")
	}
	if total(model.Res1024, 4) > 3*time.Second {
		t.Error("1024px must fit its 3s SLO at SP=4")
	}
	if total(model.Res2048, 4) < 5*time.Second {
		t.Error("2048px at SP=4 should miss its 5s SLO")
	}
	if total(model.Res2048, 8) > 5*time.Second {
		t.Error("2048px must fit its 5s SLO at SP=8 when alone")
	}
}

func TestA40PCIePenalty(t *testing.T) {
	e := sd3Est()
	// A misaligned pair crosses PCIe and must be slower than the NVLink
	// pair at the same degree.
	nv := e.StepTime(model.Res1024, simgpu.MaskOf(0, 1), 1)
	pcie := e.StepTime(model.Res1024, simgpu.MaskOf(1, 2), 1)
	if pcie <= nv {
		t.Fatalf("PCIe-crossing pair (%v) should be slower than NVLink pair (%v)", pcie, nv)
	}
}

func TestStepTimePanicsOnInvalidGroup(t *testing.T) {
	e := fluxEst()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid group should panic")
		}
	}()
	e.StepTime(model.Res256, simgpu.MaskOf(0, 1, 2), 1)
}

func TestBatchingSavesTime(t *testing.T) {
	e := fluxEst()
	// One batched step of 4 small images beats 4 separate steps.
	batched := e.StepTimeDegree(model.Res256, 1, 4)
	separate := 4 * e.StepTimeDegree(model.Res256, 1, 1)
	if batched >= separate {
		t.Fatalf("batching should save time: batched %v vs 4 separate %v", batched, separate)
	}
}

func TestLatentTransferNegligible(t *testing.T) {
	e := fluxEst()
	for _, res := range model.StandardResolutions() {
		transfer := e.LatentTransferTime(res, 1)
		fastest := time.Duration(1 << 62)
		for _, k := range []int{1, 2, 4, 8} {
			if st := e.StepTimeDegree(res, k, 1); st < fastest {
				fastest = st
			}
		}
		frac := float64(transfer) / float64(fastest)
		if frac > 0.0005 { // Table 4: < 0.05%
			t.Errorf("%v: latent transfer is %.4f%% of fastest step, want < 0.05%%", res, 100*frac)
		}
	}
}

func TestDecodeTimeSmall(t *testing.T) {
	e := fluxEst()
	// §5: decode wall-clock is very small relative to diffusion.
	decode := e.DecodeTime(model.Res2048)
	diffusion := 50 * e.StepTimeDegree(model.Res2048, 8, 1)
	if float64(decode) > 0.05*float64(diffusion) {
		t.Fatalf("decode %v should be <5%% of diffusion %v", decode, diffusion)
	}
}

func TestGPUSecondsIncreaseWithDegree(t *testing.T) {
	e := fluxEst()
	// Sublinear scaling means GPU-seconds per step rise with parallelism
	// for every resolution — the trade-off the allocator navigates.
	for _, res := range model.StandardResolutions() {
		prev := 0.0
		for _, k := range []int{1, 2, 4, 8} {
			g := e.GPUSeconds(res, k, 1)
			if g <= prev {
				t.Errorf("%v: GPU-seconds should rise with degree (k=%d: %v after %v)", res, k, g, prev)
			}
			prev = g
		}
	}
}
