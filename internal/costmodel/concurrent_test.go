package costmodel_test

// Regression test for the documented Profile concurrency contract: after
// BuildProfile, every lookup method is safe for any number of concurrent
// readers — the parallel experiment harness relies on this to share one
// profile across simulation cells. Run under `go test -race` this fails on
// any accidental mutation introduced into the lookup paths.

import (
	"sync"
	"testing"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

func TestProfileConcurrentReadsUnderSimulations(t *testing.T) {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	est := costmodel.NewEstimator(mdl, topo)
	prof := costmodel.BuildProfile(est, costmodel.ProfilerConfig{})

	done := make(chan struct{})
	var wg sync.WaitGroup

	// 8 reader goroutines hammer the lookup methods the scheduler uses on
	// its hot path.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resolutions := prof.Resolutions()
			degrees := prof.Degrees()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, res := range resolutions {
					for _, k := range degrees {
						_ = prof.StepTime(res, k)
						_, _ = prof.Lookup(res, k, 1)
						_ = prof.GPUSeconds(res, k)
					}
					_, _ = prof.MinStepTime(res)
					_ = prof.Has(res)
					_ = prof.BestLatencyDegree(res)
				}
				_ = prof.Version()
				_ = prof.MaxDegree()
			}
		}()
	}

	// Meanwhile, concurrent simulations share the same profile — the shape
	// the parallel harness produces.
	var simWG sync.WaitGroup
	for cell := 0; cell < 4; cell++ {
		cell := cell
		simWG.Add(1)
		go func() {
			defer simWG.Done()
			reqs := workload.Generate(workload.GeneratorConfig{
				Model:       mdl,
				Mix:         workload.UniformMix(),
				Arrivals:    workload.PoissonArrivals{PerMinute: 30},
				SLO:         workload.NewSLOPolicy(1.0),
				NumRequests: 40,
				Seed:        uint64(cell + 1),
			})
			_, err := sim.Run(sim.Config{
				Model:     mdl,
				Topo:      topo,
				Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
				Requests:  reqs,
				Profile:   prof,
			})
			if err != nil {
				t.Errorf("cell %d: simulation failed: %v", cell, err)
			}
		}()
	}
	simWG.Wait()
	close(done)
	wg.Wait()
}
