// Package costmodel predicts per-step execution time for a (model,
// topology, resolution, GPU group, batch size) combination and packages
// those predictions into the offline-profiled lookup table that TetriServe's
// scheduler consumes (§4.2.1 "Offline Profiling for Cost Model").
//
// One denoising step decomposes into three terms:
//
//	step = compute + communication + kernel launch
//
// Compute divides the step's FLOPs across the group, with a per-GPU kernel
// efficiency that degrades when the local token count shrinks (Figure 3's
// sublinear scaling). Communication charges the Ulysses all-to-all
// collectives: per collective, every GPU exchanges (k−1)/k of its local
// shard over the group's bottleneck link (NVLink inside an island, PCIe
// across islands on the A40 node), plus a per-hop latency term that grows
// with the degree (Figure 2's comm-share blow-up at small resolutions).
package costmodel

import (
	"fmt"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
)

// Estimator predicts step latency analytically.
type Estimator struct {
	Model *model.Model
	Topo  *simgpu.Topology
}

// NewEstimator pairs a model with a topology.
func NewEstimator(m *model.Model, t *simgpu.Topology) *Estimator {
	if m == nil || t == nil {
		panic("costmodel: nil model or topology")
	}
	return &Estimator{Model: m, Topo: t}
}

// ComputeTime returns the pure-GEMM portion of one step for a batch of bs
// images at res split across k GPUs.
func (e *Estimator) ComputeTime(res model.Resolution, k, bs int) time.Duration {
	if k <= 0 || bs <= 0 {
		panic("costmodel: non-positive degree or batch")
	}
	flops := e.Model.StepFLOPs(res) * float64(bs) / float64(k)
	tokensPerGPU := float64(e.Model.JointSeqLen(res)*bs) / float64(k)
	sustained := e.Topo.HW.SustainedFLOPS(tokensPerGPU)
	return time.Duration(flops / sustained * float64(time.Second))
}

// CommTime returns the sequence-parallel communication portion of one step
// over the given GPU group. Single-GPU groups communicate nothing.
func (e *Estimator) CommTime(res model.Resolution, group simgpu.Mask, bs int) time.Duration {
	k := group.Count()
	if k <= 1 {
		return 0
	}
	link := e.Topo.GroupLink(group)
	colls := float64(e.Model.CollectivesPerStep())
	// Each all-to-all moves (k-1)/k of every GPU's 1/k shard.
	bytesPerGPU := e.Model.CommBytesPerCollective(res, bs) * float64(k-1) / float64(k*k)
	transfer := bytesPerGPU / link.Bandwidth
	perColl := time.Duration(transfer*float64(time.Second)) + time.Duration(k-1)*link.Latency
	return time.Duration(colls * float64(perColl))
}

// CommTimeDegree is CommTime over the canonical buddy-aligned group of the
// given degree — what offline profiling measures.
func (e *Estimator) CommTimeDegree(res model.Resolution, k, bs int) time.Duration {
	return e.CommTime(res, simgpu.CanonicalGroup(0, k), bs)
}

// StepTime returns the full predicted latency of one denoising step for a
// batch of bs images at res on the given group.
func (e *Estimator) StepTime(res model.Resolution, group simgpu.Mask, bs int) time.Duration {
	if err := e.Topo.ValidGroup(group); err != nil {
		panic(fmt.Sprintf("costmodel: %v", err))
	}
	k := group.Count()
	return e.ComputeTime(res, k, bs) + e.CommTime(res, group, bs) + e.Topo.HW.KernelLaunch
}

// StepTimeDegree is StepTime on the canonical group of the given degree.
func (e *Estimator) StepTimeDegree(res model.Resolution, k, bs int) time.Duration {
	return e.StepTime(res, simgpu.CanonicalGroup(0, k), bs)
}

// CommFraction returns communication's share of step time — the quantity
// plotted in Figure 2.
func (e *Estimator) CommFraction(res model.Resolution, k, bs int) float64 {
	total := e.StepTimeDegree(res, k, bs)
	if total == 0 {
		return 0
	}
	return float64(e.CommTimeDegree(res, k, bs)) / float64(total)
}

// ScalingEfficiency returns T(1)/(k·T(k)) — Figure 3's end-to-end scaling
// efficiency of sequence parallelism.
func (e *Estimator) ScalingEfficiency(res model.Resolution, k, bs int) float64 {
	t1 := e.StepTimeDegree(res, 1, bs)
	tk := e.StepTimeDegree(res, k, bs)
	if tk == 0 {
		return 0
	}
	return float64(t1) / (float64(k) * float64(tk))
}

// LatentTransferTime returns the time to hand a request's latent between GPU
// groups when parallelism changes between steps (§5 "Latent Transfer";
// quantified in Table 4). A small fixed cost covers the async-handoff
// bookkeeping; the payload itself moves at NVLink speed.
func (e *Estimator) LatentTransferTime(res model.Resolution, bs int) time.Duration {
	const fixed = 5 * time.Microsecond
	bytes := e.Model.LatentBytes(res) * float64(bs)
	return fixed + time.Duration(bytes/e.Topo.NVLink.Bandwidth*float64(time.Second))
}

// DecodeTime returns the VAE decode latency for one image at res on a
// single GPU. It is small relative to the diffusion steps (§5) but its
// activation footprint forces sequential decoding.
func (e *Estimator) DecodeTime(res model.Resolution) time.Duration {
	flops := e.Model.DecodeFLOPs(res)
	sustained := e.Topo.HW.SustainedFLOPS(float64(e.Model.Tokens(res)))
	return time.Duration(flops/sustained*float64(time.Second)) + e.Topo.HW.KernelLaunch
}

// GPUSeconds returns GPU·seconds consumed by one step at degree k — the
// quantity the deadline-aware allocator minimizes (k × T(k), §4.2.1).
func (e *Estimator) GPUSeconds(res model.Resolution, k, bs int) float64 {
	return float64(k) * e.StepTimeDegree(res, k, bs).Seconds()
}
