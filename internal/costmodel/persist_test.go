package costmodel

import (
	"encoding/json"
	"testing"

	"tetriserve/internal/model"
)

func TestProfileRoundTrip(t *testing.T) {
	orig := buildFluxProfile(t)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Profile
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.ModelName != orig.ModelName || loaded.TopoName != orig.TopoName {
		t.Fatal("metadata lost in round trip")
	}
	if loaded.Noise != orig.Noise {
		t.Fatal("noise lost")
	}
	for _, res := range model.StandardResolutions() {
		for _, k := range orig.Degrees() {
			a := orig.StepTime(res, k)
			b := loaded.StepTime(res, k)
			// Serialization truncates to microseconds.
			diff := a - b
			if diff < 0 {
				diff = -diff
			}
			if diff > 1000 {
				t.Fatalf("step time drifted across round trip: %v vs %v", a, b)
			}
		}
	}
	// A loaded profile must drive the lookup helpers identically.
	if _, ka := orig.MinStepTime(model.Res2048); true {
		if _, kb := loaded.MinStepTime(model.Res2048); ka != kb {
			t.Fatal("fastest degree changed across round trip")
		}
	}
}

func TestProfileSerializationDeterministic(t *testing.T) {
	p := buildFluxProfile(t)
	a, _ := json.Marshal(p)
	b, _ := json.Marshal(p)
	if string(a) != string(b) {
		t.Fatal("profile serialization not deterministic")
	}
}

func TestProfileUnmarshalValidation(t *testing.T) {
	cases := []string{
		`{}`,
		`{"degrees":[1],"entries":[]}`,
		`{"degrees":[1],"entries":[{"w":256,"h":256,"degree":1,"batch":1,"mean_us":0}]}`,
		`not json`,
	}
	for _, c := range cases {
		var p Profile
		if err := json.Unmarshal([]byte(c), &p); err == nil {
			t.Errorf("invalid profile %q accepted", c)
		}
	}
}
