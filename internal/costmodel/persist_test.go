package costmodel

import (
	"encoding/json"
	"testing"

	"tetriserve/internal/model"
)

func TestProfileRoundTrip(t *testing.T) {
	orig := buildFluxProfile(t)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Profile
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.ModelName != orig.ModelName || loaded.TopoName != orig.TopoName {
		t.Fatal("metadata lost in round trip")
	}
	if loaded.Noise != orig.Noise {
		t.Fatal("noise lost")
	}
	for _, res := range model.StandardResolutions() {
		for _, k := range orig.Degrees() {
			a := orig.StepTime(res, k)
			b := loaded.StepTime(res, k)
			// Serialization truncates to microseconds.
			diff := a - b
			if diff < 0 {
				diff = -diff
			}
			if diff > 1000 {
				t.Fatalf("step time drifted across round trip: %v vs %v", a, b)
			}
		}
	}
	// A loaded profile must drive the lookup helpers identically.
	if _, ka := orig.MinStepTime(model.Res2048); true {
		if _, kb := loaded.MinStepTime(model.Res2048); ka != kb {
			t.Fatal("fastest degree changed across round trip")
		}
	}
}

func TestProfileSerializationDeterministic(t *testing.T) {
	p := buildFluxProfile(t)
	a, _ := json.Marshal(p)
	b, _ := json.Marshal(p)
	if string(a) != string(b) {
		t.Fatal("profile serialization not deterministic")
	}
}

func TestProfileUnmarshalValidation(t *testing.T) {
	cases := []string{
		`{}`,
		`{"degrees":[1],"entries":[]}`,
		`{"degrees":[1],"entries":[{"w":256,"h":256,"degree":1,"batch":1,"mean_us":0}]}`,
		`not json`,
	}
	for _, c := range cases {
		var p Profile
		if err := json.Unmarshal([]byte(c), &p); err == nil {
			t.Errorf("invalid profile %q accepted", c)
		}
	}
}

// TestProfileGammaRoundTrip pins the cache dimension's calibration through
// serialization: a recalibrated γ survives the round trip exactly, and an
// untouched profile (γ unset) still reports the calibrated default on load.
func TestProfileGammaRoundTrip(t *testing.T) {
	orig := buildFluxProfile(t)
	orig.SetCachedStepRelCost(0.45)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Profile
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if got := loaded.CachedStepRelCost(); got != 0.45 {
		t.Fatalf("γ after round trip = %v, want 0.45", got)
	}
	for _, c := range []int{1, 2, 4, 8} {
		if a, b := orig.CacheDiscount(c), loaded.CacheDiscount(c); a != b {
			t.Fatalf("CacheDiscount(%d) drifted across round trip: %v vs %v", c, a, b)
		}
	}

	// Pre-cache-dimension profiles (no cached_step_rel_cost field) load
	// with the calibrated default rather than a zero discount.
	legacy := buildFluxProfile(t)
	legacyData, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	var legacyLoaded Profile
	if err := json.Unmarshal(legacyData, &legacyLoaded); err != nil {
		t.Fatal(err)
	}
	if got := legacyLoaded.CachedStepRelCost(); got != DefaultCachedStepRelCost {
		t.Fatalf("legacy γ = %v, want default %v", got, DefaultCachedStepRelCost)
	}
}

// TestProfileVersionAfterUnmarshal guards the cache-invalidation contract:
// a loaded profile's version must land ≥ 1 (derived caches keyed on
// (profile, version) must never alias the zero value) and loading over an
// existing in-memory table must bump its version so memoized mixes
// derived from the old entries or discount table invalidate.
func TestProfileVersionAfterUnmarshal(t *testing.T) {
	data, err := json.Marshal(buildFluxProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	var fresh Profile
	if err := json.Unmarshal(data, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Version() < 1 {
		t.Fatalf("freshly loaded profile version = %d, want >= 1", fresh.Version())
	}
	before := fresh.Version()
	if err := json.Unmarshal(data, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Version() <= before {
		t.Fatalf("reloading did not bump version: %d -> %d", before, fresh.Version())
	}
}
