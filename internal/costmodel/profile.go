package costmodel

import (
	"fmt"
	"sort"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
)

// Key identifies one profiled configuration.
type Key struct {
	Res    model.Resolution
	Degree int
	Batch  int
}

// Entry is one profiled measurement: the mean per-step latency and its
// coefficient of variation over the profiling runs (Table 1 reports CVs
// below 0.7 %, which is what makes deadline-aware scheduling viable).
type Entry struct {
	Mean    time.Duration
	CV      float64
	Samples int
}

// Profile is the offline-profiled lookup table the scheduler consults at
// runtime (§4.2.1): per (resolution, degree, batch), the expected step time
// and derived GPU-seconds. Lookups never touch the analytical model, exactly
// as the paper's scheduler only reads pre-profiled values.
//
// Concurrency: after BuildProfile returns, every lookup method (StepTime,
// StepTimeBatch, MinStepTime, Lookup, Degrees, Resolutions, Has, …) is safe
// for concurrent readers — the table is never mutated by reads, so any
// number of simulations or schedulers may share one Profile. Extend is the
// single writer and must not run concurrently with readers; the live server
// guarantees this by calling Extend only on the loop goroutine that owns all
// profile reads (see internal/server). Extend bumps Version so cached
// derivations (e.g. the scheduler's allocation memo) can invalidate.
type Profile struct {
	ModelName string
	TopoName  string
	// Noise is the relative step-time jitter (σ/μ) observed while
	// profiling; the engine reuses it when executing.
	Noise   float64
	degrees []int
	entries map[Key]Entry
	// cachedRelCost is γ, the relative cost of a cache-approximated step
	// (TaylorSeer/cache-dit style residual reuse): a cached step still pays
	// γ·T for the shallow layers and the residual patch-up. 0 < γ ≤ 1.
	cachedRelCost float64
	// version counts mutations (Extend calls that added entries, discount
	// recalibrations) so readers holding derived caches can detect staleness
	// cheaply.
	version uint64
}

// DefaultCachedStepRelCost is the calibrated relative cost γ of a
// cache-approximated step, used when a profile predates the cache dimension.
const DefaultCachedStepRelCost = 0.3

// Version identifies the current table contents; it changes whenever Extend
// grows the profile. Two calls returning the same value bracket a span with
// no table mutations.
func (p *Profile) Version() uint64 { return p.version }

// Degrees returns the profiled sequence-parallel degrees in ascending order.
func (p *Profile) Degrees() []int { return p.degrees }

// MaxDegree returns the largest profiled degree.
func (p *Profile) MaxDegree() int { return p.degrees[len(p.degrees)-1] }

// Lookup returns the entry for an exact key.
func (p *Profile) Lookup(res model.Resolution, k, bs int) (Entry, bool) {
	e, ok := p.entries[Key{res, k, bs}]
	return e, ok
}

// StepTime returns the profiled per-step latency at degree k, batch 1.
// Unprofiled configurations panic: the scheduler must never silently invent
// latencies for workloads it was not calibrated on.
func (p *Profile) StepTime(res model.Resolution, k int) time.Duration {
	return p.StepTimeBatch(res, k, 1)
}

// StepTimeBatch returns the profiled per-step latency for a batch of bs.
func (p *Profile) StepTimeBatch(res model.Resolution, k, bs int) time.Duration {
	e, ok := p.entries[Key{res, k, bs}]
	if !ok {
		panic(fmt.Sprintf("costmodel: unprofiled configuration %v k=%d bs=%d", res, k, bs))
	}
	return e.Mean
}

// GPUSeconds returns k × T(res,k) — the per-step GPU-hour cost the
// deadline-aware allocator minimizes.
func (p *Profile) GPUSeconds(res model.Resolution, k int) float64 {
	return float64(k) * p.StepTime(res, k).Seconds()
}

// CachedStepRelCost returns γ — the relative cost of a cache-approximated
// step. Profiles serialized before the cache dimension existed report the
// calibrated default.
func (p *Profile) CachedStepRelCost() float64 {
	if p.cachedRelCost <= 0 || p.cachedRelCost > 1 {
		return DefaultCachedStepRelCost
	}
	return p.cachedRelCost
}

// SetCachedStepRelCost recalibrates γ and bumps Version so memoized mixes
// derived from the old discount table invalidate. Values outside (0, 1]
// reset to the default.
func (p *Profile) SetCachedStepRelCost(gamma float64) {
	p.cachedRelCost = gamma
	p.version++
}

// CacheDiscount is the per-step cost multiplier at cache interval c: one
// full step out of every c, the remaining c−1 at relative cost gamma.
// Interval ≤ 1 (caching off) is exactly 1 so the legacy cost model is
// untouched; the discount is non-increasing in c for any gamma ≤ 1.
func CacheDiscount(gamma float64, interval int) float64 {
	if interval <= 1 {
		return 1
	}
	return (1 + gamma*float64(interval-1)) / float64(interval)
}

// CacheDiscount returns the profile's per-step cost multiplier at cache
// interval c — the third axis of T(res, k, cacheInterval).
func (p *Profile) CacheDiscount(interval int) float64 {
	return CacheDiscount(p.CachedStepRelCost(), interval)
}

// StepTimeCached is T(res, k, cacheInterval): the amortized per-step latency
// when every cacheInterval-th step runs fully and the rest reuse cached
// features. Interval ≤ 1 is exactly StepTime(res, k).
func (p *Profile) StepTimeCached(res model.Resolution, k, interval int) time.Duration {
	t := p.StepTime(res, k)
	if interval <= 1 {
		return t
	}
	return time.Duration(float64(t) * p.CacheDiscount(interval))
}

// MinStepTime returns the fastest profiled per-step latency for res and the
// degree achieving it — T_i^min in Algorithm 1's survival bound.
func (p *Profile) MinStepTime(res model.Resolution) (time.Duration, int) {
	best := time.Duration(0)
	bestK := 0
	for _, k := range p.degrees {
		t := p.StepTime(res, k)
		if bestK == 0 || t < best {
			best, bestK = t, k
		}
	}
	return best, bestK
}

// BestLatencyDegree returns the degree minimizing per-step latency.
func (p *Profile) BestLatencyDegree(res model.Resolution) int {
	_, k := p.MinStepTime(res)
	return k
}

// Resolutions returns the profiled resolutions sorted by token count.
func (p *Profile) Resolutions() []model.Resolution {
	seen := map[model.Resolution]bool{}
	var out []model.Resolution
	for k := range p.entries {
		if !seen[k.Res] {
			seen[k.Res] = true
			out = append(out, k.Res)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pixels() < out[j].Pixels() })
	return out
}

// Has reports whether res was profiled at degree 1, batch 1.
func (p *Profile) Has(res model.Resolution) bool {
	_, ok := p.entries[Key{res, 1, 1}]
	return ok
}

// ProfilerConfig controls offline profiling.
type ProfilerConfig struct {
	// Resolutions to profile; defaults to the paper's four.
	Resolutions []model.Resolution
	// Batches to profile; defaults to {1, 2, 4, 8}.
	Batches []int
	// Samples per configuration; defaults to 20 (the paper profiles CV
	// over 20 steps).
	Samples int
	// Noise is the relative per-step jitter σ/μ; defaults to 0.002,
	// consistent with Table 1's sub-0.7 % CVs.
	Noise float64
	// CachedStepRelCost is γ, the relative cost of a cache-approximated
	// step; defaults to DefaultCachedStepRelCost.
	CachedStepRelCost float64
	// Seed makes profiling deterministic.
	Seed uint64
}

func (c *ProfilerConfig) defaults() {
	if len(c.Resolutions) == 0 {
		c.Resolutions = model.StandardResolutions()
	}
	if len(c.Batches) == 0 {
		c.Batches = []int{1, 2, 4, 8}
	}
	if c.Samples <= 0 {
		c.Samples = 20
	}
	if c.Noise == 0 {
		c.Noise = 0.002
	}
	if c.CachedStepRelCost <= 0 || c.CachedStepRelCost > 1 {
		c.CachedStepRelCost = DefaultCachedStepRelCost
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// BuildProfile runs offline profiling: it "executes" Samples steps per
// (resolution, degree, batch) on the canonical GPU groups with measurement
// noise and records the mean and CV — producing the same artifact the
// paper's offline profiler produces on hardware.
func BuildProfile(est *Estimator, cfg ProfilerConfig) *Profile {
	cfg.defaults()
	rng := stats.NewRNG(cfg.Seed)
	p := &Profile{
		ModelName:     est.Model.Name,
		TopoName:      est.Topo.Name,
		Noise:         cfg.Noise,
		degrees:       est.Topo.Degrees(),
		entries:       make(map[Key]Entry),
		cachedRelCost: cfg.CachedStepRelCost,
		version:       1,
	}
	for _, res := range cfg.Resolutions {
		for _, k := range p.degrees {
			group := simgpu.CanonicalGroup(0, k)
			for _, bs := range cfg.Batches {
				mean := est.StepTime(res, group, bs)
				var acc stats.Running
				for s := 0; s < cfg.Samples; s++ {
					sample := Jitter(mean, cfg.Noise, rng)
					acc.Add(sample.Seconds())
				}
				p.entries[Key{res, k, bs}] = Entry{
					Mean:    time.Duration(acc.Mean() * float64(time.Second)),
					CV:      acc.CV(),
					Samples: cfg.Samples,
				}
			}
		}
	}
	return p
}

// Extend profiles an additional resolution on demand and folds it into the
// table — how the serving daemon admits resolutions outside the standard
// four without restarting (the analytical estimator stands in for a quick
// online profiling pass; determinism comes from a resolution-derived seed).
// Extending an already-profiled resolution is a no-op.
func (p *Profile) Extend(est *Estimator, res model.Resolution) {
	if p.Has(res) {
		return
	}
	if !res.Valid() {
		panic(fmt.Sprintf("costmodel: cannot profile invalid resolution %v", res))
	}
	sub := BuildProfile(est, ProfilerConfig{
		Resolutions: []model.Resolution{res},
		Noise:       p.Noise,
		Seed:        uint64(res.W)<<20 ^ uint64(res.H) ^ 42,
	})
	for k, e := range sub.entries {
		p.entries[k] = e
	}
	p.version++
}

// Jitter perturbs a nominal duration by Gaussian noise with relative σ,
// clamped to stay positive. Both the profiler and the execution engine use
// it so the scheduler sees exactly the variability the engine produces.
func Jitter(mean time.Duration, sigma float64, rng *stats.RNG) time.Duration {
	if sigma <= 0 {
		return mean
	}
	f := rng.Norm(1, sigma)
	if f < 0.5 {
		f = 0.5
	}
	return time.Duration(float64(mean) * f)
}
