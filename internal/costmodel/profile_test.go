package costmodel

import (
	"math"
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
)

func buildFluxProfile(t *testing.T) *Profile {
	t.Helper()
	return BuildProfile(fluxEst(), ProfilerConfig{})
}

func TestProfileCoversStandardGrid(t *testing.T) {
	p := buildFluxProfile(t)
	for _, res := range model.StandardResolutions() {
		if !p.Has(res) {
			t.Fatalf("profile missing %v", res)
		}
		for _, k := range []int{1, 2, 4, 8} {
			for _, bs := range []int{1, 2, 4, 8} {
				if _, ok := p.Lookup(res, k, bs); !ok {
					t.Fatalf("profile missing (%v, k=%d, bs=%d)", res, k, bs)
				}
			}
		}
	}
	if len(p.Resolutions()) != 4 {
		t.Fatalf("Resolutions() = %v", p.Resolutions())
	}
}

// TestTable1CVsBelowPaperBound: the paper reports execution CVs below 0.7%
// in every configuration; the profiled table must reproduce that stability.
func TestTable1CVsBelowPaperBound(t *testing.T) {
	p := buildFluxProfile(t)
	for _, res := range model.StandardResolutions() {
		for _, k := range p.Degrees() {
			e, _ := p.Lookup(res, k, 1)
			if e.CV >= 0.007 {
				t.Errorf("CV(%v, k=%d) = %.4f, want < 0.007", res, k, e.CV)
			}
			if e.Samples != 20 {
				t.Errorf("samples = %d, want 20", e.Samples)
			}
		}
	}
}

func TestProfileMeansTrackEstimator(t *testing.T) {
	est := fluxEst()
	p := BuildProfile(est, ProfilerConfig{})
	for _, res := range model.StandardResolutions() {
		for _, k := range p.Degrees() {
			want := est.StepTimeDegree(res, k, 1)
			got := p.StepTime(res, k)
			rel := math.Abs(float64(got-want)) / float64(want)
			if rel > 0.01 {
				t.Errorf("profiled mean for (%v,k=%d) off by %.3f%%", res, k, 100*rel)
			}
		}
	}
}

func TestMinStepTime(t *testing.T) {
	p := buildFluxProfile(t)
	tm, k := p.MinStepTime(model.Res2048)
	if k != 8 {
		t.Fatalf("fastest degree for 2048px = %d, want 8", k)
	}
	for _, kk := range p.Degrees() {
		if p.StepTime(model.Res2048, kk) < tm {
			t.Fatal("MinStepTime not minimal")
		}
	}
	if p.BestLatencyDegree(model.Res2048) != 8 {
		t.Fatal("BestLatencyDegree disagrees with MinStepTime")
	}
}

func TestSmallResolutionPrefersLowDegree(t *testing.T) {
	p := buildFluxProfile(t)
	// For 256px the comm overhead makes SP=8 slower than SP=4; the
	// fastest degree should not be the largest.
	if _, k := p.MinStepTime(model.Res256); k == 8 {
		t.Fatal("256px fastest degree should not be 8 (comm-dominated)")
	}
}

func TestUnprofiledLookupPanics(t *testing.T) {
	p := buildFluxProfile(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unprofiled resolution should panic")
		}
	}()
	p.StepTime(model.Resolution{W: 640, H: 640}, 1)
}

func TestProfileDeterministicAcrossBuilds(t *testing.T) {
	a := BuildProfile(fluxEst(), ProfilerConfig{Seed: 5})
	b := BuildProfile(fluxEst(), ProfilerConfig{Seed: 5})
	for _, res := range model.StandardResolutions() {
		for _, k := range a.Degrees() {
			if a.StepTime(res, k) != b.StepTime(res, k) {
				t.Fatal("same-seed profiles differ")
			}
		}
	}
}

func TestGPUSecondsDefinition(t *testing.T) {
	p := buildFluxProfile(t)
	res := model.Res1024
	want := 4 * p.StepTime(res, 4).Seconds()
	if got := p.GPUSeconds(res, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GPUSeconds = %v, want %v", got, want)
	}
}

func TestJitter(t *testing.T) {
	rng := stats.NewRNG(3)
	mean := 100 * time.Millisecond
	var acc stats.Running
	for i := 0; i < 20000; i++ {
		s := Jitter(mean, 0.002, rng)
		if s <= 0 {
			t.Fatal("jittered duration must stay positive")
		}
		acc.Add(s.Seconds())
	}
	if math.Abs(acc.Mean()-0.1) > 0.0005 {
		t.Fatalf("jitter mean %v, want ≈0.1", acc.Mean())
	}
	if cv := acc.CV(); cv < 0.001 || cv > 0.004 {
		t.Fatalf("jitter CV %v, want ≈0.002", cv)
	}
}

func TestJitterZeroSigma(t *testing.T) {
	rng := stats.NewRNG(3)
	if Jitter(time.Second, 0, rng) != time.Second {
		t.Fatal("zero sigma should be identity")
	}
}

func TestJitterClampsExtremes(t *testing.T) {
	rng := stats.NewRNG(3)
	for i := 0; i < 10000; i++ {
		if s := Jitter(time.Second, 5.0, rng); s < time.Second/2 {
			t.Fatalf("jitter fell below the 0.5x clamp: %v", s)
		}
	}
}

func TestCustomProfilerConfig(t *testing.T) {
	p := BuildProfile(fluxEst(), ProfilerConfig{
		Resolutions: []model.Resolution{model.Res512},
		Batches:     []int{1},
		Samples:     5,
		Noise:       0.001,
		Seed:        9,
	})
	if p.Has(model.Res1024) {
		t.Fatal("profile should only contain requested resolutions")
	}
	e, ok := p.Lookup(model.Res512, 2, 1)
	if !ok || e.Samples != 5 {
		t.Fatalf("custom config not honored: %+v ok=%v", e, ok)
	}
	if p.Noise != 0.001 {
		t.Fatalf("Noise = %v", p.Noise)
	}
}

func TestProfileTopoDegrees(t *testing.T) {
	p := BuildProfile(sd3Est(), ProfilerConfig{})
	if got := p.Degrees(); len(got) != 3 || got[2] != 4 {
		t.Fatalf("A40 profile degrees = %v, want [1 2 4]", got)
	}
	if p.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d", p.MaxDegree())
	}
}

func TestExtendProfilesNewResolution(t *testing.T) {
	p := buildFluxProfile(t)
	res := model.Resolution{W: 768, H: 768}
	if p.Has(res) {
		t.Fatal("768px unexpectedly pre-profiled")
	}
	p.Extend(fluxEst(), res)
	if !p.Has(res) {
		t.Fatal("Extend did not add the resolution")
	}
	// Step time falls between the 512px and 1024px entries at SP=1.
	t768 := p.StepTime(res, 1)
	if t768 <= p.StepTime(model.Res512, 1) || t768 >= p.StepTime(model.Res1024, 1) {
		t.Fatalf("768px step time %v out of order", t768)
	}
	// Idempotent and deterministic.
	before := p.StepTime(res, 4)
	p.Extend(fluxEst(), res)
	if p.StepTime(res, 4) != before {
		t.Fatal("re-extension changed profiled values")
	}
}

func TestExtendRejectsInvalidResolution(t *testing.T) {
	p := buildFluxProfile(t)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid resolution accepted")
		}
	}()
	p.Extend(fluxEst(), model.Resolution{W: 17, H: 17})
}
