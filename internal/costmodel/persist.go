package costmodel

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"tetriserve/internal/model"
)

// In production the offline profiling pass runs once per (model, hardware)
// pair and its lookup table is shipped with the deployment; this file makes
// the Profile a durable artifact (JSON) so the daemon can load it instead
// of re-profiling at startup.

// profileJSON is the serialized form.
type profileJSON struct {
	Model string  `json:"model"`
	Topo  string  `json:"topology"`
	Noise float64 `json:"noise"`
	// CachedStepRelCost is γ, the cache-approximated step's relative cost;
	// omitted (0) in profiles that predate the cache dimension, in which
	// case loading falls back to DefaultCachedStepRelCost.
	CachedStepRelCost float64            `json:"cached_step_rel_cost,omitempty"`
	Degrees           []int              `json:"degrees"`
	Entries           []profileEntryJSON `json:"entries"`
}

type profileEntryJSON struct {
	W       int     `json:"w"`
	H       int     `json:"h"`
	Degree  int     `json:"degree"`
	Batch   int     `json:"batch"`
	MeanUS  int64   `json:"mean_us"`
	CV      float64 `json:"cv"`
	Samples int     `json:"samples"`
}

// MarshalJSON implements json.Marshaler with deterministic entry order.
func (p *Profile) MarshalJSON() ([]byte, error) {
	out := profileJSON{
		Model:             p.ModelName,
		Topo:              p.TopoName,
		Noise:             p.Noise,
		CachedStepRelCost: p.cachedRelCost,
		Degrees:           p.degrees,
	}
	keys := make([]Key, 0, len(p.entries))
	for k := range p.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Res.Pixels() != b.Res.Pixels() {
			return a.Res.Pixels() < b.Res.Pixels()
		}
		if a.Degree != b.Degree {
			return a.Degree < b.Degree
		}
		return a.Batch < b.Batch
	})
	for _, k := range keys {
		e := p.entries[k]
		out.Entries = append(out.Entries, profileEntryJSON{
			W: k.Res.W, H: k.Res.H, Degree: k.Degree, Batch: k.Batch,
			MeanUS: e.Mean.Microseconds(), CV: e.CV, Samples: e.Samples,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("costmodel: decoding profile: %w", err)
	}
	if len(in.Degrees) == 0 || len(in.Entries) == 0 {
		return fmt.Errorf("costmodel: profile missing degrees or entries")
	}
	if in.CachedStepRelCost < 0 || in.CachedStepRelCost > 1 {
		return fmt.Errorf("costmodel: cached_step_rel_cost %v outside [0, 1]", in.CachedStepRelCost)
	}
	p.ModelName = in.Model
	p.TopoName = in.Topo
	p.Noise = in.Noise
	p.cachedRelCost = in.CachedStepRelCost
	p.degrees = in.Degrees
	// A loaded table is as real as a freshly built one: version must land
	// ≥ 1 so derived caches keyed on (profile, version) never alias a loaded
	// profile with the zero value, and loading over an existing table must
	// bump — the entries or the discount table may differ, and memoized
	// mixes derived from the old values have to invalidate.
	p.version++
	p.entries = make(map[Key]Entry, len(in.Entries))
	for _, e := range in.Entries {
		if e.MeanUS <= 0 {
			return fmt.Errorf("costmodel: non-positive step time for %dx%d k=%d", e.W, e.H, e.Degree)
		}
		key := Key{Res: model.Resolution{W: e.W, H: e.H}, Degree: e.Degree, Batch: e.Batch}
		p.entries[key] = Entry{
			Mean:    time.Duration(e.MeanUS) * time.Microsecond,
			CV:      e.CV,
			Samples: e.Samples,
		}
	}
	return nil
}
