package workload

import (
	"math"
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
)

func TestDefaultSLOBudgets(t *testing.T) {
	p := NewSLOPolicy(1.0)
	want := map[model.Resolution]time.Duration{
		model.Res256:  1500 * time.Millisecond,
		model.Res512:  2000 * time.Millisecond,
		model.Res1024: 3000 * time.Millisecond,
		model.Res2048: 5000 * time.Millisecond,
	}
	for res, budget := range want {
		if got := p.Budget(res); got != budget {
			t.Errorf("Budget(%v) = %v, want %v", res, got, budget)
		}
	}
}

func TestSLOScaleMultiplies(t *testing.T) {
	p := NewSLOPolicy(1.5)
	if got := p.Budget(model.Res2048); got != 7500*time.Millisecond {
		t.Fatalf("scaled budget = %v, want 7.5s", got)
	}
}

func TestSLOUnknownResolutionPanics(t *testing.T) {
	p := NewSLOPolicy(1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown resolution should panic")
		}
	}()
	p.Budget(model.Resolution{W: 640, H: 480})
}

func TestSLOScalesSweep(t *testing.T) {
	scales := SLOScales()
	if scales[0] != 1.0 || scales[len(scales)-1] != 1.5 {
		t.Fatalf("SLOScales = %v, want 1.0..1.5", scales)
	}
}

func TestRequestDeadline(t *testing.T) {
	r := Request{Arrival: 10 * time.Second, SLO: 3 * time.Second}
	if r.Deadline() != 13*time.Second {
		t.Fatalf("Deadline = %v", r.Deadline())
	}
}

func TestUniformMixProportions(t *testing.T) {
	mix := UniformMix()
	rng := stats.NewRNG(1)
	counts := map[model.Resolution]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[mix.Sample(rng)]++
	}
	for _, res := range model.StandardResolutions() {
		frac := float64(counts[res]) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("uniform mix fraction for %v = %.3f, want ≈0.25", res, frac)
		}
	}
}

func TestSkewedMixBiasesLarge(t *testing.T) {
	mix := SkewedMix(1.0)
	rng := stats.NewRNG(2)
	counts := map[model.Resolution]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[mix.Sample(rng)]++
	}
	// p ∝ exp(L/Lmax): 2048px should be the most common, 256px the least.
	if counts[model.Res2048] <= counts[model.Res256] {
		t.Fatalf("skewed mix should favor 2048px: %v", counts)
	}
	// Monotone in resolution.
	prev := -1
	for _, res := range model.StandardResolutions() {
		if counts[res] < prev {
			t.Fatalf("skew should be monotone in latent length: %v", counts)
		}
		prev = counts[res]
	}
	// Expected proportions: weights exp(L_i/L_max) with L ∝ pixels:
	// exp(1/64), exp(1/16), exp(1/4), exp(1).
	weights := []float64{math.Exp(1.0 / 64), math.Exp(1.0 / 16), math.Exp(0.25), math.Exp(1)}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, res := range model.StandardResolutions() {
		want := weights[i] / total
		got := float64(counts[res]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("skewed fraction for %v = %.3f, want ≈%.3f", res, got, want)
		}
	}
}

func TestHomogeneousMix(t *testing.T) {
	mix := HomogeneousMix(model.Res512)
	rng := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		if mix.Sample(rng) != model.Res512 {
			t.Fatal("homogeneous mix emitted a different resolution")
		}
	}
	if len(mix.Resolutions()) != 1 {
		t.Fatal("homogeneous support should be singleton")
	}
}

func TestCustomMixValidation(t *testing.T) {
	if _, err := CustomMix("x", nil, nil); err == nil {
		t.Error("empty mix should error")
	}
	if _, err := CustomMix("x", []model.Resolution{model.Res256}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := CustomMix("x", []model.Resolution{model.Res256}, []float64{0}); err == nil {
		t.Error("zero-sum weights should error")
	}
	m, err := CustomMix("mine", []model.Resolution{model.Res256, model.Res512}, []float64{1, 3})
	if err != nil || m.Name() != "mine" {
		t.Fatalf("valid custom mix rejected: %v", err)
	}
}

func TestPoissonMeanGap(t *testing.T) {
	arr := PoissonArrivals{PerMinute: 12}
	rng := stats.NewRNG(4)
	var acc stats.Running
	for i := 0; i < 50000; i++ {
		acc.Add(arr.NextGap(rng).Seconds())
	}
	// Mean gap should be 5s at 12/min.
	if math.Abs(acc.Mean()-5) > 0.1 {
		t.Fatalf("mean gap = %vs, want ≈5s", acc.Mean())
	}
	// Exponential: stddev ≈ mean.
	if math.Abs(acc.Stddev()-5) > 0.2 {
		t.Fatalf("gap stddev = %v, want ≈5", acc.Stddev())
	}
}

func TestPoissonInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate should panic")
		}
	}()
	PoissonArrivals{}.NextGap(stats.NewRNG(1))
}

func TestBurstyLongRunRate(t *testing.T) {
	arr := NewBurstyArrivals(12)
	rng := stats.NewRNG(5)
	total := time.Duration(0)
	const n = 30000
	for i := 0; i < n; i++ {
		total += arr.NextGap(rng)
	}
	perMin := float64(n) / total.Minutes()
	if math.Abs(perMin-12) > 1.5 {
		t.Fatalf("bursty long-run rate = %.1f/min, want ≈12", perMin)
	}
}

func TestBurstyIsBurstier(t *testing.T) {
	// Coefficient of variation of gaps must exceed the Poisson value (1).
	arr := NewBurstyArrivals(12)
	rng := stats.NewRNG(6)
	var acc stats.Running
	for i := 0; i < 30000; i++ {
		acc.Add(arr.NextGap(rng).Seconds())
	}
	if cv := acc.CV(); cv < 1.05 {
		t.Fatalf("bursty gap CV = %.2f, want > 1.05 (burstier than Poisson)", cv)
	}
}

func TestBurstyInvalidParamsPanic(t *testing.T) {
	b := &BurstyArrivals{AvgPerMinute: 12, BurstFactor: 0.5, BurstFraction: 0.3, MeanBurst: time.Second}
	defer func() {
		if recover() == nil {
			t.Fatal("burst factor ≤ 1 should panic")
		}
	}()
	b.NextGap(stats.NewRNG(1))
}

func TestSteadyArrivals(t *testing.T) {
	s := SteadyArrivals{Gap: time.Second}
	if s.NextGap(nil) != time.Second {
		t.Fatal("steady gap wrong")
	}
}

func TestInterpolatedBudgetExactOnAnchors(t *testing.T) {
	p := NewSLOPolicy(1.2)
	for _, res := range model.StandardResolutions() {
		if p.InterpolatedBudget(res) != p.Budget(res) {
			t.Fatalf("interpolation disagrees with exact budget at %v", res)
		}
	}
}

func TestInterpolatedBudgetBetweenAnchors(t *testing.T) {
	p := NewSLOPolicy(1.0)
	got := p.InterpolatedBudget(model.Resolution{W: 768, H: 768})
	if got <= p.Budget(model.Res512) || got >= p.Budget(model.Res1024) {
		t.Fatalf("768px budget %v not between 2s and 3s", got)
	}
}

func TestInterpolatedBudgetClampsBelow(t *testing.T) {
	p := NewSLOPolicy(1.0)
	if got := p.InterpolatedBudget(model.Resolution{W: 128, H: 128}); got != p.Budget(model.Res256) {
		t.Fatalf("tiny resolution budget %v, want the 256px floor", got)
	}
}

// TestInterpolatedBudgetClampsAbove is the extrapolation regression: budgets
// outside the calibrated range clamp at the largest anchor instead of riding
// the final segment's slope (pre-fix, 4096² got a manufactured ~13 s budget
// no SLO contract backs).
func TestInterpolatedBudgetClampsAbove(t *testing.T) {
	p := NewSLOPolicy(1.0)
	for _, side := range []int{2304, 4096, 8192} {
		got := p.InterpolatedBudget(model.Resolution{W: side, H: side})
		if got != p.Budget(model.Res2048) {
			t.Fatalf("%dpx budget %v, want clamp at the 2048px anchor %v",
				side, got, p.Budget(model.Res2048))
		}
	}
}

// TestInterpolatedBudgetNeverNegative: with a custom base whose final
// segment slopes downward, pre-fix extrapolation produced zero or negative
// deadlines; the clamp keeps every budget at a calibrated value.
func TestInterpolatedBudgetNeverNegative(t *testing.T) {
	p := SLOPolicy{
		Scale: 1.0,
		Base: map[model.Resolution]time.Duration{
			model.Res256: 4 * time.Second,
			model.Res512: 1 * time.Second, // steep downward final segment
		},
	}
	got := p.InterpolatedBudget(model.Resolution{W: 2048, H: 2048})
	if got != time.Second {
		t.Fatalf("out-of-range budget %v, want clamp at 1s; pre-fix this extrapolated negative", got)
	}
	if got <= 0 {
		t.Fatalf("budget must be positive, got %v", got)
	}
}

func TestInterpolatedBudgetMonotone(t *testing.T) {
	p := NewSLOPolicy(1.0)
	prev := time.Duration(0)
	for side := 256; side <= 4096; side += 256 {
		got := p.InterpolatedBudget(model.Resolution{W: side, H: side})
		if got < prev {
			t.Fatalf("budget not monotone at %dpx: %v after %v", side, got, prev)
		}
		prev = got
	}
}
