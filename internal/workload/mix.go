package workload

import (
	"fmt"
	"math"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
)

// Mix samples a resolution per request.
type Mix interface {
	// Name identifies the mix in reports ("Uniform", "Skewed").
	Name() string
	// Sample draws one resolution.
	Sample(rng *stats.RNG) model.Resolution
	// Resolutions lists the support of the mix.
	Resolutions() []model.Resolution
}

type weightedMix struct {
	name    string
	res     []model.Resolution
	weights []float64
}

func (m *weightedMix) Name() string { return m.name }

func (m *weightedMix) Sample(rng *stats.RNG) model.Resolution {
	return m.res[rng.Choice(m.weights)]
}

func (m *weightedMix) Resolutions() []model.Resolution {
	out := make([]model.Resolution, len(m.res))
	copy(out, m.res)
	return out
}

// UniformMix draws each of the paper's four resolutions equally often.
func UniformMix() Mix {
	res := model.StandardResolutions()
	w := make([]float64, len(res))
	for i := range w {
		w[i] = 1
	}
	return &weightedMix{name: "Uniform", res: res, weights: w}
}

// SkewedMix biases toward larger resolutions with exponential weight over
// latent length: p_i ∝ exp(α·L_i/L_max) with L_i = (H_i·W_i)/16² (§6.1).
func SkewedMix(alpha float64) Mix {
	res := model.StandardResolutions()
	lmax := 0.0
	ls := make([]float64, len(res))
	for i, r := range res {
		ls[i] = float64(r.Pixels()) / (16 * 16)
		if ls[i] > lmax {
			lmax = ls[i]
		}
	}
	w := make([]float64, len(res))
	for i := range w {
		w[i] = math.Exp(alpha * ls[i] / lmax)
	}
	return &weightedMix{name: fmt.Sprintf("Skewed(α=%.1f)", alpha), res: res, weights: w}
}

// HomogeneousMix emits a single resolution — Figure 14's workloads.
func HomogeneousMix(res model.Resolution) Mix {
	return &weightedMix{
		name:    fmt.Sprintf("Only-%s", res),
		res:     []model.Resolution{res},
		weights: []float64{1},
	}
}

// CustomMix builds a mix from explicit (resolution, weight) pairs.
func CustomMix(name string, res []model.Resolution, weights []float64) (Mix, error) {
	if len(res) == 0 || len(res) != len(weights) {
		return nil, fmt.Errorf("workload: mix needs matching non-empty resolutions and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative mix weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: mix weights sum to zero")
	}
	return &weightedMix{name: name, res: res, weights: weights}, nil
}
