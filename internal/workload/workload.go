// Package workload generates the request streams the paper evaluates on:
// Poisson and bursty arrivals, Uniform and Skewed resolution mixes,
// homogeneous single-resolution workloads, resolution-specific SLOs with a
// sweepable scale factor, and a synthetic DiffusionDB-like prompt corpus
// whose similarity structure drives the Nirvana cache experiments.
package workload

import (
	"fmt"
	"sort"
	"time"

	"tetriserve/internal/model"
)

// RequestID identifies a request within one run.
type RequestID int

// Request is one image-generation request as the serving system sees it.
type Request struct {
	ID     RequestID
	Prompt Prompt
	Res    model.Resolution
	// Steps is the number of denoising steps to execute (the model default
	// minus any cache-skipped prefix).
	Steps int
	// SkippedSteps records how many initial steps a cache hit removed.
	SkippedSteps int
	// QualityBudget bounds how many steps the scheduler may approximate via
	// step caching over the request's lifetime (0 = caching forbidden). The
	// planner spends it only when the deadline is otherwise infeasible.
	QualityBudget int
	// Arrival is the absolute arrival time.
	Arrival time.Duration
	// SLO is the relative latency budget; Deadline = Arrival + SLO.
	SLO time.Duration
	// TraceID is the fleet-wide lifecycle trace identifier, minted at router
	// admission and propagated to the serving shard (HTTP header on the live
	// path, this field on the sim path). Empty when the request entered a
	// shard directly; the lifecycle recorder then derives one from ID.
	TraceID string
	// Tenant is the admission-fairness identity ("" = default tenant),
	// carried for per-tenant SLO attainment accounting.
	Tenant string
}

// Deadline returns the absolute completion deadline D_i.
func (r *Request) Deadline() time.Duration { return r.Arrival + r.SLO }

// String summarizes the request for traces.
func (r *Request) String() string {
	return fmt.Sprintf("req%d[%s steps=%d slo=%s]", r.ID, r.Res, r.Steps, r.SLO)
}

// SLOPolicy maps resolutions to latency budgets. The paper grounds the base
// targets in user-perceived responsiveness (§6.1): 1.5 s for the smallest
// resolution up to 5.0 s for the largest, swept by a scale in [1.0, 1.5].
type SLOPolicy struct {
	Base  map[model.Resolution]time.Duration
	Scale float64
}

// DefaultSLOBase returns the paper's base targets.
func DefaultSLOBase() map[model.Resolution]time.Duration {
	return map[model.Resolution]time.Duration{
		model.Res256:  1500 * time.Millisecond,
		model.Res512:  2000 * time.Millisecond,
		model.Res1024: 3000 * time.Millisecond,
		model.Res2048: 5000 * time.Millisecond,
	}
}

// NewSLOPolicy returns the default policy at the given scale.
func NewSLOPolicy(scale float64) SLOPolicy {
	return SLOPolicy{Base: DefaultSLOBase(), Scale: scale}
}

// Budget returns the latency budget for res at the policy's scale.
// Unknown resolutions panic: an SLO must be an explicit contract.
func (p SLOPolicy) Budget(res model.Resolution) time.Duration {
	base, ok := p.Base[res]
	if !ok {
		panic(fmt.Sprintf("workload: no SLO configured for %v", res))
	}
	return time.Duration(float64(base) * p.Scale)
}

// InterpolatedBudget returns a budget for any valid resolution: exact for
// configured ones, otherwise linearly interpolated in latent-token count
// between the two nearest configured anchors (clamped at the extremes).
// The serving daemon uses it to admit non-standard resolutions with a
// deadline consistent with the configured contract.
func (p SLOPolicy) InterpolatedBudget(res model.Resolution) time.Duration {
	if base, ok := p.Base[res]; ok {
		return time.Duration(float64(base) * p.Scale)
	}
	type anchor struct {
		tokens float64
		budget float64
	}
	anchors := make([]anchor, 0, len(p.Base))
	for r, b := range p.Base {
		anchors = append(anchors, anchor{float64(r.Pixels()) / 256, float64(b)})
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].tokens < anchors[j].tokens })
	if len(anchors) == 0 {
		panic("workload: SLO policy has no anchors")
	}
	t := float64(res.Pixels()) / 256
	if t <= anchors[0].tokens {
		return time.Duration(anchors[0].budget * p.Scale)
	}
	last := anchors[len(anchors)-1]
	if t >= last.tokens {
		// Clamp at the largest calibrated anchor. Extrapolating the final
		// segment's slope was only ever calibrated between anchors; outside
		// the range it manufactures deadlines no SLO contract backs (and for
		// non-monotonic custom bases it can even go negative).
		return time.Duration(last.budget * p.Scale)
	}
	for i := 1; i < len(anchors); i++ {
		if t <= anchors[i].tokens {
			lo, hi := anchors[i-1], anchors[i]
			frac := (t - lo.tokens) / (hi.tokens - lo.tokens)
			return time.Duration((lo.budget + frac*(hi.budget-lo.budget)) * p.Scale)
		}
	}
	return time.Duration(last.budget * p.Scale)
}

// SLOScales returns the paper's sweep grid 1.0× … 1.5×.
func SLOScales() []float64 { return []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5} }
