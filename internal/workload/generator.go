package workload

import (
	"sort"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
)

// GeneratorConfig assembles a full request trace.
type GeneratorConfig struct {
	// Model supplies the default step count per request.
	Model *model.Model
	// Mix samples resolutions; defaults to UniformMix.
	Mix Mix
	// Arrivals supplies inter-arrival gaps; defaults to Poisson 12/min.
	Arrivals ArrivalProcess
	// SLO maps resolutions to budgets; defaults to scale 1.0.
	SLO SLOPolicy
	// NumRequests is the trace length; defaults to 300 (the paper samples
	// 300 DiffusionDB prompts, §6.1).
	NumRequests int
	// Seed makes the trace deterministic.
	Seed uint64
	// Prompts samples prompt text; defaults to NewPromptSampler.
	Prompts *PromptSampler
}

func (c *GeneratorConfig) defaults() {
	if c.Mix == nil {
		c.Mix = UniformMix()
	}
	if c.Arrivals == nil {
		c.Arrivals = PoissonArrivals{PerMinute: 12}
	}
	if c.SLO.Base == nil {
		c.SLO = NewSLOPolicy(1.0)
	}
	if c.NumRequests <= 0 {
		c.NumRequests = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Prompts == nil {
		c.Prompts = NewPromptSampler()
	}
}

// Generate materializes the trace: requests sorted by arrival time with
// resolutions, prompts, SLOs and default step counts filled in.
func Generate(cfg GeneratorConfig) []*Request {
	cfg.defaults()
	if cfg.Model == nil {
		panic("workload: Generate requires a model")
	}
	rng := stats.NewRNG(cfg.Seed)
	arrRNG := rng.Fork(1)
	mixRNG := rng.Fork(2)
	promptRNG := rng.Fork(3)

	reqs := make([]*Request, 0, cfg.NumRequests)
	now := time.Duration(0)
	for i := 0; i < cfg.NumRequests; i++ {
		now += cfg.Arrivals.NextGap(arrRNG)
		res := cfg.Mix.Sample(mixRNG)
		reqs = append(reqs, &Request{
			ID:      RequestID(i),
			Prompt:  cfg.Prompts.Sample(promptRNG),
			Res:     res,
			Steps:   cfg.Model.DefaultSteps,
			Arrival: now,
			SLO:     cfg.SLO.Budget(res),
		})
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs
}

// CountByResolution tallies a trace per resolution, useful for verifying
// mix proportions in tests and reports.
func CountByResolution(reqs []*Request) map[model.Resolution]int {
	out := make(map[model.Resolution]int)
	for _, r := range reqs {
		out[r.Res]++
	}
	return out
}
