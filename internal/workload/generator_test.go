package workload

import (
	"testing"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
)

func TestGenerateDefaults(t *testing.T) {
	reqs := Generate(GeneratorConfig{Model: model.FLUX()})
	if len(reqs) != 300 {
		t.Fatalf("default trace length = %d, want 300 (§6.1)", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != RequestID(i) {
			t.Fatalf("IDs not sequential at %d", i)
		}
		if r.Steps != 50 {
			t.Fatalf("default steps = %d, want FLUX's 50", r.Steps)
		}
		if r.SLO <= 0 {
			t.Fatal("missing SLO")
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatal("trace not sorted by arrival")
		}
		if r.Prompt.Text == "" {
			t.Fatal("empty prompt")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Model: model.FLUX(), Seed: 42, NumRequests: 50}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Res != b[i].Res || a[i].Prompt.Text != b[i].Prompt.Text {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(GeneratorConfig{Model: model.FLUX(), Seed: 1, NumRequests: 50})
	b := Generate(GeneratorConfig{Model: model.FLUX(), Seed: 2, NumRequests: 50})
	same := 0
	for i := range a {
		if a[i].Arrival == b[i].Arrival {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical arrival times")
	}
}

func TestGenerateSLOMatchesResolution(t *testing.T) {
	pol := NewSLOPolicy(1.2)
	reqs := Generate(GeneratorConfig{Model: model.FLUX(), SLO: pol, NumRequests: 100, Seed: 3})
	for _, r := range reqs {
		if r.SLO != pol.Budget(r.Res) {
			t.Fatalf("request %d SLO %v does not match policy %v for %v", r.ID, r.SLO, pol.Budget(r.Res), r.Res)
		}
	}
}

func TestGenerateRequiresModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing model should panic")
		}
	}()
	Generate(GeneratorConfig{})
}

func TestCountByResolution(t *testing.T) {
	reqs := Generate(GeneratorConfig{Model: model.FLUX(), NumRequests: 400, Seed: 9})
	counts := CountByResolution(reqs)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 400 {
		t.Fatalf("counts sum to %d", total)
	}
	for _, res := range model.StandardResolutions() {
		if counts[res] < 50 {
			t.Fatalf("uniform mix severely unbalanced: %v", counts)
		}
	}
}

func TestPromptSamplerThemePopularity(t *testing.T) {
	s := NewPromptSampler()
	rng := stats.NewRNG(10)
	counts := make([]int, s.Themes)
	const n = 40000
	for i := 0; i < n; i++ {
		p := s.Sample(rng)
		if p.Theme < 0 || p.Theme >= s.Themes {
			t.Fatalf("theme %d out of range", p.Theme)
		}
		if len(p.Mods) != s.ModsPerPrompt {
			t.Fatalf("mods = %v, want %d entries", p.Mods, s.ModsPerPrompt)
		}
		counts[p.Theme]++
	}
	// Zipf: the most popular theme should dominate the least popular.
	if counts[0] < 5*counts[s.Themes-1] {
		t.Fatalf("theme popularity not head-heavy: head=%d tail=%d", counts[0], counts[s.Themes-1])
	}
}

func TestPromptModsDistinct(t *testing.T) {
	s := NewPromptSampler()
	rng := stats.NewRNG(11)
	for i := 0; i < 1000; i++ {
		p := s.Sample(rng)
		seen := map[int]bool{}
		for _, m := range p.Mods {
			if seen[m] {
				t.Fatalf("duplicate modifier in %v", p.Mods)
			}
			seen[m] = true
		}
	}
}

func TestSharedMods(t *testing.T) {
	a := Prompt{Mods: []int{1, 2, 3}}
	b := Prompt{Mods: []int{3, 4, 1}}
	if got := a.SharedMods(b); got != 2 {
		t.Fatalf("SharedMods = %d, want 2", got)
	}
	if got := a.SharedMods(Prompt{}); got != 0 {
		t.Fatalf("SharedMods vs empty = %d", got)
	}
}

func TestPromptValidate(t *testing.T) {
	if err := (Prompt{Theme: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Prompt{Theme: -1}).Validate(); err == nil {
		t.Fatal("negative theme should be invalid")
	}
}

func TestPromptTextsVary(t *testing.T) {
	s := NewPromptSampler()
	rng := stats.NewRNG(12)
	texts := map[string]bool{}
	for i := 0; i < 200; i++ {
		texts[s.Sample(rng).Text] = true
	}
	if len(texts) < 100 {
		t.Fatalf("only %d distinct prompt texts in 200 samples", len(texts))
	}
}
