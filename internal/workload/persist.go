package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"tetriserve/internal/model"
)

// Request traces are JSON-serializable so that experiments can be replayed
// byte-for-byte across machines and so the load-generation CLI can share
// traces with the simulator.

// requestJSON is the serialized form of a Request.
type requestJSON struct {
	ID        int    `json:"id"`
	Prompt    string `json:"prompt"`
	Theme     int    `json:"theme"`
	Mods      []int  `json:"mods,omitempty"`
	W         int    `json:"w"`
	H         int    `json:"h"`
	Steps     int    `json:"steps"`
	ArrivalUS int64  `json:"arrival_us"`
	SLOUS     int64  `json:"slo_us"`
}

// WriteTrace serializes a trace as a JSON array.
func WriteTrace(w io.Writer, reqs []*Request) error {
	out := make([]requestJSON, 0, len(reqs))
	for _, r := range reqs {
		out = append(out, requestJSON{
			ID:        int(r.ID),
			Prompt:    r.Prompt.Text,
			Theme:     r.Prompt.Theme,
			Mods:      r.Prompt.Mods,
			W:         r.Res.W,
			H:         r.Res.H,
			Steps:     r.Steps,
			ArrivalUS: r.Arrival.Microseconds(),
			SLOUS:     r.SLO.Microseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadTrace parses a trace written by WriteTrace, validating invariants the
// simulator relies on (positive steps/SLOs, valid resolutions) and sorting
// by arrival.
func ReadTrace(r io.Reader) ([]*Request, error) {
	var in []requestJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	reqs := make([]*Request, 0, len(in))
	for i, q := range in {
		res := model.Resolution{W: q.W, H: q.H}
		if !res.Valid() {
			return nil, fmt.Errorf("workload: request %d has invalid resolution %v", i, res)
		}
		if q.Steps <= 0 {
			return nil, fmt.Errorf("workload: request %d has %d steps", i, q.Steps)
		}
		if q.SLOUS <= 0 {
			return nil, fmt.Errorf("workload: request %d has non-positive SLO", i)
		}
		if q.ArrivalUS < 0 {
			return nil, fmt.Errorf("workload: request %d arrives before time zero", i)
		}
		reqs = append(reqs, &Request{
			ID:      RequestID(q.ID),
			Prompt:  Prompt{Text: q.Prompt, Theme: q.Theme, Mods: q.Mods},
			Res:     res,
			Steps:   q.Steps,
			Arrival: time.Duration(q.ArrivalUS) * time.Microsecond,
			SLO:     time.Duration(q.SLOUS) * time.Microsecond,
		})
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs, nil
}
