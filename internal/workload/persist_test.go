package workload

import (
	"bytes"
	"strings"
	"testing"

	"tetriserve/internal/model"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := Generate(GeneratorConfig{Model: model.FLUX(), NumRequests: 40, Seed: 8})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(orig) {
		t.Fatalf("trace length %d, want %d", len(loaded), len(orig))
	}
	for i := range orig {
		a, b := orig[i], loaded[i]
		if a.ID != b.ID || a.Res != b.Res || a.Steps != b.Steps {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, a, b)
		}
		if a.Prompt.Text != b.Prompt.Text || a.Prompt.Theme != b.Prompt.Theme {
			t.Fatalf("prompt mismatch at %d", i)
		}
		da := a.Arrival - b.Arrival
		if da < 0 {
			da = -da
		}
		if da > 1000 { // microsecond truncation
			t.Fatalf("arrival drifted: %v vs %v", a.Arrival, b.Arrival)
		}
	}
}

func TestReadTraceValidates(t *testing.T) {
	cases := []string{
		`[{"w":17,"h":17,"steps":50,"slo_us":1,"arrival_us":0}]`,   // bad resolution
		`[{"w":256,"h":256,"steps":0,"slo_us":1,"arrival_us":0}]`,  // no steps
		`[{"w":256,"h":256,"steps":50,"slo_us":0,"arrival_us":0}]`, // no SLO
		`[{"w":256,"h":256,"steps":50,"slo_us":1,"arrival_us":-5}]`,
		`garbage`,
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("invalid trace %q accepted", c)
		}
	}
}

func TestReadTraceSortsByArrival(t *testing.T) {
	in := `[
	 {"id":1,"w":256,"h":256,"steps":50,"slo_us":1000,"arrival_us":9000},
	 {"id":2,"w":256,"h":256,"steps":50,"slo_us":1000,"arrival_us":1000}
	]`
	reqs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].ID != 2 {
		t.Fatal("trace not re-sorted by arrival")
	}
}
