package workload

import (
	"fmt"
	"time"

	"tetriserve/internal/stats"
)

// ArrivalProcess produces inter-arrival gaps.
type ArrivalProcess interface {
	// Name identifies the process in reports.
	Name() string
	// NextGap draws the gap until the next arrival.
	NextGap(rng *stats.RNG) time.Duration
}

// PoissonArrivals is the paper's default: exponential gaps at a given rate
// (requests per minute).
type PoissonArrivals struct {
	PerMinute float64
}

// Name implements ArrivalProcess.
func (p PoissonArrivals) Name() string {
	return fmt.Sprintf("Poisson(%.0f/min)", p.PerMinute)
}

// NextGap implements ArrivalProcess.
func (p PoissonArrivals) NextGap(rng *stats.RNG) time.Duration {
	if p.PerMinute <= 0 {
		panic("workload: non-positive arrival rate")
	}
	gap := rng.Exp(p.PerMinute / 60.0)
	return time.Duration(gap * float64(time.Second))
}

// BurstyArrivals is a two-state Markov-modulated Poisson process: periods of
// elevated rate alternate with quiet periods, producing the bursty traffic
// of §6.3 while preserving a target long-run average rate.
type BurstyArrivals struct {
	// AvgPerMinute is the long-run average arrival rate.
	AvgPerMinute float64
	// BurstFactor is the ratio of burst-state rate to average rate (> 1).
	BurstFactor float64
	// BurstFraction is the long-run fraction of time spent bursting,
	// in (0, 1).
	BurstFraction float64
	// MeanBurst is the mean duration of one burst period.
	MeanBurst time.Duration

	inBurst   bool
	stateLeft time.Duration
}

// NewBurstyArrivals returns a bursty process with the defaults used by the
// Figure 10/11 experiments: 3× bursts covering 30 % of time, 20 s bursts.
func NewBurstyArrivals(avgPerMinute float64) *BurstyArrivals {
	return &BurstyArrivals{
		AvgPerMinute:  avgPerMinute,
		BurstFactor:   3,
		BurstFraction: 0.3,
		MeanBurst:     20 * time.Second,
	}
}

// Name implements ArrivalProcess.
func (b *BurstyArrivals) Name() string {
	return fmt.Sprintf("Bursty(%.0f/min,×%.1f)", b.AvgPerMinute, b.BurstFactor)
}

// rates returns (burst rate, quiet rate) in req/s so the long-run average
// matches AvgPerMinute: f·rb + (1−f)·rq = avg.
func (b *BurstyArrivals) rates() (rb, rq float64) {
	avg := b.AvgPerMinute / 60
	rb = avg * b.BurstFactor
	rq = (avg - b.BurstFraction*rb) / (1 - b.BurstFraction)
	if rq < avg*0.05 {
		rq = avg * 0.05
	}
	return rb, rq
}

// NextGap implements ArrivalProcess.
func (b *BurstyArrivals) NextGap(rng *stats.RNG) time.Duration {
	if b.AvgPerMinute <= 0 || b.BurstFactor <= 1 || b.BurstFraction <= 0 || b.BurstFraction >= 1 {
		panic("workload: invalid bursty arrival parameters")
	}
	rb, rq := b.rates()
	meanQuiet := time.Duration(float64(b.MeanBurst) * (1 - b.BurstFraction) / b.BurstFraction)
	var total time.Duration
	for {
		if b.stateLeft <= 0 {
			// Enter the next state with an exponential dwell time.
			b.inBurst = !b.inBurst
			mean := b.MeanBurst
			if !b.inBurst {
				mean = meanQuiet
			}
			b.stateLeft = time.Duration(rng.Exp(1/mean.Seconds()) * float64(time.Second))
			continue
		}
		rate := rq
		if b.inBurst {
			rate = rb
		}
		gap := time.Duration(rng.Exp(rate) * float64(time.Second))
		if gap <= b.stateLeft {
			b.stateLeft -= gap
			return total + gap
		}
		// No arrival before the state flips; burn the remaining dwell.
		total += b.stateLeft
		b.stateLeft = 0
	}
}

// SteadyArrivals emits perfectly regular gaps — useful in tests where
// determinism beats realism.
type SteadyArrivals struct {
	Gap time.Duration
}

// Name implements ArrivalProcess.
func (s SteadyArrivals) Name() string { return fmt.Sprintf("Steady(%s)", s.Gap) }

// NextGap implements ArrivalProcess.
func (s SteadyArrivals) NextGap(*stats.RNG) time.Duration { return s.Gap }
