package workload

import (
	"fmt"
	"math"
	"strings"

	"tetriserve/internal/stats"
)

// Prompt is a synthetic stand-in for a DiffusionDB prompt. Real prompts
// matter to the serving system only through their similarity structure
// (which drives Nirvana's cache hits), so the corpus is generated from a
// small template grammar: a clustered theme plus style modifiers. Two
// prompts sharing a theme are "similar"; the more modifiers they share, the
// more initial denoising steps a cache hit can skip.
type Prompt struct {
	Text  string
	Theme int
	Mods  []int
}

var (
	subjects = []string{
		"a lighthouse on a cliff", "a red panda astronaut", "an ancient library",
		"a cyberpunk street market", "a snow-covered pagoda", "a glass greenhouse",
		"a desert caravan at dusk", "an underwater city", "a steam locomotive",
		"a field of bioluminescent flowers", "a medieval blacksmith", "a space elevator",
		"a koi pond in autumn", "a clockwork owl", "a floating island village",
		"a neon-lit ramen shop", "a marble amphitheater", "a polar research station",
		"a jazz club interior", "a terraced rice paddy",
	}
	styles = []string{
		"oil painting", "watercolor", "photorealistic", "studio ghibli style",
		"low-poly 3d render", "charcoal sketch", "vaporwave", "art nouveau",
		"isometric pixel art", "cinematic lighting",
	}
	details = []string{
		"highly detailed", "8k", "trending on artstation", "volumetric fog",
		"golden hour", "ultra wide angle", "bokeh", "dramatic shadows",
		"symmetrical composition", "muted palette", "vivid colors", "film grain",
	}
)

// PromptSampler draws prompts with Zipf-like theme popularity so that a
// minority of popular themes dominates — the regime in which approximate
// caching pays off, matching the DiffusionDB reuse analysis Nirvana relies
// on.
type PromptSampler struct {
	// Themes is the number of distinct theme clusters.
	Themes int
	// ZipfS controls popularity skew (larger → more head-heavy).
	ZipfS float64
	// ModsPerPrompt is how many detail modifiers each prompt carries.
	ModsPerPrompt int

	weights []float64
}

// NewPromptSampler returns the default corpus shape: 40 themes, s = 1.1,
// 3 modifiers per prompt.
func NewPromptSampler() *PromptSampler {
	return &PromptSampler{Themes: 40, ZipfS: 1.1, ModsPerPrompt: 3}
}

func (s *PromptSampler) themeWeights() []float64 {
	if len(s.weights) == s.Themes {
		return s.weights
	}
	w := make([]float64, s.Themes)
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), s.ZipfS)
	}
	s.weights = w
	return w
}

// Sample draws one prompt.
func (s *PromptSampler) Sample(rng *stats.RNG) Prompt {
	theme := rng.Choice(s.themeWeights())
	mods := make([]int, 0, s.ModsPerPrompt)
	seen := map[int]bool{}
	for len(mods) < s.ModsPerPrompt {
		m := rng.Intn(len(details))
		if !seen[m] {
			seen[m] = true
			mods = append(mods, m)
		}
	}
	subject := subjects[theme%len(subjects)]
	style := styles[(theme/len(subjects))%len(styles)]
	parts := []string{subject, style}
	for _, m := range mods {
		parts = append(parts, details[m])
	}
	return Prompt{
		Text:  strings.Join(parts, ", "),
		Theme: theme,
		Mods:  mods,
	}
}

// String returns the prompt text.
func (p Prompt) String() string { return p.Text }

// SharedMods counts modifiers two prompts have in common.
func (p Prompt) SharedMods(o Prompt) int {
	n := 0
	for _, a := range p.Mods {
		for _, b := range o.Mods {
			if a == b {
				n++
				break
			}
		}
	}
	return n
}

// Validate checks the prompt is internally consistent.
func (p Prompt) Validate() error {
	if p.Theme < 0 {
		return fmt.Errorf("workload: negative theme")
	}
	return nil
}
