// Package model describes the Diffusion Transformer models the paper serves
// (FLUX.1-dev and Stable Diffusion 3 Medium) at the level of detail the
// serving stack needs: how an output resolution maps to latent tokens, how
// many FLOPs one denoising step costs, how large latents and activations
// are, and what the VAE decoder costs.
//
// Per-step compute is modelled as a quadratic in the joint sequence length
// (image tokens + text tokens):
//
//	FLOPs(T) = C0 + C1·T + C2·T²
//
// where the linear term captures the MLP/projection GEMMs (≈ 2·params per
// token per forward pass) and the quadratic term captures attention. For
// FLUX the three coefficients are fitted exactly to the paper's Table 1
// (556.48 / 1388.24 / 5045.92 TFLOPs at 256/512/1024 px over 50 steps); the
// fourth resolution (2048 px → 24 964.72 TFLOPs) is then reproduced to
// within 0.03 %, which validates the functional form.
package model

import (
	"fmt"
	"time"
)

// Resolution is a requested output image size in pixels.
type Resolution struct {
	W, H int
}

// Standard resolutions used throughout the paper's evaluation.
var (
	Res256  = Resolution{256, 256}
	Res512  = Resolution{512, 512}
	Res1024 = Resolution{1024, 1024}
	Res2048 = Resolution{2048, 2048}
)

// StandardResolutions lists the paper's four evaluation resolutions in
// ascending order of cost.
func StandardResolutions() []Resolution {
	return []Resolution{Res256, Res512, Res1024, Res2048}
}

// String formats the resolution as "1024x1024".
func (r Resolution) String() string { return fmt.Sprintf("%dx%d", r.W, r.H) }

// Pixels returns W·H.
func (r Resolution) Pixels() int { return r.W * r.H }

// Valid reports whether the resolution is positive and divisible by the
// usual 16-pixel patch granularity.
func (r Resolution) Valid() bool {
	return r.W > 0 && r.H > 0 && r.W%16 == 0 && r.H%16 == 0
}

// VAE describes the decoder that turns latents into pixels. Per §5 of the
// paper the decoder is cheap in wall-clock but has a large activation
// footprint, which is why the engine decodes sequentially per request.
type VAE struct {
	// DecodeFLOPsPerPixel is the decoder cost per output pixel.
	DecodeFLOPsPerPixel float64
	// ActivationBytesPerPixel is the peak decoder activation footprint per
	// output pixel; it dominates peak memory at high resolutions.
	ActivationBytesPerPixel float64
}

// Model is a DiT model descriptor.
type Model struct {
	// Name identifies the model ("FLUX.1-dev", "SD3-Medium").
	Name string
	// Params is the transformer parameter count.
	Params float64
	// Hidden is the transformer width (used for communication volume).
	Hidden int
	// Blocks is the number of attention blocks; each block performs
	// CollectivesPerBlock sequence-parallel collectives per step.
	Blocks int
	// CollectivesPerBlock is the number of all-to-alls per block under
	// Ulysses attention (Q, K, V, and output projections).
	CollectivesPerBlock int
	// TextTokens is the conditioning sequence length appended to the image
	// tokens in joint attention.
	TextTokens int
	// PatchPixels is the edge length in pixels of one latent token
	// (VAE downsampling × patchification; 16 for both models, matching the
	// paper's L_i = H·W/16² skew formula).
	PatchPixels int
	// DefaultSteps is the default denoising step count (N in the paper;
	// 50 for FLUX per §6.2's Nirvana setup).
	DefaultSteps int
	// PassesPerStep is the number of transformer forward passes per step
	// (1 for guidance-distilled FLUX, 2 for classifier-free-guidance SD3).
	PassesPerStep int
	// FLOPs coefficients: per-pass FLOPs = C0 + C1·T + C2·T², with T the
	// joint sequence length (image + text tokens).
	C0, C1, C2 float64
	// ActivationBytesPerToken is the per-token transformer activation
	// footprint during a step (used for HBM accounting).
	ActivationBytesPerToken float64
	// WeightBytes is the resident model weight footprint.
	WeightBytes float64
	// LatentChannels and LatentDownsample describe the latent tensor shape:
	// (W/LatentDownsample)×(H/LatentDownsample)×LatentChannels values.
	LatentChannels    int
	LatentDownsample  int
	LatentBytesPerVal int
	// VAE is the decoder descriptor.
	VAE VAE
}

// Tokens returns the latent image token count for res: (W/16)·(H/16),
// matching Table 1 (256 px → 256 tokens … 2048 px → 16384 tokens).
func (m *Model) Tokens(res Resolution) int {
	side := m.PatchPixels
	return (res.W / side) * (res.H / side)
}

// JointSeqLen returns image tokens plus conditioning tokens — the sequence
// length the transformer actually attends over.
func (m *Model) JointSeqLen(res Resolution) int {
	return m.Tokens(res) + m.TextTokens
}

// StepFLOPs returns the compute cost of one denoising step for a single
// image at res (all forward passes included).
func (m *Model) StepFLOPs(res Resolution) float64 {
	t := float64(m.JointSeqLen(res))
	perPass := m.C0 + m.C1*t + m.C2*t*t
	return perPass * float64(m.PassesPerStep)
}

// TotalFLOPs returns the full-request compute cost at the default step
// count; for FLUX this reproduces Table 1's TFLOPs column.
func (m *Model) TotalFLOPs(res Resolution) float64 {
	return m.StepFLOPs(res) * float64(m.DefaultSteps)
}

// LatentBytes returns the size of the latent tensor handed between steps;
// it is compact (§5: latent transfer < 0.05 % of step latency).
func (m *Model) LatentBytes(res Resolution) float64 {
	w := res.W / m.LatentDownsample
	h := res.H / m.LatentDownsample
	return float64(w*h*m.LatentChannels) * float64(m.LatentBytesPerVal)
}

// StepActivationBytes estimates peak transformer activation bytes while a
// step for a batch of bs images at res executes on one GPU group.
func (m *Model) StepActivationBytes(res Resolution, bs int) float64 {
	return float64(m.JointSeqLen(res)) * m.ActivationBytesPerToken * float64(bs)
}

// DecodeFLOPs returns the VAE decode cost for one image.
func (m *Model) DecodeFLOPs(res Resolution) float64 {
	return float64(res.Pixels()) * m.VAE.DecodeFLOPsPerPixel
}

// DecodeActivationBytes returns the decoder's peak activation footprint for
// one image — the quantity sequential decoding bounds.
func (m *Model) DecodeActivationBytes(res Resolution) float64 {
	return float64(res.Pixels()) * m.VAE.ActivationBytesPerPixel
}

// CommBytesPerCollective returns the total tensor bytes reshuffled by one
// sequence-parallel all-to-all for a batch of bs images at res: every token's
// hidden vector crosses the group once.
func (m *Model) CommBytesPerCollective(res Resolution, bs int) float64 {
	return float64(m.JointSeqLen(res)) * float64(m.Hidden) * 2 /*bf16*/ * float64(bs)
}

// CollectivesPerStep returns the number of sequence-parallel collectives one
// denoising step issues.
func (m *Model) CollectivesPerStep() int {
	return m.Blocks * m.CollectivesPerBlock * m.PassesPerStep
}

// fitQuadratic solves for (C0, C1, C2) from three (T, FLOPs) anchors.
func fitQuadratic(t0, f0, t1, f1, t2, f2 float64) (c0, c1, c2 float64) {
	// Solve the 3×3 Vandermonde system by elimination.
	// f = c0 + c1*t + c2*t².
	d10 := (f1 - f0) / (t1 - t0)
	d21 := (f2 - f1) / (t2 - t1)
	c2 = (d21 - d10) / (t2 - t0)
	c1 = d10 - c2*(t0+t1)
	c0 = f0 - c1*t0 - c2*t0*t0
	return c0, c1, c2
}

// FLUX returns the FLUX.1-dev descriptor. FLOPs coefficients are fitted to
// the paper's Table 1 anchors (per-step, single pass): 556.48, 1388.24 and
// 5045.92 total TFLOPs over 50 steps at 256/512/1024 px with 512 text
// tokens.
func FLUX() *Model {
	m := &Model{
		Name:                    "FLUX.1-dev",
		Params:                  12e9,
		Hidden:                  3072,
		Blocks:                  57, // 19 dual-stream + 38 single-stream blocks
		CollectivesPerBlock:     4,  // Ulysses: Q, K, V, output
		TextTokens:              512,
		PatchPixels:             16,
		DefaultSteps:            50,
		PassesPerStep:           1,
		ActivationBytesPerToken: 3072 * 2 * 24, // width × bf16 × resident layers
		WeightBytes:             24e9,          // 12B params in bf16
		LatentChannels:          16,
		LatentDownsample:        8,
		LatentBytesPerVal:       2,
		VAE: VAE{
			DecodeFLOPsPerPixel:     140e3,
			ActivationBytesPerPixel: 480,
		},
	}
	const perStep = 1e12 / 50 // table column is TFLOPs over 50 steps
	m.C0, m.C1, m.C2 = fitQuadratic(
		float64(m.JointSeqLen(Res256)), 556.48*perStep,
		float64(m.JointSeqLen(Res512)), 1388.24*perStep,
		float64(m.JointSeqLen(Res1024)), 5045.92*perStep,
	)
	return m
}

// SD3 returns the Stable Diffusion 3 Medium descriptor in its serving
// configuration: 28 steps, one transformer pass per step (production
// deployments fold classifier-free guidance into a single guidance-embedded
// pass, as FLUX.1-dev does). Its coefficients are derived from the
// 2B-parameter MMDiT (linear cost ≈ 2·params per token; quadratic cost
// scaled from FLUX's fitted attention coefficient by width and depth) since
// the paper tabulates FLOPs only for FLUX.
func SD3() *Model {
	return &Model{
		Name:                    "SD3-Medium",
		Params:                  2.03e9,
		Hidden:                  1536,
		Blocks:                  24,
		CollectivesPerBlock:     4,
		TextTokens:              154 + 77, // T5 + pooled CLIP conditioning
		PatchPixels:             16,
		DefaultSteps:            28,
		PassesPerStep:           1,
		C0:                      0.2e12,
		C1:                      2 * 2.03e9,
		C2:                      40000, // FLUX's fitted C2 scaled by (d·L) ratio
		ActivationBytesPerToken: 1536 * 2 * 16,
		WeightBytes:             4.3e9, // 2B params bf16 + text encoders
		LatentChannels:          16,
		LatentDownsample:        8,
		LatentBytesPerVal:       2,
		VAE: VAE{
			DecodeFLOPsPerPixel:     120e3,
			ActivationBytesPerPixel: 420,
		},
	}
}

// ByName returns a model descriptor by case-sensitive name.
func ByName(name string) (*Model, error) {
	switch name {
	case "FLUX.1-dev", "flux", "FLUX":
		return FLUX(), nil
	case "SD3-Medium", "sd3", "SD3":
		return SD3(), nil
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}

// StepTimeAtThroughput is a convenience used in documentation and tests:
// the time one step takes at a given sustained FLOP/s throughput.
func (m *Model) StepTimeAtThroughput(res Resolution, flops float64) time.Duration {
	if flops <= 0 {
		panic("model: non-positive throughput")
	}
	return time.Duration(m.StepFLOPs(res) / flops * float64(time.Second))
}
