package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestTable1Tokens checks the latent token counts against the paper's
// Table 1: 256/1024/4096/16384 image tokens for 256–2048 px.
func TestTable1Tokens(t *testing.T) {
	m := FLUX()
	want := map[Resolution]int{
		Res256:  256,
		Res512:  1024,
		Res1024: 4096,
		Res2048: 16384,
	}
	for res, tokens := range want {
		if got := m.Tokens(res); got != tokens {
			t.Errorf("Tokens(%v) = %d, want %d", res, got, tokens)
		}
	}
}

// TestTable1FLOPsAnchors checks the fitted FLOPs reproduce the paper's
// totals exactly at the three anchors and within 0.1% at 2048 px (the
// held-out point validating the quadratic functional form).
func TestTable1FLOPsAnchors(t *testing.T) {
	m := FLUX()
	anchors := map[Resolution]float64{
		Res256:  556.48,
		Res512:  1388.24,
		Res1024: 5045.92,
	}
	for res, wantTF := range anchors {
		got := m.TotalFLOPs(res) / 1e12
		if math.Abs(got-wantTF) > 0.01 {
			t.Errorf("TotalFLOPs(%v) = %.2f TF, want %.2f", res, got, wantTF)
		}
	}
	got2048 := m.TotalFLOPs(Res2048) / 1e12
	const want2048 = 24964.72
	if rel := math.Abs(got2048-want2048) / want2048; rel > 0.001 {
		t.Errorf("TotalFLOPs(2048) = %.2f TF, want %.2f within 0.1%% (rel err %.4f)",
			got2048, want2048, rel)
	}
}

// TestFittedAttentionCoefficient sanity-checks the fitted quadratic term
// against the analytic 4·d·L attention cost: they should agree within 2x.
func TestFittedAttentionCoefficient(t *testing.T) {
	m := FLUX()
	analytic := 4.0 * float64(m.Hidden) * float64(m.Blocks)
	if m.C2 < analytic/2 || m.C2 > analytic*2 {
		t.Errorf("fitted C2 = %.0f FLOPs/token², analytic 4dL = %.0f; too far apart", m.C2, analytic)
	}
}

func TestStepFLOPsMonotoneInResolution(t *testing.T) {
	for _, m := range []*Model{FLUX(), SD3()} {
		prev := 0.0
		for _, res := range StandardResolutions() {
			f := m.StepFLOPs(res)
			if f <= prev {
				t.Errorf("%s: StepFLOPs not increasing at %v", m.Name, res)
			}
			prev = f
		}
	}
}

func TestResolutionHelpers(t *testing.T) {
	r := Resolution{1024, 768}
	if r.String() != "1024x768" {
		t.Errorf("String() = %q", r.String())
	}
	if r.Pixels() != 1024*768 {
		t.Errorf("Pixels() = %d", r.Pixels())
	}
	if !r.Valid() {
		t.Error("1024x768 should be valid")
	}
	for _, bad := range []Resolution{{0, 16}, {16, 0}, {15, 16}, {-16, 16}} {
		if bad.Valid() {
			t.Errorf("%v should be invalid", bad)
		}
	}
}

func TestJointSeqLenIncludesText(t *testing.T) {
	m := FLUX()
	if got := m.JointSeqLen(Res256); got != 256+m.TextTokens {
		t.Errorf("JointSeqLen = %d, want %d", got, 256+m.TextTokens)
	}
}

func TestLatentBytes(t *testing.T) {
	m := FLUX()
	// 2048px: (2048/8)² × 16 channels × 2 bytes = 2 MiB.
	want := 256.0 * 256 * 16 * 2
	if got := m.LatentBytes(Res2048); got != want {
		t.Errorf("LatentBytes(2048) = %v, want %v", got, want)
	}
	// Latents are compact: even at 2048px under 4 MB.
	if m.LatentBytes(Res2048) > 4e6 {
		t.Error("latent unexpectedly large; Table 4's negligible-transfer claim depends on compactness")
	}
}

func TestLatentScalesWithPixels(t *testing.T) {
	m := SD3()
	if m.LatentBytes(Res512) != 4*m.LatentBytes(Res256) {
		t.Error("latent bytes should scale with pixel count")
	}
}

func TestDecodeCosts(t *testing.T) {
	m := FLUX()
	if m.DecodeFLOPs(Res2048) != 16*m.DecodeFLOPs(Res512) {
		t.Error("decode FLOPs should scale with pixels")
	}
	// Decoder activations at 2048px must be large enough to motivate
	// sequential decoding (§5) — at least 1 GB.
	if m.DecodeActivationBytes(Res2048) < 1e9 {
		t.Error("decoder activation model too small to motivate sequential decode")
	}
}

func TestCollectivesPerStep(t *testing.T) {
	f := FLUX()
	if got := f.CollectivesPerStep(); got != 57*4 {
		t.Errorf("FLUX collectives/step = %d, want 228", got)
	}
	s := SD3()
	if got := s.CollectivesPerStep(); got != 24*4*s.PassesPerStep {
		t.Errorf("SD3 collectives/step = %d", got)
	}
}

func TestCommBytesScaleWithBatch(t *testing.T) {
	m := FLUX()
	if m.CommBytesPerCollective(Res512, 4) != 4*m.CommBytesPerCollective(Res512, 1) {
		t.Error("collective bytes should scale linearly with batch size")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FLUX.1-dev", "flux", "FLUX"} {
		m, err := ByName(name)
		if err != nil || m.Name != "FLUX.1-dev" {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	for _, name := range []string{"sd3", "SD3", "SD3-Medium"} {
		m, err := ByName(name)
		if err != nil || m.Name != "SD3-Medium" {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("gpt-5"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestStepTimeAtThroughput(t *testing.T) {
	m := FLUX()
	// 11.13 TF step at 1 PFLOP/s ≈ 11.1 ms.
	got := m.StepTimeAtThroughput(Res256, 1e15)
	if got < 10*time.Millisecond || got > 13*time.Millisecond {
		t.Errorf("StepTimeAtThroughput = %v, want ≈11ms", got)
	}
}

func TestStepTimeAtThroughputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive throughput should panic")
		}
	}()
	FLUX().StepTimeAtThroughput(Res256, 0)
}

// TestTokensQuadraticInSide property: tokens(s×s) = (s/16)².
func TestTokensQuadraticInSide(t *testing.T) {
	m := FLUX()
	check := func(raw uint8) bool {
		side := (int(raw)%128 + 1) * 16
		res := Resolution{side, side}
		return m.Tokens(res) == (side/16)*(side/16)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSD3CheaperThanFLUX(t *testing.T) {
	f, s := FLUX(), SD3()
	for _, res := range StandardResolutions() {
		if s.StepFLOPs(res) >= f.StepFLOPs(res) {
			t.Errorf("SD3 step FLOPs at %v should be below FLUX's", res)
		}
	}
	if s.WeightBytes >= f.WeightBytes {
		t.Error("SD3 weights should be smaller than FLUX's")
	}
}

func TestStandardResolutionsAscending(t *testing.T) {
	rs := StandardResolutions()
	for i := 1; i < len(rs); i++ {
		if rs[i].Pixels() <= rs[i-1].Pixels() {
			t.Fatal("StandardResolutions not ascending")
		}
	}
}
