package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/metrics"
	"tetriserve/internal/model"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

func runTetri(t *testing.T, n int, seed uint64) *sim.Result {
	t.Helper()
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	res, err := sim.Run(sim.Config{
		Model: mdl, Topo: topo,
		Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
		Requests: workload.Generate(workload.GeneratorConfig{
			Model: mdl, NumRequests: n, Seed: seed,
		}),
		Profile:        prof,
		DropLateFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEventsTimeOrdered(t *testing.T) {
	evs := FromResult(runTetri(t, 40, 3))
	for i := 1; i < len(evs); i++ {
		if evs[i].AtUS < evs[i-1].AtUS {
			t.Fatal("events out of order")
		}
	}
}

// TestAnalyzeMatchesDirectMetrics: the analyzer's numbers rebuilt from the
// event log must agree with the metrics computed from the result itself —
// the round-trip consistency check.
func TestAnalyzeMatchesDirectMetrics(t *testing.T) {
	res := runTetri(t, 60, 7)
	sum, err := Analyze(FromResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests != len(res.Outcomes) {
		t.Fatalf("requests %d vs %d", sum.Requests, len(res.Outcomes))
	}
	if got, want := sum.SAR, metrics.SAR(res); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SAR %v vs %v", got, want)
	}
	if got, want := sum.MeanLatency, metrics.MeanLatency(res); math.Abs(got-want) > 1e-5 {
		t.Fatalf("mean latency %v vs %v", got, want)
	}
	if got, want := sum.GPUSeconds, res.GPUBusySeconds; math.Abs(got-want) > 0.01*want {
		t.Fatalf("GPU seconds %v vs %v", got, want)
	}
	if sum.Blocks != len(res.Runs) {
		t.Fatalf("blocks %d vs %d", sum.Blocks, len(res.Runs))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	evs := FromResult(runTetri(t, 30, 11))
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(evs) {
		t.Fatalf("length %d vs %d", len(loaded), len(evs))
	}
	for i := range evs {
		if loaded[i].AtUS != evs[i].AtUS || loaded[i].Kind != evs[i].Kind {
			t.Fatalf("event %d mismatch", i)
		}
	}
	// Analysis of the loaded log must match too.
	a, err := Analyze(evs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("summaries differ: %+v vs %+v", a, b)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	evs, err := Read(strings.NewReader("\n{\"at_us\":1,\"kind\":\"arrival\",\"requests\":[1]}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("evs=%v err=%v", evs, err)
	}
}

func TestAnalyzeDetectsUnpairedBlocks(t *testing.T) {
	evs := []Event{
		{AtUS: 0, Kind: KindBlockStart, Requests: []int{1}, Degree: 2, GPUs: []int{0, 1}},
	}
	if _, err := Analyze(evs); err == nil {
		t.Fatal("dangling block_start not detected")
	}
	evs = []Event{
		{AtUS: 5, Kind: KindBlockEnd, Requests: []int{1}, Degree: 2, GPUs: []int{0, 1}},
	}
	if _, err := Analyze(evs); err == nil {
		t.Fatal("orphan block_end not detected")
	}
}

func TestAnalyzeRejectsUnknownKind(t *testing.T) {
	if _, err := Analyze([]Event{{Kind: "mystery"}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRequestTimeline(t *testing.T) {
	res := runTetri(t, 30, 13)
	evs := FromResult(res)
	id := res.Outcomes[0].ID
	tl := RequestTimeline(evs, id)
	if len(tl) < 2 {
		t.Fatalf("timeline too short: %d events", len(tl))
	}
	if tl[0].Kind != KindArrival {
		t.Fatalf("timeline should start with arrival, got %s", tl[0].Kind)
	}
	last := tl[len(tl)-1].Kind
	if last != KindComplete && last != KindDrop {
		t.Fatalf("timeline should end with completion/drop, got %s", last)
	}
	// All steps accounted: block events between arrival and completion.
	for _, ev := range tl[1 : len(tl)-1] {
		if ev.Kind != KindBlockStart && ev.Kind != KindBlockEnd {
			t.Fatalf("unexpected %s inside timeline", ev.Kind)
		}
	}
}

func TestDroppedRequestsInSummary(t *testing.T) {
	// Force drops with SP=1-style starvation: use a result from a tight
	// run; TetriServe at 1.0x with drops enabled usually drops some 2048s.
	res := runTetri(t, 80, 17)
	sum, err := Analyze(FromResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed+sum.Dropped != sum.Requests {
		t.Fatalf("accounting hole: %d completed + %d dropped != %d requests",
			sum.Completed, sum.Dropped, sum.Requests)
	}
}
