// Package trace turns control-plane results — from the offline simulator or
// the online driver's /v1/trace endpoint, which share internal/control's
// Result — into a structured, replayable event log (JSON lines) and rebuilds
// summary statistics from such logs. This is the observability surface a
// production deployment would ship to its metrics pipeline; round-tripping
// through it is also a consistency check on the control loop's bookkeeping
// (the analyzer's numbers must match the metrics computed directly from the
// result).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/workload"
)

// Kind discriminates event types.
type Kind string

// Event kinds, ordered roughly by lifecycle.
const (
	KindArrival    Kind = "arrival"
	KindBlockStart Kind = "block_start"
	KindBlockEnd   Kind = "block_end"
	KindComplete   Kind = "complete"
	KindDrop       Kind = "drop"
)

// Event is one log line.
type Event struct {
	// AtUS is the virtual timestamp in microseconds.
	AtUS int64 `json:"at_us"`
	Kind Kind  `json:"kind"`
	// Requests lists the involved request ids.
	Requests []int `json:"requests,omitempty"`
	// Resolution as "1024x1024" for request-scoped events.
	Resolution string `json:"resolution,omitempty"`
	// Degree and GPUs describe block events.
	Degree int   `json:"degree,omitempty"`
	GPUs   []int `json:"gpus,omitempty"`
	Steps  int   `json:"steps,omitempty"`
	// Met/latency annotate completions.
	Met       bool  `json:"met,omitempty"`
	LatencyUS int64 `json:"latency_us,omitempty"`
	// BestEffort and Batched annotate blocks.
	BestEffort bool `json:"best_effort,omitempty"`
	Batched    bool `json:"batched,omitempty"`
}

// FromResult linearizes a simulation result into time-ordered events.
func FromResult(res *control.Result) []Event {
	var evs []Event
	for _, o := range res.Outcomes {
		evs = append(evs, Event{
			AtUS:       o.Arrival.Microseconds(),
			Kind:       KindArrival,
			Requests:   []int{int(o.ID)},
			Resolution: o.Res.String(),
		})
		if o.Dropped {
			evs = append(evs, Event{
				AtUS:       o.Deadline.Microseconds(),
				Kind:       KindDrop,
				Requests:   []int{int(o.ID)},
				Resolution: o.Res.String(),
			})
		} else {
			evs = append(evs, Event{
				AtUS:       o.Completion.Microseconds(),
				Kind:       KindComplete,
				Requests:   []int{int(o.ID)},
				Resolution: o.Res.String(),
				Met:        o.Met,
				LatencyUS:  o.Latency.Microseconds(),
			})
		}
	}
	for _, r := range res.Runs {
		ids := make([]int, len(r.Requests))
		for i, id := range r.Requests {
			ids[i] = int(id)
		}
		gpus := make([]int, 0, r.Degree)
		for _, g := range r.GPUs() {
			gpus = append(gpus, int(g))
		}
		evs = append(evs, Event{
			AtUS: r.Start.Microseconds(), Kind: KindBlockStart,
			Requests: ids, Resolution: r.Res.String(),
			Degree: r.Degree, GPUs: gpus, Steps: r.Steps,
			BestEffort: r.BestEffort, Batched: r.Batched,
		})
		evs = append(evs, Event{
			AtUS: r.End.Microseconds(), Kind: KindBlockEnd,
			Requests: ids, Resolution: r.Res.String(),
			Degree: r.Degree, GPUs: gpus, Steps: r.Steps,
			BestEffort: r.BestEffort, Batched: r.Batched,
		})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].AtUS != evs[j].AtUS {
			return evs[i].AtUS < evs[j].AtUS
		}
		// At equal timestamps a block's end precedes the next block's
		// start so consecutive same-group blocks pair up correctly.
		return kindRank(evs[i].Kind) < kindRank(evs[j].Kind)
	})
	return evs
}

func kindRank(k Kind) int {
	switch k {
	case KindArrival:
		return 0
	case KindBlockEnd:
		return 1
	case KindComplete, KindDrop:
		return 2
	default: // block_start last
		return 3
	}
}

// Write emits events as JSON lines.
func Write(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL event stream.
func Read(r io.Reader) ([]Event, error) {
	var evs []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

// Summary is what the analyzer reconstructs from a log.
type Summary struct {
	Requests  int
	Completed int
	Dropped   int
	Met       int
	// SAR = Met / Requests.
	SAR float64
	// GPUSeconds integrates block occupancy.
	GPUSeconds float64
	// MeanLatency is over completions, in seconds.
	MeanLatency float64
	// Blocks counts executed step blocks; BestEffort/Batched are subsets.
	Blocks     int
	BestEffort int
	Batched    int
	// Span is the log's time extent.
	Span time.Duration
}

// Analyze rebuilds a Summary from events. It validates pairing: every
// block_start must have a matching block_end.
func Analyze(evs []Event) (Summary, error) {
	var s Summary
	open := map[string]Event{}
	var latSum float64
	var maxAt int64
	for _, ev := range evs {
		if ev.AtUS > maxAt {
			maxAt = ev.AtUS
		}
		switch ev.Kind {
		case KindArrival:
			s.Requests++
		case KindComplete:
			s.Completed++
			if ev.Met {
				s.Met++
			}
			latSum += float64(ev.LatencyUS) / 1e6
		case KindDrop:
			s.Dropped++
		case KindBlockStart:
			open[blockKey(ev)] = ev
		case KindBlockEnd:
			key := blockKey(ev)
			start, ok := open[key]
			if !ok {
				return s, fmt.Errorf("trace: block_end without start at %dus (%v)", ev.AtUS, ev.Requests)
			}
			delete(open, key)
			s.Blocks++
			if ev.BestEffort {
				s.BestEffort++
			}
			if ev.Batched {
				s.Batched++
			}
			s.GPUSeconds += float64(ev.Degree) * float64(ev.AtUS-start.AtUS) / 1e6
		default:
			return s, fmt.Errorf("trace: unknown event kind %q", ev.Kind)
		}
	}
	if len(open) != 0 {
		return s, fmt.Errorf("trace: %d blocks never ended", len(open))
	}
	if s.Requests > 0 {
		s.SAR = float64(s.Met) / float64(s.Requests)
	}
	if s.Completed > 0 {
		s.MeanLatency = latSum / float64(s.Completed)
	}
	s.Span = time.Duration(maxAt) * time.Microsecond
	return s, nil
}

// blockKey pairs start/end events: a request set can only run one block at
// a time (step dependency), so (first request, start-identity) suffices;
// we key on the requests plus degree and gpu set.
func blockKey(ev Event) string {
	ids, _ := json.Marshal(ev.Requests)
	gpus, _ := json.Marshal(ev.GPUs)
	return string(ids) + "/" + string(gpus) + "/" + fmt.Sprint(ev.Degree)
}

// RequestTimeline extracts one request's events in order, for debugging.
func RequestTimeline(evs []Event, id workload.RequestID) []Event {
	var out []Event
	for _, ev := range evs {
		for _, r := range ev.Requests {
			if r == int(id) {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}
