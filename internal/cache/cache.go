// Package cache implements a Nirvana-style approximate latent cache
// (Agarwal et al., NSDI'24; §6.2 "Compatibility with Cache-Based Diffusion
// Acceleration"). Incoming prompts are embedded and matched against
// previously served prompts; the similarity decides how many initial
// denoising steps can be skipped by reusing a cached intermediate latent,
// k ∈ {5, 10, 15, 20, 25} of N = 50 by default. The cache holds a fixed
// number of entries with LRU eviction and is warmed before measurement.
//
// In place of CLIP, prompts are embedded with a deterministic pseudo-
// embedding derived from the synthetic corpus's theme/modifier structure:
// prompts sharing a theme are close, and each shared style modifier pulls
// them closer. Only the similarity→steps-skipped mapping matters to the
// serving system, and this reproduces it without a neural network.
package cache

import (
	"container/list"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/workload"
)

// Config tunes the cache.
type Config struct {
	// Capacity is the maximum number of cached latents.
	Capacity int
	// SkipLevels are the candidate skip depths, ascending.
	SkipLevels []int
	// Thresholds are the minimum similarities required for each skip
	// level (same length as SkipLevels, ascending): similarity ≥
	// Thresholds[i] allows skipping SkipLevels[i] steps.
	Thresholds []float64
	// MaxSkipFraction caps skipped steps as a fraction of the request's
	// step count so short requests keep enough denoising.
	MaxSkipFraction float64
}

// DefaultConfig mirrors the paper's Nirvana setup: k ∈ {5,10,15,20,25} of
// N = 50, a 10k-entry cache with LRU eviction.
func DefaultConfig() Config {
	return Config{
		Capacity:        10000,
		SkipLevels:      []int{5, 10, 15, 20, 25},
		Thresholds:      []float64{0.50, 0.62, 0.74, 0.86, 0.95},
		MaxSkipFraction: 0.5,
	}
}

// entry is one cached latent.
type entry struct {
	prompt workload.Prompt
	res    model.Resolution
	elem   *list.Element
}

// bucketKey groups entries by (theme, resolution): cross-theme similarity
// can never clear the lowest skip threshold, and latents are
// resolution-specific, so lookups only scan the matching bucket.
type bucketKey struct {
	theme int
	res   model.Resolution
}

// Cache is the approximate latent store. It is not safe for concurrent use;
// the simulator and server serialize access.
type Cache struct {
	cfg     Config
	lru     *list.List // front = most recent; values are *entry
	buckets map[bucketKey]map[*entry]struct{}

	hits   int
	misses int
	// skippedSteps accumulates total steps saved.
	skippedSteps int
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 10000
	}
	if len(cfg.SkipLevels) == 0 || len(cfg.SkipLevels) != len(cfg.Thresholds) {
		d := DefaultConfig()
		cfg.SkipLevels, cfg.Thresholds = d.SkipLevels, d.Thresholds
	}
	if cfg.MaxSkipFraction <= 0 || cfg.MaxSkipFraction > 1 {
		cfg.MaxSkipFraction = 0.5
	}
	return &Cache{
		cfg:     cfg,
		lru:     list.New(),
		buckets: make(map[bucketKey]map[*entry]struct{}),
	}
}

// Similarity scores two prompts in [0, 1]: theme identity dominates, shared
// modifiers refine. Different themes are considered dissimilar (their base
// latents would not be reusable).
func Similarity(a, b workload.Prompt) float64 {
	if a.Theme != b.Theme {
		return 0.1
	}
	shared := a.SharedMods(b)
	denom := len(a.Mods)
	if len(b.Mods) > denom {
		denom = len(b.Mods)
	}
	if denom == 0 {
		return 1.0
	}
	return 0.55 + 0.45*float64(shared)/float64(denom)
}

// Lookup returns how many initial steps can be skipped for a prompt at a
// resolution given the current cache contents, and refreshes the LRU
// position of the entry used. Latents are resolution-specific, so only
// same-resolution entries match.
func (c *Cache) Lookup(p workload.Prompt, res model.Resolution, steps int) int {
	var best *entry
	bestSim := 0.0
	for e := range c.buckets[bucketKey{p.Theme, res}] {
		sim := Similarity(p, e.prompt)
		if sim > bestSim {
			bestSim = sim
			best = e
		}
	}
	skip := 0
	for i, th := range c.cfg.Thresholds {
		if bestSim >= th {
			skip = c.cfg.SkipLevels[i]
		}
	}
	if maxSkip := int(float64(steps) * c.cfg.MaxSkipFraction); skip > maxSkip {
		skip = maxSkip
	}
	if skip > 0 && best != nil {
		c.lru.MoveToFront(best.elem)
		c.hits++
		c.skippedSteps += skip
	} else {
		c.misses++
		skip = 0
	}
	return skip
}

// Insert stores a served prompt's latent, evicting the LRU entry at
// capacity. An identical (prompt, resolution) pair refreshes the existing
// entry's LRU position instead of inserting a duplicate — hot prompts must
// not fill the cache with copies and evict diverse latents.
func (c *Cache) Insert(p workload.Prompt, res model.Resolution) {
	key := bucketKey{p.Theme, res}
	for e := range c.buckets[key] {
		if promptEqual(e.prompt, p) {
			c.lru.MoveToFront(e.elem)
			return
		}
	}
	e := &entry{prompt: p, res: res}
	e.elem = c.lru.PushFront(e)
	if c.buckets[key] == nil {
		c.buckets[key] = make(map[*entry]struct{})
	}
	c.buckets[key][e] = struct{}{}
	for c.lru.Len() > c.cfg.Capacity {
		back := c.lru.Back()
		old := back.Value.(*entry)
		c.lru.Remove(back)
		okey := bucketKey{old.prompt.Theme, old.res}
		delete(c.buckets[okey], old)
		if len(c.buckets[okey]) == 0 {
			delete(c.buckets, okey)
		}
	}
}

// promptEqual reports whether two prompts are the identical cache identity:
// same theme, text, and modifier sequence.
func promptEqual(a, b workload.Prompt) bool {
	if a.Theme != b.Theme || a.Text != b.Text || len(a.Mods) != len(b.Mods) {
		return false
	}
	for i := range a.Mods {
		if a.Mods[i] != b.Mods[i] {
			return false
		}
	}
	return true
}

// Len returns the number of cached latents.
func (c *Cache) Len() int { return c.lru.Len() }

// HitRate returns hits/(hits+misses) over all lookups.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// SkippedSteps returns total steps saved by cache hits.
func (c *Cache) SkippedSteps() int { return c.skippedSteps }

// Warm pre-populates the cache from a corpus sampled like the live traffic,
// mirroring the paper's 10k-request warm-up.
func (c *Cache) Warm(prompts []workload.Prompt, res []model.Resolution) {
	for i, p := range prompts {
		c.Insert(p, res[i%len(res)])
	}
}

// Trimmer adapts the cache to the simulator's StepTrimmer hook.
type Trimmer struct {
	C *Cache
}

// OnArrival implements sim.StepTrimmer.
func (t *Trimmer) OnArrival(p workload.Prompt, res model.Resolution, steps int, _ time.Duration) int {
	return t.C.Lookup(p, res, steps)
}

// OnComplete implements sim.StepTrimmer.
func (t *Trimmer) OnComplete(p workload.Prompt, res model.Resolution, _ time.Duration) {
	t.C.Insert(p, res)
}
