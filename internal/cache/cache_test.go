package cache

import (
	"fmt"
	"testing"

	"tetriserve/internal/model"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

func p(theme int, mods ...int) workload.Prompt {
	return workload.Prompt{Text: "t", Theme: theme, Mods: mods}
}

func TestSimilarityProperties(t *testing.T) {
	a := p(1, 1, 2, 3)
	if got := Similarity(a, a); got != 1.0 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	if got := Similarity(a, p(2, 1, 2, 3)); got != 0.1 {
		t.Fatalf("cross-theme similarity = %v, want 0.1", got)
	}
	// Same theme, more shared mods → higher similarity.
	s0 := Similarity(a, p(1, 4, 5, 6))
	s1 := Similarity(a, p(1, 1, 5, 6))
	s2 := Similarity(a, p(1, 1, 2, 6))
	if !(s0 < s1 && s1 < s2 && s2 < 1.0) {
		t.Fatalf("similarity not monotone in shared mods: %v %v %v", s0, s1, s2)
	}
	// Symmetry.
	if Similarity(a, p(1, 1, 5, 6)) != Similarity(p(1, 1, 5, 6), a) {
		t.Fatal("similarity not symmetric")
	}
}

func TestLookupMissOnEmptyCache(t *testing.T) {
	c := New(DefaultConfig())
	if skip := c.Lookup(p(1, 1, 2, 3), model.Res512, 50); skip != 0 {
		t.Fatalf("empty cache returned skip %d", skip)
	}
	if c.HitRate() != 0 {
		t.Fatal("miss not recorded")
	}
}

func TestLookupSkipGrowsWithSimilarity(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(p(1, 1, 2, 3), model.Res512)
	// Identical prompt → max skip (clamped to half the steps).
	full := c.Lookup(p(1, 1, 2, 3), model.Res512, 50)
	if full != 25 {
		t.Fatalf("identical prompt skip = %d, want 25 (max level)", full)
	}
	partial := c.Lookup(p(1, 1, 9, 10), model.Res512, 50)
	if partial <= 0 || partial >= full {
		t.Fatalf("partial match skip = %d, want in (0, %d)", partial, full)
	}
}

func TestLookupResolutionSpecific(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(p(1, 1, 2, 3), model.Res512)
	if skip := c.Lookup(p(1, 1, 2, 3), model.Res1024, 50); skip != 0 {
		t.Fatalf("latents are resolution-specific; cross-res skip = %d", skip)
	}
}

func TestLookupThemeSpecific(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(p(1, 1, 2, 3), model.Res512)
	if skip := c.Lookup(p(2, 1, 2, 3), model.Res512, 50); skip != 0 {
		t.Fatalf("cross-theme lookup returned skip %d", skip)
	}
}

func TestMaxSkipFractionClamp(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(p(1, 1, 2, 3), model.Res512)
	if skip := c.Lookup(p(1, 1, 2, 3), model.Res512, 10); skip > 5 {
		t.Fatalf("skip %d exceeds half of 10 steps", skip)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 3
	c := New(cfg)
	c.Insert(p(1, 1), model.Res256)
	c.Insert(p(2, 1), model.Res256)
	c.Insert(p(3, 1), model.Res256)
	// Touch theme 1 so theme 2 becomes LRU.
	c.Lookup(p(1, 1), model.Res256, 50)
	c.Insert(p(4, 1), model.Res256)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if skip := c.Lookup(p(2, 1), model.Res256, 50); skip != 0 {
		t.Fatal("LRU entry (theme 2) should have been evicted")
	}
	if skip := c.Lookup(p(1, 1), model.Res256, 50); skip == 0 {
		t.Fatal("recently used entry (theme 1) was evicted")
	}
}

// TestInsertDedupsIdenticalPrompt is the duplicate regression: re-serving a
// hot prompt must refresh its LRU slot, not fill the cache with copies.
func TestInsertDedupsIdenticalPrompt(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(p(1, 1, 2), model.Res256)
	c.Insert(p(1, 1, 2), model.Res256)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", c.Len())
	}
	// Same prompt at another resolution is a distinct latent.
	c.Insert(p(1, 1, 2), model.Res512)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (latents are resolution-specific)", c.Len())
	}
	// Different mods under the same theme is a distinct entry too.
	c.Insert(p(1, 1, 3), model.Res256)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

// TestInsertDedupRefreshesLRU: the duplicate insert must move the entry to
// the front so it is not the next eviction victim.
func TestInsertDedupRefreshesLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 2
	c := New(cfg)
	c.Insert(p(1, 1), model.Res256)
	c.Insert(p(2, 1), model.Res256)
	c.Insert(p(1, 1), model.Res256) // refresh theme 1 → theme 2 becomes LRU
	c.Insert(p(3, 1), model.Res256) // evicts theme 2
	if skip := c.Lookup(p(1, 1), model.Res256, 50); skip == 0 {
		t.Fatal("refreshed entry was evicted; duplicate insert did not touch LRU order")
	}
	if skip := c.Lookup(p(2, 1), model.Res256, 50); skip != 0 {
		t.Fatal("stale entry survived; refresh did not reorder the LRU list")
	}
}

func TestHitRateAndSkippedSteps(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(p(1, 1, 2, 3), model.Res256)
	c.Lookup(p(1, 1, 2, 3), model.Res256, 50) // hit
	c.Lookup(p(9, 1), model.Res256, 50)       // miss
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	if c.SkippedSteps() != 25 {
		t.Fatalf("skipped steps = %d, want 25", c.SkippedSteps())
	}
}

func TestWarm(t *testing.T) {
	c := New(DefaultConfig())
	sampler := workload.NewPromptSampler()
	rng := stats.NewRNG(1)
	var prompts []workload.Prompt
	for i := 0; i < 500; i++ {
		prompts = append(prompts, sampler.Sample(rng))
	}
	c.Warm(prompts, model.StandardResolutions())
	// Insert deduplicates identical (prompt, resolution) pairs, so the
	// warmed size is the number of distinct pairs in the corpus, not 500.
	distinct := map[string]bool{}
	for i, p := range prompts {
		res := model.StandardResolutions()[i%len(model.StandardResolutions())]
		distinct[fmt.Sprintf("%d|%s|%v|%s", p.Theme, p.Text, p.Mods, res)] = true
	}
	if c.Len() != len(distinct) {
		t.Fatalf("Len after warm = %d, want %d distinct", c.Len(), len(distinct))
	}
	if c.Len() == 0 || c.Len() > 500 {
		t.Fatalf("Len after warm = %d out of range", c.Len())
	}
}

func TestWarmedCacheHitsOften(t *testing.T) {
	c := New(DefaultConfig())
	sampler := workload.NewPromptSampler()
	rng := stats.NewRNG(2)
	resList := model.StandardResolutions()
	for i := 0; i < 10000; i++ {
		c.Insert(sampler.Sample(rng), resList[rng.Intn(len(resList))])
	}
	hits := 0
	const n = 500
	for i := 0; i < n; i++ {
		if c.Lookup(sampler.Sample(rng), resList[rng.Intn(len(resList))], 50) > 0 {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.5 {
		t.Fatalf("warmed cache hit rate %.2f; the Table 3 gains need substantial reuse", frac)
	}
}

func TestConfigValidationDefaults(t *testing.T) {
	c := New(Config{Capacity: -5, SkipLevels: []int{1, 2}, Thresholds: []float64{0.5}})
	// Mismatched levels/thresholds fall back to defaults.
	c.Insert(p(1, 1, 2, 3), model.Res256)
	if skip := c.Lookup(p(1, 1, 2, 3), model.Res256, 50); skip != 25 {
		t.Fatalf("defaulted config skip = %d", skip)
	}
}

func TestTrimmerAdapters(t *testing.T) {
	c := New(DefaultConfig())
	tr := &Trimmer{C: c}
	tr.OnComplete(p(1, 1, 2, 3), model.Res512, 0)
	if got := tr.OnArrival(p(1, 1, 2, 3), model.Res512, 50, 0); got != 25 {
		t.Fatalf("trimmer skip = %d", got)
	}
}

func TestEvictionKeepsBucketsConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 10
	c := New(cfg)
	rng := stats.NewRNG(3)
	sampler := workload.NewPromptSampler()
	resList := model.StandardResolutions()
	for i := 0; i < 1000; i++ {
		c.Insert(sampler.Sample(rng), resList[rng.Intn(len(resList))])
		if c.Len() > 10 {
			t.Fatal("capacity exceeded")
		}
	}
	// All lookups must still work without stale entries.
	for i := 0; i < 100; i++ {
		c.Lookup(sampler.Sample(rng), resList[rng.Intn(len(resList))], 50)
	}
}
