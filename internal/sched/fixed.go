package sched

import (
	"fmt"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/workload"
)

// FixedSP reproduces the xDiT baseline (§6.1): every request runs all of its
// steps at one constant sequence-parallel degree, non-preemptively, in FIFO
// order. With N GPUs and degree k the cluster behaves as N/k independent
// replicas; a request at the queue head that cannot be placed blocks the
// queue (the head-of-line blocking Figure 1 illustrates).
type FixedSP struct {
	// Degree is the constant SP degree k.
	Degree int
	// Backfill, when true, lets later requests jump a blocked head. The
	// paper's xDiT baseline does not backfill; the flag exists for the
	// sensitivity tests.
	Backfill bool
}

// NewFixedSP returns the xDiT SP=k baseline.
func NewFixedSP(k int) *FixedSP { return &FixedSP{Degree: k} }

// Name implements Scheduler.
func (f *FixedSP) Name() string { return fmt.Sprintf("xDiT SP=%d", f.Degree) }

// RoundDuration implements Scheduler; xDiT is event-driven.
func (f *FixedSP) RoundDuration() time.Duration { return 0 }

// Plan implements Scheduler: place queued requests FIFO onto free aligned
// groups of the fixed degree, all steps at once.
func (f *FixedSP) Plan(ctx *PlanContext) []Assignment {
	if f.Degree > ctx.Topo.N {
		panic(fmt.Sprintf("sched: fixed degree %d exceeds cluster of %d GPUs", f.Degree, ctx.Topo.N))
	}
	var plan []Assignment
	free := ctx.Free
	for _, st := range ctx.Pending {
		g := AlignedGroup(ctx.Topo, free, f.Degree, st.LastGroup)
		if g == 0 {
			if f.Backfill {
				continue
			}
			break // head-of-line blocking
		}
		free = free.Without(g)
		plan = append(plan, Assignment{
			Requests: []workload.RequestID{st.Req.ID},
			Group:    g,
			Steps:    st.Remaining,
		})
	}
	return plan
}

// RSSP is the Resolution-Specific SP baseline: the best fixed degree per
// resolution chosen by offline profiling — SP=1 for 256² and 512², SP=2 for
// 1024², SP=8 for 2048² (§6.1). It remains non-preemptive and
// deadline-unaware; the paper calls it an oracle static configuration.
type RSSP struct {
	// DegreeFor maps resolution to its static degree.
	DegreeFor map[model.Resolution]int
}

// NewRSSP returns the paper's RSSP configuration, clamped to the node size
// (on the 4-GPU A40 node the 2048² degree becomes 4).
func NewRSSP(maxDegree int) *RSSP {
	clamp := func(k int) int {
		if k > maxDegree {
			return maxDegree
		}
		return k
	}
	return &RSSP{DegreeFor: map[model.Resolution]int{
		model.Res256:  clamp(1),
		model.Res512:  clamp(1),
		model.Res1024: clamp(2),
		model.Res2048: clamp(8),
	}}
}

// Name implements Scheduler.
func (r *RSSP) Name() string { return "RSSP" }

// RoundDuration implements Scheduler; RSSP is event-driven.
func (r *RSSP) RoundDuration() time.Duration { return 0 }

// Plan implements Scheduler: FIFO placement at each request's static degree.
func (r *RSSP) Plan(ctx *PlanContext) []Assignment {
	var plan []Assignment
	free := ctx.Free
	for _, st := range ctx.Pending {
		k, ok := r.DegreeFor[st.Req.Res]
		if !ok {
			k = 1
		}
		g := AlignedGroup(ctx.Topo, free, k, st.LastGroup)
		if g == 0 {
			break // FIFO: blocked head stalls the queue
		}
		free = free.Without(g)
		plan = append(plan, Assignment{
			Requests: []workload.RequestID{st.Req.ID},
			Group:    g,
			Steps:    st.Remaining,
		})
	}
	return plan
}
