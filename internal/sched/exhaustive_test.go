package sched

import (
	"testing"
	"testing/quick"
	"time"

	"tetriserve/internal/stats"
)

// simpleInstance builds an instance where every request has the same step
// times: T(k) = base/k (perfect scaling, for analyzable optima).
func simpleInstance(n int, reqs []ExhaustiveRequest) ExhaustiveInstance {
	degrees := []int{}
	for k := 1; k <= n; k *= 2 {
		degrees = append(degrees, k)
	}
	return ExhaustiveInstance{N: n, Degrees: degrees, Requests: reqs}
}

func perfectScaling(base time.Duration, n int) map[int]time.Duration {
	st := map[int]time.Duration{}
	for k := 1; k <= n; k *= 2 {
		st[k] = base / time.Duration(k)
	}
	return st
}

func TestExhaustiveEmptyInstance(t *testing.T) {
	sol := SolveExhaustive(ExhaustiveInstance{N: 4, Degrees: []int{1}}, time.Second)
	if sol.Met != 0 || sol.TimedOut {
		t.Fatalf("empty instance: %+v", sol)
	}
}

func TestExhaustiveSingleRequestMeets(t *testing.T) {
	inst := simpleInstance(4, []ExhaustiveRequest{{
		Arrival:  0,
		Deadline: 500 * time.Millisecond,
		Steps:    2,
		StepTime: perfectScaling(400*time.Millisecond, 4),
	}})
	// Needs 2 steps in 500ms: only k=4 (100ms/step) or k=2 (200ms/step)
	// make it; feasible → Met = 1.
	sol := SolveExhaustive(inst, 5*time.Second)
	if sol.Met != 1 {
		t.Fatalf("Met = %d, want 1", sol.Met)
	}
	if sol.TimedOut {
		t.Fatal("tiny instance should not time out")
	}
	// Minimal GPU-seconds tiebreak: perfect scaling makes GPU-seconds
	// equal across degrees (2 × 0.4 = 0.8), so any feasible plan costs 0.8.
	if sol.GPUSeconds < 0.79 || sol.GPUSeconds > 0.81 {
		t.Fatalf("GPUSeconds = %v, want 0.8", sol.GPUSeconds)
	}
}

func TestExhaustiveInfeasibleRequest(t *testing.T) {
	inst := simpleInstance(4, []ExhaustiveRequest{{
		Arrival:  0,
		Deadline: 50 * time.Millisecond,
		Steps:    2,
		StepTime: perfectScaling(400*time.Millisecond, 4),
	}})
	sol := SolveExhaustive(inst, 2*time.Second)
	if sol.Met != 0 {
		t.Fatalf("impossible deadline met: %+v", sol)
	}
}

func TestExhaustiveCapacityForcesChoice(t *testing.T) {
	// Two requests, each needs the whole 2-GPU node simultaneously to
	// meet its deadline; only one can win.
	mk := func(arr time.Duration) ExhaustiveRequest {
		return ExhaustiveRequest{
			Arrival:  arr,
			Deadline: arr + 220*time.Millisecond,
			Steps:    1,
			StepTime: perfectScaling(400*time.Millisecond, 2),
		}
	}
	inst := simpleInstance(2, []ExhaustiveRequest{mk(0), mk(0)})
	sol := SolveExhaustive(inst, 5*time.Second)
	if sol.Met != 1 {
		t.Fatalf("Met = %d, want exactly 1 under contention", sol.Met)
	}
}

func TestExhaustiveBothFitWithPacking(t *testing.T) {
	// Two single-step requests at k=1 fit side by side on 2 GPUs.
	mk := func() ExhaustiveRequest {
		return ExhaustiveRequest{
			Arrival:  0,
			Deadline: 450 * time.Millisecond,
			Steps:    1,
			StepTime: perfectScaling(400*time.Millisecond, 2),
		}
	}
	inst := simpleInstance(2, []ExhaustiveRequest{mk(), mk()})
	sol := SolveExhaustive(inst, 5*time.Second)
	if sol.Met != 2 {
		t.Fatalf("Met = %d, want 2 (side-by-side at k=1)", sol.Met)
	}
}

func TestExhaustiveStepDependency(t *testing.T) {
	// 3 steps of 100ms at k=1, deadline 250ms: even with 4 idle GPUs, the
	// steps are dependent, so only higher degrees can meet it.
	inst := simpleInstance(4, []ExhaustiveRequest{{
		Arrival:  0,
		Deadline: 250 * time.Millisecond,
		Steps:    3,
		StepTime: map[int]time.Duration{1: 100 * time.Millisecond, 2: 100 * time.Millisecond, 4: 50 * time.Millisecond},
	}})
	sol := SolveExhaustive(inst, 5*time.Second)
	if sol.Met != 1 {
		t.Fatalf("Met = %d; solver should find the k=4 plan", sol.Met)
	}
	// Best plan must use k=4 for at least one step (3×100 > 250).
	usesK4 := false
	for _, k := range sol.DegreesByRequest[0] {
		if k == 4 {
			usesK4 = true
		}
	}
	if !usesK4 {
		t.Fatalf("plan %v cannot meet 250ms without k=4 steps", sol.DegreesByRequest[0])
	}
}

func TestExhaustiveTimeout(t *testing.T) {
	// 3 requests × 5 steps × 4 degrees on 8 GPUs explodes; a 50ms budget
	// must trip the timeout.
	var reqs []ExhaustiveRequest
	for i := 0; i < 3; i++ {
		reqs = append(reqs, ExhaustiveRequest{
			Arrival:  0,
			Deadline: time.Second,
			Steps:    5,
			StepTime: perfectScaling(100*time.Millisecond, 8),
		})
	}
	inst := simpleInstance(8, reqs)
	sol := SolveExhaustive(inst, 50*time.Millisecond)
	if !sol.TimedOut {
		t.Fatal("expected timeout on a 4^15 search space in 50ms")
	}
	if sol.Elapsed > 5*time.Second {
		t.Fatalf("timeout massively overshot: %v", sol.Elapsed)
	}
}

// TestExhaustiveFrozenClockNeverTimesOut: with an injected frozen clock the
// budget check can never trip, so the search is exhaustive and bit-for-bit
// repeatable regardless of machine load — the property the deterministic
// fuzz/property harnesses rely on.
func TestExhaustiveFrozenClockNeverTimesOut(t *testing.T) {
	var reqs []ExhaustiveRequest
	for i := 0; i < 2; i++ {
		reqs = append(reqs, ExhaustiveRequest{
			Arrival:  0,
			Deadline: time.Second,
			Steps:    3,
			StepTime: perfectScaling(100*time.Millisecond, 4),
		})
	}
	inst := simpleInstance(4, reqs)
	frozen := func() time.Time { return time.Unix(0, 0) }
	// A 1ns budget would time out instantly on the wall clock; frozen time
	// never reaches the deadline, so the search must run to exhaustion.
	a := SolveExhaustiveClock(inst, time.Nanosecond, frozen)
	if a.TimedOut {
		t.Fatal("frozen clock tripped the budget check")
	}
	if a.Elapsed != 0 {
		t.Fatalf("frozen clock measured elapsed %v", a.Elapsed)
	}
	b := SolveExhaustiveClock(inst, time.Nanosecond, frozen)
	if a.Met != b.Met || a.GPUSeconds != b.GPUSeconds || a.Explored != b.Explored {
		t.Fatalf("frozen-clock runs diverged: %+v vs %+v", a, b)
	}
}

// TestExplosionGrowth reproduces Table 6's qualitative claim: exploration
// count grows superexponentially with queue depth.
func TestExplosionGrowth(t *testing.T) {
	counts := make([]int64, 0, 2)
	for r := 1; r <= 2; r++ {
		var reqs []ExhaustiveRequest
		for i := 0; i < r; i++ {
			reqs = append(reqs, ExhaustiveRequest{
				Arrival:  0,
				Deadline: time.Second,
				Steps:    3,
				StepTime: perfectScaling(100*time.Millisecond, 4),
			})
		}
		sol := SolveExhaustive(simpleInstance(4, reqs), 30*time.Second)
		counts = append(counts, sol.Explored)
	}
	// d^S = 27 for one request; 27² = 729 for two.
	if counts[0] != 27 || counts[1] != 729 {
		t.Fatalf("explored = %v, want [27 729]", counts)
	}
}

func TestRTFeasibleBasics(t *testing.T) {
	if !RTFeasible(nil) {
		t.Fatal("empty job set is feasible")
	}
	jobs := []RTJob{
		{Release: 0, Deadline: 10, Length: 5},
		{Release: 0, Deadline: 10, Length: 5},
	}
	if !RTFeasible(jobs) {
		t.Fatal("two back-to-back jobs fit exactly")
	}
	jobs[0].Deadline = 9
	jobs[1].Deadline = 9
	if RTFeasible(jobs) {
		t.Fatal("9 time units cannot hold 10 units of work when both end by 9")
	}
}

func TestRTFeasibleNeedsIdleInsertion(t *testing.T) {
	// Feasible only by idling until B releases: A(len 10, dl 20),
	// B(release 5, len 2, dl 7).
	jobs := []RTJob{
		{Release: 0, Deadline: 20, Length: 10},
		{Release: 5, Deadline: 7, Length: 2},
	}
	if !RTFeasible(jobs) {
		t.Fatal("schedule B@5 then A@7 is feasible; RTFeasible must find it")
	}
}

// TestReductionEquivalence is the machine-checkable core of Appendix A:
// random RT instances are feasible iff their reduced DiT instances are.
func TestReductionEquivalence(t *testing.T) {
	type rawJob struct {
		Release, Deadline, Length uint8
	}
	check := func(raws []rawJob) bool {
		if len(raws) > 7 {
			raws = raws[:7]
		}
		var jobs []RTJob
		for _, r := range raws {
			rel := time.Duration(r.Release % 20)
			length := time.Duration(r.Length%8 + 1)
			dl := rel + time.Duration(r.Deadline%12) + 1
			jobs = append(jobs, RTJob{Release: rel, Deadline: dl, Length: length})
		}
		inst := ReduceRTToDiT(jobs)
		return RTFeasible(jobs) == SingleMachineDiTFeasible(inst)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReductionInstanceShape checks the reduction's structural mapping.
func TestReductionInstanceShape(t *testing.T) {
	jobs := []RTJob{{Release: 3, Deadline: 9, Length: 4}}
	inst := ReduceRTToDiT(jobs)
	if inst.N != 1 || len(inst.Degrees) != 1 || inst.Degrees[0] != 1 {
		t.Fatalf("reduced instance N/K wrong: %+v", inst)
	}
	r := inst.Requests[0]
	if r.Arrival != 3 || r.Deadline != 9 || r.Steps != 1 || r.StepTime[1] != 4 {
		t.Fatalf("reduced request wrong: %+v", r)
	}
}

// TestWorkConservingSolverAgreesWhenNoReleases: with all releases at zero,
// inserted idleness never helps, so the general work-conserving solver must
// agree with the exact ordering decider.
func TestWorkConservingSolverAgreesWhenNoReleases(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4)
		var jobs []RTJob
		for i := 0; i < n; i++ {
			length := time.Duration(rng.Intn(5)+1) * time.Millisecond
			dl := time.Duration(rng.Intn(12)+1) * time.Millisecond
			jobs = append(jobs, RTJob{Release: 0, Deadline: dl, Length: length})
		}
		inst := ReduceRTToDiT(jobs)
		all, timedOut := DiTFeasibleAll(inst, 10*time.Second)
		if timedOut {
			t.Fatal("tiny instance timed out")
		}
		if all != RTFeasible(jobs) {
			t.Fatalf("trial %d: solver=%v, exact=%v for %+v", trial, all, RTFeasible(jobs), jobs)
		}
	}
}
