package sched

import (
	"time"
)

// This file implements the exact baseline solver from Appendix B: an
// exhaustive search over the step-level decision space used to demonstrate
// why online DiT serving needs a heuristic. For each request it enumerates a
// sequence-parallel degree *per step* (d^S sequences for d degrees and S
// steps), crosses the sequences over all requests, and for every combination
// searches dispatch orders for a feasible non-preemptive packing under the
// GPU capacity. The combinatorial explosion Table 6 reports (sub-10 ms for
// one request, >60 s past three requests on 8 GPUs) falls directly out of
// the d^(S·R)·R! search space.

// ExhaustiveRequest is one request in an offline planning instance.
type ExhaustiveRequest struct {
	// Arrival is the earliest start time.
	Arrival time.Duration
	// Deadline is the absolute completion deadline.
	Deadline time.Duration
	// Steps is the number of dependent steps.
	Steps int
	// StepTime maps a degree to the per-step execution time.
	StepTime map[int]time.Duration
}

// ExhaustiveInstance is an offline scheduling problem.
type ExhaustiveInstance struct {
	// N is the GPU capacity.
	N int
	// Degrees lists allowed per-step degrees (powers of two ≤ N).
	Degrees []int
	// Requests are the queued requests.
	Requests []ExhaustiveRequest
}

// ExhaustiveSolution reports the best schedule found.
type ExhaustiveSolution struct {
	// Met is the number of requests meeting their deadlines.
	Met int
	// GPUSeconds is the tiebreak objective (total GPU time consumed).
	GPUSeconds float64
	// DegreesByRequest holds the chosen per-step degrees of the best plan.
	DegreesByRequest [][]int
	// Explored counts evaluated degree-sequence combinations.
	Explored int64
	// TimedOut reports whether the search hit its deadline before
	// exhausting the space; Met is then a lower bound, not an optimum.
	TimedOut bool
	// Elapsed is the wall-clock planning time.
	Elapsed time.Duration
}

// SolveExhaustive runs the Appendix B solver with a wall-clock budget.
func SolveExhaustive(inst ExhaustiveInstance, timeout time.Duration) ExhaustiveSolution {
	return SolveExhaustiveClock(inst, timeout, time.Now)
}

// SolveExhaustiveClock is SolveExhaustive with an injectable time source, so
// deterministic harnesses (the DP-vs-exhaustive property test, fuzz targets)
// can pin the budget to a fake clock and never time out under load.
func SolveExhaustiveClock(inst ExhaustiveInstance, timeout time.Duration, now func() time.Time) ExhaustiveSolution {
	start := now()
	deadline := start.Add(timeout)
	sol := ExhaustiveSolution{Met: -1}

	r := len(inst.Requests)
	if r == 0 {
		return ExhaustiveSolution{Elapsed: now().Sub(start)}
	}
	// Current degree-sequence choice per request.
	seqs := make([][]int, r)
	for i, req := range inst.Requests {
		seqs[i] = make([]int, req.Steps)
		for j := range seqs[i] {
			seqs[i][j] = inst.Degrees[0]
		}
	}
	perm := make([]int, r)
	for i := range perm {
		perm[i] = i
	}

	var enumerate func(req int) bool // returns false on timeout
	evaluate := func() {
		sol.Explored++
		met, gpusec := bestOverOrders(inst, seqs, perm, 0)
		if met > sol.Met || (met == sol.Met && gpusec < sol.GPUSeconds) {
			sol.Met = met
			sol.GPUSeconds = gpusec
			sol.DegreesByRequest = cloneSeqs(seqs)
		}
	}
	enumerate = func(req int) bool {
		if req == r {
			evaluate()
			return sol.Explored%256 != 0 || now().Before(deadline)
		}
		return enumerateSteps(inst, seqs, req, 0, func() bool { return enumerate(req + 1) })
	}
	if !enumerate(0) {
		sol.TimedOut = true
	}
	sol.Elapsed = now().Sub(start)
	if sol.Met < 0 {
		sol.Met = 0
	}
	return sol
}

// enumerateSteps iterates all degree choices for request req's steps.
func enumerateSteps(inst ExhaustiveInstance, seqs [][]int, req, step int, cont func() bool) bool {
	if step == inst.Requests[req].Steps {
		return cont()
	}
	for _, k := range inst.Degrees {
		seqs[req][step] = k
		if !enumerateSteps(inst, seqs, req, step+1, cont) {
			return false
		}
	}
	return true
}

// bestOverOrders tries all dispatch permutations (the "valid permutations of
// physical GPU mapping" dimension) for the fixed degree sequences and
// returns the best (met, gpuSeconds) found.
func bestOverOrders(inst ExhaustiveInstance, seqs [][]int, perm []int, i int) (int, float64) {
	if i == len(perm) {
		return simulatePacking(inst, seqs, perm)
	}
	bestMet, bestGPU := -1, 0.0
	for j := i; j < len(perm); j++ {
		perm[i], perm[j] = perm[j], perm[i]
		met, gpu := bestOverOrders(inst, seqs, perm, i+1)
		if met > bestMet || (met == bestMet && gpu < bestGPU) {
			bestMet, bestGPU = met, gpu
		}
		perm[i], perm[j] = perm[j], perm[i]
	}
	return bestMet, bestGPU
}

// simulatePacking runs a deterministic earliest-start simulation: requests
// are considered in priority order; each step starts as soon as its
// predecessor is done and enough GPUs are free. Arbitrary GPU subsets are
// allowed (capacity check), matching the solver's freedom to permute
// physical mappings.
func simulatePacking(inst ExhaustiveInstance, seqs [][]int, perm []int) (int, float64) {
	type runState struct {
		nextStep int
		readyAt  time.Duration
		running  bool
		endAt    time.Duration
		degree   int
	}
	states := make([]runState, len(inst.Requests))
	for i, req := range inst.Requests {
		states[i] = runState{readyAt: req.Arrival}
	}
	used := 0
	now := time.Duration(0)
	gpuSeconds := 0.0
	for {
		// Start every startable step in priority order.
		progress := true
		for progress {
			progress = false
			for _, i := range perm {
				st := &states[i]
				req := inst.Requests[i]
				if st.running || st.nextStep >= req.Steps || st.readyAt > now {
					continue
				}
				k := seqs[i][st.nextStep]
				if used+k > inst.N {
					continue
				}
				dur := req.StepTime[k]
				st.running = true
				st.degree = k
				st.endAt = now + dur
				used += k
				gpuSeconds += float64(k) * dur.Seconds()
				progress = true
			}
		}
		// Advance to the next completion.
		next := time.Duration(-1)
		for i := range states {
			st := &states[i]
			if st.running && (next < 0 || st.endAt < next) {
				next = st.endAt
			}
			if !st.running && st.nextStep < inst.Requests[i].Steps && st.readyAt > now &&
				(next < 0 || st.readyAt < next) {
				next = st.readyAt
			}
		}
		if next < 0 {
			break
		}
		now = next
		for i := range states {
			st := &states[i]
			if st.running && st.endAt <= now {
				st.running = false
				used -= st.degree
				st.nextStep++
				st.readyAt = now
			}
		}
	}
	met := 0
	for i, req := range inst.Requests {
		if states[i].nextStep >= req.Steps && states[i].readyAt <= req.Deadline {
			met++
		}
	}
	return met, gpuSeconds
}

func cloneSeqs(seqs [][]int) [][]int {
	out := make([][]int, len(seqs))
	for i, s := range seqs {
		out[i] = append([]int(nil), s...)
	}
	return out
}
