package sched

import (
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
)

func TestThroughputPicksEfficientDegree(t *testing.T) {
	th := NewThroughput()
	// Sublinear scaling makes SP=1 the GPU-hour-minimal degree for every
	// resolution in the profiled table.
	st := mkState(1, model.Res2048, 50, 0, 5*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), st)
	plan := th.Plan(ctx)
	if err := ValidatePlan(ctx, plan); err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Group.Count() != 1 {
		t.Fatalf("throughput-max should run 2048px at SP=1: %+v", plan)
	}
	if plan[0].Steps != 50 {
		t.Fatal("throughput-max runs requests to completion")
	}
}

func TestThroughputBatchesSmallRequests(t *testing.T) {
	th := NewThroughput()
	var pending []*RequestState
	for i := 0; i < 4; i++ {
		pending = append(pending, mkState(i, model.Res256, 50, 0, 2*time.Second))
	}
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), pending...)
	plan := th.Plan(ctx)
	if err := ValidatePlan(ctx, plan); err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || len(plan[0].Requests) != 4 {
		t.Fatalf("four identical small requests should form one batch: %+v", plan)
	}
}

func TestThroughputDoesNotBatchLarge(t *testing.T) {
	th := NewThroughput()
	a := mkState(1, model.Res2048, 50, 0, 5*time.Second)
	b := mkState(2, model.Res2048, 50, 0, 5*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), a, b)
	plan := th.Plan(ctx)
	for _, asg := range plan {
		if len(asg.Requests) > 1 {
			t.Fatalf("2048px exceeds the batching token cap: %+v", asg)
		}
	}
	if len(plan) != 2 {
		t.Fatalf("both large requests fit side by side at SP=1: %+v", plan)
	}
}

func TestThroughputIgnoresDeadlines(t *testing.T) {
	th := NewThroughput()
	// An urgent request arrives behind a relaxed one; throughput-max does
	// not reorder (FIFO), unlike EDF.
	relaxed := mkState(1, model.Res1024, 50, 0, time.Hour)
	urgent := mkState(2, model.Res1024, 50, time.Millisecond, time.Second)
	ctx := mkCtx(0, simgpu.MaskOf(0), relaxed, urgent)
	plan := th.Plan(ctx)
	if len(plan) != 1 || plan[0].Requests[0] != 1 {
		t.Fatalf("throughput-max should serve FIFO regardless of deadlines: %+v", plan)
	}
}

func TestThroughputMetadata(t *testing.T) {
	th := NewThroughput()
	if th.Name() != "Throughput-max" || th.RoundDuration() != 0 {
		t.Fatal("metadata wrong")
	}
}
