package sched

import (
	"math/bits"

	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
)

// Placement selects concrete GPU sets for requested degrees. All schedulers
// share it so that baselines and TetriServe pay identical placement physics.
//
// Groups are power-of-two sized and buddy-aligned (a size-k group starts at
// a multiple of k), mirroring NCCL deployment practice. Buddy alignment is
// what keeps A40 pairs on NVLink and lets elastic scale-up double a group in
// place.

// AlignedGroup returns a free buddy-aligned group of size k, preferring the
// request's previous placement when still free (placement preservation,
// §4.2.3), then the slot overlapping the previous placement, then the
// lowest-numbered free slot. Returns 0 when nothing fits.
func AlignedGroup(topo *simgpu.Topology, free simgpu.Mask, k int, prev simgpu.Mask) simgpu.Mask {
	if k <= 0 || k > topo.N {
		return 0
	}
	// Exact reuse first.
	if prev != 0 && prev.Count() == k && prev&^free == 0 {
		return prev
	}
	var overlapping, first simgpu.Mask
	for slot := 0; slot*k < topo.N; slot++ {
		g := simgpu.CanonicalGroup(slot, k)
		if g&^free != 0 {
			continue
		}
		if first == 0 {
			first = g
		}
		if prev != 0 && g.Overlaps(prev) && overlapping == 0 {
			overlapping = g
		}
	}
	if overlapping != 0 {
		return overlapping
	}
	return first
}

// RandomGroup picks k arbitrary free GPUs with no alignment or reuse
// preference — the naive remapping the placement-preservation ablation
// (Table 5) compares against. Returns 0 when fewer than k GPUs are free.
func RandomGroup(free simgpu.Mask, k int, rng *stats.RNG) simgpu.Mask {
	ids := free.IDs()
	if len(ids) < k {
		return 0
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return simgpu.MaskOf(ids[:k]...)
}

// BuddyOf returns the sibling group that, unioned with g, forms the aligned
// group of twice the size; 0 if g is not aligned or already spans the node.
func BuddyOf(topo *simgpu.Topology, g simgpu.Mask) simgpu.Mask {
	k := g.Count()
	if k == 0 || k&(k-1) != 0 || 2*k > topo.N {
		return 0
	}
	lo := bits.TrailingZeros64(uint64(g))
	if lo%k != 0 || g != simgpu.CanonicalGroup(lo/k, k) {
		return 0
	}
	parentLo := (lo / (2 * k)) * 2 * k
	parent := simgpu.MaskRange(simgpu.GPUID(parentLo), 2*k)
	return parent.Without(g)
}

// MaxFreeAligned returns the size of the largest aligned free group.
func MaxFreeAligned(topo *simgpu.Topology, free simgpu.Mask) int {
	best := 0
	for _, k := range topo.Degrees() {
		for slot := 0; slot*k < topo.N; slot++ {
			g := simgpu.CanonicalGroup(slot, k)
			if g&^free == 0 && k > best {
				best = k
			}
		}
	}
	return best
}
