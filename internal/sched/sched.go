// Package sched defines the scheduling contract shared by TetriServe and
// every baseline (fixed-SP xDiT, RSSP, EDF, exhaustive optimal), plus the
// placement machinery (buddy-aligned GPU group allocation) and the
// NP-hardness apparatus from the paper's appendices.
//
// A Scheduler observes the cluster through a PlanContext snapshot and emits
// Assignments: "run these steps of these requests on this GPU group". The
// simulator (internal/sim) and the live server (internal/server) both drive
// schedulers through this interface, so control-plane logic is identical
// offline and online.
package sched

import (
	"fmt"
	"math/bits"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// DegreeTally counts executed steps per sequence-parallel degree. Degrees are
// powers of two (≤ 64, the Mask width), so the tally is a flat array indexed
// by log2(degree) — a plain value with no heap footprint, unlike the map it
// replaced, so tracker entries stay allocation-free on the hot path.
type DegreeTally [7]int

// Add credits steps executed at the given power-of-two degree.
func (t *DegreeTally) Add(degree, steps int) {
	t[bits.TrailingZeros(uint(degree))] += steps
}

// Get returns the steps executed at the given power-of-two degree.
func (t *DegreeTally) Get(degree int) int {
	return t[bits.TrailingZeros(uint(degree))]
}

// Total returns the steps executed across all degrees.
func (t *DegreeTally) Total() int {
	n := 0
	for _, v := range t {
		n += v
	}
	return n
}

// RequestState is the scheduler-visible state of one request — what the
// paper's Request Tracker maintains (§3).
type RequestState struct {
	Req *workload.Request
	// Remaining is the number of denoising steps left.
	Remaining int
	// Running reports whether an assignment for this request is executing.
	Running bool
	// LastGroup is the GPU set the request ran on most recently (0 before
	// the first step) — the input to placement preservation.
	LastGroup simgpu.Mask
	// StepsByDegree tallies executed steps per parallelism degree, feeding
	// the Figure 11 average-degree analysis.
	StepsByDegree DegreeTally
	// QualityUsed counts the steps already approximated via step caching;
	// QualityUsed never exceeds Req.QualityBudget.
	QualityUsed int
	// Started reports whether any step has executed.
	Started bool
}

// Clone returns a deep copy (used by solvers that explore hypotheticals).
func (s *RequestState) Clone() *RequestState {
	c := *s
	return &c
}

// Deadline is the request's absolute deadline.
func (s *RequestState) Deadline() time.Duration { return s.Req.Deadline() }

// DefinitelyLate reports whether the request cannot meet its deadline even
// at the fastest profiled per-step time starting from now.
func (s *RequestState) DefinitelyLate(now time.Duration, prof *costmodel.Profile) bool {
	tmin, _ := prof.MinStepTime(s.Req.Res)
	return now+time.Duration(s.Remaining)*tmin > s.Deadline()
}

// AvgDegree returns the steps-weighted mean parallelism degree so far.
func (s *RequestState) AvgDegree() float64 {
	steps, weighted := 0, 0
	for i, n := range s.StepsByDegree {
		steps += n
		weighted += (1 << i) * n
	}
	if steps == 0 {
		return 0
	}
	return float64(weighted) / float64(steps)
}

// CacheProtectedSteps is N, the shared protection zone: the first and last N
// effective steps of a request are never cache-approximated — early steps
// set global structure, late steps refine detail, and both degrade output
// quality disproportionately (the exemplar step-caching systems protect the
// same zones).
const CacheProtectedSteps = 4

// ApproxSteps returns how many of q consecutive steps run cache-approximated
// at interval c: step j of the block (0-based) executes fully iff j%c == 0.
// Interval ≤ 1 approximates nothing. This is the single quality-accounting
// function the planner, control loop, checker, and oracle all share — one
// definition, so their ledgers can never drift.
func ApproxSteps(q, c int) int {
	if c <= 1 || q <= 0 {
		return 0
	}
	return q - (q+c-1)/c
}

// Assignment instructs the engine to execute Steps denoising steps for each
// listed request on Group. Multiple requests form a selectively-batched
// step block and must share a resolution.
type Assignment struct {
	Requests []workload.RequestID
	Group    simgpu.Mask
	Steps    int
	// RoundAligned marks blocks sized to finish within the scheduler's
	// round; the simulator's round tick waits for aligned blocks only.
	RoundAligned bool
	// BestEffort marks the ≤1-GPU lane for already-late requests.
	BestEffort bool
	// CacheInterval c > 1 runs only every c-th step fully and approximates
	// the rest from cached features, discounting per-step cost by the
	// profile's CacheDiscount(c). 0 or 1 means no caching. Cached blocks are
	// single-request (approximation cadence is per-request state).
	CacheInterval int
}

// Validate checks structural sanity against a topology.
func (a *Assignment) Validate(topo *simgpu.Topology) error {
	if len(a.Requests) == 0 {
		return fmt.Errorf("sched: assignment with no requests")
	}
	if a.Steps <= 0 {
		return fmt.Errorf("sched: assignment with %d steps", a.Steps)
	}
	return topo.ValidGroup(a.Group)
}

// PlanContext is the snapshot a scheduler plans against.
type PlanContext struct {
	Now time.Duration
	// Free is the set of idle GPUs.
	Free simgpu.Mask
	// Capacity is the GPU set the shard currently owns (elastic serving may
	// resize it between rounds). Zero means the full topology. Free ⊆
	// Capacity always; planners that only carve groups out of Free need not
	// consult it, but plan caches must fingerprint it so a capacity change
	// never replays a stale plan.
	Capacity simgpu.Mask
	// Pending lists requests with Remaining > 0 that are not Running,
	// in arrival order.
	Pending []*RequestState
	// Running lists requests currently executing.
	Running []*RequestState
	// Profile is the offline-profiled cost model.
	Profile *costmodel.Profile
	// Topo is the cluster topology.
	Topo *simgpu.Topology
}

// Scheduler decides GPU allocations.
type Scheduler interface {
	// Name identifies the policy in reports ("TetriServe", "xDiT SP=4").
	Name() string
	// RoundDuration returns the fixed round length τ for round-based
	// policies, or 0 for purely event-driven policies (which are invoked
	// on every arrival and completion instead).
	RoundDuration() time.Duration
	// Plan returns assignments to start now. Returned assignments must use
	// disjoint subsets of ctx.Free and only requests from ctx.Pending.
	//
	// Ownership: the returned slice and the Requests slices inside it are
	// only guaranteed valid until the next Plan call on the same scheduler —
	// hot-path implementations reuse that storage. Callers retaining
	// assignments across planning rounds must copy them (the engine clones
	// Requests on Start).
	Plan(ctx *PlanContext) []Assignment
}

// ValidatePlan checks a plan against the context: free-GPU discipline,
// request membership, resolution-homogeneous batches. Both the simulator
// and the tests use it as an oracle against scheduler bugs.
func ValidatePlan(ctx *PlanContext, plan []Assignment) error {
	var c PlanChecker
	return c.Validate(ctx, plan)
}

// PlanChecker is a reusable ValidatePlan: it keeps its lookup maps across
// calls (cleared, not reallocated) so validating a plan on the control loop's
// hot path allocates nothing once the maps have grown to the working-set
// size. The zero value is ready to use; not safe for concurrent use.
type PlanChecker struct {
	pending map[workload.RequestID]*RequestState
	claimed map[workload.RequestID]bool
}

// Validate performs the same checks as ValidatePlan.
func (c *PlanChecker) Validate(ctx *PlanContext, plan []Assignment) error {
	if c.pending == nil {
		c.pending = make(map[workload.RequestID]*RequestState, len(ctx.Pending))
		c.claimed = make(map[workload.RequestID]bool)
	} else {
		clear(c.pending)
		clear(c.claimed)
	}
	pending, claimed := c.pending, c.claimed
	for _, st := range ctx.Pending {
		pending[st.Req.ID] = st
	}
	used := simgpu.Mask(0)
	for i := range plan {
		a := &plan[i]
		if err := a.Validate(ctx.Topo); err != nil {
			return err
		}
		if a.Group&^ctx.Free != 0 {
			return fmt.Errorf("sched: assignment %d uses busy GPUs %v", i, a.Group.Without(ctx.Free))
		}
		if used.Overlaps(a.Group) {
			return fmt.Errorf("sched: assignment %d overlaps another assignment on %v", i, a.Group)
		}
		used |= a.Group
		if c := a.CacheInterval; c > 1 && len(a.Requests) != 1 {
			return fmt.Errorf("sched: assignment %d caches at interval %d but batches %d requests", i, c, len(a.Requests))
		}
		var firstRes *RequestState
		for _, id := range a.Requests {
			st, ok := pending[id]
			if !ok {
				return fmt.Errorf("sched: assignment %d references unknown or running request %d", i, id)
			}
			if claimed[id] {
				return fmt.Errorf("sched: request %d appears in two assignments", id)
			}
			claimed[id] = true
			// A batched block may nominally exceed a member's remaining
			// steps (the member exits the batch early); single-request
			// assignments must not.
			if len(a.Requests) == 1 && a.Steps > st.Remaining {
				return fmt.Errorf("sched: request %d assigned %d steps but only %d remain", id, a.Steps, st.Remaining)
			}
			if c := a.CacheInterval; c > 1 {
				if used := st.QualityUsed + ApproxSteps(a.Steps, c); used > st.Req.QualityBudget {
					return fmt.Errorf("sched: request %d would approximate %d steps over budget %d",
						id, used, st.Req.QualityBudget)
				}
				total := st.Req.Steps - st.Req.SkippedSteps
				done := total - st.Remaining
				if done < CacheProtectedSteps || done+a.Steps > total-CacheProtectedSteps {
					return fmt.Errorf("sched: request %d cached block [%d,%d) enters the protected first/last %d steps of %d",
						id, done, done+a.Steps, CacheProtectedSteps, total)
				}
			}
			if firstRes == nil {
				firstRes = st
			} else if firstRes.Req.Res != st.Req.Res {
				return fmt.Errorf("sched: batched assignment %d mixes resolutions %v and %v",
					i, firstRes.Req.Res, st.Req.Res)
			}
		}
	}
	return nil
}
