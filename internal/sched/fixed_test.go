package sched

import (
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

func TestFixedSPPlacesFIFO(t *testing.T) {
	f := NewFixedSP(2)
	a := mkState(1, model.Res512, 50, 0, 2*time.Second)
	b := mkState(2, model.Res512, 50, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), a, b)
	plan := f.Plan(ctx)
	if err := ValidatePlan(ctx, plan); err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("placed %d requests, want 2", len(plan))
	}
	for _, asg := range plan {
		if asg.Group.Count() != 2 {
			t.Fatalf("fixed SP=2 produced group %v", asg.Group)
		}
		if asg.Steps != 50 {
			t.Fatalf("xDiT must run all steps at once, got %d", asg.Steps)
		}
	}
	if plan[0].Group.Overlaps(plan[1].Group) {
		t.Fatal("groups overlap")
	}
}

func TestFixedSPHeadOfLineBlocking(t *testing.T) {
	f := NewFixedSP(8)
	// Only 4 GPUs free: the head needs 8 and must block everyone,
	// including a small request behind it that would fit.
	head := mkState(1, model.Res2048, 50, 0, 5*time.Second)
	tail := mkState(2, model.Res256, 50, time.Millisecond, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskOf(0, 1, 2, 3), head, tail)
	if plan := f.Plan(ctx); len(plan) != 0 {
		t.Fatalf("expected head-of-line blocking, got %d assignments", len(plan))
	}
	// With Backfill, the tail would still not run: SP=8 needs 8 GPUs for
	// every request, so nothing fits regardless.
	f.Backfill = true
	if plan := f.Plan(ctx); len(plan) != 0 {
		t.Fatal("SP=8 cannot place anything on 4 GPUs")
	}
}

func TestFixedSPBackfillSkipsBlockedHead(t *testing.T) {
	f := &FixedSP{Degree: 4, Backfill: true}
	a := mkState(1, model.Res2048, 50, 0, 5*time.Second)
	b := mkState(2, model.Res256, 50, 0, 2*time.Second)
	// Free GPUs: only slot {4,5,6,7}; head takes it, second must wait...
	ctx := mkCtx(0, simgpu.MaskOf(4, 5, 6, 7), a, b)
	plan := f.Plan(ctx)
	if len(plan) != 1 || plan[0].Requests[0] != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestFixedSPCapacityLimitsParallelRequests(t *testing.T) {
	f := NewFixedSP(4)
	var pending []*RequestState
	for i := 0; i < 5; i++ {
		pending = append(pending, mkState(i, model.Res1024, 50, 0, 3*time.Second))
	}
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), pending...)
	plan := f.Plan(ctx)
	if len(plan) != 2 {
		t.Fatalf("8 GPUs at SP=4 hold exactly 2 requests, got %d", len(plan))
	}
}

func TestFixedSPPanicsOnOversizedDegree(t *testing.T) {
	f := NewFixedSP(16)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), mkState(1, model.Res512, 10, 0, time.Second))
	defer func() {
		if recover() == nil {
			t.Fatal("degree > N should panic")
		}
	}()
	f.Plan(ctx)
}

func TestRSSPDegrees(t *testing.T) {
	r := NewRSSP(8)
	want := map[model.Resolution]int{
		model.Res256:  1,
		model.Res512:  1,
		model.Res1024: 2,
		model.Res2048: 8,
	}
	for res, k := range want {
		if got := r.DegreeFor[res]; got != k {
			t.Errorf("RSSP degree for %v = %d, want %d (§6.1)", res, got, k)
		}
	}
}

func TestRSSPClampsToNodeSize(t *testing.T) {
	r := NewRSSP(4)
	if got := r.DegreeFor[model.Res2048]; got != 4 {
		t.Fatalf("clamped 2048px degree = %d, want 4", got)
	}
}

func TestRSSPPlacesPerResolution(t *testing.T) {
	r := NewRSSP(8)
	big := mkState(1, model.Res2048, 50, 0, 5*time.Second)
	small := mkState(2, model.Res256, 50, time.Millisecond, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), big, small)
	plan := r.Plan(ctx)
	if err := ValidatePlan(ctx, plan); err != nil {
		t.Fatal(err)
	}
	// 2048 takes all 8 GPUs, 256 blocks behind it (strict FIFO).
	if len(plan) != 1 || plan[0].Group.Count() != 8 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	e := NewEDF()
	loose := mkState(1, model.Res512, 50, 0, 10*time.Second)
	tight := mkState(2, model.Res512, 50, 0, 2*time.Second)
	// One free GPU pair means only one request can get the fast degree.
	ctx := mkCtx(0, simgpu.MaskOf(0, 1), loose, tight)
	plan := e.Plan(ctx)
	if err := ValidatePlan(ctx, plan); err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 || plan[0].Requests[0] != 2 {
		t.Fatalf("EDF should serve the tight deadline first: %+v", plan)
	}
}

func TestEDFPicksFastestAvailableDegree(t *testing.T) {
	e := NewEDF()
	st := mkState(1, model.Res2048, 50, 0, 5*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), st)
	plan := e.Plan(ctx)
	if len(plan) != 1 || plan[0].Group.Count() != 8 {
		t.Fatalf("EDF should give 2048px the fastest degree (8): %+v", plan)
	}
}

func TestSchedulersAreEventDriven(t *testing.T) {
	for _, s := range []Scheduler{NewFixedSP(2), NewRSSP(8), NewEDF()} {
		if s.RoundDuration() != 0 {
			t.Errorf("%s should be event-driven", s.Name())
		}
		if s.Name() == "" {
			t.Error("empty scheduler name")
		}
	}
	_ = workload.RequestID(0) // keep import for mk helpers
}
