package sched

import (
	"sort"
	"time"

	"tetriserve/internal/workload"
)

// EDF is an earliest-deadline-first greedy baseline used in the ablation
// and sensitivity studies: deadline-aware (unlike xDiT/RSSP) but without
// TetriServe's minimal-GPU-hour allocation or round packing. Each planning
// event it sorts pending requests by deadline and gives each, in turn, the
// fastest degree that still fits in the free GPUs, running the whole
// remaining step count non-preemptively.
type EDF struct{}

// NewEDF returns the EDF-greedy policy.
func NewEDF() *EDF { return &EDF{} }

// Name implements Scheduler.
func (e *EDF) Name() string { return "EDF-greedy" }

// RoundDuration implements Scheduler; EDF is event-driven.
func (e *EDF) RoundDuration() time.Duration { return 0 }

// Plan implements Scheduler.
func (e *EDF) Plan(ctx *PlanContext) []Assignment {
	order := make([]*RequestState, len(ctx.Pending))
	copy(order, ctx.Pending)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Deadline() < order[j].Deadline()
	})
	var plan []Assignment
	free := ctx.Free
	for _, st := range order {
		// Fastest profiled degree that has a free aligned group.
		bestK := 0
		bestT := time.Duration(0)
		for _, k := range ctx.Profile.Degrees() {
			if AlignedGroup(ctx.Topo, free, k, st.LastGroup) == 0 {
				continue
			}
			t := ctx.Profile.StepTime(st.Req.Res, k)
			if bestK == 0 || t < bestT {
				bestK, bestT = k, t
			}
		}
		if bestK == 0 {
			continue
		}
		g := AlignedGroup(ctx.Topo, free, bestK, st.LastGroup)
		free = free.Without(g)
		plan = append(plan, Assignment{
			Requests: []workload.RequestID{st.Req.ID},
			Group:    g,
			Steps:    st.Remaining,
		})
	}
	return plan
}
