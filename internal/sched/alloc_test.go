package sched

import (
	"testing"

	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
)

func TestAlignedGroupPrefersExactReuse(t *testing.T) {
	topo := simgpu.H100x8()
	free := topo.AllMask()
	prev := simgpu.MaskOf(4, 5)
	if got := AlignedGroup(topo, free, 2, prev); got != prev {
		t.Fatalf("should reuse previous placement, got %v", got)
	}
}

func TestAlignedGroupOverlapSecondChoice(t *testing.T) {
	topo := simgpu.H100x8()
	// Previous 4-group {4..7}; now downsizing to 2: should pick a slot
	// overlapping the old placement ({4,5}).
	prev := simgpu.MaskOf(4, 5, 6, 7)
	got := AlignedGroup(topo, topo.AllMask(), 2, prev)
	if !got.Overlaps(prev) {
		t.Fatalf("downsized group %v should overlap previous %v", got, prev)
	}
}

func TestAlignedGroupFirstFreeFallback(t *testing.T) {
	topo := simgpu.H100x8()
	free := topo.AllMask().Without(simgpu.MaskOf(0, 1))
	got := AlignedGroup(topo, free, 2, 0)
	if got != simgpu.MaskOf(2, 3) {
		t.Fatalf("first free aligned slot = %v, want {2,3}", got)
	}
}

func TestAlignedGroupRespectsBusy(t *testing.T) {
	topo := simgpu.H100x8()
	// Only GPUs {1,3,5,7} free: no aligned pair exists.
	free := simgpu.MaskOf(1, 3, 5, 7)
	if got := AlignedGroup(topo, free, 2, 0); got != 0 {
		t.Fatalf("fragmented free set should yield no aligned pair, got %v", got)
	}
	if got := AlignedGroup(topo, free, 1, 0); got != simgpu.MaskOf(1) {
		t.Fatalf("single-GPU slot = %v, want {1}", got)
	}
}

func TestAlignedGroupInvalidSizes(t *testing.T) {
	topo := simgpu.H100x8()
	if AlignedGroup(topo, topo.AllMask(), 16, 0) != 0 {
		t.Fatal("oversized group should fail")
	}
	if AlignedGroup(topo, topo.AllMask(), 0, 0) != 0 {
		t.Fatal("zero-size group should fail")
	}
}

func TestAlignedGroupIgnoresStalePrev(t *testing.T) {
	topo := simgpu.H100x8()
	prev := simgpu.MaskOf(0, 1)
	free := topo.AllMask().Without(simgpu.MaskOf(0)) // prev partially busy
	got := AlignedGroup(topo, free, 2, prev)
	if got == prev {
		t.Fatal("must not reuse a partially busy previous group")
	}
	if got == 0 {
		t.Fatal("another slot was free")
	}
}

func TestRandomGroupSizeAndMembership(t *testing.T) {
	rng := stats.NewRNG(1)
	free := simgpu.MaskOf(0, 2, 4, 6)
	for i := 0; i < 100; i++ {
		g := RandomGroup(free, 2, rng)
		if g.Count() != 2 || g&^free != 0 {
			t.Fatalf("random group %v invalid for free %v", g, free)
		}
	}
	if RandomGroup(simgpu.MaskOf(1), 2, rng) != 0 {
		t.Fatal("insufficient free GPUs should yield 0")
	}
}

func TestRandomGroupVaries(t *testing.T) {
	rng := stats.NewRNG(2)
	free := simgpu.MaskRange(0, 8)
	seen := map[simgpu.Mask]bool{}
	for i := 0; i < 50; i++ {
		seen[RandomGroup(free, 2, rng)] = true
	}
	if len(seen) < 5 {
		t.Fatalf("random placement produced only %d distinct groups", len(seen))
	}
}

func TestBuddyOf(t *testing.T) {
	topo := simgpu.H100x8()
	cases := []struct {
		g, want simgpu.Mask
	}{
		{simgpu.MaskOf(0, 1), simgpu.MaskOf(2, 3)},
		{simgpu.MaskOf(2, 3), simgpu.MaskOf(0, 1)},
		{simgpu.MaskOf(4, 5, 6, 7), simgpu.MaskOf(0, 1, 2, 3)},
		{simgpu.MaskOf(0), simgpu.MaskOf(1)},
		{simgpu.MaskOf(3), simgpu.MaskOf(2)},
		{simgpu.MaskRange(0, 8), 0}, // already the whole node
		{simgpu.MaskOf(1, 2), 0},    // not aligned
		{simgpu.MaskOf(0, 1, 2), 0}, // not a power of two
	}
	for _, c := range cases {
		if got := BuddyOf(topo, c.g); got != c.want {
			t.Errorf("BuddyOf(%v) = %v, want %v", c.g, got, c.want)
		}
	}
}

func TestBuddyUnionIsAligned(t *testing.T) {
	topo := simgpu.H100x8()
	for _, g := range []simgpu.Mask{simgpu.MaskOf(0, 1), simgpu.MaskOf(6, 7), simgpu.MaskOf(4)} {
		b := BuddyOf(topo, g)
		if b == 0 {
			t.Fatalf("no buddy for %v", g)
		}
		union := g.Union(b)
		k := union.Count()
		lo := union.IDs()[0]
		if union != simgpu.CanonicalGroup(int(lo)/k, k) {
			t.Errorf("buddy union %v not canonical", union)
		}
	}
}

func TestMaxFreeAligned(t *testing.T) {
	topo := simgpu.H100x8()
	cases := []struct {
		free simgpu.Mask
		want int
	}{
		{topo.AllMask(), 8},
		{simgpu.MaskOf(0, 1, 2, 3), 4},
		{simgpu.MaskOf(1, 2, 3, 4), 2}, // only {2,3} aligned
		{simgpu.MaskOf(1, 3, 5), 1},
		{0, 0},
	}
	for _, c := range cases {
		if got := MaxFreeAligned(topo, c.free); got != c.want {
			t.Errorf("MaxFreeAligned(%v) = %d, want %d", c.free, got, c.want)
		}
	}
}
