package sched

import (
	"strings"
	"testing"
	"time"

	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// testProfile builds the FLUX/H100 lookup table once.
var testProfile = costmodel.BuildProfile(
	costmodel.NewEstimator(model.FLUX(), simgpu.H100x8()), costmodel.ProfilerConfig{})

// mkState builds a request state for tests.
func mkState(id int, res model.Resolution, remaining int, arrival, slo time.Duration) *RequestState {
	return &RequestState{
		Req: &workload.Request{
			ID:      workload.RequestID(id),
			Res:     res,
			Steps:   remaining,
			Arrival: arrival,
			SLO:     slo,
		},
		Remaining: remaining,
	}
}

func mkCtx(now time.Duration, free simgpu.Mask, pending ...*RequestState) *PlanContext {
	return &PlanContext{
		Now:     now,
		Free:    free,
		Pending: pending,
		Profile: testProfile,
		Topo:    simgpu.H100x8(),
	}
}

func TestRequestStateAvgDegree(t *testing.T) {
	st := mkState(1, model.Res512, 10, 0, time.Second)
	st.StepsByDegree.Add(1, 10)
	st.StepsByDegree.Add(4, 10)
	if got := st.AvgDegree(); got != 2.5 {
		t.Fatalf("AvgDegree = %v, want 2.5", got)
	}
	empty := mkState(2, model.Res512, 10, 0, time.Second)
	if empty.AvgDegree() != 0 {
		t.Fatal("empty degree history should average 0")
	}
}

func TestDefinitelyLate(t *testing.T) {
	// 2048px, 50 steps, fastest step ≈ 95ms → needs ≈4.8s.
	st := mkState(1, model.Res2048, 50, 0, 5*time.Second)
	if st.DefinitelyLate(0, testProfile) {
		t.Fatal("fresh 2048px request with 5s budget is not definitely late")
	}
	if !st.DefinitelyLate(time.Second, testProfile) {
		t.Fatal("with only 4s left, 50 steps at ≈95ms cannot finish")
	}
}

func TestStateClone(t *testing.T) {
	st := mkState(1, model.Res512, 5, 0, time.Second)
	st.StepsByDegree.Add(2, 3)
	c := st.Clone()
	c.StepsByDegree.Add(2, 99)
	c.Remaining = 1
	if st.StepsByDegree.Get(2) != 3 || st.Remaining != 5 {
		t.Fatal("Clone is not deep")
	}
}

func TestAssignmentValidate(t *testing.T) {
	topo := simgpu.H100x8()
	ok := Assignment{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1), Steps: 5}
	if err := ok.Validate(topo); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	bad := []Assignment{
		{Group: simgpu.MaskOf(0), Steps: 1},                                          // no requests
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0), Steps: 0},       // no steps
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1, 2), Steps: 1}, // size 3
	}
	for i, a := range bad {
		if err := a.Validate(topo); err == nil {
			t.Errorf("bad assignment %d accepted", i)
		}
	}
}

func TestValidatePlanCatchesBusyGPUs(t *testing.T) {
	st := mkState(1, model.Res512, 10, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskOf(2, 3), st)
	plan := []Assignment{{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1), Steps: 1}}
	if err := ValidatePlan(ctx, plan); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("busy GPUs not caught: %v", err)
	}
}

func TestValidatePlanCatchesOverlap(t *testing.T) {
	a := mkState(1, model.Res512, 10, 0, 2*time.Second)
	b := mkState(2, model.Res512, 10, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), a, b)
	plan := []Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0, 1), Steps: 1},
		// Second group overlaps GPU 1.
		{Requests: []workload.RequestID{2}, Group: simgpu.MaskOf(1), Steps: 1},
	}
	if err := ValidatePlan(ctx, plan); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap not caught: %v", err)
	}
}

func TestValidatePlanCatchesUnknownRequest(t *testing.T) {
	st := mkState(1, model.Res512, 10, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), st)
	plan := []Assignment{{Requests: []workload.RequestID{99}, Group: simgpu.MaskOf(0), Steps: 1}}
	if err := ValidatePlan(ctx, plan); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown request not caught: %v", err)
	}
}

func TestValidatePlanCatchesDoubleAssignment(t *testing.T) {
	st := mkState(1, model.Res512, 10, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), st)
	plan := []Assignment{
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0), Steps: 1},
		{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(1), Steps: 1},
	}
	if err := ValidatePlan(ctx, plan); err == nil || !strings.Contains(err.Error(), "two assignments") {
		t.Fatalf("double assignment not caught: %v", err)
	}
}

func TestValidatePlanCatchesOverSteps(t *testing.T) {
	st := mkState(1, model.Res512, 3, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), st)
	plan := []Assignment{{Requests: []workload.RequestID{1}, Group: simgpu.MaskOf(0), Steps: 5}}
	if err := ValidatePlan(ctx, plan); err == nil || !strings.Contains(err.Error(), "remain") {
		t.Fatalf("over-steps not caught: %v", err)
	}
}

func TestValidatePlanAllowsBatchOversteps(t *testing.T) {
	a := mkState(1, model.Res256, 10, 0, 2*time.Second)
	b := mkState(2, model.Res256, 3, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), a, b)
	plan := []Assignment{{Requests: []workload.RequestID{1, 2}, Group: simgpu.MaskOf(0), Steps: 8}}
	if err := ValidatePlan(ctx, plan); err != nil {
		t.Fatalf("batched early-exit member rejected: %v", err)
	}
}

func TestValidatePlanCatchesMixedResolutionBatch(t *testing.T) {
	a := mkState(1, model.Res256, 10, 0, 2*time.Second)
	b := mkState(2, model.Res512, 10, 0, 2*time.Second)
	ctx := mkCtx(0, simgpu.MaskRange(0, 8), a, b)
	plan := []Assignment{{Requests: []workload.RequestID{1, 2}, Group: simgpu.MaskOf(0), Steps: 2}}
	if err := ValidatePlan(ctx, plan); err == nil || !strings.Contains(err.Error(), "mixes resolutions") {
		t.Fatalf("mixed batch not caught: %v", err)
	}
}
