package sched

import (
	"sort"
	"time"
)

// This file implements Appendix A's NP-hardness reduction as executable
// code: any single-machine real-time feasibility instance (jobs with
// release times, deadlines, and processing lengths) maps to a single-step
// DiT serving instance with N = 1 and K = {1}, such that all jobs are
// schedulable iff all DiT requests can meet their deadlines. Property tests
// check the two sides agree on random instances, which is the machine-
// checkable core of the proof.

// RTJob is a job in an RT-FEASIBILITY instance: run for Length on one
// machine, non-preemptively, within [Release, Deadline].
type RTJob struct {
	Release  time.Duration
	Deadline time.Duration
	Length   time.Duration
}

// ReduceRTToDiT builds the DiT serving instance from Appendix A:
// N := 1, S_i := 1, K := {1}, arrival := r_i, D_i := d_i, T_i(1) := l_i.
func ReduceRTToDiT(jobs []RTJob) ExhaustiveInstance {
	inst := ExhaustiveInstance{N: 1, Degrees: []int{1}}
	for _, j := range jobs {
		inst.Requests = append(inst.Requests, ExhaustiveRequest{
			Arrival:  j.Release,
			Deadline: j.Deadline,
			Steps:    1,
			StepTime: map[int]time.Duration{1: j.Length},
		})
	}
	return inst
}

// RTFeasible decides RT-FEASIBILITY exactly by branch-and-bound over job
// orderings (feasible only for small n; the problem is strongly NP-hard,
// which is the whole point). At every level it tries each remaining job as
// the next one to run at max(now, release).
func RTFeasible(jobs []RTJob) bool {
	n := len(jobs)
	if n == 0 {
		return true
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sorting by deadline first makes the greedy branch succeed quickly on
	// feasible instances.
	sort.Slice(order, func(a, b int) bool { return jobs[order[a]].Deadline < jobs[order[b]].Deadline })
	used := make([]bool, n)
	var rec func(now time.Duration, placed int) bool
	rec = func(now time.Duration, placed int) bool {
		if placed == n {
			return true
		}
		for _, i := range order {
			if used[i] {
				continue
			}
			start := now
			if jobs[i].Release > start {
				start = jobs[i].Release
			}
			if start+jobs[i].Length > jobs[i].Deadline {
				continue
			}
			used[i] = true
			if rec(start+jobs[i].Length, placed+1) {
				used[i] = false
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0, 0)
}

// DiTFeasibleAll reports whether the reduced instance admits a schedule in
// which every request meets its deadline, using the exact solver.
// The second result reports a timeout (answer then a lower bound only).
//
// Note: SolveExhaustive is work-conserving (it never idles a GPU while a
// released request waits), matching real serving systems. Single-machine
// feasibility with release times can require deliberate idling, so the
// reduction's exact counterpart below branches over orderings instead.
func DiTFeasibleAll(inst ExhaustiveInstance, timeout time.Duration) (bool, bool) {
	sol := SolveExhaustive(inst, timeout)
	return sol.Met == len(inst.Requests), sol.TimedOut
}

// SingleMachineDiTFeasible exactly decides whether every request of a
// reduced instance (N = 1, K = {1}, S_i = 1) can meet its deadline,
// permitting inserted idle time as the paper's time-indexed ZILP does.
// It is the DiT-side decision procedure the reduction property tests
// compare against RTFeasible.
func SingleMachineDiTFeasible(inst ExhaustiveInstance) bool {
	if inst.N != 1 {
		panic("sched: SingleMachineDiTFeasible requires N=1")
	}
	jobs := make([]RTJob, 0, len(inst.Requests))
	for _, r := range inst.Requests {
		if r.Steps != 1 {
			panic("sched: SingleMachineDiTFeasible requires single-step requests")
		}
		l, ok := r.StepTime[1]
		if !ok {
			panic("sched: SingleMachineDiTFeasible requires K={1}")
		}
		jobs = append(jobs, RTJob{Release: r.Arrival, Deadline: r.Deadline, Length: l})
	}
	// The instance is literally a single-machine RT instance again — the
	// reduction is an isomorphism on schedules — so the same exact
	// branch-over-orderings decides it.
	return RTFeasible(jobs)
}
