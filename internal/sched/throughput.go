package sched

import (
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/workload"
)

// Throughput is a DDiT-style baseline (§7 related work): it maximizes
// aggregate denoising throughput with no deadline awareness. Every request
// runs non-preemptively at its GPU-hour-minimal degree (the configuration
// with the best steps per GPU-second), and same-resolution small requests
// are batched aggressively. Contrasting it with TetriServe quantifies how
// much SLO attainment costs in raw throughput — the paper's positioning
// against throughput-oriented serving.
type Throughput struct {
	// MaxBatch bounds continuous batching width (default 4).
	MaxBatch int
	// BatchTokenCap limits batching to small resolutions (default 1024
	// latent tokens, ≤512², as in TetriServe's selective batching).
	BatchTokenCap int
}

// NewThroughput returns the throughput-maximizing baseline.
func NewThroughput() *Throughput {
	return &Throughput{MaxBatch: 4, BatchTokenCap: 1024}
}

// Name implements Scheduler.
func (t *Throughput) Name() string { return "Throughput-max" }

// RoundDuration implements Scheduler; the policy is event-driven.
func (t *Throughput) RoundDuration() time.Duration { return 0 }

// Plan implements Scheduler.
func (t *Throughput) Plan(ctx *PlanContext) []Assignment {
	maxBatch := t.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 4
	}
	cap := t.BatchTokenCap
	if cap <= 0 {
		cap = 1024
	}
	var plan []Assignment
	free := ctx.Free
	i := 0
	for i < len(ctx.Pending) {
		st := ctx.Pending[i]
		res := st.Req.Res
		k := t.efficientDegree(ctx, res)
		g := AlignedGroup(ctx.Topo, free, k, st.LastGroup)
		if g == 0 {
			break // FIFO: blocked head stalls (throughput systems queue)
		}
		ids := []workload.RequestID{st.Req.ID}
		steps := st.Remaining
		// Batch consecutive same-resolution small requests.
		if k == 1 && res.Pixels()/256 <= cap {
			for j := i + 1; j < len(ctx.Pending) && len(ids) < maxBatch; j++ {
				other := ctx.Pending[j]
				if other.Req.Res != res || claimed(plan, other.Req.ID) || containsID(ids, other.Req.ID) {
					continue
				}
				ids = append(ids, other.Req.ID)
				if other.Remaining > steps {
					steps = other.Remaining
				}
			}
		}
		free = free.Without(g)
		plan = append(plan, Assignment{Requests: ids, Group: g, Steps: steps})
		// Skip past any pending entries we just batched.
		for i < len(ctx.Pending) && claimed(plan, ctx.Pending[i].Req.ID) {
			i++
		}
	}
	return plan
}

// efficientDegree returns the degree minimizing GPU-seconds per step.
func (t *Throughput) efficientDegree(ctx *PlanContext, res model.Resolution) int {
	best, bestG := 0, 0.0
	for _, k := range ctx.Profile.Degrees() {
		g := ctx.Profile.GPUSeconds(res, k)
		if best == 0 || g < bestG {
			best, bestG = k, g
		}
	}
	return best
}

func claimed(plan []Assignment, id workload.RequestID) bool {
	for _, a := range plan {
		for _, x := range a.Requests {
			if x == id {
				return true
			}
		}
	}
	return false
}

func containsID(ids []workload.RequestID, id workload.RequestID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
