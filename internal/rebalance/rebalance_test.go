package rebalance

import (
	"testing"
	"time"

	"tetriserve/internal/model"
)

func loads(specs ...ShardLoad) []ShardLoad { return specs }

func TestDecideMovesFromIdleToOverloaded(t *testing.T) {
	p := New(DefaultConfig())
	moves := p.Decide(loads(
		ShardLoad{Name: "idle", HealthyGPUs: 4, QueueGPUSeconds: 0, WorstSlack: time.Second},
		ShardLoad{Name: "hot", HealthyGPUs: 4, QueueGPUSeconds: 40, WorstSlack: -time.Second},
	))
	if len(moves) != 1 {
		t.Fatalf("moves = %v, want exactly one", moves)
	}
	m := moves[0]
	if m.From != 0 || m.To != 1 || m.GPUs != 1 {
		t.Fatalf("move = %+v, want 1 GPU 0→1", m)
	}
	if m.String() == "" {
		t.Fatal("Move must describe itself")
	}
}

func TestDecideBalancedFleetStaysPut(t *testing.T) {
	p := New(DefaultConfig())
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 10, WorstSlack: -time.Second},
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 11, WorstSlack: -time.Second},
	))
	if len(moves) != 0 {
		t.Fatalf("balanced fleet moved: %v", moves)
	}
}

func TestDecideRespectsSlackFloor(t *testing.T) {
	// The heavy shard has a big queue but is comfortably meeting deadlines:
	// no receiver qualifies, so nothing moves.
	p := New(DefaultConfig())
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 0, WorstSlack: time.Second},
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 100, WorstSlack: time.Second},
	))
	if len(moves) != 0 {
		t.Fatalf("moved GPUs to a shard that is meeting its deadlines: %v", moves)
	}
}

func TestDecideRespectsMinGPUs(t *testing.T) {
	p := New(Config{MinGPUs: 2, DrainGapSeconds: 1, MaxMoves: 4})
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 2, QueueGPUSeconds: 0, WorstSlack: time.Second},
		ShardLoad{HealthyGPUs: 2, QueueGPUSeconds: 50, WorstSlack: -time.Second},
	))
	if len(moves) != 0 {
		t.Fatalf("donor at its MinGPUs floor still donated: %v", moves)
	}
}

func TestDecideNeverSwapsOverload(t *testing.T) {
	// Both shards are drowning; taking a GPU from one would just swap who is
	// worst. The policy must hold still rather than thrash.
	p := New(DefaultConfig())
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 1, QueueGPUSeconds: 30, WorstSlack: -time.Second},
		ShardLoad{HealthyGPUs: 1, QueueGPUSeconds: 40, WorstSlack: -2 * time.Second},
	))
	if len(moves) != 0 {
		t.Fatalf("policy swapped overload: %v", moves)
	}
}

func TestDecideZeroCapacityShardWithWorkReceives(t *testing.T) {
	// A shard holding work but no devices has infinite drain time: it must
	// win receivership over any finite-drain shard.
	p := New(DefaultConfig())
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 1, WorstSlack: time.Second},
		ShardLoad{HealthyGPUs: 0, QueueGPUSeconds: 1, WorstSlack: -time.Second},
	))
	if len(moves) != 1 || moves[0].From != 0 || moves[0].To != 1 {
		t.Fatalf("moves = %v, want 0→1", moves)
	}
}

func TestDecideMaxMovesChainsHypothetically(t *testing.T) {
	// With MaxMoves 2 the second decision must chain off the post-move GPU
	// counts, not re-donate from the same stale snapshot.
	p := New(Config{MinGPUs: 3, DrainGapSeconds: 0.5, MaxMoves: 2})
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 0, WorstSlack: time.Second},
		ShardLoad{HealthyGPUs: 2, QueueGPUSeconds: 60, WorstSlack: -time.Second},
	))
	// First move leaves the donor at 3 = MinGPUs; the second round must find
	// no eligible donor and stop.
	if len(moves) != 1 {
		t.Fatalf("moves = %v, want exactly one (donor hits MinGPUs)", moves)
	}
}

func TestDecideTiesBreakToLowestIndex(t *testing.T) {
	p := New(DefaultConfig())
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 0, WorstSlack: time.Second},
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 0, WorstSlack: time.Second},
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 40, WorstSlack: -time.Second},
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 40, WorstSlack: -time.Second},
	))
	if len(moves) != 1 || moves[0].From != 0 || moves[0].To != 2 {
		t.Fatalf("moves = %v, want deterministic 0→2", moves)
	}
}

func TestQueueByClassFallback(t *testing.T) {
	// When the scalar queue signal is absent, the per-class map sums into it —
	// the policy sees the same drain pressure either way.
	byClass := ShardLoad{
		HealthyGPUs:  4,
		QueueByClass: map[model.Resolution]float64{model.Res256: 10, model.Res1024: 30},
		WorstSlack:   -time.Second,
	}
	p := New(DefaultConfig())
	moves := p.Decide(loads(
		ShardLoad{HealthyGPUs: 4, QueueGPUSeconds: 0, WorstSlack: time.Second},
		byClass,
	))
	if len(moves) != 1 || moves[0].To != 1 {
		t.Fatalf("moves = %v, want the by-class shard to receive", moves)
	}
}
