// Package rebalance is the elastic-capacity policy tier: it watches
// per-shard feasibility-probe statistics (projected lateness slack, queued
// GPU·seconds by resolution class) and decides which shards should donate
// GPUs to which. The policy is deliberately a pure, deterministic function
// of its inputs — the same probe snapshot always yields the same moves — so
// the sharded simulator can replay rebalancing as virtual-clock events
// bit-identically, and the live rebalancer is auditable from its logs.
//
// Mechanism lives elsewhere: callers translate a Move into a pair of
// control.ApplyResize calls (shrink the donor's mask, grow the receiver's),
// which take effect at each loop's next round boundary with full step credit
// and latent handoff (engine.Resize). This package only picks the moves.
package rebalance

import (
	"fmt"
	"math"
	"time"

	"tetriserve/internal/model"
)

// ShardLoad summarizes one shard's probed state for a decision round.
type ShardLoad struct {
	// Name identifies the shard in logs and tests.
	Name string
	// HealthyGPUs is the shard's owned, non-failed device count
	// (engine.HealthyGPUs) — the denominator of the drain estimate.
	HealthyGPUs int
	// QueueGPUSeconds is the backlog's cheapest-possible GPU·seconds
	// (Feasibility.QueueGPUSeconds).
	QueueGPUSeconds float64
	// QueueByClass optionally splits the backlog by resolution class; when
	// non-nil and QueueGPUSeconds is zero, its sum is used instead.
	QueueByClass map[model.Resolution]float64
	// WorstSlack is the most pessimistic probe slack across the resolution
	// classes the caller probed (negative: the shard is projected late even
	// under best-case packing).
	WorstSlack time.Duration
}

// queue returns the effective backlog GPU·seconds.
func (s ShardLoad) queue() float64 {
	if s.QueueGPUSeconds > 0 || s.QueueByClass == nil {
		return s.QueueGPUSeconds
	}
	var total float64
	for _, v := range s.QueueByClass {
		total += v
	}
	return total
}

// Move is one donate/receive decision: From gives GPUs devices to To (both
// indices into the ShardLoad slice handed to Decide).
type Move struct {
	From, To int
	GPUs     int
}

func (m Move) String() string {
	return fmt.Sprintf("move %d GPU(s): shard[%d] -> shard[%d]", m.GPUs, m.From, m.To)
}

// Config tunes the policy.
type Config struct {
	// MinGPUs is the per-shard capacity floor a donor may not cross
	// (default 1 — a shard is never drained to zero by policy).
	MinGPUs int
	// DrainGapSeconds is the minimum difference in projected drain time
	// (queue GPU·seconds / healthy GPUs) between receiver and donor before a
	// move is worth its reconfiguration cost (default 2s of drain imbalance).
	DrainGapSeconds float64
	// SlackFloor gates receivers: only shards whose worst probed slack is
	// below it are eligible to receive (default 0 — the shard must be
	// projected late somewhere before it pulls capacity).
	SlackFloor time.Duration
	// MaxMoves bounds moves per decision round (default 1); each extra move
	// is evaluated against the post-move hypothetical capacities.
	MaxMoves int
}

// DefaultConfig returns the paper-faithful conservative policy: single-GPU
// moves, one per decision, only toward shards already projected late.
func DefaultConfig() Config {
	return Config{
		MinGPUs:         1,
		DrainGapSeconds: 2.0,
		SlackFloor:      0,
		MaxMoves:        1,
	}
}

// Policy decides GPU moves from probe snapshots.
type Policy struct {
	cfg Config
}

// New builds a policy, applying Config defaults for zero fields.
func New(cfg Config) *Policy {
	if cfg.MinGPUs <= 0 {
		cfg.MinGPUs = 1
	}
	if cfg.DrainGapSeconds <= 0 {
		cfg.DrainGapSeconds = 2.0
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 1
	}
	return &Policy{cfg: cfg}
}

// drain is the fluid-model time for a shard to clear its backlog on its
// (hypothetical) healthy count. A shard with work but no devices drains
// never; an idle shard drains instantly.
func drain(queueGPUSeconds float64, healthy int) float64 {
	if healthy <= 0 {
		if queueGPUSeconds > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return queueGPUSeconds / float64(healthy)
}

// Decide returns the moves for one decision round, most-beneficial first.
// Determinism contract: identical loads yield identical moves; all ties
// break toward the lowest shard index. An empty result means the fleet is
// balanced within the configured gap (or no legal donor/receiver exists).
func (p *Policy) Decide(loads []ShardLoad) []Move {
	if len(loads) < 2 {
		return nil
	}
	healthy := make([]int, len(loads))
	for i, l := range loads {
		healthy[i] = l.HealthyGPUs
	}

	var moves []Move
	for n := 0; n < p.cfg.MaxMoves; n++ {
		donor, receiver := -1, -1
		var donorDrain, recvDrain float64
		for i, l := range loads {
			d := drain(l.queue(), healthy[i])
			// Receiver: projected late (slack below floor), maximal drain.
			if l.WorstSlack < p.cfg.SlackFloor && (receiver < 0 || d > recvDrain) {
				receiver, recvDrain = i, d
			}
			// Donor: above the floor, minimal drain.
			if healthy[i] > p.cfg.MinGPUs && (donor < 0 || d < donorDrain) {
				donor, donorDrain = i, d
			}
		}
		if donor < 0 || receiver < 0 || donor == receiver {
			break
		}
		// The move must close a real gap: receiver drains DrainGapSeconds
		// slower than the donor even after accounting for the donor's loss.
		if math.IsInf(recvDrain, 1) {
			recvDrain = math.MaxFloat64
		}
		if recvDrain-donorDrain < p.cfg.DrainGapSeconds {
			break
		}
		if drain(loads[donor].queue(), healthy[donor]-1) > recvDrain {
			break // the move would just swap who is overloaded
		}
		moves = append(moves, Move{From: donor, To: receiver, GPUs: 1})
		healthy[donor]--
		healthy[receiver]++
	}
	return moves
}
