package sim

import (
	"reflect"
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/rebalance"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// TestResizesPreemptAndComplete: on an event-driven loop a capacity shrink
// mid-trace preempts in-flight blocks cooperatively (no fault accounting),
// the shard keeps serving on the reduced set, a later grow restores it, and
// the oracle audits the whole run.
func TestResizesPreemptAndComplete(t *testing.T) {
	const n = 30
	shrinkAt := 16700 * time.Millisecond // inside a busy stretch for this seed
	growAt := 60 * time.Second
	donated := simgpu.MaskRange(0, 4)
	res := runSim(t, sched.NewFixedSP(2), faultTrace(n, 11), func(c *Config) {
		c.Resizes = []simgpu.Resize{
			{At: shrinkAt, NewMask: testTopo.AllMask().Without(donated)},
			{At: growAt, NewMask: testTopo.AllMask()},
		}
		c.DropLateFactor = 4.0
		c.CheckInvariants = true
	})
	if len(res.Outcomes) != n {
		t.Fatalf("%d outcomes for %d requests", len(res.Outcomes), n)
	}
	if res.Resizes != 2 {
		t.Fatalf("Resizes = %d, want 2", res.Resizes)
	}
	if res.RunsPreempted == 0 {
		t.Fatal("shrink landed on an idle cluster; the scenario exercises nothing")
	}
	if res.RunsAborted != 0 {
		t.Fatalf("RunsAborted = %d: planned resizes must not count as faults", res.RunsAborted)
	}
	for _, rec := range res.Runs {
		if rec.Preempted && rec.End != shrinkAt {
			t.Fatalf("preempted block ends at %v, want the shrink instant", rec.End)
		}
		if rec.Aborted && !rec.Preempted {
			t.Fatalf("aborted-but-not-preempted record with no fault configured: %+v", rec)
		}
		// Between shrink and grow, no block may touch the donated GPUs.
		if rec.Start >= shrinkAt && rec.Start < growAt && rec.Group.Overlaps(donated) {
			t.Fatalf("block at %v placed on donated GPUs (group %v)", rec.Start, rec.Group)
		}
	}
}

// TestResizeOnRoundBasedLoopWaitsForBoundary: the round-based scheduler stages
// pre-scheduled resizes to the next clean round boundary, so a planned shrink
// never preempts round-aligned work — the capacity still changes and the
// trace still completes.
func TestResizeOnRoundBasedLoopWaitsForBoundary(t *testing.T) {
	res := runSim(t, tetri(), faultTrace(30, 11), func(c *Config) {
		c.Resizes = []simgpu.Resize{
			{At: 16700 * time.Millisecond, NewMask: simgpu.MaskRange(0, 6)},
		}
		c.DropLateFactor = 4.0
		c.CheckInvariants = true
	})
	if res.Resizes != 1 {
		t.Fatalf("Resizes = %d, want 1", res.Resizes)
	}
	if res.RunsPreempted != 0 {
		t.Fatalf("RunsPreempted = %d: round-based staging must land on a clean boundary", res.RunsPreempted)
	}
}

// TestResizesInterleavedWithFaultsDeterministic: the double-execution check —
// resizes and faults interleaved on one loop must replay bit-identically, with
// the oracle attached both times.
func TestResizesInterleavedWithFaultsDeterministic(t *testing.T) {
	run := func() *Result {
		return runSim(t, tetri(), faultTrace(30, 11), func(c *Config) {
			c.Faults = []simgpu.Fault{{GPU: 1, FailAt: 20 * time.Second, RecoverAt: 50 * time.Second}}
			c.Resizes = []simgpu.Resize{
				{At: 16700 * time.Millisecond, NewMask: simgpu.MaskRange(0, 6)},
				{At: 70 * time.Second, NewMask: testTopo.AllMask()},
			}
			c.DropLateFactor = 4.0
			c.CheckInvariants = true
		})
	}
	a, b := run(), run()
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts diverged: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d diverged:\n%+v\n%+v", i, a.Outcomes[i], b.Outcomes[i])
		}
	}
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts diverged: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		if !reflect.DeepEqual(a.Runs[i], b.Runs[i]) {
			t.Fatalf("run record %d diverged:\n%+v\n%+v", i, a.Runs[i], b.Runs[i])
		}
	}
	if a.Resizes != b.Resizes || a.RunsPreempted != b.RunsPreempted ||
		a.RunsAborted != b.RunsAborted || a.Makespan != b.Makespan {
		t.Fatalf("counters diverged: %+v vs %+v", a, b)
	}
}

// elasticShards builds n shards sharing one full-size topology, each sliced
// to a `gpus`-GPU capacity prefix — the configuration rebalancing grows and
// shrinks.
func elasticShards(n, gpus int) []ShardSpec {
	specs := make([]ShardSpec, n)
	for i := range specs {
		topo := simgpu.H100x8()
		prof := costmodel.BuildProfile(costmodel.NewEstimator(testMdl, topo), costmodel.ProfilerConfig{})
		specs[i] = ShardSpec{
			Topo:      topo,
			Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
			Profile:   prof,
			Capacity:  simgpu.MaskRange(0, gpus),
		}
	}
	return specs
}

// skewedTrace sends every request to one resolution class so the router
// piles load onto whichever shard wins it — manufacturing the imbalance the
// rebalancer must respond to.
func skewedTrace(n int, seed uint64) []*workload.Request {
	mix, err := workload.CustomMix("hires",
		[]model.Resolution{model.Res1024}, []float64{1})
	if err != nil {
		panic(err)
	}
	return workload.Generate(workload.GeneratorConfig{
		Model:       testMdl,
		Mix:         mix,
		Arrivals:    workload.NewBurstyArrivals(60),
		SLO:         workload.NewSLOPolicy(1.5),
		NumRequests: n,
		Seed:        seed,
	})
}

// TestRunShardedRebalanceMovesGPUsDeterministically: under skewed load the
// elastic harness must move at least one GPU, keep every invariant (oracle
// attached per shard), and replay the exact same moves on re-execution.
func TestRunShardedRebalanceMovesGPUsDeterministically(t *testing.T) {
	run := func() *ShardedResult {
		res, err := RunSharded(ShardedConfig{
			Model:    testMdl,
			Shards:   elasticShards(2, 2),
			Requests: skewedTrace(40, 7),
			Rebalance: &RebalanceConfig{
				Policy: rebalance.New(rebalance.Config{
					MinGPUs:         1,
					DrainGapSeconds: 1,
					MaxMoves:        1,
				}),
				Interval: 2 * time.Second,
			},
			DropLateFactor:  4.0,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Rebalances) == 0 {
		t.Fatal("skewed load produced no rebalance moves")
	}
	if len(a.Rebalances) != len(b.Rebalances) {
		t.Fatalf("move counts diverged: %d vs %d", len(a.Rebalances), len(b.Rebalances))
	}
	for i := range a.Rebalances {
		if a.Rebalances[i] != b.Rebalances[i] {
			t.Fatalf("move %d diverged:\n%+v\n%+v", i, a.Rebalances[i], b.Rebalances[i])
		}
	}
	for i := range a.Shards {
		if len(a.Shards[i].Outcomes) != len(b.Shards[i].Outcomes) {
			t.Fatalf("shard %d outcome counts diverged", i)
		}
		for j := range a.Shards[i].Outcomes {
			if a.Shards[i].Outcomes[j] != b.Shards[i].Outcomes[j] {
				t.Fatalf("shard %d outcome %d diverged", i, j)
			}
		}
	}
	// Conservation across moves: every donation has a matching receipt.
	delta := map[int]int{}
	for _, ev := range a.Rebalances {
		delta[ev.From]--
		delta[ev.To]++
		if ev.Donated == 0 || ev.Received == 0 {
			t.Fatalf("move with empty slot masks: %+v", ev)
		}
	}
	total := 0
	for _, d := range delta {
		total += d
	}
	if total != 0 {
		t.Fatalf("GPU moves don't conserve capacity: net %+d", total)
	}
}

// TestRunShardedRebalanceOffByDefault: without a Rebalance config the sharded
// harness records no moves and shard capacities never change.
func TestRunShardedRebalanceOffByDefault(t *testing.T) {
	res, err := RunSharded(ShardedConfig{
		Model:           testMdl,
		Shards:          shardSpecs(2, 2),
		Requests:        smallMixTrace(20, 3, 30, 1.5),
		DropLateFactor:  4.0,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rebalances) != 0 {
		t.Fatalf("moves without a rebalance config: %v", res.Rebalances)
	}
}
