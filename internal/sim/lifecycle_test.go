package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tetriserve/internal/lifecycle"
)

// TestRunShardedLifecycleTimelines: every admitted request gets a complete
// finalized timeline with a router-minted trace id, retrievable through
// ShardedResult.Timeline, and the phase decomposition accounts for it.
func TestRunShardedLifecycleTimelines(t *testing.T) {
	res, err := RunSharded(ShardedConfig{
		Model:          testMdl,
		Shards:         shardSpecs(2, 2),
		Requests:       smallMixTrace(40, 9, 30, 1.5),
		Lifecycle:      true,
		DropLateFactor: 4.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lifecycles) != 2 {
		t.Fatalf("got %d recorders, want 2", len(res.Lifecycles))
	}
	finalized := 0
	for _, rec := range res.Lifecycles {
		finalized += rec.Finalized()
	}
	admitted := 0
	for _, s := range res.Shards {
		admitted += len(s.Outcomes)
	}
	if finalized != admitted {
		t.Fatalf("finalized %d timelines, want %d (one per admitted request)", finalized, admitted)
	}

	// Trace IDs are minted in admission order: t-1 .. t-<admitted>.
	seen := 0
	for i := 1; i <= admitted; i++ {
		key := "t-" + itoa(i)
		tl, ok := res.Timeline(key)
		if !ok {
			t.Fatalf("trace %s missing", key)
		}
		if !tl.Done {
			t.Errorf("trace %s not finalized", key)
		}
		// A complete timeline starts with admission and ends with a verdict.
		if tl.Spans[0].Kind != lifecycle.SpanAdmission {
			t.Errorf("trace %s starts with %s", key, tl.Spans[0].Kind)
		}
		last := tl.Spans[len(tl.Spans)-1].Kind
		if last != lifecycle.SpanFinish && last != lifecycle.SpanDrop {
			t.Errorf("trace %s ends with %s", key, last)
		}
		if !tl.Dropped {
			has := false
			for _, s := range tl.Spans {
				if s.Kind == lifecycle.SpanCompute {
					has = true
				}
			}
			if !has {
				t.Errorf("trace %s finished without a compute span", key)
			}
		}
		seen++
	}
	if seen != admitted {
		t.Fatalf("found %d timelines, want %d", seen, admitted)
	}

	// The per-class phase decomposition covers every finalized request.
	classed := 0
	for _, rec := range res.Lifecycles {
		for _, cp := range rec.Phases() {
			classed += cp.Requests
		}
	}
	if classed != admitted {
		t.Fatalf("phase decomposition covers %d, want %d", classed, admitted)
	}
}

// TestRunShardedSpanSinkDeterministic: two identical runs must stream
// byte-identical span logs — the acceptance bar for reproducible timelines.
func TestRunShardedSpanSinkDeterministic(t *testing.T) {
	run := func() *bytes.Buffer {
		var buf bytes.Buffer
		_, err := RunSharded(ShardedConfig{
			Model:             testMdl,
			Shards:            shardSpecs(2, 2),
			Requests:          smallMixTrace(40, 9, 30, 1.5),
			SpanSink:          &buf,
			LifecycleCapacity: 4, // far below admitted count: sink must still see everything
			DropLateFactor:    4.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := run(), run()
	if a.Len() == 0 {
		t.Fatal("span sink got no output")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("span logs diverged between identical runs")
	}
	// Every line is a standalone JSON timeline.
	for i, line := range strings.Split(strings.TrimSpace(a.String()), "\n") {
		var tl lifecycle.Timeline
		if err := json.Unmarshal([]byte(line), &tl); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if tl.TraceID == "" || tl.Shard == "" {
			t.Fatalf("line %d missing trace/shard: %s", i, line)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
