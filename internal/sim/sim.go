// Package sim is the discrete-event serving simulator: it replays a request
// trace against a scheduler and the execution engine on a virtual clock,
// producing per-request outcomes and run logs from which every evaluation
// metric (SAR, latency CDFs, degree timelines, utilization) derives.
//
// Round-based schedulers (TetriServe) are invoked at fixed τ boundaries;
// event-driven schedulers (xDiT, RSSP, EDF) are invoked on every arrival and
// completion. Both paths share the engine, so all policies pay identical
// execution physics.
package sim

import (
	"fmt"
	"sort"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/eventq"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// StepTrimmer is the hook cache-based acceleration (Nirvana, §6.2) plugs
// into: it may shrink a request's step count on arrival and observes
// completions to update its state.
type StepTrimmer interface {
	// OnArrival returns how many initial steps to skip for the prompt.
	OnArrival(p workload.Prompt, res model.Resolution, steps int, now time.Duration) int
	// OnComplete records a served request for future reuse.
	OnComplete(p workload.Prompt, res model.Resolution, now time.Duration)
}

// Config describes one simulation run.
type Config struct {
	Model     *model.Model
	Topo      *simgpu.Topology
	Scheduler sched.Scheduler
	Requests  []*workload.Request
	// Profile defaults to BuildProfile over the trace's resolutions.
	Profile *costmodel.Profile
	// Engine defaults to engine.DefaultConfig.
	Engine *engine.Config
	// Trimmer optionally shortens requests via caching.
	Trimmer StepTrimmer
	// DropLateFactor > 0 drops a request once now exceeds
	// arrival + SLO×factor without completion (the paper's timeout
	// semantics for the Figure 9 CDF). 0 disables dropping.
	DropLateFactor float64
	// Faults schedules fail-stop GPU failures (and optional recoveries)
	// injected during the run. In-flight blocks touching a failed GPU are
	// aborted with partial-step credit and their survivors requeued for the
	// next plan on the remaining devices.
	Faults []simgpu.Fault
	// NoRequeueOnFault drops a fault's surviving victims instead of
	// requeueing them — the recovery ablation the failure sweep compares
	// against.
	NoRequeueOnFault bool
	// MaxVirtualTime aborts runaway simulations (default 4 h virtual).
	MaxVirtualTime time.Duration
}

// Outcome is the fate of one request.
type Outcome struct {
	ID         workload.RequestID
	Res        model.Resolution
	Arrival    time.Duration
	Deadline   time.Duration
	Completion time.Duration // 0 when dropped
	Dropped    bool
	Met        bool
	Latency    time.Duration
	AvgDegree  float64
	Steps      int
	Skipped    int
}

// RunRecord logs one executed block for timeline metrics.
type RunRecord struct {
	Start, End time.Duration
	Degree     int
	Steps      int
	Requests   []workload.RequestID
	Res        model.Resolution
	Group      simgpu.Mask
	BestEffort bool
	Batched    bool
	// Aborted marks a block killed mid-flight by a GPU fault; End is the
	// fault time, not the planned completion.
	Aborted bool
}

// GPUs returns the device ids the block occupied.
func (r RunRecord) GPUs() []simgpu.GPUID { return r.Group.IDs() }

// Result aggregates a run.
type Result struct {
	SchedulerName  string
	NGPU           int
	Outcomes       []Outcome
	Runs           []RunRecord
	Makespan       time.Duration
	GPUBusySeconds float64
	PlanLatencies  []time.Duration
	PlanCalls      int
	Remaps         int
	Warmups        int
	// RunsAborted counts blocks killed by injected GPU faults.
	RunsAborted int
}

// event kinds.
const (
	evArrival = iota
	evRunDone
	evRoundTick
	evGPUFail
	evGPURecover
)

type simulator struct {
	cfg    Config
	clk    *clock.Virtual
	q      eventq.Queue
	eng    *engine.Engine
	states map[workload.RequestID]*sched.RequestState
	// pending preserves arrival order among unfinished, non-running
	// requests.
	pending  []*sched.RequestState
	inflight map[engine.RunID]*engine.Run
	// runEv maps in-flight runs to their completion events so GPU faults
	// can cancel the completions of blocks they abort.
	runEv map[engine.RunID]eventq.Handle
	done  map[workload.RequestID]bool
	res   *Result
	// left counts requests not yet finalized.
	left int
	// roundBased caches the scheduler mode.
	roundBased bool
	// eager additionally plans on arrivals for round-based schedulers.
	eager     bool
	tau       time.Duration
	schedOver time.Duration
}

// Run executes the simulation to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	s, err := newSimulator(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.loop(); err != nil {
		return nil, err
	}
	return s.res, nil
}

// newSimulator validates the configuration and builds a ready-to-run
// simulator (separated from Run so tests can inspect internal state after
// the loop drains).
func newSimulator(cfg Config) (*simulator, error) {
	if cfg.Model == nil || cfg.Topo == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: Model, Topo and Scheduler are required")
	}
	if len(cfg.Requests) == 0 {
		return nil, fmt.Errorf("sim: empty request trace")
	}
	if cfg.Profile == nil {
		cfg.Profile = costmodel.BuildProfile(
			costmodel.NewEstimator(cfg.Model, cfg.Topo), costmodel.ProfilerConfig{})
	}
	engCfg := engine.DefaultConfig()
	if cfg.Engine != nil {
		engCfg = *cfg.Engine
	}
	if cfg.MaxVirtualTime <= 0 {
		cfg.MaxVirtualTime = 4 * time.Hour
	}

	for _, f := range cfg.Faults {
		if err := f.Validate(cfg.Topo); err != nil {
			return nil, err
		}
	}

	s := &simulator{
		cfg:      cfg,
		clk:      clock.NewVirtual(),
		eng:      engine.New(cfg.Model, cfg.Topo, cfg.Profile, engCfg),
		states:   make(map[workload.RequestID]*sched.RequestState),
		inflight: make(map[engine.RunID]*engine.Run),
		runEv:    make(map[engine.RunID]eventq.Handle),
		done:     make(map[workload.RequestID]bool),
		res: &Result{
			SchedulerName: cfg.Scheduler.Name(),
			NGPU:          cfg.Topo.N,
		},
		left:       len(cfg.Requests),
		roundBased: cfg.Scheduler.RoundDuration() > 0,
		tau:        cfg.Scheduler.RoundDuration(),
	}
	if o, ok := cfg.Scheduler.(interface{ Overhead() time.Duration }); ok {
		s.schedOver = o.Overhead()
	}
	if e, ok := cfg.Scheduler.(interface{ EagerAdmission() bool }); ok {
		s.eager = e.EagerAdmission()
	}
	for _, r := range cfg.Requests {
		s.q.Push(r.Arrival, evArrival, r)
	}
	for _, f := range cfg.Faults {
		s.q.Push(f.FailAt, evGPUFail, simgpu.MaskOf(f.GPU))
		if f.RecoverAt > 0 {
			s.q.Push(f.RecoverAt, evGPURecover, simgpu.MaskOf(f.GPU))
		}
	}
	if s.roundBased {
		s.q.Push(0, evRoundTick, nil)
	}
	return s, nil
}

func (s *simulator) loop() error {
	for s.left > 0 {
		ev := s.q.Pop()
		if ev == nil {
			return fmt.Errorf("sim: %d requests unfinished but no pending events (deadlock)", s.left)
		}
		if ev.At > s.cfg.MaxVirtualTime {
			return fmt.Errorf("sim: exceeded max virtual time %s with %d requests left", s.cfg.MaxVirtualTime, s.left)
		}
		s.clk.Advance(ev.At)
		now := ev.At
		switch ev.Kind {
		case evArrival:
			s.onArrival(now, ev.Payload.(*workload.Request))
		case evRunDone:
			if err := s.onRunDone(now, ev.Payload.(*engine.Run)); err != nil {
				return err
			}
		case evRoundTick:
			if err := s.onRoundTick(now); err != nil {
				return err
			}
		case evGPUFail:
			s.onGPUFail(now, ev.Payload.(simgpu.Mask))
		case evGPURecover:
			s.onGPURecover(now, ev.Payload.(simgpu.Mask))
		}
	}
	s.res.Makespan = s.clk.Now()
	s.res.GPUBusySeconds = s.eng.GPUBusySeconds()
	s.res.Remaps = s.eng.Remaps()
	s.res.Warmups = s.eng.Warmups()
	s.res.RunsAborted = s.eng.RunsAborted()
	return nil
}

func (s *simulator) onArrival(now time.Duration, r *workload.Request) {
	steps := r.Steps
	if s.cfg.Trimmer != nil {
		skip := s.cfg.Trimmer.OnArrival(r.Prompt, r.Res, steps, now)
		if skip < 0 {
			skip = 0
		}
		if skip >= steps {
			skip = steps - 1 // at least one step always runs
		}
		r.SkippedSteps = skip
		steps -= skip
	}
	st := &sched.RequestState{
		Req:           r,
		Remaining:     steps,
		StepsByDegree: make(map[int]int),
	}
	s.states[r.ID] = st
	s.pending = append(s.pending, st)
	if !s.roundBased || (s.eager && s.eng.Free() != 0) {
		s.plan(now)
	}
}

func (s *simulator) onRunDone(now time.Duration, run *engine.Run) error {
	if err := s.eng.Finish(run); err != nil {
		return err
	}
	delete(s.inflight, run.ID)
	delete(s.runEv, run.ID)
	rec := RunRecord{
		Start:      run.Start,
		End:        run.End,
		Degree:     run.Degree,
		Steps:      run.Asg.Steps,
		Requests:   append([]workload.RequestID(nil), run.Asg.Requests...),
		Res:        run.Res,
		Group:      run.Asg.Group,
		BestEffort: run.Asg.BestEffort,
		Batched:    run.Batched,
	}
	s.res.Runs = append(s.res.Runs, rec)

	for id, steps := range run.Steps {
		st := s.states[id]
		st.Running = false
		st.Started = true
		st.Remaining -= steps
		st.LastGroup = run.Asg.Group
		st.StepsByDegree[run.Degree] += steps
		if st.Remaining <= 0 {
			s.finish(now, st)
		} else {
			if s.cfg.DropLateFactor > 0 && s.pastDrop(now, st) {
				s.drop(now, st)
			} else {
				s.pending = append(s.pending, st)
			}
		}
	}
	if !s.roundBased {
		s.plan(now)
	}
	return nil
}

func (s *simulator) onRoundTick(now time.Duration) error {
	// If a round-aligned block is still running (noise overrun), defer the
	// tick until it ends so every round starts from a clean boundary.
	latest := time.Duration(-1)
	for _, run := range s.runningAligned() {
		if run.End > latest {
			latest = run.End
		}
	}
	if latest > now {
		s.q.Push(latest+time.Microsecond, evRoundTick, nil)
		return nil
	}
	s.plan(now)
	if s.left > 0 {
		s.q.Push(now+s.tau, evRoundTick, nil)
	}
	return nil
}

func (s *simulator) runningAligned() []*engine.Run {
	var out []*engine.Run
	for _, run := range s.inflight {
		if run.Asg.RoundAligned {
			out = append(out, run)
		}
	}
	return out
}

// plan drops expired requests, then invokes the scheduler and starts the
// returned assignments.
func (s *simulator) plan(now time.Duration) {
	if s.cfg.DropLateFactor > 0 {
		kept := s.pending[:0]
		for _, st := range s.pending {
			if !st.Running && s.pastDrop(now, st) {
				s.drop(now, st)
			} else {
				kept = append(kept, st)
			}
		}
		for i := len(kept); i < len(s.pending); i++ {
			s.pending[i] = nil
		}
		s.pending = kept
	}
	ctx := &sched.PlanContext{
		Now:     now,
		Free:    s.eng.Free(),
		Pending: s.snapshotPending(),
		Running: s.snapshotRunning(),
		Profile: s.cfg.Profile,
		Topo:    s.cfg.Topo,
	}
	if len(ctx.Pending) == 0 {
		return
	}
	start := time.Now()
	plan := s.cfg.Scheduler.Plan(ctx)
	s.res.PlanLatencies = append(s.res.PlanLatencies, time.Since(start))
	s.res.PlanCalls++
	if err := sched.ValidatePlan(ctx, plan); err != nil {
		panic(fmt.Sprintf("sim: scheduler %q produced invalid plan: %v", s.cfg.Scheduler.Name(), err))
	}
	for _, asg := range plan {
		run, err := s.eng.Start(now, asg, s.states, s.dispatchDelay())
		if err != nil {
			panic(fmt.Sprintf("sim: engine rejected validated assignment: %v", err))
		}
		for _, id := range asg.Requests {
			st := s.states[id]
			st.Running = true
			s.removePending(id)
		}
		s.inflight[run.ID] = run
		s.runEv[run.ID] = s.q.Push(run.End, evRunDone, run)
	}
}

// onGPUFail injects a fail-stop fault: the engine aborts intersecting
// blocks, credits completed steps, and this layer requeues the surviving
// members so the next plan re-packs them on the remaining GPUs — paying
// latent re-transfer and group re-warm-up per the §5 cost model. With
// NoRequeueOnFault the victims are dropped instead (the ablation).
func (s *simulator) onGPUFail(now time.Duration, mask simgpu.Mask) {
	failures := s.eng.FailGPUs(now, mask)
	for _, f := range failures {
		if h, ok := s.runEv[f.Run.ID]; ok {
			s.q.Cancel(h)
			delete(s.runEv, f.Run.ID)
		}
		delete(s.inflight, f.Run.ID)
		s.res.Runs = append(s.res.Runs, RunRecord{
			Start:      f.Run.Start,
			End:        now,
			Degree:     f.Run.Degree,
			Steps:      f.Run.Asg.Steps,
			Requests:   append([]workload.RequestID(nil), f.Run.Asg.Requests...),
			Res:        f.Run.Res,
			Group:      f.Run.Asg.Group,
			BestEffort: f.Run.Asg.BestEffort,
			Batched:    f.Run.Batched,
			Aborted:    true,
		})
		for id, done := range f.StepsDone {
			st := s.states[id]
			st.Running = false
			if done > 0 {
				st.Started = true
				st.Remaining -= done
				st.StepsByDegree[f.Run.Degree] += done
			}
			switch {
			case st.Remaining <= 0:
				// Every step finished before the fault; only the decode
				// remained, and the VAE runs outside the SP group.
				s.finish(now, st)
			case s.cfg.NoRequeueOnFault:
				s.drop(now, st)
			case s.cfg.DropLateFactor > 0 && s.pastDrop(now, st):
				s.drop(now, st)
			default:
				s.pending = append(s.pending, st)
			}
		}
	}
	// Placement preservation must not steer survivors back onto dead GPUs.
	for _, st := range s.states {
		st.LastGroup = st.LastGroup.Without(mask)
	}
	if !s.roundBased {
		s.plan(now)
	}
}

// onGPURecover returns failed GPUs to the pool; round-based schedulers see
// the capacity at the next tick, event-driven ones replan immediately.
func (s *simulator) onGPURecover(now time.Duration, mask simgpu.Mask) {
	if s.eng.RecoverGPUs(mask) != 0 && !s.roundBased {
		s.plan(now)
	}
}

// dispatchDelay is the control-plane latency charged per block.
// Round-based scheduling pays its decision loop (already budgeted in the
// scheduler's window); event-driven baselines dispatch directly.
func (s *simulator) dispatchDelay() time.Duration {
	if s.roundBased {
		return s.schedOver
	}
	return 0
}

func (s *simulator) snapshotPending() []*sched.RequestState {
	out := make([]*sched.RequestState, 0, len(s.pending))
	for _, st := range s.pending {
		if !st.Running && st.Remaining > 0 && !s.done[st.Req.ID] {
			out = append(out, st)
		}
	}
	// Arrival order is part of the FIFO baselines' semantics; re-queued
	// requests must not jump ahead of earlier arrivals.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Req.Arrival != out[j].Req.Arrival {
			return out[i].Req.Arrival < out[j].Req.Arrival
		}
		return out[i].Req.ID < out[j].Req.ID
	})
	return out
}

func (s *simulator) snapshotRunning() []*sched.RequestState {
	var out []*sched.RequestState
	for _, st := range s.states {
		if st.Running {
			out = append(out, st)
		}
	}
	return out
}

func (s *simulator) removePending(id workload.RequestID) {
	for i, st := range s.pending {
		if st.Req.ID == id {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

func (s *simulator) pastDrop(now time.Duration, st *sched.RequestState) bool {
	limit := st.Req.Arrival + time.Duration(float64(st.Req.SLO)*s.cfg.DropLateFactor)
	return now > limit
}

func (s *simulator) finish(now time.Duration, st *sched.RequestState) {
	r := st.Req
	completion := s.eng.Decode(now, r.Res)
	s.eng.ReleaseLatent(r.ID)
	// Timeout semantics: a result delivered past DropLateFactor × SLO has
	// been abandoned by the client and counts as dropped (Figure 9's
	// "dropped/timeout" population).
	if s.cfg.DropLateFactor > 0 &&
		completion > r.Arrival+time.Duration(float64(r.SLO)*s.cfg.DropLateFactor) {
		s.res.Outcomes = append(s.res.Outcomes, Outcome{
			ID:       r.ID,
			Res:      r.Res,
			Arrival:  r.Arrival,
			Deadline: r.Deadline(),
			Dropped:  true,
			Steps:    r.Steps - r.SkippedSteps,
			Skipped:  r.SkippedSteps,
		})
		s.done[r.ID] = true
		s.left--
		delete(s.states, r.ID)
		return
	}
	out := Outcome{
		ID:         r.ID,
		Res:        r.Res,
		Arrival:    r.Arrival,
		Deadline:   r.Deadline(),
		Completion: completion,
		Met:        completion <= r.Deadline(),
		Latency:    completion - r.Arrival,
		AvgDegree:  st.AvgDegree(),
		Steps:      r.Steps - r.SkippedSteps,
		Skipped:    r.SkippedSteps,
	}
	s.res.Outcomes = append(s.res.Outcomes, out)
	s.done[r.ID] = true
	s.left--
	delete(s.states, r.ID)
	if s.cfg.Trimmer != nil {
		s.cfg.Trimmer.OnComplete(r.Prompt, r.Res, completion)
	}
}

func (s *simulator) drop(now time.Duration, st *sched.RequestState) {
	r := st.Req
	s.eng.ReleaseLatent(r.ID)
	s.res.Outcomes = append(s.res.Outcomes, Outcome{
		ID:       r.ID,
		Res:      r.Res,
		Arrival:  r.Arrival,
		Deadline: r.Deadline(),
		Dropped:  true,
		Steps:    r.Steps - r.SkippedSteps,
		Skipped:  r.SkippedSteps,
	})
	s.done[r.ID] = true
	s.left--
	delete(s.states, r.ID)
}
