// Package sim is the discrete-event serving simulator: it replays a request
// trace against a scheduler and the execution engine on a virtual clock,
// producing per-request outcomes and run logs from which every evaluation
// metric (SAR, latency CDFs, degree timelines, utilization) derives.
//
// The scheduling loop itself — admission, τ round ticks, plan → dispatch,
// fault requeue, drop expiry, finish accounting — lives in internal/control
// and is shared verbatim with the online driver (internal/server). This
// package is only the discrete-event harness around it: it pre-schedules the
// trace and fault script on the loop's event queue, then advances a virtual
// clock to each event and dispatches it until every request is finalized.
//
// Round-based schedulers (TetriServe) are invoked at fixed τ boundaries;
// event-driven schedulers (xDiT, RSSP, EDF) are invoked on every arrival and
// completion. Both paths share the engine, so all policies pay identical
// execution physics.
package sim

import (
	"fmt"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/control"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/invariant"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// StepTrimmer is the cache-acceleration hook; see control.StepTrimmer.
type StepTrimmer = control.StepTrimmer

// Outcome is the fate of one request; see control.Outcome.
type Outcome = control.Outcome

// RunRecord logs one executed block; see control.RunRecord.
type RunRecord = control.RunRecord

// Result aggregates a run; see control.Result.
type Result = control.Result

// Config describes one simulation run.
type Config struct {
	Model     *model.Model
	Topo      *simgpu.Topology
	Scheduler sched.Scheduler
	Requests  []*workload.Request
	// Profile defaults to BuildProfile over the trace's resolutions.
	Profile *costmodel.Profile
	// Engine defaults to engine.DefaultConfig.
	Engine *engine.Config
	// Trimmer optionally shortens requests via caching.
	Trimmer StepTrimmer
	// DropLateFactor > 0 drops a request once now exceeds
	// arrival + SLO×factor without completion (the paper's timeout
	// semantics for the Figure 9 CDF). 0 disables dropping.
	DropLateFactor float64
	// Faults schedules fail-stop GPU failures (and optional recoveries)
	// injected during the run. In-flight blocks touching a failed GPU are
	// aborted with partial-step credit and their survivors requeued for the
	// next plan on the remaining devices.
	Faults []simgpu.Fault
	// NoRequeueOnFault drops a fault's surviving victims instead of
	// requeueing them — the recovery ablation the failure sweep compares
	// against.
	NoRequeueOnFault bool
	// Resizes schedules planned capacity changes (elastic shard grow or
	// shrink). Each takes effect at the loop's next round boundary after its
	// At: in-flight blocks on departing GPUs are preempted with full step
	// credit and requeued (latent handoff), never dropped as fault victims.
	Resizes []simgpu.Resize
	// Hooks are optional observer callbacks (telemetry planes, custom
	// probes) composed onto the control loop before the invariant oracle.
	Hooks control.Hooks
	// CheckInvariants attaches the internal/invariant oracle to the run:
	// every plan and execution transition is audited against the paper's
	// scheduling invariants, panicking on the first violation (the simulator
	// always runs the control loop in Strict mode) and failing the run if
	// the end-of-run audit finds bookkeeping drift.
	CheckInvariants bool
	// MaxVirtualTime aborts runaway simulations (default 4 h virtual).
	MaxVirtualTime time.Duration
}

type simulator struct {
	cfg    Config
	clk    *clock.Virtual
	ctl    *control.Loop
	oracle *invariant.Oracle
}

// Run executes the simulation to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	s, err := newSimulator(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.loop(); err != nil {
		return nil, err
	}
	res := s.ctl.Finalize()
	if s.oracle != nil {
		if err := s.oracle.VerifyResult(res); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return res, nil
}

// newSimulator validates the configuration and builds a ready-to-run
// simulator (separated from Run so tests can inspect internal state after
// the loop drains).
func newSimulator(cfg Config) (*simulator, error) {
	if cfg.Model == nil || cfg.Topo == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: Model, Topo and Scheduler are required")
	}
	if len(cfg.Requests) == 0 {
		return nil, fmt.Errorf("sim: empty request trace")
	}
	if cfg.Profile == nil {
		cfg.Profile = costmodel.BuildProfile(
			costmodel.NewEstimator(cfg.Model, cfg.Topo), costmodel.ProfilerConfig{})
	}
	engCfg := engine.DefaultConfig()
	if cfg.Engine != nil {
		engCfg = *cfg.Engine
	}
	if cfg.MaxVirtualTime <= 0 {
		cfg.MaxVirtualTime = 4 * time.Hour
	}

	for _, f := range cfg.Faults {
		if err := f.Validate(cfg.Topo); err != nil {
			return nil, err
		}
	}
	for _, r := range cfg.Resizes {
		if err := r.Validate(cfg.Topo); err != nil {
			return nil, err
		}
	}

	clk := clock.NewVirtual()
	ctlCfg := control.Config{
		Model:            cfg.Model,
		Topo:             cfg.Topo,
		Scheduler:        cfg.Scheduler,
		Profile:          cfg.Profile,
		Engine:           engCfg,
		Trimmer:          cfg.Trimmer,
		DropLateFactor:   cfg.DropLateFactor,
		NoRequeueOnFault: cfg.NoRequeueOnFault,
		// The simulator is the oracle harness: a scheduler bug must abort
		// the run (panic), not leak into experiment tables.
		Strict: true,
		Hooks:  cfg.Hooks,
		// The trace length bounds every accumulator: sizing them up front
		// keeps the event loop free of growth reallocations. Round-based
		// schedulers split a request across many short blocks (one per
		// surviving round), so the run ledger needs a much larger factor
		// than the request count suggests; 8× covers observed mixed-SLO
		// traces (≈6 runs and ≈5 rounds per request) with headroom, and a
		// miss only costs one growth step.
		Preallocate: control.Prealloc{
			Requests: len(cfg.Requests),
			Runs:     8 * len(cfg.Requests),
			Rounds:   8 * len(cfg.Requests),
		},
	}
	var oracle *invariant.Oracle
	if cfg.CheckInvariants {
		oracle = invariant.Attach(&ctlCfg)
	}
	ctl, err := control.New(ctlCfg, clk)
	if err != nil {
		return nil, err
	}
	for _, r := range cfg.Requests {
		ctl.ScheduleArrival(r)
	}
	for _, f := range cfg.Faults {
		ctl.ScheduleFault(f)
	}
	for _, r := range cfg.Resizes {
		ctl.ScheduleResize(r)
	}
	ctl.Begin()
	return &simulator{cfg: cfg, clk: clk, ctl: ctl, oracle: oracle}, nil
}

// loop drains the event queue under the virtual clock: advance to the next
// event's timestamp, dispatch it, repeat until every request is finalized.
func (s *simulator) loop() error {
	for s.ctl.Unfinished() > 0 {
		ev := s.ctl.PopEvent()
		if ev == nil {
			return fmt.Errorf("sim: %d requests unfinished but no pending events (deadlock)", s.ctl.Unfinished())
		}
		if ev.At > s.cfg.MaxVirtualTime {
			return fmt.Errorf("sim: exceeded max virtual time %s with %d requests left", s.cfg.MaxVirtualTime, s.ctl.Unfinished())
		}
		s.clk.Advance(ev.At)
		if err := s.ctl.Dispatch(ev); err != nil {
			return err
		}
	}
	return nil
}
