package sim_test

import (
	"testing"
	"time"

	"tetriserve/internal/cache"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/metrics"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// TestSD3OnA40EndToEnd exercises the second testbed end to end: SD3 on the
// PCIe-limited 4xA40 node, TetriServe vs the best fixed degree.
func TestSD3OnA40EndToEnd(t *testing.T) {
	mdl := model.SD3()
	topo := simgpu.A40x4()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	gen := func() []*workload.Request {
		return workload.Generate(workload.GeneratorConfig{
			Model: mdl, Mix: workload.UniformMix(),
			SLO: workload.NewSLOPolicy(1.3), NumRequests: 120, Seed: 21,
		})
	}
	run := func(sc sched.Scheduler) float64 {
		res, err := sim.Run(sim.Config{
			Model: mdl, Topo: topo, Scheduler: sc,
			Requests: gen(), Profile: prof, DropLateFactor: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.SAR(res)
	}
	tetri := run(core.NewScheduler(prof, topo, core.DefaultConfig()))
	best := 0.0
	for _, k := range topo.Degrees() {
		if s := run(sched.NewFixedSP(k)); s > best {
			best = s
		}
	}
	if tetri < best {
		t.Fatalf("TetriServe %.2f below best fixed %.2f on SD3/A40", tetri, best)
	}
}

// TestSchedulerInvariantsAcrossPolicies runs every policy on the same trace
// and checks cross-cutting invariants.
func TestSchedulerInvariantsAcrossPolicies(t *testing.T) {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	policies := []sched.Scheduler{
		core.NewScheduler(prof, topo, core.DefaultConfig()),
		sched.NewFixedSP(1), sched.NewFixedSP(2), sched.NewFixedSP(4), sched.NewFixedSP(8),
		sched.NewRSSP(8), sched.NewEDF(), sched.NewThroughput(),
	}
	for _, sc := range policies {
		reqs := workload.Generate(workload.GeneratorConfig{
			Model: mdl, NumRequests: 60, Seed: 33, SLO: workload.NewSLOPolicy(1.2),
		})
		res, err := sim.Run(sim.Config{
			Model: mdl, Topo: topo, Scheduler: sc, Requests: reqs, Profile: prof,
		})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if len(res.Outcomes) != 60 {
			t.Fatalf("%s: lost requests", sc.Name())
		}
		// Every block in the log uses a power-of-two group within the node.
		for _, rec := range res.Runs {
			k := rec.Group.Count()
			if k == 0 || k&(k-1) != 0 {
				t.Fatalf("%s: block group %v not a power of two", sc.Name(), rec.Group)
			}
			if rec.Degree != k {
				t.Fatalf("%s: degree field %d disagrees with group %v", sc.Name(), rec.Degree, rec.Group)
			}
		}
		// Latencies bounded below by the fastest possible service time.
		for _, o := range res.Outcomes {
			tmin, _ := prof.MinStepTime(o.Res)
			if !o.Dropped && o.Latency < time.Duration(o.Steps)*tmin/2 {
				t.Fatalf("%s: request %d finished impossibly fast (%v)", sc.Name(), o.ID, o.Latency)
			}
		}
	}
}

// TestBurstyRunDeterministic: the bursty arrival process must replay
// identically under one seed through the full stack.
func TestBurstyRunDeterministic(t *testing.T) {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	mk := func() *sim.Result {
		reqs := workload.Generate(workload.GeneratorConfig{
			Model: mdl, Arrivals: workload.NewBurstyArrivals(12),
			NumRequests: 50, Seed: 77, SLO: workload.NewSLOPolicy(1.5),
		})
		res, err := sim.Run(sim.Config{
			Model: mdl, Topo: topo,
			Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
			Requests:  reqs, Profile: prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if metrics.SAR(a) != metrics.SAR(b) || a.Makespan != b.Makespan {
		t.Fatal("bursty replay diverged under identical seeds")
	}
}

// TestCacheWarmupLifecycle drives the Nirvana cache through the simulator:
// a second pass over the same prompts must hit what the first pass
// inserted.
func TestCacheWarmupLifecycle(t *testing.T) {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	c := cache.New(cache.DefaultConfig())
	trimmer := &cache.Trimmer{C: c}

	reqs := workload.Generate(workload.GeneratorConfig{
		Model: mdl, NumRequests: 40, Seed: 55, SLO: workload.NewSLOPolicy(1.5),
	})
	run := func(rs []*workload.Request) {
		cloned := make([]*workload.Request, len(rs))
		for i, r := range rs {
			cp := *r
			cloned[i] = &cp
		}
		if _, err := sim.Run(sim.Config{
			Model: mdl, Topo: topo,
			Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
			Requests:  cloned, Profile: prof, Trimmer: trimmer,
		}); err != nil {
			t.Fatal(err)
		}
	}
	run(reqs)
	firstLen := c.Len()
	if firstLen == 0 {
		t.Fatal("first pass inserted nothing")
	}
	hitsBefore := c.HitRate()
	run(reqs) // identical prompts: everything should hit now
	if c.HitRate() <= hitsBefore {
		t.Fatalf("second pass hit rate %.2f did not improve over %.2f", c.HitRate(), hitsBefore)
	}
}

// TestHomogeneous2048Packing: two simultaneous all-cluster requests force
// the round scheduler to interleave; both must finish, and the second must
// not wait for the first to run all 50 steps (that would be pure FIFO).
func TestHomogeneous2048Packing(t *testing.T) {
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	mk := func(id int, arrival time.Duration) *workload.Request {
		return &workload.Request{
			ID: workload.RequestID(id), Res: model.Res2048, Steps: 50,
			Arrival: arrival, SLO: 12 * time.Second,
		}
	}
	res, err := sim.Run(sim.Config{
		Model: mdl, Topo: topo,
		Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
		Requests:  []*workload.Request{mk(0, 0), mk(1, 100*time.Millisecond)},
		Profile:   prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if !o.Met {
			t.Fatalf("request %d missed a 12s deadline: %v", o.ID, o.Latency)
		}
	}
	// Both ran with substantial parallelism.
	for _, o := range res.Outcomes {
		if o.AvgDegree < 2 {
			t.Fatalf("request %d averaged degree %.1f; expected interleaved multi-GPU service", o.ID, o.AvgDegree)
		}
	}
}
