package sim

import (
	"testing"
	"time"

	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// faultTrace is a denser trace than genTrace so staggered faults reliably
// land on in-flight blocks.
func faultTrace(n int, seed uint64) []*workload.Request {
	return workload.Generate(workload.GeneratorConfig{
		Model:       testMdl,
		Mix:         workload.UniformMix(),
		Arrivals:    workload.PoissonArrivals{PerMinute: 30},
		SLO:         workload.NewSLOPolicy(1.5),
		NumRequests: n,
		Seed:        seed,
	})
}

// TestMidRunFaultRequeuesAndCompletes is the tentpole's core scenario: a
// fail-stop fault mid-trace aborts in-flight blocks, the survivors are
// requeued with their completed steps credited, and the simulation finishes
// on the remaining GPUs without panicking or deadlocking.
func TestMidRunFaultRequeuesAndCompletes(t *testing.T) {
	const n = 30
	// 16.7s lands inside a deg-4 block on {0,1,2,3} for this seed, so the
	// GPU 1 fault is guaranteed to abort in-flight work.
	failAt := 16700 * time.Millisecond
	failAt2 := 45 * time.Second
	res := runSim(t, tetri(), faultTrace(n, 11), func(c *Config) {
		c.Faults = []simgpu.Fault{{GPU: 1, FailAt: failAt}, {GPU: 5, FailAt: failAt2}}
		c.DropLateFactor = 4.0
	})
	if len(res.Outcomes) != n {
		t.Fatalf("%d outcomes for %d requests", len(res.Outcomes), n)
	}
	if res.RunsAborted == 0 {
		t.Fatal("faults landed on an idle cluster; the scenario exercises nothing")
	}

	var aborted []RunRecord
	for _, rec := range res.Runs {
		if rec.Aborted {
			aborted = append(aborted, rec)
			if rec.End != failAt && rec.End != failAt2 {
				t.Fatalf("aborted block ends at %v, want a fault instant", rec.End)
			}
			continue
		}
		// No block scheduled after a fault may touch the dead GPU.
		if rec.Start >= failAt && rec.Group.Has(1) {
			t.Fatalf("block at %v placed on failed GPU 1 (group %v)", rec.Start, rec.Group)
		}
		if rec.Start >= failAt2 && rec.Group.Has(5) {
			t.Fatalf("block at %v placed on failed GPU 5 (group %v)", rec.Start, rec.Group)
		}
	}
	if len(aborted) != res.RunsAborted {
		t.Fatalf("%d aborted run records, counter says %d", len(aborted), res.RunsAborted)
	}

	// Requeue + completion: at least one victim of an aborted block must
	// finish (not drop) after the fault, on the surviving GPUs.
	outcome := map[workload.RequestID]Outcome{}
	for _, o := range res.Outcomes {
		outcome[o.ID] = o
	}
	recovered := 0
	for _, rec := range aborted {
		for _, id := range rec.Requests {
			o, ok := outcome[id]
			if !ok {
				t.Fatalf("aborted request %d has no outcome", id)
			}
			if !o.Dropped && o.Completion > rec.End {
				recovered++
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no aborted request was requeued to completion on the survivors")
	}
}

// TestFaultRecoveryRestoresCapacity: a GPU that recovers mid-trace is used
// again by later blocks.
func TestFaultRecoveryRestoresCapacity(t *testing.T) {
	const n = 30
	res := runSim(t, tetri(), faultTrace(n, 11), func(c *Config) {
		c.Faults = []simgpu.Fault{{GPU: 1, FailAt: 10 * time.Second, RecoverAt: 30 * time.Second}}
		c.DropLateFactor = 4.0
	})
	if len(res.Outcomes) != n {
		t.Fatalf("%d outcomes for %d requests", len(res.Outcomes), n)
	}
	reused := false
	for _, rec := range res.Runs {
		if rec.Start >= 10*time.Second && rec.Start < 30*time.Second && !rec.Aborted && rec.Group.Has(1) {
			t.Fatalf("block at %v used GPU 1 while it was down", rec.Start)
		}
		if rec.Start >= 30*time.Second && rec.Group.Has(1) {
			reused = true
		}
	}
	if !reused {
		t.Fatal("recovered GPU 1 never used again")
	}
}

// TestNoRequeueAblationDropsVictims: with the requeue disabled every
// unfinished victim of a fault is dropped, so the ablation can only do worse.
func TestNoRequeueAblationDropsVictims(t *testing.T) {
	trace := func() []*workload.Request { return faultTrace(30, 11) }
	faults := []simgpu.Fault{{GPU: 1, FailAt: 20 * time.Second}, {GPU: 5, FailAt: 40 * time.Second}}
	run := func(noRequeue bool) *Result {
		return runSim(t, tetri(), trace(), func(c *Config) {
			c.Faults = append([]simgpu.Fault(nil), faults...)
			c.DropLateFactor = 4.0
			c.NoRequeueOnFault = noRequeue
		})
	}
	sar := func(r *Result) float64 {
		met := 0
		for _, o := range r.Outcomes {
			if o.Met {
				met++
			}
		}
		return float64(met) / float64(len(r.Outcomes))
	}
	with := run(false)
	without := run(true)
	dropped := 0
	for _, o := range without.Outcomes {
		if o.Dropped {
			dropped++
		}
	}
	if without.RunsAborted > 0 && dropped == 0 {
		t.Fatal("no-requeue ablation aborted runs but dropped nobody")
	}
	if sar(without) > sar(with) {
		t.Fatalf("ablation SAR %.3f beats requeue SAR %.3f", sar(without), sar(with))
	}
}

// TestStatesMapDrained is the leak regression: every request — finished,
// timeout-dropped, or fault-dropped — must leave s.states when finalized, or
// a long-running simulation grows without bound.
func TestStatesMapDrained(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"clean", func(c *Config) {}},
		{"with drops", func(c *Config) { c.DropLateFactor = 1.0 }},
		{"with faults", func(c *Config) {
			c.DropLateFactor = 4.0
			c.Faults = []simgpu.Fault{{GPU: 1, FailAt: 20 * time.Second}}
		}},
	} {
		cfg := Config{
			Model:     testMdl,
			Topo:      testTopo,
			Scheduler: tetri(),
			Requests:  faultTrace(30, 13),
			Profile:   testProf,
		}
		tc.mutate(&cfg)
		s, err := newSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.loop(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if n := s.ctl.StateCount(); n != 0 {
			t.Fatalf("%s: %d request states leaked after the loop drained", tc.name, n)
		}
	}
}
