package sim

import (
	"fmt"
	"io"
	"time"

	"tetriserve/internal/clock"
	"tetriserve/internal/control"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/invariant"
	"tetriserve/internal/lifecycle"
	"tetriserve/internal/model"
	"tetriserve/internal/router"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// ShardSpec describes one independent control-plane pool in a sharded
// simulation: its own topology, scheduler, and (optionally) cost profile —
// the per-class pools the admission router balances across.
type ShardSpec struct {
	Name      string
	Topo      *simgpu.Topology
	Scheduler sched.Scheduler
	// Profile defaults to BuildProfile over the standard resolutions for
	// this shard's topology.
	Profile *costmodel.Profile
	// Engine overrides execution physics for this shard.
	Engine *engine.Config
	// Capacity restricts the shard to a subset of its topology's GPUs at
	// start (elastic serving: build shards on a common full-size topology
	// and slice it, so rebalancing can grow a shard without changing its
	// profile). Zero means the full topology.
	Capacity simgpu.Mask
}

// ShardedConfig describes a router-over-shards simulation: the same request
// trace the single-loop simulator consumes, fronted by the admission router
// instead of being pre-scheduled onto one loop.
type ShardedConfig struct {
	Model  *model.Model
	Shards []ShardSpec
	// Requests must be sorted by Arrival (workload.Generate's output order).
	Requests []*workload.Request
	// Tenant maps a request to its admission tenant; nil puts everyone in
	// one tenant ("", weight 1).
	Tenant func(r *workload.Request) string
	// Router tunes admission (weights, fairness window, overload factor).
	// Shards and Observer are wired by the harness.
	Router router.Config
	// Rebalance enables elastic GPU rebalancing between shards: on a fixed
	// virtual-time cadence the harness probes every shard, asks the policy
	// for donate/receive moves, and applies them as capacity resizes that
	// land at each loop's next round boundary. Nil disables rebalancing.
	Rebalance *RebalanceConfig
	// Lifecycle attaches a per-shard request lifecycle recorder
	// (internal/lifecycle): every admitted request gets a span-structured
	// timeline keyed by a deterministic trace ID ("t-<admission-seq>")
	// minted at the routing instant. Timestamps are virtual-clock
	// microseconds, so repeated runs reproduce timelines bit-identically.
	Lifecycle bool
	// SpanSink, when set, receives one JSON line per finalized timeline
	// (implies Lifecycle). Memory stays bounded: the in-memory rings keep
	// only LifecycleCapacity timelines per shard while the sink streams
	// everything.
	SpanSink io.Writer
	// LifecycleCapacity bounds retained finalized timelines per shard
	// (default 4096).
	LifecycleCapacity int
	// DropLateFactor, CheckInvariants and MaxVirtualTime carry the
	// single-loop Config's semantics, applied per shard.
	DropLateFactor  float64
	CheckInvariants bool
	MaxVirtualTime  time.Duration
}

// RejectedRequest records one early-rejected submission with the router's
// full verdict (which shards were probed, why none won).
type RejectedRequest struct {
	Req      *workload.Request
	Decision router.Decision
}

// ShardedResult aggregates a sharded run: one control Result per shard plus
// the admission ledger. SLO attainment over the *offered* load (admitted and
// rejected together) is the router-vs-monolith comparison metric.
type ShardedResult struct {
	Shards   []*Result
	Rejected []RejectedRequest
	Router   router.Stats
	// Routed maps each admitted request ID to its shard index.
	Routed map[workload.RequestID]int
	// Rebalances lists applied elastic GPU moves in decision order (empty
	// without ShardedConfig.Rebalance).
	Rebalances []RebalanceEvent
	// Lifecycles holds each shard's lifecycle recorder, parallel to Shards
	// (nil unless ShardedConfig.Lifecycle or SpanSink is set).
	Lifecycles []*lifecycle.Recorder
}

// Timeline looks a finalized timeline up by trace ID or decimal request ID,
// searching shards in index order.
func (r *ShardedResult) Timeline(key string) (*lifecycle.Timeline, bool) {
	for _, rec := range r.Lifecycles {
		if rec == nil {
			continue
		}
		if tl, ok := rec.Lookup(key); ok {
			return tl, true
		}
	}
	return nil, false
}

// Offered returns the total offered load (admitted + rejected).
func (r *ShardedResult) Offered() int {
	n := len(r.Rejected)
	for _, s := range r.Shards {
		n += len(s.Outcomes)
	}
	return n
}

// loopShard adapts a control.Loop to the router's Shard interface. The
// sharded harness is single-goroutine, so probing the loop directly is safe.
type loopShard struct {
	name string
	l    *control.Loop
}

func (s loopShard) Name() string { return s.name }

func (s loopShard) ProbeFeasibility(res model.Resolution, steps int, slo time.Duration) (control.Feasibility, error) {
	return s.l.ProbeFeasibility(res, steps, slo)
}

// RunSharded executes a router-over-shards simulation to completion: all
// shards share one virtual clock, arrivals are routed (or rejected) at their
// arrival instant, and each shard's event queue drains exactly as in the
// single-loop simulator. Event interleaving is deterministic: the earliest
// event across shards runs first, arrivals run before same-instant shard
// events (matching the single-loop convention where Begin follows
// pre-scheduled arrivals), and shard index breaks remaining ties.
func RunSharded(cfg ShardedConfig) (*ShardedResult, error) {
	if cfg.Model == nil || len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("sim: Model and at least one shard are required")
	}
	if len(cfg.Requests) == 0 {
		return nil, fmt.Errorf("sim: empty request trace")
	}
	if cfg.MaxVirtualTime <= 0 {
		cfg.MaxVirtualTime = 4 * time.Hour
	}
	tenant := cfg.Tenant
	if tenant == nil {
		tenant = func(*workload.Request) string { return "" }
	}

	clk := clock.NewVirtual()
	loops := make([]*control.Loop, len(cfg.Shards))
	oracles := make([]*invariant.Oracle, len(cfg.Shards))
	shards := make([]router.Shard, len(cfg.Shards))
	names := make([]string, len(cfg.Shards))
	alls := make([]simgpu.Mask, len(cfg.Shards))
	recordLifecycle := cfg.Lifecycle || cfg.SpanSink != nil
	var recs []*lifecycle.Recorder
	if recordLifecycle {
		recs = make([]*lifecycle.Recorder, len(cfg.Shards))
	}
	for i, spec := range cfg.Shards {
		if spec.Topo == nil || spec.Scheduler == nil {
			return nil, fmt.Errorf("sim: shard %d needs Topo and Scheduler", i)
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("shard%d", i)
		}
		prof := spec.Profile
		if prof == nil {
			prof = costmodel.BuildProfile(
				costmodel.NewEstimator(cfg.Model, spec.Topo), costmodel.ProfilerConfig{})
		}
		engCfg := engine.DefaultConfig()
		if spec.Engine != nil {
			engCfg = *spec.Engine
		}
		if spec.Capacity != 0 {
			engCfg.Capacity = spec.Capacity
		}
		ctlCfg := control.Config{
			Model:          cfg.Model,
			Topo:           spec.Topo,
			Scheduler:      spec.Scheduler,
			Profile:        prof,
			Engine:         engCfg,
			DropLateFactor: cfg.DropLateFactor,
			Strict:         true,
			// Arrivals come from the router at their arrival instant, not
			// from a pre-scheduled queue, so the round grid must keep
			// ticking through idle gaps exactly like the live driver's —
			// a non-perpetual grid would stop after the first idle round
			// and never plan later arrivals. Termination is handled by the
			// harness (all arrivals consumed, every shard drained).
			Perpetual: true,
			Preallocate: control.Prealloc{
				Requests: len(cfg.Requests),
				Runs:     8 * len(cfg.Requests),
				Rounds:   8 * len(cfg.Requests),
			},
		}
		if cfg.CheckInvariants {
			oracles[i] = invariant.Attach(&ctlCfg)
		}
		if recordLifecycle {
			recs[i] = lifecycle.NewRecorder(lifecycle.Config{
				Shard:    name,
				Capacity: cfg.LifecycleCapacity,
				Sink:     cfg.SpanSink,
			})
			ctlCfg.Hooks = ctlCfg.Hooks.Then(recs[i].Hooks())
		}
		l, err := control.New(ctlCfg, clk)
		if err != nil {
			return nil, fmt.Errorf("sim: shard %d: %w", i, err)
		}
		l.Begin()
		loops[i] = l
		names[i] = name
		alls[i] = spec.Topo.AllMask()
		shards[i] = loopShard{name: name, l: l}
	}

	rt, err := router.New(cfg.Router, shards)
	if err != nil {
		return nil, err
	}

	var reb *rebalancer
	if cfg.Rebalance != nil {
		reb = newRebalancer(cfg.Rebalance, loops, names, alls)
	}

	out := &ShardedResult{Routed: map[workload.RequestID]int{}}
	next := 0 // next arrival index
	for {
		hasArrival := next < len(cfg.Requests)
		unfinished := 0
		for _, l := range loops {
			unfinished += l.Unfinished()
		}
		if !hasArrival && unfinished == 0 {
			break
		}
		// Earliest shard event (ties → lowest index) vs. next arrival.
		ei, et := -1, time.Duration(0)
		for i, l := range loops {
			if ev := l.NextEvent(); ev != nil && (ei < 0 || ev.At < et) {
				ei, et = i, ev.At
			}
		}
		// Elastic rebalancing shares the virtual clock: a decision instant
		// due at or before the next event (or arrival) runs first, so the
		// probe → decide → resize round is a fixed grid point of the run —
		// re-executions replay it bit-identically.
		if reb != nil {
			cand, hasCand := et, ei >= 0
			if hasArrival && (!hasCand || cfg.Requests[next].Arrival < cand) {
				cand, hasCand = cfg.Requests[next].Arrival, true
			}
			if hasCand && cand >= reb.next {
				at := reb.next
				clk.Advance(at)
				reb.decide(at)
				continue
			}
		}
		if hasArrival && (ei < 0 || cfg.Requests[next].Arrival <= et) {
			r := cfg.Requests[next]
			next++
			clk.Advance(r.Arrival)
			tn := tenant(r)
			dec := rt.Route(r.Arrival, tn, r.Res, r.Steps, r.SLO)
			if dec.Accepted {
				// Mint the fleet-wide trace id at admission, exactly like the
				// live router: the admission sequence number is deterministic
				// for a fixed trace, so trace IDs (and the timelines keyed by
				// them) reproduce bit-identically across runs.
				if r.TraceID == "" {
					r.TraceID = fmt.Sprintf("t-%d", len(out.Routed)+1)
				}
				if r.Tenant == "" {
					r.Tenant = tn
				}
				out.Routed[r.ID] = dec.Shard
				loops[dec.Shard].Arrive(r)
			} else {
				out.Rejected = append(out.Rejected, RejectedRequest{Req: r, Decision: dec})
			}
			continue
		}
		if ei < 0 {
			return nil, fmt.Errorf("sim: %d requests unfinished but no pending events (deadlock)", unfinished)
		}
		if et > cfg.MaxVirtualTime {
			return nil, fmt.Errorf("sim: exceeded max virtual time %s with %d requests left", cfg.MaxVirtualTime, unfinished)
		}
		clk.Advance(et)
		if err := loops[ei].Dispatch(loops[ei].PopEvent()); err != nil {
			return nil, fmt.Errorf("sim: shard %d: %w", ei, err)
		}
	}

	out.Shards = make([]*Result, len(loops))
	for i, l := range loops {
		res := l.Finalize()
		if oracles[i] != nil {
			if err := oracles[i].VerifyResult(res); err != nil {
				return nil, fmt.Errorf("sim: shard %d: %w", i, err)
			}
		}
		out.Shards[i] = res
	}
	out.Router = rt.Stats()
	if reb != nil {
		out.Rebalances = reb.events
	}
	out.Lifecycles = recs
	if recordLifecycle {
		for i, rec := range recs {
			if err := rec.SinkErr(); err != nil {
				return nil, fmt.Errorf("sim: shard %d span sink: %w", i, err)
			}
		}
	}
	return out, nil
}
