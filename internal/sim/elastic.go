package sim

// Elastic rebalancing for the sharded harness: a deterministic virtual-clock
// cadence of probe → decide → resize rounds over the shard loops. All state
// the decision consumes comes from read-only feasibility probes and the
// harness's own capacity ledger, so a re-run of the same configuration
// replays the exact same moves (the determinism argument DESIGN.md §14
// spells out: decision instants are fixed grid points of the virtual clock,
// probes are pure reads, the policy is a pure function, and the resulting
// ApplyResize calls land on each loop's round grid like any other event).

import (
	"math"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/model"
	"tetriserve/internal/rebalance"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// RebalanceConfig enables elastic GPU rebalancing between shards in
// RunSharded. Shards participating in rebalancing should be built on a
// common topology with ShardSpec.Capacity restricting each to its slice
// (capacity masks stay contiguous prefixes: donors give up their highest
// slot, receivers grow into their lowest free slot, so every intermediate
// capacity remains buddy-decomposable).
type RebalanceConfig struct {
	// Policy defaults to rebalance.New(rebalance.DefaultConfig()).
	Policy *rebalance.Policy
	// Interval is the virtual-time cadence of decision rounds (default 2s).
	Interval time.Duration
	// ProbeResolutions are the resolution classes probed per shard for the
	// lateness-slack signal; defaults to the standard resolutions present in
	// the shard's profile.
	ProbeResolutions []model.Resolution
	// ProbeSLOScale scales the per-class SLO budgets the slack probes use
	// (default 1.5, matching the routed experiments' SLO policy).
	ProbeSLOScale float64
}

// RebalanceEvent records one applied GPU move for the result ledger.
type RebalanceEvent struct {
	At       time.Duration
	From, To int
	// Donated is the donor-side GPU slot given up; Received is the
	// receiver-side slot grown into (independent id spaces per shard).
	Donated, Received simgpu.Mask
}

// rebalancer holds the harness-side elastic state.
type rebalancer struct {
	policy   *rebalance.Policy
	interval time.Duration
	probeRes []model.Resolution
	slo      workload.SLOPolicy
	next     time.Duration

	loops []*control.Loop
	names []string
	// caps is the harness's capacity ledger: the latest REQUESTED mask per
	// shard. Loops apply resizes at their next round boundary, so the
	// engine's view may lag; decisions must chain off the requested state or
	// two decision rounds inside one τ would re-donate the same GPU.
	caps []simgpu.Mask
	// all is each shard's full topology mask, bounding growth.
	all []simgpu.Mask

	events []RebalanceEvent
	loads  []rebalance.ShardLoad // reused scratch
}

func newRebalancer(cfg *RebalanceConfig, loops []*control.Loop, names []string, alls []simgpu.Mask) *rebalancer {
	policy := cfg.Policy
	if policy == nil {
		policy = rebalance.New(rebalance.DefaultConfig())
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	probeRes := cfg.ProbeResolutions
	if len(probeRes) == 0 {
		probeRes = model.StandardResolutions()
	}
	scale := cfg.ProbeSLOScale
	if scale <= 0 {
		scale = 1.5
	}
	r := &rebalancer{
		policy:   policy,
		interval: interval,
		probeRes: probeRes,
		slo:      workload.NewSLOPolicy(scale),
		next:     interval,
		loops:    loops,
		names:    names,
		caps:     make([]simgpu.Mask, len(loops)),
		all:      alls,
		loads:    make([]rebalance.ShardLoad, len(loops)),
	}
	for i, l := range loops {
		r.caps[i] = l.Engine().Capacity()
	}
	return r
}

// decide runs one probe → policy → resize round at virtual time now.
func (r *rebalancer) decide(now time.Duration) {
	for i, l := range r.loops {
		healthy := r.caps[i].Without(l.Engine().FailedGPUs()).Count()
		worst := time.Duration(math.MaxInt64)
		var queue float64
		for _, res := range r.probeRes {
			f, err := l.ProbeFeasibility(res, 0, r.slo.Budget(res))
			if err != nil {
				continue // class not profiled on this shard
			}
			queue = f.QueueGPUSeconds
			if f.Slack < worst {
				worst = f.Slack
			}
		}
		r.loads[i] = rebalance.ShardLoad{
			Name:            r.names[i],
			HealthyGPUs:     healthy,
			QueueGPUSeconds: queue,
			WorstSlack:      worst,
		}
	}
	for _, m := range r.policy.Decide(r.loads) {
		for g := 0; g < m.GPUs; g++ {
			donated := r.caps[m.From].Highest()
			received := r.all[m.To].Without(r.caps[m.To]).Lowest()
			if donated == 0 || received == 0 {
				break // donor empty or receiver at full topology
			}
			r.caps[m.From] = r.caps[m.From].Without(donated)
			r.caps[m.To] = r.caps[m.To].Union(received)
			r.loops[m.From].ApplyResize(r.caps[m.From])
			r.loops[m.To].ApplyResize(r.caps[m.To])
			r.events = append(r.events, RebalanceEvent{
				At: now, From: m.From, To: m.To, Donated: donated, Received: received,
			})
		}
	}
	r.next += r.interval
}
