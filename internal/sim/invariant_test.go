package sim

import (
	"strings"
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// TestOracleCleanAcrossSchedulers runs every policy family with the
// invariant oracle attached: zero violations on clean traces, traces with
// timeout drops, and — for the round-based scheduler — traces with GPU
// faults and recovery. This is the tentpole's main acceptance check: the
// existing planner and engine respect every audited invariant.
func TestOracleCleanAcrossSchedulers(t *testing.T) {
	for _, sc := range []sched.Scheduler{tetri(), sched.NewFixedSP(2), sched.NewFixedSP(8), sched.NewRSSP(8), sched.NewEDF()} {
		res := runSim(t, sc, genTrace(40, 5, 1.2), func(c *Config) {
			c.CheckInvariants = true
			c.DropLateFactor = 4.0
		})
		if len(res.Outcomes) != 40 {
			t.Fatalf("%s: %d outcomes for 40 requests", sc.Name(), len(res.Outcomes))
		}
	}
}

func TestOracleCleanUnderFaults(t *testing.T) {
	res := runSim(t, tetri(), faultTrace(30, 11), func(c *Config) {
		c.CheckInvariants = true
		c.DropLateFactor = 4.0
		c.Faults = []simgpu.Fault{
			{GPU: 1, FailAt: 16700 * time.Millisecond, RecoverAt: 40 * time.Second},
			{GPU: 5, FailAt: 45 * time.Second},
		}
	})
	if res.RunsAborted == 0 {
		t.Fatal("faults landed on an idle cluster; the scenario exercises nothing")
	}
}

// evilBatcher merges every pending same-resolution pair into one batch with
// no survival test — exactly the §5 bug class the oracle exists to catch.
// sched.ValidatePlan accepts its plans (disjoint groups, known requests,
// homogeneous resolutions), so only the oracle can flag them.
type evilBatcher struct{}

func (evilBatcher) Name() string                 { return "evil-batcher" }
func (evilBatcher) RoundDuration() time.Duration { return 100 * time.Millisecond }

func (evilBatcher) Plan(ctx *sched.PlanContext) []sched.Assignment {
	var pair []*sched.RequestState
	for _, st := range ctx.Pending {
		if len(pair) == 0 || pair[0].Req.Res == st.Req.Res {
			pair = append(pair, st)
		}
		if len(pair) == 2 {
			break
		}
	}
	group := simgpu.MaskOf(0, 1, 2, 3)
	if len(pair) < 2 || group&^ctx.Free != 0 {
		return nil
	}
	return []sched.Assignment{{
		Requests: []workload.RequestID{pair[0].Req.ID, pair[1].Req.ID},
		Group:    group,
		Steps:    2,
	}}
}

func TestOracleCatchesSurvivalViolation(t *testing.T) {
	// Same resolution, wildly different budgets: batching them at round pace
	// makes the tight one definitely late, which survival forbids.
	reqs := []*workload.Request{
		{ID: 1, Res: model.Res1024, Steps: 50, SLO: time.Hour},
		{ID: 2, Res: model.Res1024, Steps: 50, SLO: 50 * time.Millisecond},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oracle let a survival-violating batch through")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "batch-survival") {
			t.Fatalf("expected a batch-survival panic, got %v", r)
		}
	}()
	Run(Config{
		Model:           testMdl,
		Topo:            testTopo,
		Scheduler:       evilBatcher{},
		Requests:        reqs,
		Profile:         testProf,
		CheckInvariants: true,
	})
}
