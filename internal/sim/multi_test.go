package sim

import (
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/router"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// shardSpecs builds n identical TetriServe shards of `gpus` GPUs each.
func shardSpecs(n, gpus int) []ShardSpec {
	specs := make([]ShardSpec, n)
	for i := range specs {
		topo := simgpu.H100xN(gpus)
		prof := costmodel.BuildProfile(costmodel.NewEstimator(testMdl, topo), costmodel.ProfilerConfig{})
		specs[i] = ShardSpec{
			Topo:      topo,
			Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
			Profile:   prof,
		}
	}
	return specs
}

func smallMixTrace(n int, seed uint64, perMinute, scale float64) []*workload.Request {
	// 2-GPU shards: keep shapes the small pools can win.
	mix, err := workload.CustomMix("small",
		[]model.Resolution{model.Res256, model.Res512, model.Res1024},
		[]float64{0.4, 0.4, 0.2})
	if err != nil {
		panic(err)
	}
	return workload.Generate(workload.GeneratorConfig{
		Model:       testMdl,
		Mix:         mix,
		Arrivals:    workload.NewBurstyArrivals(perMinute),
		SLO:         workload.NewSLOPolicy(scale),
		NumRequests: n,
		Seed:        seed,
	})
}

func TestRunShardedCompletesAndAccounts(t *testing.T) {
	trace := smallMixTrace(60, 5, 40, 1.5)
	res, err := RunSharded(ShardedConfig{
		Model:           testMdl,
		Shards:          shardSpecs(4, 2),
		Requests:        trace,
		DropLateFactor:  4.0,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Conservation: every offered request is exactly one of routed-and-
	// finalized or rejected.
	if got := res.Offered(); got != len(trace) {
		t.Fatalf("offered %d != trace %d", got, len(trace))
	}
	if res.Router.Decisions != len(trace) {
		t.Fatalf("router saw %d decisions, want %d", res.Router.Decisions, len(trace))
	}
	if res.Router.Routed != len(res.Routed) {
		t.Fatalf("routed count %d != routed map %d", res.Router.Routed, len(res.Routed))
	}
	if res.Router.Routed+res.Router.Infeasible+res.Router.Shed != len(trace) {
		t.Fatalf("decisions don't partition the trace: %+v", res.Router)
	}
	admitted := 0
	for i, s := range res.Shards {
		admitted += len(s.Outcomes)
		if len(s.Outcomes) != res.Router.Shards[i].Routed {
			t.Fatalf("shard %d finalized %d, router sent %d", i, len(s.Outcomes), res.Router.Shards[i].Routed)
		}
	}
	if admitted != res.Router.Routed {
		t.Fatalf("shards finalized %d, router admitted %d", admitted, res.Router.Routed)
	}

	// Admitted requests were deemed winnable; most should actually win.
	met := 0
	for _, s := range res.Shards {
		for _, o := range s.Outcomes {
			if o.Met {
				met++
			}
		}
	}
	if admitted > 0 && float64(met)/float64(admitted) < 0.5 {
		t.Fatalf("only %d/%d admitted requests met their SLO — probe badly miscalibrated", met, admitted)
	}
}

func TestRunShardedDeterministic(t *testing.T) {
	run := func() *ShardedResult {
		res, err := RunSharded(ShardedConfig{
			Model:          testMdl,
			Shards:         shardSpecs(2, 2),
			Requests:       smallMixTrace(40, 9, 30, 1.5),
			DropLateFactor: 4.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Router.Decisions != b.Router.Decisions ||
		a.Router.Routed != b.Router.Routed || a.Router.Infeasible != b.Router.Infeasible {
		t.Fatalf("router stats diverged:\n%+v\n%+v", a.Router, b.Router)
	}
	for id, shard := range a.Routed {
		if b.Routed[id] != shard {
			t.Fatalf("request %d routed to %d then %d", id, shard, b.Routed[id])
		}
	}
	for i := range a.Shards {
		if len(a.Shards[i].Outcomes) != len(b.Shards[i].Outcomes) {
			t.Fatalf("shard %d outcome counts diverged", i)
		}
		for j := range a.Shards[i].Outcomes {
			if a.Shards[i].Outcomes[j] != b.Shards[i].Outcomes[j] {
				t.Fatalf("shard %d outcome %d diverged", i, j)
			}
		}
	}
}

// TestRunShardedHopelessSLOsRejectedEarly: deadlines below best-case service
// must be rejected at admission, burning zero GPU time, with the router's
// verdict preserved for each.
func TestRunShardedHopelessSLOsRejectedEarly(t *testing.T) {
	trace := smallMixTrace(20, 3, 30, 1.5)
	for _, r := range trace {
		r.SLO = time.Millisecond
	}
	res, err := RunSharded(ShardedConfig{
		Model:    testMdl,
		Shards:   shardSpecs(2, 2),
		Requests: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != len(trace) {
		t.Fatalf("rejected %d, want all %d", len(res.Rejected), len(trace))
	}
	for _, rr := range res.Rejected {
		if rr.Decision.Reason != router.ReasonInfeasible {
			t.Fatalf("request %d rejected for %q, want infeasible", rr.Req.ID, rr.Decision.Reason)
		}
		if rr.Decision.RetryAfter <= 0 {
			t.Fatalf("request %d missing Retry-After hint", rr.Req.ID)
		}
	}
	for i, s := range res.Shards {
		if len(s.Outcomes) != 0 || s.GPUBusySeconds != 0 {
			t.Fatalf("shard %d did work for rejected traffic: %d outcomes, %f busy",
				i, len(s.Outcomes), s.GPUBusySeconds)
		}
	}
}

// TestRunShardedHeterogeneousShards routes across unequal pools: the bigger
// shard must absorb more of the load.
func TestRunShardedHeterogeneousShards(t *testing.T) {
	big := simgpu.H100xN(8)
	small := simgpu.H100xN(2)
	bigProf := costmodel.BuildProfile(costmodel.NewEstimator(testMdl, big), costmodel.ProfilerConfig{})
	smallProf := costmodel.BuildProfile(costmodel.NewEstimator(testMdl, small), costmodel.ProfilerConfig{})
	res, err := RunSharded(ShardedConfig{
		Model: testMdl,
		Shards: []ShardSpec{
			{Name: "big", Topo: big, Scheduler: core.NewScheduler(bigProf, big, core.DefaultConfig()), Profile: bigProf},
			{Name: "small", Topo: small, Scheduler: core.NewScheduler(smallProf, small, core.DefaultConfig()), Profile: smallProf},
		},
		Requests:       genTrace(80, 11, 1.2),
		DropLateFactor: 4.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Router.Shards[0].Routed <= res.Router.Shards[1].Routed {
		t.Fatalf("8-GPU shard took %d, 2-GPU took %d — slack routing should favor the bigger pool",
			res.Router.Shards[0].Routed, res.Router.Shards[1].Routed)
	}
}

// TestRunShardedTenantAccounting: the Tenant hook feeds the router's
// per-tenant ledger.
func TestRunShardedTenantAccounting(t *testing.T) {
	trace := smallMixTrace(30, 7, 30, 1.5)
	res, err := RunSharded(ShardedConfig{
		Model:    testMdl,
		Shards:   shardSpecs(2, 2),
		Requests: trace,
		Tenant: func(r *workload.Request) string {
			if r.ID%2 == 0 {
				return "even"
			}
			return "odd"
		},
		DropLateFactor: 4.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Router.Tenants) != 2 {
		t.Fatalf("tenants %+v", res.Router.Tenants)
	}
	total := 0
	for _, ts := range res.Router.Tenants {
		total += ts.Admitted + ts.Rejected
	}
	if total != len(trace) {
		t.Fatalf("tenant ledger covers %d of %d", total, len(trace))
	}
}

var _ sched.Scheduler = (*core.Scheduler)(nil)
