package sim

import (
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/stats"
	"tetriserve/internal/workload"
)

// TestNearOptimalOnTinyInstances compares TetriServe's end-to-end outcome
// against the Appendix-B exhaustive optimum on small random instances
// (2 requests × 5 steps on 4 GPUs — still exactly solvable). The heuristic
// pays round discretization, admission, and overhead, so we do not demand
// exact optimality; we demand it never trails the offline optimum by more
// than one met request, and matches it in the majority of trials.
func TestNearOptimalOnTinyInstances(t *testing.T) {
	mdl := model.FLUX()
	topo := simgpu.H100xN(4)
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	rng := stats.NewRNG(123)
	resList := []model.Resolution{model.Res256, model.Res512, model.Res1024}

	matches, trials := 0, 25
	for trial := 0; trial < trials; trial++ {
		// Random 2-request instance with deadlines between 1.15x and 2.5x
		// of the request's fastest possible service time. The exact solver
		// models neither decode, dispatch overhead, nor round boundaries,
		// so sub-15%-slack instances would compare the heuristic against
		// physics it cannot have; the paper's SLOs carry similar slack.
		var reqs []*workload.Request
		inst := sched.ExhaustiveInstance{N: 4, Degrees: []int{1, 2, 4}}
		for i := 0; i < 2; i++ {
			res := resList[rng.Intn(len(resList))]
			arrival := time.Duration(rng.Intn(300)) * time.Millisecond
			tmin, _ := prof.MinStepTime(res)
			minService := 5 * tmin
			slo := time.Duration(float64(minService) * (1.15 + 1.35*rng.Float64()))
			reqs = append(reqs, &workload.Request{
				ID: workload.RequestID(i), Res: res, Steps: 5,
				Arrival: arrival, SLO: slo,
			})
			st := map[int]time.Duration{}
			for _, k := range inst.Degrees {
				st[k] = prof.StepTime(res, k)
			}
			inst.Requests = append(inst.Requests, sched.ExhaustiveRequest{
				Arrival: arrival, Deadline: arrival + slo, Steps: 5, StepTime: st,
			})
		}

		// Heuristic, end to end (fine-grained rounds suit 5-step toys).
		cfg := core.DefaultConfig()
		cfg.StepGranularity = 1
		res, err := Run(Config{
			Model: mdl, Topo: topo,
			Scheduler: core.NewScheduler(prof, topo, cfg),
			Requests:  reqs, Profile: prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		met := 0
		for _, o := range res.Outcomes {
			if o.Met {
				met++
			}
		}

		// Offline optimum.
		sol := sched.SolveExhaustive(inst, 30*time.Second)
		if sol.TimedOut {
			t.Fatal("tiny instance timed out in the exact solver")
		}
		if met > sol.Met {
			t.Fatalf("trial %d: heuristic met %d > exhaustive optimum %d — solver bug", trial, met, sol.Met)
		}
		if sol.Met-met > 1 {
			t.Fatalf("trial %d: heuristic met %d vs optimum %d — gap exceeds 1", trial, met, sol.Met)
		}
		if met == sol.Met {
			matches++
		}
	}
	if matches*2 < trials {
		t.Fatalf("heuristic matched the optimum in only %d/%d trials", matches, trials)
	}
}
