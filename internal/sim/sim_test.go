package sim

import (
	"sort"
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

var (
	testMdl  = model.FLUX()
	testTopo = simgpu.H100x8()
	testProf = costmodel.BuildProfile(
		costmodel.NewEstimator(testMdl, testTopo), costmodel.ProfilerConfig{})
)

func genTrace(n int, seed uint64, scale float64) []*workload.Request {
	return workload.Generate(workload.GeneratorConfig{
		Model:       testMdl,
		Mix:         workload.UniformMix(),
		Arrivals:    workload.PoissonArrivals{PerMinute: 12},
		SLO:         workload.NewSLOPolicy(scale),
		NumRequests: n,
		Seed:        seed,
	})
}

func tetri() sched.Scheduler {
	return core.NewScheduler(testProf, testTopo, core.DefaultConfig())
}

func runSim(t *testing.T, sc sched.Scheduler, reqs []*workload.Request, mutate ...func(*Config)) *Result {
	t.Helper()
	cfg := Config{
		Model:     testMdl,
		Topo:      testTopo,
		Scheduler: sc,
		Requests:  reqs,
		Profile:   testProf,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllRequestsComplete(t *testing.T) {
	for _, sc := range []sched.Scheduler{tetri(), sched.NewFixedSP(2), sched.NewFixedSP(8), sched.NewRSSP(8), sched.NewEDF()} {
		reqs := genTrace(60, 3, 1.2)
		res := runSim(t, sc, reqs)
		if len(res.Outcomes) != 60 {
			t.Fatalf("%s: %d outcomes for 60 requests", sc.Name(), len(res.Outcomes))
		}
		seen := map[workload.RequestID]bool{}
		for _, o := range res.Outcomes {
			if seen[o.ID] {
				t.Fatalf("%s: duplicate outcome for %d", sc.Name(), o.ID)
			}
			seen[o.ID] = true
			if o.Dropped {
				t.Fatalf("%s: dropped request without drop policy", sc.Name())
			}
			if o.Completion < o.Arrival {
				t.Fatalf("%s: completion before arrival", sc.Name())
			}
			if o.Latency != o.Completion-o.Arrival {
				t.Fatalf("%s: latency bookkeeping wrong", sc.Name())
			}
			if o.Met != (o.Completion <= o.Deadline) {
				t.Fatalf("%s: Met flag inconsistent", sc.Name())
			}
		}
	}
}

// TestStepConservation: the executed step blocks must account for exactly
// every request's step count, no more, no less.
func TestStepConservation(t *testing.T) {
	reqs := genTrace(50, 7, 1.0)
	res := runSim(t, tetri(), reqs)
	want := map[workload.RequestID]int{}
	for _, r := range reqs {
		want[r.ID] = r.Steps
	}
	// Outcome-level conservation: each non-dropped request ran to zero.
	for _, o := range res.Outcomes {
		if o.Steps != want[o.ID] {
			t.Fatalf("request %d executed %d steps, want %d", o.ID, o.Steps, want[o.ID])
		}
	}
}

// TestRunLogConsistency checks block records are well-formed and GPUs are
// never oversubscribed at any instant.
func TestRunLogConsistency(t *testing.T) {
	reqs := genTrace(60, 9, 1.1)
	res := runSim(t, tetri(), reqs)
	type ev struct {
		at    time.Duration
		delta int
	}
	var evs []ev
	for _, rec := range res.Runs {
		if rec.End <= rec.Start {
			t.Fatal("non-positive block duration")
		}
		if rec.Degree <= 0 || rec.Degree > 8 {
			t.Fatalf("degree %d out of range", rec.Degree)
		}
		evs = append(evs, ev{rec.Start, rec.Degree}, ev{rec.End, -rec.Degree})
	}
	// Sweep: releases before acquisitions at equal timestamps.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta
	})
	inUse := 0
	for _, e := range evs {
		inUse += e.delta
		if inUse > res.NGPU {
			t.Fatalf("GPU oversubscription: %d in use on %d GPUs", inUse, res.NGPU)
		}
		if inUse < 0 {
			t.Fatal("negative GPU usage")
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := runSim(t, tetri(), genTrace(40, 11, 1.0))
	b := runSim(t, tetri(), genTrace(40, 11, 1.0))
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatal("outcome counts differ")
	}
	byID := map[workload.RequestID]Outcome{}
	for _, o := range a.Outcomes {
		byID[o.ID] = o
	}
	for _, o := range b.Outcomes {
		if byID[o.ID].Completion != o.Completion {
			t.Fatalf("request %d completed at %v vs %v across identical runs",
				o.ID, byID[o.ID].Completion, o.Completion)
		}
	}
}

func TestDropPolicy(t *testing.T) {
	// Very tight SLOs at SP=1 guarantee late 1024/2048 requests; the drop
	// policy must time them out instead of running forever.
	reqs := genTrace(40, 13, 1.0)
	res := runSim(t, sched.NewFixedSP(1), reqs, func(c *Config) { c.DropLateFactor = 2.0 })
	dropped := 0
	for _, o := range res.Outcomes {
		if o.Dropped {
			dropped++
			if o.Met {
				t.Fatal("dropped request marked as met")
			}
			if o.Completion != 0 {
				t.Fatal("dropped request has completion time")
			}
		}
	}
	if dropped == 0 {
		t.Fatal("expected timeouts under SP=1 with tight SLOs")
	}
}

func TestMakespanAndUtilization(t *testing.T) {
	reqs := genTrace(30, 17, 1.2)
	res := runSim(t, tetri(), reqs)
	if res.Makespan < reqs[len(reqs)-1].Arrival {
		t.Fatal("makespan before last arrival")
	}
	if res.GPUBusySeconds <= 0 {
		t.Fatal("no GPU time recorded")
	}
	if res.GPUBusySeconds > res.Makespan.Seconds()*float64(res.NGPU) {
		t.Fatal("busy time exceeds capacity")
	}
}

func TestPlanLatenciesRecorded(t *testing.T) {
	res := runSim(t, tetri(), genTrace(20, 19, 1.2))
	if res.PlanCalls == 0 || len(res.PlanLatencies) != res.PlanCalls {
		t.Fatalf("plan bookkeeping wrong: %d calls, %d latencies", res.PlanCalls, len(res.PlanLatencies))
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	_, err := Run(Config{Model: testMdl, Topo: testTopo, Scheduler: tetri()})
	if err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestMissingFieldsRejected(t *testing.T) {
	_, err := Run(Config{})
	if err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTrimmerShortensRequests(t *testing.T) {
	reqs := genTrace(30, 23, 1.2)
	res := runSim(t, tetri(), reqs, func(c *Config) {
		c.Trimmer = fixedTrimmer{skip: 20}
	})
	for _, o := range res.Outcomes {
		if o.Skipped != 20 {
			t.Fatalf("request %d skipped %d steps, want 20", o.ID, o.Skipped)
		}
		if o.Steps != 30 {
			t.Fatalf("request %d executed %d steps, want 30", o.ID, o.Steps)
		}
	}
}

func TestTrimmerCannotSkipEverything(t *testing.T) {
	reqs := genTrace(10, 29, 1.2)
	res := runSim(t, tetri(), reqs, func(c *Config) {
		c.Trimmer = fixedTrimmer{skip: 1000}
	})
	for _, o := range res.Outcomes {
		if o.Steps < 1 {
			t.Fatal("at least one denoising step must always run")
		}
	}
}

type fixedTrimmer struct{ skip int }

func (f fixedTrimmer) OnArrival(workload.Prompt, model.Resolution, int, time.Duration) int {
	return f.skip
}
func (f fixedTrimmer) OnComplete(workload.Prompt, model.Resolution, time.Duration) {}

// TestCacheImprovesSAR: trimming steps must never hurt and should help at
// tight SLOs.
func TestCacheImprovesSAR(t *testing.T) {
	base := runSim(t, tetri(), genTrace(60, 31, 1.0))
	trimmed := runSim(t, tetri(), genTrace(60, 31, 1.0), func(c *Config) {
		c.Trimmer = fixedTrimmer{skip: 25}
	})
	sar := func(r *Result) float64 {
		met := 0
		for _, o := range r.Outcomes {
			if o.Met {
				met++
			}
		}
		return float64(met) / float64(len(r.Outcomes))
	}
	if sar(trimmed) < sar(base) {
		t.Fatalf("halving work lowered SAR: %.2f -> %.2f", sar(base), sar(trimmed))
	}
}

func TestEagerAdmissionReducesIdleWait(t *testing.T) {
	// A single 2048px request arriving mid-round on an idle cluster: with
	// eager admission it starts immediately; strictly round-based it waits
	// for the boundary.
	mk := func(eager bool) time.Duration {
		cfg := core.DefaultConfig()
		cfg.EagerAdmission = eager
		sc := core.NewScheduler(testProf, testTopo, cfg)
		req := &workload.Request{
			ID: 0, Res: model.Res2048, Steps: 50,
			Arrival: 100 * time.Millisecond, SLO: 10 * time.Second,
		}
		res := runSim(t, sc, []*workload.Request{req})
		return res.Outcomes[0].Latency
	}
	eagerLat := mk(true)
	strictLat := mk(false)
	if eagerLat >= strictLat {
		t.Fatalf("eager admission should cut latency: eager %v vs strict %v", eagerLat, strictLat)
	}
}

func TestRoundTicksDeferToOverruns(t *testing.T) {
	// Round-aligned blocks with noise can overrun τ slightly; the run must
	// still terminate and keep causality (tested implicitly by Run's
	// internal clock panic on backwards time).
	reqs := genTrace(80, 37, 1.0)
	res := runSim(t, tetri(), reqs)
	if len(res.Outcomes) != 80 {
		t.Fatal("not all requests finished")
	}
}

func TestBestEffortBlocksRecorded(t *testing.T) {
	// Tight SLOs make some requests definitely late; their lane blocks
	// must be flagged in the run log.
	reqs := genTrace(80, 41, 1.0)
	res := runSim(t, tetri(), reqs)
	lane := 0
	for _, rec := range res.Runs {
		if rec.BestEffort {
			lane++
		}
	}
	if lane == 0 {
		t.Fatal("expected best-effort lane blocks under tight SLOs")
	}
}

func TestMaxVirtualTimeGuard(t *testing.T) {
	reqs := genTrace(30, 43, 1.0)
	_, err := Run(Config{
		Model:          testMdl,
		Topo:           testTopo,
		Scheduler:      tetri(),
		Requests:       reqs,
		Profile:        testProf,
		MaxVirtualTime: time.Second, // absurdly small
	})
	if err == nil {
		t.Fatal("virtual time guard did not trip")
	}
}
