// Package stats provides the small numeric toolkit used by the cost model,
// metrics collection, and the experiment harness: running moments, exact
// percentiles, CDFs, and a deterministic PRNG wrapper so experiments are
// reproducible run to run.
package stats

import (
	"math"
	"sort"
)

// Running accumulates count/mean/variance online (Welford's algorithm).
// The zero value is an empty accumulator.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample, or 0 for an empty accumulator.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 for an empty accumulator.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Variance()) }

// CV returns the coefficient of variation (stddev/mean), or 0 when the mean
// is 0. The paper reports step-time CVs below 0.7 % (Table 1).
func (r *Running) CV() float64 {
	if r.mean == 0 {
		return 0
	}
	return r.Stddev() / math.Abs(r.mean)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified. An empty input
// yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied and sorted).
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest x with P(X <= x) >= q, q in (0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// Points samples the CDF at n evenly spaced x positions between the sample
// min and max, returning (x, P(X<=x)) pairs — the series plotted in Fig 9.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([][2]float64, 0, n)
	if n == 1 || hi == lo {
		return append(pts, [2]float64{hi, 1})
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts = append(pts, [2]float64{x, c.At(x)})
	}
	return pts
}
