package stats

import "math"

// RNG is a small, fast, deterministic PRNG (splitmix64 seeded xorshift128+)
// used everywhere randomness is needed so that experiments replay exactly.
// The stdlib math/rand would also work, but a local implementation pins the
// stream across Go versions and lets us fork independent substreams cheaply.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Fork derives an independent substream tagged by id.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential sample with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1-u) / rate
}

// Norm returns a Gaussian sample with the given mean and stddev
// (Box–Muller; one value per call keeps the stream simple to reason about).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Choice returns an index sampled according to the (unnormalized,
// non-negative) weights. At least one weight must be positive.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: all weights zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes xs in place (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
