package stats

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	base := NewRNG(7)
	f1 := base.Fork(1)
	f2 := base.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked substreams start identically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(8)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.125) > 0.01 {
			t.Fatalf("bucket %d has fraction %v, want ≈0.125", i, frac)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const rate = 2.0
	var acc Running
	for i := 0; i < 50000; i++ {
		acc.Add(r.Exp(rate))
	}
	if math.Abs(acc.Mean()-1/rate) > 0.02 {
		t.Fatalf("exponential mean = %v, want 0.5", acc.Mean())
	}
	if acc.Min() < 0 {
		t.Fatal("exponential sample negative")
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(17)
	var acc Running
	for i := 0; i < 50000; i++ {
		acc.Add(r.Norm(10, 3))
	}
	if math.Abs(acc.Mean()-10) > 0.1 {
		t.Fatalf("normal mean = %v, want 10", acc.Mean())
	}
	if math.Abs(acc.Stddev()-3) > 0.1 {
		t.Fatalf("normal stddev = %v, want 3", acc.Stddev())
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(19)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.02 {
		t.Fatalf("bucket 0 fraction %v, want ≈0.25", frac0)
	}
}

func TestChoicePanics(t *testing.T) {
	r := NewRNG(1)
	for _, weights := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choice(%v) should panic", weights)
				}
			}()
			r.Choice(weights)
		}()
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate %d after shuffle", x)
		}
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatal("shuffle lost elements")
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) should panic")
		}
	}()
	NewRNG(1).Exp(0)
}
