package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.CV() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if got := r.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := r.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

// TestRunningMatchesNaive checks Welford against the two-pass formula.
func TestRunningMatchesNaive(t *testing.T) {
	check := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var r Running
		sum := 0.0
		for _, x := range clean {
			r.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		return math.Abs(r.Mean()-mean) < 1e-6 && math.Abs(r.Variance()-naiveVar) < 1e-4*(1+naiveVar)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCVOfConstant(t *testing.T) {
	var r Running
	for i := 0; i < 10; i++ {
		r.Add(3.5)
	}
	if got := r.CV(); got != 0 {
		t.Fatalf("CV of constant series = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("percentile of empty = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileBounds(t *testing.T) {
	check := func(raw []float64, pRaw uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw) / 255 * 100
		got := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	check := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		pts := c.Points(16)
		for i := 1; i < len(pts); i++ {
			if pts[i][1] < pts[i-1][1] {
				return false
			}
		}
		return len(pts) == 0 || pts[len(pts)-1][1] == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.Points(5) != nil || c.N() != 0 {
		t.Fatal("empty CDF should return zero values")
	}
}
