package clock

import (
	"testing"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); got != 0 {
		t.Fatalf("new virtual clock reads %v, want 0", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(5 * time.Second)
	if got := v.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
	v.Advance(5 * time.Second) // advancing to the same time is allowed
	if got := v.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v after no-op advance, want 5s", got)
	}
}

func TestVirtualAdvanceBy(t *testing.T) {
	v := NewVirtual()
	v.AdvanceBy(time.Second)
	v.AdvanceBy(2 * time.Second)
	if got := v.Now(); got != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", got)
	}
}

func TestVirtualBackwardsPanics(t *testing.T) {
	v := NewVirtual()
	v.Advance(10 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("advancing backwards should panic")
		}
	}()
	v.Advance(9 * time.Second)
}

func TestVirtualNegativeAdvanceByPanics(t *testing.T) {
	v := NewVirtual()
	defer func() {
		if recover() == nil {
			t.Fatal("negative AdvanceBy should panic")
		}
	}()
	v.AdvanceBy(-time.Second)
}

func TestVirtualConcurrentReads(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			v.AdvanceBy(time.Millisecond)
		}
		close(done)
	}()
	for {
		select {
		case <-done:
			if got := v.Now(); got != time.Second {
				t.Fatalf("Now() = %v, want 1s", got)
			}
			return
		default:
			_ = v.Now() // must not race (run with -race)
		}
	}
}

func TestRealSpeedup(t *testing.T) {
	r := NewReal(100)
	time.Sleep(20 * time.Millisecond)
	got := r.Now()
	// 20ms wall at 100x should read ≈2s virtual; allow generous slack for
	// scheduler jitter on loaded CI machines.
	if got < 1*time.Second || got > 20*time.Second {
		t.Fatalf("virtual time %v out of plausible range for 20ms wall at 100x", got)
	}
}

func TestRealSleepUntil(t *testing.T) {
	r := NewReal(1000)
	target := r.Now() + 2*time.Second // 2ms wall
	start := time.Now()
	r.SleepUntil(target)
	if r.Now() < target {
		t.Fatal("SleepUntil returned before target virtual time")
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("SleepUntil slept %v wall time for a 2ms-equivalent wait", wall)
	}
}

func TestRealInvalidSpeedupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero speedup should panic")
		}
	}()
	NewReal(0)
}
