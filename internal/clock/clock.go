// Package clock abstracts time so that the same scheduling and engine code
// can run against a virtual (discrete-event) clock during experiments and a
// real wall clock inside the online serving daemon.
//
// All simulation time is represented as time.Duration offsets from a zero
// epoch. The virtual clock never sleeps: it is advanced explicitly by the
// discrete-event adapter in internal/sim. The real clock maps virtual
// durations onto wall time through a configurable speed-up factor so that
// the demo server can replay hardware-scale latencies quickly.
//
// internal/control's Loop — the round-based serving core shared by the
// simulator and the online driver — is parameterized over the Clock
// interface and never reads time any other way; injecting Virtual vs. Real
// is the entire difference in how time passes between the two worlds.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time to schedulers and engines.
type Clock interface {
	// Now returns the current time as an offset from the clock's epoch.
	Now() time.Duration
}

// Sleeper is implemented by clocks that can block until a deadline.
// The virtual clock does not implement Sleeper; the event loop advances it.
type Sleeper interface {
	// SleepUntil blocks until the clock reads at least t.
	SleepUntil(t time.Duration)
}

// Virtual is a manually advanced clock for discrete-event simulation.
// The zero value is ready to use and reads 0.
//
// Virtual is safe for concurrent use, although the simulator advances it
// from a single goroutine.
type Virtual struct {
	mu  sync.RWMutex
	now time.Duration
}

// NewVirtual returns a virtual clock starting at 0.
func NewVirtual() *Virtual { return &Virtual{} }

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.now
}

// Advance moves the clock forward to t. Moving backwards is a programming
// error in the event loop and panics so it cannot corrupt causality silently.
func (v *Virtual) Advance(t time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t < v.now {
		panic("clock: virtual time moved backwards")
	}
	v.now = t
}

// AdvanceBy moves the clock forward by d, which must be non-negative.
func (v *Virtual) AdvanceBy(d time.Duration) {
	if d < 0 {
		panic("clock: negative advance")
	}
	v.mu.Lock()
	v.now += d
	v.mu.Unlock()
}

// Real maps virtual time onto the wall clock. A Speedup of 10 means ten
// seconds of simulated GPU time elapse per wall-clock second, letting the
// demo server replay minute-scale experiments interactively.
type Real struct {
	epoch   time.Time
	speedup float64
}

// NewReal returns a real clock whose epoch is now. speedup must be positive;
// 1 replays in real time.
func NewReal(speedup float64) *Real {
	if speedup <= 0 {
		panic("clock: speedup must be positive")
	}
	return &Real{epoch: time.Now(), speedup: speedup}
}

// Now returns virtual time elapsed since the epoch.
func (r *Real) Now() time.Duration {
	wall := time.Since(r.epoch)
	return time.Duration(float64(wall) * r.speedup)
}

// SleepUntil blocks until virtual time t has been reached.
func (r *Real) SleepUntil(t time.Duration) {
	for {
		now := r.Now()
		if now >= t {
			return
		}
		wall := time.Duration(float64(t-now) / r.speedup)
		if wall < time.Millisecond {
			wall = time.Millisecond
		}
		time.Sleep(wall)
	}
}

var (
	_ Clock   = (*Virtual)(nil)
	_ Clock   = (*Real)(nil)
	_ Sleeper = (*Real)(nil)
)
