// Package gantt renders GPU-occupancy timelines from simulation run logs as
// ASCII charts — the textual analogue of the paper's Figure 1 and Figure 6
// schedule diagrams. One row per GPU, one column per time bucket, one rune
// per request.
package gantt

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/workload"
)

// Config controls rendering.
type Config struct {
	// Width is the number of time columns (default 80).
	Width int
	// From/To bound the rendered window; zero To means the log's end.
	From, To time.Duration
	// Runes assigns request IDs to glyphs; unassigned requests cycle
	// through digits and letters.
	Runes map[workload.RequestID]rune
}

// Render draws the run log of a simulation result.
func Render(res *control.Result, cfg Config) string {
	if cfg.Width <= 0 {
		cfg.Width = 80
	}
	to := cfg.To
	if to == 0 {
		for _, r := range res.Runs {
			if r.End > to {
				to = r.End
			}
		}
	}
	if to <= cfg.From {
		return "(empty timeline)\n"
	}
	span := to - cfg.From
	bucket := span / time.Duration(cfg.Width)
	if bucket <= 0 {
		bucket = time.Millisecond
	}

	glyphs := cfg.Runes
	if glyphs == nil {
		glyphs = map[workload.RequestID]rune{}
	}
	const palette = "123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	next := 0
	glyphFor := func(id workload.RequestID) rune {
		if g, ok := glyphs[id]; ok {
			return g
		}
		g := rune(palette[next%len(palette)])
		next++
		glyphs[id] = g
		return g
	}

	// rows[gpu][col] = glyph.
	rows := make([][]rune, res.NGPU)
	for g := range rows {
		rows[g] = []rune(strings.Repeat(".", cfg.Width))
	}
	runs := append([]control.RunRecord(nil), res.Runs...)
	sort.Slice(runs, func(i, j int) bool { return runs[i].Start < runs[j].Start })
	for _, r := range runs {
		if r.End <= cfg.From || r.Start >= to {
			continue // outside the window: not drawn, not in the legend
		}
		glyph := glyphFor(r.Requests[0])
		if len(r.Requests) > 1 {
			glyph = '#' // batched block
		}
		c0 := int((r.Start - cfg.From) / bucket)
		c1 := int((r.End - cfg.From) / bucket)
		if c1 <= c0 {
			c1 = c0 + 1
		}
		for c := c0; c < c1 && c < cfg.Width; c++ {
			if c < 0 {
				continue
			}
			for _, gpu := range r.GPUs() {
				if int(gpu) < len(rows) {
					rows[gpu][c] = glyph
				}
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "time %s .. %s (one column ≈ %s)\n",
		cfg.From.Round(time.Millisecond), to.Round(time.Millisecond), bucket.Round(time.Millisecond))
	for g := res.NGPU - 1; g >= 0; g-- {
		fmt.Fprintf(&sb, "GPU%d |%s|\n", g, string(rows[g]))
	}
	// Legend sorted by request id.
	ids := make([]workload.RequestID, 0, len(glyphs))
	for id := range glyphs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > 0 {
		sb.WriteString("legend:")
		for _, id := range ids {
			fmt.Fprintf(&sb, " %c=req%d", glyphs[id], id)
		}
		sb.WriteString("  #=batched  .=idle\n")
	}
	return sb.String()
}
