package gantt

import (
	"strings"
	"testing"
	"time"

	"tetriserve/internal/model"
	"tetriserve/internal/sim"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

func mkResult() *sim.Result {
	return &sim.Result{
		NGPU: 4,
		Runs: []sim.RunRecord{
			{
				Start: 0, End: time.Second, Degree: 2,
				Requests: []workload.RequestID{1},
				Res:      model.Res1024,
				Group:    simgpu.MaskOf(0, 1),
			},
			{
				Start: time.Second, End: 2 * time.Second, Degree: 1,
				Requests: []workload.RequestID{2, 3},
				Res:      model.Res256,
				Group:    simgpu.MaskOf(3),
				Batched:  true,
			},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	out := Render(mkResult(), Config{Width: 20})
	if !strings.Contains(out, "GPU0") || !strings.Contains(out, "GPU3") {
		t.Fatalf("missing GPU rows:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Header + 4 GPU rows + legend.
	if len(lines) < 6 {
		t.Fatalf("too few lines:\n%s", out)
	}
	// GPU0 busy for the first half: its row should start with the glyph
	// for request 1 and contain idle dots later.
	var gpu0 string
	for _, l := range lines {
		if strings.HasPrefix(l, "GPU0") {
			gpu0 = l
		}
	}
	if !strings.Contains(gpu0, "1") || !strings.Contains(gpu0, ".") {
		t.Fatalf("GPU0 row wrong: %q", gpu0)
	}
}

func TestRenderBatchedGlyph(t *testing.T) {
	out := Render(mkResult(), Config{Width: 20})
	if !strings.Contains(out, "#") {
		t.Fatalf("batched block should render as '#':\n%s", out)
	}
}

func TestRenderCustomRunes(t *testing.T) {
	out := Render(mkResult(), Config{
		Width: 20,
		Runes: map[workload.RequestID]rune{1: 'L'},
	})
	if !strings.Contains(out, "L=req1") {
		t.Fatalf("legend missing custom rune:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(&sim.Result{NGPU: 2}, Config{})
	if !strings.Contains(out, "empty timeline") {
		t.Fatalf("empty result should say so: %q", out)
	}
}

func TestRenderWindow(t *testing.T) {
	out := Render(mkResult(), Config{Width: 10, From: 1500 * time.Millisecond, To: 2 * time.Second})
	// Request 1 ended at 1s; only the batch should appear.
	if strings.Contains(out, "1=req1") && strings.Contains(out, " 1") {
		t.Fatalf("out-of-window block rendered:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("in-window batch missing:\n%s", out)
	}
}

func TestRenderIdleGPUsAllDots(t *testing.T) {
	out := Render(mkResult(), Config{Width: 20})
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "GPU2") {
			body := l[strings.Index(l, "|")+1 : strings.LastIndex(l, "|")]
			if strings.Trim(body, ".") != "" {
				t.Fatalf("GPU2 never ran anything but shows %q", body)
			}
		}
	}
}
