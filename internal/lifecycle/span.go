// Package lifecycle is the span-structured, per-request trace layer: it
// listens to the control loop's existing Hooks stream (no new hot-path
// instrumentation) and assembles, for every request, an ordered timeline of
// phase spans — admission, plan-wait, queue, compute segments, requeue and
// preemption markers, finish/drop — with virtual (clock-domain) timestamps.
// The same recorder attaches to the live driver and to sim.RunSharded, so a
// routed request's timeline and the simulator's replay of the same scenario
// are bit-identical by construction.
//
// Phase semantics, mapped onto the hook stream:
//
//	admission  instant: the request entered this loop (Admitted)
//	plan-wait  Admitted (or requeue) → the first plan that considered the
//	           request (PlanComputed with it in ctx.Pending)
//	queue      first considering plan → dispatch (RunStarted); zero-length
//	           when the considering plan scheduled it immediately
//	compute    RunStarted → RunFinished/Aborted/Preempted, one span per run
//	           segment, annotated with steps, cache-elided steps, SP degree
//	           and the GPU group
//	preempted  instant: an elastic resize interrupted the block (RunPreempted)
//	requeued   instant: the survivor returned to the queue, with cause
//	finish     instant at delivery (Finished), with met/latency
//	drop       instant at abandonment (Dropped), with cause
package lifecycle

import (
	"time"
)

// SpanKind names a timeline phase.
type SpanKind string

// Span kinds, in typical timeline order.
const (
	SpanAdmission SpanKind = "admission"
	SpanPlanWait  SpanKind = "plan-wait"
	SpanQueue     SpanKind = "queue"
	SpanCompute   SpanKind = "compute"
	SpanPreempted SpanKind = "preempted"
	SpanRequeued  SpanKind = "requeued"
	SpanFinish    SpanKind = "finish"
	SpanDrop      SpanKind = "drop"
)

// Span is one phase segment of a request's timeline. Timestamps are
// microseconds in the loop's clock domain (virtual time under the simulator,
// speedup-scaled wall time under the live driver), so identical scenarios
// produce identical spans.
type Span struct {
	Kind    SpanKind `json:"kind"`
	StartUS int64    `json:"start_us"`
	EndUS   int64    `json:"end_us"`

	// Compute-segment annotations.
	Steps       int   `json:"steps,omitempty"`
	ElidedSteps int   `json:"elided_steps,omitempty"`
	Degree      int   `json:"degree,omitempty"`
	GPUs        []int `json:"gpus,omitempty"`
	Batched     bool  `json:"batched,omitempty"`

	// Cause annotates requeued/drop spans ("fault", "resize", drop causes)
	// and compute segments that ended abnormally.
	Cause string `json:"cause,omitempty"`
}

// Duration returns the span's extent.
func (s Span) Duration() time.Duration {
	return time.Duration(s.EndUS-s.StartUS) * time.Microsecond
}

// Timeline is the full lifecycle record of one request.
type Timeline struct {
	TraceID string `json:"trace_id"`
	ID      int    `json:"request_id"`
	Tenant  string `json:"tenant,omitempty"`
	// Class is the request's resolution class (the SLO contract dimension).
	Class string `json:"class"`
	Shard string `json:"shard,omitempty"`

	SLOUS       int64 `json:"slo_us"`
	ArrivalUS   int64 `json:"arrival_us"`
	DeadlineUS  int64 `json:"deadline_us"`
	CompletedUS int64 `json:"completed_us,omitempty"`

	Done    bool   `json:"done"`
	Dropped bool   `json:"dropped,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Met     bool   `json:"met"`
	// ElidedSteps totals cache-approximated steps across all segments.
	ElidedSteps int `json:"elided_steps,omitempty"`

	Spans []Span `json:"spans"`

	// open indexes the currently open span, -1 when none. Internal recorder
	// state, meaningless on copies returned by Lookup.
	open int
}

// PhaseSeconds sums span durations per kind — the derived phase-latency
// decomposition (instant markers contribute zero).
func (t *Timeline) PhaseSeconds() map[SpanKind]float64 {
	out := make(map[SpanKind]float64, 4)
	for _, s := range t.Spans {
		if d := s.Duration(); d > 0 {
			out[s.Kind] += d.Seconds()
		}
	}
	return out
}

// Clone deep-copies the timeline (spans included).
func (t *Timeline) Clone() *Timeline {
	cp := *t
	cp.Spans = append([]Span(nil), t.Spans...)
	for i, s := range cp.Spans {
		cp.Spans[i].GPUs = append([]int(nil), s.GPUs...)
	}
	return &cp
}
