package lifecycle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/engine"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

const ms = time.Millisecond

func req(id workload.RequestID, trace, tenant string) *workload.Request {
	return &workload.Request{
		ID:      id,
		Res:     model.Res512,
		Steps:   4,
		Arrival: 1 * ms,
		SLO:     100 * ms,
		TraceID: trace,
		Tenant:  tenant,
	}
}

func runFor(r *workload.Request, start, end time.Duration) *engine.Run {
	return &engine.Run{
		Asg: sched.Assignment{
			Requests: []workload.RequestID{r.ID},
			Group:    simgpu.MaskOf(0, 1),
			Steps:    r.Steps,
		},
		Start:   start,
		End:     end,
		Steps:   map[workload.RequestID]int{r.ID: r.Steps},
		Degree:  2,
		Batched: false,
	}
}

// planConsidering simulates a PlanComputed whose context lists r as pending.
func planConsidering(h control.Hooks, at time.Duration, r *workload.Request) {
	h.PlanComputed(at, 0, &sched.PlanContext{
		Now:     at,
		Pending: []*sched.RequestState{{Req: r, Remaining: r.Steps}},
	})
}

// TestHappyPathTimeline drives the canonical hook sequence and checks the
// resulting span structure: admission, plan-wait, queue, compute, finish.
func TestHappyPathTimeline(t *testing.T) {
	rec := NewRecorder(Config{Shard: "s0"})
	h := rec.Hooks()
	r := req(7, "t-1", "acme")

	h.Admitted(1*ms, r)
	planConsidering(h, 2*ms, r)
	run := runFor(r, 3*ms, 9*ms)
	h.RunStarted(3*ms, run)
	h.RunFinished(9*ms, run)
	h.StepsElided(9*ms, r.ID, 2)
	h.Finished(9*ms, control.Outcome{ID: r.ID, Completion: 9 * ms, Met: true})

	tl, ok := rec.Lookup("t-1")
	if !ok {
		t.Fatal("timeline not found by trace id")
	}
	wantKinds := []SpanKind{SpanAdmission, SpanPlanWait, SpanQueue, SpanCompute, SpanFinish}
	if len(tl.Spans) != len(wantKinds) {
		t.Fatalf("got %d spans, want %d: %+v", len(tl.Spans), len(wantKinds), tl.Spans)
	}
	for i, k := range wantKinds {
		if tl.Spans[i].Kind != k {
			t.Errorf("span %d kind = %s, want %s", i, tl.Spans[i].Kind, k)
		}
	}
	if !tl.Done || tl.Dropped || !tl.Met {
		t.Errorf("Done=%v Dropped=%v Met=%v, want true/false/true", tl.Done, tl.Dropped, tl.Met)
	}
	compute := tl.Spans[3]
	if compute.Steps != 4 || compute.Degree != 2 || compute.ElidedSteps != 2 {
		t.Errorf("compute annotations = %+v, want steps=4 degree=2 elided=2", compute)
	}
	if len(compute.GPUs) != 2 {
		t.Errorf("compute GPUs = %v, want 2 entries", compute.GPUs)
	}
	if tl.ElidedSteps != 2 {
		t.Errorf("timeline ElidedSteps = %d, want 2", tl.ElidedSteps)
	}
	ph := tl.PhaseSeconds()
	if got := ph[SpanPlanWait]; got != (1 * ms).Seconds() {
		t.Errorf("plan-wait = %vs, want 1ms", got)
	}
	if got := ph[SpanQueue]; got != (1 * ms).Seconds() {
		t.Errorf("queue = %vs, want 1ms", got)
	}
	if got := ph[SpanCompute]; got != (6 * ms).Seconds() {
		t.Errorf("compute = %vs, want 6ms", got)
	}

	// Lookup by decimal request id resolves the same timeline.
	byID, ok := rec.Lookup("7")
	if !ok || byID.TraceID != "t-1" {
		t.Fatalf("lookup by id: ok=%v trace=%q", ok, byID.TraceID)
	}
}

// TestZeroLengthWaitsPruned checks that a request scheduled at the same
// instant it was considered loses its zero-length queue span at finalize.
func TestZeroLengthWaitsPruned(t *testing.T) {
	rec := NewRecorder(Config{})
	h := rec.Hooks()
	r := req(1, "", "")

	h.Admitted(1*ms, r)
	planConsidering(h, 2*ms, r) // plan-wait 1ms, queue opens at 2ms
	run := runFor(r, 2*ms, 8*ms)
	h.RunStarted(2*ms, run) // queue closes at 2ms: zero-length
	h.RunFinished(8*ms, run)
	h.Finished(8*ms, control.Outcome{ID: r.ID, Completion: 8 * ms, Met: true})

	tl, ok := rec.Lookup("req-1") // derived trace id
	if !ok {
		t.Fatal("derived trace id req-1 not found")
	}
	for _, s := range tl.Spans {
		if s.Kind == SpanQueue {
			t.Errorf("zero-length queue span survived finalize: %+v", s)
		}
	}
}

// TestRequeueAndPreemption checks fault and resize interruption markers.
func TestRequeueAndPreemption(t *testing.T) {
	rec := NewRecorder(Config{})
	h := rec.Hooks()
	r := req(3, "t-9", "")

	h.Admitted(1*ms, r)
	planConsidering(h, 2*ms, r)
	run := runFor(r, 3*ms, 20*ms)
	h.RunStarted(3*ms, run)
	// Elastic resize preempts the block mid-flight at 5ms.
	h.RunPreempted(5*ms, run, map[workload.RequestID]int{r.ID: 1})
	h.Requeued(5*ms, r.ID, control.RequeueResize)
	planConsidering(h, 6*ms, r)
	run2 := runFor(r, 7*ms, 12*ms)
	h.RunStarted(7*ms, run2)
	// GPU fault aborts the second segment at 9ms.
	h.RunAborted(9*ms, run2, map[workload.RequestID]int{r.ID: 1})
	h.Requeued(9*ms, r.ID, control.RequeueFault)
	planConsidering(h, 10*ms, r)
	h.Dropped(11*ms, control.Outcome{ID: r.ID, Dropped: true, Cause: control.DropExpired})

	tl, ok := rec.Lookup("t-9")
	if !ok {
		t.Fatal("timeline not found")
	}
	var kinds []string
	for _, s := range tl.Spans {
		kinds = append(kinds, string(s.Kind))
	}
	want := []string{
		"admission", "plan-wait", "queue", "compute", "preempted", "requeued",
		"plan-wait", "queue", "compute", "requeued", "plan-wait", "queue", "drop",
	}
	if got := strings.Join(kinds, ","); got != strings.Join(want, ",") {
		t.Fatalf("span kinds\n got %s\nwant %s", got, strings.Join(want, ","))
	}
	if c := tl.Spans[3].Cause; c != "resize" {
		t.Errorf("first compute cause = %q, want resize", c)
	}
	if c := tl.Spans[5].Cause; c != "resize" {
		t.Errorf("first requeue cause = %q, want resize", c)
	}
	if c := tl.Spans[8].Cause; c != "fault" {
		t.Errorf("second compute cause = %q, want fault", c)
	}
	if c := tl.Spans[9].Cause; c != "fault" {
		t.Errorf("second requeue cause = %q, want fault", c)
	}
	if !tl.Dropped || tl.Met {
		t.Errorf("Dropped=%v Met=%v, want true/false", tl.Dropped, tl.Met)
	}
}

// TestRetentionRingBounds finalizes more timelines than Capacity and checks
// that memory (the ring and both lookup maps) stays bounded while the
// finalized counter keeps the true total.
func TestRetentionRingBounds(t *testing.T) {
	const capacity = 8
	rec := NewRecorder(Config{Capacity: capacity})
	h := rec.Hooks()
	for i := 1; i <= 3*capacity; i++ {
		r := req(workload.RequestID(i), fmt.Sprintf("t-%d", i), "")
		at := time.Duration(i) * ms
		h.Admitted(at, r)
		planConsidering(h, at+ms/2, r)
		run := runFor(r, at+ms, at+2*ms)
		h.RunStarted(at+ms, run)
		h.RunFinished(at+2*ms, run)
		h.Finished(at+2*ms, control.Outcome{ID: r.ID, Completion: at + 2*ms, Met: true})
	}
	if got := rec.Finalized(); got != 3*capacity {
		t.Errorf("Finalized() = %d, want %d", got, 3*capacity)
	}
	rec.mu.Lock()
	ringLen, traces, ids := len(rec.final), len(rec.byTrace), len(rec.byID)
	rec.mu.Unlock()
	if ringLen != capacity || traces != capacity || ids != capacity {
		t.Errorf("ring=%d byTrace=%d byID=%d, want all %d", ringLen, traces, ids, capacity)
	}
	// Oldest evicted, newest retained.
	if _, ok := rec.Lookup("t-1"); ok {
		t.Error("t-1 should have been evicted")
	}
	if _, ok := rec.Lookup(fmt.Sprintf("t-%d", 3*capacity)); !ok {
		t.Error("newest timeline missing")
	}
}

// TestSinkStreamsJSONL checks the span-log sink receives one valid JSON line
// per finalized timeline, even for timelines beyond the retention ring.
func TestSinkStreamsJSONL(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(Config{Capacity: 2, Sink: &buf})
	h := rec.Hooks()
	for i := 1; i <= 5; i++ {
		r := req(workload.RequestID(i), "", "team")
		at := time.Duration(i) * ms
		h.Admitted(at, r)
		planConsidering(h, at+ms/2, r)
		run := runFor(r, at+ms, at+2*ms)
		h.RunStarted(at+ms, run)
		h.RunFinished(at+2*ms, run)
		h.Finished(at+2*ms, control.Outcome{ID: r.ID, Completion: at + 2*ms, Met: i%2 == 0})
	}
	if err := rec.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("sink got %d lines, want 5", len(lines))
	}
	for i, line := range lines {
		var tl Timeline
		if err := json.Unmarshal([]byte(line), &tl); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if tl.TraceID != fmt.Sprintf("req-%d", i+1) {
			t.Errorf("line %d trace = %q, want req-%d", i, tl.TraceID, i+1)
		}
		if !tl.Done {
			t.Errorf("line %d not marked done", i)
		}
	}

	att := rec.Attainment()
	if len(att) != 1 || att[0].Tenant != "team" || att[0].Finished != 5 || att[0].Met != 2 {
		t.Errorf("attainment = %+v, want team 2/5", att)
	}
	ph := rec.Phases()
	if len(ph) != 1 || ph[0].Requests != 5 {
		t.Errorf("phases = %+v, want one class with 5 requests", ph)
	}
}
