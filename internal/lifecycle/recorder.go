package lifecycle

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/engine"
	"tetriserve/internal/sched"
	"tetriserve/internal/workload"
)

// Config tunes a Recorder.
type Config struct {
	// Shard names this loop in exported timelines ("" omits the field).
	Shard string
	// Capacity bounds retained finalized timelines: the newest Capacity
	// finalized requests stay queryable, older ones are evicted (active
	// requests are always retained). Default 4096.
	Capacity int
	// Sink, when set, receives every finalized timeline as one JSON line —
	// the simulator's bounded-memory span log (timelines stream out instead
	// of accumulating). Writes happen on the loop goroutine under the
	// recorder lock; give it a buffered writer.
	Sink io.Writer
	// OnFinalized observes finalized timelines synchronously (the telemetry
	// plane's phase-histogram and SLO-attainment feed). The callback must
	// not retain the timeline.
	OnFinalized func(*Timeline)
}

// Recorder assembles per-request span timelines from a control loop's hook
// stream. Hook callbacks run on the loop goroutine; lookups are safe from
// any goroutine (everything is guarded by one mutex — the hook path takes
// it briefly per transition, never blocking on I/O except the optional
// sink write at finalization).
type Recorder struct {
	mu  sync.Mutex
	cfg Config

	active  map[workload.RequestID]*Timeline
	byTrace map[string]*Timeline
	byID    map[workload.RequestID]*Timeline

	// final is a ring of finalized timelines; ringAt is the next overwrite
	// position once the ring is full.
	final  []*Timeline
	ringAt int

	finalized int
	sinkErr   error

	tenants map[string]*tenantAgg
	phases  map[string]*phaseAgg
}

type tenantAgg struct{ met, done int }

type phaseAgg struct {
	planWait, queue, compute float64
	count                    int
}

// NewRecorder builds a recorder.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	return &Recorder{
		cfg:     cfg,
		active:  map[workload.RequestID]*Timeline{},
		byTrace: map[string]*Timeline{},
		byID:    map[workload.RequestID]*Timeline{},
		final:   make([]*Timeline, 0, min(cfg.Capacity, 256)),
		tenants: map[string]*tenantAgg{},
		phases:  map[string]*phaseAgg{},
	}
}

// Hooks returns the control-loop attachment; compose with Hooks.Then.
func (r *Recorder) Hooks() control.Hooks {
	return control.Hooks{
		Admitted:     r.onAdmitted,
		PlanComputed: r.onPlanComputed,
		RunStarted:   r.onRunStarted,
		RunFinished:  r.onRunFinished,
		RunAborted:   r.onRunAborted,
		RunPreempted: r.onRunPreempted,
		StepsElided:  r.onStepsElided,
		Requeued:     r.onRequeued,
		Finished:     r.onFinished,
		Dropped:      r.onDropped,
	}
}

// Lookup returns a deep copy of a timeline by trace ID or by decimal
// request ID, active or finalized.
func (r *Recorder) Lookup(key string) (*Timeline, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tl, ok := r.byTrace[key]; ok {
		return tl.Clone(), true
	}
	var id workload.RequestID
	if _, err := fmt.Sscanf(key, "%d", &id); err == nil {
		if tl, ok := r.byID[id]; ok {
			return tl.Clone(), true
		}
	}
	return nil, false
}

// LookupID returns a deep copy of a timeline by request ID.
func (r *Recorder) LookupID(id workload.RequestID) (*Timeline, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tl, ok := r.byID[id]; ok {
		return tl.Clone(), true
	}
	return nil, false
}

// Finalized reports how many timelines have been finalized (including any
// the retention ring has since evicted).
func (r *Recorder) Finalized() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finalized
}

// SinkErr returns the first error the span-log sink reported, if any.
func (r *Recorder) SinkErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// TenantAttainment is one tenant's SLO attainment over finalized requests.
type TenantAttainment struct {
	Tenant   string  `json:"tenant"`
	Finished int     `json:"finished"`
	Met      int     `json:"met"`
	Rate     float64 `json:"rate"`
}

// ClassPhases is the accumulated phase decomposition for one resolution
// class: total seconds spent per phase across finalized requests.
type ClassPhases struct {
	Class     string  `json:"class"`
	Requests  int     `json:"requests"`
	PlanWaitS float64 `json:"plan_wait_s"`
	QueueS    float64 `json:"queue_s"`
	ComputeS  float64 `json:"compute_s"`
}

// Attainment returns per-tenant SLO attainment over finalized requests,
// sorted by tenant name.
func (r *Recorder) Attainment() []TenantAttainment {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantAttainment, 0, len(r.tenants))
	for name, a := range r.tenants {
		t := TenantAttainment{Tenant: name, Finished: a.done, Met: a.met}
		if a.done > 0 {
			t.Rate = float64(a.met) / float64(a.done)
		}
		out = append(out, t)
	}
	sortBy(out, func(a, b TenantAttainment) bool { return a.Tenant < b.Tenant })
	return out
}

// Phases returns the per-class phase decomposition, sorted by class name.
func (r *Recorder) Phases() []ClassPhases {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ClassPhases, 0, len(r.phases))
	for class, a := range r.phases {
		out = append(out, ClassPhases{
			Class: class, Requests: a.count,
			PlanWaitS: a.planWait, QueueS: a.queue, ComputeS: a.compute,
		})
	}
	sortBy(out, func(a, b ClassPhases) bool { return a.Class < b.Class })
	return out
}

func sortBy[T any](s []T, less func(a, b T) bool) {
	// Insertion sort: these slices are tiny (tenants, resolution classes).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func us(d time.Duration) int64 { return d.Microseconds() }

func (r *Recorder) onAdmitted(now time.Duration, req *workload.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	trace := req.TraceID
	if trace == "" {
		trace = fmt.Sprintf("req-%d", req.ID)
	}
	tl := &Timeline{
		TraceID:    trace,
		ID:         int(req.ID),
		Tenant:     req.Tenant,
		Class:      req.Res.String(),
		Shard:      r.cfg.Shard,
		SLOUS:      us(req.SLO),
		ArrivalUS:  us(now),
		DeadlineUS: us(req.Deadline()),
		open:       -1,
	}
	tl.Spans = append(tl.Spans, Span{Kind: SpanAdmission, StartUS: us(now), EndUS: us(now)})
	r.openSpan(tl, SpanPlanWait, now)
	r.active[req.ID] = tl
	r.byTrace[trace] = tl
	r.byID[req.ID] = tl
}

func (r *Recorder) openSpan(tl *Timeline, kind SpanKind, at time.Duration) *Span {
	tl.Spans = append(tl.Spans, Span{Kind: kind, StartUS: us(at), EndUS: us(at)})
	tl.open = len(tl.Spans) - 1
	return &tl.Spans[tl.open]
}

func (r *Recorder) closeSpan(tl *Timeline, at time.Duration) {
	if tl.open < 0 {
		return
	}
	tl.Spans[tl.open].EndUS = us(at)
	tl.open = -1
}

// dropOpen removes the open span entirely (tentative plan-wait at finish).
func (r *Recorder) dropOpen(tl *Timeline) {
	if tl.open < 0 {
		return
	}
	tl.Spans = tl.Spans[:tl.open]
	tl.open = -1
}

func (r *Recorder) onPlanComputed(now, _ time.Duration, ctx *sched.PlanContext) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range ctx.Pending {
		tl, ok := r.active[st.Req.ID]
		if !ok || tl.open < 0 || tl.Spans[tl.open].Kind != SpanPlanWait {
			continue
		}
		// First plan that considered the request: plan-wait ends, queueing
		// (considered but not yet dispatched) begins.
		r.closeSpan(tl, now)
		r.openSpan(tl, SpanQueue, now)
	}
}

func (r *Recorder) onRunStarted(now time.Duration, run *engine.Run) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var gpus []int
	for _, id := range run.Asg.Requests {
		tl, ok := r.active[id]
		if !ok {
			continue
		}
		r.closeSpan(tl, now)
		sp := r.openSpan(tl, SpanCompute, now)
		sp.Steps = run.Steps[id]
		sp.Degree = run.Degree
		sp.Batched = run.Batched
		if gpus == nil {
			for _, g := range run.Asg.Group.IDs() {
				gpus = append(gpus, int(g))
			}
		}
		sp.GPUs = gpus
	}
}

// endCompute closes every member's compute segment at `at`, tagging an
// abnormal cause ("fault"/"resize") when the block did not retire cleanly.
func (r *Recorder) endCompute(at time.Duration, run *engine.Run, cause string) {
	for _, id := range run.Asg.Requests {
		tl, ok := r.active[id]
		if !ok || tl.open < 0 || tl.Spans[tl.open].Kind != SpanCompute {
			continue
		}
		tl.Spans[tl.open].Cause = cause
		r.closeSpan(tl, at)
	}
}

func (r *Recorder) onRunFinished(_ time.Duration, run *engine.Run) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.endCompute(run.End, run, "")
	// A member with steps left goes straight back to pending with no hook of
	// its own; open a tentative plan-wait span — Finished/Dropped (which fire
	// synchronously for retiring members) discard it.
	for _, id := range run.Asg.Requests {
		if tl, ok := r.active[id]; ok && tl.open < 0 {
			r.openSpan(tl, SpanPlanWait, run.End)
		}
	}
}

func (r *Recorder) onRunAborted(now time.Duration, run *engine.Run, _ map[workload.RequestID]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.endCompute(now, run, string(control.RequeueFault))
}

func (r *Recorder) onRunPreempted(now time.Duration, run *engine.Run, _ map[workload.RequestID]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.endCompute(now, run, string(control.RequeueResize))
	for _, id := range run.Asg.Requests {
		if tl, ok := r.active[id]; ok {
			tl.Spans = append(tl.Spans, Span{Kind: SpanPreempted, StartUS: us(now), EndUS: us(now)})
		}
	}
}

func (r *Recorder) onStepsElided(_ time.Duration, id workload.RequestID, approx int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.active[id]
	if !ok {
		return
	}
	tl.ElidedSteps += approx
	// Attach to the most recent compute segment (already closed by the run
	// retirement that fired just before this credit).
	for i := len(tl.Spans) - 1; i >= 0; i-- {
		if tl.Spans[i].Kind == SpanCompute {
			tl.Spans[i].ElidedSteps += approx
			return
		}
	}
}

func (r *Recorder) onRequeued(now time.Duration, id workload.RequestID, cause control.RequeueCause) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.active[id]
	if !ok {
		return
	}
	tl.Spans = append(tl.Spans, Span{Kind: SpanRequeued, StartUS: us(now), EndUS: us(now), Cause: string(cause)})
	tl.open = -1
	r.openSpan(tl, SpanPlanWait, now)
}

func (r *Recorder) onFinished(_ time.Duration, o control.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.active[o.ID]
	if !ok {
		return
	}
	r.dropOpen(tl)
	tl.Spans = append(tl.Spans, Span{Kind: SpanFinish, StartUS: us(o.Completion), EndUS: us(o.Completion)})
	tl.CompletedUS = us(o.Completion)
	tl.Met = o.Met
	r.finalize(tl)
}

func (r *Recorder) onDropped(now time.Duration, o control.Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.active[o.ID]
	if !ok {
		return
	}
	r.closeSpan(tl, now)
	tl.Spans = append(tl.Spans, Span{Kind: SpanDrop, StartUS: us(now), EndUS: us(now), Cause: string(o.Cause)})
	tl.Dropped = true
	tl.Cause = string(o.Cause)
	r.finalize(tl)
}

// finalize prunes zero-length wait spans, updates the aggregates, streams
// the timeline to the sink, and moves it into the bounded retention ring.
// Caller holds r.mu.
func (r *Recorder) finalize(tl *Timeline) {
	kept := tl.Spans[:0]
	for _, s := range tl.Spans {
		if (s.Kind == SpanPlanWait || s.Kind == SpanQueue) && s.StartUS == s.EndUS {
			continue
		}
		kept = append(kept, s)
	}
	tl.Spans = kept
	tl.Done = true
	delete(r.active, workload.RequestID(tl.ID))
	r.finalized++

	ta := r.tenants[tl.Tenant]
	if ta == nil {
		ta = &tenantAgg{}
		r.tenants[tl.Tenant] = ta
	}
	ta.done++
	if tl.Met {
		ta.met++
	}
	pa := r.phases[tl.Class]
	if pa == nil {
		pa = &phaseAgg{}
		r.phases[tl.Class] = pa
	}
	pa.count++
	for kind, secs := range tl.PhaseSeconds() {
		switch kind {
		case SpanPlanWait:
			pa.planWait += secs
		case SpanQueue:
			pa.queue += secs
		case SpanCompute:
			pa.compute += secs
		}
	}

	if r.cfg.OnFinalized != nil {
		r.cfg.OnFinalized(tl)
	}
	if r.cfg.Sink != nil && r.sinkErr == nil {
		if data, err := json.Marshal(tl); err != nil {
			r.sinkErr = err
		} else if _, err := r.cfg.Sink.Write(append(data, '\n')); err != nil {
			r.sinkErr = err
		}
	}

	if len(r.final) < r.cfg.Capacity {
		r.final = append(r.final, tl)
		return
	}
	old := r.final[r.ringAt]
	r.final[r.ringAt] = tl
	r.ringAt = (r.ringAt + 1) % r.cfg.Capacity
	// Evict the overwritten timeline from the lookup maps — unless a newer
	// timeline already claimed the same key.
	if r.byTrace[old.TraceID] == old {
		delete(r.byTrace, old.TraceID)
	}
	if r.byID[workload.RequestID(old.ID)] == old {
		delete(r.byID, workload.RequestID(old.ID))
	}
}
