package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// newStoppedDriver builds a valid driver without starting it.
func newStoppedDriver(t *testing.T, mutate ...func(*DriverConfig)) *Driver {
	t.Helper()
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	cfg := DriverConfig{
		Model:     mdl,
		Topo:      topo,
		Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
		Speedup:   200,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestStopIdempotent: the second (and third) Stop must neither panic on the
// re-closed channel nor deadlock waiting for an already-exited loop.
func TestStopIdempotent(t *testing.T) {
	d := newTestDriver(t)
	d.Stop()
	d.Stop()
	d.Stop() // t.Cleanup adds a fourth
}

// TestStopBeforeStart: stopping a never-started driver must return instead of
// blocking forever on a loop that will never close d.stopped.
func TestStopBeforeStart(t *testing.T) {
	d := newStoppedDriver(t)
	done := make(chan struct{})
	go func() {
		d.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop before Start deadlocked")
	}
	// Start after Stop launches a loop that exits immediately; Stop again
	// must still return.
	d.Start()
	d.Stop()
}

// TestSubmitAfterStopRollsBack is the leak regression: a Submit that loses
// the race with Stop must not leave a permanently-queued job behind.
func TestSubmitAfterStopRollsBack(t *testing.T) {
	d := newTestDriver(t)
	d.Stop()
	if _, err := d.Submit(workload.Prompt{Text: "x"}, model.Res256, 0); err == nil {
		t.Fatal("Submit on a stopped driver accepted")
	}
	st := d.Snapshot()
	if st.Queued != 0 {
		t.Fatalf("stopped driver reports %d queued jobs; the insertion leaked", st.Queued)
	}
	if _, ok := d.JobStatus(0); ok {
		t.Fatal("rolled-back job still visible")
	}
}

// TestConcurrentSubmitStopSnapshot hammers the public API from many
// goroutines; run with -race. Submit errors after Stop are expected — the
// invariant is no data race, no panic, and truthful counters.
func TestConcurrentSubmitStopSnapshot(t *testing.T) {
	d := newTestDriver(t)
	var wg sync.WaitGroup
	stopAt := time.After(50 * time.Millisecond)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; ; j++ {
				_, err := d.Submit(workload.Prompt{Text: "x", Theme: worker, Mods: []int{j}}, model.Res256, 0)
				if err != nil {
					if !strings.Contains(err.Error(), "stopped") {
						t.Errorf("unexpected Submit error: %v", err)
					}
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			st := d.Snapshot()
			if st.Queued < 0 || st.Running < 0 {
				t.Errorf("negative queue state: %+v", st)
				return
			}
			select {
			case <-d.stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-stopAt
		d.FailGPUs(simgpu.MaskOf(6)) // exercise the fault plane concurrently too
		d.Stop()
		d.Stop()
	}()
	wg.Wait()
	st := d.Snapshot()
	if st.Queued != 0 && st.Running != 0 && st.Completed == 0 {
		t.Fatalf("implausible final stats: %+v", st)
	}
}

// TestDriverExpiresQueuedJobs: with eager admission off, a job whose
// DropLateFactor × SLO budget elapses before the first round tick is dropped
// at the planning boundary, never started.
func TestDriverExpiresQueuedJobs(t *testing.T) {
	d := newStoppedDriver(t, func(cfg *DriverConfig) {
		c := core.DefaultConfig()
		c.EagerAdmission = false
		prof := costmodel.BuildProfile(costmodel.NewEstimator(cfg.Model, cfg.Topo), costmodel.ProfilerConfig{})
		cfg.Scheduler = core.NewScheduler(prof, cfg.Topo, c)
		cfg.DropLateFactor = 1.0
	})
	d.Start()
	t.Cleanup(d.Stop)
	// 1ms SLO at speedup 200: the budget is long gone by the first τ = 1s
	// round boundary (5ms wall).
	job, err := d.Submit(workload.Prompt{Text: "too late"}, model.Res256, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := d.JobStatus(job.ID); ok && j.State == JobDropped {
			st := d.Snapshot()
			if st.Dropped != 1 || st.Queued != 0 {
				t.Fatalf("drop accounting wrong: %+v", st)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := d.JobStatus(job.ID)
	t.Fatalf("job never expired (state %s)", j.State)
}

// TestDriverRoundTicksStayOnGrid: round boundaries are rescheduled from the
// event's own timestamp, so late wake-ups must not shrink the tick count far
// below elapsed/τ.
func TestDriverRoundTicksStayOnGrid(t *testing.T) {
	d := newTestDriver(t)
	tau := d.cfg.Scheduler.RoundDuration()
	if tau <= 0 {
		t.Fatal("test needs a round-based scheduler")
	}
	time.Sleep(300 * time.Millisecond)
	elapsed := d.clk.Now()
	ticks := d.Snapshot().RoundTicks
	want := int(float64(elapsed) / float64(tau) * 0.8)
	if ticks < want {
		t.Fatalf("%d round ticks over %v of virtual time (τ=%v), want ≥ %d: the grid drifted",
			ticks, elapsed, tau, want)
	}
}

// TestDriverFaultReroutesToSurvivors: after half the node fail-stops, new
// work completes on the remaining GPUs and /v1/stats-visible telemetry
// reflects the failure; recovery clears it.
func TestDriverFaultReroutesToSurvivors(t *testing.T) {
	d := newTestDriver(t)
	dead := simgpu.MaskOf(4, 5, 6, 7)
	if err := d.FailGPUs(dead); err != nil {
		t.Fatal(err)
	}
	job, err := d.Submit(workload.Prompt{Text: "survivor"}, model.Res512, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitForJob(t, d, job.ID, 10*time.Second)
	st := d.Snapshot()
	if len(st.FailedGPUs) != 4 {
		t.Fatalf("FailedGPUs = %v, want the 4 dead devices", st.FailedGPUs)
	}
	if err := d.RecoverGPUs(dead); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(d.Snapshot().FailedGPUs) == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := d.Snapshot().FailedGPUs; len(got) != 0 {
		t.Fatalf("FailedGPUs = %v after recovery", got)
	}
	// The fault plane rejects commands once the driver is stopped.
	d.Stop()
	if err := d.FailGPUs(simgpu.MaskOf(0)); err == nil {
		t.Fatal("FailGPUs on a stopped driver accepted")
	}
}
