package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tetriserve/internal/cache"
	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// newTestDriver spins up a fast driver (high speedup keeps tests quick).
func newTestDriver(t *testing.T, mutate ...func(*DriverConfig)) *Driver {
	t.Helper()
	mdl := model.FLUX()
	topo := simgpu.H100x8()
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	cfg := DriverConfig{
		Model:     mdl,
		Topo:      topo,
		Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
		Speedup:   200,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(d.Stop)
	return d
}

func waitForJob(t *testing.T, d *Driver, id workload.RequestID, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j, ok := d.JobStatus(id); ok && j.State == JobCompleted {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := d.JobStatus(id)
	t.Fatalf("job %d did not complete in %v (state %s)", id, timeout, j.State)
	return Job{}
}

func TestDriverServesSingleRequest(t *testing.T) {
	d := newTestDriver(t)
	job, err := d.Submit(workload.Prompt{Text: "a koi pond"}, model.Res512, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := waitForJob(t, d, job.ID, 10*time.Second)
	if done.Latency <= 0 {
		t.Fatal("no latency recorded")
	}
	if done.SLO != 2*time.Second {
		t.Fatalf("default SLO = %v, want the 2s 512px budget", done.SLO)
	}
	if done.AvgDegree < 1 {
		t.Fatalf("avg degree = %v", done.AvgDegree)
	}
}

func TestDriverRejectsBadResolutions(t *testing.T) {
	d := newTestDriver(t)
	if _, err := d.Submit(workload.Prompt{}, model.Resolution{W: 17, H: 17}, 0); err == nil {
		t.Fatal("invalid resolution accepted")
	}
	if _, err := d.Submit(workload.Prompt{}, model.Resolution{W: 640, H: 640}, 0); err == nil {
		t.Fatal("unprofiled resolution accepted")
	}
}

func TestDriverStats(t *testing.T) {
	d := newTestDriver(t)
	var ids []workload.RequestID
	for i := 0; i < 3; i++ {
		job, err := d.Submit(workload.Prompt{Text: "x", Theme: i}, model.Res256, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		waitForJob(t, d, id, 10*time.Second)
	}
	st := d.Snapshot()
	if st.Completed != 3 {
		t.Fatalf("completed = %d", st.Completed)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("leftover queue state: %+v", st)
	}
	if st.GPUBusyS <= 0 {
		t.Fatal("no GPU time accounted")
	}
}

func TestDriverWithCache(t *testing.T) {
	c := cache.New(cache.DefaultConfig())
	d := newTestDriver(t, func(cfg *DriverConfig) { cfg.Cache = c })
	prompt := workload.Prompt{Text: "same", Theme: 5, Mods: []int{1, 2, 3}}
	j1, _ := d.Submit(prompt, model.Res256, 0)
	waitForJob(t, d, j1.ID, 10*time.Second)
	j2, _ := d.Submit(prompt, model.Res256, 0)
	done := waitForJob(t, d, j2.ID, 10*time.Second)
	if done.Skipped == 0 {
		t.Fatal("second identical prompt should hit the cache and skip steps")
	}
}

func TestHTTPGenerateAndPoll(t *testing.T) {
	d := newTestDriver(t)
	ts := httptest.NewServer(NewAPI(d).Handler())
	defer ts.Close()

	body, _ := json.Marshal(GenerateRequest{Prompt: "a lighthouse on a cliff", Width: 256, Height: 256})
	resp, err := http.Post(ts.URL+"/v1/images/generations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitForJob(t, d, job.ID, 10*time.Second)
	resp, err = http.Get(ts.URL + "/v1/jobs/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var polled Job
	if err := json.NewDecoder(resp.Body).Decode(&polled); err != nil {
		t.Fatal(err)
	}
	if polled.State != JobCompleted {
		t.Fatalf("polled state = %s", polled.State)
	}
}

func TestHTTPValidation(t *testing.T) {
	d := newTestDriver(t)
	ts := httptest.NewServer(NewAPI(d).Handler())
	defer ts.Close()

	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"prompt":"", "width":256, "height":256}`, http.StatusBadRequest},
		{`{"prompt":"x", "width":17, "height":17}`, http.StatusBadRequest},
		// Unprofiled-but-valid resolutions are a client error for this
		// deployment (the response lists the supported set), not a 422.
		{`{"prompt":"x", "width":640, "height":640}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/images/generations", "application/json",
			bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

func TestHTTPJobNotFound(t *testing.T) {
	d := newTestDriver(t)
	ts := httptest.NewServer(NewAPI(d).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPStatsAndProfileEndpoints(t *testing.T) {
	d := newTestDriver(t)
	ts := httptest.NewServer(NewAPI(d).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/profile")
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(entries) != 16 { // 4 resolutions × 4 degrees
		t.Fatalf("profile entries = %d, want 16", len(entries))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("healthz not ok")
	}
}

func TestHashPromptDeterministic(t *testing.T) {
	a := HashPrompt("a lighthouse on a cliff, oil painting")
	b := HashPrompt("a lighthouse on a cliff, oil painting")
	if a.Theme != b.Theme || len(a.Mods) != len(b.Mods) {
		t.Fatal("hash prompt not deterministic")
	}
	// Same subject, different style → same theme bucket.
	c := HashPrompt("a lighthouse on a cliff, watercolor sketch")
	if a.Theme != c.Theme {
		t.Fatal("same leading subject should share a theme")
	}
	// Different subject → (almost certainly) different theme.
	d := HashPrompt("an underwater city, photorealistic render")
	if a.Theme == d.Theme && a.Mods[0] == d.Mods[0] {
		t.Log("hash collision between distinct subjects (acceptable but rare)")
	}
}

func TestDriverConfigValidation(t *testing.T) {
	if _, err := NewDriver(DriverConfig{}); err == nil {
		t.Fatal("empty driver config accepted")
	}
}

func TestAdmitAnyResolution(t *testing.T) {
	d := newTestDriver(t, func(cfg *DriverConfig) { cfg.AdmitAnyResolution = true })
	// 768x768 is not in the standard profile; on-demand profiling plus
	// SLO interpolation must admit and serve it.
	job, err := d.Submit(workload.Prompt{Text: "wide shot"}, model.Resolution{W: 768, H: 768}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 768² has 2304 latent tokens — between the 512² (2s) and 1024² (3s)
	// anchors, so the interpolated SLO must fall strictly between them.
	if job.SLO <= 2*time.Second || job.SLO >= 3*time.Second {
		t.Fatalf("interpolated SLO = %v, want in (2s, 3s)", job.SLO)
	}
	done := waitForJob(t, d, job.ID, 15*time.Second)
	if done.State != JobCompleted {
		t.Fatal("non-standard resolution never completed")
	}
}

func TestRejectUnprofiledWithoutAdmitAny(t *testing.T) {
	d := newTestDriver(t)
	if _, err := d.Submit(workload.Prompt{}, model.Resolution{W: 768, H: 768}, 0); err == nil {
		t.Fatal("768x768 accepted without AdmitAnyResolution")
	}
}
