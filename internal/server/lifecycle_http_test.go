package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tetriserve/internal/lifecycle"
	"tetriserve/internal/router"
)

// getTimeline polls url until the timeline is finalized or the deadline
// passes, returning the last response.
func getTimeline(t *testing.T, url string) (*lifecycle.Timeline, int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			if time.Now().After(deadline) {
				return nil, resp.StatusCode
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var tl lifecycle.Timeline
		if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if tl.Done || time.Now().After(deadline) {
			return &tl, http.StatusOK
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRoutedRequestTimeline drives one request through the router and both
// trace endpoints: the routed job carries a router-minted trace id, the
// request's full admission→finish timeline is retrievable from the router,
// and /v1/fleet aggregates every shard.
func TestRoutedRequestTimeline(t *testing.T) {
	shardA := newShardDriver(t, 2)
	shardB := newShardDriver(t, 2)

	api, err := NewRouterAPI(router.Config{}, []RouterShard{
		&LocalShard{ShardName: "a", Driver: shardA},
		&LocalShard{ShardName: "b", Driver: shardB},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	body, _ := json.Marshal(RoutedGenerateRequest{
		Prompt: "a koi pond", Width: 512, Height: 512, SLOMillis: 30_000, Tenant: "acme",
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var rj RoutedJob
	if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
		t.Fatal(err)
	}
	if rj.TraceID == "" {
		t.Fatal("routed job missing router-minted trace id")
	}

	tl, code := getTimeline(t, ts.URL+"/v1/requests/"+rj.TraceID)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/requests/%s → %d", rj.TraceID, code)
	}
	if !tl.Done {
		t.Fatalf("timeline never finalized: %+v", tl)
	}
	if tl.TraceID != rj.TraceID || tl.Tenant != "acme" {
		t.Fatalf("timeline identity: trace=%q tenant=%q", tl.TraceID, tl.Tenant)
	}
	if tl.Shard != rj.Shard {
		t.Fatalf("timeline shard %q, routed to %q", tl.Shard, rj.Shard)
	}
	// Acceptance bar: a complete timeline has at least admission, plan-wait,
	// compute, and finish.
	if len(tl.Spans) < 4 {
		t.Fatalf("timeline has %d spans, want ≥4: %+v", len(tl.Spans), tl.Spans)
	}
	if tl.Spans[0].Kind != lifecycle.SpanAdmission {
		t.Fatalf("first span %s, want admission", tl.Spans[0].Kind)
	}
	if last := tl.Spans[len(tl.Spans)-1].Kind; last != lifecycle.SpanFinish {
		t.Fatalf("last span %s, want finish", last)
	}
	hasCompute := false
	for _, s := range tl.Spans {
		if s.Kind == lifecycle.SpanCompute {
			hasCompute = true
		}
	}
	if !hasCompute {
		t.Fatal("timeline has no compute span")
	}

	// The shard's own API serves the same timeline, by trace id and by
	// decimal request id.
	shardSrv := httptest.NewServer(NewAPI(shardDriverOf(t, rj, shardA, shardB)).Handler())
	defer shardSrv.Close()
	direct, code := getTimeline(t, shardSrv.URL+"/v1/requests/"+rj.TraceID)
	if code != http.StatusOK || direct.TraceID != rj.TraceID {
		t.Fatalf("shard-direct lookup: code=%d tl=%+v", code, direct)
	}

	// Unknown trace → 404 on the router.
	nf, err := http.Get(ts.URL + "/v1/requests/t-does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", nf.StatusCode)
	}

	// /v1/fleet aggregates both shards plus the router's admission stats.
	fresp, err := http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var fleet struct {
		Router router.Stats `json:"router"`
		Shards []struct {
			Name       string  `json:"name"`
			Reachable  bool    `json:"reachable"`
			QueueDepth int     `json:"queue_depth"`
			Attainment float64 `json:"attainment"`
			Stats      Stats   `json:"stats"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Router.Decisions != 1 || fleet.Router.Routed != 1 {
		t.Fatalf("fleet router stats %+v", fleet.Router)
	}
	if len(fleet.Shards) != 2 {
		t.Fatalf("fleet lists %d shards, want 2", len(fleet.Shards))
	}
	completed := 0
	for _, s := range fleet.Shards {
		if !s.Reachable {
			t.Fatalf("shard %s unreachable in fleet view", s.Name)
		}
		completed += s.Stats.Completed
	}
	if completed != 1 {
		t.Fatalf("fleet shards completed %d, want 1", completed)
	}

	// ?explain=K with K far beyond the ring capacity stays a 200 and returns
	// only what the ring retains.
	sresp, err := http.Get(ts.URL + "/v1/router/stats?explain=1000000")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("explain beyond capacity status %d, want 200", sresp.StatusCode)
	}
	var sview struct {
		Explain []json.RawMessage `json:"explain"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&sview); err != nil {
		t.Fatal(err)
	}
	// The single /v1/generate call is the only routing decision recorded.
	if len(sview.Explain) != 1 {
		t.Fatalf("explain returned %d decisions, want 1", len(sview.Explain))
	}
}

// shardDriverOf maps the routed shard name back to its driver.
func shardDriverOf(t *testing.T, rj RoutedJob, a, b *Driver) *Driver {
	t.Helper()
	switch rj.Shard {
	case "a":
		return a
	case "b":
		return b
	}
	t.Fatalf("routed to unknown shard %q", rj.Shard)
	return nil
}

// TestTraceHeaderPropagation: a caller-supplied trace header survives the
// remote-shard hop and keys the shard's timeline.
func TestTraceHeaderPropagation(t *testing.T) {
	d := newShardDriver(t, 2)
	shardSrv := httptest.NewServer(NewAPI(d).Handler())
	defer shardSrv.Close()

	body, _ := json.Marshal(GenerateRequest{
		Prompt: "a koi pond", Width: 512, Height: 512, SLOMillis: 30_000,
	})
	req, err := http.NewRequest("POST", shardSrv.URL+"/v1/images/generations", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "t-external-7")
	req.Header.Set(TenantHeader, "ext")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.TraceID != "t-external-7" {
		t.Fatalf("job trace id %q, want header value", job.TraceID)
	}
	tl, code := getTimeline(t, shardSrv.URL+"/v1/requests/t-external-7")
	if code != http.StatusOK {
		t.Fatalf("timeline by external trace: %d", code)
	}
	if tl.Tenant != "ext" {
		t.Fatalf("timeline tenant %q, want ext", tl.Tenant)
	}
}

// TestRemoteShardTimelineProxy: the router resolves timelines across an HTTP
// shard boundary (RemoteShard.FetchTimeline).
func TestRemoteShardTimelineProxy(t *testing.T) {
	d := newShardDriver(t, 2)
	shardSrv := httptest.NewServer(NewAPI(d).Handler())
	defer shardSrv.Close()

	api, err := NewRouterAPI(router.Config{}, []RouterShard{
		NewRemoteShard("remote-a", shardSrv.URL),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	body, _ := json.Marshal(RoutedGenerateRequest{
		Prompt: "a koi pond", Width: 512, Height: 512, SLOMillis: 30_000,
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var rj RoutedJob
	if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
		t.Fatal(err)
	}
	if rj.TraceID == "" {
		t.Fatal("remote-shard routed job missing trace id")
	}
	tl, code := getTimeline(t, ts.URL+"/v1/requests/"+rj.TraceID)
	if code != http.StatusOK || !tl.Done {
		t.Fatalf("proxied timeline: code=%d done=%v", code, tl != nil && tl.Done)
	}
	if tl.Shard == "" {
		t.Fatal("proxied timeline missing shard name")
	}
}
