package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/model"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/trace"
	"tetriserve/internal/workload"
)

// API wraps a Driver with the HTTP surface:
//
//	POST /v1/images/generations   {prompt, width, height, slo_ms?} → Job
//	                              (X-Tetriserve-Trace / X-Tetriserve-Tenant
//	                              headers carry router-minted trace context)
//	GET  /v1/jobs/{id}            → Job
//	GET  /v1/requests/{id}        → lifecycle span timeline (trace or job id)
//	GET  /v1/stats                → Stats
//	GET  /v1/profile              → offline-profiled step times
//	POST /v1/probe                {width, height, steps?, slo_ms} → feasibility
//	POST /v1/faults               {fail_gpus?, recover_gpus?} → Stats
//	POST /v1/resize               {gpus:[ids]} | {num_gpus:N} → Stats
//	GET  /v1/trace                → JSONL event log (same format as tetrisim export)
//	GET  /v1/trace?follow=1       → live event feed (SSE with Accept:
//	                                text/event-stream, flushed JSONL otherwise)
//	GET  /v1/rounds?n=K           → last K round-decision records
//	GET  /metrics                 → Prometheus text exposition
//	GET  /healthz                 → 200 ok
//
// Wrong-method hits on registered paths return 405 with an Allow header
// (Go 1.22 method-pattern routing).
type API struct {
	Driver *Driver
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Logf receives serving-path diagnostics that can no longer reach the
	// client — encode failures after the status line is written, truncated
	// streams. Defaults to log.Printf; tests inject a recorder.
	Logf func(format string, args ...any)
	// hashPrompt derives the structured prompt from free text; the
	// default buckets by a stable hash so similar texts share a theme.
	hashPrompt func(string) workload.Prompt
}

// NewAPI wires a driver into an HTTP handler set.
func NewAPI(d *Driver) *API {
	return &API{Driver: d, hashPrompt: HashPrompt}
}

// Handler returns the routed HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/images/generations", a.handleGenerate)
	mux.HandleFunc("GET /v1/jobs/{id}", a.handleJob)
	mux.HandleFunc("GET /v1/requests/{id}", a.handleRequestTimeline)
	mux.HandleFunc("GET /v1/stats", a.handleStats)
	mux.HandleFunc("GET /v1/profile", a.handleProfile)
	mux.HandleFunc("POST /v1/probe", a.handleProbe)
	mux.HandleFunc("POST /v1/faults", a.handleFaults)
	mux.HandleFunc("POST /v1/resize", a.handleResize)
	mux.HandleFunc("GET /v1/trace", a.handleTrace)
	mux.HandleFunc("GET /v1/rounds", a.handleRounds)
	mux.Handle("GET /metrics", a.Driver.Telemetry().Registry.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if a.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// GenerateRequest is the submission payload.
type GenerateRequest struct {
	Prompt string `json:"prompt"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	// SLOMillis overrides the default per-resolution deadline.
	SLOMillis int64 `json:"slo_ms,omitempty"`
}

func (a *API) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		a.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Prompt) == "" {
		a.httpError(w, http.StatusBadRequest, "prompt is required")
		return
	}
	res := model.Resolution{W: req.Width, H: req.Height}
	if !res.Valid() {
		a.httpError(w, http.StatusBadRequest, "width/height must be positive multiples of 16")
		return
	}
	// Router-minted trace context rides in on headers (live path); direct
	// submissions get a shard-derived trace id.
	job, err := a.Driver.SubmitTraced(a.hashPrompt(req.Prompt), res,
		time.Duration(req.SLOMillis)*time.Millisecond,
		r.Header.Get(TraceHeader), r.Header.Get(TenantHeader))
	if err != nil {
		// A resolution the profile knows nothing about is a malformed request
		// for this deployment (400); transient serving conditions stay 422.
		code := http.StatusUnprocessableEntity
		if errors.Is(err, ErrUnknownResolution) {
			code = http.StatusBadRequest
		}
		a.httpError(w, code, "%v", err)
		return
	}
	a.writeJSON(w, http.StatusAccepted, job)
}

func (a *API) handleJob(w http.ResponseWriter, r *http.Request) {
	idStr := r.PathValue("id")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		a.httpError(w, http.StatusBadRequest, "invalid job id %q", idStr)
		return
	}
	job, ok := a.Driver.JobStatus(workload.RequestID(id))
	if !ok {
		a.httpError(w, http.StatusNotFound, "job %d not found", id)
		return
	}
	a.writeJSON(w, http.StatusOK, job)
}

// TraceHeader and TenantHeader carry router-minted fleet-trace context on
// shard submissions.
const (
	TraceHeader  = "X-Tetriserve-Trace"
	TenantHeader = "X-Tetriserve-Tenant"
)

func (a *API) handleRequestTimeline(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	tl, ok := a.Driver.Timeline(key)
	if !ok {
		a.httpError(w, http.StatusNotFound, "no timeline for request %q", key)
		return
	}
	a.writeJSON(w, http.StatusOK, tl)
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	a.writeJSON(w, http.StatusOK, a.Driver.Snapshot())
}

// ProbeRequest asks the shard for a read-only deadline-feasibility
// projection — the admission router's per-shard question.
type ProbeRequest struct {
	Width  int `json:"width"`
	Height int `json:"height"`
	// Steps ≤ 0 defaults to the model's step count.
	Steps     int   `json:"steps,omitempty"`
	SLOMillis int64 `json:"slo_ms"`
}

// FeasibilityView is the JSON shape of control.Feasibility.
type FeasibilityView struct {
	Winnable          bool    `json:"winnable"`
	NowUS             int64   `json:"now_us"`
	DeadlineUS        int64   `json:"deadline_us"`
	ProjectedStartUS  int64   `json:"projected_start_us"`
	ProjectedFinishUS int64   `json:"projected_finish_us"`
	SlackUS           int64   `json:"slack_us"`
	QueueGPUSeconds   float64 `json:"queue_gpu_seconds"`
	ServiceGPUSeconds float64 `json:"service_gpu_seconds"`
	Pending           int     `json:"pending"`
	Running           int     `json:"running"`
	HealthyGPUs       int     `json:"healthy_gpus"`
	FreeGPUs          int     `json:"free_gpus"`
	MinStepUS         int64   `json:"min_step_us"`
	MinStepDegree     int     `json:"min_step_degree"`
}

// NewFeasibilityView converts a probe result for the wire.
func NewFeasibilityView(f control.Feasibility) FeasibilityView {
	return FeasibilityView{
		Winnable:          f.Winnable,
		NowUS:             f.Now.Microseconds(),
		DeadlineUS:        f.Deadline.Microseconds(),
		ProjectedStartUS:  f.ProjectedStart.Microseconds(),
		ProjectedFinishUS: f.ProjectedFinish.Microseconds(),
		SlackUS:           f.Slack.Microseconds(),
		QueueGPUSeconds:   f.QueueGPUSeconds,
		ServiceGPUSeconds: f.ServiceGPUSeconds,
		Pending:           f.Pending,
		Running:           f.Running,
		HealthyGPUs:       f.HealthyGPUs,
		FreeGPUs:          f.FreeGPUs,
		MinStepUS:         f.MinStepTime.Microseconds(),
		MinStepDegree:     f.MinStepDegree,
	}
}

// Feasibility converts the wire shape back into control.Feasibility (the
// remote-shard client's inverse of NewFeasibilityView).
func (v FeasibilityView) Feasibility() control.Feasibility {
	return control.Feasibility{
		Winnable:          v.Winnable,
		Now:               time.Duration(v.NowUS) * time.Microsecond,
		Deadline:          time.Duration(v.DeadlineUS) * time.Microsecond,
		ProjectedStart:    time.Duration(v.ProjectedStartUS) * time.Microsecond,
		ProjectedFinish:   time.Duration(v.ProjectedFinishUS) * time.Microsecond,
		Slack:             time.Duration(v.SlackUS) * time.Microsecond,
		QueueGPUSeconds:   v.QueueGPUSeconds,
		ServiceGPUSeconds: v.ServiceGPUSeconds,
		Pending:           v.Pending,
		Running:           v.Running,
		HealthyGPUs:       v.HealthyGPUs,
		FreeGPUs:          v.FreeGPUs,
		MinStepTime:       time.Duration(v.MinStepUS) * time.Microsecond,
		MinStepDegree:     v.MinStepDegree,
	}
}

// handleProbe answers the router's feasibility question. 400 for unknown
// resolutions (feasibility of an uncalibrated shape is undefined), 200 with
// the projection otherwise — including Winnable=false, which is a verdict,
// not an error.
func (a *API) handleProbe(w http.ResponseWriter, r *http.Request) {
	var req ProbeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		a.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	res := model.Resolution{W: req.Width, H: req.Height}
	if !res.Valid() {
		a.httpError(w, http.StatusBadRequest, "width/height must be positive multiples of 16")
		return
	}
	if req.SLOMillis <= 0 {
		a.httpError(w, http.StatusBadRequest, "slo_ms must be positive")
		return
	}
	feas, err := a.Driver.Probe(res, req.Steps, time.Duration(req.SLOMillis)*time.Millisecond)
	if err != nil {
		a.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a.writeJSON(w, http.StatusOK, NewFeasibilityView(feas))
}

// FaultRequest is the fault-injection payload: GPU ids to fail-stop and/or
// return to service.
type FaultRequest struct {
	FailGPUs    []int `json:"fail_gpus,omitempty"`
	RecoverGPUs []int `json:"recover_gpus,omitempty"`
}

func (a *API) handleFaults(w http.ResponseWriter, r *http.Request) {
	var req FaultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		a.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	toMask := func(ids []int) (simgpu.Mask, error) {
		var m simgpu.Mask
		for _, id := range ids {
			if id < 0 || id >= a.Driver.cfg.Topo.N {
				return 0, fmt.Errorf("GPU %d outside node of %d GPUs", id, a.Driver.cfg.Topo.N)
			}
			m |= simgpu.MaskOf(simgpu.GPUID(id))
		}
		return m, nil
	}
	fail, err := toMask(req.FailGPUs)
	if err != nil {
		a.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	recov, err := toMask(req.RecoverGPUs)
	if err != nil {
		a.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if fail == 0 && recov == 0 {
		a.httpError(w, http.StatusBadRequest, "fail_gpus or recover_gpus required")
		return
	}
	if fail != 0 {
		if err := a.Driver.FailGPUs(fail); err != nil {
			a.httpError(w, http.StatusConflict, "%v", err)
			return
		}
	}
	if recov != 0 {
		if err := a.Driver.RecoverGPUs(recov); err != nil {
			a.httpError(w, http.StatusConflict, "%v", err)
			return
		}
	}
	a.writeJSON(w, http.StatusOK, a.Driver.Snapshot())
}

// ResizeRequest is the elastic capacity-change payload: either the explicit
// GPU ids the shard should own, or a count (the lowest-id N GPUs — keeping
// capacity a contiguous prefix preserves buddy alignment for group formation).
type ResizeRequest struct {
	GPUs    []int `json:"gpus,omitempty"`
	NumGPUs int   `json:"num_gpus,omitempty"`
}

// handleResize stages an elastic capacity change on the serving loop. The new
// capacity takes effect at the next round boundary: in-flight blocks on
// departing GPUs are preempted with full step credit and requeued (latent
// handoff), never dropped as fault victims. Responds with the pre-application
// stats snapshot; poll GET /v1/stats for capacity_gpus to confirm the change
// landed.
func (a *API) handleResize(w http.ResponseWriter, r *http.Request) {
	var req ResizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		a.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	n := a.Driver.cfg.Topo.N
	var mask simgpu.Mask
	switch {
	case len(req.GPUs) > 0 && req.NumGPUs > 0:
		a.httpError(w, http.StatusBadRequest, "gpus and num_gpus are mutually exclusive")
		return
	case len(req.GPUs) > 0:
		for _, id := range req.GPUs {
			if id < 0 || id >= n {
				a.httpError(w, http.StatusBadRequest, "GPU %d outside node of %d GPUs", id, n)
				return
			}
			m := simgpu.MaskOf(simgpu.GPUID(id))
			if mask&m != 0 {
				a.httpError(w, http.StatusBadRequest, "duplicate GPU %d", id)
				return
			}
			mask |= m
		}
	case req.NumGPUs > 0:
		if req.NumGPUs > n {
			a.httpError(w, http.StatusBadRequest, "num_gpus %d exceeds node of %d GPUs", req.NumGPUs, n)
			return
		}
		mask = simgpu.MaskRange(0, req.NumGPUs)
	default:
		a.httpError(w, http.StatusBadRequest, "gpus or num_gpus required")
		return
	}
	if err := a.Driver.Resize(mask); err != nil {
		a.httpError(w, http.StatusConflict, "%v", err)
		return
	}
	a.writeJSON(w, http.StatusOK, a.Driver.Snapshot())
}

// handleTrace streams the control loop's event log as JSON lines — the same
// format `tetrisim export` writes for offline runs, produced from the same
// shared Result, so the trace analyzer and Gantt renderer work unchanged
// against live traffic. With ?follow=1 it switches to a live feed from the
// telemetry bus instead.
func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	if f := r.URL.Query().Get("follow"); f != "" && f != "0" {
		a.followTrace(w, r)
		return
	}
	evs := trace.FromResult(a.Driver.Result())
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := trace.Write(w, evs); err != nil {
		// The 200 header is gone; a second WriteHeader would be worse than
		// the truncated stream. Log so the failure is visible server-side.
		a.logf("server: trace export truncated mid-stream: %v", err)
	}
}

// followTrace serves the live trace feed. The subscription buffers a bounded
// number of events; if this client reads too slowly the bus drops events for
// it (counted in tetriserve_trace_dropped_events_total) rather than ever
// stalling the control loop. Events stream as SSE when the client accepts
// text/event-stream, flushed JSONL otherwise, until the client disconnects.
func (a *API) followTrace(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		a.httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	// The deferred cancel is the unsubscribe contract: every exit path —
	// client disconnect (ctx done), write failure, stalled-socket deadline —
	// drops this subscriber, so the bus count returns to baseline and the
	// control loop never accumulates dead tails.
	ch, cancel := a.Driver.Telemetry().Bus.Subscribe(0)
	defer cancel()
	// A client that disconnects triggers ctx.Done, but one that merely stops
	// reading leaves the connection open and lets TCP backpressure block the
	// write forever, wedging this goroutine (and its subscription) for good.
	// Per-write deadlines bound that: a write stalled past the window fails,
	// and the handler exits through the same unsubscribe path. Recorders and
	// exotic wrappers without deadline support are fine — SetWriteDeadline
	// just returns ErrNotSupported and the ctx.Done path still applies.
	rc := http.NewResponseController(w)
	const writeWindow = 30 * time.Second
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			_ = rc.SetWriteDeadline(time.Now().Add(writeWindow))
			if sse {
				_, err = fmt.Fprintf(w, "data: %s\n\n", b)
			} else {
				_, err = fmt.Fprintf(w, "%s\n", b)
			}
			if err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// roundDecisionView is the JSON shape of one request's placement decision.
type roundDecisionView struct {
	Request    int    `json:"request"`
	Resolution string `json:"resolution"`
	Degree     int    `json:"degree"`
	Steps      int    `json:"steps"`
	GPUs       []int  `json:"gpus"`
	BestEffort bool   `json:"best_effort,omitempty"`
	Batched    bool   `json:"batched,omitempty"`
	// DeadlineSlackUS is deadline − decision time (negative = already late).
	DeadlineSlackUS int64 `json:"deadline_slack_us"`
	// ProjectedFinishUS is the §5 survival estimate (0 when unprofiled).
	ProjectedFinishUS int64 `json:"projected_finish_us,omitempty"`
	Survives          bool  `json:"survives"`
}

// roundView is the JSON shape of one planning round's record.
type roundView struct {
	Seq           uint64              `json:"seq"`
	AtUS          int64               `json:"at_us"`
	PlanLatencyUS float64             `json:"plan_latency_us"`
	Pending       int                 `json:"pending"`
	Running       int                 `json:"running"`
	FreeGPUs      int                 `json:"free_gpus"`
	Rejected      string              `json:"rejected,omitempty"`
	Decisions     []roundDecisionView `json:"decisions"`
}

// handleRounds serves the round-decision explainer: the last n planning
// rounds (default 32), oldest first, each with per-request degree, deadline
// slack and survival verdict — "why did request 42 get degree 2?" as an API.
func (a *API) handleRounds(w http.ResponseWriter, r *http.Request) {
	n := 32
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			a.httpError(w, http.StatusBadRequest, "invalid n %q", s)
			return
		}
		n = v
	}
	recs := a.Driver.Telemetry().Rounds.Snapshot(n)
	out := make([]roundView, 0, len(recs))
	for _, rec := range recs {
		rv := roundView{
			Seq:           rec.Seq,
			AtUS:          rec.At.Microseconds(),
			PlanLatencyUS: float64(rec.PlanLatency.Nanoseconds()) / 1e3,
			Pending:       rec.Pending,
			Running:       rec.Running,
			FreeGPUs:      rec.FreeGPUs,
			Rejected:      rec.Rejected,
			Decisions:     make([]roundDecisionView, 0, len(rec.Decisions)),
		}
		for _, d := range rec.Decisions {
			dv := roundDecisionView{
				Request:           int(d.Request),
				Resolution:        d.Res.String(),
				Degree:            d.Degree,
				Steps:             d.Steps,
				BestEffort:        d.BestEffort,
				Batched:           d.Batched,
				DeadlineSlackUS:   d.DeadlineSlack.Microseconds(),
				ProjectedFinishUS: d.ProjectedFinish.Microseconds(),
				Survives:          d.Survives,
			}
			for _, g := range simgpu.Mask(d.Group).IDs() {
				dv.GPUs = append(dv.GPUs, int(g))
			}
			rv.Decisions = append(rv.Decisions, dv)
		}
		out = append(out, rv)
	}
	a.writeJSON(w, http.StatusOK, out)
}

// profileEntry is one row of the profile dump.
type profileEntry struct {
	Resolution string  `json:"resolution"`
	Degree     int     `json:"degree"`
	StepMS     float64 `json:"step_ms"`
	GPUSeconds float64 `json:"gpu_seconds_per_step"`
}

func (a *API) handleProfile(w http.ResponseWriter, _ *http.Request) {
	prof := a.Driver.Profile()
	var out []profileEntry
	for _, res := range prof.Resolutions() {
		for _, k := range prof.Degrees() {
			out = append(out, profileEntry{
				Resolution: res.String(),
				Degree:     k,
				StepMS:     float64(prof.StepTime(res, k).Microseconds()) / 1000,
				GPUSeconds: prof.GPUSeconds(res, k),
			})
		}
	}
	a.writeJSON(w, http.StatusOK, out)
}

// HashPrompt derives a structured prompt from free text deterministically:
// the leading words select a theme bucket, the remaining words hash into
// modifier ids, so reworded variants of one subject land near each other —
// a stand-in for CLIP's semantic neighborhood.
func HashPrompt(text string) workload.Prompt {
	fields := strings.Fields(strings.ToLower(text))
	subject := strings.Join(firstN(fields, 4), " ")
	theme := int(fnv32(subject) % 40)
	var mods []int
	for _, f := range fields[min(len(fields), 4):] {
		mods = append(mods, int(fnv32(f)%12))
		if len(mods) == 3 {
			break
		}
	}
	return workload.Prompt{Text: text, Theme: theme, Mods: mods}
}

func firstN(xs []string, n int) []string {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (a *API) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// writeJSON emits one JSON response. Once WriteHeader has run the status
// line is on the wire: a mid-encode failure (client gone, broken pipe) must
// never be answered with a second header write (http.Error would trigger
// net/http's "superfluous WriteHeader" path) — it is logged instead.
func (a *API) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		a.logf("server: writing %d response failed mid-stream: %v", code, err)
	}
}

func (a *API) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	a.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
