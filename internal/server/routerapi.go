package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"tetriserve/internal/control"
	"tetriserve/internal/lifecycle"
	"tetriserve/internal/model"
	"tetriserve/internal/router"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/telemetry"
	"tetriserve/internal/workload"
)

// RouterShard is a pool the routing tier can probe and submit to: the
// router.Shard contract plus a submission path. LocalShard wraps an
// in-process Driver; RemoteShard speaks to a shard daemon over HTTP.
type RouterShard interface {
	router.Shard
	Submit(prompt workload.Prompt, res model.Resolution, slo time.Duration) (Job, error)
}

// TracedSubmitter is the optional extension shards implement to accept
// router-minted fleet-trace context alongside a submission. Shards without
// it still serve; their timelines just carry shard-derived trace ids.
type TracedSubmitter interface {
	SubmitTraced(prompt workload.Prompt, res model.Resolution, slo time.Duration, traceID, tenant string) (Job, error)
}

// StatsFetcher is the optional extension the fleet view uses to pull a
// shard's serving statistics.
type StatsFetcher interface {
	FetchStats() (Stats, error)
}

// TimelineFetcher is the optional extension the router's request-timeline
// proxy uses. ok=false (with nil error) means the shard has no timeline for
// the key.
type TimelineFetcher interface {
	FetchTimeline(key string) (*lifecycle.Timeline, bool, error)
}

// LocalShard adapts an in-process Driver (its Probe/Submit are already
// goroutine-safe channel round-trips).
type LocalShard struct {
	ShardName string
	Driver    *Driver
}

// Name returns the shard's display name.
func (s *LocalShard) Name() string { return s.ShardName }

// ProbeFeasibility implements router.Shard.
func (s *LocalShard) ProbeFeasibility(res model.Resolution, steps int, slo time.Duration) (control.Feasibility, error) {
	return s.Driver.Probe(res, steps, slo)
}

// Submit implements RouterShard.
func (s *LocalShard) Submit(prompt workload.Prompt, res model.Resolution, slo time.Duration) (Job, error) {
	return s.Driver.Submit(prompt, res, slo)
}

// SubmitTraced implements TracedSubmitter.
func (s *LocalShard) SubmitTraced(prompt workload.Prompt, res model.Resolution, slo time.Duration, traceID, tenant string) (Job, error) {
	return s.Driver.SubmitTraced(prompt, res, slo, traceID, tenant)
}

// FetchStats implements StatsFetcher.
func (s *LocalShard) FetchStats() (Stats, error) { return s.Driver.Snapshot(), nil }

// FetchTimeline implements TimelineFetcher.
func (s *LocalShard) FetchTimeline(key string) (*lifecycle.Timeline, bool, error) {
	tl, ok := s.Driver.Timeline(key)
	return tl, ok, nil
}

// ResizableShard is a pool whose GPU count the elastic rebalancer can change.
// Resize requests the shard own exactly its lowest-id n GPUs (capacity stays
// a contiguous prefix, preserving buddy alignment for group formation); the
// change lands at the shard loop's next round boundary.
type ResizableShard interface {
	RouterShard
	Resize(n int) error
}

// Resize implements ResizableShard.
func (s *LocalShard) Resize(n int) error {
	return s.Driver.Resize(simgpu.MaskRange(0, n))
}

// Resize implements ResizableShard over HTTP (POST /v1/resize).
func (s *RemoteShard) Resize(n int) error {
	var st Stats
	return s.post("/v1/resize", ResizeRequest{NumGPUs: n}, &st)
}

// RemoteShard speaks the shard API (POST /v1/probe, POST
// /v1/images/generations) of a tetriserve daemon running in -mode shard.
type RemoteShard struct {
	ShardName string
	BaseURL   string
	// Client defaults to a 10 s-timeout http.Client.
	Client *http.Client
}

// NewRemoteShard builds a remote shard client; the name defaults to the URL.
func NewRemoteShard(name, baseURL string) *RemoteShard {
	if name == "" {
		name = baseURL
	}
	return &RemoteShard{
		ShardName: name,
		BaseURL:   strings.TrimRight(baseURL, "/"),
		Client:    &http.Client{Timeout: 10 * time.Second},
	}
}

// Name returns the shard's display name.
func (s *RemoteShard) Name() string { return s.ShardName }

// errShardNotFound marks a 404 from a shard (no such job/timeline) so
// callers can distinguish "not here" from transport failure.
var errShardNotFound = errors.New("not found")

func (s *RemoteShard) post(path string, in, out any) error {
	return s.do(http.MethodPost, path, nil, in, out)
}

func (s *RemoteShard) get(path string, out any) error {
	return s.do(http.MethodGet, path, nil, nil, out)
}

func (s *RemoteShard) do(method, path string, hdr map[string]string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, s.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("shard %s: %w", s.ShardName, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		if v != "" {
			req.Header.Set(k, v)
		}
	}
	resp, err := s.Client.Do(req)
	if err != nil {
		return fmt.Errorf("shard %s: %w", s.ShardName, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("shard %s: %w", s.ShardName, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("shard %s: %w", s.ShardName, errShardNotFound)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("shard %s: %s", s.ShardName, e.Error)
		}
		return fmt.Errorf("shard %s: HTTP %d", s.ShardName, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}

// ProbeFeasibility implements router.Shard over HTTP.
func (s *RemoteShard) ProbeFeasibility(res model.Resolution, steps int, slo time.Duration) (control.Feasibility, error) {
	var v FeasibilityView
	err := s.post("/v1/probe", ProbeRequest{
		Width: res.W, Height: res.H, Steps: steps, SLOMillis: slo.Milliseconds(),
	}, &v)
	if err != nil {
		return control.Feasibility{}, err
	}
	return v.Feasibility(), nil
}

// Submit implements RouterShard over HTTP.
func (s *RemoteShard) Submit(prompt workload.Prompt, res model.Resolution, slo time.Duration) (Job, error) {
	return s.SubmitTraced(prompt, res, slo, "", "")
}

// SubmitTraced implements TracedSubmitter over HTTP: the trace context
// rides in the X-Tetriserve-Trace / X-Tetriserve-Tenant headers.
func (s *RemoteShard) SubmitTraced(prompt workload.Prompt, res model.Resolution, slo time.Duration, traceID, tenant string) (Job, error) {
	var job Job
	err := s.do(http.MethodPost, "/v1/images/generations",
		map[string]string{TraceHeader: traceID, TenantHeader: tenant},
		GenerateRequest{
			Prompt: prompt.Text, Width: res.W, Height: res.H, SLOMillis: slo.Milliseconds(),
		}, &job)
	return job, err
}

// FetchStats implements StatsFetcher over HTTP (GET /v1/stats).
func (s *RemoteShard) FetchStats() (Stats, error) {
	var st Stats
	err := s.get("/v1/stats", &st)
	return st, err
}

// FetchTimeline implements TimelineFetcher over HTTP (GET /v1/requests/{id}).
func (s *RemoteShard) FetchTimeline(key string) (*lifecycle.Timeline, bool, error) {
	var tl lifecycle.Timeline
	err := s.get("/v1/requests/"+url.PathEscape(key), &tl)
	if errors.Is(err, errShardNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return &tl, true, nil
}

// RouterAPI is the admission/routing front end — the -mode router HTTP
// surface:
//
//	POST /v1/generate        {prompt, width, height, slo_ms?, steps?, tenant?}
//	                         → 202 job + shard on accept,
//	                           429 + Retry-After on early reject,
//	                           400 for unknown resolutions
//	GET  /v1/router/stats    → admission counters, per-shard and per-tenant
//	GET  /v1/router/stats?explain=K → + the last K routing decisions
//	GET  /v1/requests/{id}   → lifecycle span timeline, proxied from the
//	                           shard the trace was routed to
//	GET  /v1/fleet           → one aggregated fleet document (router stats,
//	                           per-shard stats + attainment + queue depth,
//	                           probe-cache hit rate, rebalance history)
//	GET  /metrics            → Prometheus text exposition (router metrics)
//	GET  /healthz            → 200 ok
//
// The router's fairness window runs on its own monotonic clock (wall time
// since construction); shard loops keep their own speedup-scaled clocks.
type RouterAPI struct {
	// Logf is the serving-path diagnostic sink, as on API.
	Logf func(format string, args ...any)

	rt         *router.Router
	shards     []RouterShard
	plane      *telemetry.RouterPlane
	start      time.Time
	hashPrompt func(string) workload.Prompt

	// mu guards trace-id minting and the trace → shard placement map (a
	// bounded FIFO: traceCap newest routed requests stay resolvable without
	// fanning the timeline proxy out to every shard).
	mu         sync.Mutex
	traceSeq   uint64
	traceShard map[string]int
	traceFIFO  []string
	traceCap   int

	// reb, when attached, contributes elastic rebalance history to /v1/fleet.
	reb *LiveRebalancer
}

// NewRouterAPI wires shards behind a router with telemetry attached.
func NewRouterAPI(cfg router.Config, shards []RouterShard) (*RouterAPI, error) {
	a := &RouterAPI{
		shards:     shards,
		plane:      telemetry.NewRouterPlane(nil),
		start:      time.Now(),
		hashPrompt: HashPrompt,
		traceShard: map[string]int{},
		traceCap:   16384,
	}
	cfg.Observer = a.plane.Observe
	rs := make([]router.Shard, len(shards))
	for i, s := range shards {
		rs[i] = s
	}
	rt, err := router.New(cfg, rs)
	if err != nil {
		return nil, err
	}
	a.rt = rt
	return a, nil
}

// Router exposes the underlying router (stats, tests).
func (a *RouterAPI) Router() *router.Router { return a.rt }

// AttachRebalancer lets /v1/fleet report elastic GPU-move history.
func (a *RouterAPI) AttachRebalancer(rb *LiveRebalancer) { a.reb = rb }

// mintTrace allocates the next fleet-wide trace id and records the shard
// the request landed on.
func (a *RouterAPI) mintTrace(shard int) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.traceSeq++
	id := fmt.Sprintf("t-%d", a.traceSeq)
	if len(a.traceFIFO) >= a.traceCap {
		evict := a.traceFIFO[0]
		a.traceFIFO = a.traceFIFO[1:]
		delete(a.traceShard, evict)
	}
	a.traceShard[id] = shard
	a.traceFIFO = append(a.traceFIFO, id)
	return id
}

// Telemetry exposes the router telemetry plane.
func (a *RouterAPI) Telemetry() *telemetry.RouterPlane { return a.plane }

// Handler returns the routed HTTP handler.
func (a *RouterAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", a.handleGenerate)
	mux.HandleFunc("GET /v1/router/stats", a.handleStats)
	mux.HandleFunc("GET /v1/requests/{id}", a.handleRequestTimeline)
	mux.HandleFunc("GET /v1/fleet", a.handleFleet)
	mux.Handle("GET /metrics", a.plane.Registry.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// RoutedGenerateRequest is the routing-mode submission payload.
type RoutedGenerateRequest struct {
	Prompt string `json:"prompt"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	// SLOMillis overrides the default per-resolution deadline.
	SLOMillis int64 `json:"slo_ms,omitempty"`
	// Steps overrides the model's step count (≤ 0 = default).
	Steps int `json:"steps,omitempty"`
	// Tenant is the weighted-fair admission identity ("" = default tenant).
	Tenant string `json:"tenant,omitempty"`
}

// RoutedJob is the accepted-submission response: the shard's job record plus
// where (and why) it landed.
type RoutedJob struct {
	Job
	Shard string `json:"shard"`
	// SlackUS is the chosen shard's projected deadline slack at admission.
	SlackUS int64 `json:"slack_us"`
}

// rejectBody explains a 429.
type rejectBody struct {
	Error        string `json:"error"`
	Reason       string `json:"reason"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

func (a *RouterAPI) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req RoutedGenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		a.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Prompt) == "" {
		a.httpError(w, http.StatusBadRequest, "prompt is required")
		return
	}
	res := model.Resolution{W: req.Width, H: req.Height}
	if !res.Valid() {
		a.httpError(w, http.StatusBadRequest, "width/height must be positive multiples of 16")
		return
	}
	slo := time.Duration(req.SLOMillis) * time.Millisecond
	if slo <= 0 {
		slo = workload.NewSLOPolicy(1.0).InterpolatedBudget(res)
	}

	dec := a.rt.Route(time.Since(a.start), req.Tenant, res, req.Steps, slo)
	switch dec.Reason {
	case router.ReasonUnknown:
		a.httpError(w, http.StatusBadRequest, "resolution %v not profiled on any shard", res)
		return
	case router.ReasonInfeasible, router.ReasonShed:
		// Early rejection: admitting would burn GPU·seconds on a guaranteed
		// SLO miss (or starve in-budget tenants). Retry-After is in whole
		// seconds per RFC 9110, rounded up so clients never retry early.
		w.Header().Set("Retry-After",
			strconv.Itoa(int(math.Ceil(dec.RetryAfter.Seconds()))))
		a.writeJSON(w, http.StatusTooManyRequests, rejectBody{
			Error:        fmt.Sprintf("no shard can meet the %s deadline", slo),
			Reason:       string(dec.Reason),
			RetryAfterMS: dec.RetryAfter.Milliseconds(),
		})
		return
	}

	// Mint the fleet-wide trace id at admission; shards that understand
	// traced submissions thread it through their lifecycle recorder.
	trace := a.mintTrace(dec.Shard)
	var job Job
	var err error
	if ts, ok := a.shards[dec.Shard].(TracedSubmitter); ok {
		job, err = ts.SubmitTraced(a.hashPrompt(req.Prompt), res, slo, trace, req.Tenant)
	} else {
		job, err = a.shards[dec.Shard].Submit(a.hashPrompt(req.Prompt), res, slo)
	}
	if err != nil {
		// The probe said winnable but the shard refused (stopped, raced a
		// restart): surface as 503, the one transient case left.
		a.httpError(w, http.StatusServiceUnavailable, "shard %s: %v", dec.ShardName, err)
		return
	}
	if job.TraceID == "" {
		job.TraceID = trace
	}
	a.writeJSON(w, http.StatusAccepted, RoutedJob{
		Job:     job,
		Shard:   dec.ShardName,
		SlackUS: dec.Slack.Microseconds(),
	})
}

// handleRequestTimeline proxies GET /v1/requests/{id} to the shard the
// trace was routed to (falling back to asking every shard when the
// placement map no longer remembers the trace).
func (a *RouterAPI) handleRequestTimeline(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	a.mu.Lock()
	idx, known := a.traceShard[key]
	a.mu.Unlock()
	order := make([]int, 0, len(a.shards))
	if known {
		order = append(order, idx)
	} else {
		for i := range a.shards {
			order = append(order, i)
		}
	}
	var lastErr error
	for _, i := range order {
		tf, ok := a.shards[i].(TimelineFetcher)
		if !ok {
			continue
		}
		tl, found, err := tf.FetchTimeline(key)
		if err != nil {
			lastErr = err
			continue
		}
		if found {
			if tl.Shard == "" {
				tl.Shard = a.shards[i].Name()
			}
			a.writeJSON(w, http.StatusOK, tl)
			return
		}
	}
	if lastErr != nil {
		a.httpError(w, http.StatusBadGateway, "timeline %q: %v", key, lastErr)
		return
	}
	a.httpError(w, http.StatusNotFound, "no timeline for request %q", key)
}

// fleetShardView is one shard's slice of the fleet document.
type fleetShardView struct {
	Name string `json:"name"`
	// Reachable is false when the shard's stats fetch failed; Error then
	// carries the reason and Stats is zero.
	Reachable bool   `json:"reachable"`
	Error     string `json:"error,omitempty"`
	Stats     Stats  `json:"stats"`
	// QueueDepth and Attainment lift the two headline signals out of Stats.
	QueueDepth int     `json:"queue_depth"`
	Attainment float64 `json:"attainment"`
}

// fleetRebalanceView summarizes the elastic rebalancer for the fleet doc.
type fleetRebalanceView struct {
	Moves     int          `json:"moves"`
	GPUCounts []int        `json:"gpu_counts"`
	History   []MoveRecord `json:"history"`
}

// fleetView is the GET /v1/fleet response: the fleet's health in one
// document.
type fleetView struct {
	Router router.Stats `json:"router"`
	// ProbeCacheHitRate is hits / (hits + misses), 0 when never probed.
	ProbeCacheHitRate float64             `json:"probe_cache_hit_rate"`
	Shards            []fleetShardView    `json:"shards"`
	Rebalancer        *fleetRebalanceView `json:"rebalancer,omitempty"`
}

func (a *RouterAPI) handleFleet(w http.ResponseWriter, _ *http.Request) {
	view := fleetView{Router: a.rt.Stats()}
	if probes := view.Router.ProbeCacheHits + view.Router.ProbeCacheMisses; probes > 0 {
		view.ProbeCacheHitRate = float64(view.Router.ProbeCacheHits) / float64(probes)
	}
	for _, s := range a.shards {
		sv := fleetShardView{Name: s.Name()}
		if sf, ok := s.(StatsFetcher); ok {
			st, err := sf.FetchStats()
			if err != nil {
				sv.Error = err.Error()
			} else {
				sv.Reachable = true
				sv.Stats = st
				sv.QueueDepth = st.Queued
				sv.Attainment = st.SAR
			}
		} else {
			sv.Error = "shard does not expose stats"
		}
		view.Shards = append(view.Shards, sv)
	}
	if a.reb != nil {
		view.Rebalancer = &fleetRebalanceView{
			Moves:     a.reb.Moves(),
			GPUCounts: a.reb.Counts(),
			History:   a.reb.History(),
		}
	}
	a.writeJSON(w, http.StatusOK, view)
}

// routerStatsView is the /v1/router/stats response.
type routerStatsView struct {
	router.Stats
	// Decisions holds the last K decisions when ?explain=K is set.
	Explain []decisionView `json:"explain,omitempty"`
}

// decisionView is the JSON shape of one routing decision.
type decisionView struct {
	AtUS         int64             `json:"at_us"`
	Tenant       string            `json:"tenant,omitempty"`
	Resolution   string            `json:"resolution"`
	SLOMS        int64             `json:"slo_ms"`
	Accepted     bool              `json:"accepted"`
	Reason       string            `json:"reason"`
	Shard        string            `json:"shard,omitempty"`
	SlackUS      int64             `json:"slack_us"`
	RetryAfterMS int64             `json:"retry_after_ms,omitempty"`
	Probes       []probeResultView `json:"probes"`
}

// probeResultView is one shard's projection inside a decision.
type probeResultView struct {
	Shard string `json:"shard"`
	Error string `json:"error,omitempty"`
	FeasibilityView
}

func (a *RouterAPI) handleStats(w http.ResponseWriter, r *http.Request) {
	view := routerStatsView{Stats: a.rt.Stats()}
	if s := r.URL.Query().Get("explain"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			a.httpError(w, http.StatusBadRequest, "invalid explain %q", s)
			return
		}
		for _, dec := range a.plane.Log.Snapshot(n) {
			dv := decisionView{
				AtUS:         dec.At.Microseconds(),
				Tenant:       dec.Tenant,
				Resolution:   dec.Res.String(),
				SLOMS:        dec.SLO.Milliseconds(),
				Accepted:     dec.Accepted,
				Reason:       string(dec.Reason),
				Shard:        dec.ShardName,
				SlackUS:      dec.Slack.Microseconds(),
				RetryAfterMS: dec.RetryAfter.Milliseconds(),
				Probes:       make([]probeResultView, 0, len(dec.Probes)),
			}
			for _, pr := range dec.Probes {
				dv.Probes = append(dv.Probes, probeResultView{
					Shard:           pr.Shard,
					Error:           pr.Err,
					FeasibilityView: NewFeasibilityView(pr.Feas),
				})
			}
			view.Explain = append(view.Explain, dv)
		}
	}
	a.writeJSON(w, http.StatusOK, view)
}

func (a *RouterAPI) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// writeJSON/httpError mirror API's write discipline: once the status line is
// out, a mid-stream failure is logged, never answered with a second header.
func (a *RouterAPI) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		a.logf("server: writing %d response failed mid-stream: %v", code, err)
	}
}

func (a *RouterAPI) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	a.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
