// Package server is the online serving frontend: an HTTP API backed by a
// real-time driver that runs the exact same control plane as the offline
// simulator — internal/control's Loop, with all of its plan → dispatch,
// round-tick, fault-requeue, and drop/timeout logic — but against the wall
// clock (optionally time-scaled so hardware-scale latencies replay quickly
// in demos).
//
// The driver is a thin adapter: one goroutine owns the loop, receives
// arrivals and fault commands over channels, sleeps on the real clock until
// the loop's next event, and dispatches everything whose time has come.
// Job records are the only state it adds; they mirror the loop's lifecycle
// hooks under a mutex for the HTTP handlers, and the loop's shared Result
// gives the driver trace JSONL export and Gantt-compatible run records for
// free.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tetriserve/internal/cache"
	"tetriserve/internal/clock"
	"tetriserve/internal/control"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/invariant"
	"tetriserve/internal/lifecycle"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/telemetry"
	"tetriserve/internal/workload"
)

// JobState is a request's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	// JobDropped marks a job expired by the timeout policy: it exceeded
	// DropLateFactor × SLO without completing and was abandoned.
	JobDropped JobState = "dropped"
)

// Job is the externally visible record of one generation request.
type Job struct {
	ID        workload.RequestID `json:"id"`
	Prompt    string             `json:"prompt"`
	Width     int                `json:"width"`
	Height    int                `json:"height"`
	Steps     int                `json:"steps"`
	Skipped   int                `json:"skipped_steps"`
	State     JobState           `json:"state"`
	SLO       time.Duration      `json:"slo_ns"`
	Arrival   time.Duration      `json:"arrival_ns"`
	Completed time.Duration      `json:"completed_ns"`
	Latency   time.Duration      `json:"latency_ns"`
	MetSLO    bool               `json:"met_slo"`
	AvgDegree float64            `json:"avg_degree"`
	// TraceID is the fleet-wide lifecycle trace identifier (router-minted on
	// routed submissions, shard-derived otherwise).
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the admission-fairness identity the router attributed the
	// request to ("" = default).
	Tenant string `json:"tenant,omitempty"`

	// prompt keeps the structured form for the cache; not serialized.
	prompt workload.Prompt
}

// DriverConfig configures the real-time serving driver.
type DriverConfig struct {
	Model *model.Model
	Topo  *simgpu.Topology
	// Scheduler is the policy to serve with (usually core.NewScheduler).
	Scheduler sched.Scheduler
	// Speedup maps simulated GPU time onto wall time (10 = ten times
	// faster than real hardware). Default 20.
	Speedup float64
	// Cache optionally enables Nirvana-style step skipping.
	Cache *cache.Cache
	// EngineCfg overrides engine defaults.
	EngineCfg *engine.Config
	// AdmitAnyResolution profiles non-standard (but valid) resolutions on
	// demand and derives their deadline by interpolating the SLO policy in
	// token count; off, such submissions are rejected. Default off.
	AdmitAnyResolution bool
	// DropLateFactor > 0 expires a job once now exceeds
	// arrival + SLO×factor without completion — control.Config's policy,
	// shared verbatim with sim.Config.DropLateFactor: queued jobs expire at
	// planning boundaries, requeued jobs at block completion, and a result
	// delivered too late counts as dropped. 0 disables expiry.
	DropLateFactor float64
	// CheckInvariants attaches the internal/invariant oracle to the serving
	// loop. Unlike the simulator the driver never panics on a violation —
	// the oracle records it and InvariantViolations exposes the list, so a
	// live deployment degrades loudly instead of dying.
	CheckInvariants bool
	// QualityBudgetFrac > 0 grants every submitted job a step-cache quality
	// budget of this fraction of its steps (floored), letting a cache-aware
	// scheduler approximate that many steps to rescue tight deadlines.
	// 0 (the default) disables the cache dimension for all jobs.
	QualityBudgetFrac float64
	// ShardName labels this driver's lifecycle timelines (the shard field in
	// exported spans); "" omits the label.
	ShardName string
	// LifecycleCapacity bounds retained finalized timelines (default 4096).
	LifecycleCapacity int
}

// faultCmd is an injected fault-plane command handled on the loop goroutine.
type faultCmd struct {
	mask    simgpu.Mask
	recover bool
}

// resizeCmd is an elastic capacity change handled on the loop goroutine: the
// loop's usable GPU set becomes exactly mask at its next round boundary.
type resizeCmd struct {
	mask simgpu.Mask
}

// probeCmd is a feasibility probe handled on the loop goroutine (the probe
// reads loop state, which only that goroutine may touch).
type probeCmd struct {
	res   model.Resolution
	steps int
	slo   time.Duration
	reply chan probeReply
}

type probeReply struct {
	feas control.Feasibility
	err  error
}

// Driver runs the serving loop.
type Driver struct {
	cfg  DriverConfig
	prof *costmodel.Profile
	clk  *clock.Real

	arrive  chan *Job
	faultc  chan faultCmd
	resizec chan resizeCmd
	snapc   chan chan *control.Result
	probec  chan probeCmd
	stop    chan struct{}
	// stopped closes after the loop goroutine has published its final
	// result snapshot.
	stopped chan struct{}

	stopOnce sync.Once

	mu      sync.Mutex
	started bool
	jobs    map[workload.RequestID]*Job
	nextID  workload.RequestID
	// final is the loop's last result snapshot, published at shutdown so
	// Result keeps working after Stop.
	final     *control.Result
	completed int
	met       int
	queued    int
	running   int
	dropped   int
	// Health counters mirrored from the control loop's Result under mu so
	// Snapshot never races the loop goroutine that owns it.
	planRejected  int
	startFailed   int
	runsAborted   int
	roundTicks    int
	runsPreempted int
	resizes       int
	// gpuBusy, failed and capacity mirror engine telemetry the same way.
	gpuBusy  float64
	failed   simgpu.Mask
	capacity simgpu.Mask
	// oracle is set by the loop goroutine before the control loop starts
	// (guarded by mu for the cross-goroutine read in InvariantViolations).
	oracle *invariant.Oracle

	// plane is the live telemetry plane (metrics registry, round explainer,
	// trace bus), fed by the same hook stream as the job mirror. Its GPU-busy
	// counter is bound to the mutex mirror above, so /metrics and /v1/stats
	// agree exactly.
	plane *telemetry.Plane
	// rec assembles per-request span timelines from the same hook stream;
	// finalized timelines feed the plane's phase histograms and attainment
	// gauges via ObserveTimeline.
	rec *lifecycle.Recorder
}

// NewDriver builds and validates a driver (not yet running).
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Model == nil || cfg.Topo == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("server: Model, Topo and Scheduler are required")
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 20
	}
	est := costmodel.NewEstimator(cfg.Model, cfg.Topo)
	prof := costmodel.BuildProfile(est, costmodel.ProfilerConfig{})
	d := &Driver{
		cfg:     cfg,
		prof:    prof,
		arrive:  make(chan *Job, 256),
		faultc:  make(chan faultCmd, 16),
		resizec: make(chan resizeCmd, 16),
		snapc:   make(chan chan *control.Result),
		probec:  make(chan probeCmd),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		jobs:    make(map[workload.RequestID]*Job),
		plane:   telemetry.NewPlane(),
	}
	d.rec = lifecycle.NewRecorder(lifecycle.Config{
		Shard:       cfg.ShardName,
		Capacity:    cfg.LifecycleCapacity,
		OnFinalized: d.plane.ObserveTimeline,
	})
	d.capacity = cfg.Topo.AllMask()
	if cfg.EngineCfg != nil && cfg.EngineCfg.Capacity != 0 {
		d.capacity = cfg.EngineCfg.Capacity & cfg.Topo.AllMask()
	}
	d.plane.SetClusterSize(cfg.Topo.N)
	d.plane.BindGPUBusy(func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.gpuBusy
	})
	return d, nil
}

// Telemetry exposes the live telemetry plane for the HTTP layer (/metrics,
// /v1/rounds, /v1/trace?follow=1) and tests.
func (d *Driver) Telemetry() *telemetry.Plane { return d.plane }

// Lifecycle exposes the span-timeline recorder (GET /v1/requests/{id}).
func (d *Driver) Lifecycle() *lifecycle.Recorder { return d.rec }

// Timeline returns a deep copy of a request's span timeline by trace ID or
// decimal job ID. Safe to call concurrently with the loop.
func (d *Driver) Timeline(key string) (*lifecycle.Timeline, bool) {
	return d.rec.Lookup(key)
}

// Profile exposes the offline-profiled cost table.
func (d *Driver) Profile() *costmodel.Profile { return d.prof }

// Start launches the serving loop goroutine. Start is idempotent; starting
// an already-stopped driver launches a loop that exits immediately.
func (d *Driver) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.clk = clock.NewReal(d.cfg.Speedup)
	go d.loop()
}

// Stop shuts the loop down and waits for it to exit. Stop is idempotent and
// safe to call before Start: the stop signal is latched once, and the wait
// only happens when a loop was actually launched.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if started {
		<-d.stopped
	}
}

// FailGPUs injects a fail-stop fault for the masked GPUs: in-flight blocks
// touching them are aborted with partial-step credit and their jobs requeued
// onto the surviving devices at the next plan. Returns an error only if the
// driver is stopped.
func (d *Driver) FailGPUs(mask simgpu.Mask) error {
	return d.sendFault(faultCmd{mask: mask})
}

// RecoverGPUs returns previously failed GPUs to service.
func (d *Driver) RecoverGPUs(mask simgpu.Mask) error {
	return d.sendFault(faultCmd{mask: mask, recover: true})
}

// Resize stages an elastic capacity change: the loop's usable GPU set becomes
// exactly mask at its next round boundary (immediately for event-driven
// schedulers). Unlike FailGPUs, departing GPUs hand their work off — in-flight
// blocks are preempted with full step credit and requeued, never dropped as
// fault victims. Returns an error only if the driver is stopped.
func (d *Driver) Resize(mask simgpu.Mask) error {
	select {
	case <-d.stop:
		return fmt.Errorf("server: driver stopped")
	default:
	}
	select {
	case d.resizec <- resizeCmd{mask: mask}:
		return nil
	case <-d.stop:
		return fmt.Errorf("server: driver stopped")
	}
}

func (d *Driver) sendFault(cmd faultCmd) error {
	// Check the latch first: after Stop, both select cases below are ready
	// (the buffered channel still accepts) and Go would pick one at random.
	select {
	case <-d.stop:
		return fmt.Errorf("server: driver stopped")
	default:
	}
	select {
	case d.faultc <- cmd:
		return nil
	case <-d.stop:
		return fmt.Errorf("server: driver stopped")
	}
}

// ErrUnknownResolution marks submissions whose resolution the cost profile
// was never calibrated on (and on-demand profiling is off). The HTTP layer
// maps it to 400: the request itself is malformed for this deployment, not
// merely unservable right now.
var ErrUnknownResolution = errors.New("resolution not profiled")

// Submit enqueues a generation request and returns a snapshot of its job.
func (d *Driver) Submit(prompt workload.Prompt, res model.Resolution, slo time.Duration) (Job, error) {
	return d.SubmitTraced(prompt, res, slo, "", "")
}

// SubmitTraced is Submit with fleet-trace context: traceID is the
// router-minted lifecycle trace identifier ("" lets the recorder derive
// one from the job ID) and tenant the admission-fairness identity.
func (d *Driver) SubmitTraced(prompt workload.Prompt, res model.Resolution, slo time.Duration, traceID, tenant string) (Job, error) {
	if !res.Valid() {
		return Job{}, fmt.Errorf("server: invalid resolution %v", res)
	}
	// With AdmitAnyResolution the profile can grow, but only ever on the
	// loop goroutine (see the arrival path); in that mode Submit must not
	// read it.
	if !d.cfg.AdmitAnyResolution && !d.prof.Has(res) {
		return Job{}, fmt.Errorf("server: %w: %v; supported: %v", ErrUnknownResolution, res, d.prof.Resolutions())
	}
	if slo <= 0 {
		// The default deadline interpolates the SLO policy in token count,
		// clamped to the calibrated anchor range — a resolution outside the
		// policy's range inherits the nearest contract rather than an
		// extrapolated (potentially absurd) one.
		slo = workload.NewSLOPolicy(1.0).InterpolatedBudget(res)
	}
	select {
	case <-d.stop:
		return Job{}, fmt.Errorf("server: driver stopped")
	default:
	}
	d.mu.Lock()
	id := d.nextID
	d.nextID++
	if traceID == "" {
		// Shard-local derivation, matching the lifecycle recorder's fallback,
		// so every job carries a queryable trace id.
		traceID = fmt.Sprintf("req-%d", id)
	}
	job := &Job{
		ID:      id,
		Prompt:  prompt.Text,
		Width:   res.W,
		Height:  res.H,
		Steps:   d.cfg.Model.DefaultSteps,
		State:   JobQueued,
		SLO:     slo,
		TraceID: traceID,
		Tenant:  tenant,
		prompt:  prompt,
	}
	d.jobs[id] = job
	d.queued++
	snap := *job
	d.mu.Unlock()

	select {
	case d.arrive <- job:
		return snap, nil
	case <-d.stop:
		// The loop never saw this job; roll back the optimistic insertion
		// so Snapshot counters stay truthful.
		d.mu.Lock()
		delete(d.jobs, id)
		d.queued--
		d.mu.Unlock()
		return Job{}, fmt.Errorf("server: driver stopped")
	}
}

// JobStatus returns a snapshot of a job.
func (d *Driver) JobStatus(id workload.RequestID) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Result returns a point-in-time snapshot of the control loop's result —
// outcomes, run records, plan latencies, health counters — the same
// structure the simulator returns, so trace export and Gantt rendering work
// identically against live traffic. Safe to call concurrently; after Stop
// it returns the loop's final state.
func (d *Driver) Result() *control.Result {
	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		return &control.Result{SchedulerName: d.cfg.Scheduler.Name(), NGPU: d.cfg.Topo.N}
	}
	d.mu.Unlock()
	reply := make(chan *control.Result, 1)
	select {
	case d.snapc <- reply:
		return <-reply
	case <-d.stopped:
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.final
	}
}

// Probe projects deadline feasibility for a hypothetical request against
// the live loop's current backlog — control.Loop.ProbeFeasibility, funneled
// onto the loop goroutine that owns all loop state. The probe mutates
// nothing: submitting after a probe behaves exactly as if the probe never
// happened. Safe to call concurrently; fails once the driver is stopped or
// before it is started.
func (d *Driver) Probe(res model.Resolution, steps int, slo time.Duration) (control.Feasibility, error) {
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if !started {
		return control.Feasibility{}, fmt.Errorf("server: driver not started")
	}
	cmd := probeCmd{res: res, steps: steps, slo: slo, reply: make(chan probeReply, 1)}
	select {
	case d.probec <- cmd:
		r := <-cmd.reply
		return r.feas, r.err
	case <-d.stopped:
		return control.Feasibility{}, fmt.Errorf("server: driver stopped")
	}
}

// InvariantViolations returns the scheduling-invariant violations the
// attached oracle has recorded so far (nil when CheckInvariants is off or
// the loop has been clean). Safe to call concurrently with the loop.
func (d *Driver) InvariantViolations() []invariant.Violation {
	d.mu.Lock()
	o := d.oracle
	d.mu.Unlock()
	if o == nil {
		return nil
	}
	return o.Violations()
}

// Stats summarizes served traffic and serving-loop health.
type Stats struct {
	Completed int     `json:"completed"`
	MetSLO    int     `json:"met_slo"`
	SAR       float64 `json:"sar"`
	Queued    int     `json:"queued"`
	Running   int     `json:"running"`
	Dropped   int     `json:"dropped"`
	GPUBusyS  float64 `json:"gpu_busy_seconds"`
	// Error counters: plans the validator rejected, assignments the engine
	// refused to start, and blocks aborted by GPU faults.
	PlanRejected int `json:"plan_rejected"`
	StartFailed  int `json:"start_failed"`
	RunsAborted  int `json:"runs_aborted"`
	// RoundTicks counts fired round boundaries (0 for event-driven
	// schedulers); the τ grid stays anchored even under late wake-ups.
	RoundTicks int `json:"round_ticks"`
	// RunsPreempted counts blocks preempted (with full credit) by elastic
	// capacity changes; Resizes counts applied capacity changes.
	RunsPreempted int `json:"runs_preempted,omitempty"`
	Resizes       int `json:"resizes,omitempty"`
	// FailedGPUs lists devices currently out of service.
	FailedGPUs []int `json:"failed_gpus,omitempty"`
	// CapacityGPUs lists the devices this loop currently owns (the elastic
	// capacity mask; the full topology unless resized).
	CapacityGPUs []int `json:"capacity_gpus,omitempty"`
}

// Snapshot returns aggregate serving statistics.
func (d *Driver) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{
		Completed:     d.completed,
		MetSLO:        d.met,
		Queued:        d.queued,
		Running:       d.running,
		Dropped:       d.dropped,
		GPUBusyS:      d.gpuBusy,
		PlanRejected:  d.planRejected,
		StartFailed:   d.startFailed,
		RunsAborted:   d.runsAborted,
		RoundTicks:    d.roundTicks,
		RunsPreempted: d.runsPreempted,
		Resizes:       d.resizes,
	}
	for _, g := range d.failed.IDs() {
		st.FailedGPUs = append(st.FailedGPUs, int(g))
	}
	for _, g := range d.capacity.IDs() {
		st.CapacityGPUs = append(st.CapacityGPUs, int(g))
	}
	if d.completed > 0 {
		st.SAR = float64(d.met) / float64(d.completed)
	}
	return st
}

// cacheTrimmer adapts the approximate latent cache to the control loop's
// StepTrimmer hook.
type cacheTrimmer struct{ c *cache.Cache }

func (t cacheTrimmer) OnArrival(p workload.Prompt, res model.Resolution, steps int, now time.Duration) int {
	return t.c.Lookup(p, res, steps)
}

func (t cacheTrimmer) OnComplete(p workload.Prompt, res model.Resolution, now time.Duration) {
	t.c.Insert(p, res)
}

// hooks builds the lifecycle callbacks that mirror control-loop transitions
// into the HTTP-visible job records. All hooks run on the loop goroutine;
// the mutex only guards against concurrent HTTP reads.
func (d *Driver) hooks() control.Hooks {
	return control.Hooks{
		Admitted: func(now time.Duration, r *workload.Request) {
			d.mu.Lock()
			if j, ok := d.jobs[r.ID]; ok {
				j.Arrival = now
				j.Skipped = r.SkippedSteps
			}
			d.mu.Unlock()
		},
		Started: func(now time.Duration, id workload.RequestID) {
			d.mu.Lock()
			if j, ok := d.jobs[id]; ok && j.State == JobQueued {
				j.State = JobRunning
				d.queued--
				d.running++
			}
			d.mu.Unlock()
		},
		Requeued: func(now time.Duration, id workload.RequestID, _ control.RequeueCause) {
			// Fault/resize interruptions only: the survivor goes back to the
			// queue until the next plan re-packs it. Ordinary end-of-block
			// requeues keep the job "running" from the client's perspective —
			// its block is merely between rounds.
			d.mu.Lock()
			if j, ok := d.jobs[id]; ok && j.State == JobRunning {
				j.State = JobQueued
				d.running--
				d.queued++
			}
			d.mu.Unlock()
		},
		Finished: func(now time.Duration, o control.Outcome) {
			d.mu.Lock()
			if j, ok := d.jobs[o.ID]; ok {
				d.retireLocked(j)
				j.State = JobCompleted
				j.Completed = o.Completion
				j.Latency = o.Latency
				j.MetSLO = o.Met
				j.AvgDegree = o.AvgDegree
				d.completed++
				if o.Met {
					d.met++
				}
			}
			d.mu.Unlock()
		},
		Dropped: func(now time.Duration, o control.Outcome) {
			d.mu.Lock()
			if j, ok := d.jobs[o.ID]; ok {
				d.retireLocked(j)
				j.State = JobDropped
				d.dropped++
			}
			d.mu.Unlock()
		},
	}
}

// retireLocked decrements the queue-position counter a job currently
// occupies. Callers hold mu and set the terminal state afterwards.
func (d *Driver) retireLocked(j *Job) {
	switch j.State {
	case JobQueued:
		d.queued--
	case JobRunning:
		d.running--
	}
}

// loop is the real-time adapter around control.Loop: sleep until the loop's
// next event is due on the (speedup-scaled) wall clock, dispatch everything
// whose time has come, and inject channel-fed arrivals and fault commands
// as they happen. The loop goroutine owns ctl exclusively.
func (d *Driver) loop() {
	engCfg := engine.DefaultConfig()
	if d.cfg.EngineCfg != nil {
		engCfg = *d.cfg.EngineCfg
	}
	ctlCfg := control.Config{
		Model:          d.cfg.Model,
		Topo:           d.cfg.Topo,
		Scheduler:      d.cfg.Scheduler,
		Profile:        d.prof,
		Engine:         engCfg,
		DropLateFactor: d.cfg.DropLateFactor,
		// A live serving loop never stops ticking (capacity may free up or
		// arrive at any moment) and never panics on scheduler bugs — it
		// counts them and retries at the next event.
		Perpetual: true,
		Hooks:     d.hooks().Then(d.plane.Hooks()).Then(d.rec.Hooks()),
	}
	if d.cfg.Cache != nil {
		ctlCfg.Trimmer = cacheTrimmer{c: d.cfg.Cache}
	}
	if d.cfg.CheckInvariants {
		o := invariant.Attach(&ctlCfg)
		d.mu.Lock()
		d.oracle = o
		d.mu.Unlock()
	}
	ctl, err := control.New(ctlCfg, d.clk)
	if err != nil {
		// NewDriver validated the same invariants; this is unreachable
		// without a programming error.
		panic(fmt.Sprintf("server: control loop rejected validated config: %v", err))
	}
	defer func() {
		d.mu.Lock()
		d.final = ctl.SnapshotResult()
		d.mu.Unlock()
		close(d.stopped)
	}()

	// syncTelemetry mirrors loop + engine counters into the mutex-guarded
	// fields Snapshot reads. Runs on the loop goroutine after every batch
	// of work.
	syncTelemetry := func() {
		res := ctl.Result()
		eng := ctl.Engine()
		busy := eng.GPUBusySeconds()
		failed := eng.FailedGPUs()
		aborted := eng.RunsAborted()
		preempted := eng.RunsPreempted()
		resizes := eng.Resizes()
		capacity := eng.Capacity()
		d.mu.Lock()
		d.planRejected = res.PlanRejected
		d.startFailed = res.StartFailed
		d.roundTicks = res.RoundTicks
		d.runsAborted = aborted
		d.runsPreempted = preempted
		d.resizes = resizes
		d.gpuBusy = busy
		d.failed = failed
		d.capacity = capacity
		d.mu.Unlock()
	}

	ctl.Begin()

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var wake <-chan time.Time
		if next := ctl.NextEvent(); next != nil {
			wall := time.Duration(float64(next.At-d.clk.Now()) / d.cfg.Speedup)
			if wall < 0 {
				wall = 0
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wall)
			wake = timer.C
		}

		select {
		case <-d.stop:
			return
		case job := <-d.arrive:
			// On-demand profiling for non-standard resolutions happens here,
			// on the loop goroutine that owns all profile reads, so the
			// scheduler never observes an unprofiled request.
			res := model.Resolution{W: job.Width, H: job.Height}
			if d.cfg.AdmitAnyResolution && !d.prof.Has(res) {
				d.prof.Extend(costmodel.NewEstimator(d.cfg.Model, d.cfg.Topo), res)
			}
			req := &workload.Request{
				ID:      job.ID,
				Prompt:  job.prompt,
				Res:     res,
				Steps:   job.Steps,
				SLO:     job.SLO,
				TraceID: job.TraceID,
				Tenant:  job.Tenant,
			}
			if f := d.cfg.QualityBudgetFrac; f > 0 {
				req.QualityBudget = int(f * float64(job.Steps))
			}
			ctl.Arrive(req)
		case cmd := <-d.faultc:
			if cmd.recover {
				ctl.Recover(cmd.mask)
			} else {
				ctl.Fail(cmd.mask)
			}
		case cmd := <-d.resizec:
			ctl.ApplyResize(cmd.mask)
		case reply := <-d.snapc:
			reply <- ctl.SnapshotResult()
		case cmd := <-d.probec:
			feas, err := ctl.ProbeFeasibility(cmd.res, cmd.steps, cmd.slo)
			cmd.reply <- probeReply{feas: feas, err: err}
		case <-wake:
			for {
				next := ctl.NextEvent()
				if next == nil || next.At > d.clk.Now() {
					break
				}
				// Dispatch's only error source is the engine refusing a
				// completion it no longer tracks; the serving loop skips the
				// stale event and keeps going.
				_ = ctl.Dispatch(ctl.PopEvent())
			}
		}
		syncTelemetry()
	}
}
