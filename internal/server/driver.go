// Package server is the online serving frontend: an HTTP API backed by a
// real-time driver that runs the exact same scheduler and execution engine
// as the offline simulator, but against the wall clock (optionally
// time-scaled so hardware-scale latencies replay quickly in demos).
//
// The driver is the live counterpart of internal/sim: one goroutine owns
// all scheduling state, receives arrivals and fault commands over channels,
// fires round ticks and block completions from an event queue, and sleeps
// on the real clock between events. Job records are the only shared state;
// they are guarded by a mutex for the HTTP handlers.
package server

import (
	"fmt"
	"sync"
	"time"

	"tetriserve/internal/cache"
	"tetriserve/internal/clock"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/eventq"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// JobState is a request's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	// JobDropped marks a job expired by the timeout policy: it sat queued
	// past DropLateFactor × SLO and was abandoned at a round boundary.
	JobDropped JobState = "dropped"
)

// Job is the externally visible record of one generation request.
type Job struct {
	ID        workload.RequestID `json:"id"`
	Prompt    string             `json:"prompt"`
	Width     int                `json:"width"`
	Height    int                `json:"height"`
	Steps     int                `json:"steps"`
	Skipped   int                `json:"skipped_steps"`
	State     JobState           `json:"state"`
	SLO       time.Duration      `json:"slo_ns"`
	Arrival   time.Duration      `json:"arrival_ns"`
	Completed time.Duration      `json:"completed_ns"`
	Latency   time.Duration      `json:"latency_ns"`
	MetSLO    bool               `json:"met_slo"`
	AvgDegree float64            `json:"avg_degree"`

	// prompt keeps the structured form for the cache; not serialized.
	prompt workload.Prompt
}

// DriverConfig configures the real-time serving driver.
type DriverConfig struct {
	Model *model.Model
	Topo  *simgpu.Topology
	// Scheduler is the policy to serve with (usually core.NewScheduler).
	Scheduler sched.Scheduler
	// Speedup maps simulated GPU time onto wall time (10 = ten times
	// faster than real hardware). Default 20.
	Speedup float64
	// Cache optionally enables Nirvana-style step skipping.
	Cache *cache.Cache
	// EngineCfg overrides engine defaults.
	EngineCfg *engine.Config
	// AdmitAnyResolution profiles non-standard (but valid) resolutions on
	// demand and derives their deadline by interpolating the SLO policy in
	// token count; off, such submissions are rejected. Default off.
	AdmitAnyResolution bool
	// DropLateFactor > 0 expires a queued job once now exceeds
	// arrival + SLO×factor without it starting — the driver counterpart of
	// sim.Config.DropLateFactor, checked at every planning boundary so the
	// queue cannot grow without bound under overload. 0 disables expiry.
	DropLateFactor float64
}

// faultCmd is an injected fault-plane command handled on the loop goroutine.
type faultCmd struct {
	mask    simgpu.Mask
	recover bool
}

// Driver runs the serving loop.
type Driver struct {
	cfg   DriverConfig
	prof  *costmodel.Profile
	clk   *clock.Real
	eng   *engine.Engine
	sched sched.Scheduler

	arrive  chan *Job
	faultc  chan faultCmd
	stop    chan struct{}
	stopped chan struct{}

	stopOnce sync.Once

	mu        sync.Mutex
	started   bool
	jobs      map[workload.RequestID]*Job
	nextID    workload.RequestID
	completed int
	met       int
	queued    int
	running   int
	dropped   int
	// Error counters: a serving loop must degrade loudly, not silently.
	planRejected int
	startFailed  int
	runsAborted  int
	roundTicks   int
	// gpuBusy and failed mirror engine telemetry under mu so Snapshot
	// never races the loop goroutine that owns the engine.
	gpuBusy float64
	failed  simgpu.Mask
}

// NewDriver builds and validates a driver (not yet running).
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Model == nil || cfg.Topo == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("server: Model, Topo and Scheduler are required")
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 20
	}
	est := costmodel.NewEstimator(cfg.Model, cfg.Topo)
	prof := costmodel.BuildProfile(est, costmodel.ProfilerConfig{})
	engCfg := engine.DefaultConfig()
	if cfg.EngineCfg != nil {
		engCfg = *cfg.EngineCfg
	}
	return &Driver{
		cfg:     cfg,
		prof:    prof,
		eng:     engine.New(cfg.Model, cfg.Topo, prof, engCfg),
		sched:   cfg.Scheduler,
		arrive:  make(chan *Job, 256),
		faultc:  make(chan faultCmd, 16),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		jobs:    make(map[workload.RequestID]*Job),
	}, nil
}

// Profile exposes the offline-profiled cost table.
func (d *Driver) Profile() *costmodel.Profile { return d.prof }

// Start launches the serving loop goroutine. Start is idempotent; starting
// an already-stopped driver launches a loop that exits immediately.
func (d *Driver) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.clk = clock.NewReal(d.cfg.Speedup)
	go d.loop()
}

// Stop shuts the loop down and waits for it to exit. Stop is idempotent and
// safe to call before Start: the stop signal is latched once, and the wait
// only happens when a loop was actually launched.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if started {
		<-d.stopped
	}
}

// FailGPUs injects a fail-stop fault for the masked GPUs: in-flight blocks
// touching them are aborted with partial-step credit and their jobs requeued
// onto the surviving devices at the next plan. Returns an error only if the
// driver is stopped.
func (d *Driver) FailGPUs(mask simgpu.Mask) error {
	return d.sendFault(faultCmd{mask: mask})
}

// RecoverGPUs returns previously failed GPUs to service.
func (d *Driver) RecoverGPUs(mask simgpu.Mask) error {
	return d.sendFault(faultCmd{mask: mask, recover: true})
}

func (d *Driver) sendFault(cmd faultCmd) error {
	select {
	case d.faultc <- cmd:
		return nil
	case <-d.stop:
		return fmt.Errorf("server: driver stopped")
	}
}

// Submit enqueues a generation request and returns a snapshot of its job.
func (d *Driver) Submit(prompt workload.Prompt, res model.Resolution, slo time.Duration) (Job, error) {
	if !res.Valid() {
		return Job{}, fmt.Errorf("server: invalid resolution %v", res)
	}
	// With AdmitAnyResolution the profile can grow, but only ever on the
	// loop goroutine (see onArrival); in that mode Submit must not read it.
	if !d.cfg.AdmitAnyResolution && !d.prof.Has(res) {
		return Job{}, fmt.Errorf("server: resolution %v not profiled; supported: %v", res, d.prof.Resolutions())
	}
	if slo <= 0 {
		slo = workload.NewSLOPolicy(1.0).InterpolatedBudget(res)
	}
	select {
	case <-d.stop:
		return Job{}, fmt.Errorf("server: driver stopped")
	default:
	}
	d.mu.Lock()
	id := d.nextID
	d.nextID++
	job := &Job{
		ID:     id,
		Prompt: prompt.Text,
		Width:  res.W,
		Height: res.H,
		Steps:  d.cfg.Model.DefaultSteps,
		State:  JobQueued,
		SLO:    slo,
		prompt: prompt,
	}
	d.jobs[id] = job
	d.queued++
	snap := *job
	d.mu.Unlock()

	select {
	case d.arrive <- job:
		return snap, nil
	case <-d.stop:
		// The loop never saw this job; roll back the optimistic insertion
		// so Snapshot counters stay truthful.
		d.mu.Lock()
		delete(d.jobs, id)
		d.queued--
		d.mu.Unlock()
		return Job{}, fmt.Errorf("server: driver stopped")
	}
}

// JobStatus returns a snapshot of a job.
func (d *Driver) JobStatus(id workload.RequestID) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Stats summarizes served traffic and serving-loop health.
type Stats struct {
	Completed int     `json:"completed"`
	MetSLO    int     `json:"met_slo"`
	SAR       float64 `json:"sar"`
	Queued    int     `json:"queued"`
	Running   int     `json:"running"`
	Dropped   int     `json:"dropped"`
	GPUBusyS  float64 `json:"gpu_busy_seconds"`
	// Error counters: plans the validator rejected, assignments the engine
	// refused to start, and blocks aborted by GPU faults.
	PlanRejected int `json:"plan_rejected"`
	StartFailed  int `json:"start_failed"`
	RunsAborted  int `json:"runs_aborted"`
	// RoundTicks counts fired round boundaries (0 for event-driven
	// schedulers); the τ grid stays anchored even under late wake-ups.
	RoundTicks int `json:"round_ticks"`
	// FailedGPUs lists devices currently out of service.
	FailedGPUs []int `json:"failed_gpus,omitempty"`
}

// Snapshot returns aggregate serving statistics.
func (d *Driver) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{
		Completed:    d.completed,
		MetSLO:       d.met,
		Queued:       d.queued,
		Running:      d.running,
		Dropped:      d.dropped,
		GPUBusyS:     d.gpuBusy,
		PlanRejected: d.planRejected,
		StartFailed:  d.startFailed,
		RunsAborted:  d.runsAborted,
		RoundTicks:   d.roundTicks,
	}
	for _, g := range d.failed.IDs() {
		st.FailedGPUs = append(st.FailedGPUs, int(g))
	}
	if d.completed > 0 {
		st.SAR = float64(d.met) / float64(d.completed)
	}
	return st
}

// loop is the real-time counterpart of internal/sim's event loop. All
// scheduling state (states, pending, the engine) is owned by this goroutine.
func (d *Driver) loop() {
	defer close(d.stopped)
	var q eventq.Queue
	const (
		evRunDone = iota
		evRoundTick
	)
	roundBased := d.sched.RoundDuration() > 0
	var schedOver time.Duration
	if o, ok := d.sched.(interface{ Overhead() time.Duration }); ok {
		schedOver = o.Overhead()
	}
	eager := false
	if e, ok := d.sched.(interface{ EagerAdmission() bool }); ok {
		eager = e.EagerAdmission()
	}

	states := make(map[workload.RequestID]*sched.RequestState)
	runEv := make(map[engine.RunID]eventq.Handle)
	var pending []*sched.RequestState

	// expire applies the timeout policy at planning boundaries: a job still
	// queued past DropLateFactor × SLO is abandoned — its client is gone,
	// and keeping it would let the queue grow without bound under overload.
	expire := func(now time.Duration) {
		if d.cfg.DropLateFactor <= 0 {
			return
		}
		kept := pending[:0]
		for _, st := range pending {
			limit := st.Req.Arrival + time.Duration(float64(st.Req.SLO)*d.cfg.DropLateFactor)
			if st.Running || now <= limit {
				kept = append(kept, st)
				continue
			}
			id := st.Req.ID
			d.eng.ReleaseLatent(id)
			delete(states, id)
			d.mu.Lock()
			if j, ok := d.jobs[id]; ok && j.State == JobQueued {
				j.State = JobDropped
				d.queued--
				d.dropped++
			}
			d.mu.Unlock()
		}
		for i := len(kept); i < len(pending); i++ {
			pending[i] = nil
		}
		pending = kept
	}

	plan := func(now time.Duration) {
		expire(now)
		snapshot := make([]*sched.RequestState, 0, len(pending))
		for _, st := range pending {
			if !st.Running && st.Remaining > 0 {
				snapshot = append(snapshot, st)
			}
		}
		if len(snapshot) == 0 {
			return
		}
		var running []*sched.RequestState
		for _, st := range states {
			if st.Running {
				running = append(running, st)
			}
		}
		ctx := &sched.PlanContext{
			Now:     now,
			Free:    d.eng.Free(),
			Pending: snapshot,
			Running: running,
			Profile: d.prof,
			Topo:    d.cfg.Topo,
		}
		assignments := d.sched.Plan(ctx)
		if err := sched.ValidatePlan(ctx, assignments); err != nil {
			// A scheduler bug must not kill the serving loop; count it,
			// skip this plan, and retry at the next event.
			d.mu.Lock()
			d.planRejected++
			d.mu.Unlock()
			return
		}
		for _, asg := range assignments {
			run, err := d.eng.Start(now, asg, states, schedOver)
			if err != nil {
				d.mu.Lock()
				d.startFailed++
				d.mu.Unlock()
				continue
			}
			for _, id := range asg.Requests {
				states[id].Running = true
				for i, st := range pending {
					if st.Req.ID == id {
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
				d.mu.Lock()
				if j, ok := d.jobs[id]; ok && j.State == JobQueued {
					j.State = JobRunning
					d.queued--
					d.running++
				}
				d.mu.Unlock()
			}
			runEv[run.ID] = q.Push(run.End, evRunDone, run)
		}
	}

	onArrival := func(now time.Duration, job *Job) {
		steps := d.cfg.Model.DefaultSteps
		skip := 0
		res := model.Resolution{W: job.Width, H: job.Height}
		// On-demand profiling for non-standard resolutions happens here,
		// on the loop goroutine that owns all profile reads, so the
		// scheduler never observes an unprofiled request.
		if d.cfg.AdmitAnyResolution && !d.prof.Has(res) {
			d.prof.Extend(costmodel.NewEstimator(d.cfg.Model, d.cfg.Topo), res)
		}
		if d.cfg.Cache != nil {
			skip = d.cfg.Cache.Lookup(job.prompt, res, steps)
			if skip >= steps {
				skip = steps - 1
			}
		}
		req := &workload.Request{
			ID:           job.ID,
			Prompt:       job.prompt,
			Res:          res,
			Steps:        steps,
			SkippedSteps: skip,
			Arrival:      now,
			SLO:          job.SLO,
		}
		st := &sched.RequestState{
			Req:           req,
			Remaining:     steps - skip,
			StepsByDegree: map[int]int{},
		}
		states[job.ID] = st
		pending = append(pending, st)
		d.mu.Lock()
		job.Arrival = now
		job.Skipped = skip
		d.mu.Unlock()
	}

	// finishJob retires a completed request: decode, release, account.
	finishJob := func(now time.Duration, id workload.RequestID, st *sched.RequestState) {
		completion := d.eng.Decode(now, st.Req.Res)
		d.eng.ReleaseLatent(id)
		if d.cfg.Cache != nil {
			d.cfg.Cache.Insert(st.Req.Prompt, st.Req.Res)
		}
		delete(states, id)
		d.mu.Lock()
		if j, ok := d.jobs[id]; ok {
			j.State = JobCompleted
			j.Completed = completion
			j.Latency = completion - j.Arrival
			j.MetSLO = j.Latency <= j.SLO
			j.AvgDegree = st.AvgDegree()
			d.running--
			d.completed++
			if j.MetSLO {
				d.met++
			}
		}
		d.mu.Unlock()
	}

	onRunDone := func(now time.Duration, run *engine.Run) {
		if err := d.eng.Finish(run); err != nil {
			return
		}
		delete(runEv, run.ID)
		d.mu.Lock()
		d.gpuBusy = d.eng.GPUBusySeconds()
		d.mu.Unlock()
		for id, steps := range run.Steps {
			st := states[id]
			st.Running = false
			st.Started = true
			st.Remaining -= steps
			st.LastGroup = run.Asg.Group
			st.StepsByDegree[run.Degree] += steps
			if st.Remaining > 0 {
				pending = append(pending, st)
				continue
			}
			finishJob(now, id, st)
		}
	}

	// onFault is the recovery path the round scheduler makes cheap: abort
	// the dead blocks, credit completed steps, requeue the survivors, and
	// let the next plan re-pack them on the remaining GPUs.
	onFault := func(now time.Duration, cmd faultCmd) {
		if cmd.recover {
			recovered := d.eng.RecoverGPUs(cmd.mask)
			d.mu.Lock()
			d.failed = d.eng.FailedGPUs()
			d.mu.Unlock()
			if recovered != 0 && !roundBased {
				plan(now)
			}
			return
		}
		failures := d.eng.FailGPUs(now, cmd.mask)
		for _, f := range failures {
			if h, ok := runEv[f.Run.ID]; ok {
				q.Cancel(h)
				delete(runEv, f.Run.ID)
			}
			d.mu.Lock()
			d.runsAborted++
			d.mu.Unlock()
			for id, done := range f.StepsDone {
				st := states[id]
				st.Running = false
				if done > 0 {
					st.Started = true
					st.Remaining -= done
					st.StepsByDegree[f.Run.Degree] += done
				}
				if st.Remaining <= 0 {
					// Every step finished before the fault; only the
					// decode remained.
					finishJob(now, id, st)
					continue
				}
				pending = append(pending, st)
				d.mu.Lock()
				if j, ok := d.jobs[id]; ok && j.State == JobRunning {
					j.State = JobQueued
					d.running--
					d.queued++
				}
				d.mu.Unlock()
			}
		}
		// Placement preservation must not steer survivors onto dead GPUs.
		for _, st := range states {
			st.LastGroup = st.LastGroup.Without(cmd.mask)
		}
		d.mu.Lock()
		d.failed = d.eng.FailedGPUs()
		d.gpuBusy = d.eng.GPUBusySeconds()
		d.mu.Unlock()
		if !roundBased {
			plan(now)
		}
	}

	if roundBased {
		q.Push(d.clk.Now()+d.sched.RoundDuration(), evRoundTick, nil)
	}

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var wake <-chan time.Time
		if next := q.Peek(); next != nil {
			wall := time.Duration(float64(next.At-d.clk.Now()) / d.cfg.Speedup)
			if wall < 0 {
				wall = 0
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wall)
			wake = timer.C
		}

		select {
		case <-d.stop:
			return
		case job := <-d.arrive:
			now := d.clk.Now()
			onArrival(now, job)
			if !roundBased || (eager && d.eng.Free() != 0) {
				plan(now)
			}
		case cmd := <-d.faultc:
			onFault(d.clk.Now(), cmd)
		case <-wake:
			for {
				next := q.Peek()
				if next == nil || next.At > d.clk.Now() {
					break
				}
				ev := q.Pop()
				now := d.clk.Now()
				switch ev.Kind {
				case evRunDone:
					onRunDone(now, ev.Payload.(*engine.Run))
					if !roundBased {
						plan(now)
					}
				case evRoundTick:
					d.mu.Lock()
					d.roundTicks++
					d.mu.Unlock()
					plan(now)
					// Reschedule from the event's scheduled time, not the
					// processing time: a late wake-up must not shift the τ
					// grid the round scheduler assumes (drift would
					// otherwise accumulate forever).
					q.Push(ev.At+d.sched.RoundDuration(), evRoundTick, nil)
				}
			}
		}
	}
}
