// Package server is the online serving frontend: an HTTP API backed by a
// real-time driver that runs the exact same scheduler and execution engine
// as the offline simulator, but against the wall clock (optionally
// time-scaled so hardware-scale latencies replay quickly in demos).
//
// The driver is the live counterpart of internal/sim: one goroutine owns
// all scheduling state, receives arrivals over a channel, fires round ticks
// and block completions from an event queue, and sleeps on the real clock
// between events. Job records are the only shared state; they are guarded
// by a mutex for the HTTP handlers.
package server

import (
	"fmt"
	"sync"
	"time"

	"tetriserve/internal/cache"
	"tetriserve/internal/clock"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/engine"
	"tetriserve/internal/eventq"
	"tetriserve/internal/model"
	"tetriserve/internal/sched"
	"tetriserve/internal/simgpu"
	"tetriserve/internal/workload"
)

// JobState is a request's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
)

// Job is the externally visible record of one generation request.
type Job struct {
	ID        workload.RequestID `json:"id"`
	Prompt    string             `json:"prompt"`
	Width     int                `json:"width"`
	Height    int                `json:"height"`
	Steps     int                `json:"steps"`
	Skipped   int                `json:"skipped_steps"`
	State     JobState           `json:"state"`
	SLO       time.Duration      `json:"slo_ns"`
	Arrival   time.Duration      `json:"arrival_ns"`
	Completed time.Duration      `json:"completed_ns"`
	Latency   time.Duration      `json:"latency_ns"`
	MetSLO    bool               `json:"met_slo"`
	AvgDegree float64            `json:"avg_degree"`

	// prompt keeps the structured form for the cache; not serialized.
	prompt workload.Prompt
}

// DriverConfig configures the real-time serving driver.
type DriverConfig struct {
	Model *model.Model
	Topo  *simgpu.Topology
	// Scheduler is the policy to serve with (usually core.NewScheduler).
	Scheduler sched.Scheduler
	// Speedup maps simulated GPU time onto wall time (10 = ten times
	// faster than real hardware). Default 20.
	Speedup float64
	// Cache optionally enables Nirvana-style step skipping.
	Cache *cache.Cache
	// EngineCfg overrides engine defaults.
	EngineCfg *engine.Config
	// AdmitAnyResolution profiles non-standard (but valid) resolutions on
	// demand and derives their deadline by interpolating the SLO policy in
	// token count; off, such submissions are rejected. Default off.
	AdmitAnyResolution bool
}

// Driver runs the serving loop.
type Driver struct {
	cfg   DriverConfig
	prof  *costmodel.Profile
	clk   *clock.Real
	eng   *engine.Engine
	sched sched.Scheduler

	arrive  chan *Job
	stop    chan struct{}
	stopped chan struct{}

	mu        sync.Mutex
	jobs      map[workload.RequestID]*Job
	nextID    workload.RequestID
	completed int
	met       int
	queued    int
	running   int
}

// NewDriver builds and validates a driver (not yet running).
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Model == nil || cfg.Topo == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("server: Model, Topo and Scheduler are required")
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 20
	}
	est := costmodel.NewEstimator(cfg.Model, cfg.Topo)
	prof := costmodel.BuildProfile(est, costmodel.ProfilerConfig{})
	engCfg := engine.DefaultConfig()
	if cfg.EngineCfg != nil {
		engCfg = *cfg.EngineCfg
	}
	return &Driver{
		cfg:     cfg,
		prof:    prof,
		eng:     engine.New(cfg.Model, cfg.Topo, prof, engCfg),
		sched:   cfg.Scheduler,
		arrive:  make(chan *Job, 256),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		jobs:    make(map[workload.RequestID]*Job),
	}, nil
}

// Profile exposes the offline-profiled cost table.
func (d *Driver) Profile() *costmodel.Profile { return d.prof }

// Start launches the serving loop goroutine.
func (d *Driver) Start() {
	d.clk = clock.NewReal(d.cfg.Speedup)
	go d.loop()
}

// Stop shuts the loop down and waits for it to exit.
func (d *Driver) Stop() {
	close(d.stop)
	<-d.stopped
}

// Submit enqueues a generation request and returns a snapshot of its job.
func (d *Driver) Submit(prompt workload.Prompt, res model.Resolution, slo time.Duration) (Job, error) {
	if !res.Valid() {
		return Job{}, fmt.Errorf("server: invalid resolution %v", res)
	}
	// With AdmitAnyResolution the profile can grow, but only ever on the
	// loop goroutine (see onArrival); in that mode Submit must not read it.
	if !d.cfg.AdmitAnyResolution && !d.prof.Has(res) {
		return Job{}, fmt.Errorf("server: resolution %v not profiled; supported: %v", res, d.prof.Resolutions())
	}
	if slo <= 0 {
		slo = workload.NewSLOPolicy(1.0).InterpolatedBudget(res)
	}
	d.mu.Lock()
	id := d.nextID
	d.nextID++
	job := &Job{
		ID:     id,
		Prompt: prompt.Text,
		Width:  res.W,
		Height: res.H,
		Steps:  d.cfg.Model.DefaultSteps,
		State:  JobQueued,
		SLO:    slo,
		prompt: prompt,
	}
	d.jobs[id] = job
	d.queued++
	snap := *job
	d.mu.Unlock()

	select {
	case d.arrive <- job:
		return snap, nil
	case <-d.stop:
		return Job{}, fmt.Errorf("server: driver stopped")
	}
}

// JobStatus returns a snapshot of a job.
func (d *Driver) JobStatus(id workload.RequestID) (Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Stats summarizes served traffic.
type Stats struct {
	Completed int     `json:"completed"`
	MetSLO    int     `json:"met_slo"`
	SAR       float64 `json:"sar"`
	Queued    int     `json:"queued"`
	Running   int     `json:"running"`
	GPUBusyS  float64 `json:"gpu_busy_seconds"`
}

// Snapshot returns aggregate serving statistics.
func (d *Driver) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{
		Completed: d.completed,
		MetSLO:    d.met,
		Queued:    d.queued,
		Running:   d.running,
		GPUBusyS:  d.eng.GPUBusySeconds(),
	}
	if d.completed > 0 {
		st.SAR = float64(d.met) / float64(d.completed)
	}
	return st
}

// loop is the real-time counterpart of internal/sim's event loop. All
// scheduling state (states, pending, the engine) is owned by this goroutine.
func (d *Driver) loop() {
	defer close(d.stopped)
	var q eventq.Queue
	const (
		evRunDone = iota
		evRoundTick
	)
	roundBased := d.sched.RoundDuration() > 0
	var schedOver time.Duration
	if o, ok := d.sched.(interface{ Overhead() time.Duration }); ok {
		schedOver = o.Overhead()
	}
	eager := false
	if e, ok := d.sched.(interface{ EagerAdmission() bool }); ok {
		eager = e.EagerAdmission()
	}

	states := make(map[workload.RequestID]*sched.RequestState)
	var pending []*sched.RequestState

	plan := func(now time.Duration) {
		snapshot := make([]*sched.RequestState, 0, len(pending))
		for _, st := range pending {
			if !st.Running && st.Remaining > 0 {
				snapshot = append(snapshot, st)
			}
		}
		if len(snapshot) == 0 {
			return
		}
		var running []*sched.RequestState
		for _, st := range states {
			if st.Running {
				running = append(running, st)
			}
		}
		ctx := &sched.PlanContext{
			Now:     now,
			Free:    d.eng.Free(),
			Pending: snapshot,
			Running: running,
			Profile: d.prof,
			Topo:    d.cfg.Topo,
		}
		assignments := d.sched.Plan(ctx)
		if err := sched.ValidatePlan(ctx, assignments); err != nil {
			// A scheduler bug must not kill the serving loop; skip this
			// plan and retry at the next event.
			return
		}
		for _, asg := range assignments {
			run, err := d.eng.Start(now, asg, states, schedOver)
			if err != nil {
				continue
			}
			for _, id := range asg.Requests {
				states[id].Running = true
				for i, st := range pending {
					if st.Req.ID == id {
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
				d.mu.Lock()
				if j, ok := d.jobs[id]; ok && j.State == JobQueued {
					j.State = JobRunning
					d.queued--
					d.running++
				}
				d.mu.Unlock()
			}
			q.Push(run.End, evRunDone, run)
		}
	}

	onArrival := func(now time.Duration, job *Job) {
		steps := d.cfg.Model.DefaultSteps
		skip := 0
		res := model.Resolution{W: job.Width, H: job.Height}
		// On-demand profiling for non-standard resolutions happens here,
		// on the loop goroutine that owns all profile reads, so the
		// scheduler never observes an unprofiled request.
		if d.cfg.AdmitAnyResolution && !d.prof.Has(res) {
			d.prof.Extend(costmodel.NewEstimator(d.cfg.Model, d.cfg.Topo), res)
		}
		if d.cfg.Cache != nil {
			skip = d.cfg.Cache.Lookup(job.prompt, res, steps)
			if skip >= steps {
				skip = steps - 1
			}
		}
		req := &workload.Request{
			ID:           job.ID,
			Prompt:       job.prompt,
			Res:          res,
			Steps:        steps,
			SkippedSteps: skip,
			Arrival:      now,
			SLO:          job.SLO,
		}
		st := &sched.RequestState{
			Req:           req,
			Remaining:     steps - skip,
			StepsByDegree: map[int]int{},
		}
		states[job.ID] = st
		pending = append(pending, st)
		d.mu.Lock()
		job.Arrival = now
		job.Skipped = skip
		d.mu.Unlock()
	}

	onRunDone := func(now time.Duration, run *engine.Run) {
		if err := d.eng.Finish(run); err != nil {
			return
		}
		for id, steps := range run.Steps {
			st := states[id]
			st.Running = false
			st.Started = true
			st.Remaining -= steps
			st.LastGroup = run.Asg.Group
			st.StepsByDegree[run.Degree] += steps
			if st.Remaining > 0 {
				pending = append(pending, st)
				continue
			}
			completion := d.eng.Decode(now, st.Req.Res)
			d.eng.ReleaseLatent(id)
			if d.cfg.Cache != nil {
				d.cfg.Cache.Insert(st.Req.Prompt, st.Req.Res)
			}
			delete(states, id)
			d.mu.Lock()
			if j, ok := d.jobs[id]; ok {
				j.State = JobCompleted
				j.Completed = completion
				j.Latency = completion - j.Arrival
				j.MetSLO = j.Latency <= j.SLO
				j.AvgDegree = st.AvgDegree()
				d.running--
				d.completed++
				if j.MetSLO {
					d.met++
				}
			}
			d.mu.Unlock()
		}
	}

	if roundBased {
		q.Push(d.clk.Now()+d.sched.RoundDuration(), evRoundTick, nil)
	}

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var wake <-chan time.Time
		if next := q.Peek(); next != nil {
			wall := time.Duration(float64(next.At-d.clk.Now()) / d.cfg.Speedup)
			if wall < 0 {
				wall = 0
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wall)
			wake = timer.C
		}

		select {
		case <-d.stop:
			return
		case job := <-d.arrive:
			now := d.clk.Now()
			onArrival(now, job)
			if !roundBased || (eager && d.eng.Free() != 0) {
				plan(now)
			}
		case <-wake:
			for {
				next := q.Peek()
				if next == nil || next.At > d.clk.Now() {
					break
				}
				ev := q.Pop()
				now := d.clk.Now()
				switch ev.Kind {
				case evRunDone:
					onRunDone(now, ev.Payload.(*engine.Run))
					if !roundBased {
						plan(now)
					}
				case evRoundTick:
					plan(now)
					q.Push(now+d.sched.RoundDuration(), evRoundTick, nil)
				}
			}
		}
	}
}
