package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tetriserve/internal/core"
	"tetriserve/internal/costmodel"
	"tetriserve/internal/model"
	"tetriserve/internal/router"
	"tetriserve/internal/simgpu"
)

// --- satellite: SSE follower unsubscription ------------------------------

// TestTraceFollowSubscriberCountReturnsToBaseline is the follower-leak
// regression: every follower that goes away — client disconnect, mid-stream
// — must drop its bus subscription, returning the subscriber count to
// baseline. Pre-fix, a wedged follower held its subscription forever.
func TestTraceFollowSubscriberCountReturnsToBaseline(t *testing.T) {
	d := newTestDriver(t)
	ts := httptest.NewServer(NewAPI(d).Handler())
	defer ts.Close()

	baseline := d.Telemetry().Bus.Subscribers()

	const followers = 3
	ctx, cancel := context.WithCancel(context.Background())
	var resps []*http.Response
	for i := 0; i < followers; i++ {
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/trace?follow=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, resp)
	}

	waitFor := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for d.Telemetry().Bus.Subscribers() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: subscribers = %d, want %d",
					what, d.Telemetry().Bus.Subscribers(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(baseline+followers, "after connect")

	// Disconnect every follower; each handler must exit through its deferred
	// unsubscribe.
	cancel()
	for _, resp := range resps {
		resp.Body.Close()
	}
	waitFor(baseline, "after disconnect")
}

// --- satellite: double-WriteHeader discipline -----------------------------

// strictWriter fails every Write after the header and counts WriteHeader
// calls — net/http logs "superfluous WriteHeader" and drops the second
// status, so >1 is always a bug.
type strictWriter struct {
	header  http.Header
	headers []int
	writes  int
}

func (w *strictWriter) Header() http.Header { return w.header }
func (w *strictWriter) WriteHeader(code int) {
	w.headers = append(w.headers, code)
}
func (w *strictWriter) Write(b []byte) (int, error) {
	w.writes++
	return 0, fmt.Errorf("client went away")
}

// TestWriteJSONMidStreamFailureLogsOnce pins the serving-path write
// discipline: when the response body write fails after the 200 status line
// is out, the handler must log the failure — exactly one WriteHeader, no
// http.Error fallback, and the error is not swallowed silently (pre-fix the
// encode error was discarded with no trace).
func TestWriteJSONMidStreamFailureLogsOnce(t *testing.T) {
	var logs []string
	a := &API{Logf: func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}}

	w := &strictWriter{header: http.Header{}}
	a.writeJSON(w, http.StatusOK, map[string]string{"k": "v"})

	if len(w.headers) != 1 || w.headers[0] != http.StatusOK {
		t.Fatalf("WriteHeader calls = %v, want exactly [200]", w.headers)
	}
	if len(logs) != 1 {
		t.Fatalf("mid-stream write failure produced %d log lines, want 1: %v", len(logs), logs)
	}
	if !strings.Contains(logs[0], "client went away") {
		t.Fatalf("log line must carry the write error: %q", logs[0])
	}
}

// TestHTTPErrorSingleHeader: the error path shares the same discipline.
func TestHTTPErrorSingleHeader(t *testing.T) {
	var logs []string
	a := &API{Logf: func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}}
	w := &strictWriter{header: http.Header{}}
	a.httpError(w, http.StatusBadRequest, "bad input %d", 7)
	if len(w.headers) != 1 || w.headers[0] != http.StatusBadRequest {
		t.Fatalf("WriteHeader calls = %v, want exactly [400]", w.headers)
	}
	if len(logs) != 1 {
		t.Fatalf("want the failed error write logged once, got %v", logs)
	}
}

// --- satellite: unknown resolution is a client error ----------------------

// TestGenerateUnknownResolutionIs400: a valid-but-unprofiled resolution is a
// malformed request for this deployment, not a transient serving condition —
// pre-fix it surfaced as 422.
func TestGenerateUnknownResolutionIs400(t *testing.T) {
	d := newTestDriver(t)
	ts := httptest.NewServer(NewAPI(d).Handler())
	defer ts.Close()

	body, _ := json.Marshal(GenerateRequest{Prompt: "a lighthouse", Width: 48, Height: 48})
	resp, err := http.Post(ts.URL+"/v1/images/generations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for unprofiled resolution", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "supported") {
		t.Fatalf("error should list supported resolutions: %q", e.Error)
	}
}

// --- shard probe endpoint --------------------------------------------------

func TestProbeEndpoint(t *testing.T) {
	d := newTestDriver(t)
	ts := httptest.NewServer(NewAPI(d).Handler())
	defer ts.Close()

	post := func(t *testing.T, req ProbeRequest) (*http.Response, FeasibilityView) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/probe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		var v FeasibilityView
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
		}
		return resp, v
	}

	resp, v := post(t, ProbeRequest{Width: 512, Height: 512, SLOMillis: 30_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d", resp.StatusCode)
	}
	if !v.Winnable || v.HealthyGPUs != 8 {
		t.Fatalf("idle pool probe: %+v", v)
	}
	// Round-trip: the view must rebuild the same Feasibility the router sees.
	f := v.Feasibility()
	if !f.Winnable || f.HealthyGPUs != 8 || f.Slack != time.Duration(v.SlackUS)*time.Microsecond {
		t.Fatalf("view round-trip lost fields: %+v", f)
	}

	if resp, _ := post(t, ProbeRequest{Width: 48, Height: 48, SLOMillis: 1000}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unprofiled probe status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ProbeRequest{Width: 512, Height: 512}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing SLO probe status %d, want 400", resp.StatusCode)
	}
}

// --- router mode end-to-end ------------------------------------------------

func newShardDriver(t *testing.T, gpus int) *Driver {
	t.Helper()
	mdl := model.FLUX()
	topo := simgpu.H100xN(gpus)
	prof := costmodel.BuildProfile(costmodel.NewEstimator(mdl, topo), costmodel.ProfilerConfig{})
	d, err := NewDriver(DriverConfig{
		Model:     mdl,
		Topo:      topo,
		Scheduler: core.NewScheduler(prof, topo, core.DefaultConfig()),
		Speedup:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(d.Stop)
	return d
}

func TestRouterAPIEndToEnd(t *testing.T) {
	shardA := newShardDriver(t, 2)
	shardB := newShardDriver(t, 2)

	api, err := NewRouterAPI(router.Config{}, []RouterShard{
		&LocalShard{ShardName: "a", Driver: shardA},
		&LocalShard{ShardName: "b", Driver: shardB},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	post := func(t *testing.T, req RoutedGenerateRequest) *http.Response {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Accepted submission: routed to some shard, job enqueued there.
	resp := post(t, RoutedGenerateRequest{Prompt: "a koi pond", Width: 512, Height: 512, SLOMillis: 30_000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var rj RoutedJob
	if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
		t.Fatal(err)
	}
	if rj.Shard != "a" && rj.Shard != "b" {
		t.Fatalf("routed to unknown shard %q", rj.Shard)
	}
	if rj.SlackUS <= 0 {
		t.Fatalf("accepted submission must carry positive slack, got %d", rj.SlackUS)
	}
	target := shardA
	if rj.Shard == "b" {
		target = shardB
	}
	if _, ok := target.JobStatus(rj.ID); !ok {
		t.Fatalf("job %d not tracked on shard %s", rj.ID, rj.Shard)
	}

	// Impossible deadline: early 429 with a Retry-After hint.
	resp = post(t, RoutedGenerateRequest{Prompt: "a storm", Width: 1024, Height: 1024, SLOMillis: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 for hopeless SLO", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	var rb rejectBody
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	if rb.Reason != string(router.ReasonInfeasible) || rb.RetryAfterMS <= 0 {
		t.Fatalf("reject body %+v", rb)
	}

	// Unknown resolution: client error, not capacity.
	resp = post(t, RoutedGenerateRequest{Prompt: "tiny", Width: 48, Height: 48, SLOMillis: 1000})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for unprofiled resolution", resp.StatusCode)
	}

	// Stats reflect the three decisions; explain returns them.
	sresp, err := http.Get(ts.URL + "/v1/router/stats?explain=10")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var view struct {
		router.Stats
		Explain []json.RawMessage `json:"explain"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Decisions != 3 || view.Routed != 1 || view.Infeasible != 1 || view.Unknown != 1 {
		t.Fatalf("stats %+v", view.Stats)
	}
	if len(view.Explain) != 3 {
		t.Fatalf("explain returned %d decisions, want 3", len(view.Explain))
	}

	// Metrics exposition carries the router counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `tetriserve_router_decisions_total{reason="routed"} 1`) {
		t.Fatalf("metrics missing router counters:\n%s", buf.String())
	}
}

// TestRouterOverRemoteShards runs the same admission path with the shard on
// the other side of HTTP: RemoteShard → /v1/probe → route → RemoteShard →
// /v1/images/generations.
func TestRouterOverRemoteShards(t *testing.T) {
	d := newShardDriver(t, 2)
	shardSrv := httptest.NewServer(NewAPI(d).Handler())
	defer shardSrv.Close()

	api, err := NewRouterAPI(router.Config{}, []RouterShard{
		NewRemoteShard("remote-a", shardSrv.URL),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	body, _ := json.Marshal(RoutedGenerateRequest{
		Prompt: "a koi pond", Width: 512, Height: 512, SLOMillis: 30_000,
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var rj RoutedJob
	if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
		t.Fatal(err)
	}
	if rj.Shard != "remote-a" {
		t.Fatalf("routed to %q", rj.Shard)
	}
	if _, ok := d.JobStatus(rj.ID); !ok {
		t.Fatalf("job %d not tracked on the remote shard", rj.ID)
	}
}

// TestRouterAPIConcurrentSubmissions exercises the router's mutex under
// parallel handler goroutines (run with -race).
func TestRouterAPIConcurrentSubmissions(t *testing.T) {
	d := newShardDriver(t, 4)
	api, err := NewRouterAPI(router.Config{}, []RouterShard{
		&LocalShard{ShardName: "a", Driver: d},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(RoutedGenerateRequest{
				Prompt: fmt.Sprintf("prompt %d", i), Width: 512, Height: 512,
				SLOMillis: 60_000, Tenant: fmt.Sprintf("t%d", i%3),
			})
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	if st := api.Router().Stats(); st.Decisions != 16 {
		t.Fatalf("decisions = %d, want 16", st.Decisions)
	}
}
